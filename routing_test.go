package dagsched

// Engine auto-routing against the real schedulers: every combination RunAuto
// sends to the evented engine must produce results identical to an explicit
// tick run, and every combination with a known unsafety (clock-reading
// orders, per-tick heuristics, RNG policies, faults, probes) must fall back
// to the tick engine.

import (
	"fmt"
	"math/rand"
	"testing"

	"dagsched/internal/baselines"
	"dagsched/internal/core"
	"dagsched/internal/dag"
	"dagsched/internal/faults"
	"dagsched/internal/sim"
	"dagsched/internal/telemetry"
	"dagsched/internal/workload"
)

// routingInstance is a small mixed workload exercising admissions, expiries,
// and completions for every scheduler under test.
func routingInstance(t *testing.T) *Instance {
	t.Helper()
	inst, err := GenerateWorkload(WorkloadConfig{
		Seed: 7, N: 40, M: 8, Eps: 1, SlackSpread: 0.4, Load: 2, Scale: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func sameResults(a, b *sim.Result) error {
	if a.TotalProfit != b.TotalProfit || a.Completed != b.Completed ||
		a.Expired != b.Expired || a.BusyProcTicks != b.BusyProcTicks ||
		a.IdleProcTicks != b.IdleProcTicks || a.Ticks != b.Ticks {
		return fmt.Errorf("aggregate mismatch: %+v vs %+v", a, b)
	}
	am := map[int]JobStat{}
	for _, s := range a.Jobs {
		am[s.ID] = s
	}
	if len(a.Jobs) != len(b.Jobs) {
		return fmt.Errorf("job counts %d vs %d", len(a.Jobs), len(b.Jobs))
	}
	for _, s := range b.Jobs {
		if am[s.ID] != s {
			return fmt.Errorf("job %d: %+v vs %+v", s.ID, am[s.ID], s)
		}
	}
	return nil
}

func mustParams(t *testing.T) core.Params {
	t.Helper()
	p, err := core.NewParams(1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestAutoRoutingRealSchedulers pins, for every scheduler family the suite
// runs, which engine RunAuto picks — and checks the result always matches an
// explicit tick-engine run on the identical configuration.
func TestAutoRoutingRealSchedulers(t *testing.T) {
	inst := routingInstance(t)
	par := mustParams(t)
	probed := telemetry.NewRecorder()
	probed.Probe = telemetry.NewProbe(1, false)

	// cfg is a constructor because stateful policies (dag.Random's RNG) must
	// be fresh for each of the two runs being compared.
	plain := func(c sim.Config) func() sim.Config { return func() sim.Config { return c } }
	cases := []struct {
		name  string
		cfg   func() sim.Config
		sched func() sim.Scheduler
		want  string
	}{
		{"S", plain(sim.Config{M: inst.M}), func() sim.Scheduler { return core.NewSchedulerS(core.Options{Params: par}) }, sim.EngineEvented},
		{"S+wc", plain(sim.Config{M: inst.M}), func() sim.Scheduler {
			return core.NewSchedulerS(core.Options{Params: par, WorkConserving: true})
		}, sim.EngineEvented},
		{"S+res-no-faults", plain(sim.Config{M: inst.M}), func() sim.Scheduler {
			return core.NewSchedulerS(core.Options{Params: par, Resilient: true})
		}, sim.EngineEvented},
		{"S/no-band-check", plain(sim.Config{M: inst.M}), func() sim.Scheduler {
			return core.NewSchedulerS(core.Options{Params: par, Ablation: core.AblationNoBandCheck})
		}, sim.EngineEvented},
		{"S/no-freshness", plain(sim.Config{M: inst.M}), func() sim.Scheduler {
			return core.NewSchedulerS(core.Options{Params: par, Ablation: core.AblationNoFreshness})
		}, sim.EngineEvented},
		{"S/allot-1", plain(sim.Config{M: inst.M}), func() sim.Scheduler {
			return core.NewSchedulerS(core.Options{Params: par, Ablation: core.AblationAllotOne})
		}, sim.EngineEvented},
		{"S/allot-m", plain(sim.Config{M: inst.M}), func() sim.Scheduler {
			return core.NewSchedulerS(core.Options{Params: par, Ablation: core.AblationAllotAll})
		}, sim.EngineEvented},
		{"EDF", plain(sim.Config{M: inst.M}), NewEDF, sim.EngineEvented},
		{"FIFO", plain(sim.Config{M: inst.M}), NewFIFO, sim.EngineEvented},
		{"HDF", plain(sim.Config{M: inst.M}), NewHDF, sim.EngineEvented},
		{"Profit-order", plain(sim.Config{M: inst.M}), func() sim.Scheduler {
			return &baselines.ListScheduler{Order: baselines.OrderProfit}
		}, sim.EngineEvented},
		{"Federated", plain(sim.Config{M: inst.M}), NewFederated, sim.EngineEvented},
		{"S+unlucky-policy", plain(sim.Config{M: inst.M, Policy: dag.Unlucky{}}), func() sim.Scheduler {
			return core.NewSchedulerS(core.Options{Params: par})
		}, sim.EngineEvented},

		// Fallbacks: each of these reads per-tick state the evented engine
		// cannot reproduce, so RunAuto must keep them on the tick engine.
		{"LLF", plain(sim.Config{M: inst.M}), NewLLF, sim.EngineTick},
		{"EDF+abandon", plain(sim.Config{M: inst.M}), func() sim.Scheduler {
			return &baselines.ListScheduler{Order: baselines.OrderEDF, AbandonHopeless: true}
		}, sim.EngineTick},
		{"GP", plain(sim.Config{M: inst.M}), func() sim.Scheduler { return core.NewSchedulerGP(core.Options{Params: par}) }, sim.EngineTick},
		{"S+random-policy", func() sim.Config { return sim.Config{M: inst.M, Policy: dag.Random{Rng: rand.New(rand.NewSource(11))}} }, func() sim.Scheduler {
			return core.NewSchedulerS(core.Options{Params: par})
		}, sim.EngineTick},
		{"S+cpf-policy", plain(sim.Config{M: inst.M, Policy: dag.CriticalPathFirst{}}), func() sim.Scheduler {
			return core.NewSchedulerS(core.Options{Params: par})
		}, sim.EngineTick},
		{"S+faults", plain(sim.Config{M: inst.M, Faults: &faults.Config{Seed: 3, CrashRate: 0.01}}), func() sim.Scheduler {
			return core.NewSchedulerS(core.Options{Params: par})
		}, sim.EngineTick},
		{"S+probe", plain(sim.Config{M: inst.M, Telemetry: probed}), func() sim.Scheduler {
			return core.NewSchedulerS(core.Options{Params: par})
		}, sim.EngineTick},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg()
			var hooked string
			cfg.OnRoute = func(e, _ string) { hooked = e }
			auto, err := RunAuto(cfg, inst.Jobs, tc.sched())
			if err != nil {
				t.Fatal(err)
			}
			if hooked != tc.want || auto.Engine != tc.want {
				t.Fatalf("routed to %q (hook %q), want %q", auto.Engine, hooked, tc.want)
			}
			tick, err := Run(tc.cfg(), inst.Jobs, tc.sched())
			if err != nil {
				t.Fatal(err)
			}
			if err := sameResults(auto, tick); err != nil {
				t.Fatalf("auto vs explicit tick: %v", err)
			}
		})
	}
}

// TestAutoEquivalenceAcrossWorkloads widens the evented-vs-tick equivalence
// check to every auto-routed (scheduler, policy) combination across several
// generated workloads, including speed-augmented runs.
func TestAutoEquivalenceAcrossWorkloads(t *testing.T) {
	par := mustParams(t)
	scheds := map[string]func() sim.Scheduler{
		"S":    func() sim.Scheduler { return core.NewSchedulerS(core.Options{Params: par}) },
		"S+wc": func() sim.Scheduler { return core.NewSchedulerS(core.Options{Params: par, WorkConserving: true}) },
		"EDF":  NewEDF,
		"HDF":  NewHDF,
		"Fed":  NewFederated,
	}
	policies := map[string]PickPolicy{"byid": nil, "unlucky": dag.Unlucky{}}
	for seed := int64(1); seed <= 3; seed++ {
		inst, err := GenerateWorkload(WorkloadConfig{
			Seed: seed, N: 30, M: 4 + int(seed), Eps: 1, SlackSpread: 0.5, Load: 1.5, Scale: 2,
			Profit: workload.ProfitStep,
		})
		if err != nil {
			t.Fatal(err)
		}
		for sname, mk := range scheds {
			for pname, pol := range policies {
				cfg := sim.Config{M: inst.M, Speed: NewSpeed(3, 2), Policy: pol}
				auto, err := RunAuto(cfg, inst.Jobs, mk())
				if err != nil {
					t.Fatalf("seed %d %s/%s: %v", seed, sname, pname, err)
				}
				if auto.Engine != sim.EngineEvented {
					t.Fatalf("seed %d %s/%s: routed to %q, want evented", seed, sname, pname, auto.Engine)
				}
				tick, err := Run(cfg, inst.Jobs, mk())
				if err != nil {
					t.Fatal(err)
				}
				if err := sameResults(auto, tick); err != nil {
					t.Errorf("seed %d %s/%s: %v", seed, sname, pname, err)
				}
			}
		}
	}
}
