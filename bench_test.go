package dagsched

// The benchmark harness: one BenchmarkEXP_<id> per experiment in the
// reproduction suite (each regenerates the corresponding table of
// EXPERIMENTS.md; run `go run ./cmd/spaa-bench` to see the tables), plus
// micro-benchmarks of the engine and the paper scheduler's hot paths.

import (
	"testing"

	"dagsched/internal/experiments"
	"dagsched/internal/telemetry"
	"dagsched/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	// Parallel: 1 keeps the per-experiment numbers comparable with the
	// pre-runner history; the suite-level benchmarks below measure fan-out.
	cfg := experiments.Config{Seeds: 3, Parallel: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEXP_FIG1 regenerates the Figure 1 / Theorem 1 separation table.
func BenchmarkEXP_FIG1(b *testing.B) { benchExperiment(b, "FIG1") }

// BenchmarkEXP_FIG2 regenerates the Figure 2 granularity table.
func BenchmarkEXP_FIG2(b *testing.B) { benchExperiment(b, "FIG2") }

// BenchmarkEXP_THM1 regenerates the Theorem 1 speed-threshold table.
func BenchmarkEXP_THM1(b *testing.B) { benchExperiment(b, "THM1") }

// BenchmarkEXP_THM2 regenerates the Theorem 2 competitive-ratio table.
func BenchmarkEXP_THM2(b *testing.B) { benchExperiment(b, "THM2") }

// BenchmarkEXP_COR1 regenerates the Corollary 1 speed-sweep table.
func BenchmarkEXP_COR1(b *testing.B) { benchExperiment(b, "COR1") }

// BenchmarkEXP_COR2 regenerates the Corollary 2 table.
func BenchmarkEXP_COR2(b *testing.B) { benchExperiment(b, "COR2") }

// BenchmarkEXP_THM3 regenerates the Theorem 3 general-profit table.
func BenchmarkEXP_THM3(b *testing.B) { benchExperiment(b, "THM3") }

// BenchmarkEXP_BASE regenerates the baseline-comparison table.
func BenchmarkEXP_BASE(b *testing.B) { benchExperiment(b, "BASE") }

// BenchmarkEXP_ABL1 regenerates the condition-(2) ablation table.
func BenchmarkEXP_ABL1(b *testing.B) { benchExperiment(b, "ABL1") }

// BenchmarkEXP_ABL2 regenerates the allotment ablation table.
func BenchmarkEXP_ABL2(b *testing.B) { benchExperiment(b, "ABL2") }

// BenchmarkEXP_ABL3 regenerates the δ-fresh ablation table.
func BenchmarkEXP_ABL3(b *testing.B) { benchExperiment(b, "ABL3") }

// BenchmarkEXP_ABL4 regenerates the band-index substrate table.
func BenchmarkEXP_ABL4(b *testing.B) { benchExperiment(b, "ABL4") }

// BenchmarkEXP_OPTQ regenerates the OPT-bound-quality table.
func BenchmarkEXP_OPTQ(b *testing.B) { benchExperiment(b, "OPTQ") }

// BenchmarkEXP_ADV regenerates the adversarial-stream table.
func BenchmarkEXP_ADV(b *testing.B) { benchExperiment(b, "ADV") }

// BenchmarkEXP_EXT regenerates the future-work extension tables.
func BenchmarkEXP_EXT(b *testing.B) { benchExperiment(b, "EXT") }

// BenchmarkEXP_LEM regenerates the lemma-verification table.
func BenchmarkEXP_LEM(b *testing.B) { benchExperiment(b, "LEM") }

// BenchmarkEXP_HPCW regenerates the HPC-kernel workload table.
func BenchmarkEXP_HPCW(b *testing.B) { benchExperiment(b, "HPCW") }

// BenchmarkEXP_MINE regenerates the adversary-miner table.
func BenchmarkEXP_MINE(b *testing.B) { benchExperiment(b, "MINE") }

// BenchmarkEXP_RT regenerates the real-time schedulability table.
func BenchmarkEXP_RT(b *testing.B) { benchExperiment(b, "RT") }

// BenchmarkEXP_FAULTS regenerates the fault-injection degradation tables.
func BenchmarkEXP_FAULTS(b *testing.B) { benchExperiment(b, "FAULTS") }

// BenchmarkEXP_CMT regenerates the commitment-price tables.
func BenchmarkEXP_CMT(b *testing.B) { benchExperiment(b, "CMT") }

// benchSuite runs the entire quick-mode suite at a fixed worker count, the
// end-to-end number the -parallel flag moves.
func benchSuite(b *testing.B, workers int) {
	cfg := experiments.Config{Quick: true, Seeds: 2, Parallel: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range experiments.All() {
			if _, err := e.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSuiteQuickSerial is the quick suite on one runner worker.
func BenchmarkSuiteQuickSerial(b *testing.B) { benchSuite(b, 1) }

// BenchmarkSuiteQuickParallel is the quick suite with one worker per core;
// its tables are byte-identical to the serial run's.
func BenchmarkSuiteQuickParallel(b *testing.B) { benchSuite(b, 0) }

// Micro-benchmarks.

func benchInstance(b *testing.B, n int, load float64) *Instance {
	b.Helper()
	inst, err := GenerateWorkload(WorkloadConfig{
		Seed: 42, N: n, M: 8, Eps: 1, SlackSpread: 0.4, Load: load, Scale: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

// BenchmarkEngineSchedulerS measures a full simulation of scheduler S on a
// moderately loaded instance (ticks, admissions, executions).
func BenchmarkEngineSchedulerS(b *testing.B) {
	inst := benchInstance(b, 200, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSchedulerS(1.0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Run(SimConfig{M: inst.M}, inst.Jobs, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSchedulerSAuto is the same workload through RunAuto, which
// routes this (scheduler, policy) combination to the evented engine; the gap
// to BenchmarkEngineSchedulerS is the payoff of auto-routing on one cell.
func BenchmarkEngineSchedulerSAuto(b *testing.B) {
	inst := benchInstance(b, 200, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSchedulerS(1.0)
		if err != nil {
			b.Fatal(err)
		}
		res, err := RunAuto(SimConfig{M: inst.M}, inst.Jobs, s)
		if err != nil {
			b.Fatal(err)
		}
		if res.Engine != "evented" {
			b.Fatalf("routed to %q, want evented", res.Engine)
		}
	}
}

// BenchmarkEngineEDF is the same instance under the EDF baseline, isolating
// the cost of S's admission machinery.
func BenchmarkEngineEDF(b *testing.B) {
	inst := benchInstance(b, 200, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(SimConfig{M: inst.M}, inst.Jobs, NewEDF()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineEDFAuto routes the EDF cell through RunAuto (evented).
func BenchmarkEngineEDFAuto(b *testing.B) {
	inst := benchInstance(b, 200, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunAuto(SimConfig{M: inst.M}, inst.Jobs, NewEDF())
		if err != nil {
			b.Fatal(err)
		}
		if res.Engine != "evented" {
			b.Fatalf("routed to %q, want evented", res.Engine)
		}
	}
}

// BenchmarkEngineSchedulerGP measures the general-profit scheduler, whose
// arrival-time deadline search dominates.
func BenchmarkEngineSchedulerGP(b *testing.B) {
	inst, err := GenerateWorkload(WorkloadConfig{
		Seed: 42, N: 100, M: 8, Eps: 1, SlackSpread: 0.4, Load: 2, Scale: 2,
		Profit: workload.ProfitLinear,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gp, err := NewSchedulerGP(1.0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Run(SimConfig{M: inst.M}, inst.Jobs, gp); err != nil {
			b.Fatal(err)
		}
	}
}

// Telemetry overhead: the three benchmarks below share the instance and
// scheduler of BenchmarkEngineSchedulerS and differ only in instrumentation,
// so their deltas isolate the telemetry layer's cost. BENCH_PR3.json records
// a run; the nil path must stay within noise of the uninstrumented seed.

func benchTelemetry(b *testing.B, rec func() *telemetry.Recorder) {
	inst := benchInstance(b, 200, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSchedulerS(1.0)
		if err != nil {
			b.Fatal(err)
		}
		r := rec()
		if r != nil {
			telemetry.Attach(s, r)
		}
		if _, err := Run(SimConfig{M: inst.M, Telemetry: r}, inst.Jobs, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineTelemetryNil is the disabled path: nil recorder, so every
// telemetry hook reduces to one pointer check.
func BenchmarkEngineTelemetryNil(b *testing.B) {
	benchTelemetry(b, func() *telemetry.Recorder { return nil })
}

// BenchmarkEngineTelemetryEvents records the decision-event stream and the
// counter/histogram registry, no probes.
func BenchmarkEngineTelemetryEvents(b *testing.B) {
	benchTelemetry(b, telemetry.NewRecorder)
}

// BenchmarkEngineTelemetryFull adds every-tick machine and per-job probes on
// top of the event stream — the heaviest configuration spaa-sim exposes.
func BenchmarkEngineTelemetryFull(b *testing.B) {
	benchTelemetry(b, func() *telemetry.Recorder {
		r := telemetry.NewRecorder()
		r.Probe = telemetry.NewProbe(1, true)
		return r
	})
}

// TestTelemetryNilPathAllocations guards the zero-cost contract and the tick
// loop's allocation diet: the instrumented engine with telemetry disabled
// allocated 4955/op on this workload before the hot-path rework (per-tick
// seen maps, liveList splices, sort.Slice closures, uncached scale graphs);
// generation stamps, ordered compaction, slices.Sort, and buffer reuse cut it
// to 2820/op. The budget allows ~1% drift from toolchain changes before
// failing — a regression past it means per-tick heap traffic came back.
func TestTelemetryNilPathAllocations(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation guard runs the full benchmark harness")
	}
	const budget = 2850
	r := testing.Benchmark(BenchmarkEngineTelemetryNil)
	if got := r.AllocsPerOp(); got > budget {
		t.Errorf("nil-telemetry run allocates %d/op, budget %d (was 4955 before the zero-allocation tick loop): per-tick heap traffic has regressed", got, budget)
	}
}

// BenchmarkOptUpperBound measures the OPT bound machinery on a mid-size
// instance (LP + knapsack path).
func BenchmarkOptUpperBound(b *testing.B) {
	inst := benchInstance(b, 36, 1.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = OptUpperBound(inst.Jobs, inst.M, 1)
	}
}

// BenchmarkSpeedScaledRun measures the exact rational-speed execution path
// (work scaling + per-tick application).
func BenchmarkSpeedScaledRun(b *testing.B) {
	inst := benchInstance(b, 100, 2)
	sp := NewSpeed(7, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(SimConfig{M: inst.M, Speed: sp}, inst.Jobs, NewEDF()); err != nil {
			b.Fatal(err)
		}
	}
}
