package dagsched_test

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateAPI = flag.Bool("update", false, "rewrite testdata/api.txt with the current public surface")

// TestPublicAPISnapshot pins the package's exported surface — every exported
// func, type, const, and var declaration — against testdata/api.txt. A
// deliberate API change is recorded with `go test -run TestPublicAPISnapshot
// -update .`; an accidental one fails here and in `make check`.
func TestPublicAPISnapshot(t *testing.T) {
	got := renderPublicAPI(t, ".")
	golden := filepath.Join("testdata", "api.txt")
	if *updateAPI {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d entries)", golden, strings.Count(got, "\n"))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing API golden file (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Fatalf("public API surface changed; if intentional, rerun with -update\n%s",
			diffLines(string(want), got))
	}
}

// renderPublicAPI parses the package in dir and renders one sorted line per
// exported top-level declaration, comments stripped.
func renderPublicAPI(t *testing.T, dir string) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["dagsched"]
	if !ok {
		t.Fatalf("package dagsched not found in %s (have %v)", dir, pkgs)
	}

	var lines []string
	render := func(node any) string {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, node); err != nil {
			t.Fatal(err)
		}
		// Collapse any multi-line rendering to a single canonical line.
		return strings.Join(strings.Fields(buf.String()), " ")
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil || !d.Name.IsExported() {
					continue
				}
				fn := *d
				fn.Doc, fn.Body = nil, nil
				lines = append(lines, render(&fn))
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if !sp.Name.IsExported() {
							continue
						}
						ts := *sp
						ts.Doc, ts.Comment = nil, nil
						lines = append(lines, "type "+render(&ts))
					case *ast.ValueSpec:
						exported := false
						for _, n := range sp.Names {
							if n.IsExported() {
								exported = true
							}
						}
						if !exported {
							continue
						}
						vs := *sp
						vs.Doc, vs.Comment = nil, nil
						kw := "var"
						if d.Tok == token.CONST {
							kw = "const"
						}
						lines = append(lines, kw+" "+render(&vs))
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// diffLines reports the lines present in only one of the two snapshots.
func diffLines(want, got string) string {
	wantSet := make(map[string]bool)
	for _, l := range strings.Split(want, "\n") {
		wantSet[l] = true
	}
	gotSet := make(map[string]bool)
	for _, l := range strings.Split(got, "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for _, l := range strings.Split(want, "\n") {
		if l != "" && !gotSet[l] {
			fmt.Fprintf(&b, "- %s\n", l)
		}
	}
	for _, l := range strings.Split(got, "\n") {
		if l != "" && !wantSet[l] {
			fmt.Fprintf(&b, "+ %s\n", l)
		}
	}
	if b.Len() == 0 {
		return "(ordering or whitespace difference)"
	}
	return b.String()
}
