package dagsched

import (
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	// The README quickstart, as a test: build jobs, run S, check profit.
	fn := func(v float64, d int64) ProfitFn {
		p, err := StepProfit(v, d)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	jobs := []*Job{
		{ID: 1, Graph: ForkJoin(2, 6, 1), Release: 0, Profit: fn(10, 60)},
		{ID: 2, Graph: Chain(8, 1), Release: 3, Profit: fn(4, 40)},
		{ID: 3, Graph: Block(12, 1), Release: 5, Profit: fn(6, 30)},
	}
	s, err := NewSchedulerS(1.0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(SimConfig{M: 4}, jobs, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 3 || res.TotalProfit != 20 {
		t.Errorf("completed=%d profit=%v", res.Completed, res.TotalProfit)
	}
	ub := OptUpperBound(jobs, 4, 1)
	if ub < res.TotalProfit {
		t.Errorf("UB %v below achieved profit %v", ub, res.TotalProfit)
	}
}

func TestFacadeBaselines(t *testing.T) {
	fn, err := StepProfit(1, 30)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*Job{{ID: 1, Graph: Block(8, 1), Release: 0, Profit: fn}}
	for _, sched := range []Scheduler{NewEDF(), NewLLF(), NewFIFO(), NewHDF(), NewFederated()} {
		res, err := Run(SimConfig{M: 4}, jobs, sched)
		if err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		if res.Completed != 1 {
			t.Errorf("%s: completed=%d", sched.Name(), res.Completed)
		}
	}
}

func TestFacadeSchedulerGP(t *testing.T) {
	fn, err := LinearDecayProfit(10, 20, 60)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*Job{{ID: 1, Graph: Block(8, 2), Release: 0, Profit: fn}}
	gp, err := NewSchedulerGP(1.0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(SimConfig{M: 4}, jobs, gp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 || res.TotalProfit < 9 {
		t.Errorf("completed=%d profit=%v", res.Completed, res.TotalProfit)
	}
}

func TestFacadeSpeedAndAdversary(t *testing.T) {
	// The Theorem 1 story through the public API. Node work 7 (divisible by
	// the speed numerator below) so fractional speed is not lost to node
	// granularity: chain of 4 nodes (L=28) plus 12 block nodes → W = 4L,
	// D = L = W/m.
	b := NewDAGBuilder()
	prev := b.AddNode(7)
	for i := 1; i < 4; i++ {
		v := b.AddNode(7)
		b.AddEdge(prev, v)
		prev = v
	}
	for i := 0; i < 12; i++ {
		b.AddNode(7)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	fn, err := StepProfit(1, g.Span())
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*Job{{ID: 1, Graph: g, Release: 0, Profit: fn}}
	unlucky, err := Run(SimConfig{M: 4, Policy: PickUnlucky}, jobs, NewEDF())
	if err != nil {
		t.Fatal(err)
	}
	clair, err := Run(SimConfig{M: 4, Policy: PickCriticalPath}, jobs, NewEDF())
	if err != nil {
		t.Fatal(err)
	}
	if unlucky.TotalProfit != 0 {
		t.Errorf("unlucky profit = %v, want 0 (misses D = L)", unlucky.TotalProfit)
	}
	if clair.TotalProfit != 1 {
		t.Errorf("clairvoyant profit = %v, want 1", clair.TotalProfit)
	}
	// At speed 2−1/m = 7/4 the unlucky run finishes exactly on time.
	boosted, err := Run(SimConfig{M: 4, Policy: PickUnlucky, Speed: NewSpeed(7, 4)}, jobs, NewEDF())
	if err != nil {
		t.Fatal(err)
	}
	if boosted.TotalProfit != 1 {
		t.Errorf("speed-7/4 unlucky profit = %v, want 1", boosted.TotalProfit)
	}
}

func TestFacadeWorkloadAndGantt(t *testing.T) {
	inst, err := GenerateWorkload(WorkloadConfig{Seed: 1, N: 10, M: 4, Eps: 1, Load: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSchedulerS(1.0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(SimConfig{M: inst.M, Record: true}, inst.Jobs, s)
	if err != nil {
		t.Fatal(err)
	}
	out := Gantt(res, inst.Jobs, 80)
	if !strings.Contains(out, "gantt") {
		t.Errorf("Gantt output: %q", out)
	}
	if Gantt(nil, nil, 0) == "" {
		t.Error("Gantt(nil) empty")
	}
}

func TestFacadeCustomDAG(t *testing.T) {
	b := NewDAGBuilder()
	src := b.AddNode(2)
	mid := b.AddNode(3)
	b.AddEdge(src, mid)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalWork() != 5 || g.Span() != 5 {
		t.Errorf("W=%d L=%d", g.TotalWork(), g.Span())
	}
}

func TestFacadeRejectsBadEps(t *testing.T) {
	if _, err := NewSchedulerS(0); err == nil {
		t.Error("NewSchedulerS(0) accepted")
	}
	if _, err := NewSchedulerGP(-1); err == nil {
		t.Error("NewSchedulerGP(-1) accepted")
	}
}

func TestFacadeCommitment(t *testing.T) {
	if _, err := ParseCommitment("delta"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseCommitment("always"); err == nil {
		t.Error("ParseCommitment accepted an unknown policy")
	}
	if _, err := NewCommittedS(1.0, Commitment("always")); err == nil {
		t.Error("NewCommittedS accepted an unknown policy")
	}

	// Under commit-to-completion on arrival the verdict is final: a burst
	// that overflows the running set sees its overflow refused outright
	// (never parked for a second chance), and exactly the committed subset
	// completes.
	step := func(v float64, d int64) ProfitFn {
		fn, err := StepProfit(v, d)
		if err != nil {
			t.Fatal(err)
		}
		return fn
	}
	var jobs []*Job
	for i := 1; i <= 6; i++ {
		jobs = append(jobs, &Job{ID: i, Graph: Block(8, 2), Release: 0, Profit: step(1, 14)})
	}
	bound, err := NewCommittedS(1.0, CommitmentOnArrival)
	if err != nil {
		t.Fatal(err)
	}
	var _ Committer = bound // the commitment ledger is part of the surface
	res, err := Run(SimConfig{M: 4}, jobs, bound)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed+res.Expired != 6 || res.Completed == 0 || res.Expired == 0 {
		t.Errorf("on-arrival run: completed=%d expired=%d, want a committed strict subset finishing", res.Completed, res.Expired)
	}
	for _, js := range res.Jobs {
		if js.Completed && js.CompletedAt > 14 {
			t.Errorf("job %d committed at arrival completed at %d, past its deadline", js.ID, js.CompletedAt)
		}
	}
}
