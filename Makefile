# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test vet fmt check race bench suite examples fuzz

all: vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Fails if any file is not gofmt-clean (lists the offenders).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# The full local gate: formatting, vet, build, tests.
check: fmt vet build test

# -race across every package; the runner's worker pool and the parallel
# experiment grids are the concurrency under test.
race:
	go test -race ./...
	go test -race -count=2 ./internal/runner/ ./internal/experiments/

# The full benchmark harness: one BenchmarkEXP_* per experiment plus engine
# micro-benchmarks.
bench:
	go test -bench=. -benchmem ./...

# The reproduction suite tables (EXPERIMENTS.md records a run of this).
suite:
	go run ./cmd/spaa-bench

examples:
	go run ./examples/quickstart
	go run ./examples/adversarial
	go run ./examples/mapreduce
	go run ./examples/profitdecay
	go run ./examples/hpc
	go run ./examples/realtime

# Short fuzz passes over the serialization surfaces.
fuzz:
	go test -fuzz=FuzzDAGUnmarshal -fuzztime=10s ./internal/dag/
	go test -fuzz=FuzzInstanceUnmarshal -fuzztime=10s ./internal/workload/
