# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test vet fmt check race bench bench-guard obs-guard wire-guard schema-compat suite examples fuzz trace-demo api-check api-update chaos

all: vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Fails if any file is not gofmt-clean (lists the offenders).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# The full local gate: formatting, vet, build, tests, perf guards, the
# public-API snapshot, and the crash-safety chaos harness. The telemetry
# package is vetted on its own so a vet regression there is named in the
# output.
check: fmt vet build test bench-guard obs-guard wire-guard api-check schema-compat chaos
	go vet ./internal/telemetry/

# Crash-safety harness: SIGKILL the serving daemon under concurrent load at
# seeded points, restart it over the same WAL directory, and verify no
# acknowledged job is lost, no rejected job resurrects, duplicate retries
# collapse, and the recovered state matches a crash-free replay bit for bit.
chaos:
	go test -race -run 'TestChaos' -count=1 ./internal/serve/

# Wire/WAL schema compatibility gate: golden v1 fixtures (pre-v2 request
# bodies, WAL frames, checkpoints) replayed through the current decoder must
# produce byte-identical durable state and verdicts, and a default-policy
# daemon fed scalar specs must write byte-identical WAL records.
schema-compat:
	go test -run 'TestSchemaCompat' -count=1 ./internal/serve/

# Fails when the package's exported surface drifts from testdata/api.txt.
# Record a deliberate API change with `make api-update`.
api-check:
	go test -run TestPublicAPISnapshot .

api-update:
	go test -run TestPublicAPISnapshot -update .

# Perf regression gate: the allocation-budget guard on the engine's nil-
# telemetry path, the sharded serving-tier throughput gate (4-shard engine-
# path per-op cost within 1.6x of single-shard, i.e. aggregate >= 2.5x — see
# TestShardedEnginePathGuard and BENCH_PR7.json for methodology), plus a
# short 100-iteration smoke over the engine, queue, and admission
# micro-benchmarks so a broken benchmark is caught before it hides a perf
# regression. (The BenchmarkEXP_* table regenerations are excluded: at 100
# iterations they are a full suite run, not a smoke.)
bench-guard:
	go vet ./...
	go test -run TestTelemetryNilPathAllocations .
	SPAA_BENCH_GUARD=1 go test -run TestShardedEnginePathGuard -count=1 ./internal/serve/
	go test -run xxx -bench 'BenchmarkEngine|BenchmarkSpeedScaledRun|BenchmarkOptUpperBound' -benchtime=100x .
	go test -run xxx -bench . -benchtime=100x ./internal/sim/ ./internal/queue/ ./internal/core/

# Observability cost gate: the instrumented engine path (stage timers +
# /metrics histograms) must stay within 5% of the nil-registry path — the
# zero-cost-when-nil idiom, measured against the BENCH_PR7 engine baseline
# (see TestObsOverheadGuard and BENCH_PR8.json for methodology).
obs-guard:
	SPAA_OBS_GUARD=1 go test -run TestObsOverheadGuard -count=1 ./internal/serve/

# Wire fast-path gate: the scalar-spec parser and verdict encoder must stay
# at zero allocations per item, and a 64-spec batch over real HTTP must cost
# at most 1.5x the bare engine path per item (see TestWireGuard and
# BENCH_PR9.json for methodology).
wire-guard:
	SPAA_WIRE_GUARD=1 go test -run TestWireGuard -count=1 ./internal/serve/

# -race across every package; the runner's worker pool and the parallel
# experiment grids are the concurrency under test.
race:
	go test -race ./...
	go test -race -count=2 ./internal/runner/ ./internal/experiments/ ./internal/telemetry/

# The full benchmark harness: one BenchmarkEXP_* per experiment plus engine
# micro-benchmarks.
bench:
	go test -bench=. -benchmem ./...

# The reproduction suite tables (EXPERIMENTS.md records a run of this).
suite:
	go run ./cmd/spaa-bench

# A ready-made observability demo: the Figure-1 adversarial stream under
# scheduler S with full telemetry. Open trace-demo.json at ui.perfetto.dev;
# trace-demo.jsonl is the decision-event stream.
trace-demo:
	go run ./cmd/spaa-sim -adversarial 2 -sched s -probe 1 \
		-perfetto trace-demo.json -events trace-demo.jsonl -telemetry-summary

examples:
	go run ./examples/quickstart
	go run ./examples/adversarial
	go run ./examples/mapreduce
	go run ./examples/profitdecay
	go run ./examples/hpc
	go run ./examples/realtime

# Short fuzz passes over the serialization surfaces.
fuzz:
	go test -fuzz=FuzzDAGUnmarshal -fuzztime=10s ./internal/dag/
	go test -fuzz=FuzzInstanceUnmarshal -fuzztime=10s ./internal/workload/
