# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test vet race bench suite examples fuzz

all: vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# The full benchmark harness: one BenchmarkEXP_* per experiment plus engine
# micro-benchmarks.
bench:
	go test -bench=. -benchmem ./...

# The reproduction suite tables (EXPERIMENTS.md records a run of this).
suite:
	go run ./cmd/spaa-bench

examples:
	go run ./examples/quickstart
	go run ./examples/adversarial
	go run ./examples/mapreduce
	go run ./examples/profitdecay
	go run ./examples/hpc
	go run ./examples/realtime

# Short fuzz passes over the serialization surfaces.
fuzz:
	go test -fuzz=FuzzDAGUnmarshal -fuzztime=10s ./internal/dag/
	go test -fuzz=FuzzInstanceUnmarshal -fuzztime=10s ./internal/workload/
