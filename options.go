package dagsched

// Option mutates a SimConfig under construction; see NewConfig. The
// functional-option form composes setup for callers that configure runs
// programmatically (the serving daemon, examples); the SimConfig struct
// literal remains equally supported.
type Option func(*SimConfig)

// NewConfig builds a SimConfig from options. The zero configuration is a
// single processor at speed 1 with no horizon, recording, faults, or
// telemetry — override with WithM and friends.
func NewConfig(opts ...Option) SimConfig {
	cfg := SimConfig{M: 1}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithM sets the number of identical processors (must be ≥ 1).
func WithM(m int) Option { return func(c *SimConfig) { c.M = m } }

// WithSpeed sets the exact rational speed-augmentation factor.
func WithSpeed(s Speed) Option { return func(c *SimConfig) { c.Speed = s } }

// WithPolicy sets the ready-node pick policy (default PickByID).
func WithPolicy(p PickPolicy) Option { return func(c *SimConfig) { c.Policy = p } }

// WithHorizon hard-stops the simulation at the given tick (0 = run to
// completion).
func WithHorizon(h int64) Option { return func(c *SimConfig) { c.Horizon = h } }

// WithRecording enables full trace capture in the Result (Gantt, verification).
func WithRecording() Option { return func(c *SimConfig) { c.Record = true } }

// WithFaults enables deterministic fault injection with the given
// configuration; see FaultsConfig and ParseFaultSpec.
func WithFaults(f FaultsConfig) Option {
	return func(c *SimConfig) { c.Faults = &f }
}

// WithRecorder attaches a telemetry recorder: the run's decision-event
// stream, registry counters, and probe samples land in it.
func WithRecorder(r *Recorder) Option { return func(c *SimConfig) { c.Telemetry = r } }

// WithRouteHook observes RunAuto's engine choice (engine, reason) once per
// call. Direct Run/RunEvented calls never invoke it.
func WithRouteHook(fn func(engine, reason string)) Option {
	return func(c *SimConfig) { c.OnRoute = fn }
}
