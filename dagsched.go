// Package dagsched is an online scheduler library for parallelizable DAG
// jobs, reproducing "Scheduling Parallelizable Jobs Online to Maximize
// Throughput" (Agrawal, Li, Lu, Moseley — SPAA 2017).
//
// Each job is a directed acyclic graph of sequential work nodes arriving
// online on m identical processors. Completing a job by its deadline earns
// its profit (Section 3), or more generally a job carries an arbitrary
// non-increasing profit function over its completion latency (Section 5).
// The paper's scheduler S is semi-non-clairvoyant — it sees only a job's
// total work W, critical-path length L, and deadline/profit, never the DAG's
// internal structure — and is O(1/ε⁶)-competitive whenever every relative
// deadline has slack (1+ε)((W−L)/m + L) ≤ D (Theorem 2), which by Corollary 1
// makes it (2+ε)-speed O(1)-competitive unconditionally.
//
// The package surface re-exports the engine (Run), the paper's schedulers
// (NewSchedulerS, NewSchedulerGP), baselines, DAG constructors, profit
// functions, workload generation, and offline OPT upper bounds. See
// examples/ for runnable programs and DESIGN.md for the system inventory.
package dagsched

import (
	"dagsched/internal/baselines"
	"dagsched/internal/core"
	"dagsched/internal/dag"
	"dagsched/internal/faults"
	"dagsched/internal/opt"
	"dagsched/internal/profit"
	"dagsched/internal/rational"
	"dagsched/internal/sim"
	"dagsched/internal/telemetry"
	"dagsched/internal/trace"
	"dagsched/internal/workload"
)

// Core model types.
type (
	// Job is one parallel job: a DAG released at a time with a profit
	// function over completion latency.
	Job = sim.Job
	// JobView is the semi-non-clairvoyant picture of a job a scheduler sees.
	JobView = sim.JobView
	// DAG is an immutable graph of work nodes.
	DAG = dag.DAG
	// DAGBuilder assembles DAGs node by node.
	DAGBuilder = dag.Builder
	// NodeID identifies a node within one DAG.
	NodeID = dag.NodeID
	// ProfitFn is a non-negative non-increasing profit function.
	ProfitFn = profit.Fn
	// Scheduler is an online scheduling algorithm driven by the engine.
	Scheduler = sim.Scheduler
	// Env describes the machine a scheduler runs on (processors, speed).
	Env = sim.Env
	// PickPolicy decides which ready nodes run (the "arbitrary" choice of
	// the semi-non-clairvoyant model).
	PickPolicy = dag.PickPolicy
	// Speed is an exact rational speed-augmentation factor.
	Speed = rational.Rat
	// SimConfig parameterizes a simulation run.
	SimConfig = sim.Config
	// Result is the outcome of a run.
	Result = sim.Result
	// JobStat is the per-job outcome.
	JobStat = sim.JobStat
	// Instance is a reproducible workload.
	Instance = workload.Instance
	// WorkloadConfig parameterizes workload generation.
	WorkloadConfig = workload.Config
	// Params are the ε-derived constants of the paper's algorithm.
	Params = core.Params
	// SchedulerS is the paper's Section 3 (deadline/throughput) algorithm.
	SchedulerS = core.SchedulerS
	// SchedulerGP is the paper's Section 5 (general profit) algorithm.
	SchedulerGP = core.SchedulerGP
	// AdmissionDecision is the outcome of SchedulerS.Admission: the
	// arrival-time plan plus whether S would start the job right now.
	AdmissionDecision = core.Decision
	// Plan describes scheduler S's arrival-time decisions for a job.
	Plan = core.Plan
	// FaultsConfig parameterizes deterministic fault injection; see
	// ParseFaultSpec and WithFaults.
	FaultsConfig = faults.Config
	// FaultStats aggregates fault-injection outcomes over a run.
	FaultStats = sim.FaultStats
	// Recorder captures a run's decision-event stream and metric registry.
	Recorder = telemetry.Recorder
	// Registry is a typed store of named counters, gauges, and histograms.
	Registry = telemetry.Registry
	// TelemetryEvent is one decision event (arrival, admit, dispatch, …).
	TelemetryEvent = telemetry.Event
	// TelemetrySummary is a JSON-ready snapshot of a Registry.
	TelemetrySummary = telemetry.Summary
	// TelemetryHistSummary digests one histogram inside a TelemetrySummary:
	// sample count, extrema, and quantile estimates.
	TelemetryHistSummary = telemetry.HistSummary
	// Trace is a full per-tick execution record (SimConfig.Record).
	Trace = sim.Trace
	// RouteStats counts RunAuto's engine choices across runs.
	RouteStats = sim.RouteStats
	// Session is the step-driven engine entry point: the same simulation Run
	// performs, sliced into externally clocked steps with online submission
	// (Arrive). Run over a session's accepted job set reproduces its Result
	// bit-identically.
	Session = sim.Session
	// JobState classifies a job's position in a session's lifecycle.
	JobState = sim.JobState
	// ProfitSpec is the tagged-union wire form of a profit function, shared
	// by instance files and job submissions.
	ProfitSpec = workload.ProfitSpec
	// Commitment is the promise a scheduler attaches to an admitted job:
	// binding levels (CommitmentDelta, CommitmentOnArrival) guarantee the job
	// runs to completion, even past its deadline for zero profit. See the
	// Commitment* constants, ParseCommitment, and NewCommittedS.
	Commitment = sim.Commitment
	// Committer is implemented by schedulers honoring binding commitment;
	// the engine never expires a job its scheduler has committed.
	Committer = sim.Committer
)

// Session job lifecycle states.
const (
	JobStateUnknown   = sim.JobStateUnknown
	JobStatePending   = sim.JobStatePending
	JobStateLive      = sim.JobStateLive
	JobStateCompleted = sim.JobStateCompleted
	JobStateExpired   = sim.JobStateExpired
)

// Commitment policies, weakest to strongest. A JobView's Commitment field
// overrides the scheduler-wide policy per job; CommitmentDefault inherits it.
const (
	// CommitmentDefault defers to the scheduler-wide policy.
	CommitmentDefault = sim.CommitmentDefault
	// CommitmentNone makes no scheduling promise.
	CommitmentNone = sim.CommitmentNone
	// CommitmentOnAdmission is durability-only commitment (the wire default).
	CommitmentOnAdmission = sim.CommitmentOnAdmission
	// CommitmentDelta commits a job once it is admitted to run (δ-commitment).
	CommitmentDelta = sim.CommitmentDelta
	// CommitmentOnArrival makes the arrival verdict final: admitted jobs are
	// guaranteed to finish, would-be-parked jobs are rejected outright.
	CommitmentOnArrival = sim.CommitmentOnArrival
)

// Node-pick policies (environments for the "arbitrary" ready-node choice).
var (
	// PickByID picks ready nodes deterministically by ID.
	PickByID PickPolicy = dag.ByID{}
	// PickUnlucky is the Theorem 1 adversary: it starves the critical path.
	PickUnlucky PickPolicy = dag.Unlucky{}
	// PickCriticalPath is the clairvoyant longest-path-first oracle.
	PickCriticalPath PickPolicy = dag.CriticalPathFirst{}
)

// Run simulates jobs under a scheduler. See sim.Run.
func Run(cfg SimConfig, jobs []*Job, sched Scheduler) (*Result, error) {
	return sim.Run(cfg, jobs, sched)
}

// RunAuto simulates jobs on whichever engine — per-tick or event-jumping —
// is provably equivalent and fastest for the given scheduler, policy, and
// configuration. Results are bit-identical to Run; Result.Engine records the
// choice. See sim.RunAuto.
func RunAuto(cfg SimConfig, jobs []*Job, sched Scheduler) (*Result, error) {
	return sim.RunAuto(cfg, jobs, sched)
}

// NewSchedulerS returns the paper's throughput scheduler for slack parameter
// ε > 0 with the canonical δ and c constants.
func NewSchedulerS(eps float64) (*SchedulerS, error) {
	p, err := core.NewParams(eps)
	if err != nil {
		return nil, err
	}
	return core.NewSchedulerS(core.Options{Params: p}), nil
}

// NewSchedulerGP returns the paper's general-profit scheduler for ε > 0.
func NewSchedulerGP(eps float64) (*SchedulerGP, error) {
	p, err := core.NewParams(eps)
	if err != nil {
		return nil, err
	}
	return core.NewSchedulerGP(core.Options{Params: p}), nil
}

// NewWorkConservingS returns scheduler S with the paper's "future work"
// extension enabled: leftover processors are distributed to admitted jobs in
// density order each tick. Admission is unchanged.
func NewWorkConservingS(eps float64) (*SchedulerS, error) {
	p, err := core.NewParams(eps)
	if err != nil {
		return nil, err
	}
	return core.NewSchedulerS(core.Options{Params: p, WorkConserving: true}), nil
}

// NewResilientS returns scheduler S with fault-injection feedback enabled:
// under faults the allocation budget follows the announced capacity, jobs
// whose lost work provably cannot be re-executed in time are expired early,
// and capacity recoveries re-open admission. Without faults it behaves
// identically to NewSchedulerS.
func NewResilientS(eps float64) (*SchedulerS, error) {
	p, err := core.NewParams(eps)
	if err != nil {
		return nil, err
	}
	return core.NewSchedulerS(core.Options{Params: p, Resilient: true}), nil
}

// NewCommittedS returns the paper's throughput scheduler running under the
// given commitment policy. Binding policies change admission: under
// CommitmentOnArrival the arrival verdict is final (no parked pool), and
// under CommitmentDelta a job is committed once admitted to run; in both
// cases the engine never expires a committed job. CommitmentDefault and
// CommitmentNone leave the scheduler identical to NewSchedulerS.
func NewCommittedS(eps float64, c Commitment) (*SchedulerS, error) {
	p, err := core.NewParams(eps)
	if err != nil {
		return nil, err
	}
	if !c.Valid() {
		_, err := sim.ParseCommitment(string(c))
		return nil, err
	}
	return core.NewSchedulerS(core.Options{Params: p, Commitment: c}), nil
}

// ParseCommitment parses a commitment policy name: "none", "on-admission",
// "delta", or "on-arrival".
func ParseCommitment(s string) (Commitment, error) { return sim.ParseCommitment(s) }

// NewResilientWorkConservingS combines NewResilientS and NewWorkConservingS.
func NewResilientWorkConservingS(eps float64) (*SchedulerS, error) {
	p, err := core.NewParams(eps)
	if err != nil {
		return nil, err
	}
	return core.NewSchedulerS(core.Options{Params: p, WorkConserving: true, Resilient: true}), nil
}

// ParseFaultSpec parses a compact fault-injection spec such as
// "seed=7,mtbf=200,mttr=40,crash=0.01,straggler=0.2,slow=4".
func ParseFaultSpec(spec string) (FaultsConfig, error) { return faults.ParseSpec(spec) }

// NewRecorder returns an empty telemetry recorder; attach it to a run with
// WithRecorder and to a scheduler's decision stream with AttachTelemetry.
func NewRecorder() *Recorder { return telemetry.NewRecorder() }

// AttachTelemetry wires a recorder into a scheduler that supports decision
// instrumentation; it reports whether the scheduler accepted it.
func AttachTelemetry(sched Scheduler, rec *Recorder) bool { return telemetry.Attach(sched, rec) }

// EventsJSONL renders a recorded decision-event stream as deterministic
// JSONL (one event per line, fields in fixed order).
func EventsJSONL(events []TelemetryEvent) []byte { return telemetry.EventsJSONL(events) }

// NewSession returns a step-driven simulation session positioned before the
// first tick. The jobs slice may be empty: online submissions arrive later
// through Session.Arrive. See sim.Session.
func NewSession(cfg SimConfig, jobs []*Job, sched Scheduler) (*Session, error) {
	return sim.NewSession(cfg, jobs, sched)
}

// MarshalJob renders one job in the instance wire format — the form the
// serving replay log stores, so logged sessions re-simulate offline.
func MarshalJob(j *Job) ([]byte, error) { return workload.MarshalJob(j) }

// UnmarshalJob parses and validates one job in the instance wire format.
func UnmarshalJob(data []byte) (*Job, error) { return workload.UnmarshalJob(data) }

// Baseline schedulers.

// NewEDF returns a work-conserving global earliest-deadline-first scheduler.
func NewEDF() Scheduler { return &baselines.ListScheduler{Order: baselines.OrderEDF} }

// NewLLF returns a least-laxity-first scheduler.
func NewLLF() Scheduler { return &baselines.ListScheduler{Order: baselines.OrderLLF} }

// NewFIFO returns a first-in-first-out scheduler.
func NewFIFO() Scheduler { return &baselines.ListScheduler{Order: baselines.OrderFIFO} }

// NewHDF returns a highest-density-first scheduler (profit per work, no
// admission control).
func NewHDF() Scheduler { return &baselines.ListScheduler{Order: baselines.OrderHDF} }

// NewFederated returns a federated-style dedicated-allotment scheduler.
func NewFederated() Scheduler { return &baselines.Federated{} }

// DAG constructors.

// NewDAGBuilder returns an empty DAG builder.
func NewDAGBuilder() *DAGBuilder { return dag.NewBuilder() }

// Chain returns a sequential chain of n nodes with the given work each.
func Chain(n int, work int64) *DAG { return dag.Chain(n, work) }

// Block returns n independent nodes with the given work each.
func Block(n int, work int64) *DAG { return dag.Block(n, work) }

// ForkJoin returns staged fork–join phases (map-reduce-shaped programs).
func ForkJoin(stages, width int, work int64) *DAG { return dag.ForkJoin(stages, width, work) }

// Figure1 returns the paper's Figure 1 adversarial DAG for m processors.
func Figure1(m int, span int64) *DAG { return dag.Figure1(m, span) }

// Figure2 returns the paper's Figure 2 chain-then-block DAG.
func Figure2(chainLen, blockWidth int) *DAG { return dag.Figure2(chainLen, blockWidth) }

// Wavefront returns the n×n stencil wavefront DAG (Smith–Waterman shape).
func Wavefront(n int, work int64) *DAG { return dag.Wavefront(n, work) }

// ReductionTree returns a binary reduction DAG over n leaves.
func ReductionTree(n int, work int64) *DAG { return dag.ReductionTree(n, work) }

// FFT returns the radix-2 butterfly DAG over n = 2^h points.
func FFT(n int, work int64) *DAG { return dag.FFT(n, work) }

// Cholesky returns the task graph of an n×n-tile Cholesky factorization with
// the 1:3:6 POTRF:TRSM:SYRK cost profile at the given unit.
func Cholesky(n int, unit int64) *DAG { return dag.Cholesky(n, dag.DefaultCholeskyWorks(unit)) }

// Serial chains graphs: every sink of one precedes every source of the next.
func Serial(gs ...*DAG) *DAG { return dag.Serial(gs...) }

// ParallelDAG returns the disjoint union of the given graphs.
func ParallelDAG(gs ...*DAG) *DAG { return dag.Parallel(gs...) }

// Repeat chains k serial copies of g.
func Repeat(g *DAG, k int) *DAG { return dag.Repeat(g, k) }

// Profit functions.

// StepProfit returns the Section 3 deadline profit: value if the job
// completes within deadline ticks of arrival, zero after.
func StepProfit(value float64, deadline int64) (ProfitFn, error) {
	return profit.NewStep(value, deadline)
}

// LinearDecayProfit returns a profit flat at peak until flat, then linear to
// zero at zeroAt.
func LinearDecayProfit(peak float64, flat, zeroAt int64) (ProfitFn, error) {
	return profit.NewLinearDecay(peak, flat, zeroAt)
}

// ExpDecayProfit returns a profit flat at peak until flat, then halving
// every halfLife ticks, cut to zero at cutoff.
func ExpDecayProfit(peak float64, flat, halfLife, cutoff int64) (ProfitFn, error) {
	return profit.NewExpDecay(peak, flat, halfLife, cutoff)
}

// PiecewiseProfit returns a right-continuous staircase profit: values[i]
// until until[i] ticks, zero after the last breakpoint.
func PiecewiseProfit(until []int64, values []float64) (ProfitFn, error) {
	return profit.NewPiecewiseConstant(until, values)
}

// NewSpeed returns the exact rational speed num/den.
func NewSpeed(num, den int64) Speed { return rational.New(num, den) }

// GenerateWorkload builds a synthetic instance; see workload.Config.
func GenerateWorkload(cfg WorkloadConfig) (*Instance, error) { return workload.Generate(cfg) }

// OptUpperBound returns an upper bound on the offline optimal profit for the
// job set on m speed-s processors (exact for small instances, LP/knapsack
// relaxations otherwise).
func OptUpperBound(jobs []*Job, m int, speed float64) float64 {
	return opt.Bound(opt.TasksFromJobs(jobs, m, speed), m, speed)
}

// Gantt renders a recorded trace (Run with Config.Record) as ASCII rows.
func Gantt(res *Result, jobs []*Job, maxWidth int) string {
	if res == nil {
		return "(no result)\n"
	}
	return trace.Gantt(res.Trace, jobs, maxWidth)
}
