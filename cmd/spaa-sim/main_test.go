package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"dagsched/internal/experiments"
	"dagsched/internal/rational"
	"dagsched/internal/sim"
	"dagsched/internal/telemetry"
	"dagsched/internal/trace"
)

func TestCheckFaultFlagConflicts(t *testing.T) {
	set := func(names ...string) map[string]bool {
		m := make(map[string]bool)
		for _, n := range names {
			m[n] = true
		}
		return m
	}
	cases := []struct {
		name     string
		spec     string
		setFlags map[string]bool
		conflict bool
		wantErr  bool
	}{
		{name: "empty spec, flags set", spec: "", setFlags: set("mtbf", "crash-rate")},
		{name: "spec only", spec: "mtbf=60,crash=0.01", setFlags: set("sched", "n")},
		{name: "disjoint", spec: "mtbf=60", setFlags: set("crash-rate", "fault-seed")},
		{name: "mtbf conflict", spec: "mtbf=60", setFlags: set("mtbf"), conflict: true},
		{name: "mttr conflict", spec: "mttr=5", setFlags: set("mttr"), conflict: true},
		{name: "crash conflict", spec: "crash=0.1", setFlags: set("crash-rate"), conflict: true},
		{name: "seed conflict", spec: "seed=3", setFlags: set("fault-seed"), conflict: true},
		{name: "straggler conflict", spec: "straggler=0.2,slow=2", setFlags: set("straggler-frac"), conflict: true},
		{name: "slow conflict", spec: "straggler=0.2,slow=2", setFlags: set("straggler-slow"), conflict: true},
		{name: "bad spec", spec: "mtbf", setFlags: set("mtbf"), wantErr: true},
		{name: "unknown key", spec: "bogus=1", setFlags: nil, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkFaultFlagConflicts(tc.spec, tc.setFlags)
			switch {
			case tc.conflict:
				if !errors.Is(err, errFaultFlagConflict) {
					t.Fatalf("got %v, want errFaultFlagConflict", err)
				}
			case tc.wantErr:
				if err == nil || errors.Is(err, errFaultFlagConflict) {
					t.Fatalf("got %v, want a parse error", err)
				}
			default:
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
			}
		})
	}
}

func TestConflictErrorNamesBothSides(t *testing.T) {
	err := checkFaultFlagConflicts("crash=0.5", map[string]bool{"crash-rate": true})
	if err == nil {
		t.Fatal("want conflict error")
	}
	for _, frag := range []string{`"crash"`, "-crash-rate"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not name %s", err, frag)
		}
	}
}

// TestPerfettoPipelineValid mirrors main's -perfetto flow on the adversarial
// instance and checks the exported document against the schema validator and
// a JSON round-trip, so `spaa-sim -perfetto out.json` stays loadable in
// ui.perfetto.dev.
func TestPerfettoPipelineValid(t *testing.T) {
	inst, err := experiments.AdversarialInstance(1)
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewRecorder()
	rec.Probe = telemetry.NewProbe(1, false)
	sched := makeSchedulerForTest(t)
	telemetry.Attach(sched, rec)
	res, err := sim.Run(sim.Config{
		M: inst.M, Speed: rational.One(), Record: true, Telemetry: rec,
	}, inst.Jobs, sched)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := trace.Perfetto(res.Trace, inst.Jobs, rec.Events())
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range rec.Probe.Series() {
		if strings.HasPrefix(ts.Name, "machine.") {
			ct.AddCounterSeries(1, ts)
		}
	}
	ct.SortStable()
	var buf bytes.Buffer
	if err := ct.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if err := telemetry.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("exported trace fails schema check: %v", err)
	}
	if err := trace.CrossCheckEvents(res.Trace, inst.Jobs, rational.One(), rec.Events()); err != nil {
		t.Fatalf("event stream inconsistent with trace: %v", err)
	}
}

func makeSchedulerForTest(t *testing.T) sim.Scheduler {
	t.Helper()
	sched, err := makeScheduler("s", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	return sched
}
