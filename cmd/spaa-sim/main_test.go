package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dagsched/internal/cliflags"
	"dagsched/internal/experiments"
	"dagsched/internal/rational"
	"dagsched/internal/sim"
	"dagsched/internal/telemetry"
	"dagsched/internal/trace"
)

// TestPerfettoPipelineValid mirrors main's -perfetto flow on the adversarial
// instance and checks the exported document against the schema validator and
// a JSON round-trip, so `spaa-sim -perfetto out.json` stays loadable in
// ui.perfetto.dev.
func TestPerfettoPipelineValid(t *testing.T) {
	inst, err := experiments.AdversarialInstance(1)
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewRecorder()
	rec.Probe = telemetry.NewProbe(1, false)
	sched := makeSchedulerForTest(t)
	telemetry.Attach(sched, rec)
	res, err := sim.Run(sim.Config{
		M: inst.M, Speed: rational.One(), Record: true, Telemetry: rec,
	}, inst.Jobs, sched)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := trace.Perfetto(res.Trace, inst.Jobs, rec.Events())
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range rec.Probe.Series() {
		if strings.HasPrefix(ts.Name, "machine.") {
			ct.AddCounterSeries(1, ts)
		}
	}
	ct.SortStable()
	var buf bytes.Buffer
	if err := ct.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if err := telemetry.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("exported trace fails schema check: %v", err)
	}
	if err := trace.CrossCheckEvents(res.Trace, inst.Jobs, rational.One(), rec.Events()); err != nil {
		t.Fatalf("event stream inconsistent with trace: %v", err)
	}
}

func makeSchedulerForTest(t *testing.T) sim.Scheduler {
	t.Helper()
	sched, err := cliflags.MakeScheduler("s", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	return sched
}
