package main

import "math/rand"

// newRand builds a deterministic source for the random pick policy.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
