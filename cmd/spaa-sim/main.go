// Command spaa-sim runs one simulation and prints a result summary and an
// optional ASCII Gantt chart. The workload comes either from a JSON instance
// file (written by dag-gen) or from the synthetic generator flags.
//
// Usage:
//
//	spaa-sim [-instance file.json] [-sched s|swc|nc|gp|edf|llf|fifo|hdf|federated]
//	         [-eps 1.0] [-speed p/q] [-policy id|random|unlucky|cp]
//	         [-m 8] [-n 40] [-seed 1] [-load 1.5] [-profit step|linear|exp]
//	         [-horizon 0] [-gantt] [-ub] [-verify] [-evented]
//	         [-faults "mtbf=60,crash=0.01"] [-fault-seed 1] [-mtbf 0] [-mttr 0]
//	         [-crash-rate 0] [-straggler-frac 0] [-straggler-slow 0] [-resilient]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dagsched/internal/baselines"
	"dagsched/internal/core"
	"dagsched/internal/dag"
	"dagsched/internal/faults"
	"dagsched/internal/opt"
	"dagsched/internal/rational"
	"dagsched/internal/sim"
	"dagsched/internal/trace"
	"dagsched/internal/workload"
)

func main() {
	var (
		instPath = flag.String("instance", "", "JSON instance file (from dag-gen); empty = generate")
		schedSel = flag.String("sched", "s", "scheduler: s, swc, nc, gp, edf, llf, fifo, hdf, federated")
		eps      = flag.Float64("eps", 1.0, "epsilon for the paper schedulers")
		speedStr = flag.String("speed", "1", "machine speed as integer or p/q")
		polSel   = flag.String("policy", "id", "ready-node pick policy: id, random, unlucky, cp")
		m        = flag.Int("m", 8, "processors (generator only)")
		n        = flag.Int("n", 40, "jobs (generator only)")
		seed     = flag.Int64("seed", 1, "generator seed")
		load     = flag.Float64("load", 1.5, "target load (generator only)")
		profSel  = flag.String("profit", "step", "profit family: step, linear, exp (generator only)")
		gantt    = flag.Bool("gantt", false, "print an ASCII Gantt chart")
		showUB   = flag.Bool("ub", false, "also compute the OPT upper bound")
		verify   = flag.Bool("verify", false, "re-validate the recorded schedule with the independent trace checker")
		jsonOut  = flag.Bool("json", false, "emit the full result as JSON instead of the summary")
		stats    = flag.Bool("stats", false, "print instance statistics before running")
		evented  = flag.Bool("evented", false, "use the event-driven engine (event-stationary schedulers only)")
		horizon  = flag.Int64("horizon", 0, "stop the simulation after this many ticks (0 = run to completion)")

		faultSpec = flag.String("faults", "", "fault injection spec, e.g. \"seed=1,mtbf=60,mttr=20,crash=0.01,straggler=0.2,slow=4\"")
		faultSeed = flag.Int64("fault-seed", 0, "fault-model seed (overrides the spec's seed)")
		mtbf      = flag.Float64("mtbf", 0, "mean ticks between processor crashes (0 = no crashes)")
		mttr      = flag.Float64("mttr", 0, "mean ticks to repair a crashed processor (0 = mtbf/10)")
		crash     = flag.Float64("crash-rate", 0, "per-node-per-tick execution failure probability")
		stragF    = flag.Float64("straggler-frac", 0, "fraction of processors designated stragglers")
		stragS    = flag.Float64("straggler-slow", 0, "straggler slowdown factor (≥ 1; 0 = default 4)")
		resilient = flag.Bool("resilient", false, "use the fault-aware resilient scheduler variant")
	)
	flag.Parse()

	fail(validateFlags(*m, *n, *horizon, *load, *eps))

	inst, err := loadInstance(*instPath, *m, *n, *seed, *load, *profSel, *eps)
	fail(err)

	speed, err := parseSpeed(*speedStr)
	fail(err)

	sched, err := makeScheduler(*schedSel, *eps, *resilient)
	fail(err)

	pol, err := makePolicy(*polSel, *seed)
	fail(err)

	fcfg, err := buildFaults(*faultSpec, *faultSeed, *mtbf, *mttr, *crash, *stragF, *stragS)
	fail(err)
	if fcfg != nil && *verify {
		fail(fmt.Errorf("-verify is not supported with fault injection: the independent trace checker does not model faults"))
	}

	simCfg := sim.Config{M: inst.M, Speed: speed, Policy: pol, Record: *gantt || *verify,
		Horizon: *horizon, Faults: fcfg}
	var res *sim.Result
	if *evented {
		switch *schedSel {
		case "gp", "llf", "nc":
			fmt.Fprintf(os.Stderr, "spaa-sim: warning: %s is not event-stationary; the event-driven engine may diverge from tick-exact results\n", *schedSel)
		}
		res, err = sim.RunEvented(simCfg, inst.Jobs, sched)
	} else {
		res, err = sim.Run(simCfg, inst.Jobs, sched)
	}
	fail(err)

	if *jsonOut {
		res.Trace = nil // traces are large; use -gantt/-verify for those paths
		data, err := json.MarshalIndent(res, "", "  ")
		fail(err)
		fmt.Println(string(data))
		return
	}
	fmt.Printf("instance   %s (%d jobs, m=%d, total work %d)\n", inst.Name, len(inst.Jobs), inst.M, inst.TotalWork())
	if *stats {
		fmt.Print(workload.Describe(inst).Table().Render())
	}
	fmt.Printf("scheduler  %s  speed %s  policy %s\n", sched.Name(), speed, pol.Name())
	if res.Faults != nil {
		fmt.Printf("faults     %s\n", fcfg.String())
		fmt.Printf("           %d degraded ticks (min capacity %d), %d crashes, %d proc-ticks down, %d dropped, %d straggled\n",
			res.Faults.DegradedTicks, res.Faults.MinCapacity, res.Faults.CrashEvents,
			res.Faults.DownProcTicks, res.Faults.DroppedProcTicks, res.Faults.StraggleProcTicks)
		fmt.Printf("           %d failed node executions, %d work units lost\n",
			res.Faults.Retries, res.Faults.LostWork)
	}
	fmt.Printf("profit     %.2f of %.2f offered (%.1f%%)\n", res.TotalProfit, res.OfferedProfit, 100*res.ProfitFraction())
	fmt.Printf("completed  %d/%d jobs  (%d expired)\n", res.Completed, len(inst.Jobs), res.Expired)
	fmt.Printf("machine    %d ticks, utilization %.1f%%\n", res.Ticks, 100*res.Utilization())
	if *showUB {
		ub := opt.Bound(opt.TasksFromJobs(inst.Jobs, inst.M, 1), inst.M, 1)
		fmt.Printf("OPT bound  %.2f  → empirical ratio %.2f\n", ub, safeRatio(ub, res.TotalProfit))
	}
	if *verify {
		if err := trace.Validate(res.Trace, inst.Jobs, speed); err != nil {
			fail(fmt.Errorf("schedule INVALID: %w", err))
		}
		if err := trace.VerifyCompletions(res, inst.Jobs); err != nil {
			fail(fmt.Errorf("completions INVALID: %w", err))
		}
		fmt.Println("verified   schedule valid: capacity, precedence, releases, completions")
	}
	if *gantt {
		fmt.Println()
		fmt.Print(trace.Gantt(res.Trace, inst.Jobs, 100))
		fmt.Print(trace.Utilization(res.Trace, 100))
	}
}

// validateFlags rejects nonsensical generator and engine parameters up front
// with clear errors instead of surfacing them as panics or empty runs.
func validateFlags(m, n int, horizon int64, load, eps float64) error {
	if m < 1 {
		return fmt.Errorf("-m = %d: need at least one processor", m)
	}
	if n < 1 {
		return fmt.Errorf("-n = %d: need at least one job", n)
	}
	if horizon < 0 {
		return fmt.Errorf("-horizon = %d: must be ≥ 0 (0 runs to completion)", horizon)
	}
	if load <= 0 {
		return fmt.Errorf("-load = %g: must be positive", load)
	}
	if eps <= 0 {
		return fmt.Errorf("-eps = %g: must be positive", eps)
	}
	return nil
}

// buildFaults merges the -faults spec with the individual override flags and
// returns nil when no fault injection was requested.
func buildFaults(spec string, seed int64, mtbf, mttr, crash, stragF, stragS float64) (*faults.Config, error) {
	cfg, err := faults.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	if mtbf != 0 {
		cfg.MTBF = mtbf
	}
	if mttr != 0 {
		cfg.MTTR = mttr
	}
	if crash != 0 {
		cfg.CrashRate = crash
	}
	if stragF != 0 {
		cfg.StragglerFrac = stragF
	}
	if stragS != 0 {
		cfg.StragglerSlow = stragS
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	return &cfg, nil
}

func safeRatio(ub, p float64) float64 {
	if p == 0 {
		return 0
	}
	return ub / p
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "spaa-sim: %v\n", err)
		os.Exit(1)
	}
}

func loadInstance(path string, m, n int, seed int64, load float64, prof string, eps float64) (*workload.Instance, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var inst workload.Instance
		if err := json.Unmarshal(data, &inst); err != nil {
			return nil, err
		}
		return &inst, nil
	}
	kind, err := parseProfitKind(prof)
	if err != nil {
		return nil, err
	}
	return workload.Generate(workload.Config{
		Seed: seed, N: n, M: m, Eps: eps, SlackSpread: 0.4, Load: load, Scale: 2, Profit: kind,
	})
}

func parseProfitKind(s string) (workload.ProfitKind, error) {
	switch s {
	case "step":
		return workload.ProfitStep, nil
	case "linear":
		return workload.ProfitLinear, nil
	case "exp":
		return workload.ProfitExp, nil
	default:
		return 0, fmt.Errorf("unknown profit family %q", s)
	}
}

func parseSpeed(s string) (rational.Rat, error) {
	if num, den, ok := strings.Cut(s, "/"); ok {
		p, err1 := strconv.ParseInt(num, 10, 64)
		q, err2 := strconv.ParseInt(den, 10, 64)
		if err1 != nil || err2 != nil || q == 0 {
			return rational.Rat{}, fmt.Errorf("bad speed %q", s)
		}
		return rational.New(p, q), nil
	}
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		return rational.FromInt(v), nil
	}
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return rational.FromFloat(v, 64), nil
	}
	return rational.Rat{}, fmt.Errorf("bad speed %q", s)
}

func makeScheduler(sel string, eps float64, resilient bool) (sim.Scheduler, error) {
	params, err := core.NewParams(eps)
	if err != nil {
		return nil, err
	}
	switch sel {
	case "s":
		return core.NewSchedulerS(core.Options{Params: params, Resilient: resilient}), nil
	case "swc":
		return core.NewSchedulerS(core.Options{Params: params, WorkConserving: true, Resilient: resilient}), nil
	case "nc", "gp":
		if resilient {
			return nil, fmt.Errorf("scheduler %q has no resilient variant", sel)
		}
		if sel == "nc" {
			return core.NewSchedulerNC(core.Options{Params: params}), nil
		}
		return core.NewSchedulerGP(core.Options{Params: params}), nil
	case "edf":
		return &baselines.ListScheduler{Order: baselines.OrderEDF, Resilient: resilient}, nil
	case "llf":
		return &baselines.ListScheduler{Order: baselines.OrderLLF, Resilient: resilient}, nil
	case "fifo":
		return &baselines.ListScheduler{Order: baselines.OrderFIFO, Resilient: resilient}, nil
	case "hdf":
		return &baselines.ListScheduler{Order: baselines.OrderHDF, Resilient: resilient}, nil
	case "federated":
		return &baselines.Federated{Resilient: resilient}, nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q", sel)
	}
}

func makePolicy(sel string, seed int64) (dag.PickPolicy, error) {
	switch sel {
	case "id":
		return dag.ByID{}, nil
	case "random":
		return dag.Random{Rng: newRand(seed)}, nil
	case "unlucky":
		return dag.Unlucky{}, nil
	case "cp":
		return dag.CriticalPathFirst{}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", sel)
	}
}
