// Command spaa-sim runs one simulation and prints a result summary and an
// optional ASCII Gantt chart. The workload comes either from a JSON instance
// file (written by dag-gen) or from the synthetic generator flags.
//
// Usage:
//
//	spaa-sim [-instance file.json | -adversarial N] [-sched s|swc|nc|gp|edf|llf|fifo|hdf|federated]
//	         [-eps 1.0] [-speed p/q] [-policy id|random|unlucky|cp]
//	         [-m 8] [-n 40] [-seed 1] [-load 1.5] [-profit step|linear|exp]
//	         [-horizon 0] [-gantt] [-ub] [-verify] [-evented]
//	         [-faults "mtbf=60,crash=0.01"] [-fault-seed 1] [-mtbf 0] [-mttr 0]
//	         [-crash-rate 0] [-straggler-frac 0] [-straggler-slow 0] [-resilient]
//	         [-events out.jsonl] [-perfetto out.json] [-telemetry-summary]
//	         [-probe 1] [-probe-jobs]
//
// Telemetry: -events writes the run's decision-event stream as JSONL,
// -perfetto writes a Chrome trace-event file for ui.perfetto.dev, -probe
// samples machine time series every N ticks (exported as Perfetto counter
// tracks), and -telemetry-summary prints the run's counter/histogram
// registry. A -faults spec field combined with its individual override flag
// is rejected (exit 2).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"dagsched/internal/cliflags"
	"dagsched/internal/experiments"
	"dagsched/internal/opt"
	"dagsched/internal/sim"
	"dagsched/internal/telemetry"
	"dagsched/internal/trace"
	"dagsched/internal/workload"
)

func main() {
	var (
		instPath = flag.String("instance", "", "JSON instance file (from dag-gen); empty = generate")
		schedSel = flag.String("sched", "s", "scheduler: s, swc, nc, gp, edf, llf, fifo, hdf, federated")
		eps      = flag.Float64("eps", 1.0, "epsilon for the paper schedulers")
		speedStr = flag.String("speed", "1", "machine speed as integer or p/q")
		polSel   = flag.String("policy", "id", "ready-node pick policy: id, random, unlucky, cp")
		m        = flag.Int("m", 8, "processors (generator only)")
		n        = flag.Int("n", 40, "jobs (generator only)")
		seed     = flag.Int64("seed", 1, "generator seed")
		load     = flag.Float64("load", 1.5, "target load (generator only)")
		profSel  = flag.String("profit", "step", "profit family: step, linear, exp (generator only)")
		gantt    = flag.Bool("gantt", false, "print an ASCII Gantt chart")
		showUB   = flag.Bool("ub", false, "also compute the OPT upper bound")
		verify   = flag.Bool("verify", false, "re-validate the recorded schedule with the independent trace checker")
		jsonOut  = flag.Bool("json", false, "emit the full result as JSON instead of the summary")
		stats    = flag.Bool("stats", false, "print instance statistics before running")
		evented  = flag.Bool("evented", false, "use the event-driven engine (event-stationary schedulers only)")
		horizon  = flag.Int64("horizon", 0, "stop the simulation after this many ticks (0 = run to completion)")

		resilient = flag.Bool("resilient", false, "use the fault-aware resilient scheduler variant")

		advPhases  = flag.Int("adversarial", 0, "run the Figure-1 adversarial instance with this many phases (conflicts with -instance)")
		eventsPath = flag.String("events", "", "write the decision-event stream as JSONL to this file")
		perfPath   = flag.String("perfetto", "", "write a Chrome trace-event JSON file (open at ui.perfetto.dev); implies recording")
		telSummary = flag.Bool("telemetry-summary", false, "print the run's telemetry registry (counters, gauges, histograms)")
		probeEvery = flag.Int64("probe", 0, "sample machine time series every N ticks (0 = off; 1 = every tick)")
		probeJobs  = flag.Bool("probe-jobs", false, "with -probe, also sample per-job series (tick engine only)")
	)
	var faultFlags cliflags.FaultFlags
	faultFlags.Register(flag.CommandLine)
	flag.Parse()

	setFlags := cliflags.SetFlags(flag.CommandLine)

	fail(validateFlags(*m, *n, *horizon, *load, *eps))
	if *advPhases < 0 {
		fail(fmt.Errorf("-adversarial = %d: must be ≥ 0", *advPhases))
	}
	if *probeEvery < 0 {
		fail(fmt.Errorf("-probe = %d: must be ≥ 0", *probeEvery))
	}
	if *advPhases > 0 && *instPath != "" {
		fatalUsage(fmt.Errorf("-adversarial conflicts with -instance: pick one workload source"))
	}

	var inst *workload.Instance
	var err error
	if *advPhases > 0 {
		inst, err = experiments.AdversarialInstance(*advPhases)
	} else {
		inst, err = loadInstance(*instPath, *m, *n, *seed, *load, *profSel, *eps)
	}
	fail(err)

	speed, err := cliflags.ParseSpeed(*speedStr)
	fail(err)

	sched, err := cliflags.MakeScheduler(*schedSel, *eps, *resilient)
	fail(err)

	pol, err := cliflags.MakePolicy(*polSel, *seed)
	fail(err)

	if err := faultFlags.Check(setFlags); err != nil {
		fatalUsage(err)
	}
	fcfg, err := faultFlags.Build()
	fail(err)
	if fcfg != nil && *verify {
		fail(fmt.Errorf("-verify is not supported with fault injection: the independent trace checker does not model faults"))
	}

	var rec *telemetry.Recorder
	if *eventsPath != "" || *perfPath != "" || *telSummary || *probeEvery > 0 {
		rec = telemetry.NewRecorder()
		if *probeEvery > 0 {
			rec.Probe = telemetry.NewProbe(*probeEvery, *probeJobs)
		}
		telemetry.Attach(sched, rec)
	}

	simCfg := sim.Config{M: inst.M, Speed: speed, Policy: pol,
		Record:  *gantt || *verify || *perfPath != "",
		Horizon: *horizon, Faults: fcfg, Telemetry: rec}
	var res *sim.Result
	if *evented {
		switch *schedSel {
		case "gp", "llf", "nc":
			fmt.Fprintf(os.Stderr, "spaa-sim: warning: %s is not event-stationary; the event-driven engine may diverge from tick-exact results\n", *schedSel)
		}
		res, err = sim.RunEvented(simCfg, inst.Jobs, sched)
	} else {
		res, err = sim.Run(simCfg, inst.Jobs, sched)
	}
	fail(err)

	if *eventsPath != "" {
		fail(os.WriteFile(*eventsPath, telemetry.EventsJSONL(rec.Events()), 0o644))
	}
	if *perfPath != "" {
		ct, err := trace.Perfetto(res.Trace, inst.Jobs, rec.Events())
		fail(err)
		if rec.Probe != nil {
			for _, ts := range rec.Probe.Series() {
				if strings.HasPrefix(ts.Name, "machine.") {
					ct.AddCounterSeries(1, ts)
				}
			}
			ct.SortStable()
		}
		f, err := os.Create(*perfPath)
		fail(err)
		fail(ct.WriteJSON(f))
		fail(f.Close())
	}

	if *jsonOut {
		res.Trace = nil // traces are large; use -gantt/-verify for those paths
		data, err := json.MarshalIndent(res, "", "  ")
		fail(err)
		fmt.Println(string(data))
		return
	}
	fmt.Printf("instance   %s (%d jobs, m=%d, total work %d)\n", inst.Name, len(inst.Jobs), inst.M, inst.TotalWork())
	if *stats {
		fmt.Print(workload.Describe(inst).Table().Render())
	}
	fmt.Printf("scheduler  %s  speed %s  policy %s\n", sched.Name(), speed, pol.Name())
	if res.Faults != nil {
		fmt.Printf("faults     %s\n", fcfg.String())
		fmt.Printf("           %d degraded ticks (min capacity %d), %d crashes, %d proc-ticks down, %d dropped, %d straggled\n",
			res.Faults.DegradedTicks, res.Faults.MinCapacity, res.Faults.CrashEvents,
			res.Faults.DownProcTicks, res.Faults.DroppedProcTicks, res.Faults.StraggleProcTicks)
		fmt.Printf("           %d failed node executions, %d work units lost\n",
			res.Faults.Retries, res.Faults.LostWork)
	}
	fmt.Printf("profit     %.2f of %.2f offered (%.1f%%)\n", res.TotalProfit, res.OfferedProfit, 100*res.ProfitFraction())
	fmt.Printf("completed  %d/%d jobs  (%d expired)\n", res.Completed, len(inst.Jobs), res.Expired)
	fmt.Printf("machine    %d ticks, utilization %.1f%%\n", res.Ticks, 100*res.Utilization())
	if *showUB {
		ub := opt.Bound(opt.TasksFromJobs(inst.Jobs, inst.M, 1), inst.M, 1)
		fmt.Printf("OPT bound  %.2f  → empirical ratio %.2f\n", ub, safeRatio(ub, res.TotalProfit))
	}
	if *verify {
		if err := trace.Validate(res.Trace, inst.Jobs, speed); err != nil {
			fail(fmt.Errorf("schedule INVALID: %w", err))
		}
		if err := trace.VerifyCompletions(res, inst.Jobs); err != nil {
			fail(fmt.Errorf("completions INVALID: %w", err))
		}
		fmt.Println("verified   schedule valid: capacity, precedence, releases, completions")
		if rec != nil {
			if err := trace.CrossCheckEvents(res.Trace, inst.Jobs, speed, rec.Events()); err != nil {
				fail(fmt.Errorf("event stream INVALID: %w", err))
			}
			fmt.Println("verified   event stream consistent: completions and preemptions match the replay")
		}
	}
	if *telSummary {
		fmt.Println()
		fmt.Print(rec.Registry().Table("telemetry").Render())
	}
	if *gantt {
		fmt.Println()
		fmt.Print(trace.Gantt(res.Trace, inst.Jobs, 100))
		fmt.Print(trace.Utilization(res.Trace, 100))
	}
}

// validateFlags rejects nonsensical generator and engine parameters up front
// with clear errors instead of surfacing them as panics or empty runs.
func validateFlags(m, n int, horizon int64, load, eps float64) error {
	if m < 1 {
		return fmt.Errorf("-m = %d: need at least one processor", m)
	}
	if n < 1 {
		return fmt.Errorf("-n = %d: need at least one job", n)
	}
	if horizon < 0 {
		return fmt.Errorf("-horizon = %d: must be ≥ 0 (0 runs to completion)", horizon)
	}
	if load <= 0 {
		return fmt.Errorf("-load = %g: must be positive", load)
	}
	if eps <= 0 {
		return fmt.Errorf("-eps = %g: must be positive", eps)
	}
	return nil
}

func safeRatio(ub, p float64) float64 {
	if p == 0 {
		return 0
	}
	return ub / p
}

func fail(err error) { cliflags.Fail("spaa-sim", err) }

// fatalUsage reports a flag-usage error and exits 2, mirroring flag's own
// bad-usage exit code (and spaa-bench's strict validation).
func fatalUsage(err error) { cliflags.FatalUsage("spaa-sim", err) }

func loadInstance(path string, m, n int, seed int64, load float64, prof string, eps float64) (*workload.Instance, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var inst workload.Instance
		if err := json.Unmarshal(data, &inst); err != nil {
			return nil, err
		}
		return &inst, nil
	}
	kind, err := parseProfitKind(prof)
	if err != nil {
		return nil, err
	}
	return workload.Generate(workload.Config{
		Seed: seed, N: n, M: m, Eps: eps, SlackSpread: 0.4, Load: load, Scale: 2, Profit: kind,
	})
}

func parseProfitKind(s string) (workload.ProfitKind, error) {
	switch s {
	case "step":
		return workload.ProfitStep, nil
	case "linear":
		return workload.ProfitLinear, nil
	case "exp":
		return workload.ProfitExp, nil
	default:
		return 0, fmt.Errorf("unknown profit family %q", s)
	}
}
