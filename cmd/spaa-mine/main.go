// Command spaa-mine runs the adversary miner: a hill-climbing search over
// workload perturbations that maximizes a scheduler's empirical competitive
// ratio UB(OPT)/profit. Use -slack 1 to constrain the search to instances
// satisfying the Theorem 2 condition (the regime where the paper's
// guarantee applies).
//
// Usage:
//
//	spaa-mine [-sched s|swc|nc|edf|llf|fifo|hdf|federated|all] [-iters 300]
//	          [-seed 7] [-n 12] [-m 4] [-slack 0] [-parallel N] [-o mined.json]
//
// -sched all mines every target through the deterministic grid runner: one
// independent search per scheduler, fanned across -parallel workers, with
// output in roster order regardless of completion order.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"

	"dagsched/internal/adversary"
	"dagsched/internal/cliflags"
	"dagsched/internal/runner"
	"dagsched/internal/sim"
	"dagsched/internal/workload"
)

func main() {
	var (
		schedSel = flag.String("sched", "edf", "target scheduler: s, swc, nc, edf, llf, fifo, hdf, federated, or 'all'")
		iters    = flag.Int("iters", 300, "mutation attempts")
		seed     = flag.Int64("seed", 7, "search seed")
		n        = flag.Int("n", 12, "jobs in the start instance")
		m        = flag.Int("m", 4, "processors")
		slack    = flag.Float64("slack", 0, "preserve the Theorem 2 slack condition with this epsilon (0 = unrestricted)")
		parallel = flag.Int("parallel", 0, "workers for -sched all (0 = GOMAXPROCS)")
		out      = flag.String("o", "", "write the mined instance as JSON")
	)
	flag.Parse()

	if *schedSel == "all" {
		fail(mineAll(*iters, *seed, *n, *m, *slack, *parallel, *out))
		return
	}

	mk, err := schedulerFactory(*schedSel)
	fail(err)

	start, err := workload.Generate(workload.Config{
		Seed: *seed, N: *n, M: *m, Eps: 1, SlackSpread: 0.4, Load: 1.5, Scale: 1,
	})
	fail(err)

	res, err := adversary.Mine(adversary.Config{
		Seed: *seed, Iterations: *iters, Scheduler: mk, MaxJobs: 3 * *n, MinSlack: *slack,
	}, start)
	fail(err)

	fmt.Printf("target     %s\n", mk().Name())
	fmt.Printf("search     %d iterations, %d accepted mutations\n", *iters, res.Accepted)
	fmt.Printf("ratio      %.3f → %s\n", res.StartRatio, fmtRatio(res.Ratio))
	fmt.Printf("instance   %d jobs (started with %d)\n", len(res.Instance.Jobs), *n)
	if len(res.History) > 1 {
		fmt.Printf("trajectory")
		for _, r := range res.History {
			fmt.Printf(" %.2f", r)
		}
		fmt.Println()
	}
	if *out != "" {
		data, err := json.MarshalIndent(res.Instance, "", "  ")
		fail(err)
		fail(os.WriteFile(*out, append(data, '\n'), 0o644))
		fmt.Printf("written    %s (replay: spaa-sim -instance %s -sched %s -ub)\n", *out, *out, *schedSel)
	}
}

// allTargets is the -sched all roster, in reporting order.
var allTargets = []string{"s", "swc", "nc", "edf", "llf", "fifo", "hdf", "federated"}

// mineAll runs one independent mining search per roster scheduler on the
// runner's worker pool. Each cell regenerates its own start instance, so
// searches share nothing and the report is deterministic for any worker
// count. -o writes the single worst mined instance (highest ratio).
func mineAll(iters int, seed int64, n, m int, slack float64, parallel int, out string) error {
	type mined struct {
		name string
		res  *adversary.Result
	}
	results, err := runner.Map(context.Background(), "mine", allTargets, runner.Options{Parallel: parallel},
		func(_ context.Context, sel string, _ int) (mined, error) {
			mk, err := schedulerFactory(sel)
			if err != nil {
				return mined{}, err
			}
			start, err := workload.Generate(workload.Config{
				Seed: seed, N: n, M: m, Eps: 1, SlackSpread: 0.4, Load: 1.5, Scale: 1,
			})
			if err != nil {
				return mined{}, err
			}
			res, err := adversary.Mine(adversary.Config{
				Seed: seed, Iterations: iters, Scheduler: mk, MaxJobs: 3 * n, MinSlack: slack,
			}, start)
			if err != nil {
				return mined{}, err
			}
			return mined{name: mk().Name(), res: res}, nil
		})
	if err != nil {
		return err
	}

	fmt.Printf("mined %d targets, %d iterations each (slack %g)\n", len(results), iters, slack)
	worst := 0
	for i, r := range results {
		fmt.Printf("%-28s ratio %.3f → %s (%d jobs, %d accepted)\n",
			r.name, r.res.StartRatio, fmtRatio(r.res.Ratio), len(r.res.Instance.Jobs), r.res.Accepted)
		if r.res.Ratio > results[worst].res.Ratio {
			worst = i
		}
	}
	if out != "" {
		w := results[worst]
		data, err := json.MarshalIndent(w.res.Instance, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("written    %s (worst target: %s)\n", out, w.name)
	}
	return nil
}

func fmtRatio(r float64) string {
	if math.IsInf(r, 1) {
		return "inf (profit driven to zero)"
	}
	return fmt.Sprintf("%.3f", r)
}

func fail(err error) { cliflags.Fail("spaa-mine", err) }

// schedulerFactory narrows the shared roster to the miner's fixed ε=1,
// fault-free targets.
func schedulerFactory(sel string) (func() sim.Scheduler, error) {
	return cliflags.SchedulerFactory(sel, 1, false)
}
