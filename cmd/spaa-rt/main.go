// Command spaa-rt analyzes a periodic DAG task system: it runs the
// analytic schedulability tests (federated allocation, capacity bound 2)
// and then simulates the system for a number of hyperperiods under the
// partitioned federated runtime, global EDF, and the paper's scheduler S,
// reporting which meet every deadline.
//
// Usage:
//
//	spaa-rt [-system sys.json] [-hyperperiods 2]     # analyze a JSON system
//	spaa-rt -demo                                    # built-in demo system
//	spaa-rt -emit-demo > sys.json                    # write the demo as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dagsched/internal/baselines"
	"dagsched/internal/cliflags"
	"dagsched/internal/core"
	"dagsched/internal/dag"
	"dagsched/internal/realtime"
	"dagsched/internal/sim"
)

func main() {
	var (
		sysPath  = flag.String("system", "", "JSON system file")
		demo     = flag.Bool("demo", false, "use the built-in demo system")
		emitDemo = flag.Bool("emit-demo", false, "print the demo system as JSON and exit")
		hps      = flag.Int64("hyperperiods", 2, "hyperperiods to simulate")
	)
	flag.Parse()

	if *emitDemo {
		data, err := json.MarshalIndent(demoSystem(), "", "  ")
		fail(err)
		fmt.Println(string(data))
		return
	}

	var sys realtime.System
	switch {
	case *demo || *sysPath == "":
		sys = demoSystem()
	default:
		data, err := os.ReadFile(*sysPath)
		fail(err)
		fail(json.Unmarshal(data, &sys))
	}
	fail(sys.Validate())

	fmt.Printf("system: %d tasks on m=%d, total utilization %.3f\n\n", len(sys.Tasks), sys.M, sys.TotalUtilization())
	fmt.Printf("%-4s %-8s %-8s %-8s %-8s %-8s %-7s\n", "task", "C", "L", "T", "D", "U", "heavy")
	for _, t := range sys.Tasks {
		fmt.Printf("%-4d %-8d %-8d %-8d %-8d %-8.3f %-7v\n",
			t.ID, t.Work(), t.Span(), t.Period, t.Deadline, t.Utilization(), t.Heavy())
	}

	alloc := realtime.Federated(sys)
	fmt.Printf("\nfederated test:   schedulable=%v", alloc.Schedulable)
	if !alloc.Schedulable {
		fmt.Printf("  (%s)", alloc.Reason)
	} else if len(alloc.HeavyCores) > 0 {
		fmt.Printf("  heavy=%v light-cores=%d", alloc.HeavyCores, alloc.LightCores)
	}
	fmt.Println()
	fmt.Printf("capacity-bound-2: %v\n", realtime.CapacityBound2(sys))

	h, err := realtime.Hyperperiod(sys, 1<<22)
	fail(err)
	horizon := *hps * h
	jobs, taskOf, err := realtime.Expand(sys, horizon)
	fail(err)
	fmt.Printf("\nsimulating %d instances over %d ticks (%d hyperperiods of %d):\n",
		len(jobs), horizon, *hps, h)

	type runtimeCase struct {
		name  string
		sched sim.Scheduler
	}
	cases := []runtimeCase{
		{"edf", &baselines.ListScheduler{Order: baselines.OrderEDF}},
		{"paper-S", core.NewSchedulerS(core.Options{Params: core.MustParams(1)})},
	}
	if alloc.Schedulable {
		p, err := realtime.NewPartitioned(sys, alloc, taskOf)
		fail(err)
		cases = append([]runtimeCase{{"rt-partitioned", p}}, cases...)
	}
	for _, c := range cases {
		res, err := sim.Run(sim.Config{M: sys.M}, jobs, c.sched)
		fail(err)
		verdict := "ALL DEADLINES MET"
		if res.Completed != len(jobs) {
			verdict = fmt.Sprintf("%d/%d met", res.Completed, len(jobs))
		}
		fmt.Printf("  %-16s %s\n", c.name, verdict)
	}
}

func demoSystem() realtime.System {
	return realtime.System{
		M: 8,
		Tasks: []realtime.Task{
			{ID: 1, Graph: dag.ForkJoin(1, 24, 2), Period: 24, Deadline: 20},
			{ID: 2, Graph: dag.Chain(4, 1), Period: 8, Deadline: 6},
			{ID: 3, Graph: dag.ReductionTree(16, 1), Period: 48, Deadline: 32},
			{ID: 4, Graph: dag.Block(6, 1), Period: 12, Deadline: 12},
		},
	}
}

func fail(err error) { cliflags.Fail("spaa-rt", err) }
