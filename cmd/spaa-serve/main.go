// Command spaa-serve runs the scheduler as a long-lived HTTP daemon: job
// specs POSTed to /v1/jobs get an immediate admit/reject verdict from the
// serving scheduler's admission test, simulated time advances with the wall
// clock, and every accepted arrival lands in a replay log that re-simulates
// bit-identically offline (spaa-sim over the logged instance).
//
// SIGTERM or SIGINT drains gracefully: new submissions are rejected with
// 503, committed jobs run to completion in simulated time, and the final
// aggregate Result is printed to stdout.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dagsched/internal/cliflags"
	"dagsched/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		m        = flag.Int("m", 1, "number of identical processors")
		shards   = flag.Int("shards", 1, "engine shards behind the pressure-aware placer (1 ≤ shards ≤ m)")
		sched    = flag.String("sched", "s", "scheduler: "+strings.Join(cliflags.SchedulerNames, ", "))
		eps      = flag.Float64("eps", 1.0, "epsilon for the paper schedulers")
		speedStr = flag.String("speed", "1", "machine speed (int, p/q, or float)")
		tick     = flag.Duration("tick", serve.DefaultTickInterval, "wall-clock duration of one simulated tick")
		queue    = flag.Int("queue", 64, "submission mailbox depth (full queue answers 429)")
		replay   = flag.String("replay", "", "append accepted arrivals to this replay log file")
		walDir   = flag.String("wal-dir", "", "write-ahead log directory; enables durable commitment and crash recovery")
		fsyncStr = flag.String("fsync", "always", "WAL fsync policy: always, interval, or off")
		fsyncInt = flag.Duration("fsync-interval", serve.DefaultFsyncInterval, "flush cadence under -fsync=interval")
		ckptInt  = flag.Duration("checkpoint-interval", serve.DefaultCheckpointInterval, "checkpoint cadence (negative: only at drain)")
		maxBody  = flag.Int64("max-body", serve.DefaultMaxBodyBytes, "largest POST /v1/jobs body in bytes (413 above)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		cliflags.FatalUsage("spaa-serve", fmt.Errorf("unexpected arguments: %v", flag.Args()))
	}

	speed, err := cliflags.ParseSpeed(*speedStr)
	if err != nil {
		cliflags.FatalUsage("spaa-serve", err)
	}
	if err := cliflags.ValidateShards(*shards, *m); err != nil {
		cliflags.FatalUsage("spaa-serve", err)
	}
	fsync, err := serve.ParseFsyncPolicy(*fsyncStr)
	if err != nil {
		cliflags.FatalUsage("spaa-serve", err)
	}
	cfg := serve.Config{
		M:                  *m,
		Shards:             *shards,
		Sched:              *sched,
		Eps:                *eps,
		Speed:              speed,
		TickInterval:       *tick,
		QueueDepth:         *queue,
		WALDir:             *walDir,
		Fsync:              fsync,
		FsyncInterval:      *fsyncInt,
		CheckpointInterval: *ckptInt,
		MaxBodyBytes:       *maxBody,
	}
	var logFile *os.File
	if *replay != "" {
		logFile, err = os.Create(*replay)
		if err != nil {
			cliflags.Fail("spaa-serve", err)
		}
		cfg.ReplayLog = logFile
	}

	srv, err := serve.New(cfg)
	if err != nil {
		cliflags.Fail("spaa-serve", err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, syscall.SIGTERM, syscall.SIGINT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "spaa-serve: %s scheduler on %d processors (%d shard(s)), listening on %s\n",
		srv.Scheduler(), *m, srv.Shards(), *addr)
	if rec := srv.Recovery(); rec != nil && rec.Recovered {
		fmt.Fprintf(os.Stderr,
			"spaa-serve: recovered %d jobs to clock %d (checkpoint clock %d, %d WAL records, %d torn bytes cut)\n",
			rec.Jobs, rec.Clock, rec.CheckpointClock, rec.WALJobs, rec.TornBytes)
	}

	select {
	case sig := <-sigC:
		fmt.Fprintf(os.Stderr, "spaa-serve: %v, draining\n", sig)
	case err := <-serveErr:
		cliflags.Fail("spaa-serve", err)
	}

	res := srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "spaa-serve: shutdown: %v\n", err)
	}
	if logFile != nil {
		if err := logFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "spaa-serve: replay log: %v\n", err)
		}
	}
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		cliflags.Fail("spaa-serve", err)
	}
	fmt.Println(string(out))
}
