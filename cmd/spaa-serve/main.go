// Command spaa-serve runs the scheduler as a long-lived HTTP daemon: job
// specs POSTed to /v1/jobs (or in bulk to /v1/jobs:batch, up to -max-batch
// specs per request) get an immediate admit/reject verdict from the serving
// scheduler's admission test, simulated time advances with the wall clock,
// and every accepted arrival lands in a replay log that re-simulates
// bit-identically offline (spaa-sim over the logged instance). With an
// event-safe scheduler the daemon idles on an event-jump timer instead of a
// fixed ticker (-clock overrides the discipline), so a quiet shard burns no
// CPU between events.
//
// -commitment selects the admission contract: the default on-admission makes
// verdicts durable but non-binding, while the binding policies (delta,
// on-arrival) guarantee every admitted job runs to completion — it is never
// expired or displaced, even past its deadline. Job specs may also carry a
// per-job "commitment" field overriding the daemon policy, and "profit" may
// be a structured non-increasing function ({"type":"step"|"linear"|"exp"|
// "piecewise", ...}) instead of a scalar.
//
// Observability: GET /metrics on the serving address exposes the Prometheus
// text scrape; -debug-addr opens a second listener with /metrics,
// /debug/requests (recent submissions as a Perfetto trace), and
// net/http/pprof, so profile captures never compete with serving traffic.
// Operational records go to stderr as structured logs (-log-format text or
// json, -log-level debug..error); -log-level=debug logs every submission
// with its request ID and shard.
//
// SIGTERM or SIGINT drains gracefully: new submissions are rejected with
// 503, committed jobs run to completion in simulated time, and the final
// aggregate Result is printed to stdout.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dagsched/internal/cliflags"
	"dagsched/internal/serve"
)

// newLogger builds the daemon's stderr logger from the -log-format and
// -log-level flags. The Result JSON contract is untouched: logs go to
// stderr, the drained Result alone goes to stdout.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: want debug, info, warn, or error", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q: want text or json", format)
	}
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		debugAddr = flag.String("debug-addr", "", "diagnostics listen address: /metrics, /debug/requests, and net/http/pprof (empty: disabled)")
		m         = flag.Int("m", 1, "number of identical processors")
		shards    = flag.Int("shards", 1, "engine shards behind the pressure-aware placer (1 ≤ shards ≤ m)")
		sched     = flag.String("sched", "s", "scheduler: "+strings.Join(cliflags.SchedulerNames, ", "))
		commit    = flag.String("commitment", serve.CommitmentOnAdmission, "commitment policy: none, on-admission, on-arrival, or delta (binding policies guarantee admitted jobs finish)")
		eps       = flag.Float64("eps", 1.0, "epsilon for the paper schedulers")
		speedStr  = flag.String("speed", "1", "machine speed (int, p/q, or float)")
		tick      = flag.Duration("tick", serve.DefaultTickInterval, "wall-clock duration of one simulated tick")
		queue     = flag.Int("queue", 64, "submission mailbox depth (full queue answers 429)")
		replay    = flag.String("replay", "", "append accepted arrivals to this replay log file")
		walDir    = flag.String("wal-dir", "", "write-ahead log directory; enables durable commitment and crash recovery")
		fsyncStr  = flag.String("fsync", "always", "WAL fsync policy: always, interval, or off")
		fsyncInt  = flag.Duration("fsync-interval", serve.DefaultFsyncInterval, "flush cadence under -fsync=interval")
		ckptInt   = flag.Duration("checkpoint-interval", serve.DefaultCheckpointInterval, "checkpoint cadence (negative: only at drain)")
		maxBody   = flag.Int64("max-body", serve.DefaultMaxBodyBytes, "largest POST /v1/jobs body in bytes (413 above)")
		maxBatch  = flag.Int("max-batch", serve.DefaultMaxBatchItems, "largest POST /v1/jobs:batch item count (413 above)")
		clockStr  = flag.String("clock", "auto", "idle clock discipline: auto, ticker, or jump")
		logFormat = flag.String("log-format", "text", "structured log format on stderr: text or json")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, or error (debug logs every submission)")
		traceDeep = flag.Int("trace-depth", serve.DefaultTraceDepth, "request traces kept for /debug/requests")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		cliflags.FatalUsage("spaa-serve", fmt.Errorf("unexpected arguments: %v", flag.Args()))
	}

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		cliflags.FatalUsage("spaa-serve", err)
	}
	speed, err := cliflags.ParseSpeed(*speedStr)
	if err != nil {
		cliflags.FatalUsage("spaa-serve", err)
	}
	if err := cliflags.ValidateShards(*shards, *m); err != nil {
		cliflags.FatalUsage("spaa-serve", err)
	}
	fsync, err := serve.ParseFsyncPolicy(*fsyncStr)
	if err != nil {
		cliflags.FatalUsage("spaa-serve", err)
	}
	if err := cliflags.ValidateMaxBatch(*maxBatch); err != nil {
		cliflags.FatalUsage("spaa-serve", err)
	}
	clock, err := serve.ParseClockMode(*clockStr)
	if err != nil {
		cliflags.FatalUsage("spaa-serve", err)
	}
	cfg := serve.Config{
		M:                  *m,
		Shards:             *shards,
		Sched:              *sched,
		Commitment:         *commit,
		Eps:                *eps,
		Speed:              speed,
		TickInterval:       *tick,
		QueueDepth:         *queue,
		WALDir:             *walDir,
		Fsync:              fsync,
		FsyncInterval:      *fsyncInt,
		CheckpointInterval: *ckptInt,
		MaxBodyBytes:       *maxBody,
		MaxBatchItems:      *maxBatch,
		Clock:              clock,
		Logger:             logger,
		TraceDepth:         *traceDeep,
	}
	var logFile *os.File
	if *replay != "" {
		logFile, err = os.Create(*replay)
		if err != nil {
			cliflags.Fail("spaa-serve", err)
		}
		cfg.ReplayLog = logFile
	}

	srv, err := serve.New(cfg)
	if err != nil {
		cliflags.Fail("spaa-serve", err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, syscall.SIGTERM, syscall.SIGINT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	logger.Info("listening",
		"addr", *addr, "scheduler", srv.Scheduler(), "m", *m, "shards", srv.Shards())

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{Addr: *debugAddr, Handler: srv.DebugHandler()}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "addr", *debugAddr, "err", err)
			}
		}()
		logger.Info("debug listener", "addr", *debugAddr)
	}

	select {
	case sig := <-sigC:
		logger.Info("draining", "signal", sig.String())
	case err := <-serveErr:
		cliflags.Fail("spaa-serve", err)
	}

	res := srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("shutdown", "err", err)
	}
	if debugSrv != nil {
		if err := debugSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("debug shutdown", "err", err)
		}
	}
	if logFile != nil {
		if err := logFile.Close(); err != nil {
			logger.Error("replay log close", "err", err)
		}
	}
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		cliflags.Fail("spaa-serve", err)
	}
	fmt.Println(string(out))
}
