package main

import (
	"strings"
	"testing"

	"dagsched/internal/experiments"
)

func TestSelectExperimentsAll(t *testing.T) {
	sel, err := selectExperiments("all", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != len(experiments.All()) {
		t.Errorf("selected %d experiments, want %d", len(sel), len(experiments.All()))
	}
}

func TestSelectExperimentsByID(t *testing.T) {
	sel, err := selectExperiments("THM2, FIG1", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0].ID != "THM2" || sel[1].ID != "FIG1" {
		t.Errorf("selected %+v, want [THM2 FIG1] in order", sel)
	}
}

func TestSelectExperimentsUnknownID(t *testing.T) {
	_, err := selectExperiments("NOPE", "")
	if err == nil {
		t.Fatal("unknown ID accepted")
	}
	if !strings.Contains(err.Error(), "NOPE") || !strings.Contains(err.Error(), "FIG1") {
		t.Errorf("error %q should name the bad ID and list valid ones", err)
	}
}

func TestSelectExperimentsEmptyIDInList(t *testing.T) {
	if _, err := selectExperiments("FIG1,", ""); err == nil {
		t.Error("trailing comma (empty ID) accepted")
	}
}

func TestSelectExperimentsRunRegexp(t *testing.T) {
	sel, err := selectExperiments("all", "^ABL")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 4 {
		t.Errorf("^ABL selected %d experiments, want 4 (ABL1..ABL4)", len(sel))
	}
	for _, e := range sel {
		if !strings.HasPrefix(e.ID, "ABL") {
			t.Errorf("^ABL selected %s", e.ID)
		}
	}
}

func TestSelectExperimentsRunNoMatch(t *testing.T) {
	_, err := selectExperiments("all", "^ZZZ$")
	if err == nil {
		t.Fatal("zero-match regexp accepted; the suite would silently run nothing")
	}
}

func TestSelectExperimentsRunBadRegexp(t *testing.T) {
	if _, err := selectExperiments("all", "("); err == nil {
		t.Error("invalid regexp accepted")
	}
}

func TestSelectExperimentsExpAndRunConflict(t *testing.T) {
	if _, err := selectExperiments("FIG1", "THM"); err == nil {
		t.Error("-exp with -run accepted; they are mutually exclusive")
	}
}

func TestValidateFlags(t *testing.T) {
	if err := validateFlags(0, 0, false, false, nil); err != nil {
		t.Errorf("default flags rejected: %v", err)
	}
	if err := validateFlags(-1, 0, false, false, nil); err == nil {
		t.Error("negative -seeds accepted")
	}
	if err := validateFlags(0, -2, false, false, nil); err == nil {
		t.Error("negative -parallel accepted")
	}
	if err := validateFlags(0, 0, true, true, nil); err == nil {
		t.Error("-csv with -md accepted")
	}
	if err := validateFlags(0, 0, false, false, []string{"FIG1"}); err == nil {
		t.Error("positional arguments accepted")
	}
}
