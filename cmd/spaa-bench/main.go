// Command spaa-bench runs the reproduction suite and prints one table per
// paper artifact (Figures 1–2, Theorems 1–3, Corollaries 1–2, baselines,
// ablations, OPT-bound quality, extensions, faults). EXPERIMENTS.md records
// its output.
//
// Every experiment executes its (workload × scheduler × seed) grid through
// internal/runner, so -parallel changes wall-clock only: the tables are
// byte-identical for every worker count.
//
// Usage:
//
//	spaa-bench [-exp FIG1,THM2|all] [-run <regexp>] [-seeds N] [-quick]
//	           [-parallel N] [-csv|-md] [-o file] [-json file] [-progress]
//	           [-telemetry]
//
// -telemetry instruments every simulation run with the decision-event
// registry and adds the per-experiment aggregate counters to the -json
// report. The fold over runner cells is commutative, so the aggregates are
// identical for every -parallel value. Without the flag, output is
// byte-identical to an uninstrumented build.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strings"
	"time"

	"dagsched/internal/cliflags"
	"dagsched/internal/experiments"
	"dagsched/internal/sim"
	"dagsched/internal/telemetry"
)

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment IDs, or 'all' ("+strings.Join(experiments.IDs(), ",")+")")
		runFlag  = flag.String("run", "", "run only experiments whose ID matches this regexp (alternative to -exp)")
		seeds    = flag.Int("seeds", 0, "workload seeds per cell (0 = default)")
		quick    = flag.Bool("quick", false, "shrink instances for a fast smoke run")
		parallel = flag.Int("parallel", 0, "runner workers per experiment grid (0 = GOMAXPROCS); output is identical for any value")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		md       = flag.Bool("md", false, "emit markdown tables")
		outPath  = flag.String("o", "", "write table output to a file instead of stdout")
		jsonPath = flag.String("json", "", "write a machine-readable BENCH report (tables + per-experiment wall-clock) to this file")
		progress = flag.Bool("progress", false, "report per-grid cell progress on stderr")
		telFlag  = flag.Bool("telemetry", false, "aggregate telemetry counters per experiment (reported in -json)")
	)
	flag.Parse()

	if err := validateFlags(*seeds, *parallel, *csv, *md, flag.Args()); err != nil {
		fatalUsage(err)
	}
	selected, err := selectExperiments(*expFlag, *runFlag)
	if err != nil {
		fatalUsage(err)
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spaa-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	cfg := experiments.Config{Quick: *quick, Seeds: *seeds, Parallel: *parallel}
	if *progress {
		cfg.Progress = func(grid string, done, total int) {
			fmt.Fprintf(os.Stderr, "\r%-8s %d/%d cells", grid, done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	report := benchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Parallel:   cfg.Parallel,
		Quick:      cfg.Quick,
		Seeds:      cfg.Seeds,
		Start:      time.Now().Format(time.RFC3339),
	}
	suiteStart := time.Now()
	for _, e := range selected {
		start := time.Now()
		if *telFlag {
			cfg.Telemetry = telemetry.NewSink()
		}
		cfg.Routes = &sim.RouteStats{}
		tables, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spaa-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		// The table stream carries no timing, so -parallel 1 and -parallel N
		// runs are byte-identical; wall-clock lives in the -json report.
		fmt.Fprintf(out, "### %s — %s\n\n", e.ID, e.Title)
		je := jsonExperiment{ID: e.ID, Title: e.Title, Seconds: elapsed.Seconds()}
		if n := cfg.Routes.Tick() + cfg.Routes.Evented(); n > 0 {
			je.Engines = map[string]int64{
				sim.EngineTick:    cfg.Routes.Tick(),
				sim.EngineEvented: cfg.Routes.Evented(),
			}
		}
		if cfg.Telemetry != nil {
			je.Telemetry = cfg.Telemetry.Counters()
		}
		for _, tb := range tables {
			switch {
			case *csv:
				fmt.Fprintln(out, tb.CSV())
			case *md:
				fmt.Fprintln(out, tb.Markdown())
			default:
				fmt.Fprintln(out, tb.Render())
			}
			je.Tables = append(je.Tables, jsonTable{Title: tb.Title, Columns: tb.Columns, Rows: tb.Rows()})
		}
		report.Experiments = append(report.Experiments, je)
	}
	report.TotalSeconds = time.Since(suiteStart).Seconds()

	if *jsonPath != "" {
		if err := writeReport(*jsonPath, report); err != nil {
			fmt.Fprintf(os.Stderr, "spaa-bench: %v\n", err)
			os.Exit(1)
		}
	}
}

// validateFlags rejects flag combinations that would otherwise run nothing
// or produce ambiguous output.
func validateFlags(seeds, parallel int, csv, md bool, extra []string) error {
	if len(extra) > 0 {
		return fmt.Errorf("unexpected arguments %q (experiments are selected with -exp or -run)", extra)
	}
	if seeds < 0 {
		return fmt.Errorf("-seeds %d is negative", seeds)
	}
	if parallel < 0 {
		return fmt.Errorf("-parallel %d is negative", parallel)
	}
	if csv && md {
		return fmt.Errorf("-csv and -md are mutually exclusive")
	}
	return nil
}

// selectExperiments resolves the -exp / -run selection against the
// registry. Unknown IDs, invalid regexps, empty matches, and using both
// selectors at once are errors — the suite never silently runs nothing.
func selectExperiments(expFlag, runFlag string) ([]experiments.Experiment, error) {
	if runFlag != "" && expFlag != "all" {
		return nil, fmt.Errorf("-exp and -run are mutually exclusive; use one")
	}
	if runFlag != "" {
		re, err := regexp.Compile(runFlag)
		if err != nil {
			return nil, fmt.Errorf("-run %q: %v", runFlag, err)
		}
		var out []experiments.Experiment
		for _, e := range experiments.All() {
			if re.MatchString(e.ID) {
				out = append(out, e)
			}
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("-run %q matches no experiment (have %s)", runFlag, strings.Join(experiments.IDs(), ", "))
		}
		return out, nil
	}
	if expFlag == "all" {
		return experiments.All(), nil
	}
	var out []experiments.Experiment
	for _, id := range strings.Split(expFlag, ",") {
		id = strings.TrimSpace(id)
		e, ok := experiments.ByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (have %s)", id, strings.Join(experiments.IDs(), ", "))
		}
		out = append(out, e)
	}
	return out, nil
}

func fatalUsage(err error) { cliflags.FatalUsage("spaa-bench", err) }

// benchReport is the -json output: the full table data plus per-experiment
// wall-clock, so perf trajectories across PRs have machine-readable data
// points (the committed BENCH_*.json files).
type benchReport struct {
	GoVersion    string           `json:"go"`
	GOMAXPROCS   int              `json:"gomaxprocs"`
	Parallel     int              `json:"parallel"` // 0 = GOMAXPROCS
	Quick        bool             `json:"quick"`
	Seeds        int              `json:"seeds"` // 0 = per-mode default
	Start        string           `json:"start"`
	TotalSeconds float64          `json:"total_seconds"`
	Experiments  []jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	ID      string  `json:"id"`
	Title   string  `json:"title"`
	Seconds float64 `json:"seconds"`
	// Engines counts how many of the experiment's simulation runs sim.RunAuto
	// dispatched to each engine ("tick" / "evented"). Routing depends only on
	// the (scheduler, policy, faults, probe) combination, never on -parallel.
	Engines map[string]int64 `json:"engines,omitempty"`
	// Telemetry holds the experiment's aggregate decision counters when the
	// suite runs with -telemetry; the commutative fold keeps it independent
	// of -parallel.
	Telemetry map[string]int64 `json:"telemetry,omitempty"`
	Tables    []jsonTable      `json:"tables"`
}

type jsonTable struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

func writeReport(path string, r benchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
