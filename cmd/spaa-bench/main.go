// Command spaa-bench runs the reproduction suite and prints one table per
// paper artifact (Figures 1–2, Theorems 1–3, Corollaries 1–2, baselines,
// ablations, OPT-bound quality). EXPERIMENTS.md records its output.
//
// Usage:
//
//	spaa-bench [-exp FIG1,THM2|all] [-seeds N] [-quick] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dagsched/internal/experiments"
)

func main() {
	var (
		expFlag = flag.String("exp", "all", "comma-separated experiment IDs, or 'all' ("+strings.Join(experiments.IDs(), ",")+")")
		seeds   = flag.Int("seeds", 0, "workload seeds per cell (0 = default)")
		quick   = flag.Bool("quick", false, "shrink instances for a fast smoke run")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		md      = flag.Bool("md", false, "emit markdown tables")
		outPath = flag.String("o", "", "write output to a file instead of stdout")
	)
	flag.Parse()

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spaa-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	cfg := experiments.Config{Quick: *quick, Seeds: *seeds}

	var ids []string
	if *expFlag == "all" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*expFlag, ",")
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "spaa-bench: unknown experiment %q (have %s)\n", id, strings.Join(experiments.IDs(), ", "))
			os.Exit(2)
		}
		start := time.Now()
		tables, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spaa-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "### %s — %s  (%.1fs)\n\n", e.ID, e.Title, time.Since(start).Seconds())
		for _, tb := range tables {
			switch {
			case *csv:
				fmt.Fprintln(out, tb.CSV())
			case *md:
				fmt.Fprintln(out, tb.Markdown())
			default:
				fmt.Fprintln(out, tb.Render())
			}
		}
	}
}
