// Command dag-gen generates a synthetic workload instance and writes it as
// JSON (to stdout or -o). The output feeds spaa-sim -instance.
//
// Usage:
//
//	dag-gen [-n 40] [-m 8] [-seed 1] [-eps 1.0] [-load 1.5] [-slack 0.4]
//	        [-profit step|linear|exp] [-scale 2] [-figure1 m:L:count] [-o out.json]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dagsched/internal/dag"
	"dagsched/internal/experiments"
	"dagsched/internal/workload"
)

func main() {
	var (
		n       = flag.Int("n", 40, "number of jobs")
		m       = flag.Int("m", 8, "processors")
		seed    = flag.Int64("seed", 1, "generator seed")
		eps     = flag.Float64("eps", 1.0, "deadline slack condition epsilon")
		load    = flag.Float64("load", 1.5, "target machine load")
		slack   = flag.Float64("slack", 0.4, "extra deadline spread")
		profSel = flag.String("profit", "step", "profit family: step, linear, exp")
		scale   = flag.Float64("scale", 2, "job size scale")
		fig1    = flag.String("figure1", "", "generate the Theorem 1 instance instead: m:L:count")
		adv     = flag.Int("adversarial", 0, "generate the ADV adversarial stream with this many phases instead")
		dotJob  = flag.Int("dot", -1, "emit Graphviz DOT for job with this index instead of JSON")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var inst *workload.Instance
	var err error
	if *adv > 0 {
		inst, err = experiments.AdversarialInstance(*adv)
	} else {
		inst, err = build(*fig1, *n, *m, *seed, *eps, *load, *slack, *profSel, *scale)
	}
	fail(err)

	var data []byte
	if *dotJob >= 0 {
		if *dotJob >= len(inst.Jobs) {
			fail(fmt.Errorf("-dot %d out of range (have %d jobs)", *dotJob, len(inst.Jobs)))
		}
		var buf bytes.Buffer
		fail(dag.WriteDOT(&buf, fmt.Sprintf("job%d", *dotJob), inst.Jobs[*dotJob].Graph))
		data = buf.Bytes()
	} else {
		var err error
		data, err = json.MarshalIndent(inst, "", "  ")
		fail(err)
		data = append(data, '\n')
	}

	if *out == "" {
		_, err = os.Stdout.Write(data)
	} else {
		err = os.WriteFile(*out, data, 0o644)
	}
	fail(err)
}

func build(fig1 string, n, m int, seed int64, eps, load, slack float64, prof string, scale float64) (*workload.Instance, error) {
	if fig1 != "" {
		parts := strings.Split(fig1, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("-figure1 wants m:L:count, got %q", fig1)
		}
		fm, err1 := strconv.Atoi(parts[0])
		fl, err2 := strconv.ParseInt(parts[1], 10, 64)
		fc, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("-figure1 wants integers m:L:count, got %q", fig1)
		}
		return workload.Figure1Batch(fm, fl, fc, 1)
	}
	var kind workload.ProfitKind
	switch prof {
	case "step":
		kind = workload.ProfitStep
	case "linear":
		kind = workload.ProfitLinear
	case "exp":
		kind = workload.ProfitExp
	default:
		return nil, fmt.Errorf("unknown profit family %q", prof)
	}
	return workload.Generate(workload.Config{
		Seed: seed, N: n, M: m, Eps: eps, SlackSpread: slack, Load: load,
		Scale: scale, Profit: kind,
	})
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dag-gen: %v\n", err)
		os.Exit(1)
	}
}
