package dagsched_test

import (
	"fmt"
	"log"

	"dagsched"
)

// Example runs the paper's scheduler S on three hand-built jobs and prints
// the outcome — the README quickstart.
func Example() {
	pay := func(v float64, d int64) dagsched.ProfitFn {
		fn, err := dagsched.StepProfit(v, d)
		if err != nil {
			log.Fatal(err)
		}
		return fn
	}
	jobs := []*dagsched.Job{
		{ID: 1, Graph: dagsched.ForkJoin(2, 6, 1), Release: 0, Profit: pay(10, 60)},
		{ID: 2, Graph: dagsched.Chain(8, 1), Release: 3, Profit: pay(4, 40)},
		{ID: 3, Graph: dagsched.Block(12, 1), Release: 5, Profit: pay(6, 30)},
	}
	sched, err := dagsched.NewSchedulerS(1.0)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dagsched.Run(dagsched.SimConfig{M: 4}, jobs, sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profit %.0f of %.0f, %d/%d jobs completed\n",
		res.TotalProfit, res.OfferedProfit, res.Completed, len(jobs))
	// Output:
	// profit 20 of 20, 3/3 jobs completed
}

// ExampleFigure1 reproduces the Theorem 1 separation: the unlucky node order
// needs (W−L)/m + L ticks where the clairvoyant one needs W/m.
func ExampleFigure1() {
	g := dagsched.Figure1(4, 16) // m=4, L=16 → W=64
	fn, err := dagsched.StepProfit(1, 1000)
	if err != nil {
		log.Fatal(err)
	}
	for _, pol := range []dagsched.PickPolicy{dagsched.PickUnlucky, dagsched.PickCriticalPath} {
		jobs := []*dagsched.Job{{ID: 1, Graph: g, Release: 0, Profit: fn}}
		res, err := dagsched.Run(dagsched.SimConfig{M: 4, Policy: pol}, jobs, dagsched.NewFIFO())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d ticks\n", pol.Name(), res.Jobs[0].CompletedAt)
	}
	// Output:
	// unlucky: 28 ticks
	// critical-path-first: 16 ticks
}

// ExampleSchedulerS_Plan shows the arrival-time quantities S derives from
// (W, L, D): the allotment n, the execution bound x, and δ-goodness.
func ExampleSchedulerS_Plan() {
	s, err := dagsched.NewSchedulerS(1.0)
	if err != nil {
		log.Fatal(err)
	}
	s.Init(dagsched.Env{M: 8, Speed: 1})
	fn, err := dagsched.StepProfit(12, 30)
	if err != nil {
		log.Fatal(err)
	}
	plan := s.Plan(dagsched.JobView{ID: 1, W: 64, L: 8, Profit: fn})
	fmt.Printf("n=%.3f alloc=%d x=%.1f good=%v\n", plan.NReal, plan.Alloc, plan.X, plan.Good)
	// Output:
	// n=4.667 alloc=5 x=19.2 good=true
}

// ExampleOptUpperBound bounds the offline optimum for a small instance.
func ExampleOptUpperBound() {
	fn, err := dagsched.StepProfit(5, 10)
	if err != nil {
		log.Fatal(err)
	}
	jobs := []*dagsched.Job{
		{ID: 1, Graph: dagsched.Block(8, 1), Release: 0, Profit: fn},
		{ID: 2, Graph: dagsched.Block(8, 1), Release: 0, Profit: fn},
	}
	// On one processor only one of the two 8-work jobs fits before t=10.
	fmt.Printf("m=1: %.0f  m=2: %.0f\n",
		dagsched.OptUpperBound(jobs, 1, 1), dagsched.OptUpperBound(jobs, 2, 1))
	// Output:
	// m=1: 5  m=2: 10
}

// ExampleGenerateWorkload builds a reproducible synthetic instance whose
// deadlines satisfy the Theorem 2 slack condition.
func ExampleGenerateWorkload() {
	inst, err := dagsched.GenerateWorkload(dagsched.WorkloadConfig{
		Seed: 7, N: 5, M: 4, Eps: 1, Load: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d jobs, total work %d\n", len(inst.Jobs), inst.TotalWork())
	// Output:
	// 5 jobs, total work 109
}

// ExampleNewSchedulerGP shows the Section 5 scheduler assigning a minimal
// valid deadline inside a decaying profit's flat prefix.
func ExampleNewSchedulerGP() {
	fn, err := dagsched.LinearDecayProfit(10, 20, 60) // flat 20, zero at 60
	if err != nil {
		log.Fatal(err)
	}
	jobs := []*dagsched.Job{
		{ID: 1, Graph: dagsched.Block(8, 2), Release: 0, Profit: fn},
	}
	gp, err := dagsched.NewSchedulerGP(1.0)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dagsched.Run(dagsched.SimConfig{M: 4}, jobs, gp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed at t=%d, profit %.0f of peak 10\n",
		res.Jobs[0].CompletedAt, res.TotalProfit)
	// Output:
	// completed at t=8, profit 10 of peak 10
}

// ExampleNewConfig builds a run configuration from functional options — the
// form the serving daemon and programmatic embeddings use.
func ExampleNewConfig() {
	fn, err := dagsched.StepProfit(6, 30)
	if err != nil {
		log.Fatal(err)
	}
	jobs := []*dagsched.Job{{ID: 1, Graph: dagsched.Block(12, 1), Release: 0, Profit: fn}}
	sched, err := dagsched.NewSchedulerS(1.0)
	if err != nil {
		log.Fatal(err)
	}
	cfg := dagsched.NewConfig(
		dagsched.WithM(4),
		dagsched.WithSpeed(dagsched.NewSpeed(3, 2)),
		dagsched.WithRecording(),
	)
	res, err := dagsched.Run(cfg, jobs, sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("m=%d speed=%v profit %.0f\n", res.M, res.Speed, res.TotalProfit)
	// Output:
	// m=4 speed=1.5 profit 6
}

// ExampleNewSession drives the engine step by step with online arrivals —
// the serving daemon's code path. The batch Run over the same jobs is
// bit-identical.
func ExampleNewSession() {
	sched, err := dagsched.NewSchedulerS(1.0)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := dagsched.NewSession(dagsched.NewConfig(dagsched.WithM(2)), nil, sched)
	if err != nil {
		log.Fatal(err)
	}
	fn, err := dagsched.StepProfit(5, 20)
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.Arrive(&dagsched.Job{ID: 1, Graph: dagsched.Block(6, 1), Release: 0, Profit: fn}); err != nil {
		log.Fatal(err)
	}
	if err := sess.RunToEnd(); err != nil {
		log.Fatal(err)
	}
	res := sess.Finish()
	_, state := sess.Lookup(1)
	fmt.Printf("job 1 %s, profit %.0f in %d ticks\n", state, res.TotalProfit, res.Ticks)
	// Output:
	// job 1 completed, profit 5 in 6 ticks
}

// ExampleSchedulerS_Admission queries the admission test without committing
// the job — the serving daemon's immediate admit/reject verdict.
func ExampleSchedulerS_Admission() {
	s, err := dagsched.NewSchedulerS(1.0)
	if err != nil {
		log.Fatal(err)
	}
	s.Init(dagsched.Env{M: 4, Speed: 1})
	fn, err := dagsched.StepProfit(10, 40)
	if err != nil {
		log.Fatal(err)
	}
	d := s.Admission(dagsched.JobView{ID: 1, W: 32, L: 4, Profit: fn})
	fmt.Printf("admit=%v alloc=%d\n", d.Admit, d.Plan.Alloc)

	tight, err := dagsched.StepProfit(8, 12)
	if err != nil {
		log.Fatal(err)
	}
	d = s.Admission(dagsched.JobView{ID: 2, W: 100, L: 2, Profit: tight})
	fmt.Printf("admit=%v reason=%s\n", d.Admit, d.Reason)
	// Output:
	// admit=true alloc=2
	// admit=false reason=not-delta-good
}

// ExampleMarshalJob round-trips a job through the instance wire format —
// one line of the serving replay log.
func ExampleMarshalJob() {
	fn, err := dagsched.StepProfit(5, 9)
	if err != nil {
		log.Fatal(err)
	}
	j := &dagsched.Job{ID: 7, Graph: dagsched.Chain(3, 1), Release: 2, Profit: fn}
	data, err := dagsched.MarshalJob(j)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(data))
	back, err := dagsched.UnmarshalJob(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("W=%d L=%d\n", back.Graph.TotalWork(), back.Graph.Span())
	// Output:
	// {"id":7,"release":2,"graph":{"work":[1,1,1],"edges":[[0,1],[1,2]]},"profit":{"kind":"step","value":5,"deadline":9}}
	// W=3 L=3
}

// ExampleNewRecorder attaches telemetry to a run: the scheduler's decision
// events land in the recorder alongside the engine's counters.
func ExampleNewRecorder() {
	fn, err := dagsched.StepProfit(4, 30)
	if err != nil {
		log.Fatal(err)
	}
	jobs := []*dagsched.Job{
		{ID: 1, Graph: dagsched.Block(8, 1), Release: 0, Profit: fn},
		{ID: 2, Graph: dagsched.Chain(4, 1), Release: 1, Profit: fn},
	}
	sched, err := dagsched.NewSchedulerS(1.0)
	if err != nil {
		log.Fatal(err)
	}
	rec := dagsched.NewRecorder()
	dagsched.AttachTelemetry(sched, rec)
	cfg := dagsched.NewConfig(dagsched.WithM(4), dagsched.WithRecorder(rec))
	if _, err := dagsched.Run(cfg, jobs, sched); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("admitted %d of %d arrivals\n",
		rec.Registry().Counter("events.admit"), rec.Registry().Counter("events.arrival"))
	// Output:
	// admitted 2 of 2 arrivals
}

// ExampleParseFaultSpec runs a resilient scheduler under deterministic fault
// injection configured from a compact spec string.
func ExampleParseFaultSpec() {
	fc, err := dagsched.ParseFaultSpec("seed=7,mtbf=40,mttr=10")
	if err != nil {
		log.Fatal(err)
	}
	fn, err := dagsched.StepProfit(3, 200)
	if err != nil {
		log.Fatal(err)
	}
	jobs := []*dagsched.Job{
		{ID: 1, Graph: dagsched.Block(64, 1), Release: 0, Profit: fn},
	}
	sched, err := dagsched.NewResilientS(1.0)
	if err != nil {
		log.Fatal(err)
	}
	cfg := dagsched.NewConfig(dagsched.WithM(4), dagsched.WithFaults(fc))
	res, err := dagsched.Run(cfg, jobs, sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed=%d faults recorded=%v\n", res.Completed, res.Faults != nil)
	// Output:
	// completed=1 faults recorded=true
}

// ExampleSerial composes verified DAG pieces into a pipeline job.
func ExampleSerial() {
	stage1 := dagsched.Block(6, 1)         // parallel ingest
	stage2 := dagsched.ReductionTree(6, 1) // combine
	g := dagsched.Serial(stage1, stage2)
	fmt.Printf("W=%d L=%d\n", g.TotalWork(), g.Span())
	// Output:
	// W=17 L=5
}
