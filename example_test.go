package dagsched_test

import (
	"fmt"
	"log"

	"dagsched"
)

// Example runs the paper's scheduler S on three hand-built jobs and prints
// the outcome — the README quickstart.
func Example() {
	pay := func(v float64, d int64) dagsched.ProfitFn {
		fn, err := dagsched.StepProfit(v, d)
		if err != nil {
			log.Fatal(err)
		}
		return fn
	}
	jobs := []*dagsched.Job{
		{ID: 1, Graph: dagsched.ForkJoin(2, 6, 1), Release: 0, Profit: pay(10, 60)},
		{ID: 2, Graph: dagsched.Chain(8, 1), Release: 3, Profit: pay(4, 40)},
		{ID: 3, Graph: dagsched.Block(12, 1), Release: 5, Profit: pay(6, 30)},
	}
	sched, err := dagsched.NewSchedulerS(1.0)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dagsched.Run(dagsched.SimConfig{M: 4}, jobs, sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profit %.0f of %.0f, %d/%d jobs completed\n",
		res.TotalProfit, res.OfferedProfit, res.Completed, len(jobs))
	// Output:
	// profit 20 of 20, 3/3 jobs completed
}

// ExampleFigure1 reproduces the Theorem 1 separation: the unlucky node order
// needs (W−L)/m + L ticks where the clairvoyant one needs W/m.
func ExampleFigure1() {
	g := dagsched.Figure1(4, 16) // m=4, L=16 → W=64
	fn, err := dagsched.StepProfit(1, 1000)
	if err != nil {
		log.Fatal(err)
	}
	for _, pol := range []dagsched.PickPolicy{dagsched.PickUnlucky, dagsched.PickCriticalPath} {
		jobs := []*dagsched.Job{{ID: 1, Graph: g, Release: 0, Profit: fn}}
		res, err := dagsched.Run(dagsched.SimConfig{M: 4, Policy: pol}, jobs, dagsched.NewFIFO())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d ticks\n", pol.Name(), res.Jobs[0].CompletedAt)
	}
	// Output:
	// unlucky: 28 ticks
	// critical-path-first: 16 ticks
}

// ExampleSchedulerS_Plan shows the arrival-time quantities S derives from
// (W, L, D): the allotment n, the execution bound x, and δ-goodness.
func ExampleSchedulerS_Plan() {
	s, err := dagsched.NewSchedulerS(1.0)
	if err != nil {
		log.Fatal(err)
	}
	s.Init(dagsched.Env{M: 8, Speed: 1})
	fn, err := dagsched.StepProfit(12, 30)
	if err != nil {
		log.Fatal(err)
	}
	plan := s.Plan(dagsched.JobView{ID: 1, W: 64, L: 8, Profit: fn})
	fmt.Printf("n=%.3f alloc=%d x=%.1f good=%v\n", plan.NReal, plan.Alloc, plan.X, plan.Good)
	// Output:
	// n=4.667 alloc=5 x=19.2 good=true
}

// ExampleOptUpperBound bounds the offline optimum for a small instance.
func ExampleOptUpperBound() {
	fn, err := dagsched.StepProfit(5, 10)
	if err != nil {
		log.Fatal(err)
	}
	jobs := []*dagsched.Job{
		{ID: 1, Graph: dagsched.Block(8, 1), Release: 0, Profit: fn},
		{ID: 2, Graph: dagsched.Block(8, 1), Release: 0, Profit: fn},
	}
	// On one processor only one of the two 8-work jobs fits before t=10.
	fmt.Printf("m=1: %.0f  m=2: %.0f\n",
		dagsched.OptUpperBound(jobs, 1, 1), dagsched.OptUpperBound(jobs, 2, 1))
	// Output:
	// m=1: 5  m=2: 10
}

// ExampleGenerateWorkload builds a reproducible synthetic instance whose
// deadlines satisfy the Theorem 2 slack condition.
func ExampleGenerateWorkload() {
	inst, err := dagsched.GenerateWorkload(dagsched.WorkloadConfig{
		Seed: 7, N: 5, M: 4, Eps: 1, Load: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d jobs, total work %d\n", len(inst.Jobs), inst.TotalWork())
	// Output:
	// 5 jobs, total work 109
}

// ExampleNewSchedulerGP shows the Section 5 scheduler assigning a minimal
// valid deadline inside a decaying profit's flat prefix.
func ExampleNewSchedulerGP() {
	fn, err := dagsched.LinearDecayProfit(10, 20, 60) // flat 20, zero at 60
	if err != nil {
		log.Fatal(err)
	}
	jobs := []*dagsched.Job{
		{ID: 1, Graph: dagsched.Block(8, 2), Release: 0, Profit: fn},
	}
	gp, err := dagsched.NewSchedulerGP(1.0)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dagsched.Run(dagsched.SimConfig{M: 4}, jobs, gp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed at t=%d, profit %.0f of peak 10\n",
		res.Jobs[0].CompletedAt, res.TotalProfit)
	// Output:
	// completed at t=8, profit 10 of peak 10
}

// ExampleSerial composes verified DAG pieces into a pipeline job.
func ExampleSerial() {
	stage1 := dagsched.Block(6, 1)         // parallel ingest
	stage2 := dagsched.ReductionTree(6, 1) // combine
	g := dagsched.Serial(stage1, stage2)
	fmt.Printf("W=%d L=%d\n", g.TotalWork(), g.Span())
	// Output:
	// W=17 L=5
}
