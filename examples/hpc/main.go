// HPC: scheduling a queue of numerical-kernel jobs on a shared cluster
// partition. Users submit tiled Cholesky factorizations, stencil sweeps, FFT
// batches, and reductions — the canonical irregular task graphs of runtimes
// like PLASMA, StarPU, and OpenMP tasks — each with a completion deadline
// (after which the allocation expires) and a priority weight.
//
// The Cholesky profile is the interesting one for the paper's allotment
// formula: parallelism starts at 1 (the first panel), widens to Θ(N²), and
// collapses again, so any fixed per-job processor count either wastes the
// middle or starves the ends. The demo prints each job's paper plan
// (n_i, x_i) and the schedule outcome for S, its work-conserving extension,
// and EDF.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"dagsched"
)

const (
	m   = 16
	eps = 1.0
)

func buildQueue(seed int64) []*dagsched.Job {
	rng := rand.New(rand.NewSource(seed))
	var jobs []*dagsched.Job
	clock := int64(0)
	for i := 0; i < 24; i++ {
		var g *dagsched.DAG
		var kind string
		switch i % 4 {
		case 0:
			n := 4 + rng.Intn(4)
			g = dagsched.Cholesky(n, 1)
			kind = fmt.Sprintf("cholesky %dx%d tiles", n, n)
		case 1:
			n := 6 + rng.Intn(6)
			g = dagsched.Wavefront(n, 2)
			kind = fmt.Sprintf("stencil %dx%d", n, n)
		case 2:
			g = dagsched.FFT(32<<rng.Intn(2), 1)
			kind = "fft batch"
		default:
			g = dagsched.ReductionTree(24+rng.Intn(16), 1)
			kind = "reduction"
		}
		w, l := float64(g.TotalWork()), float64(g.Span())
		d := int64(math.Ceil((1 + eps) * ((w-l)/m + l) * (1 + rng.Float64()*0.5)))
		weight := 1 + float64(rng.Intn(9))
		fn, err := dagsched.StepProfit(weight, d)
		if err != nil {
			log.Fatal(err)
		}
		jobs = append(jobs, &dagsched.Job{ID: i, Graph: g, Release: clock, Profit: fn})
		if i < 4 {
			fmt.Printf("  job %-2d %-22s W=%-5d L=%-4d D=%-5d weight=%.0f\n",
				i, kind, g.TotalWork(), g.Span(), d, weight)
		}
		clock += rng.Int63n(20)
	}
	fmt.Printf("  ... and %d more\n\n", len(jobs)-4)
	return jobs
}

func main() {
	fmt.Printf("HPC partition: m=%d processors\nsubmitted kernels (first few):\n", m)
	jobs := buildQueue(3)

	s, err := dagsched.NewSchedulerS(eps)
	if err != nil {
		log.Fatal(err)
	}
	swc, err := dagsched.NewWorkConservingS(eps)
	if err != nil {
		log.Fatal(err)
	}

	// Show the paper's arrival-time plan for the first Cholesky job, using
	// a scratch scheduler instance (Run re-initializes its own).
	probe, err := dagsched.NewSchedulerS(eps)
	if err != nil {
		log.Fatal(err)
	}
	probe.Init(dagsched.Env{M: m, Speed: 1})
	v := dagsched.JobView{ID: 0, Release: jobs[0].Release,
		W: jobs[0].Graph.TotalWork(), L: jobs[0].Graph.Span(), Profit: jobs[0].Profit}
	plan := probe.Plan(v)
	fmt.Printf("paper plan for job 0: n=%.2f → alloc %d processors, x=%.1f ticks, δ-good=%v\n\n",
		plan.NReal, plan.Alloc, plan.X, plan.Good)

	ub := dagsched.OptUpperBound(jobs, m, 1)
	fmt.Printf("%-20s  %8s  %9s  %7s  %6s\n", "scheduler", "earned", "of bound", "done", "util")
	for _, sched := range []dagsched.Scheduler{s, swc, dagsched.NewEDF(), dagsched.NewHDF()} {
		res, err := dagsched.Run(dagsched.SimConfig{M: m}, jobs, sched)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s  %8.0f  %8.0f%%  %3d/%-3d  %4.0f%%\n",
			sched.Name(), res.TotalProfit, 100*res.TotalProfit/ub,
			res.Completed, len(jobs), 100*res.Utilization())
	}
	fmt.Println("\nOn a moderately loaded queue the work-conserving heuristics win — the")
	fmt.Println("fixed allotment n_i cannot track Cholesky's widening-then-collapsing")
	fmt.Println("parallelism. The +wc extension recovers part of the gap; S's advantage")
	fmt.Println("is worst-case robustness (run examples/mapreduce scenario B).")
}
