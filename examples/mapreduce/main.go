// Mapreduce: a cluster scheduling scenario contrasting the two regimes the
// theory distinguishes. Analytics jobs shaped like map-reduce rounds
// (fork–join DAGs) run on an 8-processor cluster with SLA deadlines and
// payments.
//
// Scenario A is a stochastic burst mix: greedy heuristics (highest density
// first, EDF) do well — random inputs are not adversarial, and the paper's
// scheduler S pays for its conservative admission control.
//
// Scenario B is an adversarial stream in the spirit of the paper's lower
// bounds: big SLA contracts, dense-but-infeasible "trap" jobs, and streams
// of cheap tight-deadline work that bait deadline-ordered policies. There
// EDF, LLF, and HDF collapse by 10–100×, while S's δ-goodness test discards
// the traps at arrival and condition (2) keeps the bait from starving the
// contracts — the worst-case guarantee of Theorem 2 is exactly about this.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"dagsched"
)

const m = 8

func stochasticBurstMix(seed int64) []*dagsched.Job {
	rng := rand.New(rand.NewSource(seed))
	var jobs []*dagsched.Job
	clock := int64(0)
	for i := 0; i < 60; i++ {
		rounds := 1 + rng.Intn(3)
		width := 4 + rng.Intn(13)
		g := dagsched.ForkJoin(rounds, width, 1+rng.Int63n(3))
		w, l := float64(g.TotalWork()), float64(g.Span())
		minD := 2 * ((w-l)/m + l) // the Theorem 2 condition at ε = 1
		d := int64(math.Ceil(minD * (1 + rng.Float64()*0.6)))
		payment := w/4 + float64(rng.Intn(20))
		fn, err := dagsched.StepProfit(payment, d)
		if err != nil {
			log.Fatal(err)
		}
		jobs = append(jobs, &dagsched.Job{ID: i, Graph: g, Release: clock, Profit: fn})
		if rng.Float64() < 0.6 {
			clock += rng.Int63n(8)
		}
	}
	return jobs
}

func adversarialStream() []*dagsched.Job {
	const phaseT = 200
	var jobs []*dagsched.Job
	id := 0
	add := func(g *dagsched.DAG, rel int64, value float64, deadline int64) {
		fn, err := dagsched.StepProfit(value, deadline)
		if err != nil {
			log.Fatal(err)
		}
		jobs = append(jobs, &dagsched.Job{ID: id, Graph: g, Release: rel, Profit: fn})
		id++
	}
	for k := 0; k < 5; k++ {
		base := int64(k * phaseT)
		// The contract: W=720, L=10, D=200 — exactly the (1+ε) slack at ε=1.
		add(dagsched.Block(72, 10), base, 100, phaseT)
		for j := int64(0); j < phaseT; j += 10 {
			// Trap: span 24 > deadline 20, but dense and volume-feasible.
			b := dagsched.NewDAGBuilder()
			var syncPrev dagsched.NodeID = -1
			for seg := 0; seg < 6; seg++ {
				sync := b.AddNode(2)
				for w := 0; w < 8; w++ {
					v := b.AddNode(2)
					if syncPrev >= 0 {
						b.AddEdge(syncPrev, v)
					}
					b.AddEdge(v, sync)
				}
				syncPrev = sync
			}
			g, err := b.Build()
			if err != nil {
				log.Fatal(err)
			}
			add(g, base+j, 324, 20)
		}
		for j := int64(0); j < phaseT; j += 20 {
			// Bait: tight-deadline cheap work that EDF prefers to the contract.
			add(dagsched.Block(8, 8), base+j, 1, 30)
		}
	}
	return jobs
}

func run(label string, jobs []*dagsched.Job) {
	ub := dagsched.OptUpperBound(jobs, m, 1)
	fmt.Printf("--- %s: %d jobs, OPT bound %.0f ---\n", label, len(jobs), ub)
	s, err := dagsched.NewSchedulerS(1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s  %10s  %10s  %9s\n", "scheduler", "earned", "of bound", "done")
	for _, sched := range []dagsched.Scheduler{s, dagsched.NewEDF(), dagsched.NewLLF(), dagsched.NewHDF(), dagsched.NewFederated()} {
		res, err := dagsched.Run(dagsched.SimConfig{M: m}, jobs, sched)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s  %10.0f  %9.1f%%  %4d/%-4d\n",
			sched.Name(), res.TotalProfit, 100*res.TotalProfit/ub, res.Completed, len(jobs))
	}
	fmt.Println()
}

func main() {
	fmt.Printf("map-reduce cluster, m=%d\n\n", m)
	run("scenario A: stochastic burst mix", stochasticBurstMix(7))
	run("scenario B: adversarial stream (traps + bait)", adversarialStream())
	fmt.Println("Greedy heuristics win on random inputs; the paper's admission control")
	fmt.Println("is what survives the adversarial ones it was designed for.")
}
