// Realtime: the paper's DAG job model meets the real-time literature it
// cites. A periodic task system (sensor fusion, control loop, logging —
// each a recurring DAG) is first checked with the classical federated
// schedulability test; the accepted system is then simulated for two
// hyperperiods under the partitioned federated runtime, global EDF, and the
// paper's scheduler S, showing the objective contrast: a hard-real-time
// runtime meets every deadline or rejects the system outright, while S
// maximizes throughput and will drop instances under pressure instead.
package main

import (
	"fmt"
	"log"

	"dagsched"
	"dagsched/internal/baselines"
	"dagsched/internal/core"
	"dagsched/internal/realtime"
	"dagsched/internal/sim"
)

func main() {
	sys := realtime.System{
		M: 8,
		Tasks: []realtime.Task{
			// Sensor fusion: wide fork-join every 24 ticks, heavy (C=52 > D=20).
			{ID: 1, Graph: dagsched.ForkJoin(1, 24, 2), Period: 24, Deadline: 20},
			// Control loop: small chain, tight period.
			{ID: 2, Graph: dagsched.Chain(4, 1), Period: 8, Deadline: 6},
			// Telemetry reduction every 48 ticks.
			{ID: 3, Graph: dagsched.ReductionTree(16, 1), Period: 48, Deadline: 32},
			// Logging: light block.
			{ID: 4, Graph: dagsched.Block(6, 1), Period: 12, Deadline: 12},
		},
	}
	if err := sys.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("periodic system on m=%d, total utilization %.2f\n\n", sys.M, sys.TotalUtilization())

	alloc := realtime.Federated(sys)
	fmt.Println("--- analytic admission ---")
	fmt.Printf("federated test:     schedulable=%v", alloc.Schedulable)
	if !alloc.Schedulable {
		fmt.Printf(" (%s)", alloc.Reason)
	}
	fmt.Println()
	for id, cores := range alloc.HeavyCores {
		fmt.Printf("  heavy task %d: %d dedicated processors\n", id, cores)
	}
	fmt.Printf("  light tasks share %d processors: %v\n", alloc.LightCores, alloc.LightAssignment)
	fmt.Printf("capacity-bound-2:   %v (ΣU=%.2f vs m/2=%d; needs L ≤ D/2 too)\n\n",
		realtime.CapacityBound2(sys), sys.TotalUtilization(), sys.M/2)

	h, err := realtime.Hyperperiod(sys, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	horizon := 2 * h
	jobs, _, err := realtime.Expand(sys, horizon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- simulation: %d instances over %d ticks (2 hyperperiods) ---\n", len(jobs), horizon)

	runtimes := []dagsched.Scheduler{
		mustPartitioned(sys, horizon),
		&baselines.ListScheduler{Order: baselines.OrderEDF},
		core.NewSchedulerS(core.Options{Params: core.MustParams(1)}),
	}
	for _, sched := range runtimes {
		res, err := dagsched.Run(dagsched.SimConfig{M: sys.M}, jobs, sched)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "ALL DEADLINES MET"
		if res.Completed != len(jobs) {
			verdict = fmt.Sprintf("%d/%d instances met", res.Completed, len(jobs))
		}
		fmt.Printf("  %-18s %s (utilization %.0f%%)\n", sched.Name(), verdict, 100*res.Utilization())
	}
	fmt.Println("\nThe partitioned runtime realizes exactly what the test admits; S trades")
	fmt.Println("individual instances for aggregate throughput — the paper's objective.")
}

func mustPartitioned(sys realtime.System, horizon int64) sim.Scheduler {
	alloc := realtime.Federated(sys)
	_, taskOf, err := realtime.Expand(sys, horizon)
	if err != nil {
		log.Fatal(err)
	}
	p, err := realtime.NewPartitioned(sys, alloc, taskOf)
	if err != nil {
		log.Fatal(err)
	}
	return p
}
