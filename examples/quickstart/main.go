// Quickstart: build three parallel jobs by hand, run the paper's scheduler S
// on four processors, and print what completed, what it earned, and how that
// compares to the offline optimum bound.
package main

import (
	"fmt"
	"log"

	"dagsched"
)

func main() {
	mustProfit := func(value float64, deadline int64) dagsched.ProfitFn {
		fn, err := dagsched.StepProfit(value, deadline)
		if err != nil {
			log.Fatal(err)
		}
		return fn
	}

	// Three jobs with different shapes and deadlines:
	// a two-round map-reduce, a sequential pipeline, and a parallel sweep.
	jobs := []*dagsched.Job{
		{ID: 1, Graph: dagsched.ForkJoin(2, 6, 1), Release: 0, Profit: mustProfit(10, 60)},
		{ID: 2, Graph: dagsched.Chain(8, 1), Release: 3, Profit: mustProfit(4, 40)},
		{ID: 3, Graph: dagsched.Block(12, 1), Release: 5, Profit: mustProfit(6, 30)},
	}

	// Scheduler S with slack parameter ε = 1: competitive whenever every
	// deadline satisfies D ≥ (1+ε)((W−L)/m + L).
	sched, err := dagsched.NewSchedulerS(1.0)
	if err != nil {
		log.Fatal(err)
	}

	cfg := dagsched.NewConfig(dagsched.WithM(4), dagsched.WithRecording())
	res, err := dagsched.Run(cfg, jobs, sched)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("profit %.0f / %.0f offered, %d/%d jobs completed in %d ticks\n",
		res.TotalProfit, res.OfferedProfit, res.Completed, len(jobs), res.Ticks)
	for _, js := range res.Jobs {
		status := "missed"
		if js.Completed {
			status = fmt.Sprintf("done at t=%d (latency %d)", js.CompletedAt, js.Latency)
		}
		fmt.Printf("  job %d: W=%-3d L=%-3d → %s\n", js.ID, js.W, js.L, status)
	}

	ub := dagsched.OptUpperBound(jobs, 4, 1)
	fmt.Printf("offline OPT upper bound: %.0f (S achieved %.0f%%)\n", ub, 100*res.TotalProfit/ub)

	fmt.Println()
	fmt.Print(dagsched.Gantt(res, jobs, 80))
}
