// Profitdecay: the Section 5 general-profit model, in the regime where its
// machinery matters. A recurring batch-analytics job is worth its full value
// only if it finishes inside a flat window (x* ticks); afterwards the value
// decays exponentially — stale results are nearly worthless, but never
// formally "due". A stream of cheap interactive queries with short value
// windows arrives alongside.
//
// Deadline-driven policies (EDF) chase the queries, whose support ends
// sooner, and deliver the big results after several half-lives. Scheduler S
// treats the end of the profit support as the deadline, computes a tiny
// allotment from that generous horizon, and also delivers late. The
// general-profit scheduler GP instead assigns the *minimal valid deadline* —
// it reserves enough time slots to finish inside the flat window — and
// collects near-peak value.
package main

import (
	"fmt"
	"log"

	"dagsched"
)

const (
	m      = 8
	phases = 5
	phaseT = 200
)

func buildWorkload() []*dagsched.Job {
	var jobs []*dagsched.Job
	id := 0
	add := func(g *dagsched.DAG, rel int64, fn dagsched.ProfitFn) {
		jobs = append(jobs, &dagsched.Job{ID: id, Graph: g, Release: rel, Profit: fn})
		id++
	}
	for k := 0; k < phases; k++ {
		base := int64(k * phaseT)
		// The big batch job: W=720, L=10. Flat value 300 until x* = 198
		// (the Theorem 3 floor (1+ε)((W−L)/m + L) at ε = 1), then halving
		// every 100 ticks.
		big, err := dagsched.ExpDecayProfit(300, 198, 100, 2000)
		if err != nil {
			log.Fatal(err)
		}
		add(dagsched.Block(72, 10), base, big)
		// Interactive queries every 10 ticks: worth 1 for ~30 ticks.
		for j := int64(0); j < phaseT; j += 10 {
			q, err := dagsched.LinearDecayProfit(1, 30, 60)
			if err != nil {
				log.Fatal(err)
			}
			add(dagsched.Block(8, 8), base+j, q)
		}
	}
	return jobs
}

func main() {
	jobs := buildWorkload()
	fmt.Printf("batch+interactive service: m=%d, %d jobs over %d phases\n\n", m, len(jobs), phases)

	gp, err := dagsched.NewSchedulerGP(1.0)
	if err != nil {
		log.Fatal(err)
	}
	s, err := dagsched.NewSchedulerS(1.0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-18s  %10s  %10s  %16s\n", "scheduler", "earned", "done", "big-job latency")
	for _, sched := range []dagsched.Scheduler{gp, s, dagsched.NewEDF(), dagsched.NewHDF()} {
		res, err := dagsched.Run(dagsched.SimConfig{M: m}, jobs, sched)
		if err != nil {
			log.Fatal(err)
		}
		// Average completion latency of the big jobs (IDs divisible by 21:
		// first job of each phase).
		var latSum, latN float64
		for _, js := range res.Jobs {
			if js.W == 720 && js.Completed {
				latSum += float64(js.Latency)
				latN++
			}
		}
		lat := "never"
		if latN > 0 {
			lat = fmt.Sprintf("%.0f ticks", latSum/latN)
		}
		fmt.Printf("%-18s  %10.0f  %5d/%-4d  %16s\n",
			sched.Name(), res.TotalProfit, res.Completed, len(jobs), lat)
	}

	fmt.Println("\nGP reserves slots to land inside each big job's flat window (x*),")
	fmt.Println("sacrificing cheap queries; the others deliver big results half-lives late.")
	fmt.Println("On benign low-load mixes the ordering reverses — see the THM3 table")
	fmt.Println("(spaa-bench -exp THM3): work-conserving EDF wins when nothing contends.")
}
