// Adversarial: reproduces the paper's Figure 1 and Figure 2 examples
// interactively. Figure 1 shows the semi-non-clairvoyance gap — an unlucky
// ready-node order takes (W−L)/m + L while a clairvoyant one takes W/m — and
// the speed 2−1/m that closes it (Theorem 1). Figure 2 shows a DAG where
// even full clairvoyance cannot beat (W−L)/m + L, justifying the deadline
// assumption of Corollary 2.
package main

import (
	"fmt"
	"log"

	"dagsched"
)

const m = 4

func completion(g *dagsched.DAG, pol dagsched.PickPolicy, speed dagsched.Speed) int64 {
	fn, err := dagsched.StepProfit(1, g.TotalWork()+g.Span())
	if err != nil {
		log.Fatal(err)
	}
	jobs := []*dagsched.Job{{ID: 1, Graph: g, Release: 0, Profit: fn}}
	res, err := dagsched.Run(dagsched.SimConfig{M: m, Policy: pol, Speed: speed}, jobs, dagsched.NewFIFO())
	if err != nil {
		log.Fatal(err)
	}
	return res.Jobs[0].CompletedAt
}

func main() {
	one := dagsched.NewSpeed(1, 1)

	fmt.Println("--- Figure 1: chain ∥ parallel block (W = m·L) ---")
	L := int64(16)
	g1 := dagsched.Figure1(m, L)
	tu := completion(g1, dagsched.PickUnlucky, one)
	tc := completion(g1, dagsched.PickCriticalPath, one)
	fmt.Printf("W=%d L=%d on m=%d\n", g1.TotalWork(), g1.Span(), m)
	fmt.Printf("  unlucky order:     %3d ticks  (= (W−L)/m + L = %d)\n", tu, (g1.TotalWork()-L)/m+L)
	fmt.Printf("  clairvoyant order: %3d ticks  (= W/m = %d)\n", tc, g1.TotalWork()/m)
	fmt.Printf("  separation %0.2f → any semi-non-clairvoyant scheduler needs speed 2−1/m = %0.2f\n",
		float64(tu)/float64(tc), 2-1.0/m)

	// With deadline D = L, the unlucky run earns nothing until the machine
	// runs at 2−1/m — built with coarse nodes so fractional speed is not
	// lost to node granularity.
	fmt.Println("\n--- Theorem 1: profit under speed augmentation (D = L) ---")
	b := dagsched.NewDAGBuilder()
	const nodeWork = 28 // divisible by 4 and 7
	prev := b.AddNode(nodeWork)
	for i := 1; i < 4; i++ {
		v := b.AddNode(nodeWork)
		b.AddEdge(prev, v)
		prev = v
	}
	for i := 0; i < (m-1)*4; i++ {
		b.AddNode(nodeWork)
	}
	gT, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	deadline := gT.Span()
	for _, sp := range []dagsched.Speed{dagsched.NewSpeed(1, 1), dagsched.NewSpeed(3, 2), dagsched.NewSpeed(7, 4), dagsched.NewSpeed(2, 1)} {
		fn, err := dagsched.StepProfit(1, deadline)
		if err != nil {
			log.Fatal(err)
		}
		jobs := []*dagsched.Job{{ID: 1, Graph: gT, Release: 0, Profit: fn}}
		res, err := dagsched.Run(dagsched.SimConfig{M: m, Policy: dagsched.PickUnlucky, Speed: sp}, jobs, dagsched.NewFIFO())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  speed %-4s → profit %.0f/1\n", sp, res.TotalProfit)
	}

	fmt.Println("\n--- Figure 2: chain then block (clairvoyance doesn't help) ---")
	g2 := dagsched.Figure2(15, 49) // W=64, L=16
	t2 := completion(g2, dagsched.PickCriticalPath, one)
	fmt.Printf("W=%d L=%d on m=%d\n", g2.TotalWork(), g2.Span(), m)
	fmt.Printf("  clairvoyant completion: %d ticks ≈ (W−L)/m + L = %d ≫ W/m = %d\n",
		t2, (g2.TotalWork()-g2.Span())/m+g2.Span(), g2.TotalWork()/m)
	fmt.Println("  → deadlines below (W−L)/m + L are hopeless even offline;")
	fmt.Println("    Corollary 2 assumes exactly D ≥ (W−L)/m + L.")
}
