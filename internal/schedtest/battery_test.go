package schedtest

import (
	"testing"

	"dagsched/internal/baselines"
	"dagsched/internal/core"
	"dagsched/internal/sim"
)

// TestAllSchedulersConform runs the conformance battery over every
// scheduler shipped by the repository.
func TestAllSchedulersConform(t *testing.T) {
	params := core.MustParams(1)
	cases := map[string]Factory{
		"paper-S":     func() sim.Scheduler { return core.NewSchedulerS(core.Options{Params: params}) },
		"paper-S+wc":  func() sim.Scheduler { return core.NewSchedulerS(core.Options{Params: params, WorkConserving: true}) },
		"paper-GP":    func() sim.Scheduler { return core.NewSchedulerGP(core.Options{Params: params}) },
		"paper-GP+wc": func() sim.Scheduler { return core.NewSchedulerGP(core.Options{Params: params, WorkConserving: true}) },
		"paper-NC":    func() sim.Scheduler { return core.NewSchedulerNC(core.Options{Params: params}) },
		"edf":         func() sim.Scheduler { return &baselines.ListScheduler{Order: baselines.OrderEDF} },
		"edf-abandon": func() sim.Scheduler {
			return &baselines.ListScheduler{Order: baselines.OrderEDF, AbandonHopeless: true}
		},
		"llf":          func() sim.Scheduler { return &baselines.ListScheduler{Order: baselines.OrderLLF} },
		"fifo":         func() sim.Scheduler { return &baselines.ListScheduler{Order: baselines.OrderFIFO} },
		"hdf":          func() sim.Scheduler { return &baselines.ListScheduler{Order: baselines.OrderHDF} },
		"profit-order": func() sim.Scheduler { return &baselines.ListScheduler{Order: baselines.OrderProfit} },
		"federated":    func() sim.Scheduler { return &baselines.Federated{} },
	}
	for name, mk := range cases {
		Battery(t, name, mk)
	}
}

// TestAblationsConform: the deliberately weakened variants must still obey
// every engine contract.
func TestAblationsConform(t *testing.T) {
	params := core.MustParams(1)
	for _, abl := range []core.Ablation{
		core.AblationNoBandCheck, core.AblationNoFreshness,
		core.AblationAllotOne, core.AblationAllotAll,
	} {
		abl := abl
		Battery(t, "S/"+abl.String(), func() sim.Scheduler {
			return core.NewSchedulerS(core.Options{Params: params, Ablation: abl})
		})
	}
}
