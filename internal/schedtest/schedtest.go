// Package schedtest provides a conformance battery for sim.Scheduler
// implementations: every scheduler in this repository — the paper's
// algorithms, their extensions, and all baselines — must pass the same
// checks of contract compliance, determinism, schedule validity, and
// accounting consistency. New schedulers get the battery for one line of
// test code.
package schedtest

import (
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/profit"
	"dagsched/internal/rational"
	"dagsched/internal/sim"
	"dagsched/internal/trace"
	"dagsched/internal/workload"
)

// Factory builds a fresh scheduler instance per run (schedulers are
// stateful; Init must reset them, and the battery verifies it does).
type Factory func() sim.Scheduler

// Battery runs the full conformance suite as subtests.
func Battery(t *testing.T, name string, mk Factory) {
	t.Helper()
	t.Run(name+"/empty", func(t *testing.T) { testEmpty(t, mk) })
	t.Run(name+"/single", func(t *testing.T) { testSingle(t, mk) })
	t.Run(name+"/accounting", func(t *testing.T) { testAccounting(t, mk) })
	t.Run(name+"/determinism", func(t *testing.T) { testDeterminism(t, mk) })
	t.Run(name+"/trace", func(t *testing.T) { testTrace(t, mk) })
	t.Run(name+"/reuse", func(t *testing.T) { testReuse(t, mk) })
	t.Run(name+"/edgecases", func(t *testing.T) { testEdgeCases(t, mk) })
}

func mustStep(t *testing.T, v float64, d int64) profit.Fn {
	t.Helper()
	fn, err := profit.NewStep(v, d)
	if err != nil {
		t.Fatal(err)
	}
	return fn
}

func stockInstance(t *testing.T, seed int64) *workload.Instance {
	t.Helper()
	inst, err := workload.Generate(workload.Config{
		Seed: seed, N: 24, M: 6, Eps: 1, SlackSpread: 0.4, Load: 2, Scale: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func testEmpty(t *testing.T, mk Factory) {
	res, err := sim.Run(sim.Config{M: 2}, nil, mk())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalProfit != 0 || res.Ticks != 0 || len(res.Jobs) != 0 {
		t.Errorf("empty run produced %+v", res)
	}
}

func testSingle(t *testing.T, mk Factory) {
	// One small job with an enormous deadline: every reasonable scheduler
	// must finish it.
	j := &sim.Job{ID: 1, Graph: dag.Block(4, 1), Release: 0, Profit: mustStep(t, 3, 100000)}
	res, err := sim.Run(sim.Config{M: 4}, []*sim.Job{j}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 || res.TotalProfit != 3 {
		t.Errorf("single easy job: completed=%d profit=%v", res.Completed, res.TotalProfit)
	}
}

func testAccounting(t *testing.T, mk Factory) {
	for seed := int64(0); seed < 3; seed++ {
		inst := stockInstance(t, 3000+seed)
		res, err := sim.Run(sim.Config{M: inst.M}, inst.Jobs, mk())
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalProfit > res.OfferedProfit+1e-9 {
			t.Errorf("seed %d: profit %v exceeds offered %v", seed, res.TotalProfit, res.OfferedProfit)
		}
		if len(res.Jobs) != len(inst.Jobs) {
			t.Errorf("seed %d: %d job stats for %d jobs", seed, len(res.Jobs), len(inst.Jobs))
		}
		if res.Completed+res.Expired != len(inst.Jobs) {
			t.Errorf("seed %d: completed %d + expired %d != %d", seed, res.Completed, res.Expired, len(inst.Jobs))
		}
		if u := res.Utilization(); u < 0 || u > 1 {
			t.Errorf("seed %d: utilization %v", seed, u)
		}
		var sumProfit float64
		for _, js := range res.Jobs {
			if js.Completed {
				if js.Latency <= 0 || js.CompletedAt != js.Released+js.Latency {
					t.Errorf("seed %d: job %d inconsistent times %+v", seed, js.ID, js)
				}
				if js.ProcTicks == 0 {
					t.Errorf("seed %d: job %d completed with zero allocated time", seed, js.ID)
				}
			} else if js.Profit != 0 {
				t.Errorf("seed %d: job %d earned %v without completing", seed, js.ID, js.Profit)
			}
			sumProfit += js.Profit
		}
		if diff := sumProfit - res.TotalProfit; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("seed %d: per-job profits sum %v != total %v", seed, sumProfit, res.TotalProfit)
		}
	}
}

func testDeterminism(t *testing.T, mk Factory) {
	inst := stockInstance(t, 3100)
	a, err := sim.Run(sim.Config{M: inst.M}, inst.Jobs, mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(sim.Config{M: inst.M}, inst.Jobs, mk())
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalProfit != b.TotalProfit || a.Completed != b.Completed ||
		a.BusyProcTicks != b.BusyProcTicks || a.Ticks != b.Ticks {
		t.Errorf("non-deterministic: (%v,%d,%d,%d) vs (%v,%d,%d,%d)",
			a.TotalProfit, a.Completed, a.BusyProcTicks, a.Ticks,
			b.TotalProfit, b.Completed, b.BusyProcTicks, b.Ticks)
	}
}

func testTrace(t *testing.T, mk Factory) {
	inst := stockInstance(t, 3200)
	for _, sp := range []rational.Rat{rational.One(), rational.New(3, 2)} {
		res, err := sim.Run(sim.Config{M: inst.M, Speed: sp, Record: true}, inst.Jobs, mk())
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.Validate(res.Trace, inst.Jobs, sp); err != nil {
			t.Errorf("speed %v: %v", sp, err)
		}
		if err := trace.VerifyCompletions(res, inst.Jobs); err != nil {
			t.Errorf("speed %v: %v", sp, err)
		}
	}
}

func testReuse(t *testing.T, mk Factory) {
	// The same instance must be reusable across runs: Init resets state.
	s := mk()
	inst := stockInstance(t, 3300)
	a, err := sim.Run(sim.Config{M: inst.M}, inst.Jobs, s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(sim.Config{M: inst.M}, inst.Jobs, s)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalProfit != b.TotalProfit || a.Completed != b.Completed {
		t.Errorf("scheduler state leaked across runs: %v/%d vs %v/%d",
			a.TotalProfit, a.Completed, b.TotalProfit, b.Completed)
	}
}

func testEdgeCases(t *testing.T, mk Factory) {
	// Zero-profit jobs, identical jobs arriving simultaneously, one-node
	// jobs, and an impossible deadline — none of it may error.
	jobs := []*sim.Job{
		{ID: 1, Graph: dag.Chain(1, 1), Release: 0, Profit: mustStep(t, 0, 10)},
		{ID: 2, Graph: dag.Block(6, 1), Release: 0, Profit: mustStep(t, 5, 20)},
		{ID: 3, Graph: dag.Block(6, 1), Release: 0, Profit: mustStep(t, 5, 20)},
		{ID: 4, Graph: dag.Chain(30, 1), Release: 0, Profit: mustStep(t, 9, 3)}, // hopeless
		{ID: 5, Graph: dag.Chain(1, 1), Release: 50, Profit: mustStep(t, 1, 5)},
	}
	res, err := sim.Run(sim.Config{M: 3}, jobs, mk())
	if err != nil {
		t.Fatal(err)
	}
	for _, js := range res.Jobs {
		if js.ID == 4 && js.Completed {
			t.Error("hopeless job reported completed")
		}
	}
}
