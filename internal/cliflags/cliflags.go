// Package cliflags is the shared flag-parsing layer of the spaa-* commands:
// rational speed strings, scheduler and policy selection, and the fault
// injection flag set with its spec-vs-flag conflict check. Before this
// package each command carried its own copy of these parsers; the serving
// daemon consumes it from day one, so every tool accepts the same syntax
// and rejects the same misuse with the same exit codes.
package cliflags

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"dagsched/internal/baselines"
	"dagsched/internal/core"
	"dagsched/internal/dag"
	"dagsched/internal/faults"
	"dagsched/internal/rational"
	"dagsched/internal/sim"
)

// SchedulerNames lists the -sched selectors every command accepts, in the
// order usage strings should show them.
var SchedulerNames = []string{"s", "swc", "nc", "gp", "edf", "llf", "fifo", "hdf", "federated"}

// PolicyNames lists the -policy selectors.
var PolicyNames = []string{"id", "random", "unlucky", "cp"}

// ParseSpeed parses a machine speed given as an integer ("2"), a rational
// ("3/2"), or a float ("1.5", converted to an exact rational).
func ParseSpeed(s string) (rational.Rat, error) {
	if num, den, ok := strings.Cut(s, "/"); ok {
		p, err1 := strconv.ParseInt(num, 10, 64)
		q, err2 := strconv.ParseInt(den, 10, 64)
		if err1 != nil || err2 != nil || q == 0 {
			return rational.Rat{}, fmt.Errorf("bad speed %q", s)
		}
		return rational.New(p, q), nil
	}
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		return rational.FromInt(v), nil
	}
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return rational.FromFloat(v, 64), nil
	}
	return rational.Rat{}, fmt.Errorf("bad speed %q", s)
}

// SchedulerFactory resolves a -sched selector to a constructor. Factories
// rather than instances, because grid tools (spaa-mine -sched all) need a
// fresh scheduler per cell. gp and nc have no resilient variant.
func SchedulerFactory(sel string, eps float64, resilient bool) (func() sim.Scheduler, error) {
	params, err := core.NewParams(eps)
	if err != nil {
		return nil, err
	}
	switch sel {
	case "s":
		return func() sim.Scheduler {
			return core.NewSchedulerS(core.Options{Params: params, Resilient: resilient})
		}, nil
	case "swc":
		return func() sim.Scheduler {
			return core.NewSchedulerS(core.Options{Params: params, WorkConserving: true, Resilient: resilient})
		}, nil
	case "nc", "gp":
		if resilient {
			return nil, fmt.Errorf("scheduler %q has no resilient variant", sel)
		}
		if sel == "nc" {
			return func() sim.Scheduler { return core.NewSchedulerNC(core.Options{Params: params}) }, nil
		}
		return func() sim.Scheduler { return core.NewSchedulerGP(core.Options{Params: params}) }, nil
	case "edf":
		return func() sim.Scheduler {
			return &baselines.ListScheduler{Order: baselines.OrderEDF, Resilient: resilient}
		}, nil
	case "llf":
		return func() sim.Scheduler {
			return &baselines.ListScheduler{Order: baselines.OrderLLF, Resilient: resilient}
		}, nil
	case "fifo":
		return func() sim.Scheduler {
			return &baselines.ListScheduler{Order: baselines.OrderFIFO, Resilient: resilient}
		}, nil
	case "hdf":
		return func() sim.Scheduler {
			return &baselines.ListScheduler{Order: baselines.OrderHDF, Resilient: resilient}
		}, nil
	case "federated":
		return func() sim.Scheduler { return &baselines.Federated{Resilient: resilient} }, nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q", sel)
	}
}

// MakeScheduler is SchedulerFactory for tools that need a single instance.
func MakeScheduler(sel string, eps float64, resilient bool) (sim.Scheduler, error) {
	mk, err := SchedulerFactory(sel, eps, resilient)
	if err != nil {
		return nil, err
	}
	return mk(), nil
}

// NewRand builds a deterministic source for the random pick policy.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// MakePolicy resolves a -policy selector.
func MakePolicy(sel string, seed int64) (dag.PickPolicy, error) {
	switch sel {
	case "id":
		return dag.ByID{}, nil
	case "random":
		return dag.Random{Rng: NewRand(seed)}, nil
	case "unlucky":
		return dag.Unlucky{}, nil
	case "cp":
		return dag.CriticalPathFirst{}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", sel)
	}
}

// FaultFlags is the fault-injection flag group: a compact -faults spec plus
// one override flag per field. Register wires it into a FlagSet; Check
// rejects a spec field combined with its override; Build merges both into a
// faults.Config (nil when no injection was requested).
type FaultFlags struct {
	Spec          string
	Seed          int64
	MTBF          float64
	MTTR          float64
	CrashRate     float64
	StragglerFrac float64
	StragglerSlow float64
}

// Register declares the fault flags on fs with the shared names and help.
func (ff *FaultFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&ff.Spec, "faults", "", "fault injection spec, e.g. \"seed=1,mtbf=60,mttr=20,crash=0.01,straggler=0.2,slow=4\"")
	fs.Int64Var(&ff.Seed, "fault-seed", 0, "fault-model seed (overrides the spec's seed)")
	fs.Float64Var(&ff.MTBF, "mtbf", 0, "mean ticks between processor crashes (0 = no crashes)")
	fs.Float64Var(&ff.MTTR, "mttr", 0, "mean ticks to repair a crashed processor (0 = mtbf/10)")
	fs.Float64Var(&ff.CrashRate, "crash-rate", 0, "per-node-per-tick execution failure probability")
	fs.Float64Var(&ff.StragglerFrac, "straggler-frac", 0, "fraction of processors designated stragglers")
	fs.Float64Var(&ff.StragglerSlow, "straggler-slow", 0, "straggler slowdown factor (≥ 1; 0 = default 4)")
}

// faultFlagKeys maps each individual fault flag to the -faults spec key it
// overrides. Check rejects a run that sets both.
var faultFlagKeys = map[string]string{
	"fault-seed":     "seed",
	"mtbf":           "mtbf",
	"mttr":           "mttr",
	"crash-rate":     "crash",
	"straggler-frac": "straggler",
	"straggler-slow": "slow",
}

// ErrFaultFlagConflict is the named usage error for a -faults spec field
// combined with its individual override flag; commands exit 2 on it.
var ErrFaultFlagConflict = fmt.Errorf("conflicting fault configuration")

// Check rejects runs where a -faults spec field and the corresponding
// individual flag are both set explicitly — silently preferring one would
// make the other a lie. setFlags holds the names the user set, as collected
// by flag.Visit.
func (ff *FaultFlags) Check(setFlags map[string]bool) error {
	if ff.Spec == "" {
		return nil
	}
	keys, err := faults.SpecKeys(ff.Spec)
	if err != nil {
		return err
	}
	for flagName, key := range faultFlagKeys {
		if setFlags[flagName] && keys[key] {
			return fmt.Errorf("%w: -faults field %q and flag -%s are both set; use one",
				ErrFaultFlagConflict, key, flagName)
		}
	}
	return nil
}

// SetFlags collects the names the user explicitly set on fs. Call after
// fs.Parse; pass the result to Check.
func SetFlags(fs *flag.FlagSet) map[string]bool {
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

// Build merges the spec with the override flags and returns nil when no
// fault injection was requested.
func (ff *FaultFlags) Build() (*faults.Config, error) {
	cfg, err := faults.ParseSpec(ff.Spec)
	if err != nil {
		return nil, err
	}
	if ff.Seed != 0 {
		cfg.Seed = ff.Seed
	}
	if ff.MTBF != 0 {
		cfg.MTBF = ff.MTBF
	}
	if ff.MTTR != 0 {
		cfg.MTTR = ff.MTTR
	}
	if ff.CrashRate != 0 {
		cfg.CrashRate = ff.CrashRate
	}
	if ff.StragglerFrac != 0 {
		cfg.StragglerFrac = ff.StragglerFrac
	}
	if ff.StragglerSlow != 0 {
		cfg.StragglerSlow = ff.StragglerSlow
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	return &cfg, nil
}

// ValidateShards rejects shard counts the serving tier cannot honor: a shard
// needs at least one processor, so 1 ≤ shards ≤ m. Commands surface the error
// through FatalUsage; the serve package calls it again at construction so
// programmatic embedders get the same rule.
func ValidateShards(shards, m int) error {
	if shards < 1 {
		return fmt.Errorf("shards %d, need ≥ 1", shards)
	}
	if shards > m {
		return fmt.Errorf("shards %d exceeds m=%d; every shard needs at least one processor", shards, m)
	}
	return nil
}

// MaxBatchLimit caps the -max-batch flag: a single /v1/jobs:batch request may
// carry at most this many job specs. The limit bounds the engine-goroutine
// occupancy of one batch message (and the memory of its reply), independent of
// Config.MaxBodyBytes.
const MaxBatchLimit = 1 << 16

// ValidateMaxBatch rejects batch-size limits the serving tier cannot honor:
// 1 ≤ n ≤ MaxBatchLimit. Commands surface the error through FatalUsage; the
// serve package calls it again at construction so programmatic embedders get
// the same rule.
func ValidateMaxBatch(n int) error {
	if n < 1 || n > MaxBatchLimit {
		return fmt.Errorf("max-batch %d out of range [1, %d]", n, MaxBatchLimit)
	}
	return nil
}

// PartitionCapacity splits m processors across shards as evenly as possible:
// every shard gets ⌊m/shards⌋ and the first m mod shards shards get one
// extra, so lower-indexed shards hold the remainder. The placement is
// deterministic — recovery and offline replay must partition exactly as the
// serving daemon did. Callers validate with ValidateShards first.
func PartitionCapacity(m, shards int) []int {
	part := make([]int, shards)
	base, extra := m/shards, m%shards
	for i := range part {
		part[i] = base
		if i < extra {
			part[i]++
		}
	}
	return part
}

// Fail prints "tool: err" and exits 1 when err is non-nil.
func Fail(tool string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		os.Exit(1)
	}
}

// FatalUsage prints "tool: err" and exits 2, mirroring flag's own bad-usage
// exit code.
func FatalUsage(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(2)
}
