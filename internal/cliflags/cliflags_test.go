package cliflags

import (
	"errors"
	"flag"
	"strings"
	"testing"

	"dagsched/internal/rational"
)

func TestParseSpeed(t *testing.T) {
	cases := []struct {
		in      string
		want    rational.Rat
		wantErr bool
	}{
		{in: "1", want: rational.FromInt(1)},
		{in: "2", want: rational.FromInt(2)},
		{in: "3/2", want: rational.New(3, 2)},
		{in: "10/4", want: rational.New(10, 4)},
		{in: "1.5", want: rational.New(3, 2)},
		{in: "x", wantErr: true},
		{in: "1/0", wantErr: true},
		{in: "a/b", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, tc := range cases {
		got, err := ParseSpeed(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSpeed(%q) accepted", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpeed(%q): %v", tc.in, err)
			continue
		}
		if got.Reduced() != tc.want.Reduced() {
			t.Errorf("ParseSpeed(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestSchedulerFactoryRoster(t *testing.T) {
	for _, sel := range SchedulerNames {
		mk, err := SchedulerFactory(sel, 1, false)
		if err != nil {
			t.Fatalf("factory(%q): %v", sel, err)
		}
		a, b := mk(), mk()
		if a == b {
			t.Fatalf("factory(%q) reuses one instance", sel)
		}
		if a.Name() == "" {
			t.Fatalf("factory(%q): empty name", sel)
		}
	}
	if _, err := SchedulerFactory("nope", 1, false); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if _, err := SchedulerFactory("s", -1, false); err == nil {
		t.Fatal("invalid epsilon accepted")
	}
	// gp and nc have no resilient variant; the rest do.
	for _, sel := range SchedulerNames {
		_, err := SchedulerFactory(sel, 1, true)
		wantErr := sel == "gp" || sel == "nc"
		if (err != nil) != wantErr {
			t.Errorf("factory(%q, resilient): err=%v, wantErr=%v", sel, err, wantErr)
		}
	}
}

func TestMakePolicyRoster(t *testing.T) {
	for _, sel := range PolicyNames {
		p, err := MakePolicy(sel, 1)
		if err != nil {
			t.Fatalf("policy(%q): %v", sel, err)
		}
		if p.Name() == "" {
			t.Fatalf("policy(%q): empty name", sel)
		}
	}
	if _, err := MakePolicy("nope", 1); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestFaultFlagsCheck(t *testing.T) {
	set := func(names ...string) map[string]bool {
		m := make(map[string]bool)
		for _, n := range names {
			m[n] = true
		}
		return m
	}
	cases := []struct {
		name     string
		spec     string
		setFlags map[string]bool
		conflict bool
		wantErr  bool
	}{
		{name: "empty spec, flags set", spec: "", setFlags: set("mtbf", "crash-rate")},
		{name: "spec only", spec: "mtbf=60,crash=0.01", setFlags: set("sched", "n")},
		{name: "disjoint", spec: "mtbf=60", setFlags: set("crash-rate", "fault-seed")},
		{name: "mtbf conflict", spec: "mtbf=60", setFlags: set("mtbf"), conflict: true},
		{name: "mttr conflict", spec: "mttr=5", setFlags: set("mttr"), conflict: true},
		{name: "crash conflict", spec: "crash=0.1", setFlags: set("crash-rate"), conflict: true},
		{name: "seed conflict", spec: "seed=3", setFlags: set("fault-seed"), conflict: true},
		{name: "straggler conflict", spec: "straggler=0.2,slow=2", setFlags: set("straggler-frac"), conflict: true},
		{name: "slow conflict", spec: "straggler=0.2,slow=2", setFlags: set("straggler-slow"), conflict: true},
		{name: "bad spec", spec: "mtbf", setFlags: set("mtbf"), wantErr: true},
		{name: "unknown key", spec: "bogus=1", setFlags: nil, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ff := FaultFlags{Spec: tc.spec}
			err := ff.Check(tc.setFlags)
			switch {
			case tc.conflict:
				if !errors.Is(err, ErrFaultFlagConflict) {
					t.Fatalf("got %v, want ErrFaultFlagConflict", err)
				}
			case tc.wantErr:
				if err == nil || errors.Is(err, ErrFaultFlagConflict) {
					t.Fatalf("got %v, want a parse error", err)
				}
			default:
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
			}
		})
	}
}

func TestConflictErrorNamesBothSides(t *testing.T) {
	ff := FaultFlags{Spec: "crash=0.5"}
	err := ff.Check(map[string]bool{"crash-rate": true})
	if err == nil {
		t.Fatal("want conflict error")
	}
	for _, frag := range []string{`"crash"`, "-crash-rate"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not name %s", err, frag)
		}
	}
}

func TestFaultFlagsBuild(t *testing.T) {
	cases := []struct {
		name    string
		ff      FaultFlags
		nilCfg  bool
		wantErr bool
	}{
		{name: "nothing requested", ff: FaultFlags{}, nilCfg: true},
		{name: "spec only", ff: FaultFlags{Spec: "seed=3,mtbf=60"}},
		{name: "flags only", ff: FaultFlags{MTBF: 50, CrashRate: 0.1}},
		{name: "flag overrides spec", ff: FaultFlags{Spec: "mtbf=60", Seed: 9}},
		{name: "bad spec", ff: FaultFlags{Spec: "mtbf=abc"}, wantErr: true},
		{name: "invalid config", ff: FaultFlags{CrashRate: 2}, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := tc.ff.Build()
			if tc.wantErr {
				if err == nil {
					t.Fatal("want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if (cfg == nil) != tc.nilCfg {
				t.Fatalf("cfg = %+v, want nil=%v", cfg, tc.nilCfg)
			}
		})
	}

	// Flag values override the spec's.
	ff := FaultFlags{Spec: "seed=1,mtbf=60", Seed: 9, MTTR: 5}
	cfg, err := ff.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 9 || cfg.MTBF != 60 || cfg.MTTR != 5 {
		t.Fatalf("merged config = %+v", cfg)
	}
}

func TestRegisterAndSetFlags(t *testing.T) {
	var ff FaultFlags
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	ff.Register(fs)
	if err := fs.Parse([]string{"-mtbf", "60", "-fault-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	if ff.MTBF != 60 || ff.Seed != 3 {
		t.Fatalf("parsed flags = %+v", ff)
	}
	set := SetFlags(fs)
	if !set["mtbf"] || !set["fault-seed"] || set["mttr"] {
		t.Fatalf("SetFlags = %v", set)
	}
}

func TestValidateShards(t *testing.T) {
	cases := []struct {
		shards, m int
		wantErr   bool
	}{
		{1, 1, false},
		{1, 8, false},
		{4, 8, false},
		{8, 8, false},
		{0, 8, true},  // a daemon needs at least one shard
		{-2, 8, true}, // negative counts are nonsense
		{9, 8, true},  // a shard with zero processors cannot run Scheduler S
		{16, 4, true},
	}
	for _, tc := range cases {
		err := ValidateShards(tc.shards, tc.m)
		if (err != nil) != tc.wantErr {
			t.Errorf("ValidateShards(%d, %d) = %v, want error %v", tc.shards, tc.m, err, tc.wantErr)
		}
	}
}

func TestValidateMaxBatch(t *testing.T) {
	cases := []struct {
		n       int
		wantErr bool
	}{
		{1, false},
		{64, false},
		{MaxBatchLimit, false},
		{0, true}, // an empty batch limit would reject every batch
		{-1, true},
		{MaxBatchLimit + 1, true}, // unbounded batches would pin an engine goroutine
	}
	for _, tc := range cases {
		err := ValidateMaxBatch(tc.n)
		if (err != nil) != tc.wantErr {
			t.Errorf("ValidateMaxBatch(%d) = %v, want error %v", tc.n, err, tc.wantErr)
		}
	}
}

func TestPartitionCapacity(t *testing.T) {
	cases := []struct {
		m, shards int
		want      []int
	}{
		{8, 1, []int{8}},
		{8, 2, []int{4, 4}},
		{8, 4, []int{2, 2, 2, 2}},
		// Non-divisible m: the remainder lands on the lowest-indexed shards,
		// one extra processor each.
		{7, 2, []int{4, 3}},
		{10, 4, []int{3, 3, 2, 2}},
		{5, 4, []int{2, 1, 1, 1}},
		{9, 8, []int{2, 1, 1, 1, 1, 1, 1, 1}},
	}
	for _, tc := range cases {
		got := PartitionCapacity(tc.m, tc.shards)
		if len(got) != len(tc.want) {
			t.Errorf("PartitionCapacity(%d, %d) = %v, want %v", tc.m, tc.shards, got, tc.want)
			continue
		}
		sum := 0
		for i := range got {
			sum += got[i]
			if got[i] != tc.want[i] {
				t.Errorf("PartitionCapacity(%d, %d) = %v, want %v", tc.m, tc.shards, got, tc.want)
				break
			}
		}
		if sum != tc.m {
			t.Errorf("PartitionCapacity(%d, %d) sums to %d", tc.m, tc.shards, sum)
		}
	}
}
