package profit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStepBasics(t *testing.T) {
	s, err := NewStep(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.At(1) != 10 || s.At(5) != 10 {
		t.Error("step not flat before deadline")
	}
	if s.At(6) != 0 {
		t.Error("step nonzero after deadline")
	}
	if s.FlatUntil() != 5 {
		t.Errorf("FlatUntil = %d", s.FlatUntil())
	}
	if s.SupportEnd() != 6 {
		t.Errorf("SupportEnd = %d", s.SupportEnd())
	}
}

func TestStepValidation(t *testing.T) {
	if _, err := NewStep(-1, 5); err == nil {
		t.Error("accepted negative value")
	}
	if _, err := NewStep(1, 0); err == nil {
		t.Error("accepted deadline 0")
	}
	if _, err := NewStep(math.NaN(), 5); err == nil {
		t.Error("accepted NaN")
	}
}

func TestLinearDecay(t *testing.T) {
	l, err := NewLinearDecay(8, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if l.At(4) != 8 {
		t.Errorf("At(4) = %v", l.At(4))
	}
	if got := l.At(6); got != 4 {
		t.Errorf("At(6) = %v, want 4 (halfway down)", got)
	}
	if l.At(8) != 0 || l.At(100) != 0 {
		t.Error("nonzero past ZeroAt")
	}
	if l.FlatUntil() != 4 || l.SupportEnd() != 8 {
		t.Errorf("FlatUntil=%d SupportEnd=%d", l.FlatUntil(), l.SupportEnd())
	}
}

func TestLinearDecayValidation(t *testing.T) {
	if _, err := NewLinearDecay(1, 5, 5); err == nil {
		t.Error("accepted zeroAt == flat")
	}
	if _, err := NewLinearDecay(1, 0, 5); err == nil {
		t.Error("accepted flat 0")
	}
}

func TestExpDecay(t *testing.T) {
	e, err := NewExpDecay(16, 2, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if e.At(2) != 16 {
		t.Errorf("At(2) = %v", e.At(2))
	}
	if got := e.At(5); math.Abs(got-8) > 1e-9 {
		t.Errorf("At(5) = %v, want 8 (one half-life)", got)
	}
	if e.At(100) != 0 {
		t.Error("nonzero at cutoff")
	}
}

func TestExpDecayValidation(t *testing.T) {
	if _, err := NewExpDecay(1, 2, 0, 10); err == nil {
		t.Error("accepted half-life 0")
	}
	if _, err := NewExpDecay(1, 5, 1, 5); err == nil {
		t.Error("accepted cutoff == flat")
	}
}

func TestPiecewiseConstant(t *testing.T) {
	p, err := NewPiecewiseConstant([]int64{3, 6, 9}, []float64{10, 10, 4})
	if err != nil {
		t.Fatal(err)
	}
	if p.At(3) != 10 || p.At(6) != 10 || p.At(7) != 4 {
		t.Errorf("values: %v %v %v", p.At(3), p.At(6), p.At(7))
	}
	if p.At(10) != 0 {
		t.Error("nonzero after last breakpoint")
	}
	if p.FlatUntil() != 6 {
		t.Errorf("FlatUntil = %d, want 6 (two equal pieces)", p.FlatUntil())
	}
	if p.SupportEnd() != 10 {
		t.Errorf("SupportEnd = %d, want 10", p.SupportEnd())
	}
}

func TestPiecewiseConstantTrailingZero(t *testing.T) {
	p, err := NewPiecewiseConstant([]int64{3, 6}, []float64{5, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.SupportEnd(); got != 4 {
		t.Errorf("SupportEnd = %d, want 4 (zero piece starts at 4)", got)
	}
}

func TestPiecewiseConstantValidation(t *testing.T) {
	if _, err := NewPiecewiseConstant(nil, nil); err == nil {
		t.Error("accepted empty")
	}
	if _, err := NewPiecewiseConstant([]int64{3, 2}, []float64{2, 1}); err == nil {
		t.Error("accepted non-increasing breakpoints")
	}
	if _, err := NewPiecewiseConstant([]int64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("accepted increasing values")
	}
	if _, err := NewPiecewiseConstant([]int64{1}, []float64{1, 2}); err == nil {
		t.Error("accepted length mismatch")
	}
}

func TestValidateCatchesConsistency(t *testing.T) {
	fns := []Fn{
		Step{Value: 3, Deadline: 7},
		LinearDecay{Peak: 5, Flat: 3, ZeroAt: 11},
		ExpDecay{Peak: 4, Flat: 2, HalfLife: 2, Cutoff: 30},
		PiecewiseConstant{Until: []int64{2, 8}, Values: []float64{6, 1}},
	}
	for _, fn := range fns {
		if err := Validate(fn, 50); err != nil {
			t.Errorf("%s: %v", fn.Name(), err)
		}
	}
}

type increasing struct{ Step }

func (increasing) At(t int64) float64 { return float64(t) }

func (increasing) Name() string { return "increasing" }

func TestValidateRejectsIncreasing(t *testing.T) {
	if err := Validate(increasing{}, 10); err == nil {
		t.Error("Validate accepted an increasing function")
	}
}

func TestPropAllFamiliesNonIncreasing(t *testing.T) {
	f := func(peakSeed uint32, flatSeed, spanSeed uint16) bool {
		peak := float64(peakSeed%1000) + 1
		flat := int64(flatSeed%50) + 1
		span := int64(spanSeed%50) + 1
		fns := []Fn{
			Step{Value: peak, Deadline: flat},
			LinearDecay{Peak: peak, Flat: flat, ZeroAt: flat + span},
			ExpDecay{Peak: peak, Flat: flat, HalfLife: span, Cutoff: flat + 4*span},
		}
		for _, fn := range fns {
			if Validate(fn, flat+5*span) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
