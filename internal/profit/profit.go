// Package profit models the paper's job valuations. In the throughput
// problem (Section 3) a job is worth a fixed profit if it completes by its
// deadline; in the general profit problem (Section 5) each job J_i carries an
// arbitrary non-negative, non-increasing function p_i(t) giving the profit
// for finishing t time steps after arrival.
//
// Theorem 3 additionally assumes a "flat prefix": p_i(t) = p_i(x*) for all
// 0 < t ≤ x*, where x* ≥ (1+ε)((W−L)/m + L) — completing earlier than x*
// brings no extra profit. Every function here exposes its flat-prefix length.
package profit

import (
	"errors"
	"fmt"
	"math"
)

// Fn is a non-negative, non-increasing profit function over completion
// latency in ticks. Implementations must be immutable after construction.
type Fn interface {
	// At returns the profit for completing t ticks after arrival, t ≥ 1.
	At(t int64) float64
	// FlatUntil returns x*: the largest x ≥ 1 such that At(t) == At(x) for
	// all 1 ≤ t ≤ x. For a pure deadline function this is the relative
	// deadline.
	FlatUntil() int64
	// SupportEnd returns the first t at which the profit is (and stays)
	// zero, or math.MaxInt64 if the profit never reaches zero. OPT bounds
	// use this as the effective deadline horizon.
	SupportEnd() int64
	// Name identifies the function family in reports.
	Name() string
}

// Step is the throughput-problem profit: Value if the job finishes within
// Deadline ticks of arrival, zero afterwards.
type Step struct {
	Value    float64
	Deadline int64
}

// NewStep returns a Step profit, validating Value ≥ 0 and Deadline ≥ 1.
func NewStep(value float64, deadline int64) (Step, error) {
	s := Step{Value: value, Deadline: deadline}
	return s, s.validate()
}

func (s Step) validate() error {
	if s.Value < 0 || math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
		return fmt.Errorf("profit: step value %v invalid", s.Value)
	}
	if s.Deadline < 1 {
		return fmt.Errorf("profit: step deadline %d < 1", s.Deadline)
	}
	return nil
}

// At implements Fn.
func (s Step) At(t int64) float64 {
	if t <= s.Deadline {
		return s.Value
	}
	return 0
}

// FlatUntil implements Fn.
func (s Step) FlatUntil() int64 { return s.Deadline }

// SupportEnd implements Fn.
func (s Step) SupportEnd() int64 { return s.Deadline + 1 }

// Name implements Fn.
func (s Step) Name() string { return "step" }

// LinearDecay is flat at Peak until Flat, then decreases linearly to zero at
// ZeroAt, and is zero afterwards.
type LinearDecay struct {
	Peak   float64
	Flat   int64
	ZeroAt int64
}

// NewLinearDecay validates and returns a LinearDecay profit function.
func NewLinearDecay(peak float64, flat, zeroAt int64) (LinearDecay, error) {
	l := LinearDecay{Peak: peak, Flat: flat, ZeroAt: zeroAt}
	if peak < 0 || math.IsNaN(peak) || math.IsInf(peak, 0) {
		return l, fmt.Errorf("profit: linear peak %v invalid", peak)
	}
	if flat < 1 {
		return l, fmt.Errorf("profit: linear flat %d < 1", flat)
	}
	if zeroAt <= flat {
		return l, fmt.Errorf("profit: linear zeroAt %d ≤ flat %d", zeroAt, flat)
	}
	return l, nil
}

// At implements Fn.
func (l LinearDecay) At(t int64) float64 {
	switch {
	case t <= l.Flat:
		return l.Peak
	case t >= l.ZeroAt:
		return 0
	default:
		return l.Peak * float64(l.ZeroAt-t) / float64(l.ZeroAt-l.Flat)
	}
}

// FlatUntil implements Fn.
func (l LinearDecay) FlatUntil() int64 { return l.Flat }

// SupportEnd implements Fn.
func (l LinearDecay) SupportEnd() int64 { return l.ZeroAt }

// Name implements Fn.
func (l LinearDecay) Name() string { return "linear-decay" }

// ExpDecay is flat at Peak until Flat, then halves every HalfLife ticks. A
// hard Cutoff (exclusive) bounds the support so offline bounds terminate;
// profit is zero at and after Cutoff.
type ExpDecay struct {
	Peak     float64
	Flat     int64
	HalfLife int64
	Cutoff   int64
}

// NewExpDecay validates and returns an ExpDecay profit function.
func NewExpDecay(peak float64, flat, halfLife, cutoff int64) (ExpDecay, error) {
	e := ExpDecay{Peak: peak, Flat: flat, HalfLife: halfLife, Cutoff: cutoff}
	if peak < 0 || math.IsNaN(peak) || math.IsInf(peak, 0) {
		return e, fmt.Errorf("profit: exp peak %v invalid", peak)
	}
	if flat < 1 {
		return e, fmt.Errorf("profit: exp flat %d < 1", flat)
	}
	if halfLife < 1 {
		return e, fmt.Errorf("profit: exp half-life %d < 1", halfLife)
	}
	if cutoff <= flat {
		return e, fmt.Errorf("profit: exp cutoff %d ≤ flat %d", cutoff, flat)
	}
	return e, nil
}

// At implements Fn.
func (e ExpDecay) At(t int64) float64 {
	switch {
	case t <= e.Flat:
		return e.Peak
	case t >= e.Cutoff:
		return 0
	default:
		return e.Peak * math.Exp2(-float64(t-e.Flat)/float64(e.HalfLife))
	}
}

// FlatUntil implements Fn.
func (e ExpDecay) FlatUntil() int64 { return e.Flat }

// SupportEnd implements Fn.
func (e ExpDecay) SupportEnd() int64 { return e.Cutoff }

// Name implements Fn.
func (e ExpDecay) Name() string { return "exp-decay" }

// PiecewiseConstant is a right-continuous staircase: Values[i] applies for
// t in (Until[i−1], Until[i]] (with Until[-1] = 0), and the profit is zero
// after the last breakpoint. Values must be non-increasing and non-negative.
type PiecewiseConstant struct {
	Until  []int64
	Values []float64
}

// NewPiecewiseConstant validates and returns a staircase profit function.
func NewPiecewiseConstant(until []int64, values []float64) (PiecewiseConstant, error) {
	p := PiecewiseConstant{Until: until, Values: values}
	if len(until) == 0 || len(until) != len(values) {
		return p, errors.New("profit: piecewise needs equal, nonzero breakpoints and values")
	}
	prev := int64(0)
	for i, u := range until {
		if u <= prev {
			return p, fmt.Errorf("profit: piecewise breakpoints not increasing at %d", i)
		}
		prev = u
		v := values[i]
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return p, fmt.Errorf("profit: piecewise value %v invalid at %d", v, i)
		}
		if i > 0 && v > values[i-1] {
			return p, fmt.Errorf("profit: piecewise values increase at %d", i)
		}
	}
	return p, nil
}

// At implements Fn.
func (p PiecewiseConstant) At(t int64) float64 {
	for i, u := range p.Until {
		if t <= u {
			return p.Values[i]
		}
	}
	return 0
}

// FlatUntil implements Fn.
func (p PiecewiseConstant) FlatUntil() int64 {
	flat := p.Until[0]
	for i := 1; i < len(p.Values); i++ {
		if p.Values[i] != p.Values[0] {
			break
		}
		flat = p.Until[i]
	}
	return flat
}

// SupportEnd implements Fn.
func (p PiecewiseConstant) SupportEnd() int64 {
	// Profit is zero after the last breakpoint, and possibly earlier if
	// trailing values are zero.
	for i := range p.Values {
		if p.Values[i] == 0 {
			if i == 0 {
				return 1
			}
			return p.Until[i-1] + 1
		}
	}
	return p.Until[len(p.Until)-1] + 1
}

// Name implements Fn.
func (p PiecewiseConstant) Name() string { return "piecewise-constant" }

// Validate checks that fn is non-increasing and non-negative on [1, horizon]
// and that FlatUntil and SupportEnd are consistent with At. It is O(horizon)
// and intended for tests and input validation, not hot paths.
func Validate(fn Fn, horizon int64) error {
	if horizon < 1 {
		return errors.New("profit: horizon < 1")
	}
	prev := math.Inf(1)
	flat := fn.FlatUntil()
	first := fn.At(1)
	for t := int64(1); t <= horizon; t++ {
		v := fn.At(t)
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("profit: %s negative/NaN at t=%d", fn.Name(), t)
		}
		if v > prev {
			return fmt.Errorf("profit: %s increases at t=%d (%v -> %v)", fn.Name(), t, prev, v)
		}
		if t <= flat && v != first {
			return fmt.Errorf("profit: %s not flat at t=%d ≤ FlatUntil=%d", fn.Name(), t, flat)
		}
		if se := fn.SupportEnd(); t >= se && v != 0 {
			return fmt.Errorf("profit: %s nonzero at t=%d ≥ SupportEnd=%d", fn.Name(), t, se)
		}
		prev = v
	}
	return nil
}
