package serve

import (
	"bytes"
	"cmp"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"dagsched/internal/dag"
	"dagsched/internal/obs"
	"dagsched/internal/profit"
	"dagsched/internal/sim"
	"dagsched/internal/telemetry"
	"dagsched/internal/workload"
)

// ProfitValue is the v2 "profit" field: a scalar (the v1 step shorthand) or
// a structured {"type":...} profit function. See workload.ProfitValue.
type ProfitValue = workload.ProfitValue

// ScalarProfit wraps a v1 scalar profit (workload.ScalarProfit).
func ScalarProfit(v float64) ProfitValue { return workload.ScalarProfit(v) }

// JobSpec is the POST /v1/jobs request body (the v2 job schema). The shape
// is given either as a full DAG (the instance wire format:
// {"work":[...],"edges":[[u,v],...]}) or as scalar totals W and L, from
// which the server synthesizes a DAG with exactly that work and span. Profit
// is either the v1 scalar step shorthand (worth that much until Deadline
// ticks after release) or a structured {"type":...} non-increasing profit
// function, which carries its own horizon; Curve is the v1 spelling of the
// structured form and is kept for compatibility. Commitment optionally
// overrides the daemon-wide commitment policy for this job ("none",
// "on-admission", "on-arrival", "delta"; empty inherits).
type JobSpec struct {
	W          int64                `json:"w,omitempty"`
	L          int64                `json:"l,omitempty"`
	DAG        *dag.DAG             `json:"dag,omitempty"`
	Deadline   int64                `json:"deadline,omitempty"`
	Profit     ProfitValue          `json:"profit"`
	Curve      *workload.ProfitSpec `json:"curve,omitempty"`
	Commitment string               `json:"commitment,omitempty"`
}

// maxSynthNodes caps the node count of a synthesized DAG so a scalar spec
// cannot make the server materialize an arbitrarily large graph.
const maxSynthNodes = 1 << 16

// build resolves the spec into a validated graph and profit function.
func (js JobSpec) build() (*dag.DAG, profit.Fn, error) {
	var g *dag.DAG
	switch {
	case js.DAG != nil:
		if js.W != 0 || js.L != 0 {
			return nil, nil, fmt.Errorf("spec sets both dag and w/l; use one")
		}
		g = js.DAG
	case js.W > 0 && js.L > 0:
		var err error
		g, err = synthesizeDAG(js.W, js.L)
		if err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, fmt.Errorf("spec needs either dag or w ≥ l ≥ 1")
	}

	var fn profit.Fn
	switch {
	case js.Curve != nil:
		if js.Deadline != 0 || !js.Profit.IsScalar() || js.Profit.Scalar != 0 {
			return nil, nil, fmt.Errorf("spec sets both curve and deadline/profit; use one")
		}
		var err error
		fn, err = js.Curve.Decode()
		if err != nil {
			return nil, nil, err
		}
	case !js.Profit.IsScalar():
		if js.Deadline != 0 {
			return nil, nil, fmt.Errorf("spec sets both deadline and a structured profit; the profit carries its own horizon")
		}
		var err error
		fn, err = js.Profit.Spec.Decode()
		if err != nil {
			return nil, nil, err
		}
	default:
		var err error
		fn, err = profit.NewStep(js.Profit.Scalar, js.Deadline)
		if err != nil {
			return nil, nil, err
		}
	}
	return g, fn, nil
}

// synthesizeDAG builds a graph with TotalWork exactly w and Span exactly l.
// w == l degenerates to a chain; l == 1 to a fully parallel block. Otherwise
// a unit-work spine chain of l nodes fixes the span and the remaining
// w − l work hangs off the spine's root in chunks of at most l − 1, so no
// fringe path ever exceeds the spine.
func synthesizeDAG(w, l int64) (*dag.DAG, error) {
	if l < 1 || w < l {
		return nil, fmt.Errorf("need w ≥ l ≥ 1, got w=%d l=%d", w, l)
	}
	switch {
	case w == l:
		if w > maxSynthNodes {
			return nil, fmt.Errorf("w=%d synthesizes too many nodes (max %d)", w, maxSynthNodes)
		}
		return dag.Chain(int(l), 1), nil
	case l == 1:
		if w > maxSynthNodes {
			return nil, fmt.Errorf("w=%d synthesizes too many nodes (max %d)", w, maxSynthNodes)
		}
		return dag.Block(int(w), 1), nil
	}
	rest := w - l
	chunk := l - 1
	nodes := l + (rest+chunk-1)/chunk
	if nodes > maxSynthNodes {
		return nil, fmt.Errorf("w=%d l=%d synthesizes %d nodes (max %d)", w, l, nodes, maxSynthNodes)
	}
	b := dag.NewBuilder()
	spine := make([]dag.NodeID, l)
	for i := range spine {
		spine[i] = b.AddNode(1)
		if i > 0 {
			b.AddEdge(spine[i-1], spine[i])
		}
	}
	for rest > 0 {
		c := min(chunk, rest)
		n := b.AddNode(c)
		b.AddEdge(spine[0], n)
		rest -= c
	}
	return b.Build()
}

// Decision strings in JobResponse.
type DecisionString string

const (
	// DecisionAdmitted: Scheduler S committed the job into Q.
	DecisionAdmitted DecisionString = "admitted"
	// DecisionParked: δ-good but its band is full; waiting in P, may still
	// be admitted while δ-fresh.
	DecisionParked DecisionString = "parked"
	// DecisionRejected: not δ-good — infeasible for S now and at any later
	// point; the job was not committed.
	DecisionRejected DecisionString = "rejected"
	// DecisionAccepted: the serving scheduler has no admission test; the
	// job was committed without a verdict.
	DecisionAccepted DecisionString = "accepted"
)

// JobResponse is the POST /v1/jobs response body.
type JobResponse struct {
	ID         int            `json:"id,omitempty"` // 0 when rejected
	Release    int64          `json:"release"`
	Decision   DecisionString `json:"decision"`
	Reason     string         `json:"reason,omitempty"`
	Commitment string         `json:"commitment,omitempty"`
	Replayed   bool           `json:"replayed,omitempty"` // idempotent retry: stored verdict
	Plan       *PlanInfo      `json:"plan,omitempty"`
}

// PlanInfo is the admission test's virtualization plan, echoed to the client.
type PlanInfo struct {
	Alloc   int     `json:"alloc"`
	X       float64 `json:"x"`
	Density float64 `json:"density"`
	Good    bool    `json:"good"`
}

// StatusResponse is the GET /v1/jobs/{id} response body.
type StatusResponse struct {
	ID          int     `json:"id"`
	State       string  `json:"state"` // pending | live | completed | expired
	Released    int64   `json:"released"`
	W           int64   `json:"w"`
	L           int64   `json:"l"`
	CompletedAt int64   `json:"completedAt,omitempty"`
	Latency     int64   `json:"latency,omitempty"`
	Profit      float64 `json:"profit,omitempty"`
	ProcTicks   int64   `json:"procTicks"`
	Preemptions int64   `json:"preemptions"`
}

func statusResponse(id int, stat sim.JobStat, state sim.JobState) StatusResponse {
	return StatusResponse{
		ID:          id,
		State:       string(state),
		Released:    stat.Released,
		W:           stat.W,
		L:           stat.L,
		CompletedAt: stat.CompletedAt,
		Latency:     stat.Latency,
		Profit:      stat.Profit,
		ProcTicks:   stat.ProcTicks,
		Preemptions: stat.Preemptions,
	}
}

// WALStats describes the durability layer in GET /v1/stats.
type WALStats struct {
	Dir                 string `json:"dir"`
	Fsync               string `json:"fsync"`
	Records             int64  `json:"records"` // appended by this process
	Checkpoints         int64  `json:"checkpoints"`
	LastCheckpointClock int64  `json:"lastCheckpointClock"`
}

// ShardStats is one shard's block in GET /v1/stats: its capacity slice,
// session clock, verdict counters, the band/parked/mailbox pressure inputs
// the placer routes on, and its durable position.
type ShardStats struct {
	Shard         int           `json:"shard"`
	M             int           `json:"m"`
	Now           int64         `json:"now"`
	Live          int           `json:"live"`
	Pending       int           `json:"pending"`
	Accepted      int64         `json:"accepted"`
	Admitted      int64         `json:"admitted"`
	Parked        int64         `json:"parked"`
	Rejected      int64         `json:"rejected"`
	BandOccupancy float64       `json:"bandOccupancy"`
	ParkedDepth   int           `json:"parkedDepth"`
	MailboxDepth  int           `json:"mailboxDepth"`
	Pressure      float64       `json:"pressure"`
	EngineError   string        `json:"engineError,omitempty"`
	WAL           *WALStats     `json:"wal,omitempty"`
	Recovery      *RecoveryInfo `json:"recovery,omitempty"`
}

// StatsResponse is the GET /v1/stats response body. Top-level fields
// aggregate across shards (clock is the furthest shard; counts and telemetry
// sum); Shards holds the per-shard blocks of a sharded daemon and is absent
// with one shard, whose body keeps the unsharded shape.
type StatsResponse struct {
	Scheduler   string            `json:"scheduler"`
	M           int               `json:"m"`
	Now         int64             `json:"now"`
	Live        int               `json:"live"`
	Pending     int               `json:"pending"`
	Draining    bool              `json:"draining"`
	Ready       bool              `json:"ready"`
	Degraded    string            `json:"degraded,omitempty"`
	EngineError string            `json:"engineError,omitempty"`
	WAL         *WALStats         `json:"wal,omitempty"`
	Recovery    *RecoveryInfo     `json:"recovery,omitempty"`
	Telemetry   telemetry.Summary `json:"telemetry"`
	Shards      []ShardStats      `json:"shards,omitempty"`
}

// errorResponse is every non-2xx JSON body: the unified error envelope. Error
// is the human-readable message; Reason is the machine-readable class drawn
// from the reason* constants (obs.go), stable across message-text changes.
type errorResponse struct {
	Error  string `json:"error"`
	Reason string `json:"reason"`
}

// writeError renders the unified error envelope.
func writeError(w http.ResponseWriter, status int, reason, msg string) {
	writeJSON(w, status, errorResponse{Error: msg, Reason: reason})
}

// Handler returns the daemon's HTTP routes:
//
//	POST /v1/jobs      submit a JobSpec → JobResponse (400 bad spec,
//	                   413 oversized body, 429 mailbox full,
//	                   503 draining or degraded); an Idempotency-Key
//	                   header makes retries return the stored verdict
//	POST /v1/jobs:batch
//	                   submit a JSON array of specs (each with an optional
//	                   per-item "key") → BatchResponse with per-item
//	                   verdicts in order; items fail individually
//	                   (400 bad envelope or empty batch, 413 oversized)
//	GET  /v1/jobs/{id} job status → StatusResponse (404 unknown)
//	GET  /v1/stats     StatsResponse
//	GET  /healthz      liveness: 200 while the process can answer,
//	                   503 only when durability or the engine has failed
//	GET  /readyz       readiness: 200 when accepting work, 503 during
//	                   recovery, drain, or degraded operation
//	POST /v1/drain     stop admission, finish committed jobs, return the
//	                   final aggregate Result
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleJobsPost)
	mux.HandleFunc("POST /v1/jobs:batch", s.handleBatchPost)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v1/stats", s.handleStatsGet)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("POST /v1/drain", s.handleDrainPost)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// maxIdempotencyKeyLen bounds the Idempotency-Key header: keys live in the
// engine's dedup table and every checkpoint, so they must stay small.
const maxIdempotencyKeyLen = 128

// maxRequestIDLen bounds the X-Request-Id header: client-supplied IDs are
// recorded in WAL and route records, so they must stay small too.
const maxRequestIDLen = 128

func (s *Server) handleJobsPost(w http.ResponseWriter, r *http.Request) {
	received := time.Now()
	reqID := r.Header.Get("X-Request-Id")
	persist := reqID != ""
	if len(reqID) > maxRequestIDLen {
		writeError(w, http.StatusBadRequest, reasonBadRequest,
			fmt.Sprintf("request id longer than %d bytes", maxRequestIDLen))
		return
	}
	if reqID == "" {
		reqID = obs.NewRequestID()
	}
	w.Header().Set("X-Request-Id", reqID)
	// finish deposits the request trace, the HTTP latency sample, and the
	// structured submission record — every exit path of the submission route
	// goes through it, so a 429 is as traceable as a committed job.
	finish := func(status int, sh *shard, route string, tr *submitTrace, resp *JobResponse) {
		now := time.Now()
		s.metrics.observe("serve.http.jobs_us", float64(now.Sub(received).Microseconds()))
		rt := obs.ReqTrace{ID: reqID, Shard: -1, Route: route, Stages: make([]obs.Stage, 0, 5)}
		if sh != nil {
			rt.Shard = sh.idx
		}
		rt.Stages = append(rt.Stages, obs.Stage{Name: "received", At: received})
		if tr != nil {
			for _, st := range []obs.Stage{
				{Name: "dequeued", At: tr.dequeued},
				{Name: "wal_appended", At: tr.walAppended},
				{Name: "committed", At: tr.committed},
			} {
				if !st.At.IsZero() {
					rt.Stages = append(rt.Stages, st)
				}
			}
		}
		rt.Stages = append(rt.Stages, obs.Stage{Name: "replied", At: now})
		if resp != nil {
			rt.JobID = resp.ID
			rt.Decision = string(resp.Decision)
		}
		s.traces.Add(rt)
		if lg := s.logger(); lg.Enabled(r.Context(), slog.LevelDebug) {
			attrs := []any{"reqId", reqID, "status", status, "us", now.Sub(received).Microseconds()}
			if sh != nil {
				attrs = append(attrs, "shard", sh.idx, "route", route)
			}
			if resp != nil {
				attrs = append(attrs, "id", resp.ID, "decision", resp.Decision)
			}
			lg.Debug("submission", attrs...)
		}
	}
	key := r.Header.Get("Idempotency-Key")
	if len(key) > maxIdempotencyKeyLen {
		writeError(w, http.StatusBadRequest, reasonBadRequest,
			fmt.Sprintf("idempotency key longer than %d bytes", maxIdempotencyKeyLen))
		return
	}
	limit := s.cfg.MaxBodyBytes
	if limit <= 0 {
		limit = DefaultMaxBodyBytes
	}
	rb := getWireBuf()
	defer putWireBuf(rb)
	var err error
	rb.b, err = readAllInto(rb.b, http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, reasonTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, reasonBadRequest, err.Error())
		return
	}
	// Scalar specs take the zero-allocation parser; anything else (dag,
	// curve, structured profit, a commitment override, or malformed input)
	// falls back to encoding/json, which keeps the canonical behavior and
	// error shapes.
	spec, _, fastOK := parseJobSpecFast(rb.b, false)
	if !fastOK {
		dec := json.NewDecoder(bytes.NewReader(rb.b))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, reasonBadRequest, err.Error())
			return
		}
	}
	if s.draining.Load() {
		finish(http.StatusServiceUnavailable, nil, "", nil, nil)
		writeError(w, http.StatusServiceUnavailable, reasonDraining, "draining")
		return
	}
	sh, route := s.placer.routeTraced(key)
	tr := &submitTrace{reqID: reqID, persist: persist, enqueued: time.Now()}
	msg := submitMsg{spec: spec, key: key, tr: tr, reply: make(chan submitReply, 1)}
	select {
	case sh.reqs <- msg:
	default:
		// Mailbox full: the shard is behind. Backpressure, don't block.
		finish(http.StatusTooManyRequests, sh, route, nil, nil)
		writeError(w, http.StatusTooManyRequests, reasonQueueFull, "submission queue full")
		return
	}
	rep, ok := await(sh, msg.reply)
	if !ok {
		// Enqueued but never dequeued: the engine drained first, so the job
		// was not committed.
		finish(http.StatusServiceUnavailable, sh, route, nil, nil)
		writeError(w, http.StatusServiceUnavailable, reasonDraining, "draining")
		return
	}
	if rep.status != http.StatusOK {
		finish(rep.status, sh, route, tr, nil)
		writeError(w, rep.status, cmp.Or(rep.reason, reasonInternal), rep.err)
		return
	}
	finish(http.StatusOK, sh, route, tr, &rep.resp)
	writeJobResponse(w, &rep.resp)
}

// writeJobResponse renders a 200 verdict through the fast encoder into a
// pooled buffer, byte-identical to writeJSON's output; off-fast-path
// content falls back to encoding/json.
func writeJobResponse(w http.ResponseWriter, resp *JobResponse) {
	rb := getWireBuf()
	if b, ok := appendJobResponse(rb.b, resp); ok {
		rb.b = append(b, '\n')
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(rb.b)
		putWireBuf(rb)
		return
	}
	putWireBuf(rb)
	writeJSON(w, http.StatusOK, *resp)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 1 {
		writeError(w, http.StatusBadRequest, reasonBadRequest, "bad job id")
		return
	}
	sh := s.placer.shardFor(id)
	msg := lookupMsg{id: id, reply: make(chan lookupReply, 1)}
	rep, ok := ask(sh, msg.reply, msg)
	if !ok {
		// Engine gone: answer from the sealed session (engine goroutine has
		// exited, so reading is safe).
		stat, state := sh.sess.Lookup(id)
		if state == sim.JobStateUnknown {
			writeError(w, http.StatusNotFound, reasonNotFound, "unknown job")
			return
		}
		writeJSON(w, http.StatusOK, statusResponse(id, stat, state))
		return
	}
	if !rep.found {
		writeError(w, http.StatusNotFound, reasonNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, rep.resp)
}

func (s *Server) handleStatsGet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.aggregateStats(s.gatherShardStats()))
}

// aggregateStats folds per-shard stats into the daemon-level response. The
// clock is the furthest shard's (a shard with no arrivals may trail), counts
// and telemetry sum, and WAL positions aggregate under the daemon's top
// directory. With one shard everything passes through unchanged, so the
// unsharded stats body is stable.
func (s *Server) aggregateStats(replies []shardStatsReply) StatsResponse {
	rep := StatsResponse{
		Scheduler: s.Scheduler(),
		M:         s.cfg.M,
		Draining:  s.draining.Load(),
		Ready:     s.Ready(),
		Degraded:  s.Degraded(),
		Recovery:  s.recovery,
	}
	if len(replies) == 1 {
		st := replies[0].stats
		rep.Now = st.Now
		rep.Live = st.Live
		rep.Pending = st.Pending
		rep.EngineError = st.EngineError
		rep.WAL = st.WAL
		rep.Recovery = st.Recovery
		rep.Telemetry = replies[0].summary
		return rep
	}
	rep.Shards = make([]ShardStats, len(replies))
	for i, sr := range replies {
		st := sr.stats
		rep.Shards[i] = st
		rep.Now = max(rep.Now, st.Now)
		rep.Live += st.Live
		rep.Pending += st.Pending
		if rep.EngineError == "" {
			rep.EngineError = st.EngineError
		}
		if st.WAL != nil {
			if rep.WAL == nil {
				rep.WAL = &WALStats{Dir: s.cfg.WALDir, Fsync: st.WAL.Fsync}
			}
			rep.WAL.Records += st.WAL.Records
			rep.WAL.Checkpoints += st.WAL.Checkpoints
			rep.WAL.LastCheckpointClock = max(rep.WAL.LastCheckpointClock, st.WAL.LastCheckpointClock)
		}
		if i == 0 {
			rep.Telemetry = sr.summary
		} else {
			rep.Telemetry = rep.Telemetry.Merge(sr.summary)
		}
	}
	return rep
}

// handleHealthz is liveness: the process is up and answering. Draining is a
// healthy state (the daemon is finishing committed work) — only a durability
// or engine failure makes the process unhealthy enough to restart.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if msg := s.Degraded(); msg != "" {
		writeError(w, http.StatusServiceUnavailable, reasonDegraded, msg)
		return
	}
	if msg := s.engineError(); msg != "" {
		writeError(w, http.StatusServiceUnavailable, reasonDegraded, msg)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: route work here only when a submission would be
// accepted. 503 during recovery replay, drain, and degraded operation; the
// body's machine-readable reason says which, and each 503 counts toward
// serve_not_ready_total{reason=...}.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Ready() {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
		return
	}
	var reason string
	switch {
	case s.draining.Load():
		reason = reasonDraining
	case s.Degraded() != "" || s.engineError() != "":
		reason = reasonDegraded
	default:
		reason = reasonRecovering
	}
	s.metrics.inc("serve.not_ready."+reason, 1)
	writeError(w, http.StatusServiceUnavailable, reason, "not ready")
}

func (s *Server) handleDrainPost(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Drain())
}

// ask sends msg to a shard's engine and waits for a reply, giving up when
// the engine goroutine has exited (reported as ok = false).
func ask[T any](sh *shard, reply chan T, msg any) (T, bool) {
	select {
	case sh.reqs <- msg:
	case <-sh.engineDone:
		var zero T
		return zero, false
	}
	return await(sh, reply)
}

// await waits for a mailbox reply. The engine replies to every message it
// dequeues before engineDone closes, so when both cases are ready the
// buffered reply must win — select alone picks randomly, which would turn an
// accepted submission into a spurious 503 during a drain.
func await[T any](sh *shard, reply chan T) (T, bool) {
	select {
	case rep := <-reply:
		return rep, true
	case <-sh.engineDone:
		select {
		case rep := <-reply:
			return rep, true
		default:
			var zero T
			return zero, false
		}
	}
}
