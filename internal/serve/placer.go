package serve

import (
	"hash/fnv"
	"sync/atomic"
)

// The placer is the front door of the sharded serving tier: every POST
// /v1/jobs picks exactly one shard before touching any engine mailbox.
//
// Routing policy:
//
//   - Keyed submissions (Idempotency-Key set) hash to a fixed shard. The
//     idempotency table is per-shard state, so a retry must land where the
//     stored verdict lives — across restarts too, which rules out any
//     load-dependent placement for keys.
//   - Unkeyed submissions go to the shard with the lowest pressure score:
//     the engine-published EWMA of band occupancy plus parked-queue depth
//     (see shard.publishPressure), plus the instantaneous mailbox backlog
//     fraction. Ties break toward the lower index, so routing is
//     deterministic for a given pressure snapshot.
//   - Second-choice spill: when the best shard's band is full (its last
//     verdict parked, or occupancy ≥ 1) and the runner-up's is not, the
//     runner-up gets the job. A full band means the best shard would park
//     the submission; the runner-up may still admit it, and an admitted
//     job earns profit where a parked one may expire.
type placer struct {
	shards []*shard

	// Decision counters for /metrics (serve_placer_decisions_total): how many
	// submissions were routed by keyed affinity, by lowest pressure, and by
	// the second-choice spill. Handlers route concurrently, hence atomics.
	keyed    atomic.Int64
	pressure atomic.Int64
	spill    atomic.Int64
}

// Placer decision labels, shared by /metrics and the request trace.
const (
	routeKeyed    = "keyed"
	routePressure = "pressure"
	routeSpill    = "spill"
)

func newPlacer(shards []*shard) *placer { return &placer{shards: shards} }

// route picks the shard for one submission.
func (p *placer) route(key string) *shard {
	sh, _ := p.routeTraced(key)
	return sh
}

// routeTraced picks the shard and reports which policy leg decided — the
// label the decision counters and the request trace carry.
func (p *placer) routeTraced(key string) (*shard, string) {
	if key != "" {
		p.keyed.Add(1)
		if len(p.shards) == 1 {
			return p.shards[0], routeKeyed
		}
		h := fnv.New32a()
		h.Write([]byte(key))
		return p.shards[int(h.Sum32())%len(p.shards)], routeKeyed
	}
	if len(p.shards) == 1 {
		p.pressure.Add(1)
		return p.shards[0], routePressure
	}
	best, second := -1, -1
	var bestScore, secondScore float64
	for i, sh := range p.shards {
		score := sh.pressureScore()
		switch {
		case best < 0 || score < bestScore:
			second, secondScore = best, bestScore
			best, bestScore = i, score
		case second < 0 || score < secondScore:
			second, secondScore = i, score
		}
	}
	if p.shards[best].bandFull.Load() && !p.shards[second].bandFull.Load() {
		p.spill.Add(1)
		return p.shards[second], routeSpill
	}
	p.pressure.Add(1)
	return p.shards[best], routePressure
}

// shardFor maps a job ID back to its owning shard (the ID stripe inverse).
func (p *placer) shardFor(id int) *shard {
	return p.shards[(id-1)%len(p.shards)]
}
