package serve

import (
	"net/http/httptest"
	"os"
	"testing"
)

// TestWireGuard is the PR 9 wire-path gate, run by `make wire-guard` with
// SPAA_WIRE_GUARD=1 (skipped otherwise: it runs real benchmarks and is too
// noisy for the ordinary test suite). It pins the two properties the batched
// fast path was built for:
//
//  1. The scalar-spec parser and the verdict encoder allocate nothing per
//     item. A regression here (a new field routed through encoding/json, a
//     buffer escaping to the heap) silently re-opens the wire gap long
//     before it shows up in throughput numbers.
//  2. The per-item cost of a 64-spec batch over real HTTP stays within 1.5×
//     the bare engine-path cost measured in the same process, i.e. the wire
//     — parse, placer, mailbox, WAL framing, response encode — adds at most
//     half an engine's worth of work per submission. Both sides replay the
//     identical spec and advance cadence (benchAdvanceEvery /
//     benchAdvanceTicks), so the ratio is workload-independent and holds on
//     single-vCPU CI hosts where absolute throughput would not.
func TestWireGuard(t *testing.T) {
	if os.Getenv("SPAA_WIRE_GUARD") == "" {
		t.Skip("set SPAA_WIRE_GUARD=1 to run the wire fast-path gate")
	}

	body := []byte(`{"w":16,"l":2,"deadline":40,"profit":3}`)
	if n := testing.AllocsPerRun(500, func() {
		if _, _, ok := parseJobSpecFast(body, false); !ok {
			t.Fatal("scalar spec fell off the fast path")
		}
	}); n != 0 {
		t.Errorf("parseJobSpecFast allocates %.1f per spec, want 0", n)
	}
	resp := JobResponse{ID: 42, Release: 7, Decision: DecisionAdmitted,
		Commitment: CommitmentOnAdmission, Plan: &PlanInfo{Alloc: 4, X: 1.5, Density: 2.25, Good: true}}
	buf := make([]byte, 0, 256)
	if n := testing.AllocsPerRun(500, func() {
		if _, ok := appendJobResponse(buf, &resp); !ok {
			t.Fatal("verdict fell off the fast path")
		}
	}); n != 0 {
		t.Errorf("appendJobResponse allocates %.1f per verdict, want 0", n)
	}

	const batchSize = 64
	engine := testing.Benchmark(func(b *testing.B) {
		srv, err := New(Config{M: 8, QueueDepth: 1, TickInterval: -1})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Drain()
		parkEngines(b, srv)
		sh := srv.shards[0]
		spec := JobSpec{W: 16, L: 2, Deadline: 40, Profit: ScalarProfit(3)}
		clock := int64(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep := sh.handleSubmit(spec, "", nil)
			if rep.status != 200 {
				b.Fatalf("status %d: %s", rep.status, rep.err)
			}
			if i%benchAdvanceEvery == benchAdvanceEvery-1 {
				clock += benchAdvanceTicks
				sh.advance(clock)
			}
		}
	})
	batch := testing.Benchmark(func(b *testing.B) {
		srv, err := New(Config{M: 8, QueueDepth: 1024, TickInterval: -1})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Drain()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		req := benchRequest("/v1/jobs:batch", benchBatchBody(batchSize))
		bc := dialBenchConn(b, ts.URL)
		items := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			postBenchBatch(b, bc, req, batchSize)
			items += batchSize
			if items%benchAdvanceEvery < batchSize {
				srv.Advance(int64(items / benchAdvanceEvery * benchAdvanceTicks))
			}
		}
	})

	engineNs := float64(engine.NsPerOp())
	itemNs := float64(batch.NsPerOp()) / batchSize
	ratio := itemNs / engineNs
	t.Logf("wire guard: engine %.0f ns/item, batch HTTP %.0f ns/item (ratio %.2f), batch path %.0f items/s",
		engineNs, itemNs, ratio, 1e9/itemNs)
	if ratio > 1.5 {
		t.Errorf("batched HTTP per-item cost is %.2fx the engine-path cost (budget 1.5x): "+
			"the wire fast path has regressed", ratio)
	}
}
