package serve

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// newDurableServer builds a deterministic-clock daemon over dir. Tests drive
// time with Advance and checkpoints with Checkpoint.
func newDurableServer(t *testing.T, dir string, mutate func(*Config)) (*Server, func()) {
	t.Helper()
	cfg := Config{
		M: 4, TickInterval: -1,
		WALDir: dir, Fsync: FsyncAlways, CheckpointInterval: -1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv, func() { srv.Drain() }
}

// submitDirect pushes a spec through the placer and mailbox without HTTP.
func submitDirect(t *testing.T, srv *Server, spec JobSpec, key string) submitReply {
	t.Helper()
	msg := submitMsg{spec: spec, key: key, reply: make(chan submitReply, 1)}
	srv.placer.route(key).reqs <- msg
	return <-msg.reply
}

// snapshotDir copies the WAL directory (including per-shard subdirectories)
// as it is right now — the crash image a SIGKILL would leave — so the
// original server can keep running.
func snapshotDir(t *testing.T, dir string) string {
	t.Helper()
	snap := t.TempDir()
	copyTree(t, dir, snap)
	return snap
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			sub := filepath.Join(dst, e.Name())
			if err := os.MkdirAll(sub, 0o755); err != nil {
				t.Fatal(err)
			}
			copyTree(t, filepath.Join(src, e.Name()), sub)
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	srv, drain := newDurableServer(t, dir, nil)

	specs := []JobSpec{
		{W: 32, L: 4, Deadline: 40, Profit: ScalarProfit(10)}, // admitted
		{W: 100, L: 2, Deadline: 12, Profit: ScalarProfit(8)}, // rejected (not logged as a job)
		{W: 8, L: 2, Deadline: 25, Profit: ScalarProfit(3)},   // admitted
	}
	var acked []submitReply
	for i, spec := range specs {
		rep := submitDirect(t, srv, spec, "")
		if rep.status != 200 {
			t.Fatalf("submit %d: %+v", i, rep)
		}
		acked = append(acked, rep)
		srv.Advance(int64(2 * (i + 1)))
	}
	if acked[0].resp.Commitment != CommitmentOnAdmission {
		t.Fatalf("admitted commitment = %q, want %q", acked[0].resp.Commitment, CommitmentOnAdmission)
	}
	if acked[1].resp.Commitment != CommitmentNone || acked[1].resp.Decision != DecisionRejected {
		t.Fatalf("rejected response = %+v", acked[1].resp)
	}

	// "Crash": snapshot the durable directory mid-session, then recover a new
	// daemon from the snapshot.
	snap := snapshotDir(t, dir)
	srv2, drain2 := newDurableServer(t, snap, nil)
	defer drain2()

	rec := srv2.Recovery()
	if rec == nil || !rec.Recovered || rec.Jobs != 2 {
		t.Fatalf("recovery info = %+v, want 2 recovered jobs", rec)
	}
	if !srv2.Ready() {
		t.Fatal("recovered server not ready")
	}
	// Both committed jobs are live again with their stats intact.
	for _, id := range []int{1, 2} {
		stat, state := func() (StatusResponse, bool) {
			msg := lookupMsg{id: id, reply: make(chan lookupReply, 1)}
			srv2.placer.shardFor(id).reqs <- msg
			rep := <-msg.reply
			return rep.resp, rep.found
		}()
		if !state {
			t.Fatalf("job %d lost in recovery", id)
		}
		_ = stat
	}
	// The next ID continues the pre-crash sequence.
	rep := submitDirect(t, srv2, JobSpec{W: 4, L: 2, Deadline: 30, Profit: ScalarProfit(1)}, "")
	if rep.status != 200 || rep.resp.ID != 3 {
		t.Fatalf("post-recovery submit: %+v, want ID 3", rep)
	}

	// The recovered daemon checkpointed the extended history at start-up, so
	// its drain must match the offline replay of its own directory.
	drain()
	res2 := srv2.Drain()
	replayed, err := ReplayDir(snap)
	if err != nil {
		t.Fatal(err)
	}
	a, b := *res2, *replayed
	a.Engine, b.Engine = "", ""
	aj, _ := json.Marshal(&a)
	bj, _ := json.Marshal(&b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("recovered drain diverges from offline replay:\nserved:   %s\nreplayed: %s", aj, bj)
	}
}

func TestRecoveryAfterCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	srv, drain := newDurableServer(t, dir, nil)
	defer drain()

	for i := 0; i < 5; i++ {
		if rep := submitDirect(t, srv, JobSpec{W: 8, L: 2, Deadline: 30, Profit: ScalarProfit(2)}, ""); rep.status != 200 {
			t.Fatalf("submit %d: %+v", i, rep)
		}
	}
	srv.Advance(4)
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The WAL now holds only its header.
	payloads, _, err := scanWAL(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 1 {
		t.Fatalf("WAL holds %d records after checkpoint, want 1 (header)", len(payloads))
	}
	// Two more jobs land in the suffix.
	submitDirect(t, srv, JobSpec{W: 6, L: 2, Deadline: 30, Profit: ScalarProfit(2)}, "")
	submitDirect(t, srv, JobSpec{W: 6, L: 3, Deadline: 30, Profit: ScalarProfit(2)}, "")

	snap := snapshotDir(t, dir)
	srv2, drain2 := newDurableServer(t, snap, nil)
	defer drain2()
	rec := srv2.Recovery()
	if rec == nil || rec.CheckpointJobs != 5 || rec.WALJobs != 2 || rec.Jobs != 7 {
		t.Fatalf("recovery info = %+v, want 5 checkpoint + 2 WAL jobs", rec)
	}
}

func TestRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	srv, drain := newDurableServer(t, dir, nil)
	defer drain()
	submitDirect(t, srv, JobSpec{W: 8, L: 2, Deadline: 30, Profit: ScalarProfit(2)}, "")
	submitDirect(t, srv, JobSpec{W: 12, L: 3, Deadline: 30, Profit: ScalarProfit(4)}, "")

	snap := snapshotDir(t, dir)
	// Tear the last record mid-line, as a crash mid-append would.
	path := filepath.Join(snap, walFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	srv2, drain2 := newDurableServer(t, snap, nil)
	defer drain2()
	rec := srv2.Recovery()
	if rec == nil || rec.Jobs != 1 || rec.TornBytes == 0 {
		t.Fatalf("recovery info = %+v, want 1 job and a torn tail", rec)
	}
}

func TestRecoveryRefusesTamperedVerdict(t *testing.T) {
	dir := t.TempDir()
	srv, drain := newDurableServer(t, dir, nil)
	submitDirect(t, srv, JobSpec{W: 32, L: 4, Deadline: 40, Profit: ScalarProfit(10)}, "")
	snap := snapshotDir(t, dir)
	drain()

	// Rewrite the job record's acknowledged decision to one replay cannot
	// re-derive. The frame is re-checksummed, so only the verdict check can
	// catch it.
	path := filepath.Join(snap, walFileName)
	payloads, _, err := scanWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	for _, p := range payloads {
		if bytes.Contains(p, []byte(`"type":"job"`)) {
			p = bytes.Replace(p, []byte(`"decision":"admitted"`), []byte(`"decision":"rejected"`), 1)
		}
		out.Write(frameRecord(p))
	}
	if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = New(Config{M: 4, TickInterval: -1, WALDir: snap, CheckpointInterval: -1})
	if err == nil || !strings.Contains(err.Error(), "commitment violated") {
		t.Fatalf("tampered verdict: err = %v, want commitment violation", err)
	}
}

func TestRecoveryRefusesConfigDrift(t *testing.T) {
	dir := t.TempDir()
	srv, drain := newDurableServer(t, dir, nil)
	submitDirect(t, srv, JobSpec{W: 8, L: 2, Deadline: 30, Profit: ScalarProfit(2)}, "")
	snap := snapshotDir(t, dir)
	drain()

	// Recovering under a different machine size must refuse: the logged
	// verdicts were decided for m=4.
	_, err := New(Config{M: 2, TickInterval: -1, WALDir: snap, CheckpointInterval: -1})
	if err == nil || !strings.Contains(err.Error(), "refusing to recover") {
		t.Fatalf("config drift: err = %v, want refusal", err)
	}
}

func TestIdempotentRetry(t *testing.T) {
	dir := t.TempDir()
	srv, drain := newDurableServer(t, dir, nil)

	spec := JobSpec{W: 32, L: 4, Deadline: 40, Profit: ScalarProfit(10)}
	first := submitDirect(t, srv, spec, "req-1")
	if first.status != 200 || first.resp.ID != 1 || first.resp.Replayed {
		t.Fatalf("first submit: %+v", first)
	}
	// A retry with the same key collapses: same ID, same verdict, replayed.
	retry := submitDirect(t, srv, spec, "req-1")
	if retry.status != 200 || retry.resp.ID != 1 || !retry.resp.Replayed {
		t.Fatalf("retry: %+v", retry)
	}
	if retry.resp.Decision != first.resp.Decision {
		t.Fatalf("retry decision %q != original %q", retry.resp.Decision, first.resp.Decision)
	}
	// A keyed reject is durable too.
	rej := submitDirect(t, srv, JobSpec{W: 100, L: 2, Deadline: 12, Profit: ScalarProfit(8)}, "req-2")
	if rej.status != 200 || rej.resp.Decision != DecisionRejected {
		t.Fatalf("reject: %+v", rej)
	}

	// Crash and recover: both keys still collapse onto the stored verdicts.
	snap := snapshotDir(t, dir)
	drain()
	srv2, drain2 := newDurableServer(t, snap, nil)
	defer drain2()

	retry = submitDirect(t, srv2, spec, "req-1")
	if retry.status != 200 || retry.resp.ID != 1 || !retry.resp.Replayed {
		t.Fatalf("post-crash retry: %+v", retry)
	}
	rejRetry := submitDirect(t, srv2, JobSpec{W: 100, L: 2, Deadline: 12, Profit: ScalarProfit(8)}, "req-2")
	if rejRetry.status != 200 || rejRetry.resp.Decision != DecisionRejected || !rejRetry.resp.Replayed {
		t.Fatalf("post-crash reject retry: %+v — rejected job must stay rejected", rejRetry)
	}
	if rejRetry.resp.ID != 0 {
		t.Fatalf("rejected job resurrected with ID %d", rejRetry.resp.ID)
	}
}

func TestCheckpointAPIWithoutWAL(t *testing.T) {
	srv, err := New(Config{M: 1, TickInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()
	if err := srv.Checkpoint(); err == nil {
		t.Fatal("Checkpoint without a WAL directory must error")
	}
}

func TestRecoveryFreshDirIsNotRecovered(t *testing.T) {
	srv, drain := newDurableServer(t, t.TempDir(), nil)
	defer drain()
	if srv.Recovery() != nil {
		t.Fatalf("fresh dir reported recovery: %+v", srv.Recovery())
	}
	if !srv.Ready() {
		t.Fatal("fresh durable server not ready")
	}
}

func TestRecoveryOfDrainedDirectory(t *testing.T) {
	dir := t.TempDir()
	srv, _ := newDurableServer(t, dir, nil)
	submitDirect(t, srv, JobSpec{W: 8, L: 2, Deadline: 30, Profit: ScalarProfit(2)}, "")
	res := srv.Drain()

	// A restart over the drained directory recovers the completed history.
	srv2, drain2 := newDurableServer(t, dir, nil)
	defer drain2()
	rec := srv2.Recovery()
	if rec == nil || rec.Jobs != 1 {
		t.Fatalf("recovery info = %+v", rec)
	}
	res2 := srv2.Drain()
	aj, _ := json.Marshal(res)
	bj, _ := json.Marshal(res2)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("drained-twice results diverge:\nfirst:  %s\nsecond: %s", aj, bj)
	}
}

func TestStatsExposeWALAndRecovery(t *testing.T) {
	dir := t.TempDir()
	srv, drain := newDurableServer(t, dir, nil)
	submitDirect(t, srv, JobSpec{W: 8, L: 2, Deadline: 30, Profit: ScalarProfit(2)}, "k1")
	snap := snapshotDir(t, dir)
	drain()

	srv2, drain2 := newDurableServer(t, snap, nil)
	defer drain2()
	msg := statsMsg{reply: make(chan shardStatsReply, 1)}
	srv2.shards[0].reqs <- msg
	stats := srv2.aggregateStats([]shardStatsReply{<-msg.reply})
	if stats.WAL == nil || stats.WAL.Dir != snap || stats.WAL.Fsync != "always" {
		t.Fatalf("stats.WAL = %+v", stats.WAL)
	}
	if stats.Recovery == nil || !stats.Recovery.Recovered {
		t.Fatalf("stats.Recovery = %+v", stats.Recovery)
	}
	if !stats.Ready {
		t.Fatal("stats.Ready = false on a recovered server")
	}
	// Restored counters survive the restart.
	if stats.Telemetry.Counters["serve.accepted"] != 1 {
		t.Fatalf("restored counters = %+v", stats.Telemetry.Counters)
	}
	if stats.Telemetry.Counters["serve.recoveries"] != 1 {
		t.Fatalf("serve.recoveries = %v, want 1", stats.Telemetry.Counters["serve.recoveries"])
	}
}

// TestRecoveredDrainMatchesOfflineReplay is the core bit-identity check: a
// session that crashed and recovered drains to the same Result as a crash-free
// offline replay of its durable history.
func TestRecoveredDrainMatchesOfflineReplay(t *testing.T) {
	dir := t.TempDir()
	srv, _ := newDurableServer(t, dir, nil)
	for i := 0; i < 12; i++ {
		spec := JobSpec{W: int64(4 + i%9), L: int64(1 + i%3), Deadline: int64(20 + i%11), Profit: ScalarProfit(float64(1 + i%5))}
		if spec.L > spec.W {
			spec.L = spec.W
		}
		submitDirect(t, srv, spec, "")
		if i%3 == 2 {
			srv.Advance(int64(i))
		}
		if i == 6 {
			if err := srv.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	snap := snapshotDir(t, dir)
	srv.Drain()

	srv2, _ := newDurableServer(t, snap, nil)
	res := srv2.Drain()
	replayed, err := ReplayDir(snap)
	if err != nil {
		t.Fatal(err)
	}
	a, b := *res, *replayed
	a.Engine, b.Engine = "", ""
	// The recovered daemon's registry carries serving counters the batch
	// replay does not; compare the simulation result only.
	aj, err := json.Marshal(&a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(&b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("recovered drain diverges from offline replay:\nrecovered: %s\nreplayed:  %s", aj, bj)
	}
}
