package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range []string{
		`{"type":"header"}`,
		`{}`,
		`{"k":"newline-free but long ` + string(bytes.Repeat([]byte("x"), 500)) + `"}`,
	} {
		framed := frameRecord([]byte(payload))
		if framed[len(framed)-1] != '\n' {
			t.Fatalf("frame of %q does not end in newline", payload)
		}
		got, err := parseFrame(framed[:len(framed)-1])
		if err != nil {
			t.Fatalf("parseFrame(frame(%q)): %v", payload, err)
		}
		if string(got) != payload {
			t.Fatalf("round trip: got %q, want %q", got, payload)
		}
	}
}

func TestParseFrameRejectsCorruption(t *testing.T) {
	framed := frameRecord([]byte(`{"type":"job"}`))
	line := framed[:len(framed)-1]

	// Flip one payload byte: checksum must catch it.
	bad := append([]byte(nil), line...)
	bad[12] ^= 0x01
	if _, err := parseFrame(bad); err == nil {
		t.Error("corrupt payload accepted")
	}
	// Mangle the checksum field itself.
	bad = append([]byte(nil), line...)
	bad[0] = 'z'
	if _, err := parseFrame(bad); err == nil {
		t.Error("non-hex checksum accepted")
	}
	// Too short to hold a frame.
	if _, err := parseFrame([]byte("00 x")); err == nil {
		t.Error("short line accepted")
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{
		"":         FsyncAlways,
		"always":   FsyncAlways,
		"interval": FsyncInterval,
		"off":      FsyncOff,
	} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseFsyncPolicy(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := ParseFsyncPolicy("everysooften"); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestScanWALTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, walFileName)

	var log bytes.Buffer
	log.Write(frameRecord([]byte(`{"type":"header"}`)))
	log.Write(frameRecord([]byte(`{"type":"job","n":1}`)))
	intact := log.Len()
	log.WriteString(`0badc0de {"type":"job","n":2`) // no newline: torn mid-append
	if err := os.WriteFile(path, log.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	payloads, torn, err := scanWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 2 {
		t.Fatalf("got %d records, want 2", len(payloads))
	}
	if wantTorn := int64(log.Len() - intact); torn != wantTorn {
		t.Fatalf("torn = %d bytes, want %d", torn, wantTorn)
	}
	// The file itself must have been truncated at the last intact record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != intact {
		t.Fatalf("file is %d bytes after scan, want %d", len(data), intact)
	}
	// A second scan is clean.
	payloads, torn, err = scanWAL(path)
	if err != nil || torn != 0 || len(payloads) != 2 {
		t.Fatalf("rescan: %d records, %d torn, %v", len(payloads), torn, err)
	}
}

func TestScanWALTruncatesAtCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, walFileName)

	var log bytes.Buffer
	log.Write(frameRecord([]byte(`{"type":"header"}`)))
	intact := log.Len()
	bad := frameRecord([]byte(`{"type":"job","n":1}`))
	bad[12] ^= 0x01 // corrupt the payload under its checksum
	log.Write(bad)
	log.Write(frameRecord([]byte(`{"type":"job","n":2}`))) // intact but unreachable
	if err := os.WriteFile(path, log.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	payloads, torn, err := scanWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 1 {
		t.Fatalf("got %d records, want 1 (stop at first corrupt record)", len(payloads))
	}
	if torn == 0 {
		t.Fatal("no torn bytes reported")
	}
	data, _ := os.ReadFile(path)
	if len(data) != intact {
		t.Fatalf("file is %d bytes, want truncated to %d", len(data), intact)
	}
}

func TestScanWALMissingFile(t *testing.T) {
	payloads, torn, err := scanWAL(filepath.Join(t.TempDir(), walFileName))
	if err != nil || torn != 0 || payloads != nil {
		t.Fatalf("missing file: %v records, %d torn, %v", payloads, torn, err)
	}
}

func TestWALAppendAndReset(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, FsyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	header := ReplayHeader{Type: "header", M: 2, Sched: "s", Eps: 1, Speed: "1"}
	if err := w.reset(header); err != nil {
		t.Fatal(err)
	}
	if err := w.append(WALReject{Type: "reject", Key: "k", Resp: JobResponse{Decision: DecisionRejected}}); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	payloads, torn, err := scanWAL(filepath.Join(dir, walFileName))
	if err != nil || torn != 0 {
		t.Fatalf("scan: %d torn, %v", torn, err)
	}
	if len(payloads) != 2 {
		t.Fatalf("got %d records, want header + reject", len(payloads))
	}

	// Reopen, reset: only the header survives.
	w, err = openWAL(dir, FsyncOff, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.reset(header); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	payloads, _, err = scanWAL(filepath.Join(dir, walFileName))
	if err != nil || len(payloads) != 1 {
		t.Fatalf("after reset: %d records, %v; want 1", len(payloads), err)
	}
}

func TestWALMaybeSyncHonorsInterval(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, FsyncInterval, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	if err := w.append(map[string]string{"type": "header"}); err != nil {
		t.Fatal(err)
	}
	if !w.dirty {
		t.Fatal("append under interval policy should leave the log dirty")
	}
	if err := w.maybeSync(w.lastSync.Add(10 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if !w.dirty {
		t.Fatal("maybeSync flushed before the interval elapsed")
	}
	if err := w.maybeSync(w.lastSync.Add(60 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if w.dirty {
		t.Fatal("maybeSync did not flush after the interval elapsed")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	if err := writeFileAtomic(dir, "f.json", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := writeFileAtomic(dir, "f.json", []byte("two")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "f.json"))
	if err != nil || string(data) != "two" {
		t.Fatalf("read back %q, %v", data, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "f.json.tmp")); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
}
