package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"dagsched/internal/sim"
)

// The chaos harness runs the daemon in a child process (this test binary
// re-executed with SPAA_CHAOS_CHILD set), SIGKILLs it under concurrent keyed
// load at a seeded point, restarts it over the same WAL directory, and then
// holds recovery to the commitment contract:
//
//   - no acknowledged job is lost: every acked ID resolves after restart and
//     a retry of its key returns the original verdict verbatim;
//   - no rejected job resurrects: keys acked "rejected" stay rejected with
//     no ID;
//   - duplicate retries collapse: submitting the same key twice yields one
//     job and one verdict;
//   - commitment survives the crash: a job acknowledged as committed (the
//     load mixes per-job "commitment":"delta" specs in) is re-acknowledged
//     with the same commitment string after recovery — never downgraded;
//   - the recovered session is bit-identical: draining the restarted daemon
//     matches an offline replay of the durable directory.

const (
	chaosChildEnv  = "SPAA_CHAOS_CHILD"
	chaosDirEnv    = "SPAA_CHAOS_DIR"
	chaosShardsEnv = "SPAA_CHAOS_SHARDS"
	chaosChildM    = 4 // unsharded child capacity
	chaosShardedM  = 8 // sharded child capacity (shards divide it evenly)
)

// TestChaosChildProcess is the daemon half of the harness. It is a no-op
// under a normal test run; the parent re-executes the test binary with the
// environment set. SPAA_CHAOS_SHARDS > 1 runs the sharded daemon: same
// crash-and-recover contract, but every shard must recover its own WAL.
func TestChaosChildProcess(t *testing.T) {
	if os.Getenv(chaosChildEnv) == "" {
		t.Skip("not a chaos child")
	}
	shards, m := 1, chaosChildM
	if v := os.Getenv(chaosShardsEnv); v != "" {
		fmt.Sscanf(v, "%d", &shards)
		m = chaosShardedM
	}
	srv, err := New(Config{
		M:                  m,
		Shards:             shards,
		TickInterval:       2 * time.Millisecond,
		QueueDepth:         256,
		WALDir:             os.Getenv(chaosDirEnv),
		Fsync:              FsyncAlways,
		CheckpointInterval: 20 * time.Millisecond,
	})
	if err != nil {
		fmt.Printf("CHAOS_ERR %v\n", err)
		os.Exit(3)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Printf("CHAOS_ERR %v\n", err)
		os.Exit(3)
	}
	fmt.Printf("CHAOS_ADDR %s\n", ln.Addr())
	// Serve until the parent SIGKILLs us — that is the point.
	_ = http.Serve(ln, srv.Handler())
	os.Exit(0)
}

// chaosChild manages one daemon child process.
type chaosChild struct {
	cmd  *exec.Cmd
	addr string
}

func startChaosChild(t *testing.T, dir string, shards int) *chaosChild {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestChaosChildProcess$", "-test.count=1")
	cmd.Env = append(os.Environ(), chaosChildEnv+"=1", chaosDirEnv+"="+dir)
	if shards > 1 {
		cmd.Env = append(cmd.Env, fmt.Sprintf("%s=%d", chaosShardsEnv, shards))
	}
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if addr, ok := strings.CutPrefix(line, "CHAOS_ADDR "); ok {
			go io.Copy(io.Discard, out) // keep draining so the child never blocks
			return &chaosChild{cmd: cmd, addr: addr}
		}
		if msg, ok := strings.CutPrefix(line, "CHAOS_ERR "); ok {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("chaos child failed to start: %s", msg)
		}
	}
	cmd.Process.Kill()
	cmd.Wait()
	t.Fatalf("chaos child exited without an address (scan err %v)", sc.Err())
	return nil
}

// kill SIGKILLs the child and reaps it. Safe off the test goroutine; a child
// that already exited is not an error.
func (c *chaosChild) kill() {
	_ = c.cmd.Process.Signal(syscall.SIGKILL)
	_ = c.cmd.Wait()
}

// waitReady polls /readyz until the restarted daemon accepts work.
func (c *chaosChild) waitReady(t *testing.T) {
	t.Helper()
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get("http://" + c.addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("chaos child never became ready")
}

// chaosSpec is the deterministic job body for a key, so a retry re-sends the
// byte-identical submission. The load deliberately mixes the v2 schema in:
// every third job requests binding δ-commitment per-job, and every fifth
// carries its profit as a structured step object instead of a scalar, so the
// crash lands on WAL records of every spec shape.
func chaosSpec(g, i int) string {
	w := 4 + (g*7+i)%23
	l := 1 + (g+i)%4
	if l > w {
		l = w
	}
	deadline, profit := l+15+(i%13), 1+i%6
	var sb strings.Builder
	if i%5 == 4 {
		// Structured profit objects carry the deadline themselves; a
		// top-level deadline alongside one is a rejected conflict.
		fmt.Fprintf(&sb, `{"w":%d,"l":%d,"profit":{"type":"step","value":%d,"deadline":%d}`, w, l, profit, deadline)
	} else {
		fmt.Fprintf(&sb, `{"w":%d,"l":%d,"deadline":%d,"profit":%d`, w, l, deadline, profit)
	}
	if chaosWantsDelta(g, i) {
		sb.WriteString(`,"commitment":"delta"`)
	}
	sb.WriteByte('}')
	return sb.String()
}

// chaosWantsDelta says whether chaosSpec(g, i) requests per-job δ-commitment.
func chaosWantsDelta(g, i int) bool { return (g+i)%3 == 0 }

// chaosKeyedItem turns a chaosSpec body into a batch item carrying the key
// inline, so batch retries are byte-identical re-sends too.
func chaosKeyedItem(key, spec string) string {
	return `{"key":"` + key + `",` + spec[1:]
}

// chaosPostBatch submits one keyed batch to /v1/jobs:batch and returns the
// verdict for every item that was acknowledged. Per-item 429s retry the
// whole batch: every item is keyed, so already-acked items collapse into
// replays with the same verdict and only the backpressured ones resubmit.
func chaosPostBatch(client *http.Client, addr string, keys, specs []string) (map[string]JobResponse, error) {
	var sb strings.Builder
	sb.WriteByte('[')
	for i := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(chaosKeyedItem(keys[i], specs[i]))
	}
	sb.WriteByte(']')
	body := sb.String()
	for {
		resp, err := client.Post("http://"+addr+"/v1/jobs:batch", "application/json", strings.NewReader(body))
		if err != nil {
			return nil, err
		}
		var br BatchResponse
		decErr := json.NewDecoder(resp.Body).Decode(&br)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("batch status %d", resp.StatusCode)
		}
		if decErr != nil {
			return nil, decErr
		}
		if len(br.Items) != len(keys) {
			return nil, fmt.Errorf("batch returned %d items for %d keys", len(br.Items), len(keys))
		}
		acked := map[string]JobResponse{}
		retry := false
		for i, it := range br.Items {
			switch it.Status {
			case http.StatusOK:
				acked[keys[i]] = *it.Response
			case http.StatusTooManyRequests:
				retry = true
			default:
				return acked, fmt.Errorf("item %d status %d: %s", i, it.Status, it.Error)
			}
		}
		if !retry {
			return acked, nil
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// chaosPost submits one keyed spec, retrying 429 backpressure.
func chaosPost(client *http.Client, addr, key, spec string) (JobResponse, error) {
	for {
		req, err := http.NewRequest("POST", "http://"+addr+"/v1/jobs", strings.NewReader(spec))
		if err != nil {
			return JobResponse{}, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", key)
		resp, err := client.Do(req)
		if err != nil {
			return JobResponse{}, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			time.Sleep(2 * time.Millisecond)
			continue
		}
		var jr JobResponse
		decErr := json.NewDecoder(resp.Body).Decode(&jr)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return JobResponse{}, fmt.Errorf("status %d", resp.StatusCode)
		}
		if decErr != nil {
			return JobResponse{}, decErr
		}
		return jr, nil
	}
}

func TestChaosKillRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness spawns subprocesses")
	}
	for _, seed := range []int64{1, 7} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runChaos(t, seed, 1)
		})
	}
}

// TestChaosKillRecoverSharded is the multi-shard half of the chaos satellite:
// the SIGKILL lands while four shards hold independent WALs at different
// positions, and recovery must replay each shard on its own and still honor
// every acked verdict daemon-wide.
func TestChaosKillRecoverSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness spawns subprocesses")
	}
	for _, seed := range []int64{3, 11} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runChaos(t, seed, 4)
		})
	}
}

func runChaos(t *testing.T, seed int64, shards int) {
	dir := t.TempDir()
	child := startChaosChild(t, dir, shards)

	rng := rand.New(rand.NewSource(seed))
	killAfter := int64(8 + rng.Intn(40)) // acks before the SIGKILL lands

	const clients, perClient = 4, 40
	var (
		mu        sync.Mutex
		acked     = map[string]JobResponse{} // key → verdict the client saw
		unseen    []string                   // keys whose submission died with the child
		deltaKeys = map[string]bool{}        // keys whose spec requested δ-commitment
	)
	var ackCount atomic.Int64
	var killed atomic.Bool
	killGate := make(chan struct{})

	// The killer: one goroutine waits for the seeded ack count, then SIGKILLs.
	var killWG sync.WaitGroup
	killWG.Add(1)
	go func() {
		defer killWG.Done()
		<-killGate
		killed.Store(true)
		child.kill()
	}()

	var wg sync.WaitGroup
	var gateOnce sync.Once
	recordAck := func(key string, jr JobResponse) {
		mu.Lock()
		acked[key] = jr
		mu.Unlock()
		if ackCount.Add(1) == killAfter {
			gateOnce.Do(func() { close(killGate) })
		}
	}
	recordUnseen := func(keys ...string) {
		mu.Lock()
		unseen = append(unseen, keys...)
		mu.Unlock()
	}
	// Odd-numbered clients drive the batched endpoint (chaosBatchN keyed
	// items per POST), so the SIGKILL also lands inside group-commit windows
	// and recovery proves a durable prefix of a half-written batch honors
	// the same commitment contract as single submissions.
	const chaosBatchN = 8
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			if g%2 == 1 {
				for i := 0; i < perClient; i += chaosBatchN {
					keys := make([]string, 0, chaosBatchN)
					specs := make([]string, 0, chaosBatchN)
					for j := i; j < i+chaosBatchN && j < perClient; j++ {
						key := fmt.Sprintf("s%d-c%d-%d", seed, g, j)
						keys = append(keys, key)
						specs = append(specs, chaosSpec(g, j))
						if chaosWantsDelta(g, j) {
							mu.Lock()
							deltaKeys[key] = true
							mu.Unlock()
						}
					}
					got, err := chaosPostBatch(client, child.addr, keys, specs)
					for key, jr := range got {
						recordAck(key, jr)
					}
					if err != nil {
						// The child died under us (or items never resolved —
						// which the server may still have acked and logged).
						for _, key := range keys {
							if _, ok := got[key]; !ok {
								recordUnseen(key)
							}
						}
						if killed.Load() {
							return
						}
					}
				}
				return
			}
			for i := 0; i < perClient; i++ {
				key := fmt.Sprintf("s%d-c%d-%d", seed, g, i)
				if chaosWantsDelta(g, i) {
					mu.Lock()
					deltaKeys[key] = true
					mu.Unlock()
				}
				jr, err := chaosPost(client, child.addr, key, chaosSpec(g, i))
				if err != nil {
					// The child died under us (or the response never arrived —
					// which the server may still have acked and logged).
					recordUnseen(key)
					if killed.Load() {
						return
					}
					continue
				}
				recordAck(key, jr)
			}
		}(g)
	}
	wg.Wait()
	// Under light scheduling the load may finish before the threshold; kill
	// whatever state exists.
	gateOnce.Do(func() { close(killGate) })
	killWG.Wait()

	if len(acked) == 0 {
		t.Fatal("chaos run acked nothing before the kill; nothing to verify")
	}

	// Restart over the same directory.
	child2 := startChaosChild(t, dir, shards)
	defer child2.kill()
	child2.waitReady(t)
	client := &http.Client{Timeout: 10 * time.Second}

	// The recovered daemon's scrape must prove the recovery happened and
	// that the monotone counters never regress below what the pre-crash WAL
	// durably recorded: every job acked before the kill (fsync=always, so
	// acked ⇒ logged) is re-counted into serve_accepted_total by replay.
	var ackedCommitted int64
	for _, jr := range acked {
		if jr.ID > 0 {
			ackedCommitted++
		}
	}
	m := scrapeMetrics(t, "http://"+child2.addr+"/metrics")
	// Replay only covers the post-checkpoint WAL tail (the child checkpoints
	// aggressively), so the replayed counter is asserted present per shard,
	// not bounded against the ack count.
	for i := 0; i < shards; i++ {
		if _, ok := m[fmt.Sprintf(`serve_recovery_replayed_total{shard="%d"}`, i)]; !ok {
			t.Errorf("serve_recovery_replayed_total{shard=%d} missing from the post-recovery scrape", i)
		}
	}
	if got := metricSum(m, "serve_recovery_duration_us_count{"); got < 1 {
		t.Errorf("serve_recovery_duration_us_count sums to %v after restart, want ≥ 1", got)
	}
	if got := metricSum(m, "serve_recoveries_total{"); got < 1 {
		t.Errorf("serve_recoveries_total sums to %v after restart, want ≥ 1", got)
	}
	if got := metricSum(m, "serve_accepted_total{"); got < float64(ackedCommitted) {
		t.Errorf("serve_accepted_total sums to %v after recovery, below the %d committed acks the WAL holds — monotone counter regressed",
			got, ackedCommitted)
	}

	// No acknowledged job is lost, no verdict changes: a retry of every acked
	// key returns the original response, marked replayed.
	committed := map[int]bool{}
	for key, want := range acked {
		got, err := chaosPost(client, child2.addr, key, "{}") // body is irrelevant on a replay
		if err != nil {
			t.Fatalf("retry %s after restart: %v", key, err)
		}
		if !got.Replayed {
			t.Errorf("retry %s: not marked replayed (got %+v)", key, got)
		}
		if got.ID != want.ID || got.Decision != want.Decision {
			t.Errorf("retry %s: got ID=%d %q, acked ID=%d %q — commitment broken",
				key, got.ID, got.Decision, want.ID, want.Decision)
		}
		if got.Commitment != want.Commitment {
			t.Errorf("retry %s: acked commitment %q, replay says %q — commitment changed across the crash",
				key, want.Commitment, got.Commitment)
		}
		if deltaKeys[key] && want.Decision != DecisionRejected && want.Commitment != CommitmentDelta {
			t.Errorf("key %s requested delta and was not rejected, but was acked with commitment %q",
				key, want.Commitment)
		}
		if want.Decision == DecisionRejected && got.ID != 0 {
			t.Errorf("retry %s: rejected job resurrected with ID %d", key, got.ID)
		}
		if want.ID > 0 {
			committed[want.ID] = true
			st, err := client.Get(fmt.Sprintf("http://%s/v1/jobs/%d", child2.addr, want.ID))
			if err != nil {
				t.Fatalf("status %d: %v", want.ID, err)
			}
			io.Copy(io.Discard, st.Body)
			st.Body.Close()
			if st.StatusCode != http.StatusOK {
				t.Errorf("job %d acked before the crash but unknown after restart", want.ID)
			}
		}
	}

	// Keys that died in flight: submit twice; the pair must collapse onto one
	// verdict whether or not the pre-crash daemon had durably acked them.
	for _, key := range unseen {
		first, err := chaosPost(client, child2.addr, key, chaosSpec(0, 0))
		if err != nil {
			t.Fatalf("in-flight key %s after restart: %v", key, err)
		}
		second, err := chaosPost(client, child2.addr, key, chaosSpec(0, 0))
		if err != nil {
			t.Fatalf("in-flight key %s retry: %v", key, err)
		}
		if !second.Replayed || second.ID != first.ID || second.Decision != first.Decision ||
			second.Commitment != first.Commitment {
			t.Errorf("in-flight key %s: duplicate did not collapse (%+v then %+v)", key, first, second)
		}
		if first.ID > 0 {
			committed[first.ID] = true
		}
	}

	// Drain the recovered daemon and hold its Result against the offline
	// replay of the durable directory: bit-identical state, end to end.
	resp, err := client.Post("http://"+child2.addr+"/v1/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var res sim.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if len(res.Jobs) != len(committed) {
		t.Errorf("drained result holds %d jobs, clients committed %d", len(res.Jobs), len(committed))
	}
	for _, js := range res.Jobs {
		if !committed[js.ID] {
			t.Errorf("job %d in the drained result was never acked to a client", js.ID)
		}
	}

	replayed, err := ReplayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, b := res, *replayed
	a.Engine, b.Engine = "", ""
	aj, _ := json.Marshal(&a)
	bj, _ := json.Marshal(&b)
	if string(aj) != string(bj) {
		t.Errorf("recovered session diverges from crash-free replay:\nserved:   %s\nreplayed: %s", aj, bj)
	}
}
