package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"dagsched/internal/sim"
	"dagsched/internal/workload"
)

// TestFastParseMatchesEncodingJSON drives the fast-path parser and the
// encoding/json decoder over the same bodies: everywhere the fast path
// claims a spec (ok=true) the two must agree exactly, and bodies it must
// not claim (fallback cases) must return ok=false.
func TestFastParseMatchesEncodingJSON(t *testing.T) {
	fastable := []string{
		`{}`,
		`{"w":16,"l":2,"deadline":40,"profit":3}`,
		`{"w":16,"l":2}`,
		`{"profit":0.125,"deadline":9}`,
		`{"deadline":40,"profit":3,"w":16,"l":2}`, // key order free
		`  {"w":1,"l":1}  trailing garbage`,       // Decode reads one value
		"\t{\n\"w\": 7 ,\n\"l\" : 7\n}",           // whitespace everywhere
		`{"w":-3,"l":2}`,                          // negative: build() rejects both paths
		`{"profit":123456789.123456}`,             // 15 significant digits
		`{"profit":-0.000001}`,
		`{"w":999999999999999999}`, // 18 digits
		`{"profit":0}`,
		`{"w":0,"l":0,"deadline":0,"profit":2.5}`,
	}
	for _, body := range fastable {
		spec, key, ok := parseJobSpecFast([]byte(body), false)
		if !ok {
			t.Errorf("parseJobSpecFast(%q) fell back; want fast path", body)
			continue
		}
		if key != nil {
			t.Errorf("parseJobSpecFast(%q) returned a key with allowKey=false", body)
		}
		var want JobSpec
		dec := json.NewDecoder(bytes.NewReader([]byte(body)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&want); err != nil {
			t.Errorf("encoding/json rejects %q (%v) but the fast path accepted it", body, err)
			continue
		}
		if spec != want {
			t.Errorf("parseJobSpecFast(%q) = %+v, want %+v", body, spec, want)
		}
	}

	fallback := []string{
		``,
		`null`,
		`[1,2]`,
		`{"w":16`,                       // truncated
		`{"w":16,}`,                     // trailing comma
		`{"w":"16"}`,                    // string where int expected
		`{"w":16.0}`,                    // float where int expected (json rejects too)
		`{"w":1e3}`,                     // exponent form
		`{"w":016}`,                     // leading zero (json rejects too)
		`{"profit":1e-3}`,               // exponent form: fall back, json accepts
		`{"profit":0.1234567890123456}`, // 16 significant digits
		`{"w":9999999999999999999}`,     // 19 digits
		`{"dag":{"work":[1]}}`,          // structured field
		`{"curve":{"kind":"step"}}`,     // structured field
		`{"profit":{"type":"step","value":3,"deadline":40}}`, // structured profit object
		`{"w":4,"l":2,"profit":1,"commitment":"delta"}`,      // commitment override
		`{"bogus":1}`,              // unknown field (json rejects too)
		`{"key":"k1","w":1,"l":1}`, // key only allowed in batch items
		`{"wA":1}`,                 // escaped key
	}
	for _, body := range fallback {
		if _, _, ok := parseJobSpecFast([]byte(body), false); ok {
			t.Errorf("parseJobSpecFast(%q) took the fast path; must fall back", body)
		}
	}
}

// TestFastParseBatchKey covers the allowKey variant used by batch items.
func TestFastParseBatchKey(t *testing.T) {
	spec, key, ok := parseJobSpecFast([]byte(`{"w":4,"l":2,"deadline":10,"profit":1,"key":"user-42/j7"}`), true)
	if !ok {
		t.Fatalf("keyed batch item fell back")
	}
	if string(key) != "user-42/j7" {
		t.Fatalf("key = %q, want user-42/j7", key)
	}
	if spec.W != 4 || spec.L != 2 || spec.Deadline != 10 || spec.Profit.Scalar != 1 {
		t.Fatalf("spec = %+v", spec)
	}
	if _, _, ok := parseJobSpecFast([]byte(`{"key":"a\"b","w":1,"l":1}`), true); ok {
		t.Fatalf("escaped key string must fall back")
	}
}

// TestFastParseFloatExact pins that every fast-path float is bit-identical
// to strconv/encoding/json's parse, across magnitudes and fractions.
func TestFastParseFloatExact(t *testing.T) {
	for _, lit := range []string{
		"0", "1", "-1", "3", "2.5", "0.125", "-0.125", "123.456",
		"0.1", "0.2", "0.3", "999999999999999", "1.00000000000001",
		"0.000001", "-42.000001", "7.5",
	} {
		body := []byte(`{"profit":` + lit + `}`)
		spec, _, ok := parseJobSpecFast(body, false)
		if !ok {
			t.Errorf("profit %s fell back", lit)
			continue
		}
		var want JobSpec
		if err := json.Unmarshal(body, &want); err != nil {
			t.Fatalf("json.Unmarshal(%s): %v", body, err)
		}
		if math.Float64bits(spec.Profit.Scalar) != math.Float64bits(want.Profit.Scalar) {
			t.Errorf("profit %s: fast=%x json=%x", lit, math.Float64bits(spec.Profit.Scalar), math.Float64bits(want.Profit.Scalar))
		}
	}
}

// TestAppendJobResponseMatchesMarshal pins the fast encoder to json.Marshal
// byte-for-byte across field combinations, and checks the fallback trigger.
func TestAppendJobResponseMatchesMarshal(t *testing.T) {
	cases := []JobResponse{
		{},
		{ID: 7, Release: 3, Decision: DecisionAdmitted, Commitment: CommitmentOnAdmission},
		{Release: 0, Decision: DecisionRejected, Reason: "not delta-good", Commitment: CommitmentNone},
		{ID: 12, Release: 9, Decision: DecisionParked, Replayed: true},
		{ID: 1, Release: 2, Decision: DecisionAdmitted,
			Plan: &PlanInfo{Alloc: 4, X: 1.5, Density: 0.0000001, Good: true}},
		{ID: 1, Release: 2, Decision: DecisionAdmitted,
			Plan: &PlanInfo{Alloc: 0, X: 0, Density: 3e21, Good: false}},
		{ID: 1, Release: 2, Decision: DecisionAdmitted,
			Plan: &PlanInfo{Alloc: 2, X: -0.000001, Density: 123456.789, Good: true}},
	}
	for _, r := range cases {
		got, ok := appendJobResponse(nil, &r)
		if !ok {
			t.Errorf("appendJobResponse(%+v) fell back", r)
			continue
		}
		want, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("json.Marshal: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("appendJobResponse(%+v)\n got %s\nwant %s", r, got, want)
		}
	}
	// Strings that encoding/json escapes must force the fallback.
	for _, r := range []JobResponse{
		{Decision: DecisionRejected, Reason: "a<b"},
		{Decision: DecisionRejected, Reason: "quote\"inside"},
		{Decision: DecisionRejected, Reason: "newline\n"},
		{Decision: "ünsafe"},
	} {
		if _, ok := appendJobResponse(nil, &r); ok {
			t.Errorf("appendJobResponse(%+v) took the fast path; must fall back", r)
		}
	}
}

// TestAppendJSONFloat pins the float renderer against encoding/json across
// the f/e format boundary cases.
func TestAppendJSONFloat(t *testing.T) {
	for _, f := range []float64{
		0, 1, -1, 2.5, 0.125, 1e-6, 9.99e-7, 1e-7, 1e20, 1e21, 3e21,
		-1e-9, 123456.789, 0.1, 1.0 / 3.0, math.MaxFloat64, math.SmallestNonzeroFloat64,
	} {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatalf("json.Marshal(%g): %v", f, err)
		}
		if got := appendJSONFloat(nil, f); !bytes.Equal(got, want) {
			t.Errorf("appendJSONFloat(%g) = %s, want %s", f, got, want)
		}
	}
}

// TestSplitJSONArray covers the batch envelope scanner.
func TestSplitJSONArray(t *testing.T) {
	elems, err := splitJSONArray([]byte(` [ {"w":1} , {"l":[1,2],"s":"a,]"} , 3 ] `))
	if err != nil {
		t.Fatalf("splitJSONArray: %v", err)
	}
	want := []string{`{"w":1}`, `{"l":[1,2],"s":"a,]"}`, `3`}
	if len(elems) != len(want) {
		t.Fatalf("got %d elements, want %d", len(elems), len(want))
	}
	for i := range want {
		if string(elems[i]) != want[i] {
			t.Errorf("element %d = %q, want %q", i, elems[i], want[i])
		}
	}
	if elems, err := splitJSONArray([]byte(`[]`)); err != nil || len(elems) != 0 {
		t.Errorf("empty array: %v, %v", elems, err)
	}
	for _, bad := range []string{``, `{}`, `[1,`, `[{]`, `["a`, `[1,,2]`, `[1}`} {
		if _, err := splitJSONArray([]byte(bad)); err == nil {
			t.Errorf("splitJSONArray(%q) accepted malformed input", bad)
		}
	}
}

// TestFastPathZeroAllocs asserts the parser and encoder allocate nothing
// per spec — the property the wire guard pins under SPAA_WIRE_GUARD.
func TestFastPathZeroAllocs(t *testing.T) {
	body := []byte(`{"w":16,"l":2,"deadline":40,"profit":3}`)
	if n := testing.AllocsPerRun(200, func() {
		if _, _, ok := parseJobSpecFast(body, false); !ok {
			t.Fatal("fell back")
		}
	}); n != 0 {
		t.Errorf("parseJobSpecFast allocates %.1f per spec, want 0", n)
	}
	resp := JobResponse{ID: 7, Release: 3, Decision: DecisionAdmitted,
		Commitment: CommitmentOnAdmission, Plan: &PlanInfo{Alloc: 4, X: 1.5, Density: 2.25, Good: true}}
	buf := make([]byte, 0, 256)
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := appendJobResponse(buf, &resp); !ok {
			t.Fatal("fell back")
		}
	}); n != 0 {
		t.Errorf("appendJobResponse allocates %.1f per verdict, want 0", n)
	}
}

// TestAppendWALJobMatchesMarshal pins the WAL-record fast encoder to
// json.Marshal byte-for-byte (the on-disk format must be one encoder's
// output whichever path produced it), and checks every fallback trigger.
func TestAppendWALJobMatchesMarshal(t *testing.T) {
	wire := json.RawMessage(`{"id":7,"release":3,"deadline":40,"profit":[[3,40]],"nodes":[{"w":16}],"edges":[]}`)
	cases := []WALJob{
		{Type: "job", Resp: JobResponse{ID: 7, Release: 3, Decision: DecisionAdmitted}, Job: wire},
		{Type: "job", Key: "user-42/j7", ReqID: "req-1", Job: wire,
			Resp: JobResponse{ID: 7, Release: 3, Decision: DecisionParked, Reason: "band-full",
				Commitment: CommitmentOnAdmission, Plan: &PlanInfo{Alloc: 4, X: 1.5, Density: 0.125, Good: true}}},
		{Type: "job", Key: "k", Resp: JobResponse{Replayed: true}, Job: json.RawMessage(`{"id":1}`)},
	}
	for _, rec := range cases {
		got, ok := appendWALJob(nil, &rec)
		if !ok {
			t.Errorf("appendWALJob(%+v) fell back", rec)
			continue
		}
		want, err := json.Marshal(rec)
		if err != nil {
			t.Fatalf("json.Marshal: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("appendWALJob(%+v)\n got %s\nwant %s", rec, got, want)
		}
	}
	fallback := []WALJob{
		{Type: "job", Job: json.RawMessage(`{"s":"a b"}`)},    // space: Marshal compacts RawMessage
		{Type: "job", Job: json.RawMessage("{\n}")},           // whitespace outside strings
		{Type: "job", Job: json.RawMessage(`{"s":"a<b"}`)},    // Marshal HTML-escapes inside RawMessage
		{Type: "job", Job: nil},                               // nil renders as null
		{Type: "job", Key: `a"b`, Job: json.RawMessage(`{}`)}, // key needs escaping
		{Type: "job", Resp: JobResponse{Reason: "x&y"}, Job: json.RawMessage(`{}`)},
	}
	for _, rec := range fallback {
		if _, ok := appendWALJob(nil, &rec); ok {
			t.Errorf("appendWALJob(%+v) took the fast path; must fall back", rec)
		}
	}
}

// TestAppendFrame pins the in-place framer to frameRecord and to the scan
// side (parseFrame must accept what appendFrame writes).
func TestAppendFrame(t *testing.T) {
	for _, payload := range []string{`{"type":"job"}`, "", "x"} {
		got := appendFrame(nil, []byte(payload))
		want := frameRecord([]byte(payload))
		if !bytes.Equal(got, want) {
			t.Errorf("appendFrame(%q) = %q, want %q", payload, got, want)
		}
		if payload == "" {
			continue // parseFrame's min-length check rejects empty payloads
		}
		back, err := parseFrame(got[:len(got)-1])
		if err != nil || string(back) != payload {
			t.Errorf("parseFrame(appendFrame(%q)) = %q, %v", payload, back, err)
		}
	}
}

// TestMarshalJobWireMatchesMarshalJob pins the scalar-spec wire memo to
// workload.MarshalJob byte-for-byte: the WAL stores one wire format
// whichever path rendered it, so recovery and the chaos harness never see a
// cache-dependent byte. Exercises the cold path (miss fills the tail), the
// hot path (tail prefixed with fresh id/release), and the structured-spec
// bypass (nil entry).
func TestMarshalJobWireMatchesMarshalJob(t *testing.T) {
	sh := &shard{}
	spec := JobSpec{W: 16, L: 2, Deadline: 40, Profit: ScalarProfit(3)}
	for i, id := range []int{1, 9, 1234567} {
		g, fn, ce, err := sh.buildSpec(spec)
		if err != nil {
			t.Fatalf("buildSpec: %v", err)
		}
		if ce == nil {
			t.Fatal("scalar spec returned nil cache entry")
		}
		job := &sim.Job{ID: id, Graph: g, Release: int64(i * 7), Profit: fn}
		want, err := workload.MarshalJob(job)
		if err != nil {
			t.Fatalf("MarshalJob: %v", err)
		}
		got, err := sh.marshalJobWire(ce, job)
		if err != nil {
			t.Fatalf("marshalJobWire: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("id=%d release=%d:\n got %s\nwant %s", id, job.Release, got, want)
		}
	}
	if len(sh.wireCache) != 1 {
		t.Errorf("wireCache holds %d entries, want 1 (one scalar shape)", len(sh.wireCache))
	}
	// A second shape must not collide with the first.
	spec2 := JobSpec{W: 9, L: 3, Deadline: 12, Profit: ScalarProfit(0.5)}
	g2, fn2, ce2, err := sh.buildSpec(spec2)
	if err != nil {
		t.Fatalf("buildSpec(spec2): %v", err)
	}
	job2 := &sim.Job{ID: 2, Graph: g2, Release: 5, Profit: fn2}
	want2, _ := workload.MarshalJob(job2)
	sh.marshalJobWire(ce2, job2) // cold: fills the tail
	got2, err := sh.marshalJobWire(ce2, job2)
	if err != nil {
		t.Fatalf("marshalJobWire(spec2): %v", err)
	}
	if !bytes.Equal(got2, want2) {
		t.Errorf("spec2:\n got %s\nwant %s", got2, want2)
	}
	// nil entry (structured specs) must defer to MarshalJob unchanged.
	got3, err := sh.marshalJobWire(nil, job2)
	if err != nil {
		t.Fatalf("marshalJobWire(nil): %v", err)
	}
	if !bytes.Equal(got3, want2) {
		t.Errorf("nil entry:\n got %s\nwant %s", got3, want2)
	}
}

// TestBuildSpecSharesGraph asserts cache hits reuse the synthesized DAG —
// the allocation the scalar cache exists to remove — and that build errors
// are not cached.
func TestBuildSpecSharesGraph(t *testing.T) {
	sh := &shard{}
	spec := JobSpec{W: 16, L: 2, Deadline: 40, Profit: ScalarProfit(3)}
	g1, _, _, err := sh.buildSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	g2, _, _, err := sh.buildSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("cache hit rebuilt the DAG; want shared immutable graph")
	}
	if _, _, _, err := sh.buildSpec(JobSpec{W: 2, L: 9}); err == nil {
		t.Error("invalid spec (l > w) built; want error")
	}
	if len(sh.wireCache) != 1 {
		t.Errorf("error was cached: %d entries, want 1", len(sh.wireCache))
	}
}
