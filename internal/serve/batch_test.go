package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// rawBatchItem mirrors BatchItemResult but keeps the verdict's raw bytes so
// tests can compare them against the sequential endpoint byte-for-byte.
type rawBatchItem struct {
	Status   int             `json:"status"`
	Response json.RawMessage `json:"response"`
	Error    string          `json:"error"`
}

func postBatch(t *testing.T, ts *httptest.Server, body string) (int, []rawBatchItem, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs:batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		var er errorResponse
		_ = json.Unmarshal(raw, &er)
		return resp.StatusCode, nil, er.Error
	}
	var br struct {
		Items []rawBatchItem `json:"items"`
	}
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatalf("batch body %q: %v", raw, err)
	}
	return resp.StatusCode, br.Items, ""
}

// TestBatchPartialFailure: a malformed spec rejects only its own slot; the
// valid items around it are admitted with consecutive IDs.
func TestBatchPartialFailure(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 4})
	code, items, _ := postBatch(t, ts, `[
		{"w":32,"l":4,"deadline":40,"profit":10},
		{"w":"not a number","l":4},
		{"w":32,"l":4,"deadline":40,"profit":10},
		{"bogus":1},
		{"w":100,"l":2,"deadline":12,"profit":8}
	]`)
	if code != 200 {
		t.Fatalf("batch: code=%d", code)
	}
	if len(items) != 5 {
		t.Fatalf("got %d items, want 5", len(items))
	}
	wantStatus := []int{200, 400, 200, 400, 200}
	for i, want := range wantStatus {
		if items[i].Status != want {
			t.Errorf("item %d: status=%d error=%q, want %d", i, items[i].Status, items[i].Error, want)
		}
	}
	var first, third, fifth JobResponse
	if err := json.Unmarshal(items[0].Response, &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(items[2].Response, &third); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(items[4].Response, &fifth); err != nil {
		t.Fatal(err)
	}
	if first.Decision != DecisionAdmitted || third.Decision != DecisionAdmitted {
		t.Fatalf("valid items not admitted: %+v %+v", first, third)
	}
	if first.ID != 1 || third.ID != 2 {
		t.Fatalf("IDs = %d, %d; want 1, 2 (bad items must not burn IDs)", first.ID, third.ID)
	}
	// The infeasible (but well-formed) spec gets a 200 verdict: rejected.
	if fifth.Decision != DecisionRejected || fifth.ID != 0 {
		t.Fatalf("infeasible item: %+v, want rejected with no ID", fifth)
	}
	if items[1].Error == "" || items[3].Error == "" {
		t.Fatalf("malformed items carry no error: %+v %+v", items[1], items[3])
	}
}

// TestBatchBackpressurePerItem: a full shard mailbox 429s the items routed to
// it inside a 200 envelope — batch backpressure is per item, not per request.
func TestBatchBackpressurePerItem(t *testing.T) {
	s := &Server{cfg: Config{M: 1, QueueDepth: 1, MaxBatchItems: 8}}
	sh := &shard{srv: s, m: 1, stride: 1, reqs: make(chan any, 1), engineDone: make(chan struct{})}
	s.shards = []*shard{sh}
	s.placer = newPlacer(s.shards)
	sh.reqs <- struct{}{} // engine is "busy"; the mailbox is now full
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, items, _ := postBatch(t, ts, `[{"w":4,"l":2,"deadline":9,"profit":1},{"w":4,"l":2,"deadline":9,"profit":1}]`)
	if code != 200 {
		t.Fatalf("batch: code=%d, want 200 with per-item statuses", code)
	}
	for i, it := range items {
		if it.Status != 429 || it.Error != "submission queue full" {
			t.Errorf("item %d: %+v, want per-item 429 submission queue full", i, it)
		}
	}
}

// TestBatchEnvelopeErrors: the envelope-level error table — bad JSON shape,
// empty batch, too many items, oversized body.
func TestBatchEnvelopeErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 2, MaxBatchItems: 4, MaxBodyBytes: 256})
	cases := []struct {
		name, body string
		wantCode   int
	}{
		{"not an array", `{"w":1}`, 400},
		{"empty batch", `[]`, 400},
		{"empty batch spaced", `  [  ]  `, 400},
		{"unterminated", `[{"w":1}`, 400},
		{"too many items", `[{},{},{},{},{}]`, 413},
		{"oversized body", "[" + strings.Repeat(`{"w":1,"l":1},`, 100) + `{"w":1,"l":1}]`, 413},
	}
	for _, tc := range cases {
		code, _, msg := postBatch(t, ts, tc.body)
		if code != tc.wantCode {
			t.Errorf("%s: code=%d (%s), want %d", tc.name, code, msg, tc.wantCode)
		}
	}
}

// TestBatchDuplicateKeys: two items with the same idempotency key inside one
// batch route to the same shard in order, so the second collapses onto the
// first's stored verdict.
func TestBatchDuplicateKeys(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 4, Shards: 2})
	code, items, _ := postBatch(t, ts, `[
		{"w":16,"l":2,"deadline":40,"profit":3,"key":"dup"},
		{"w":16,"l":2,"deadline":40,"profit":3,"key":"dup"}
	]`)
	if code != 200 || len(items) != 2 {
		t.Fatalf("batch: code=%d items=%d", code, len(items))
	}
	var a, b JobResponse
	if err := json.Unmarshal(items[0].Response, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(items[1].Response, &b); err != nil {
		t.Fatal(err)
	}
	if a.Replayed {
		t.Fatalf("first keyed item marked replayed: %+v", a)
	}
	if !b.Replayed {
		t.Fatalf("duplicate key not collapsed: %+v", b)
	}
	if a.ID != b.ID || a.Decision != b.Decision {
		t.Fatalf("duplicate verdicts diverge: %+v vs %+v", a, b)
	}

	// A later retry through the single-job endpoint sees the same verdict.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(`{"w":16,"l":2,"deadline":40,"profit":3}`))
	req.Header.Set("Idempotency-Key", "dup")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var c JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&c); err != nil {
		t.Fatal(err)
	}
	if !c.Replayed || c.ID != a.ID {
		t.Fatalf("cross-endpoint retry: %+v, want replay of id %d", c, a.ID)
	}
}

// TestBatchMatchesSequentialBytes: the same specs produce byte-identical
// verdicts whether they arrive in one batch or as sequential single posts.
func TestBatchMatchesSequentialBytes(t *testing.T) {
	specs := []string{
		`{"w":32,"l":4,"deadline":40,"profit":10}`,
		`{"w":100,"l":2,"deadline":12,"profit":8}`,
		`{"w":16,"l":2,"deadline":40,"profit":3}`,
		`{"w":4,"l":4,"deadline":30,"profit":1.5}`,
		`{"dag":{"work":[2,2],"edges":[[0,1]]},"deadline":25,"profit":2}`,
	}

	// Sequential server: one post per spec, keep the raw bodies.
	_, seqTS := newTestServer(t, Config{M: 4})
	sequential := make([]string, len(specs))
	for i, spec := range specs {
		resp, err := http.Post(seqTS.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("sequential %d: code=%d err=%v", i, resp.StatusCode, err)
		}
		sequential[i] = strings.TrimSuffix(string(raw), "\n")
	}

	// Batch server: identical config, all specs in one request.
	_, batchTS := newTestServer(t, Config{M: 4})
	code, items, _ := postBatch(t, batchTS, "["+strings.Join(specs, ",")+"]")
	if code != 200 || len(items) != len(specs) {
		t.Fatalf("batch: code=%d items=%d", code, len(items))
	}
	for i := range specs {
		if items[i].Status != 200 {
			t.Errorf("item %d: status=%d error=%q", i, items[i].Status, items[i].Error)
			continue
		}
		if got := string(items[i].Response); got != sequential[i] {
			t.Errorf("item %d verdict diverges\n batch: %s\n  sequential: %s", i, got, sequential[i])
		}
	}
}

// TestBatchWALGroupContiguous: a batch's WAL records land contiguously in the
// shard's log even with other submissions racing, because the whole group
// crosses the mailbox as one message and is processed atomically by the
// engine goroutine.
func TestBatchWALGroupContiguous(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{M: 4, WALDir: dir, Fsync: FsyncAlways})

	const batchN = 6
	var batch strings.Builder
	batch.WriteByte('[')
	for i := 0; i < batchN; i++ {
		if i > 0 {
			batch.WriteByte(',')
		}
		fmt.Fprintf(&batch, `{"w":16,"l":2,"deadline":40,"profit":3,"key":"grp-%d"}`, i)
	}
	batch.WriteByte(']')

	// Race the batch against single submissions from another client.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
				strings.NewReader(`{"w":8,"l":2,"deadline":40,"profit":1}`))
			if err == nil {
				resp.Body.Close()
			}
		}
	}()
	code, items, _ := postBatch(t, ts, batch.String())
	<-done
	if code != 200 {
		t.Fatalf("batch: code=%d", code)
	}
	for i, it := range items {
		if it.Status != 200 {
			t.Fatalf("item %d: %+v", i, it)
		}
	}
	// Scan before draining: the drain's final checkpoint folds the log away.
	// Replies received imply the records are written (engine goroutine
	// appends before acknowledging).
	payloads, _, err := scanWAL(dir + "/wal.log")
	if err != nil {
		t.Fatal(err)
	}
	first, last, seen := -1, -1, 0
	for i, p := range payloads {
		var rec struct {
			Key string `json:"key"`
		}
		_ = json.Unmarshal(p, &rec)
		if strings.HasPrefix(rec.Key, "grp-") {
			if first < 0 {
				first = i
			}
			last = i
			seen++
		}
	}
	if seen != batchN {
		t.Fatalf("found %d batch records, want %d", seen, batchN)
	}
	if last-first+1 != batchN {
		t.Fatalf("batch records interleaved: span [%d,%d] holds %d records", first, last, seen)
	}
}

// TestWALGroupCommitWindow: under FsyncAlways a group-commit window defers
// the per-record flush to endBatch, and every record in the window is on
// disk afterwards.
func TestWALGroupCommitWindow(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, FsyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.beginBatch()
	for i := 0; i < 3; i++ {
		if err := w.append(map[string]int{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	if !w.dirty {
		t.Fatal("records inside the window must not have been flushed record-by-record")
	}
	if err := w.endBatch(); err != nil {
		t.Fatal(err)
	}
	if w.dirty {
		t.Fatal("endBatch must flush the window")
	}
	// After the window closes, appends flush per record again.
	if err := w.append(map[string]int{"i": 3}); err != nil {
		t.Fatal(err)
	}
	if w.dirty {
		t.Fatal("post-window append must flush immediately under FsyncAlways")
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	payloads, torn, err := scanWAL(dir + "/" + walFileName)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 || len(payloads) != 4 {
		t.Fatalf("scan: %d records, %d torn bytes; want 4, 0", len(payloads), torn)
	}
}
