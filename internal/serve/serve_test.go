package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"dagsched/internal/sim"
)

// newTestServer builds a deterministic-clock server (ticker disabled) and an
// httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.TickInterval == 0 {
		cfg.TickInterval = -1
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { srv.Drain() })
	return srv, ts
}

func postJob(t *testing.T, ts *httptest.Server, spec string) (int, JobResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr JobResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, jr
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestServeSubmitLifecycle(t *testing.T) {
	srv, ts := newTestServer(t, Config{M: 4})

	// A feasible job is admitted with the next ID and the plan echoed.
	code, jr := postJob(t, ts, `{"w":32,"l":4,"deadline":40,"profit":10}`)
	if code != 200 || jr.Decision != DecisionAdmitted || jr.ID != 1 {
		t.Fatalf("submit: code=%d resp=%+v", code, jr)
	}
	if jr.Plan == nil || !jr.Plan.Good || jr.Plan.Alloc < 1 {
		t.Fatalf("admitted without a sane plan: %+v", jr.Plan)
	}

	// An infeasible job (needs more speedup than the window allows) is
	// rejected outright with no ID.
	code, jr = postJob(t, ts, `{"w":100,"l":2,"deadline":12,"profit":8}`)
	if code != 200 || jr.Decision != DecisionRejected || jr.ID != 0 || jr.Reason != "not-delta-good" {
		t.Fatalf("infeasible submit: code=%d resp=%+v", code, jr)
	}

	// Malformed and invalid specs are 400s.
	for _, bad := range []string{
		`{"w":32}`,                              // missing l
		`{"w":2,"l":4,"deadline":9,"profit":1}`, // w < l
		`{"w":32,"l":4}`,                        // no profit curve
		`{nope`,                                 // not JSON
		`{"w":1,"l":1,"deadline":3,"profit":1,"bogus":true}`, // unknown field
	} {
		if code, _ := postJob(t, ts, bad); code != 400 {
			t.Errorf("spec %s: code=%d, want 400", bad, code)
		}
	}

	// Status of the committed job.
	var st StatusResponse
	if code := getJSON(t, ts.URL+"/v1/jobs/1", &st); code != 200 {
		t.Fatalf("status: code=%d", code)
	}
	if st.State != "live" || st.W != 32 || st.L != 4 {
		t.Fatalf("status = %+v", st)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/99", nil); code != 404 {
		t.Fatalf("unknown job: code=%d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/zero", nil); code != 400 {
		t.Fatalf("bad id: code=%d, want 400", code)
	}

	// Stats reflect the one committed job and the serving counters.
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != 200 {
		t.Fatalf("stats: code=%d", code)
	}
	if stats.Scheduler == "" || stats.M != 4 || stats.Live != 1 || stats.Draining {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Telemetry.Counters["serve.accepted"] != 1 || stats.Telemetry.Counters["serve.rejected"] != 1 {
		t.Fatalf("counters = %+v", stats.Telemetry.Counters)
	}

	if code := getJSON(t, ts.URL+"/healthz", nil); code != 200 {
		t.Fatalf("healthz: code=%d", code)
	}
	if code := getJSON(t, ts.URL+"/readyz", nil); code != 200 {
		t.Fatalf("readyz: code=%d", code)
	}

	// Drain over HTTP: committed work finishes in simulated time.
	resp, err := http.Post(ts.URL+"/v1/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var res sim.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if res.Completed != 1 || res.TotalProfit != 10 {
		t.Fatalf("drain result: completed=%d profit=%v", res.Completed, res.TotalProfit)
	}

	// Post-drain: the process is still live (healthz 200) but no longer
	// ready for work (readyz 503); submissions are 503, sealed lookups work.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != 200 {
		t.Fatalf("healthz after drain: code=%d, want 200 (liveness)", code)
	}
	if code := getJSON(t, ts.URL+"/readyz", nil); code != 503 {
		t.Fatalf("readyz after drain: code=%d, want 503", code)
	}
	if code, _ := postJob(t, ts, `{"w":4,"l":2,"deadline":9,"profit":1}`); code != 503 {
		t.Fatalf("submit after drain: code=%d, want 503", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/1", &st); code != 200 || st.State != "completed" {
		t.Fatalf("sealed status: code=%d state=%q", code, st.State)
	}
	if !srv.Draining() {
		t.Fatal("Draining() = false after drain")
	}
}

func TestServeParkedDecision(t *testing.T) {
	// m=2, ε=1: band capacity b·m ≈ 1.73. Each clone below carries band
	// weight exactly 1, so the first is admitted and the second parks in P.
	_, ts := newTestServer(t, Config{M: 2})
	spec := `{"w":20,"l":4,"deadline":30,"profit":10}`

	code, jr := postJob(t, ts, spec)
	if code != 200 || jr.Decision != DecisionAdmitted || jr.ID != 1 {
		t.Fatalf("first clone: code=%d resp=%+v", code, jr)
	}
	code, jr = postJob(t, ts, spec)
	if code != 200 || jr.Decision != DecisionParked || jr.ID != 2 || jr.Reason != "band-full" {
		t.Fatalf("second clone: code=%d resp=%+v", code, jr)
	}

	// Parked means committed: the job has an ID and a live status.
	var st StatusResponse
	if code := getJSON(t, ts.URL+"/v1/jobs/2", &st); code != 200 || st.State != "live" {
		t.Fatalf("parked job status: code=%d state=%q", code, st.State)
	}
}

func TestServeNonAdmissionScheduler(t *testing.T) {
	// EDF has no admission test; every valid job is simply accepted.
	_, ts := newTestServer(t, Config{M: 2, Sched: "edf"})
	code, jr := postJob(t, ts, `{"w":8,"l":2,"deadline":20,"profit":5}`)
	if code != 200 || jr.Decision != DecisionAccepted || jr.ID != 1 || jr.Plan != nil {
		t.Fatalf("edf submit: code=%d resp=%+v", code, jr)
	}
}

func TestServeFullDAGSubmission(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 2})
	code, jr := postJob(t, ts,
		`{"dag":{"work":[1,2,1],"edges":[[0,1],[1,2]]},"curve":{"kind":"linear","value":6,"flat":8,"zeroAt":16}}`)
	if code != 200 || jr.ID != 1 {
		t.Fatalf("dag submit: code=%d resp=%+v", code, jr)
	}
	var st StatusResponse
	getJSON(t, ts.URL+"/v1/jobs/1", &st)
	if st.W != 4 || st.L != 4 {
		t.Fatalf("dag job status: %+v", st)
	}
	// dag and w/l together is a contradiction.
	if code, _ := postJob(t, ts, `{"dag":{"work":[1]},"w":1,"l":1,"deadline":3,"profit":1}`); code != 400 {
		t.Fatalf("dag+scalars: code=%d, want 400", code)
	}
}

// TestServeBackpressure fills the mailbox of an engineless server and checks
// the handler answers 429 without blocking.
func TestServeBackpressure(t *testing.T) {
	s := &Server{cfg: Config{M: 1, QueueDepth: 1}}
	sh := &shard{srv: s, m: 1, stride: 1, reqs: make(chan any, 1), engineDone: make(chan struct{})}
	s.shards = []*shard{sh}
	s.placer = newPlacer(s.shards)
	sh.reqs <- struct{}{} // engine is "busy"; the mailbox is now full
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, _ := postJob(t, ts, `{"w":4,"l":2,"deadline":9,"profit":1}`)
	if code != 429 {
		t.Fatalf("full mailbox: code=%d, want 429", code)
	}
}

// TestServeConcurrentSubmissions hammers the daemon from parallel clients
// (run under -race), drains, and checks the replay log re-simulates the
// serving session bit-identically.
func TestServeConcurrentSubmissions(t *testing.T) {
	var replayLog bytes.Buffer
	srv, ts := newTestServer(t, Config{M: 4, QueueDepth: 256, ReplayLog: &replayLog})

	const clients, perClient = 8, 25
	var mu sync.Mutex
	accepted := 0
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				// A mix of shapes; some will park or reject under S.
				w := int64(4 + (c+i)%29)
				l := int64(1 + (c*i)%4)
				if l > w {
					l = w
				}
				spec := fmt.Sprintf(`{"w":%d,"l":%d,"deadline":%d,"profit":%d}`,
					w, l, l+20+int64(i%17), 1+i%7)
				resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
				if err != nil {
					t.Error(err)
					return
				}
				var jr JobResponse
				dec := json.NewDecoder(resp.Body)
				if resp.StatusCode == http.StatusOK {
					if err := dec.Decode(&jr); err != nil {
						t.Error(err)
					}
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					if jr.ID > 0 {
						mu.Lock()
						accepted++
						mu.Unlock()
					}
				case http.StatusTooManyRequests:
					// Backpressure is a legal answer under load.
				default:
					t.Errorf("submit: unexpected status %d", resp.StatusCode)
				}
				// Interleave reads to exercise the mailbox under contention
				// (plain Get: test helpers must not Fatal off the test goroutine).
				if i%5 == 0 {
					if sr, err := http.Get(ts.URL + "/v1/stats"); err == nil {
						io.Copy(io.Discard, sr.Body)
						sr.Body.Close()
					}
				}
				if i%7 == 0 {
					srv.Advance(int64(i))
				}
			}
		}(c)
	}
	wg.Wait()

	res := srv.Drain()
	if len(res.Jobs) != accepted {
		t.Fatalf("result has %d jobs, clients saw %d accepted", len(res.Jobs), accepted)
	}
	if res.Completed+res.Expired != accepted {
		t.Fatalf("completed %d + expired %d != accepted %d", res.Completed, res.Expired, accepted)
	}

	assertReplayIdentical(t, &replayLog, res)
}

// TestServeDrainUnderLoad drains while submitters are still pounding the
// API; every in-flight request must resolve to 200, 429, or 503, and the
// final result must cover exactly the accepted jobs.
func TestServeDrainUnderLoad(t *testing.T) {
	var replayLog bytes.Buffer
	srv, ts := newTestServer(t, Config{M: 2, QueueDepth: 8, ReplayLog: &replayLog})

	const clients, perClient = 6, 40
	var mu sync.Mutex
	accepted := 0
	start := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			for i := 0; i < perClient; i++ {
				spec := fmt.Sprintf(`{"w":%d,"l":2,"deadline":30,"profit":3}`, int64(4+(c+i)%10))
				resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
				if err != nil {
					t.Error(err)
					return
				}
				var jr JobResponse
				if resp.StatusCode == http.StatusOK {
					json.NewDecoder(resp.Body).Decode(&jr)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					if jr.ID > 0 {
						mu.Lock()
						accepted++
						mu.Unlock()
					}
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					// Both are legal while draining under load.
				default:
					t.Errorf("submit: unexpected status %d", resp.StatusCode)
				}
			}
		}(c)
	}
	close(start)

	// Drain from a separate goroutine mid-flight.
	drainRes := make(chan *sim.Result, 1)
	go func() { drainRes <- srv.Drain() }()
	res := <-drainRes
	wg.Wait()

	if len(res.Jobs) != accepted {
		t.Fatalf("result has %d jobs, clients saw %d accepted", len(res.Jobs), accepted)
	}
	assertReplayIdentical(t, &replayLog, res)
}

// assertReplayIdentical re-simulates the replay log offline and compares the
// Result byte-for-byte with the serving session's, modulo the Engine label
// (the offline rerun may auto-route to the evented engine, which existing
// equivalence tests pin to identical statistics).
func assertReplayIdentical(t *testing.T, log *bytes.Buffer, served *sim.Result) {
	t.Helper()
	replayed, err := Replay(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	a, b := *served, *replayed
	a.Engine, b.Engine = "", ""
	aj, err := json.Marshal(&a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(&b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("offline replay diverges from serving session:\nserved:   %s\nreplayed: %s", aj, bj)
	}
}

func TestServeDrainIdempotent(t *testing.T) {
	srv, ts := newTestServer(t, Config{M: 1})
	postJob(t, ts, `{"w":3,"l":3,"deadline":9,"profit":2}`)
	r1 := srv.Drain()
	r2 := srv.Drain()
	if r1 != r2 {
		t.Fatal("Drain returned different results")
	}
}

func TestServeConfigErrors(t *testing.T) {
	if _, err := New(Config{M: 1, Sched: "nope"}); err == nil {
		t.Error("unknown scheduler accepted")
	}
	if _, err := New(Config{M: 0}); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := New(Config{M: 1, QueueDepth: -1}); err == nil {
		t.Error("negative queue depth accepted")
	}
}
