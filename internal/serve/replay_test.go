package serve

import (
	"bytes"
	"strings"
	"testing"
)

func TestSynthesizeDAG(t *testing.T) {
	cases := []struct{ w, l int64 }{
		{1, 1}, {5, 1}, {4, 4}, {7, 2}, {20, 4}, {32, 4}, {100, 3}, {17, 16},
	}
	for _, tc := range cases {
		g, err := synthesizeDAG(tc.w, tc.l)
		if err != nil {
			t.Fatalf("synthesize(%d,%d): %v", tc.w, tc.l, err)
		}
		if g.TotalWork() != tc.w || g.Span() != tc.l {
			t.Errorf("synthesize(%d,%d): W=%d L=%d", tc.w, tc.l, g.TotalWork(), g.Span())
		}
	}
	for _, tc := range []struct{ w, l int64 }{{0, 0}, {1, 2}, {0, 1}, {-3, 1}} {
		if _, err := synthesizeDAG(tc.w, tc.l); err == nil {
			t.Errorf("synthesize(%d,%d) accepted", tc.w, tc.l)
		}
	}
	// The node cap rejects absurd scalar specs instead of materializing them.
	if _, err := synthesizeDAG(1<<20, 1); err == nil {
		t.Error("giant block accepted")
	}
	if _, err := synthesizeDAG(1<<30, 2); err == nil {
		t.Error("giant fringe accepted")
	}
}

func TestReadReplayErrors(t *testing.T) {
	if _, _, err := ReadReplay(strings.NewReader("")); err == nil {
		t.Error("empty log accepted")
	}
	if _, _, err := ReadReplay(strings.NewReader("{\"type\":\"job\"}\n")); err == nil {
		t.Error("missing header accepted")
	}
	if _, _, err := ReadReplay(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage header accepted")
	}
	log := "{\"type\":\"header\",\"m\":2,\"sched\":\"s\",\"eps\":1,\"speed\":\"1\"}\nnot a job\n"
	if _, _, err := ReadReplay(strings.NewReader(log)); err == nil {
		t.Error("garbage job line accepted")
	}
}

func TestReplayHeaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rw := &replayWriter{w: &buf}
	if err := rw.header(Config{M: 3, Sched: "swc", Eps: 0.5}); err != nil {
		t.Fatal(err)
	}
	h, jobs, err := ReadReplay(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.M != 3 || h.Sched != "swc" || h.Eps != 0.5 || h.Speed != "1" || len(jobs) != 0 {
		t.Fatalf("header = %+v, jobs = %d", h, len(jobs))
	}
}
