package serve

import (
	"net/http"
	"os"
	"testing"
)

// engineCost measures the per-submission engine-path cost of a fresh
// single-shard daemon, with the shard's observability registry either live
// (the instrumented path: stage timers + histogram observes) or nil (the
// zero-cost idiom: every timer is gated behind one pointer check).
func engineCost(b2 *testing.T, instrumented bool) float64 {
	r := testing.Benchmark(func(b *testing.B) {
		srv, err := New(Config{M: 8, QueueDepth: 1, TickInterval: -1})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Drain()
		parkEngines(b, srv)
		sh := srv.shards[0]
		if !instrumented {
			sh.obsReg = nil // engine parked: only this goroutine touches it
		}
		spec := JobSpec{W: 16, L: 2, Deadline: 40, Profit: ScalarProfit(3)}
		clock := int64(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep := sh.handleSubmit(spec, "", nil)
			if rep.status != http.StatusOK {
				b.Fatalf("status %d: %s", rep.status, rep.err)
			}
			if i%64 == 63 {
				clock += 8
				sh.advance(clock)
			}
		}
	})
	return float64(r.NsPerOp())
}

// TestObsOverheadGuard is the PR 8 observability cost gate, run by
// `make obs-guard` with SPAA_OBS_GUARD=1 (skipped otherwise: it runs real
// benchmarks and is too noisy for the ordinary test suite).
//
// The instrumented engine path adds two monotonic-clock reads and one
// histogram observe per submission against the nil-registry path, which
// compiles down to a single pointer check. The gate pins the instrumented
// cost at ≤ 1.05× the nil-path cost OR ≤ 350 ns/op of absolute overhead,
// so the always-on /metrics pipeline can never quietly grow into a tax on
// the submission path. The absolute arm exists because the overhead is
// fixed arithmetic while the denominator keeps shrinking: PR 9's
// scalar-spec cache cut the engine path from ~6.6 µs to ~3 µs, which
// would fail a pure ratio gate even though the instrumentation itself got
// no more expensive (~170 ns, down from ~260 ns at PR 8) — an engine
// speedup must not read as an observability regression. A real tax (an
// added marshal, a lock, a log build) costs microseconds and fails both
// arms. Runs are interleaved and the best of each side is compared, which
// cancels the shared-host noise that a single pair of runs would inherit.
func TestObsOverheadGuard(t *testing.T) {
	if os.Getenv("SPAA_OBS_GUARD") == "" {
		t.Skip("set SPAA_OBS_GUARD=1 to run the observability overhead gate")
	}
	const rounds = 3
	best := func(vals []float64) float64 {
		m := vals[0]
		for _, v := range vals[1:] {
			if v < m {
				m = v
			}
		}
		return m
	}
	var on, off []float64
	for i := 0; i < rounds; i++ {
		off = append(off, engineCost(t, false))
		on = append(on, engineCost(t, true))
	}
	onNs, offNs := best(on), best(off)
	ratio := onNs / offNs
	t.Logf("engine path: %.0f ns/op instrumented vs %.0f ns/op nil-registry (ratio %.3f, overhead %.0f ns)",
		onNs, offNs, ratio, onNs-offNs)
	if ratio > 1.05 && onNs-offNs > 350 {
		t.Errorf("instrumented engine path costs %.3fx the nil-registry path (%.0f ns overhead; budget 1.05x or 350 ns)",
			ratio, onNs-offNs)
	}
}
