package serve

import (
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"dagsched/internal/obs"
	"dagsched/internal/telemetry"
	"dagsched/internal/trace"
)

// serverObs holds the HTTP-layer observability state: request latency
// histograms, not-ready counters, and drain-phase timings. Unlike the
// per-shard registries (engine goroutine only), handlers hit this from many
// goroutines, so a mutex guards the registry. All methods are nil-safe.
type serverObs struct {
	mu  sync.Mutex
	reg telemetry.Registry
}

func (o *serverObs) inc(name string, delta int64) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.reg.Inc(name, delta)
	o.mu.Unlock()
}

func (o *serverObs) observe(name string, v float64) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.reg.Observe(name, v)
	o.mu.Unlock()
}

func (o *serverObs) snapshot() *telemetry.Registry {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.reg.Clone()
}

// The metric inventory: every family /metrics exposes, with its exposition
// name, help text, and kind. The golden test pins these — adding a family is
// a deliberate, reviewed change to the scrape contract.
var (
	descReady    = obs.Desc{Name: "serve_ready", Help: "1 when the daemon is accepting work (recovery done, not draining, durability intact).", Kind: obs.Gauge}
	descDraining = obs.Desc{Name: "serve_draining", Help: "1 once a drain has started.", Kind: obs.Gauge}
	descDegraded = obs.Desc{Name: "serve_degraded", Help: "1 when a durability failure has degraded the daemon.", Kind: obs.Gauge}
	descShards   = obs.Desc{Name: "serve_shards", Help: "Configured engine shard count.", Kind: obs.Gauge}
	descUptime   = obs.Desc{Name: "serve_uptime_seconds", Help: "Seconds since the daemon started.", Kind: obs.Gauge}

	descNotReady = obs.Desc{Name: "serve_not_ready_total", Help: "Readiness probes answered 503, by reason.", Kind: obs.Counter}
	descPlacer   = obs.Desc{Name: "serve_placer_decisions_total", Help: "Placer routing decisions: keyed affinity, lowest pressure, second-choice spill.", Kind: obs.Counter}
	descTraces   = obs.Desc{Name: "serve_request_traces_total", Help: "Request traces captured (the /debug/requests ring keeps the most recent).", Kind: obs.Counter}

	descHTTPUs     = obs.Desc{Name: "serve_http_request_us", Help: "End-to-end HTTP latency of the submission route, in microseconds.", Kind: obs.Histogram}
	descDrainUs    = obs.Desc{Name: "serve_drain_phase_us", Help: "Drain phase durations (quiesce all shards, then finalize), in microseconds.", Kind: obs.Histogram}
	descBatchItems = obs.Desc{Name: "serve_batch_items", Help: "Items per POST /v1/jobs:batch request.", Kind: obs.Histogram}

	descAccepted   = obs.Desc{Name: "serve_accepted_total", Help: "Submissions committed to a shard's session.", Kind: obs.Counter}
	descVerdicts   = obs.Desc{Name: "serve_submissions_total", Help: "Admission verdicts acknowledged, by shard and verdict.", Kind: obs.Counter}
	descIdem       = obs.Desc{Name: "serve_idempotent_replays_total", Help: "Retries answered from the idempotency table.", Kind: obs.Counter}
	descBadReq     = obs.Desc{Name: "serve_bad_request_total", Help: "Submissions rejected for malformed specs.", Kind: obs.Counter}
	descReplayErr  = obs.Desc{Name: "serve_replay_error_total", Help: "Replay-log append failures, by shard.", Kind: obs.Counter}
	descDegrEvents = obs.Desc{Name: "serve_degraded_events_total", Help: "Durability failures observed, by shard.", Kind: obs.Counter}
	descCkpts      = obs.Desc{Name: "serve_checkpoints_total", Help: "Checkpoints taken, by shard (monotone across restarts).", Kind: obs.Counter}
	descRecoveries = obs.Desc{Name: "serve_recoveries_total", Help: "Times this shard's durable state was recovered at start.", Kind: obs.Counter}
	descDrains     = obs.Desc{Name: "serve_drains_total", Help: "Completed drains, by shard.", Kind: obs.Counter}
	descReplayed   = obs.Desc{Name: "serve_recovery_replayed_total", Help: "Job records replayed during crash recovery, by shard.", Kind: obs.Counter}

	descBandOcc   = obs.Desc{Name: "serve_band_occupancy", Help: "Scheduler S band occupancy of the shard's capacity slice (0..1+).", Kind: obs.Gauge}
	descParkedDep = obs.Desc{Name: "serve_parked_depth", Help: "Jobs parked in P awaiting band capacity.", Kind: obs.Gauge}
	descMailbox   = obs.Desc{Name: "serve_mailbox_depth", Help: "Requests queued in the shard's mailbox.", Kind: obs.Gauge}
	descPressure  = obs.Desc{Name: "serve_pressure_ewma", Help: "The EWMA pressure signal the placer routes on.", Kind: obs.Gauge}
	descClock     = obs.Desc{Name: "serve_session_clock", Help: "The shard's simulated-time clock, in ticks.", Kind: obs.Gauge}
	descLive      = obs.Desc{Name: "serve_live_jobs", Help: "Jobs currently live in the shard's session.", Kind: obs.Gauge}
	descPending   = obs.Desc{Name: "serve_pending_jobs", Help: "Committed jobs not yet completed or expired.", Kind: obs.Gauge}
	descWALRecs   = obs.Desc{Name: "serve_wal_records", Help: "WAL records appended by this process, by shard.", Kind: obs.Gauge}

	descTickerWakes = obs.Desc{Name: "serve_ticker_wakeups_total", Help: "Engine ticker wakeups, by shard (zero under the event-jump clock).", Kind: obs.Counter}
	descClockJumps  = obs.Desc{Name: "serve_clock_jumps_total", Help: "Event-jump timer fires, by shard (zero under the ticker clock).", Kind: obs.Counter}
	descJumpTicks   = obs.Desc{Name: "serve_clock_jump_ticks", Help: "Simulated ticks advanced per event-jump timer fire.", Kind: obs.Histogram}

	descSubmitUs = obs.Desc{Name: "serve_submit_engine_us", Help: "Engine-path submission latency (dequeue to commit), in microseconds.", Kind: obs.Histogram}
	descBatchUs  = obs.Desc{Name: "serve_batch_engine_us", Help: "Engine-path latency of one batch group (dequeue to group commit), in microseconds.", Kind: obs.Histogram}
	descWaitUs   = obs.Desc{Name: "serve_mailbox_wait_us", Help: "Mailbox queue wait (handler enqueue to engine dequeue), in microseconds.", Kind: obs.Histogram}
	descAppendUs = obs.Desc{Name: "serve_wal_append_us", Help: "WAL append latency including any per-record fsync, in microseconds.", Kind: obs.Histogram}
	descFsyncUs  = obs.Desc{Name: "serve_wal_fsync_us", Help: "WAL fsync latency, in microseconds.", Kind: obs.Histogram}
	descCkptUs   = obs.Desc{Name: "serve_checkpoint_us", Help: "Checkpoint duration (fold, atomic replace, WAL reset), in microseconds.", Kind: obs.Histogram}
	descRecovUs  = obs.Desc{Name: "serve_recovery_duration_us", Help: "Crash-recovery replay duration at start, in microseconds.", Kind: obs.Histogram}
)

// Machine-readable error reasons: the "reason" field of the unified error
// envelope every 4xx/5xx body carries (errorResponse, per-item batch
// statuses, /readyz). The first three double as serve_not_ready_total's
// reason label.
const (
	reasonRecovering = "recovering"
	reasonDraining   = "draining"
	reasonDegraded   = "degraded"
	reasonBadRequest = "bad-request"
	reasonNotFound   = "not-found"
	reasonTooLarge   = "too-large"
	reasonQueueFull  = "queue-full"
	reasonInternal   = "internal"
)

func boolGauge(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// buildExposition renders the whole scrape from the per-shard stats replies
// (each carrying a cloned observability registry taken on its engine
// goroutine) plus the server-level state. Per-shard families carry a
// shard="<i>" label; server-level families carry none.
func (s *Server) buildExposition(replies []shardStatsReply) *obs.Exposition {
	e := obs.NewExposition()

	e.AddInt(descReady, boolGauge(s.Ready()))
	e.AddInt(descDraining, boolGauge(s.draining.Load()))
	e.AddInt(descDegraded, boolGauge(s.Degraded() != ""))
	e.AddInt(descShards, int64(len(s.shards)))
	e.Add(descUptime, time.Since(s.start).Seconds())

	srvReg := s.metrics.snapshot()
	for _, reason := range []string{reasonDegraded, reasonDraining, reasonRecovering} {
		e.AddInt(descNotReady, srvReg.Counter("serve.not_ready."+reason), "reason", reason)
	}
	e.AddInt(descPlacer, s.placer.keyed.Load(), "decision", routeKeyed)
	e.AddInt(descPlacer, s.placer.pressure.Load(), "decision", routePressure)
	e.AddInt(descPlacer, s.placer.spill.Load(), "decision", routeSpill)
	e.AddInt(descTraces, s.traces.Total())
	e.AddHist(descHTTPUs, srvReg.Hist("serve.http.jobs_us"), "route", "jobs")
	e.AddHist(descHTTPUs, srvReg.Hist("serve.http.jobs_batch_us"), "route", "jobs_batch")
	e.AddHist(descBatchItems, srvReg.Hist("serve.http.batch_items"))
	e.AddHist(descDrainUs, srvReg.Hist("serve.drain.quiesce_us"), "phase", "quiesce")
	e.AddHist(descDrainUs, srvReg.Hist("serve.drain.finalize_us"), "phase", "finalize")

	for i, rep := range replies {
		shard := strconv.Itoa(i)
		c := rep.summary.Counters
		e.AddInt(descAccepted, c["serve.accepted"], "shard", shard)
		e.AddInt(descVerdicts, c["serve.admitted"], "shard", shard, "verdict", string(DecisionAdmitted))
		e.AddInt(descVerdicts, c["serve.parked"], "shard", shard, "verdict", string(DecisionParked))
		e.AddInt(descVerdicts, c["serve.rejected"], "shard", shard, "verdict", string(DecisionRejected))
		e.AddInt(descIdem, c["serve.idempotent_replays"], "shard", shard)
		e.AddInt(descBadReq, c["serve.bad_request"], "shard", shard)
		e.AddInt(descReplayErr, c["serve.replay_error"], "shard", shard)
		e.AddInt(descDegrEvents, c["serve.degraded_events"], "shard", shard)
		e.AddInt(descCkpts, c["serve.checkpoints"], "shard", shard)
		e.AddInt(descRecoveries, c["serve.recoveries"], "shard", shard)
		e.AddInt(descDrains, c["serve.drains"], "shard", shard)
		e.AddInt(descReplayed, rep.obs.Counter("serve.recovery_replayed"), "shard", shard)
		e.AddInt(descTickerWakes, rep.obs.Counter("serve.ticker_wakeups"), "shard", shard)
		e.AddInt(descClockJumps, rep.obs.Counter("serve.clock_jumps"), "shard", shard)

		st := rep.stats
		e.Add(descBandOcc, st.BandOccupancy, "shard", shard)
		e.AddInt(descParkedDep, int64(st.ParkedDepth), "shard", shard)
		e.AddInt(descMailbox, int64(st.MailboxDepth), "shard", shard)
		e.Add(descPressure, st.Pressure, "shard", shard)
		e.AddInt(descClock, st.Now, "shard", shard)
		e.AddInt(descLive, int64(st.Live), "shard", shard)
		e.AddInt(descPending, int64(st.Pending), "shard", shard)
		var walRecords int64
		if st.WAL != nil {
			walRecords = st.WAL.Records
		}
		e.AddInt(descWALRecs, walRecords, "shard", shard)

		e.AddHist(descSubmitUs, rep.obs.Hist("serve.submit_engine_us"), "shard", shard)
		e.AddHist(descBatchUs, rep.obs.Hist("serve.batch_engine_us"), "shard", shard)
		e.AddHist(descWaitUs, rep.obs.Hist("serve.mailbox_wait_us"), "shard", shard)
		e.AddHist(descJumpTicks, rep.obs.Hist("serve.clock_jump_ticks"), "shard", shard)
		e.AddHist(descAppendUs, rep.obs.Hist("serve.wal_append_us"), "shard", shard)
		e.AddHist(descFsyncUs, rep.obs.Hist("serve.wal_fsync_us"), "shard", shard)
		e.AddHist(descCkptUs, rep.obs.Hist("serve.checkpoint_us"), "shard", shard)
		e.AddHist(descRecovUs, rep.obs.Hist("serve.recovery_duration_us"), "shard", shard)
	}
	return e
}

// gatherShardStats collects every shard's stats reply through its mailbox
// (falling back to a direct read once an engine has exited and its state is
// sealed). Shared by /v1/stats and /metrics.
func (s *Server) gatherShardStats() []shardStatsReply {
	replies := make([]shardStatsReply, len(s.shards))
	for i, sh := range s.shards {
		msg := statsMsg{reply: make(chan shardStatsReply, 1)}
		rep, ok := ask(sh, msg.reply, msg)
		if !ok {
			rep = sh.handleStats() // engine exited; state is sealed and safe to read
		}
		replies[i] = rep
	}
	return replies
}

// handleMetrics serves GET /metrics in the Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	e := s.buildExposition(s.gatherShardStats())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = e.Write(w)
}

// handleDebugRequests serves GET /debug/requests: the request-trace ring as a
// Perfetto (Chrome trace-event) JSON document, one track per request with a
// span per pipeline stage.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	ct := trace.RequestSpans(s.traces.Snapshot())
	w.Header().Set("Content-Type", "application/json")
	_ = ct.WriteJSON(w)
}

// DebugHandler returns the diagnostics mux for Config/-debug-addr: /metrics,
// /debug/requests, and net/http/pprof. It is meant for a second listener so
// profile captures never compete with serving traffic, but every route is
// safe to mount anywhere (scrapes go through the shard mailboxes like any
// other read).
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
