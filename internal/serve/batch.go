package serve

import (
	"bytes"
	"cmp"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"dagsched/internal/obs"
)

// POST /v1/jobs:batch amortizes the wire overhead the single-job endpoint
// pays per submission: one HTTP request and one body parse carry up to
// Config.MaxBatchItems specs, the placer groups them per shard, and each
// shard group crosses its engine mailbox as ONE message. The engine then
// processes the group in a single group-commit window — under FsyncAlways
// the whole group shares one WAL flush instead of one per record — and the
// per-item verdicts come back in request order, byte-identical to what the
// same specs submitted sequentially would have received. Items fail
// individually: a malformed spec 400s its slot, a full shard mailbox 429s
// its group, and the rest of the batch proceeds.

// BatchItem is one element of the POST /v1/jobs:batch request array: a job
// spec plus an optional per-item idempotency key (the array-body analogue of
// the Idempotency-Key header).
type BatchItem struct {
	JobSpec
	Key string `json:"key,omitempty"`
}

// BatchItemResult is one element of the batch response, in request order.
// Status mirrors what the single-job endpoint would have returned for the
// same spec: 200 with the verdict in Response, or an error code with the
// human-readable message in Error and the machine-readable token in Reason —
// the same {error, reason} pair every top-level error body carries.
type BatchItemResult struct {
	Status   int          `json:"status"`
	Response *JobResponse `json:"response,omitempty"`
	Error    string       `json:"error,omitempty"`
	Reason   string       `json:"reason,omitempty"`
}

// BatchResponse is the POST /v1/jobs:batch response body.
type BatchResponse struct {
	Items []BatchItemResult `json:"items"`
}

// splitJSONArray splits a JSON array body into its element byte ranges
// (views into data) without decoding them, so each element can take the
// fast-path parser independently. Only the array structure is validated
// here; element-level garbage surfaces as that item's parse error.
func splitJSONArray(data []byte) ([][]byte, error) {
	i := skipJSONSpace(data, 0)
	if i >= len(data) || data[i] != '[' {
		return nil, fmt.Errorf("batch body must be a JSON array of job specs")
	}
	i = skipJSONSpace(data, i+1)
	if i < len(data) && data[i] == ']' {
		return nil, nil
	}
	var elems [][]byte
	for {
		start := i
		depth := 0
		inStr := false
		esc := false
	scan:
		for ; i < len(data); i++ {
			c := data[i]
			if inStr {
				switch {
				case esc:
					esc = false
				case c == '\\':
					esc = true
				case c == '"':
					inStr = false
				}
				continue
			}
			switch c {
			case '"':
				inStr = true
			case '{', '[':
				depth++
			case '}', ']':
				if depth == 0 {
					break scan // the array's own closer (or a stray one)
				}
				depth--
			case ',':
				if depth == 0 {
					break scan
				}
			}
		}
		if i >= len(data) || depth != 0 || inStr {
			return nil, fmt.Errorf("unterminated batch array")
		}
		elem := bytes.TrimSpace(data[start:i])
		if len(elem) == 0 {
			return nil, fmt.Errorf("malformed batch array: empty element")
		}
		elems = append(elems, elem)
		switch data[i] {
		case ',':
			i = skipJSONSpace(data, i+1)
		case ']':
			return elems, nil
		default:
			return nil, fmt.Errorf("malformed batch array")
		}
	}
}

func (s *Server) handleBatchPost(w http.ResponseWriter, r *http.Request) {
	received := time.Now()
	reqID := r.Header.Get("X-Request-Id")
	if len(reqID) > maxRequestIDLen {
		writeError(w, http.StatusBadRequest, reasonBadRequest,
			fmt.Sprintf("request id longer than %d bytes", maxRequestIDLen))
		return
	}
	if reqID == "" {
		reqID = obs.NewRequestID()
	}
	w.Header().Set("X-Request-Id", reqID)
	limit := s.cfg.MaxBodyBytes
	if limit <= 0 {
		limit = DefaultMaxBodyBytes
	}
	// A batch may carry MaxBatchItems specs, so its body budget scales with
	// the per-job limit rather than being squeezed into it.
	limit *= int64(s.cfg.MaxBatchItems)
	rb := getWireBuf()
	defer putWireBuf(rb)
	var err error
	rb.b, err = readAllInto(rb.b, http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, reasonTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, reasonBadRequest, err.Error())
		return
	}
	elems, err := splitJSONArray(rb.b)
	if err != nil {
		writeError(w, http.StatusBadRequest, reasonBadRequest, err.Error())
		return
	}
	if len(elems) == 0 {
		writeError(w, http.StatusBadRequest, reasonBadRequest, "empty batch")
		return
	}
	if len(elems) > s.cfg.MaxBatchItems {
		writeError(w, http.StatusRequestEntityTooLarge, reasonTooLarge,
			fmt.Sprintf("batch of %d items exceeds max-batch %d", len(elems), s.cfg.MaxBatchItems))
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, reasonDraining, "draining")
		return
	}

	// Parse each element (fast path first) and group the survivors per shard.
	// Keyed items route by key exactly as on the single-job endpoint, so
	// duplicate keys within one batch land on the same shard in order and the
	// later ones collapse onto the stored verdict.
	results := make([]BatchItemResult, len(elems))
	groups := make([][]batchItem, len(s.shards))
	for idx, e := range elems {
		spec, keyView, ok := parseJobSpecFast(e, true)
		key := string(keyView) // copied: it outlives the pooled body buffer
		if !ok {
			var it BatchItem
			dec := json.NewDecoder(bytes.NewReader(e))
			dec.DisallowUnknownFields()
			if derr := dec.Decode(&it); derr != nil {
				results[idx] = BatchItemResult{Status: http.StatusBadRequest, Error: derr.Error(), Reason: reasonBadRequest}
				continue
			}
			spec, key = it.JobSpec, it.Key
		}
		if len(key) > maxIdempotencyKeyLen {
			results[idx] = BatchItemResult{
				Status: http.StatusBadRequest,
				Error:  fmt.Sprintf("idempotency key longer than %d bytes", maxIdempotencyKeyLen),
				Reason: reasonBadRequest,
			}
			continue
		}
		sh, _ := s.placer.routeTraced(key)
		groups[sh.idx] = append(groups[sh.idx], batchItem{spec: spec, key: key, idx: idx})
	}

	// Dispatch every shard group, then collect. Sending all before awaiting
	// any lets the shards work their groups concurrently.
	type dispatched struct {
		sh    *shard
		items []batchItem
		reply chan batchReply
	}
	var (
		sent []dispatched
		tr   *submitTrace // carried by the first dispatched group only
	)
	for gi, group := range groups {
		if len(group) == 0 {
			continue
		}
		sh := s.shards[gi]
		var gtr *submitTrace
		if tr == nil {
			gtr = &submitTrace{reqID: reqID, enqueued: time.Now()}
		}
		msg := batchMsg{items: group, tr: gtr, reply: make(chan batchReply, 1)}
		select {
		case sh.reqs <- msg:
			if gtr != nil {
				tr = gtr
			}
			sent = append(sent, dispatched{sh: sh, items: group, reply: msg.reply})
		default:
			// This shard is behind; backpressure its items, not the batch.
			for _, it := range group {
				results[it.idx] = BatchItemResult{Status: http.StatusTooManyRequests, Error: "submission queue full", Reason: reasonQueueFull}
			}
		}
	}
	for _, d := range sent {
		rep, ok := await(d.sh, d.reply)
		if !ok {
			// Enqueued but never dequeued: the engine drained first.
			for _, it := range d.items {
				results[it.idx] = BatchItemResult{Status: http.StatusServiceUnavailable, Error: "draining", Reason: reasonDraining}
			}
			continue
		}
		for k, it := range d.items {
			r := rep.replies[k]
			if r.status == http.StatusOK {
				resp := r.resp
				results[it.idx] = BatchItemResult{Status: http.StatusOK, Response: &resp}
			} else {
				results[it.idx] = BatchItemResult{Status: r.status, Error: r.err, Reason: cmp.Or(r.reason, reasonInternal)}
			}
		}
	}

	now := time.Now()
	s.metrics.observe("serve.http.jobs_batch_us", float64(now.Sub(received).Microseconds()))
	s.metrics.observe("serve.http.batch_items", float64(len(elems)))
	rt := obs.ReqTrace{ID: reqID, Shard: -1, Route: "batch", Stages: make([]obs.Stage, 0, 4)}
	rt.Stages = append(rt.Stages, obs.Stage{Name: "received", At: received})
	if tr != nil {
		for _, st := range []obs.Stage{
			{Name: "dequeued", At: tr.dequeued},
			{Name: "committed", At: tr.committed},
		} {
			if !st.At.IsZero() {
				rt.Stages = append(rt.Stages, st)
			}
		}
	}
	rt.Stages = append(rt.Stages, obs.Stage{Name: "replied", At: now})
	s.traces.Add(rt)
	if lg := s.logger(); lg.Enabled(r.Context(), slog.LevelDebug) {
		lg.Debug("batch", "reqId", reqID, "items", len(elems), "us", now.Sub(received).Microseconds())
	}
	writeBatchResponse(w, results)
}

// writeBatchResponse renders the batch body through the fast encoder,
// falling back to encoding/json when any item is off the fast path (a
// non-plain error string, an unencodable response). Both paths produce the
// same bytes for fast-path-able content.
func writeBatchResponse(w http.ResponseWriter, items []BatchItemResult) {
	rb := getWireBuf()
	b := append(rb.b, `{"items":[`...)
	ok := true
	for i := range items {
		if i > 0 {
			b = append(b, ',')
		}
		it := &items[i]
		b = append(b, `{"status":`...)
		b = strconv.AppendInt(b, int64(it.Status), 10)
		if it.Response != nil {
			b = append(b, `,"response":`...)
			if b, ok = appendJobResponse(b, it.Response); !ok {
				break
			}
		}
		if it.Error != "" {
			if !jsonPlain(it.Error) {
				ok = false
				break
			}
			b = append(b, `,"error":"`...)
			b = append(b, it.Error...)
			b = append(b, '"')
		}
		if it.Reason != "" {
			if !jsonPlain(it.Reason) {
				ok = false
				break
			}
			b = append(b, `,"reason":"`...)
			b = append(b, it.Reason...)
			b = append(b, '"')
		}
		b = append(b, '}')
	}
	rb.b = b
	if !ok {
		putWireBuf(rb)
		writeJSON(w, http.StatusOK, BatchResponse{Items: items})
		return
	}
	rb.b = append(rb.b, ']', '}', '\n')
	w.Header().Set("Content-Type", "application/json")
	// The body is fully rendered, so declare its length: the response goes
	// out identity-framed in one write instead of chunked.
	w.Header().Set("Content-Length", strconv.Itoa(len(rb.b)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(rb.b)
	putWireBuf(rb)
}
