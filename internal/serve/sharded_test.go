package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// submitToShard pushes a spec through one specific shard's mailbox, bypassing
// the placer, so tests can pin per-shard effects deterministically.
func submitToShard(t *testing.T, sh *shard, spec JobSpec, key string) submitReply {
	t.Helper()
	msg := submitMsg{spec: spec, key: key, reply: make(chan submitReply, 1)}
	sh.reqs <- msg
	return <-msg.reply
}

func TestShardedConfigValidation(t *testing.T) {
	if _, err := New(Config{M: 4, Shards: 8, TickInterval: -1}); err == nil ||
		!strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("shards > m: err = %v, want exceeds", err)
	}
	if _, err := New(Config{M: 4, Shards: -1, TickInterval: -1}); err == nil {
		t.Fatal("negative shards accepted")
	}
	srv, err := New(Config{M: 4, TickInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()
	if srv.Shards() != 1 {
		t.Fatalf("default Shards() = %d, want 1", srv.Shards())
	}
}

// TestShardedIDStriping: shard i of N assigns IDs i+1, i+1+N, …, so IDs are
// globally unique and the owner is recomputable as (id-1) mod N.
func TestShardedIDStriping(t *testing.T) {
	srv, err := New(Config{M: 8, Shards: 4, TickInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()
	spec := JobSpec{W: 8, L: 2, Deadline: 30, Profit: ScalarProfit(2)}
	for round := 0; round < 3; round++ {
		for i, sh := range srv.shards {
			rep := submitToShard(t, sh, spec, "")
			want := i + 1 + round*4
			if rep.status != 200 || rep.resp.ID != want {
				t.Fatalf("shard %d round %d: %+v, want ID %d", i, round, rep, want)
			}
			if got := srv.placer.shardFor(rep.resp.ID); got != sh {
				t.Fatalf("shardFor(%d) = shard %d, want %d", rep.resp.ID, got.idx, i)
			}
		}
	}
	// The partition covers M: 4 shards of 2 processors each.
	for _, sh := range srv.shards {
		if sh.m != 2 {
			t.Fatalf("shard %d has m=%d, want 2", sh.idx, sh.m)
		}
	}
}

// TestShardedDrainMatchesReplay is the sharded bit-identity contract: the
// replay log's route records partition the jobs exactly as the daemon did,
// and the per-shard offline re-simulations merge into the drained Result.
func TestShardedDrainMatchesReplay(t *testing.T) {
	var replayLog bytes.Buffer
	srv, err := New(Config{M: 8, Shards: 4, TickInterval: -1, ReplayLog: &replayLog})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		w := int64(4 + i%17)
		l := int64(1 + i%3)
		spec := JobSpec{W: w, L: l, Deadline: int64(20 + i%9), Profit: ScalarProfit(float64(1 + i%5))}
		sh := srv.shards[i%4]
		if i%3 == 0 {
			// Mix in placer-routed traffic so route records, not the stripe
			// pattern, carry the partition.
			sh = srv.placer.route("")
		}
		if rep := submitToShard(t, sh, spec, ""); rep.status != 200 {
			t.Fatalf("submit %d: %+v", i, rep)
		}
		if i%5 == 4 {
			srv.Advance(int64(i))
		}
	}
	res := srv.Drain()

	h, jobs, err := ReadReplay(bytes.NewReader(replayLog.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h.Shards != 4 || h.M != 8 {
		t.Fatalf("replay header = %+v, want shards=4 m=8", h)
	}
	if len(jobs) != 24 {
		t.Fatalf("replay log holds %d jobs, want 24", len(jobs))
	}
	replayed, err := Replay(bytes.NewReader(replayLog.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	a, b := *res, *replayed
	a.Engine, b.Engine = "", ""
	aj, _ := json.Marshal(&a)
	bj, _ := json.Marshal(&b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("sharded drain diverges from replay:\nserved:   %s\nreplayed: %s", aj, bj)
	}
	if res.M != 8 {
		t.Fatalf("merged result M = %d, want 8", res.M)
	}
}

// TestUnshardedReplayLogBytesUnchanged pins the -shards=1 byte-identity
// promise at the log level: a single-shard daemon writes no shards field and
// no route records, exactly the pre-sharding format.
func TestUnshardedReplayLogBytesUnchanged(t *testing.T) {
	var replayLog bytes.Buffer
	srv, err := New(Config{M: 4, TickInterval: -1, ReplayLog: &replayLog})
	if err != nil {
		t.Fatal(err)
	}
	if rep := submitToShard(t, srv.shards[0], JobSpec{W: 8, L: 2, Deadline: 30, Profit: ScalarProfit(2)}, ""); rep.status != 200 {
		t.Fatalf("submit: %+v", rep)
	}
	srv.Drain()
	lines := strings.Split(strings.TrimSpace(replayLog.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("single-shard log has %d lines, want header + job:\n%s", len(lines), replayLog.String())
	}
	if strings.Contains(lines[0], "shards") || strings.Contains(lines[0], "shard") {
		t.Fatalf("single-shard header leaks shard fields: %s", lines[0])
	}
	for _, l := range lines[1:] {
		if strings.Contains(l, `"type":"route"`) {
			t.Fatalf("single-shard log holds a route record: %s", l)
		}
	}
}

// TestShardedStatsBody is the satellite body-shape table test for /v1/stats:
// the per-shard blocks appear exactly when sharded, carry the verdict counts
// and pressure inputs, and the top level stays the aggregate.
func TestShardedStatsBody(t *testing.T) {
	cases := []struct {
		name       string
		shards     int
		m          int
		wantBlocks int
	}{
		{name: "unsharded", shards: 1, m: 4, wantBlocks: 0},
		{name: "two", shards: 2, m: 4, wantBlocks: 2},
		{name: "four", shards: 4, m: 8, wantBlocks: 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, ts := newTestServer(t, Config{M: tc.m, Shards: tc.shards})
			// One admitted job per shard, pushed directly so counts are exact.
			for _, sh := range srv.shards {
				if rep := submitToShard(t, sh, JobSpec{W: 4, L: 2, Deadline: 30, Profit: ScalarProfit(2)}, ""); rep.status != 200 {
					t.Fatalf("shard %d submit: %+v", sh.idx, rep)
				}
			}
			var raw map[string]json.RawMessage
			if code := getJSON(t, ts.URL+"/v1/stats", &raw); code != 200 {
				t.Fatalf("stats code = %d", code)
			}
			if tc.wantBlocks == 0 {
				if _, ok := raw["shards"]; ok {
					t.Fatal("unsharded stats body grew a shards field")
				}
			}
			var stats StatsResponse
			if err := json.Unmarshal(mustMarshal(t, raw), &stats); err != nil {
				t.Fatal(err)
			}
			if stats.M != tc.m || stats.Scheduler == "" {
				t.Fatalf("aggregate header = %+v", stats)
			}
			if len(stats.Shards) != tc.wantBlocks {
				t.Fatalf("stats.Shards has %d blocks, want %d", len(stats.Shards), tc.wantBlocks)
			}
			wantTotal := int64(tc.shards) // one accepted job per shard
			if got := stats.Telemetry.Counters["serve.accepted"]; got != wantTotal {
				t.Fatalf("aggregate serve.accepted = %d, want %d", got, wantTotal)
			}
			part := []int{stats.M}
			if tc.shards > 1 {
				part = part[:0]
				for _, b := range stats.Shards {
					part = append(part, b.M)
				}
			}
			sum := 0
			for _, m := range part {
				sum += m
			}
			if sum != tc.m {
				t.Fatalf("shard capacities %v do not cover m=%d", part, tc.m)
			}
			for i, b := range stats.Shards {
				if b.Shard != i {
					t.Fatalf("block %d labeled shard %d", i, b.Shard)
				}
				if b.Accepted != 1 || b.Admitted+b.Parked != 1 {
					t.Fatalf("shard %d verdict counts = %+v, want one accepted", i, b)
				}
				if b.BandOccupancy < 0 || b.ParkedDepth < 0 || b.MailboxDepth < 0 || b.Pressure < 0 {
					t.Fatalf("shard %d pressure inputs negative: %+v", i, b)
				}
			}
		})
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestShardedStatsWALAggregate: per-shard WAL positions roll up under the
// daemon's top directory, and each block reports its own subdirectory.
func TestShardedStatsWALAggregate(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newTestServer(t, Config{
		M: 4, Shards: 2, WALDir: dir, Fsync: FsyncAlways, CheckpointInterval: -1,
	})
	for _, sh := range srv.shards {
		if rep := submitToShard(t, sh, JobSpec{W: 4, L: 2, Deadline: 30, Profit: ScalarProfit(2)}, ""); rep.status != 200 {
			t.Fatalf("shard %d submit: %+v", sh.idx, rep)
		}
	}
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != 200 {
		t.Fatalf("stats code = %d", code)
	}
	if stats.WAL == nil || stats.WAL.Dir != dir {
		t.Fatalf("aggregate WAL = %+v, want dir %s", stats.WAL, dir)
	}
	if stats.WAL.Records != 2 {
		t.Fatalf("aggregate WAL records = %d, want 2", stats.WAL.Records)
	}
	for i, b := range stats.Shards {
		want := filepath.Join(dir, shardDirName(i))
		if b.WAL == nil || b.WAL.Dir != want {
			t.Fatalf("shard %d WAL = %+v, want dir %s", i, b.WAL, want)
		}
		if b.WAL.Records != 1 {
			t.Fatalf("shard %d WAL records = %d, want 1", i, b.WAL.Records)
		}
	}
}

// TestShardedQuiesceBlocksLateSubmissions is the two-phase drain regression
// (satellite 6): once a shard has quiesced, a submission can no longer commit
// — it gets 503 and leaves the shard's WAL and replay log untouched — so a
// signal landing mid-drain can never interleave an arrival into a log another
// shard is finalizing.
func TestShardedQuiesceBlocksLateSubmissions(t *testing.T) {
	var replayLog bytes.Buffer
	dir := t.TempDir()
	srv, err := New(Config{
		M: 4, Shards: 2, TickInterval: -1, ReplayLog: &replayLog,
		WALDir: dir, Fsync: FsyncAlways, CheckpointInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep := submitToShard(t, srv.shards[0], JobSpec{W: 4, L: 2, Deadline: 30, Profit: ScalarProfit(2)}, ""); rep.status != 200 {
		t.Fatalf("pre-drain submit: %+v", rep)
	}
	walPath := filepath.Join(dir, shardDirName(0), walFileName)
	before, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	logBefore := replayLog.Len()

	// Drain phase 1 only: quiesce shard 0 the way Drain does, then model the
	// mid-drain race — a submission arriving while other shards finalize.
	q := quiesceMsg{reply: make(chan struct{})}
	srv.shards[0].reqs <- q
	<-q.reply
	rep := submitToShard(t, srv.shards[0], JobSpec{W: 4, L: 2, Deadline: 30, Profit: ScalarProfit(2)}, "late-key")
	if rep.status != 503 || rep.err != "draining" {
		t.Fatalf("post-quiesce submit = %+v, want 503 draining", rep)
	}
	// Reads still work between the phases.
	look := lookupMsg{id: 1, reply: make(chan lookupReply, 1)}
	srv.shards[0].reqs <- look
	if rep := <-look.reply; !rep.found {
		t.Fatal("quiesced shard stopped serving reads")
	}

	res := srv.Drain()
	if len(res.Jobs) != 1 {
		t.Fatalf("drained result holds %d jobs, want 1 (late submission must not commit)", len(res.Jobs))
	}
	after, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// The final checkpoint truncates the WAL to its header; what matters is
	// that no job record for the late submission ever landed.
	if bytes.Contains(after, []byte("late-key")) || bytes.Contains(before, []byte("late-key")) {
		t.Fatal("late submission reached the WAL")
	}
	if got := replayLog.Len(); got != logBefore {
		t.Fatalf("replay log grew %d bytes after quiesce", got-logBefore)
	}
}

// TestShardedRecoveryRoundTrip: each shard recovers its own WAL; the merged
// recovery covers every acked job and the drained Result matches the offline
// shard-by-shard replay of the directory.
func TestShardedRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	mk := func(d string) (*Server, func()) {
		srv, err := New(Config{
			M: 4, Shards: 2, TickInterval: -1,
			WALDir: d, Fsync: FsyncAlways, CheckpointInterval: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return srv, func() { srv.Drain() }
	}
	srv, drain := mk(dir)
	var acked []submitReply
	for i := 0; i < 10; i++ {
		spec := JobSpec{W: int64(4 + i%7), L: int64(1 + i%2), Deadline: int64(25 + i%5), Profit: ScalarProfit(float64(1 + i%4))}
		rep := submitToShard(t, srv.shards[i%2], spec, fmt.Sprintf("key-%d", i))
		if rep.status != 200 {
			t.Fatalf("submit %d: %+v", i, rep)
		}
		acked = append(acked, rep)
		if i == 5 {
			if err := srv.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		srv.Advance(int64(i))
	}
	snap := snapshotDir(t, dir)
	drain()

	srv2, drain2 := mk(snap)
	rec := srv2.Recovery()
	if rec == nil || !rec.Recovered || rec.Jobs != 10 {
		t.Fatalf("merged recovery = %+v, want 10 jobs", rec)
	}
	if !srv2.Ready() {
		t.Fatal("recovered sharded server not ready")
	}
	// Every acked verdict replays verbatim on its owning shard (submissions
	// were pinned to shard i%2, so retries go to the same place).
	for i, want := range acked {
		got := submitToShard(t, srv2.shards[i%2], JobSpec{}, fmt.Sprintf("key-%d", i))
		if !got.resp.Replayed || got.resp.ID != want.resp.ID || got.resp.Decision != want.resp.Decision {
			t.Fatalf("key-%d after recovery: %+v, acked %+v", i, got.resp, want.resp)
		}
	}
	res := srv2.Drain()
	drain2()
	replayed, err := ReplayDir(snap)
	if err != nil {
		t.Fatal(err)
	}
	a, b := *res, *replayed
	a.Engine, b.Engine = "", ""
	aj, _ := json.Marshal(&a)
	bj, _ := json.Marshal(&b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("sharded recovery drain diverges from offline replay:\nserved:   %s\nreplayed: %s", aj, bj)
	}
}

// TestShardedLayoutDrift: a WAL directory written under one partition
// refuses to open under another, in every direction.
func TestShardedLayoutDrift(t *testing.T) {
	mkSharded := func(shards int) string {
		dir := t.TempDir()
		srv, err := New(Config{
			M: 4, Shards: shards, TickInterval: -1,
			WALDir: dir, Fsync: FsyncAlways, CheckpointInterval: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		submitToShard(t, srv.shards[0], JobSpec{W: 4, L: 2, Deadline: 30, Profit: ScalarProfit(2)}, "")
		srv.Drain()
		return dir
	}
	open := func(dir string, shards int) error {
		srv, err := New(Config{
			M: 4, Shards: shards, TickInterval: -1,
			WALDir: dir, Fsync: FsyncAlways, CheckpointInterval: -1,
		})
		if err == nil {
			srv.Drain()
		}
		return err
	}
	cases := []struct {
		name        string
		writeShards int
		openShards  int
		errHas      string
	}{
		{name: "sharded dir under unsharded config", writeShards: 2, openShards: 1, errHas: "refusing to recover"},
		{name: "flat dir under sharded config", writeShards: 1, openShards: 2, errHas: "unsharded"},
		{name: "fewer shards than directories", writeShards: 4, openShards: 2, errHas: "refusing to recover"},
		{name: "more shards than written", writeShards: 2, openShards: 4, errHas: "refusing to recover"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := mkSharded(tc.writeShards)
			err := open(dir, tc.openShards)
			if err == nil || !strings.Contains(err.Error(), tc.errHas) {
				t.Fatalf("err = %v, want %q", err, tc.errHas)
			}
		})
	}
}

// TestShardedTamperRefusal: a tampered verdict inside one shard's WAL stops
// the whole daemon from starting.
func TestShardedTamperRefusal(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Config{
		M: 4, Shards: 2, TickInterval: -1,
		WALDir: dir, Fsync: FsyncAlways, CheckpointInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep := submitToShard(t, srv.shards[1], JobSpec{W: 16, L: 4, Deadline: 40, Profit: ScalarProfit(10)}, ""); rep.status != 200 {
		t.Fatalf("submit: %+v", rep)
	}
	snap := snapshotDir(t, dir)
	srv.Drain()

	path := filepath.Join(snap, shardDirName(1), walFileName)
	payloads, _, err := scanWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	for _, p := range payloads {
		if bytes.Contains(p, []byte(`"type":"job"`)) {
			p = bytes.Replace(p, []byte(`"decision":"admitted"`), []byte(`"decision":"rejected"`), 1)
		}
		out.Write(frameRecord(p))
	}
	if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{
		M: 4, Shards: 2, TickInterval: -1,
		WALDir: snap, Fsync: FsyncAlways, CheckpointInterval: -1,
	})
	if err == nil || !strings.Contains(err.Error(), "commitment violated") {
		t.Fatalf("tampered shard WAL: err = %v, want commitment violation", err)
	}
	if !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("refusal does not name the offending shard: %v", err)
	}
}
