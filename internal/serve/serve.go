// Package serve is the scheduler-as-a-service layer: a long-running daemon
// that wraps the simulation engine's step-driven Session in a concurrent-safe,
// clock-driven loop behind an HTTP/JSON API.
//
// Architecture: a single engine goroutine owns the sim.Session, the
// scheduler, and the serving telemetry registry. HTTP handlers never touch
// that state — they send typed messages over a bounded mailbox channel and
// wait for the reply. A full mailbox is backpressure (the handler answers
// 429 without blocking); a draining server answers 503. A wall-clock ticker
// inside the engine goroutine advances the session, so simulated ticks track
// real time while the ordering of submissions against ticks stays whatever
// the mailbox serialized.
//
// Every accepted arrival is appended to a replay log (header line + one
// instance-wire job per line). Because the session stamps server-assigned
// ascending IDs and the engine is the exact code path batch Run uses,
// re-simulating the logged job set offline reproduces the serving session's
// Result bit-identically — whatever interleaving of submissions and ticks
// actually happened.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dagsched"
	"dagsched/internal/cliflags"
	"dagsched/internal/core"
	"dagsched/internal/rational"
	"dagsched/internal/sim"
	"dagsched/internal/telemetry"
	"dagsched/internal/workload"
)

// Config parameterizes a serving daemon.
type Config struct {
	// M is the number of processors; must be ≥ 1.
	M int
	// Sched selects the scheduler (cliflags roster); empty means "s".
	Sched string
	// Eps is the ε parameter for the paper schedulers (0 means 1.0).
	Eps float64
	// Speed is the machine speed; the zero value means 1.
	Speed rational.Rat
	// TickInterval is the wall time one simulated tick spans. 0 means the
	// 10ms default; negative disables the ticker entirely (the session then
	// advances only on drain — deterministic tests use this).
	TickInterval time.Duration
	// QueueDepth bounds the request mailbox; a full mailbox is answered
	// with 429. 0 means 64.
	QueueDepth int
	// ReplayLog, when non-nil, receives the session's replay log: a header
	// line followed by every accepted arrival in the instance wire format.
	// Writes happen only from the engine goroutine. For durability across
	// crashes use WALDir instead; ReplayLog is the offline-analysis tap.
	ReplayLog io.Writer
	// WALDir, when non-empty, makes the daemon crash-safe: every
	// acknowledged submission is framed, checksummed, and appended to a
	// write-ahead log in this directory before it is committed, engine
	// state is checkpointed periodically, and a restart over the same
	// directory recovers the pre-crash session bit-identically (or refuses
	// to start if it cannot). The directory is created if missing.
	WALDir string
	// Fsync selects the WAL flush policy; zero means FsyncAlways.
	Fsync FsyncPolicy
	// FsyncInterval is the flush cadence under FsyncInterval; 0 means
	// 100ms. Flushes piggyback on the engine ticker, so with the ticker
	// disabled the interval policy only flushes at checkpoints and drain.
	FsyncInterval time.Duration
	// CheckpointInterval is the wall-time cadence of engine-state
	// checkpoints (which also truncate the WAL). 0 means 30s; negative
	// checkpoints only at drain. Checkpoints ride the engine ticker, so a
	// disabled ticker also disables periodic checkpoints (tests drive
	// Checkpoint explicitly).
	CheckpointInterval time.Duration
	// MaxBodyBytes caps the POST /v1/jobs body; oversized requests are
	// answered 413. 0 means 1 MiB.
	MaxBodyBytes int64
}

// DefaultTickInterval is the wall-clock duration of one simulated tick.
const DefaultTickInterval = 10 * time.Millisecond

// DefaultFsyncInterval is the flush cadence under FsyncInterval.
const DefaultFsyncInterval = 100 * time.Millisecond

// DefaultCheckpointInterval is the cadence of engine-state checkpoints.
const DefaultCheckpointInterval = 30 * time.Second

// DefaultMaxBodyBytes caps the POST /v1/jobs body.
const DefaultMaxBodyBytes = 1 << 20

// Commitment values for JobResponse.Commitment: the durability of the
// admission verdict, in the sense of the commitment models of Eberle, Megow
// and Schewior ("Speed-Robust Scheduling / Commitment is No Burden").
const (
	// CommitmentNone: the verdict does not survive a crash of the daemon.
	CommitmentNone = "none"
	// CommitmentOnAdmission: the verdict was persisted to the WAL before it
	// was acknowledged; recovery re-admits the job or refuses to start.
	CommitmentOnAdmission = "on-admission"
)

// admitter is the optional standalone admission query (core.SchedulerS).
type admitter interface {
	Admission(v sim.JobView) core.Decision
}

// Server is one serving session. Create with New, expose Handler over HTTP,
// stop with Drain.
type Server struct {
	cfg   Config
	sched sim.Scheduler
	adm   admitter // nil when the scheduler has no admission query

	sess   *sim.Session        // engine goroutine only
	reg    *telemetry.Registry // engine goroutine only
	nextID int                 // engine goroutine only
	replay *replayWriter       // engine goroutine only

	// Durability state, engine goroutine only (nil/empty without WALDir).
	wal            *wal
	hist           []WALJob                  // full accepted history in wire form
	idem           map[string]StoredResponse // idempotency table (kept even without WAL)
	checkpoints    int64                     // lifetime checkpoint count
	lastCheckpoint time.Time
	lastCkptClock  int64
	ckptDirty      bool // records appended since the last checkpoint

	recovery *RecoveryInfo // fixed at New; nil on a fresh start

	reqs       chan any
	ready      atomic.Bool
	draining   atomic.Bool
	engineDone chan struct{}
	engineErr  atomic.Pointer[string]
	degraded   atomic.Pointer[string]
	drainOnce  sync.Once
	result     *sim.Result // set inside drainOnce

	start time.Time
}

// New validates the configuration, builds the scheduler and session —
// recovering the pre-crash session from Config.WALDir when one is there —
// writes the replay-log header, and starts the engine goroutine. With a WAL
// directory, New returns only once recovery has replayed the durable history
// and verified it against the checkpoint fingerprint and every acknowledged
// admission verdict; a daemon that cannot honor its commitments refuses to
// start rather than serve from diverged state.
func New(cfg Config) (*Server, error) {
	if cfg.Sched == "" {
		cfg.Sched = "s"
	}
	if cfg.Eps == 0 {
		cfg.Eps = 1.0
	}
	if cfg.TickInterval == 0 {
		cfg.TickInterval = DefaultTickInterval
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.QueueDepth < 1 {
		return nil, fmt.Errorf("serve: queue depth %d, need ≥ 1", cfg.QueueDepth)
	}
	if cfg.Fsync == "" {
		cfg.Fsync = FsyncAlways
	}
	if _, err := ParseFsyncPolicy(string(cfg.Fsync)); err != nil {
		return nil, err
	}
	if cfg.FsyncInterval == 0 {
		cfg.FsyncInterval = DefaultFsyncInterval
	}
	if cfg.CheckpointInterval == 0 {
		cfg.CheckpointInterval = DefaultCheckpointInterval
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	sched, err := cliflags.MakeScheduler(cfg.Sched, cfg.Eps, false)
	if err != nil {
		return nil, err
	}
	simCfg := dagsched.NewConfig(
		dagsched.WithM(cfg.M),
		dagsched.WithSpeed(cfg.Speed),
	)
	sess, err := sim.NewSession(simCfg, nil, sched)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:        cfg,
		sched:      sched,
		sess:       sess,
		reg:        &telemetry.Registry{},
		idem:       make(map[string]StoredResponse),
		reqs:       make(chan any, cfg.QueueDepth),
		engineDone: make(chan struct{}),
		start:      time.Now(),
	}
	s.adm, _ = sched.(admitter)
	if cfg.WALDir != "" {
		if err := s.openDurable(); err != nil {
			return nil, err
		}
	}
	if cfg.ReplayLog != nil {
		s.replay = &replayWriter{w: cfg.ReplayLog}
		if err := s.replay.header(cfg); err != nil {
			return nil, fmt.Errorf("serve: replay log: %w", err)
		}
	}
	s.ready.Store(true)
	go s.engineLoop()
	return s, nil
}

// openDurable recovers any durable state in cfg.WALDir into the fresh
// session, opens the WAL for appending, and seals the recovered history
// under a fresh checkpoint so every start leaves a normalized directory.
// Runs before the engine goroutine starts; the server is not ready until it
// returns.
func (s *Server) openDurable() error {
	if err := os.MkdirAll(s.cfg.WALDir, 0o755); err != nil {
		return fmt.Errorf("serve: wal dir: %w", err)
	}
	rs, err := loadState(s.cfg.WALDir, s.cfg)
	if err != nil {
		return err
	}
	if rs != nil {
		if err := rs.replayInto(s.sess, s.adm, s.reg); err != nil {
			return err
		}
		s.hist = rs.jobs
		s.idem = rs.idem
		s.nextID = rs.nextID
		s.checkpoints = rs.checkpoints
		s.recovery = rs.info()
		s.reg.Inc("serve.recoveries", 1)
	}
	w, err := openWAL(s.cfg.WALDir, s.cfg.Fsync, s.cfg.FsyncInterval)
	if err != nil {
		return fmt.Errorf("serve: wal: %w", err)
	}
	s.wal = w
	s.ckptDirty = true // force the normalizing checkpoint even on a fresh dir
	if err := s.checkpointNow(); err != nil {
		w.close()
		return err
	}
	return nil
}

// Scheduler returns the serving scheduler's name.
func (s *Server) Scheduler() string { return s.sched.Name() }

// Draining reports whether the server has stopped accepting jobs.
func (s *Server) Draining() bool { return s.draining.Load() }

// Ready reports whether the server is accepting work: recovery has finished,
// no drain has started, and durability is intact. /readyz mirrors it.
func (s *Server) Ready() bool {
	return s.ready.Load() && !s.draining.Load() &&
		s.degraded.Load() == nil && s.engineErr.Load() == nil
}

// Degraded returns the first durability failure ("" when healthy): a WAL or
// checkpoint write the daemon could not make durable. A degraded daemon
// rejects new submissions but keeps serving reads and can still drain.
func (s *Server) Degraded() string {
	if p := s.degraded.Load(); p != nil {
		return *p
	}
	return ""
}

// Recovery describes the durable state this daemon recovered at start; nil
// on a fresh start or without a WAL directory.
func (s *Server) Recovery() *RecoveryInfo { return s.recovery }

// Checkpoint forces an engine-state checkpoint through the mailbox and
// returns its outcome. It errors when the server has no WAL directory, is
// degraded, or has drained. Deterministic-time embeddings and tests use it;
// a live daemon checkpoints on its own cadence (Config.CheckpointInterval).
func (s *Server) Checkpoint() error {
	if s.wal == nil {
		return fmt.Errorf("serve: no WAL directory configured")
	}
	msg := checkpointMsg{reply: make(chan error, 1)}
	select {
	case s.reqs <- msg:
	case <-s.engineDone:
		return fmt.Errorf("serve: checkpoint after drain")
	}
	select {
	case err := <-msg.reply:
		return err
	case <-s.engineDone:
		select {
		case err := <-msg.reply:
			return err
		default:
			return fmt.Errorf("serve: checkpoint after drain")
		}
	}
}

// Drain stops admission, fast-forwards the session until every committed job
// has completed or expired, seals it, and returns the final Result. Simulated
// time is decoupled from wall time here: committed jobs finish at their
// simulated ticks immediately rather than in real time. Drain is idempotent
// and safe from any goroutine; later calls return the same Result.
func (s *Server) Drain() *sim.Result {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		reply := make(chan *sim.Result, 1)
		s.reqs <- drainMsg{reply: reply}
		s.result = <-reply
	})
	return s.result
}

// Advance drives the session clock to the given tick through the engine
// mailbox, returning once the engine has processed it. It exists for
// deterministic-time embeddings and tests running with the ticker disabled
// (TickInterval < 0); with a live ticker the wall clock usually outruns it
// and the call degenerates to a no-op. Advancing a drained server is a no-op.
func (s *Server) Advance(to int64) {
	msg := advanceMsg{to: to, reply: make(chan struct{})}
	select {
	case s.reqs <- msg:
	case <-s.engineDone:
		return
	}
	select {
	case <-msg.reply:
	case <-s.engineDone:
	}
}

// Messages between HTTP handlers and the engine goroutine.

type submitMsg struct {
	spec  JobSpec
	key   string // idempotency key; "" means none
	reply chan submitReply
}

type submitReply struct {
	status int // HTTP status
	resp   JobResponse
	err    string
}

type lookupMsg struct {
	id    int
	reply chan lookupReply
}

type lookupReply struct {
	found bool
	resp  StatusResponse
}

type statsMsg struct {
	reply chan StatsResponse
}

type drainMsg struct {
	reply chan *sim.Result
}

type advanceMsg struct {
	to    int64
	reply chan struct{}
}

type checkpointMsg struct {
	reply chan error
}

// engineLoop is the single goroutine that owns all mutable serving state.
func (s *Server) engineLoop() {
	defer close(s.engineDone)
	var tickC <-chan time.Time
	if s.cfg.TickInterval > 0 {
		ticker := time.NewTicker(s.cfg.TickInterval)
		defer ticker.Stop()
		tickC = ticker.C
	}
	for {
		select {
		case m := <-s.reqs:
			if s.handle(m) {
				return
			}
		case now := <-tickC:
			s.advance(int64(time.Since(s.start) / s.cfg.TickInterval))
			if s.wal != nil {
				if err := s.wal.maybeSync(now); err != nil {
					s.degrade("wal sync", err)
				}
				s.maybeCheckpoint(now)
			}
		}
	}
}

// maybeCheckpoint takes a checkpoint when the cadence has elapsed and the
// WAL holds records since the last one. Skipped while degraded: a checkpoint
// from state the WAL may not fully cover could seal the inconsistency in.
func (s *Server) maybeCheckpoint(now time.Time) {
	if s.cfg.CheckpointInterval < 0 || !s.ckptDirty || s.degraded.Load() != nil {
		return
	}
	if now.Sub(s.lastCheckpoint) < s.cfg.CheckpointInterval {
		return
	}
	if err := s.checkpointNow(); err != nil {
		s.degrade("checkpoint", err)
	}
}

// checkpointNow folds the accepted history, the idempotency table, the
// serving telemetry summary, and the session's state fingerprint into an
// atomically replaced checkpoint.json, then truncates the WAL back to its
// header. Engine goroutine only.
func (s *Server) checkpointNow() error {
	if err := s.wal.sync(); err != nil {
		return err
	}
	s.checkpoints++
	cp := Checkpoint{
		Type:        "checkpoint",
		Header:      headerOf(s.cfg),
		Clock:       s.sess.Now(),
		NextID:      s.nextID,
		Jobs:        s.hist,
		Idem:        s.idem,
		Summary:     s.reg.Summary(),
		Fingerprint: s.sess.Fingerprint(),
		Checkpoints: s.checkpoints,
	}
	payload, err := json.Marshal(cp)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(s.cfg.WALDir, checkpointFileName, frameRecord(payload)); err != nil {
		return err
	}
	if err := s.wal.reset(cp.Header); err != nil {
		return err
	}
	s.lastCheckpoint = time.Now()
	s.lastCkptClock = cp.Clock
	s.ckptDirty = false
	s.reg.Inc("serve.checkpoints", 1)
	return nil
}

// degrade records the first durability failure. A degraded daemon stops
// acknowledging submissions (it can no longer make them durable), fails
// readiness, and reports the failure on /healthz and /v1/stats; reads keep
// working.
func (s *Server) degrade(op string, err error) {
	msg := op + ": " + err.Error()
	s.degraded.CompareAndSwap(nil, &msg)
	s.reg.Inc("serve.degraded_events", 1)
}

// advance pushes the session to the wall-clock tick. A session error here is
// terminal for the engine (a scheduler broke its allocation contract); it is
// surfaced through /v1/stats.
func (s *Server) advance(now int64) {
	if err := s.sess.AdvanceTo(now); err != nil {
		msg := err.Error()
		s.engineErr.Store(&msg)
	}
}

// handle dispatches one mailbox message; it reports whether the engine
// should exit (after a drain).
func (s *Server) handle(m any) bool {
	switch msg := m.(type) {
	case submitMsg:
		msg.reply <- s.handleSubmit(msg.spec, msg.key)
	case lookupMsg:
		msg.reply <- s.handleLookup(msg.id)
	case statsMsg:
		msg.reply <- s.handleStats()
	case advanceMsg:
		s.advance(msg.to)
		close(msg.reply)
	case checkpointMsg:
		if dp := s.degraded.Load(); dp != nil {
			msg.reply <- fmt.Errorf("serve: degraded: %s", *dp)
		} else if err := s.checkpointNow(); err != nil {
			s.degrade("checkpoint", err)
			msg.reply <- err
		} else {
			msg.reply <- nil
		}
	case drainMsg:
		s.handleDrain(msg)
		return true
	}
	return false
}

// decideAdmission runs the serving admission query for a prospective job:
// the verdict string, the scheduler's reason, and the virtualization plan.
// Schedulers without an admission test accept every valid job. Shared by the
// submission path and crash recovery, which re-derives every logged verdict.
func decideAdmission(adm admitter, j *sim.Job) (DecisionString, string, *PlanInfo) {
	if adm == nil {
		return DecisionAccepted, "", nil
	}
	view := sim.JobView{ID: j.ID, Release: j.Release, W: j.Graph.TotalWork(), L: j.Graph.Span(), Profit: j.Profit}
	d := adm.Admission(view)
	plan := &PlanInfo{Alloc: d.Plan.Alloc, X: d.Plan.X, Density: d.Plan.Density, Good: d.Plan.Good}
	switch {
	case d.Admit:
		return DecisionAdmitted, "", plan
	case d.Reason == "not-delta-good":
		// The job can never pass the freshness test either: it is infeasible
		// for S at any later point, so it is not committed (and not logged —
		// the WAL and replay log hold accepted arrivals).
		return DecisionRejected, d.Reason, plan
	default:
		// Parked in P: committed, and eligible for admission when a
		// completion or recovery frees band capacity.
		return DecisionParked, d.Reason, plan
	}
}

// handleSubmit resolves idempotent retries, takes the admit/reject decision,
// persists it to the WAL (write-ahead: before the session commit, so an
// acknowledged verdict is never lost to a crash), and commits the arrival to
// the session and the replay log.
func (s *Server) handleSubmit(spec JobSpec, key string) submitReply {
	if s.draining.Load() {
		return submitReply{status: 503, err: "draining"}
	}
	if dp := s.degraded.Load(); dp != nil {
		// The daemon cannot make new verdicts durable; stop acknowledging.
		return submitReply{status: 503, err: "degraded: " + *dp}
	}
	if key != "" {
		if st, ok := s.idem[key]; ok {
			st.Resp.Replayed = true
			s.reg.Inc("serve.idempotent_replays", 1)
			return submitReply{status: st.Status, resp: st.Resp}
		}
	}
	g, fn, err := spec.build()
	if err != nil {
		s.reg.Inc("serve.bad_request", 1)
		return submitReply{status: 400, err: err.Error()}
	}
	release := s.sess.Now()
	id := s.nextID + 1
	job := &sim.Job{ID: id, Graph: g, Release: release, Profit: fn}
	resp := JobResponse{ID: id, Release: release}
	resp.Decision, resp.Reason, resp.Plan = decideAdmission(s.adm, job)

	if resp.Decision == DecisionRejected {
		resp.ID = 0
		resp.Commitment = CommitmentNone
		if key != "" {
			// Make the verdict durable so a retry after a crash collapses
			// onto it instead of re-opening the decision.
			if s.wal != nil {
				if err := s.wal.append(WALReject{Type: "reject", Key: key, Resp: resp}); err != nil {
					s.degrade("wal append", err)
					return submitReply{status: 503, err: "degraded: " + s.Degraded()}
				}
				s.ckptDirty = true
			}
			s.idem[key] = StoredResponse{Status: 200, Resp: resp}
		}
		s.reg.Inc("serve.rejected", 1)
		return submitReply{status: 200, resp: resp}
	}

	resp.Commitment = CommitmentNone
	if s.wal != nil {
		resp.Commitment = CommitmentOnAdmission
		wire, err := workload.MarshalJob(job)
		if err != nil {
			s.reg.Inc("serve.bad_request", 1)
			return submitReply{status: 400, err: err.Error()}
		}
		rec := WALJob{Type: "job", Key: key, Resp: resp, Job: wire}
		if err := s.wal.append(rec); err != nil {
			// Not durable, so not committed and not acknowledged: the
			// session never sees the job and the client may retry safely.
			s.degrade("wal append", err)
			return submitReply{status: 503, err: "degraded: " + s.Degraded()}
		}
		s.hist = append(s.hist, rec)
		s.ckptDirty = true
	}
	if err := s.sess.Arrive(job); err != nil {
		// Unreachable by construction (fresh ascending ID, release = Now);
		// surfaced as a server error rather than swallowed. With a WAL the
		// logged record now disagrees with the engine, so degrade too.
		s.reg.Inc("serve.arrive_error", 1)
		if s.wal != nil {
			s.degrade("arrive after wal append", err)
		}
		return submitReply{status: 500, err: err.Error()}
	}
	s.nextID = id
	s.reg.Inc("serve.accepted", 1)
	s.reg.Inc("serve."+string(resp.Decision), 1)
	if key != "" {
		s.idem[key] = StoredResponse{Status: 200, Resp: resp}
	}
	if s.replay != nil {
		if err := s.replay.appendJob(job); err != nil {
			// The offline-analysis tap failed: the record is lost, which
			// breaks the log's bit-identical replay guarantee. Count it and
			// surface the degraded state on /healthz instead of dropping
			// the error silently.
			s.reg.Inc("serve.replay_error", 1)
			s.degrade("replay log append", err)
		}
	}
	return submitReply{status: 200, resp: resp}
}

func (s *Server) handleLookup(id int) lookupReply {
	stat, state := s.sess.Lookup(id)
	if state == sim.JobStateUnknown {
		return lookupReply{}
	}
	return lookupReply{found: true, resp: statusResponse(id, stat, state)}
}

func (s *Server) handleStats() StatsResponse {
	s.reg.SetGauge("serve.queue_depth", float64(len(s.reqs)))
	resp := StatsResponse{
		Scheduler: s.sched.Name(),
		M:         s.cfg.M,
		Now:       s.sess.Now(),
		Live:      s.sess.Live(),
		Pending:   s.sess.Pending(),
		Draining:  s.draining.Load(),
		Ready:     s.Ready(),
		Degraded:  s.Degraded(),
		Recovery:  s.recovery,
		Telemetry: s.reg.Summary(),
	}
	if ep := s.engineErr.Load(); ep != nil {
		resp.EngineError = *ep
	}
	if s.wal != nil {
		resp.WAL = &WALStats{
			Dir:                 s.cfg.WALDir,
			Fsync:               string(s.cfg.Fsync),
			Records:             s.wal.records,
			Checkpoints:         s.checkpoints,
			LastCheckpointClock: s.lastCkptClock,
		}
	}
	return resp
}

// handleDrain empties the mailbox (submissions get 503, reads are served),
// fast-forwards the session to completion, and seals it.
func (s *Server) handleDrain(first drainMsg) {
	waiters := []drainMsg{first}
	for {
		drained := false
		select {
		case m := <-s.reqs:
			switch msg := m.(type) {
			case submitMsg:
				msg.reply <- submitReply{status: 503, err: "draining"}
			case lookupMsg:
				msg.reply <- s.handleLookup(msg.id)
			case statsMsg:
				msg.reply <- s.handleStats()
			case advanceMsg:
				close(msg.reply) // the clock is done moving
			case checkpointMsg:
				msg.reply <- fmt.Errorf("serve: checkpoint after drain")
			case drainMsg:
				waiters = append(waiters, msg)
			}
		default:
			drained = true
		}
		if drained {
			break
		}
	}
	if err := s.sess.RunToEnd(); err != nil {
		msg := err.Error()
		s.engineErr.Store(&msg)
	}
	res := s.sess.Finish()
	s.reg.Inc("serve.drains", 1)
	if s.wal != nil {
		// Seal the drained state: a restart over this directory recovers the
		// completed history instead of replaying the whole session.
		if s.degraded.Load() == nil {
			if err := s.checkpointNow(); err != nil {
				s.degrade("final checkpoint", err)
			}
		}
		if err := s.wal.close(); err != nil {
			s.degrade("wal close", err)
		}
	}
	for _, w := range waiters {
		w.reply <- res
	}
}
