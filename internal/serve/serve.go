// Package serve is the scheduler-as-a-service layer: a long-running daemon
// that wraps the simulation engine's step-driven Session in a concurrent-safe,
// clock-driven loop behind an HTTP/JSON API.
//
// Architecture: a single engine goroutine owns the sim.Session, the
// scheduler, and the serving telemetry registry. HTTP handlers never touch
// that state — they send typed messages over a bounded mailbox channel and
// wait for the reply. A full mailbox is backpressure (the handler answers
// 429 without blocking); a draining server answers 503. A wall-clock ticker
// inside the engine goroutine advances the session, so simulated ticks track
// real time while the ordering of submissions against ticks stays whatever
// the mailbox serialized.
//
// Every accepted arrival is appended to a replay log (header line + one
// instance-wire job per line). Because the session stamps server-assigned
// ascending IDs and the engine is the exact code path batch Run uses,
// re-simulating the logged job set offline reproduces the serving session's
// Result bit-identically — whatever interleaving of submissions and ticks
// actually happened.
package serve

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"dagsched"
	"dagsched/internal/cliflags"
	"dagsched/internal/core"
	"dagsched/internal/rational"
	"dagsched/internal/sim"
	"dagsched/internal/telemetry"
)

// Config parameterizes a serving daemon.
type Config struct {
	// M is the number of processors; must be ≥ 1.
	M int
	// Sched selects the scheduler (cliflags roster); empty means "s".
	Sched string
	// Eps is the ε parameter for the paper schedulers (0 means 1.0).
	Eps float64
	// Speed is the machine speed; the zero value means 1.
	Speed rational.Rat
	// TickInterval is the wall time one simulated tick spans. 0 means the
	// 10ms default; negative disables the ticker entirely (the session then
	// advances only on drain — deterministic tests use this).
	TickInterval time.Duration
	// QueueDepth bounds the request mailbox; a full mailbox is answered
	// with 429. 0 means 64.
	QueueDepth int
	// ReplayLog, when non-nil, receives the session's replay log: a header
	// line followed by every accepted arrival in the instance wire format.
	// Writes happen only from the engine goroutine.
	ReplayLog io.Writer
}

// DefaultTickInterval is the wall-clock duration of one simulated tick.
const DefaultTickInterval = 10 * time.Millisecond

// admitter is the optional standalone admission query (core.SchedulerS).
type admitter interface {
	Admission(v sim.JobView) core.Decision
}

// Server is one serving session. Create with New, expose Handler over HTTP,
// stop with Drain.
type Server struct {
	cfg   Config
	sched sim.Scheduler
	adm   admitter // nil when the scheduler has no admission query

	sess   *sim.Session        // engine goroutine only
	reg    *telemetry.Registry // engine goroutine only
	nextID int                 // engine goroutine only
	replay *replayWriter       // engine goroutine only

	reqs       chan any
	draining   atomic.Bool
	engineDone chan struct{}
	engineErr  atomic.Pointer[string]
	drainOnce  sync.Once
	result     *sim.Result // set inside drainOnce

	start time.Time
}

// New validates the configuration, builds the scheduler and session, writes
// the replay-log header, and starts the engine goroutine.
func New(cfg Config) (*Server, error) {
	if cfg.Sched == "" {
		cfg.Sched = "s"
	}
	if cfg.Eps == 0 {
		cfg.Eps = 1.0
	}
	if cfg.TickInterval == 0 {
		cfg.TickInterval = DefaultTickInterval
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.QueueDepth < 1 {
		return nil, fmt.Errorf("serve: queue depth %d, need ≥ 1", cfg.QueueDepth)
	}
	sched, err := cliflags.MakeScheduler(cfg.Sched, cfg.Eps, false)
	if err != nil {
		return nil, err
	}
	simCfg := dagsched.NewConfig(
		dagsched.WithM(cfg.M),
		dagsched.WithSpeed(cfg.Speed),
	)
	sess, err := sim.NewSession(simCfg, nil, sched)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:        cfg,
		sched:      sched,
		sess:       sess,
		reg:        &telemetry.Registry{},
		reqs:       make(chan any, cfg.QueueDepth),
		engineDone: make(chan struct{}),
		start:      time.Now(),
	}
	s.adm, _ = sched.(admitter)
	if cfg.ReplayLog != nil {
		s.replay = &replayWriter{w: cfg.ReplayLog}
		if err := s.replay.header(cfg); err != nil {
			return nil, fmt.Errorf("serve: replay log: %w", err)
		}
	}
	go s.engineLoop()
	return s, nil
}

// Scheduler returns the serving scheduler's name.
func (s *Server) Scheduler() string { return s.sched.Name() }

// Draining reports whether the server has stopped accepting jobs.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain stops admission, fast-forwards the session until every committed job
// has completed or expired, seals it, and returns the final Result. Simulated
// time is decoupled from wall time here: committed jobs finish at their
// simulated ticks immediately rather than in real time. Drain is idempotent
// and safe from any goroutine; later calls return the same Result.
func (s *Server) Drain() *sim.Result {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		reply := make(chan *sim.Result, 1)
		s.reqs <- drainMsg{reply: reply}
		s.result = <-reply
	})
	return s.result
}

// Advance drives the session clock to the given tick through the engine
// mailbox, returning once the engine has processed it. It exists for
// deterministic-time embeddings and tests running with the ticker disabled
// (TickInterval < 0); with a live ticker the wall clock usually outruns it
// and the call degenerates to a no-op. Advancing a drained server is a no-op.
func (s *Server) Advance(to int64) {
	msg := advanceMsg{to: to, reply: make(chan struct{})}
	select {
	case s.reqs <- msg:
	case <-s.engineDone:
		return
	}
	select {
	case <-msg.reply:
	case <-s.engineDone:
	}
}

// Messages between HTTP handlers and the engine goroutine.

type submitMsg struct {
	spec  JobSpec
	reply chan submitReply
}

type submitReply struct {
	status int // HTTP status
	resp   JobResponse
	err    string
}

type lookupMsg struct {
	id    int
	reply chan lookupReply
}

type lookupReply struct {
	found bool
	resp  StatusResponse
}

type statsMsg struct {
	reply chan StatsResponse
}

type drainMsg struct {
	reply chan *sim.Result
}

type advanceMsg struct {
	to    int64
	reply chan struct{}
}

// engineLoop is the single goroutine that owns all mutable serving state.
func (s *Server) engineLoop() {
	defer close(s.engineDone)
	var tickC <-chan time.Time
	if s.cfg.TickInterval > 0 {
		ticker := time.NewTicker(s.cfg.TickInterval)
		defer ticker.Stop()
		tickC = ticker.C
	}
	for {
		select {
		case m := <-s.reqs:
			if s.handle(m) {
				return
			}
		case <-tickC:
			s.advance(int64(time.Since(s.start) / s.cfg.TickInterval))
		}
	}
}

// advance pushes the session to the wall-clock tick. A session error here is
// terminal for the engine (a scheduler broke its allocation contract); it is
// surfaced through /v1/stats.
func (s *Server) advance(now int64) {
	if err := s.sess.AdvanceTo(now); err != nil {
		msg := err.Error()
		s.engineErr.Store(&msg)
	}
}

// handle dispatches one mailbox message; it reports whether the engine
// should exit (after a drain).
func (s *Server) handle(m any) bool {
	switch msg := m.(type) {
	case submitMsg:
		msg.reply <- s.handleSubmit(msg.spec)
	case lookupMsg:
		msg.reply <- s.handleLookup(msg.id)
	case statsMsg:
		msg.reply <- s.handleStats()
	case advanceMsg:
		s.advance(msg.to)
		close(msg.reply)
	case drainMsg:
		s.handleDrain(msg)
		return true
	}
	return false
}

// handleSubmit takes the admit/reject decision and, unless the job is
// rejected outright, commits the arrival to the session and the replay log.
func (s *Server) handleSubmit(spec JobSpec) submitReply {
	if s.draining.Load() {
		return submitReply{status: 503, err: "draining"}
	}
	g, fn, err := spec.build()
	if err != nil {
		s.reg.Inc("serve.bad_request", 1)
		return submitReply{status: 400, err: err.Error()}
	}
	release := s.sess.Now()
	id := s.nextID + 1
	resp := JobResponse{ID: id, Release: release}

	if s.adm != nil {
		view := sim.JobView{ID: id, Release: release, W: g.TotalWork(), L: g.Span(), Profit: fn}
		d := s.adm.Admission(view)
		resp.Plan = &PlanInfo{
			Alloc: d.Plan.Alloc, X: d.Plan.X, Density: d.Plan.Density, Good: d.Plan.Good,
		}
		if !d.Admit && d.Reason == "not-delta-good" {
			// The job can never pass the freshness test either: it is
			// infeasible for S at any later point, so it is not committed
			// (and not logged — the replay log holds accepted arrivals).
			s.reg.Inc("serve.rejected", 1)
			resp.ID = 0
			resp.Decision = DecisionRejected
			resp.Reason = d.Reason
			return submitReply{status: 200, resp: resp}
		}
		if d.Admit {
			resp.Decision = DecisionAdmitted
		} else {
			// Parked in P: committed, and eligible for admission when a
			// completion or recovery frees band capacity.
			resp.Decision = DecisionParked
			resp.Reason = d.Reason
		}
	} else {
		resp.Decision = DecisionAccepted
	}

	job := &sim.Job{ID: id, Graph: g, Release: release, Profit: fn}
	if err := s.sess.Arrive(job); err != nil {
		// Unreachable by construction (fresh ascending ID, release = Now);
		// surfaced as a server error rather than swallowed.
		s.reg.Inc("serve.arrive_error", 1)
		return submitReply{status: 500, err: err.Error()}
	}
	s.nextID = id
	s.reg.Inc("serve.accepted", 1)
	s.reg.Inc("serve."+string(resp.Decision), 1)
	if s.replay != nil {
		if err := s.replay.appendJob(job); err != nil {
			s.reg.Inc("serve.replay_error", 1)
		}
	}
	return submitReply{status: 200, resp: resp}
}

func (s *Server) handleLookup(id int) lookupReply {
	stat, state := s.sess.Lookup(id)
	if state == sim.JobStateUnknown {
		return lookupReply{}
	}
	return lookupReply{found: true, resp: statusResponse(id, stat, state)}
}

func (s *Server) handleStats() StatsResponse {
	s.reg.SetGauge("serve.queue_depth", float64(len(s.reqs)))
	resp := StatsResponse{
		Scheduler: s.sched.Name(),
		M:         s.cfg.M,
		Now:       s.sess.Now(),
		Live:      s.sess.Live(),
		Pending:   s.sess.Pending(),
		Draining:  s.draining.Load(),
		Telemetry: s.reg.Summary(),
	}
	if ep := s.engineErr.Load(); ep != nil {
		resp.EngineError = *ep
	}
	return resp
}

// handleDrain empties the mailbox (submissions get 503, reads are served),
// fast-forwards the session to completion, and seals it.
func (s *Server) handleDrain(first drainMsg) {
	waiters := []drainMsg{first}
	for {
		drained := false
		select {
		case m := <-s.reqs:
			switch msg := m.(type) {
			case submitMsg:
				msg.reply <- submitReply{status: 503, err: "draining"}
			case lookupMsg:
				msg.reply <- s.handleLookup(msg.id)
			case statsMsg:
				msg.reply <- s.handleStats()
			case advanceMsg:
				close(msg.reply) // the clock is done moving
			case drainMsg:
				waiters = append(waiters, msg)
			}
		default:
			drained = true
		}
		if drained {
			break
		}
	}
	if err := s.sess.RunToEnd(); err != nil {
		msg := err.Error()
		s.engineErr.Store(&msg)
	}
	res := s.sess.Finish()
	s.reg.Inc("serve.drains", 1)
	for _, w := range waiters {
		w.reply <- res
	}
}
