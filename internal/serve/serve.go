// Package serve is the scheduler-as-a-service layer: a long-running daemon
// that wraps the simulation engine's step-driven Session in a concurrent-safe,
// clock-driven loop behind an HTTP/JSON API.
//
// Architecture: the daemon is N engine shards behind a pressure-aware placer
// (N = Config.Shards; 1 by default). Each shard is a goroutine that owns its
// own sim.Session over a partitioned slice of the capacity, its own Scheduler
// S instance, telemetry registry, and — when durable — its own WAL and
// checkpoint. HTTP handlers never touch shard state: the placer picks a shard
// (by idempotency-key hash, or by the lowest published pressure with a
// second-choice spill when the best shard's band is full) and the handler
// sends a typed message over that shard's bounded mailbox. A full mailbox is
// backpressure (429 without blocking); a draining server answers 503. A
// wall-clock ticker inside each shard advances its session, so simulated
// ticks track real time while the ordering of submissions against ticks stays
// whatever each mailbox serialized.
//
// Every accepted arrival is appended to a shared replay log (header line +
// one instance-wire job per line; sharded sessions interleave a route record
// before each job). Because each shard stamps server-assigned IDs on its own
// stripe and runs the exact code path batch Run uses, re-simulating the
// logged job set offline — shard by shard, over the same capacity partition —
// reproduces the serving session's merged Result bit-identically.
package serve

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dagsched"
	"dagsched/internal/cliflags"
	"dagsched/internal/core"
	"dagsched/internal/obs"
	"dagsched/internal/rational"
	"dagsched/internal/sim"
	"dagsched/internal/telemetry"
)

// Config parameterizes a serving daemon.
type Config struct {
	// M is the number of processors; must be ≥ 1.
	M int
	// Shards splits the daemon into that many engine shards, each running
	// its own scheduler over a PartitionCapacity slice of M (lower-indexed
	// shards hold the remainder when M is not divisible). 0 or 1 means one
	// shard — byte-identical to the unsharded daemon. Must satisfy
	// cliflags.ValidateShards: 1 ≤ Shards ≤ M.
	Shards int
	// Sched selects the scheduler (cliflags roster); empty means "s".
	Sched string
	// Eps is the ε parameter for the paper schedulers (0 means 1.0).
	Eps float64
	// Speed is the machine speed; the zero value means 1.
	Speed rational.Rat
	// TickInterval is the wall time one simulated tick spans. 0 means the
	// 10ms default; negative disables the ticker entirely (the session then
	// advances only on drain — deterministic tests use this).
	TickInterval time.Duration
	// QueueDepth bounds each shard's request mailbox; a full mailbox is
	// answered with 429. 0 means 64. The depth is per shard, so a sharded
	// daemon holds Shards×QueueDepth queued submissions at most.
	QueueDepth int
	// ReplayLog, when non-nil, receives the session's replay log: a header
	// line followed by every accepted arrival in the instance wire format
	// (with a shard-route record per arrival when Shards > 1). Shards
	// serialize their appends with a mutex. For durability across crashes
	// use WALDir instead; ReplayLog is the offline-analysis tap.
	ReplayLog io.Writer
	// WALDir, when non-empty, makes the daemon crash-safe: every
	// acknowledged submission is framed, checksummed, and appended to a
	// write-ahead log before it is committed, engine state is checkpointed
	// periodically, and a restart over the same directory recovers the
	// pre-crash session bit-identically (or refuses to start if it cannot).
	// With one shard the directory holds wal.log and checkpoint.json
	// directly; with N > 1 it holds shard-0/ … shard-(N-1)/ subdirectories,
	// one durable pair per shard, recovered independently. The layout is
	// part of the durable configuration: reopening a directory with a
	// different shard count refuses to start. The directory is created if
	// missing.
	WALDir string
	// Fsync selects the WAL flush policy; zero means FsyncAlways.
	Fsync FsyncPolicy
	// FsyncInterval is the flush cadence under FsyncInterval; 0 means
	// 100ms. Flushes piggyback on the engine ticker, so with the ticker
	// disabled the interval policy only flushes at checkpoints and drain.
	FsyncInterval time.Duration
	// CheckpointInterval is the wall-time cadence of engine-state
	// checkpoints (which also truncate the WAL). 0 means 30s; negative
	// checkpoints only at drain. Checkpoints ride the engine ticker, so a
	// disabled ticker also disables periodic checkpoints (tests drive
	// Checkpoint explicitly).
	CheckpointInterval time.Duration
	// MaxBodyBytes caps the POST /v1/jobs body; oversized requests are
	// answered 413. 0 means 1 MiB. The /v1/jobs:batch body is capped at
	// MaxBatchItems × MaxBodyBytes.
	MaxBodyBytes int64
	// MaxBatchItems caps the item count of one POST /v1/jobs:batch request;
	// larger batches are answered 413. 0 means 1024. Must satisfy
	// cliflags.ValidateMaxBatch.
	MaxBatchItems int
	// Clock selects how a shard advances simulated time when the ticker is
	// enabled (TickInterval > 0). ClockAuto — the default — uses event-jump
	// advancement when the shard's session is event-safe under the
	// sim.RunAuto routing rules (no faults, no probes, an event-safe
	// scheduler and policy) and the fixed wall-clock ticker otherwise.
	// ClockTicker forces the ticker; ClockJump requires event safety and
	// New refuses to start without it. Both modes produce bit-identical
	// session state for the same submission sequence — the jump loop bursts
	// every deferred tick before any observable state is touched — so the
	// choice is purely about idle CPU. Ignored when TickInterval < 0.
	Clock ClockMode
	// Logger receives the daemon's structured serving-path records (request
	// IDs and shard indices on every one). nil discards them, which keeps
	// embedded and test servers quiet; cmd/spaa-serve wires a handler per its
	// -log-format and -log-level flags.
	Logger *slog.Logger
	// TraceDepth bounds the in-memory ring of completed request traces
	// (/debug/requests exports it as Perfetto spans). 0 means 256.
	TraceDepth int
	// Commitment selects the daemon-wide commitment policy: "none",
	// "on-admission" (the default), "on-arrival", or "delta". A job spec may
	// override it per job via its "commitment" field. Under a binding policy
	// (on-arrival, delta) an admitted job is promised completion — the
	// scheduler never abandons it past its commit point, even past its
	// deadline — and under on-arrival a job that cannot be admitted at
	// release is rejected outright instead of parked. Binding policies
	// require a scheduler that supports commitment (Scheduler S); New
	// refuses other rosters. The policy is part of the durable header: a WAL
	// directory written under one policy refuses to recover under another.
	Commitment string
}

// DefaultTickInterval is the wall-clock duration of one simulated tick.
const DefaultTickInterval = 10 * time.Millisecond

// DefaultFsyncInterval is the flush cadence under FsyncInterval.
const DefaultFsyncInterval = 100 * time.Millisecond

// DefaultCheckpointInterval is the cadence of engine-state checkpoints.
const DefaultCheckpointInterval = 30 * time.Second

// DefaultMaxBodyBytes caps the POST /v1/jobs body.
const DefaultMaxBodyBytes = 1 << 20

// DefaultMaxBatchItems caps the POST /v1/jobs:batch item count.
const DefaultMaxBatchItems = 1024

// DefaultTraceDepth is the request-trace ring size (Config.TraceDepth).
const DefaultTraceDepth = 256

// Commitment values for Config.Commitment, JobSpec.Commitment, and
// JobResponse.Commitment: the strength of the promise attached to an
// admission verdict, in the sense of the commitment models of Eberle, Megow
// and Schewior ("Commitment is No Burden"). The first two are durability
// levels; the last two additionally bind the scheduler.
const (
	// CommitmentNone: the verdict carries no promise — it does not survive a
	// crash of the daemon and the job may be abandoned at its deadline.
	CommitmentNone = "none"
	// CommitmentOnAdmission: the verdict was persisted to the WAL before it
	// was acknowledged; recovery re-admits the job or refuses to start. No
	// scheduling promise: an admitted job may still be abandoned.
	CommitmentOnAdmission = "on-admission"
	// CommitmentOnArrival: the release-time verdict is final. An admitted
	// job is guaranteed to finish (never abandoned, even past its deadline);
	// a job that cannot be admitted at release is rejected outright, never
	// parked for a second chance.
	CommitmentOnArrival = "on-arrival"
	// CommitmentDelta: δ-commitment — the promise attaches when the job is
	// admitted to run (at arrival, or later from the parked pool while still
	// δ-fresh). From that point the job is guaranteed to finish.
	CommitmentDelta = "delta"
)

// commitmentSetter is the optional scheduler-wide commitment knob
// (core.SchedulerS). Binding policies require it.
type commitmentSetter interface {
	SetCommitment(c sim.Commitment) error
}

// applyCommitment configures sched for the policy a durable header or serving
// config names. Empty and non-binding policies need no scheduler support;
// binding ones require the commitmentSetter knob.
func applyCommitment(sched sim.Scheduler, policy string) error {
	if policy == "" {
		return nil
	}
	lvl, err := sim.ParseCommitment(policy)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if !lvl.Binding() {
		return nil
	}
	cs, ok := sched.(commitmentSetter)
	if !ok {
		return fmt.Errorf("serve: scheduler %q does not support commitment policy %q", sched.Name(), policy)
	}
	return cs.SetCommitment(lvl)
}

// commitmentString maps a job's effective commitment level to the wire value
// an accepted verdict carries. Binding levels name their scheduling promise
// whether or not the daemon is durable; the default on-admission level
// reports the durability of the verdict itself, so a WAL-less daemon answers
// "none" exactly as it did before policies existed.
func commitmentString(lvl sim.Commitment, durable bool) string {
	switch lvl {
	case sim.CommitmentOnArrival, sim.CommitmentDelta:
		return string(lvl)
	case sim.CommitmentNone:
		return CommitmentNone
	default:
		if durable {
			return CommitmentOnAdmission
		}
		return CommitmentNone
	}
}

// admitter is the optional standalone admission query (core.SchedulerS).
type admitter interface {
	Admission(v sim.JobView) core.Decision
}

// Server is one serving session: N shards behind a placer. Create with New,
// expose Handler over HTTP, stop with Drain.
type Server struct {
	cfg    Config
	policy sim.Commitment // parsed Config.Commitment
	shards []*shard
	placer *placer
	replay *replayWriter // shared; shards serialize appends on its mutex

	recovery *RecoveryInfo // aggregated across shards; nil on a fresh start

	ready     atomic.Bool
	draining  atomic.Bool
	degraded  atomic.Pointer[string]
	drainOnce sync.Once
	result    *sim.Result // set inside drainOnce

	log     *slog.Logger   // Config.Logger; use logger(), which is nil-safe
	metrics *serverObs     // HTTP-layer counters/histograms (mutex-guarded)
	traces  *obs.TraceRing // completed request traces for /debug/requests

	start time.Time
}

// discardLog swallows records; the fallback when no Config.Logger is wired
// (embedded servers, tests constructing Server directly).
var discardLog = slog.New(slog.NewTextHandler(io.Discard, nil))

// logger returns the server's structured logger, never nil.
func (s *Server) logger() *slog.Logger {
	if s.log != nil {
		return s.log
	}
	return discardLog
}

// New validates the configuration, builds the shards and their schedulers —
// recovering each shard's pre-crash session from Config.WALDir when one is
// there — writes the replay-log header, and starts the engine goroutines.
// With a WAL directory, New returns only once every shard's recovery has
// replayed its durable history and verified it against the checkpoint
// fingerprint and every acknowledged admission verdict; a daemon that cannot
// honor its commitments on any shard refuses to start rather than serve from
// diverged state.
func New(cfg Config) (*Server, error) {
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards != 1 {
		if err := cliflags.ValidateShards(cfg.Shards, cfg.M); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}
	if cfg.Sched == "" {
		cfg.Sched = "s"
	}
	if cfg.Eps == 0 {
		cfg.Eps = 1.0
	}
	if cfg.TickInterval == 0 {
		cfg.TickInterval = DefaultTickInterval
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.QueueDepth < 1 {
		return nil, fmt.Errorf("serve: queue depth %d, need ≥ 1", cfg.QueueDepth)
	}
	if cfg.Fsync == "" {
		cfg.Fsync = FsyncAlways
	}
	if _, err := ParseFsyncPolicy(string(cfg.Fsync)); err != nil {
		return nil, err
	}
	if cfg.FsyncInterval == 0 {
		cfg.FsyncInterval = DefaultFsyncInterval
	}
	if cfg.CheckpointInterval == 0 {
		cfg.CheckpointInterval = DefaultCheckpointInterval
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxBatchItems == 0 {
		cfg.MaxBatchItems = DefaultMaxBatchItems
	}
	if err := cliflags.ValidateMaxBatch(cfg.MaxBatchItems); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if cfg.Clock == "" {
		cfg.Clock = ClockAuto
	}
	if _, err := ParseClockMode(string(cfg.Clock)); err != nil {
		return nil, err
	}
	if cfg.TraceDepth == 0 {
		cfg.TraceDepth = DefaultTraceDepth
	}
	if cfg.Commitment == "" {
		cfg.Commitment = CommitmentOnAdmission
	}
	policy, err := sim.ParseCommitment(cfg.Commitment)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	part := cliflags.PartitionCapacity(cfg.M, cfg.Shards)
	s := &Server{cfg: cfg, policy: policy, start: time.Now()}
	s.log = cfg.Logger
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s.metrics = &serverObs{}
	s.traces = obs.NewTraceRing(cfg.TraceDepth)
	for i := 0; i < cfg.Shards; i++ {
		sched, err := cliflags.MakeScheduler(cfg.Sched, cfg.Eps, false)
		if err != nil {
			return nil, err
		}
		if policy.Binding() {
			if err := applyCommitment(sched, cfg.Commitment); err != nil {
				return nil, err
			}
		}
		simCfg := dagsched.NewConfig(
			dagsched.WithM(part[i]),
			dagsched.WithSpeed(cfg.Speed),
		)
		sess, err := sim.NewSession(simCfg, nil, sched)
		if err != nil {
			return nil, err
		}
		jump, err := resolveClock(cfg, sess)
		if err != nil {
			return nil, err
		}
		sh := &shard{
			jump:       jump,
			srv:        s,
			idx:        i,
			m:          part[i],
			stride:     cfg.Shards,
			sched:      sched,
			sess:       sess,
			reg:        &telemetry.Registry{},
			obsReg:     &telemetry.Registry{},
			lastID:     i + 1 - cfg.Shards, // first assigned ID is i+1
			header:     shardHeaderOf(cfg, i, part[i]),
			idem:       make(map[string]StoredResponse),
			reqs:       make(chan any, cfg.QueueDepth),
			engineDone: make(chan struct{}),
		}
		sh.adm, _ = sched.(admitter)
		_, sh.canCommit = sched.(sim.Committer)
		s.shards = append(s.shards, sh)
	}
	s.placer = newPlacer(s.shards)
	if cfg.WALDir != "" {
		if err := s.openDurable(); err != nil {
			return nil, err
		}
		if s.recovery != nil {
			s.logger().Info("recovered durable state",
				"dir", cfg.WALDir, "shards", cfg.Shards,
				"jobs", s.recovery.Jobs, "walJobs", s.recovery.WALJobs,
				"clock", s.recovery.Clock, "tornBytes", s.recovery.TornBytes)
		}
	}
	if cfg.ReplayLog != nil {
		s.replay = &replayWriter{w: cfg.ReplayLog, shards: cfg.Shards}
		if err := s.replay.header(cfg); err != nil {
			return nil, fmt.Errorf("serve: replay log: %w", err)
		}
	}
	s.ready.Store(true)
	for _, sh := range s.shards {
		go sh.engineLoop()
	}
	return s, nil
}

// openDurable lays out the WAL directory for the configured shard count and
// recovers every shard. One shard uses the directory flat (the unsharded
// layout); N > 1 uses shard-<i>/ subdirectories. A directory whose layout
// disagrees with the configuration — flat files under a sharded config,
// shard subdirectories under an unsharded one, or more shard directories
// than configured — refuses to start: recovering a shard's history under a
// different partition would silently re-decide admissions.
func (s *Server) openDurable() error {
	dir := s.cfg.WALDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: wal dir: %w", err)
	}
	stray, err := strayShardDirs(dir, s.cfg.Shards)
	if err != nil {
		return err
	}
	if len(stray) > 0 {
		return fmt.Errorf("serve: wal dir %s holds %s but the daemon is configured for %d shard(s); refusing to recover under a different partition",
			dir, strings.Join(stray, ", "), s.cfg.Shards)
	}
	if s.cfg.Shards == 1 {
		if err := s.shards[0].openDurable(dir); err != nil {
			return err
		}
		s.recovery = mergeRecovery(s.shards)
		return nil
	}
	for _, name := range []string{walFileName, checkpointFileName} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			return fmt.Errorf("serve: wal dir %s holds unsharded %s but the daemon is configured for %d shards; refusing to recover under a different partition",
				dir, name, s.cfg.Shards)
		}
	}
	for i, sh := range s.shards {
		sub := filepath.Join(dir, shardDirName(i))
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return fmt.Errorf("serve: wal dir: %w", err)
		}
		if err := sh.openDurable(sub); err != nil {
			for _, prev := range s.shards[:i] {
				prev.wal.close()
			}
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	s.recovery = mergeRecovery(s.shards)
	return nil
}

// shardDirName is the per-shard subdirectory under a sharded WAL directory.
func shardDirName(i int) string { return "shard-" + strconv.Itoa(i) }

// strayShardDirs lists shard-<i> subdirectories of dir that the configured
// shard count does not cover (all of them when shards == 1).
func strayShardDirs(dir string, shards int) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: wal dir: %w", err)
	}
	var stray []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		rest, ok := strings.CutPrefix(e.Name(), "shard-")
		if !ok {
			continue
		}
		idx, err := strconv.Atoi(rest)
		if err != nil {
			continue
		}
		if shards == 1 || idx >= shards {
			stray = append(stray, e.Name())
		}
	}
	return stray, nil
}

// mergeRecovery aggregates the per-shard recovery reports for the daemon
// banner and the /v1/stats aggregate; nil when no shard recovered anything.
func mergeRecovery(shards []*shard) *RecoveryInfo {
	var out *RecoveryInfo
	for _, sh := range shards {
		ri := sh.recovery
		if ri == nil {
			continue
		}
		if out == nil {
			out = &RecoveryInfo{Recovered: true}
		}
		out.CheckpointJobs += ri.CheckpointJobs
		out.WALJobs += ri.WALJobs
		out.TornBytes += ri.TornBytes
		out.Jobs += ri.Jobs
		out.CheckpointClock = max(out.CheckpointClock, ri.CheckpointClock)
		out.Clock = max(out.Clock, ri.Clock)
	}
	return out
}

// Scheduler returns the serving scheduler's name.
func (s *Server) Scheduler() string { return s.shards[0].sched.Name() }

// Shards returns the shard count.
func (s *Server) Shards() int { return len(s.shards) }

// Draining reports whether the server has stopped accepting jobs.
func (s *Server) Draining() bool { return s.draining.Load() }

// Ready reports whether the server is accepting work: recovery has finished,
// no drain has started, and durability is intact on every shard. /readyz
// mirrors it.
func (s *Server) Ready() bool {
	return s.ready.Load() && !s.draining.Load() &&
		s.degraded.Load() == nil && s.engineError() == ""
}

// Degraded returns the first durability failure ("" when healthy): a WAL or
// checkpoint write some shard could not make durable. A degraded daemon
// rejects new submissions on every shard — routing around one shard's broken
// commitment would hide it — but keeps serving reads and can still drain.
func (s *Server) Degraded() string {
	if p := s.degraded.Load(); p != nil {
		return *p
	}
	return ""
}

// degrade records the first durability failure at the server level; called
// from shard engine goroutines. The log record always carries the shard
// index, so an operator can tell which shard-<i>/ directory is sick even on
// a single-shard daemon (whose degraded message keeps its unprefixed form).
func (s *Server) degrade(shardIdx int, op string, err error) {
	msg := op + ": " + err.Error()
	if len(s.shards) > 1 {
		msg = fmt.Sprintf("shard %d: %s", shardIdx, msg)
	}
	s.logger().Error("durability degraded", "shard", shardIdx, "op", op, "err", err)
	s.degraded.CompareAndSwap(nil, &msg)
}

// engineError returns the first shard's terminal engine error ("" when none).
func (s *Server) engineError() string {
	for _, sh := range s.shards {
		if ep := sh.engineErr.Load(); ep != nil {
			return *ep
		}
	}
	return ""
}

// Recovery describes the durable state this daemon recovered at start,
// aggregated across shards; nil on a fresh start or without a WAL directory.
// Per-shard reports are in /v1/stats.
func (s *Server) Recovery() *RecoveryInfo { return s.recovery }

// Checkpoint forces an engine-state checkpoint on every shard through its
// mailbox, in shard order, and returns the first failure. It errors when the
// server has no WAL directory, is degraded, or has drained. Deterministic-
// time embeddings and tests use it; a live daemon checkpoints on its own
// cadence (Config.CheckpointInterval).
func (s *Server) Checkpoint() error {
	if s.cfg.WALDir == "" {
		return fmt.Errorf("serve: no WAL directory configured")
	}
	for _, sh := range s.shards {
		msg := checkpointMsg{reply: make(chan error, 1)}
		select {
		case sh.reqs <- msg:
		case <-sh.engineDone:
			return fmt.Errorf("serve: checkpoint after drain")
		}
		select {
		case err := <-msg.reply:
			if err != nil {
				return err
			}
		case <-sh.engineDone:
			select {
			case err := <-msg.reply:
				if err != nil {
					return err
				}
			default:
				return fmt.Errorf("serve: checkpoint after drain")
			}
		}
	}
	return nil
}

// Drain stops admission, fast-forwards every shard until its committed jobs
// have completed or expired, seals the shards, and returns the merged final
// Result. Simulated time is decoupled from wall time here: committed jobs
// finish at their simulated ticks immediately rather than in real time.
//
// The drain is two-phase so a signal mid-drain can never interleave a late
// submission into a finalized log. Phase 1 quiesces: every shard acknowledges
// that it has stopped committing (submissions already in its mailbox are
// behind the quiesce message and get 503). Only after every shard has
// quiesced does phase 2 finalize each shard — run to end, seal the WAL,
// return its Result. Between the phases shards keep serving reads.
//
// Drain is idempotent and safe from any goroutine; later calls return the
// same Result.
func (s *Server) Drain() *sim.Result {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		s.logger().Info("drain started", "shards", len(s.shards))
		t0 := time.Now()
		quiesced := make([]chan struct{}, len(s.shards))
		for i, sh := range s.shards {
			quiesced[i] = make(chan struct{})
			sh.reqs <- quiesceMsg{reply: quiesced[i]}
		}
		for _, c := range quiesced {
			<-c
		}
		t1 := time.Now()
		s.metrics.observe("serve.drain.quiesce_us", float64(t1.Sub(t0).Microseconds()))
		finals := make([]chan *sim.Result, len(s.shards))
		for i, sh := range s.shards {
			finals[i] = make(chan *sim.Result, 1)
			sh.reqs <- finalizeMsg{reply: finals[i]}
		}
		results := make([]*sim.Result, len(s.shards))
		for i := range finals {
			results[i] = <-finals[i]
		}
		s.result = mergeResults(results)
		s.metrics.observe("serve.drain.finalize_us", float64(time.Since(t1).Microseconds()))
		s.logger().Info("drain finished",
			"completed", s.result.Completed, "expired", s.result.Expired,
			"profit", s.result.TotalProfit, "ticks", s.result.Ticks)
	})
	return s.result
}

// Advance drives every shard's session clock to the given tick through its
// engine mailbox, returning once all shards have processed it. It exists for
// deterministic-time embeddings and tests running with the ticker disabled
// (TickInterval < 0); with a live ticker the wall clock usually outruns it
// and the call degenerates to a no-op. Advancing a drained server is a no-op.
func (s *Server) Advance(to int64) {
	for _, sh := range s.shards {
		msg := advanceMsg{to: to, reply: make(chan struct{})}
		select {
		case sh.reqs <- msg:
		case <-sh.engineDone:
			continue
		}
		select {
		case <-msg.reply:
		case <-sh.engineDone:
		}
	}
}

// Messages between HTTP handlers and the shard engine goroutines.

type submitMsg struct {
	spec  JobSpec
	key   string       // idempotency key; "" means none
	tr    *submitTrace // request-scoped trace; nil disables per-request stamps
	reply chan submitReply
}

// submitTrace threads one submission's request-scoped observability through
// the mailbox: the request ID, whether durable records should carry it
// (client-supplied), and the per-stage timestamps. The HTTP handler stamps
// enqueued before the mailbox send; the engine stamps the rest before the
// reply; the handler reads them after receiving it — the reply channel
// orders every access, so no lock is needed.
type submitTrace struct {
	reqID       string
	persist     bool // client-supplied X-Request-Id: record in WAL/route records
	enqueued    time.Time
	dequeued    time.Time
	walAppended time.Time
	committed   time.Time
}

type submitReply struct {
	status int // HTTP status
	resp   JobResponse
	err    string
	reason string // machine-readable error class for the unified envelope
}

// batchItem is one spec of a batched submission, carrying its position in
// the client's batch so per-item verdicts come back in order.
type batchItem struct {
	spec JobSpec
	key  string // per-item idempotency key; "" means none
	idx  int    // position in the client's batch
}

// batchMsg carries one placer group — every item of a batch routed to the
// same shard, in batch order — over a single mailbox crossing. The engine
// commits the group under one WAL fsync window and replies with per-item
// verdicts aligned to items.
type batchMsg struct {
	items []batchItem
	tr    *submitTrace // group-level trace; nil disables stamps
	reply chan batchReply
}

type batchReply struct {
	replies []submitReply // aligned to batchMsg.items
}

type lookupMsg struct {
	id    int
	reply chan lookupReply
}

type lookupReply struct {
	found bool
	resp  StatusResponse
}

type statsMsg struct {
	reply chan shardStatsReply
}

type shardStatsReply struct {
	stats   ShardStats
	summary telemetry.Summary
	obs     *telemetry.Registry // clone of the shard's obsReg; nil when disabled
}

type advanceMsg struct {
	to    int64
	reply chan struct{}
}

type checkpointMsg struct {
	reply chan error
}

// quiesceMsg is the drain's first phase: the shard stops committing
// submissions and acknowledges by closing reply.
type quiesceMsg struct {
	reply chan struct{}
}

// finalizeMsg is the drain's second phase: the shard runs to end, seals its
// durable state, replies with its Result, and exits its engine loop.
type finalizeMsg struct {
	reply chan *sim.Result
}

// decideAdmission runs the serving admission query for a prospective job:
// the verdict string, the scheduler's reason, and the virtualization plan.
// Schedulers without an admission test accept every valid job. Shared by the
// submission path and crash recovery, which re-derives every logged verdict.
// policy is the daemon-wide commitment level; under an effective on-arrival
// commitment a job the scheduler would park is rejected instead — the
// release-time verdict is final, so there is no "maybe later".
func decideAdmission(adm admitter, j *sim.Job, policy sim.Commitment) (DecisionString, string, *PlanInfo) {
	if adm == nil {
		return DecisionAccepted, "", nil
	}
	view := sim.JobView{ID: j.ID, Release: j.Release, W: j.Graph.TotalWork(), L: j.Graph.Span(), Profit: j.Profit, Commitment: j.Commitment}
	d := adm.Admission(view)
	plan := &PlanInfo{Alloc: d.Plan.Alloc, X: d.Plan.X, Density: d.Plan.Density, Good: d.Plan.Good}
	switch {
	case d.Admit:
		return DecisionAdmitted, "", plan
	case d.Reason == "not-delta-good":
		// The job can never pass the freshness test either: it is infeasible
		// for S at any later point, so it is not committed (and not logged —
		// the WAL and replay log hold accepted arrivals).
		return DecisionRejected, d.Reason, plan
	case j.Commitment.Resolve(policy) == sim.CommitmentOnArrival:
		// Would be parked, but the arrival verdict must be final: reject
		// without committing the job to the session.
		return DecisionRejected, d.Reason, plan
	default:
		// Parked in P: committed, and eligible for admission when a
		// completion or recovery frees band capacity.
		return DecisionParked, d.Reason, plan
	}
}
