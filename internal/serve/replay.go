package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"sync"

	"dagsched/internal/cliflags"
	"dagsched/internal/sim"
	"dagsched/internal/workload"
)

// ReplayHeader is the first line of a replay log: everything needed to
// reconstruct the serving configuration offline. Speed is the rational in
// its "p/q" (or bare "p") string form, which ParseSpeed round-trips.
//
// Sharded sessions extend the header: Shards is the shard count (absent for
// the unsharded layout, keeping single-shard logs byte-identical to the
// historical format), and in a per-shard WAL header Shard is the 0-based
// owner while M is that shard's capacity slice. The front-door replay log
// keeps the total M and no Shard field; per-arrival route records map each
// job to its shard.
type ReplayHeader struct {
	Type   string  `json:"type"` // always "header"
	M      int     `json:"m"`
	Sched  string  `json:"sched"`
	Eps    float64 `json:"eps"`
	Speed  string  `json:"speed"`
	Shards int     `json:"shards,omitempty"`
	Shard  int     `json:"shard,omitempty"`
	// Commitment is the daemon-wide commitment policy, present only when it
	// is binding (delta or on-arrival). The non-binding policies do not
	// change admission or the schedule, so they stay off the header and old
	// logs replay unchanged.
	Commitment string `json:"commitment,omitempty"`
}

// routeRecord maps one replay-log job to the shard that committed it. It
// precedes the job's wire line; both are appended under one mutex hold, so
// the pair is adjacent even with shards interleaving. ReqID is present only
// when the client supplied an X-Request-Id, so a request can be traced from
// client logs through the route record to the owning shard.
type routeRecord struct {
	Type  string `json:"type"` // always "route"
	ID    int    `json:"id"`
	Shard int    `json:"shard"` // 0-based
	ReqID string `json:"reqId,omitempty"`
}

// replayWriter appends the header and one instance-wire job line per
// accepted arrival (preceded by a route record when sharded). Shard engine
// goroutines share it; the mutex serializes their appends.
type replayWriter struct {
	mu     sync.Mutex
	w      io.Writer
	shards int
}

func (rw *replayWriter) header(cfg Config) error {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	return rw.writeLine(headerOf(cfg))
}

func (rw *replayWriter) appendJob(shard int, j *sim.Job, reqID string) error {
	data, err := workload.MarshalJob(j)
	if err != nil {
		return err
	}
	rw.mu.Lock()
	defer rw.mu.Unlock()
	if rw.shards > 1 {
		if err := rw.writeLine(routeRecord{Type: "route", ID: j.ID, Shard: shard, ReqID: reqID}); err != nil {
			return err
		}
	}
	data = append(data, '\n')
	_, err = rw.w.Write(data)
	return err
}

func (rw *replayWriter) writeLine(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = rw.w.Write(data)
	return err
}

// ReadReplay parses a replay log back into its header and job set, in
// arrival order. Route records of a sharded log are consumed and dropped;
// use Replay to re-simulate shard by shard.
func ReadReplay(r io.Reader) (ReplayHeader, []*sim.Job, error) {
	h, jobs, _, err := readRouted(r)
	return h, jobs, err
}

// readRouted parses a replay log including its route records: shardOf maps
// job ID → shard for every job a route record covered.
func readRouted(r io.Reader) (ReplayHeader, []*sim.Job, map[int]int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var h ReplayHeader
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return h, nil, nil, err
		}
		return h, nil, nil, fmt.Errorf("serve: empty replay log")
	}
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return h, nil, nil, fmt.Errorf("serve: replay header: %w", err)
	}
	if h.Type != "header" {
		return h, nil, nil, fmt.Errorf("serve: replay log starts with type %q, want header", h.Type)
	}
	var jobs []*sim.Job
	shardOf := make(map[int]int)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var tag struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &tag); err == nil && tag.Type == "route" {
			var rr routeRecord
			if err := json.Unmarshal(line, &rr); err != nil {
				return h, nil, nil, fmt.Errorf("serve: replay route record: %w", err)
			}
			shardOf[rr.ID] = rr.Shard
			continue
		}
		j, err := workload.UnmarshalJob(line)
		if err != nil {
			return h, nil, nil, fmt.Errorf("serve: replay job %d: %w", len(jobs)+1, err)
		}
		jobs = append(jobs, j)
	}
	return h, jobs, shardOf, sc.Err()
}

// Replay re-simulates a replay log offline with the batch engine and returns
// the Result. Because each serving shard stamps releases from its own clock
// and assigns ascending IDs on its stripe inside its engine goroutine, the
// batch run over each shard's logged job set — on that shard's capacity
// slice — reproduces the shard's Result bit-identically, and the merged
// aggregate matches the daemon's drained Result (modulo the Result.Engine
// label, which names the engine that executed).
func Replay(r io.Reader) (*sim.Result, error) {
	h, jobs, shardOf, err := readRouted(r)
	if err != nil {
		return nil, err
	}
	speed, err := cliflags.ParseSpeed(h.Speed)
	if err != nil {
		return nil, err
	}
	if h.Shards <= 1 {
		sched, err := cliflags.MakeScheduler(h.Sched, h.Eps, false)
		if err != nil {
			return nil, err
		}
		if err := applyCommitment(sched, h.Commitment); err != nil {
			return nil, err
		}
		return sim.RunAuto(sim.Config{M: h.M, Speed: speed}, jobs, sched)
	}
	byShard := make([][]*sim.Job, h.Shards)
	for _, j := range jobs {
		si, ok := shardOf[j.ID]
		if !ok {
			return nil, fmt.Errorf("serve: sharded replay log has no route record for job %d", j.ID)
		}
		if si < 0 || si >= h.Shards {
			return nil, fmt.Errorf("serve: job %d routed to shard %d of %d", j.ID, si, h.Shards)
		}
		byShard[si] = append(byShard[si], j)
	}
	part := cliflags.PartitionCapacity(h.M, h.Shards)
	results := make([]*sim.Result, h.Shards)
	for i, shardJobs := range byShard {
		sched, err := cliflags.MakeScheduler(h.Sched, h.Eps, false)
		if err != nil {
			return nil, err
		}
		if err := applyCommitment(sched, h.Commitment); err != nil {
			return nil, err
		}
		results[i], err = sim.RunAuto(sim.Config{M: part[i], Speed: speed}, shardJobs, sched)
		if err != nil {
			return nil, fmt.Errorf("serve: replay shard %d: %w", i, err)
		}
	}
	return mergeResults(results), nil
}

// mergeResults folds per-shard Results into the daemon-level aggregate.
// Additive fields sum; Ticks is the latest shard's end; Jobs concatenate
// sorted by ID (globally unique across the stripes). Deterministic for a
// given result slice, and used identically by the drain path and the offline
// replayers, so served-vs-replayed comparisons stay bit-exact. A single
// result passes through untouched.
func mergeResults(rs []*sim.Result) *sim.Result {
	if len(rs) == 1 {
		return rs[0]
	}
	out := &sim.Result{
		Scheduler: rs[0].Scheduler,
		Speed:     rs[0].Speed,
		Engine:    rs[0].Engine,
	}
	for _, r := range rs {
		if r.Engine != out.Engine {
			out.Engine = "sharded"
		}
		out.M += r.M
		out.Ticks = max(out.Ticks, r.Ticks)
		out.TotalProfit += r.TotalProfit
		out.OfferedProfit += r.OfferedProfit
		out.Completed += r.Completed
		out.Expired += r.Expired
		out.BusyProcTicks += r.BusyProcTicks
		out.IdleProcTicks += r.IdleProcTicks
		out.Jobs = append(out.Jobs, r.Jobs...)
	}
	slices.SortFunc(out.Jobs, func(a, b sim.JobStat) int { return a.ID - b.ID })
	return out
}
