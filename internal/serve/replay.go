package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"dagsched/internal/cliflags"
	"dagsched/internal/rational"
	"dagsched/internal/sim"
	"dagsched/internal/workload"
)

// ReplayHeader is the first line of a replay log: everything needed to
// reconstruct the serving configuration offline. Speed is the rational in
// its "p/q" (or bare "p") string form, which ParseSpeed round-trips.
type ReplayHeader struct {
	Type  string  `json:"type"` // always "header"
	M     int     `json:"m"`
	Sched string  `json:"sched"`
	Eps   float64 `json:"eps"`
	Speed string  `json:"speed"`
}

// replayWriter appends the header and one instance-wire job line per
// accepted arrival. All writes happen on the engine goroutine.
type replayWriter struct {
	w io.Writer
}

func (rw *replayWriter) header(cfg Config) error {
	speed := cfg.Speed
	if speed.Num == 0 {
		speed = rational.FromInt(1) // the zero value means speed 1
	}
	h := ReplayHeader{Type: "header", M: cfg.M, Sched: cfg.Sched, Eps: cfg.Eps, Speed: speed.String()}
	return rw.writeLine(h)
}

func (rw *replayWriter) appendJob(j *sim.Job) error {
	data, err := workload.MarshalJob(j)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = rw.w.Write(data)
	return err
}

func (rw *replayWriter) writeLine(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = rw.w.Write(data)
	return err
}

// ReadReplay parses a replay log back into its header and job set.
func ReadReplay(r io.Reader) (ReplayHeader, []*sim.Job, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var h ReplayHeader
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return h, nil, err
		}
		return h, nil, fmt.Errorf("serve: empty replay log")
	}
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return h, nil, fmt.Errorf("serve: replay header: %w", err)
	}
	if h.Type != "header" {
		return h, nil, fmt.Errorf("serve: replay log starts with type %q, want header", h.Type)
	}
	var jobs []*sim.Job
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		j, err := workload.UnmarshalJob(line)
		if err != nil {
			return h, nil, fmt.Errorf("serve: replay job %d: %w", len(jobs)+1, err)
		}
		jobs = append(jobs, j)
	}
	return h, jobs, sc.Err()
}

// Replay re-simulates a replay log offline with the batch engine and returns
// the Result. Because the serving session stamps releases from its own clock
// and assigns ascending IDs inside the engine goroutine, the batch run over
// the logged job set reproduces the serving session's Result bit-identically
// (modulo the Result.Engine label, which names the engine that executed).
func Replay(r io.Reader) (*sim.Result, error) {
	h, jobs, err := ReadReplay(r)
	if err != nil {
		return nil, err
	}
	sched, err := cliflags.MakeScheduler(h.Sched, h.Eps, false)
	if err != nil {
		return nil, err
	}
	speed, err := cliflags.ParseSpeed(h.Speed)
	if err != nil {
		return nil, err
	}
	return sim.RunAuto(sim.Config{M: h.M, Speed: speed}, jobs, sched)
}
