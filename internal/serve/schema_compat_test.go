package serve

import (
	"bytes"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The schema-compat gate: golden fixtures of v1 scalar specs — the exact
// bytes a pre-v2 daemon wrote to its WAL and checkpoint at -shards=1 with
// the default on-admission commitment — must be reproduced byte-identically
// by the current code path, and a directory seeded with the v1 bytes must
// recover cleanly. The goldens under testdata/schema_compat were generated
// against the PR 9 tree with -update-schema-golden; regenerating them is an
// explicit act of declaring a durable-format change.

var updateSchemaGolden = flag.Bool("update-schema-golden", false,
	"rewrite testdata/schema_compat from the current code path")

const schemaGoldenDir = "testdata/schema_compat"

// schemaCompatSubmissions drives the fixed v1 workload: raw wire bodies (no
// Go-side marshaling, so the fixture pins the parser too), single and batch
// submissions, keyed admits and rejects, and deterministic clock advances.
func schemaCompatSubmissions(t *testing.T, srv *Server, ts *httptest.Server) {
	t.Helper()
	post := func(path, body, key string, wantStatus int) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if key != "" {
			req.Header.Set("Idempotency-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("POST %s %q: status %d, want %d", path, body, resp.StatusCode, wantStatus)
		}
	}

	post("/v1/jobs", `{"w":32,"l":4,"deadline":40,"profit":10}`, "", 200)
	post("/v1/jobs", `{"w":100,"l":2,"deadline":12,"profit":8}`, "fix-reject", 200)
	srv.Advance(3)
	post("/v1/jobs", `{"w":8,"l":2,"deadline":25,"profit":3}`, "fix-admit", 200)
	post("/v1/jobs:batch",
		`[{"w":6,"l":2,"deadline":30,"profit":2},{"w":6,"l":3,"deadline":30,"profit":2,"key":"fix-batch"}]`,
		"", 200)
	srv.Advance(5)
}

// captureSchemaFiles reads the shard-0 durable files under the given prefix
// into the capture map.
func captureSchemaFiles(t *testing.T, dir, prefix string, files map[string][]byte) {
	t.Helper()
	for _, name := range []string{walFileName, checkpointFileName} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		files[prefix+"_"+name] = data
	}
}

func TestSchemaCompatGolden(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Config{
		M: 4, TickInterval: -1,
		WALDir: dir, Fsync: FsyncAlways, CheckpointInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	files := make(map[string][]byte)
	schemaCompatSubmissions(t, srv, ts)
	// Pre-checkpoint image: the WAL still holds every job frame.
	captureSchemaFiles(t, dir, "pre", files)
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// One more accepted record lands in the post-checkpoint WAL suffix.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
		strings.NewReader(`{"w":4,"l":2,"deadline":30,"profit":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("post-checkpoint submit: status %d", resp.StatusCode)
	}
	captureSchemaFiles(t, dir, "ckpt", files)
	srv.Drain()
	// Sealed image after drain: the final checkpoint holds the whole history.
	captureSchemaFiles(t, dir, "final", files)

	if *updateSchemaGolden {
		if err := os.MkdirAll(schemaGoldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range files {
			if err := os.WriteFile(filepath.Join(schemaGoldenDir, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("rewrote %d schema-compat goldens", len(files))
		return
	}
	for name, got := range files {
		want, err := os.ReadFile(filepath.Join(schemaGoldenDir, name))
		if err != nil {
			t.Fatalf("missing golden %s (run with -update-schema-golden): %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("durable bytes drifted from the v1 golden %s:\n got: %s\nwant: %s",
				name, got, want)
		}
	}
}

// TestSchemaCompatRecovery seeds a fresh directory with the v1 golden bytes
// and recovers a daemon from it: the v2 code path must replay v1 durable
// state without rewriting history (the re-sealed checkpoint carries the same
// jobs and fingerprint discipline the chaos harness pins elsewhere).
func TestSchemaCompatRecovery(t *testing.T) {
	if *updateSchemaGolden {
		t.Skip("goldens being rewritten")
	}
	dir := t.TempDir()
	for goldenName, fileName := range map[string]string{
		"pre_" + walFileName:        walFileName,
		"pre_" + checkpointFileName: checkpointFileName,
	} {
		data, err := os.ReadFile(filepath.Join(schemaGoldenDir, goldenName))
		if err != nil {
			t.Fatalf("missing golden %s (run with -update-schema-golden): %v", goldenName, err)
		}
		if err := os.WriteFile(filepath.Join(dir, fileName), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := New(Config{
		M: 4, TickInterval: -1,
		WALDir: dir, Fsync: FsyncAlways, CheckpointInterval: -1,
	})
	if err != nil {
		t.Fatalf("recovering from v1 golden bytes: %v", err)
	}
	rec := srv.Recovery()
	if rec == nil || !rec.Recovered {
		t.Fatalf("v1 golden dir not recovered: %+v", rec)
	}
	// The v1 image holds 4 accepted jobs (IDs 1..4; the keyed reject is a
	// verdict record, not a job).
	if rec.Jobs != 4 {
		t.Fatalf("recovered %d jobs from the v1 image, want 4", rec.Jobs)
	}
	// The keyed verdicts still collapse retries.
	rep := submitDirect(t, srv, JobSpec{W: 100, L: 2, Deadline: 12, Profit: ScalarProfit(8)}, "fix-reject")
	if rep.status != 200 || rep.resp.Decision != DecisionRejected || !rep.resp.Replayed {
		t.Fatalf("v1 keyed reject did not replay: %+v", rep)
	}
	res := srv.Drain()
	if res.Completed+res.Expired != 4 {
		t.Fatalf("drained %d+%d jobs, want 4", res.Completed, res.Expired)
	}
}
