package serve

import (
	"hash/crc32"
	"io"
	"math"
	"strconv"
	"sync"
)

// The wire fast path. BENCH_PR8 put the HTTP+JSON submission route at ~15×
// the engine-path cost, most of it encoding/json reflection and per-request
// allocation. Scalar specs — {"w":..,"l":..,"deadline":..,"profit":..},
// which is what a high-rate client sends — don't need a general JSON
// machine: parseJobSpecFast scans them in one pass over the request bytes
// with zero allocations, and appendJobResponse renders the verdict into a
// pooled buffer byte-identically to encoding/json. Anything off the fast
// path — a dag or curve field, an unknown key, an escaped string, an
// exponent-form or over-long number — returns ok=false and the caller falls
// back to encoding/json, which both handles it and produces the canonical
// error shapes for genuinely malformed input. The fallback is therefore
// transparent: the fast path never changes what the client sees, only what
// it costs.

// wireBuf is pooled request/response scratch for the wire fast path,
// extending the engine's buffer-reuse idiom to the HTTP layer.
type wireBuf struct{ b []byte }

var wireBufPool = sync.Pool{New: func() any { return &wireBuf{b: make([]byte, 0, 4096)} }}

func getWireBuf() *wireBuf { return wireBufPool.Get().(*wireBuf) }

func putWireBuf(w *wireBuf) {
	if cap(w.b) > 1<<20 {
		return // an oversized body grew it; let the GC take it
	}
	w.b = w.b[:0]
	wireBufPool.Put(w)
}

// readAllInto reads r to EOF into dst (grown as needed), allocating only
// when dst's capacity is exceeded — with a pooled dst the steady state is
// zero allocations.
func readAllInto(dst []byte, r io.Reader) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

func skipJSONSpace(data []byte, i int) int {
	for i < len(data) {
		switch data[i] {
		case ' ', '\t', '\n', '\r':
			i++
		default:
			return i
		}
	}
	return i
}

// parseJSONInt scans a plain integer — optional sign, up to 18 digits, no
// leading zeros, no fraction or exponent — returning the index after it.
// ok=false means the number is off the fast path.
func parseJSONInt(data []byte, i int) (v int64, next int, ok bool) {
	neg := false
	if i < len(data) && data[i] == '-' {
		neg = true
		i++
	}
	start := i
	for i < len(data) && data[i] >= '0' && data[i] <= '9' {
		v = v*10 + int64(data[i]-'0')
		i++
	}
	n := i - start
	if n == 0 || n > 18 {
		return 0, i, false
	}
	if n > 1 && data[start] == '0' {
		return 0, i, false // leading zero: encoding/json rejects it
	}
	if i < len(data) {
		switch data[i] {
		case '.', 'e', 'E':
			return 0, i, false // not an integer (or exponent form)
		}
	}
	if neg {
		v = -v
	}
	return v, i, true
}

// pow10 holds exact float64 powers of ten for the fraction scaling below.
var pow10 = [16]float64{1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15}

// parseJSONFloat scans a decimal number without an exponent and with at
// most 15 significant digits: mantissa and fraction length are exact in
// int64/float64, so mant / 10^frac is the correctly rounded value — the
// same bits strconv.ParseFloat produces. Anything longer or in exponent
// form falls back.
func parseJSONFloat(data []byte, i int) (v float64, next int, ok bool) {
	neg := false
	if i < len(data) && data[i] == '-' {
		neg = true
		i++
	}
	var mant int64
	digits := 0
	start := i
	for i < len(data) && data[i] >= '0' && data[i] <= '9' {
		mant = mant*10 + int64(data[i]-'0')
		digits++
		i++
	}
	intDigits := i - start
	if intDigits == 0 {
		return 0, i, false
	}
	if intDigits > 1 && data[start] == '0' {
		return 0, i, false
	}
	frac := 0
	if i < len(data) && data[i] == '.' {
		i++
		fs := i
		for i < len(data) && data[i] >= '0' && data[i] <= '9' {
			mant = mant*10 + int64(data[i]-'0')
			digits++
			i++
		}
		frac = i - fs
		if frac == 0 {
			return 0, i, false
		}
	}
	if digits > 15 || frac > 15 {
		return 0, i, false
	}
	if i < len(data) && (data[i] == 'e' || data[i] == 'E') {
		return 0, i, false
	}
	v = float64(mant) / pow10[frac]
	if neg {
		v = -v
	}
	return v, i, true
}

// parseJSONString scans a plain string — printable ASCII, no escapes —
// returning a view into data. Escapes and non-ASCII fall back.
func parseJSONString(data []byte, i int) (s []byte, next int, ok bool) {
	if i >= len(data) || data[i] != '"' {
		return nil, i, false
	}
	i++
	start := i
	for i < len(data) {
		c := data[i]
		if c == '"' {
			return data[start:i], i + 1, true
		}
		if c == '\\' || c < 0x20 || c > 0x7e {
			return nil, i, false
		}
		i++
	}
	return nil, i, false
}

// parseJobSpecFast decodes a scalar job spec — an object whose keys are
// drawn from w, l, deadline, profit (plus key when allowKey, for batch
// items) with plain numeric or string values. ok=false means the bytes are
// off the fast path and the caller must fall back to encoding/json; the
// returned key is a view into data, valid only while data is. Trailing
// bytes after the object are ignored, matching json.Decoder.Decode's
// one-value read on the sequential endpoint.
func parseJobSpecFast(data []byte, allowKey bool) (spec JobSpec, key []byte, ok bool) {
	i := skipJSONSpace(data, 0)
	if i >= len(data) || data[i] != '{' {
		return JobSpec{}, nil, false
	}
	i = skipJSONSpace(data, i+1)
	if i < len(data) && data[i] == '}' {
		return spec, nil, true // {}: build() rejects it exactly like the slow path
	}
	for {
		name, n, sok := parseJSONString(data, i)
		if !sok {
			return JobSpec{}, nil, false
		}
		i = skipJSONSpace(data, n)
		if i >= len(data) || data[i] != ':' {
			return JobSpec{}, nil, false
		}
		i = skipJSONSpace(data, i+1)
		switch {
		case string(name) == "w":
			v, n, vok := parseJSONInt(data, i)
			if !vok {
				return JobSpec{}, nil, false
			}
			spec.W, i = v, n
		case string(name) == "l":
			v, n, vok := parseJSONInt(data, i)
			if !vok {
				return JobSpec{}, nil, false
			}
			spec.L, i = v, n
		case string(name) == "deadline":
			v, n, vok := parseJSONInt(data, i)
			if !vok {
				return JobSpec{}, nil, false
			}
			spec.Deadline, i = v, n
		case string(name) == "profit":
			// A '{' here is a structured profit object: off the fast path.
			v, n, vok := parseJSONFloat(data, i)
			if !vok {
				return JobSpec{}, nil, false
			}
			spec.Profit, i = ScalarProfit(v), n
		case allowKey && string(name) == "key":
			s, n, vok := parseJSONString(data, i)
			if !vok {
				return JobSpec{}, nil, false
			}
			key, i = s, n
		default:
			// dag, curve, unknown, or duplicate-in-spirit: the general
			// decoder owns it (and owns rejecting it).
			return JobSpec{}, nil, false
		}
		i = skipJSONSpace(data, i)
		if i >= len(data) {
			return JobSpec{}, nil, false
		}
		switch data[i] {
		case ',':
			i = skipJSONSpace(data, i+1)
		case '}':
			return spec, key, true
		default:
			return JobSpec{}, nil, false
		}
	}
}

// jsonPlain reports whether s renders under encoding/json as itself — no
// escapes, including the HTML-safe < family. Every string the server
// itself puts in a JobResponse is plain; a scheduler reason that is not
// sends the response down the reflection path instead.
func jsonPlain(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c > 0x7e || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return false
		}
	}
	return true
}

// appendJSONFloat appends f exactly as encoding/json renders a float64:
// 'f' form in [1e-6, 1e21), 'e' form outside it with the two-digit exponent
// shortened (e-09 → e-9).
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// appendJobResponse appends r marshaled byte-identically to
// json.Marshal(r): same field order, same omitempty behavior, same float
// formatting. ok=false (non-plain string, non-finite float) means the
// caller must fall back to encoding/json.
func appendJobResponse(b []byte, r *JobResponse) ([]byte, bool) {
	if !jsonPlain(string(r.Decision)) || !jsonPlain(r.Reason) || !jsonPlain(r.Commitment) {
		return b, false
	}
	if r.Plan != nil && (math.IsNaN(r.Plan.X) || math.IsInf(r.Plan.X, 0) ||
		math.IsNaN(r.Plan.Density) || math.IsInf(r.Plan.Density, 0)) {
		return b, false
	}
	b = append(b, '{')
	if r.ID != 0 {
		b = append(b, `"id":`...)
		b = strconv.AppendInt(b, int64(r.ID), 10)
		b = append(b, ',')
	}
	b = append(b, `"release":`...)
	b = strconv.AppendInt(b, r.Release, 10)
	b = append(b, `,"decision":"`...)
	b = append(b, r.Decision...)
	b = append(b, '"')
	if r.Reason != "" {
		b = append(b, `,"reason":"`...)
		b = append(b, r.Reason...)
		b = append(b, '"')
	}
	if r.Commitment != "" {
		b = append(b, `,"commitment":"`...)
		b = append(b, r.Commitment...)
		b = append(b, '"')
	}
	if r.Replayed {
		b = append(b, `,"replayed":true`...)
	}
	if r.Plan != nil {
		b = append(b, `,"plan":{"alloc":`...)
		b = strconv.AppendInt(b, int64(r.Plan.Alloc), 10)
		b = append(b, `,"x":`...)
		b = appendJSONFloat(b, r.Plan.X)
		b = append(b, `,"density":`...)
		b = appendJSONFloat(b, r.Plan.Density)
		b = append(b, `,"good":`...)
		b = strconv.AppendBool(b, r.Plan.Good)
		b = append(b, '}')
	}
	b = append(b, '}')
	return b, true
}

// jsonRawPlain reports whether a raw JSON value can be embedded in a
// json.Marshal output verbatim: Marshal compacts RawMessage fields (strips
// insignificant whitespace) and HTML-escapes <, >, and & even inside them,
// so any byte outside printable ASCII, any whitespace, or any escape-target
// character forces the encoding/json fallback.
func jsonRawPlain(raw []byte) bool {
	for _, c := range raw {
		if c <= 0x20 || c > 0x7e || c == '<' || c == '>' || c == '&' {
			return false
		}
	}
	return len(raw) > 0
}

// appendWALJob renders a WALJob record byte-identically to json.Marshal —
// the accepted-submission hot path of the durable log. Falls back (ok=false)
// whenever any string needs escaping or the job wire bytes would not survive
// Marshal's RawMessage compaction verbatim; the caller then uses
// encoding/json, so the on-disk format is one encoder's output either way.
func appendWALJob(b []byte, rec *WALJob) ([]byte, bool) {
	if !jsonPlain(rec.Type) || !jsonPlain(rec.Key) || !jsonPlain(rec.ReqID) || !jsonRawPlain(rec.Job) {
		return b, false
	}
	b = append(b, `{"type":"`...)
	b = append(b, rec.Type...)
	b = append(b, '"')
	if rec.Key != "" {
		b = append(b, `,"key":"`...)
		b = append(b, rec.Key...)
		b = append(b, '"')
	}
	if rec.ReqID != "" {
		b = append(b, `,"reqId":"`...)
		b = append(b, rec.ReqID...)
		b = append(b, '"')
	}
	b = append(b, `,"resp":`...)
	var ok bool
	if b, ok = appendJobResponse(b, &rec.Resp); !ok {
		return b, false
	}
	b = append(b, `,"job":`...)
	b = append(b, rec.Job...)
	b = append(b, '}')
	return b, true
}

const hexDigits = "0123456789abcdef"

// appendFrame wraps payload in the WAL line format — crc32c as eight hex
// digits, a space, the payload, a newline — appending in place where
// frameRecord would allocate.
func appendFrame(b, payload []byte) []byte {
	crc := crc32.Checksum(payload, walCRC)
	for shift := 28; shift >= 0; shift -= 4 {
		b = append(b, hexDigits[(crc>>shift)&0xf])
	}
	b = append(b, ' ')
	b = append(b, payload...)
	b = append(b, '\n')
	return b
}
