package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"dagsched/internal/telemetry"
)

// The write-ahead log turns the serving daemon's replay convenience into a
// durability guarantee: every record the daemon acknowledges is framed with a
// checksum and (under the default fsync policy) flushed to stable storage
// before the HTTP response leaves the engine goroutine, so an acknowledged
// admission survives SIGKILL. The on-disk layout is one directory holding
//
//	wal.log          framed records since the last checkpoint
//	checkpoint.json  one framed Checkpoint record (atomically replaced)
//
// Each wal.log line is "crc32c-hex8 <json payload>\n"; the CRC covers the
// payload bytes. On open, the tail of the log is scanned and the first
// incomplete or corrupt record — a torn write from the crash — truncates the
// file there. A checkpoint folds the whole record history into
// checkpoint.json (written to a temp file, fsynced, renamed, directory
// fsynced) and then resets wal.log to just its header, so recovery cost is
// bounded by the checkpoint plus the log written since it.

// FsyncPolicy selects when the WAL is flushed to stable storage.
type FsyncPolicy string

const (
	// FsyncAlways flushes after every record, before the submission is
	// acknowledged: an acked admission survives SIGKILL. The default.
	FsyncAlways FsyncPolicy = "always"
	// FsyncInterval flushes at most every Config.FsyncInterval (piggybacked
	// on the engine ticker): a crash can lose the last interval's records,
	// never a torn prefix of them.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncOff never flushes explicitly; the OS page cache decides. A crash
	// of the process alone loses nothing (the kernel holds the writes); a
	// machine crash can lose any unflushed suffix.
	FsyncOff FsyncPolicy = "off"
)

// ParseFsyncPolicy parses the -fsync flag value.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case FsyncAlways, FsyncInterval, FsyncOff:
		return FsyncPolicy(s), nil
	case "":
		return FsyncAlways, nil
	}
	return "", fmt.Errorf("serve: unknown fsync policy %q (want always, interval, or off)", s)
}

const (
	walFileName        = "wal.log"
	checkpointFileName = "checkpoint.json"
)

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// frameRecord wraps a JSON payload in the WAL line format.
func frameRecord(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+10)
	out = fmt.Appendf(out, "%08x ", crc32.Checksum(payload, walCRC))
	out = append(out, payload...)
	out = append(out, '\n')
	return out
}

// parseFrame validates one framed line (without its trailing newline) and
// returns the payload.
func parseFrame(line []byte) ([]byte, error) {
	if len(line) < 10 || line[8] != ' ' {
		return nil, fmt.Errorf("short or unframed record")
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return nil, fmt.Errorf("bad checksum field: %w", err)
	}
	payload := line[9:]
	if got := crc32.Checksum(payload, walCRC); uint64(got) != want {
		return nil, fmt.Errorf("checksum mismatch: record says %08x, payload hashes to %08x", want, got)
	}
	return payload, nil
}

// scanWAL reads every intact framed record from path and truncates the file
// at the first torn or corrupt one (a crash mid-append leaves at most one).
// It returns the payloads in order and how many tail bytes were cut. A
// missing file is zero records, not an error.
func scanWAL(path string) (payloads [][]byte, torn int64, err error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	validEnd := int64(0)
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // no newline: torn tail
		}
		payload, perr := parseFrame(data[off : off+nl])
		if perr != nil {
			break
		}
		// Keep a copy: data is one backing array for the whole file.
		payloads = append(payloads, append([]byte(nil), payload...))
		off += nl + 1
		validEnd = int64(off)
	}
	torn = int64(len(data)) - validEnd
	if torn > 0 {
		if err := f.Truncate(validEnd); err != nil {
			return nil, 0, fmt.Errorf("truncating torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			return nil, 0, err
		}
	}
	return payloads, torn, nil
}

// wal is the append side of the log. All methods run on the engine goroutine
// (or before it starts).
type wal struct {
	dir      string
	f        *os.File
	policy   FsyncPolicy
	interval time.Duration
	dirty    bool
	batch    bool // inside a group-commit window (beginBatch..endBatch)
	lastSync time.Time
	records  int64 // records appended by this process

	// scratch and wbuf are engine-goroutine-owned reuse buffers: scratch
	// holds one record's payload while it is encoded, wbuf accumulates
	// framed lines. Outside a group-commit window wbuf is written (one
	// syscall) per record, exactly the old cadence; inside one it
	// accumulates the whole group and endBatch writes it with a single
	// syscall before the group's one fsync.
	scratch []byte
	wbuf    []byte

	// obs, when non-nil, receives fsync latency samples
	// (serve.wal_fsync_us). Owned by the same engine goroutine as the wal;
	// nil disables the timing entirely (the zero-cost-when-nil idiom).
	obs *telemetry.Registry
}

// openWAL opens (creating if needed) dir/wal.log for appending.
func openWAL(dir string, policy FsyncPolicy, interval time.Duration) (*wal, error) {
	f, err := os.OpenFile(filepath.Join(dir, walFileName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &wal{dir: dir, f: f, policy: policy, interval: interval, lastSync: time.Now()}, nil
}

// append marshals v, frames it, writes it, and flushes per the policy. An
// error means the record may not be durable; the caller must not acknowledge
// the submission it covers. Inside a group-commit window the frame is only
// buffered — durability (and write errors) surface at endBatch, before any
// record in the window is acknowledged.
func (w *wal) append(v any) error {
	var payload []byte
	if wj, isJob := v.(WALJob); isJob {
		// Accepted submissions are the hot path: render without
		// encoding/json when the record allows it (byte-identical output,
		// pinned by TestAppendWALJobMatchesMarshal).
		if b, ok := appendWALJob(w.scratch[:0], &wj); ok {
			payload, w.scratch = b, b
		}
	}
	if payload == nil {
		p, err := json.Marshal(v)
		if err != nil {
			return err
		}
		payload = p
	}
	w.wbuf = appendFrame(w.wbuf, payload)
	w.records++
	w.dirty = true
	if w.batch {
		return nil
	}
	if err := w.flushBuf(); err != nil {
		return err
	}
	if w.policy == FsyncAlways {
		return w.sync()
	}
	return nil
}

// flushBuf writes the accumulated frames with one syscall.
func (w *wal) flushBuf() error {
	if len(w.wbuf) == 0 {
		return nil
	}
	_, err := w.f.Write(w.wbuf)
	w.wbuf = w.wbuf[:0]
	return err
}

// beginBatch opens a group-commit window: FsyncAlways's per-record flush is
// suspended so a batch of appends shares one sync. The caller must not
// acknowledge any record in the window before endBatch succeeds.
func (w *wal) beginBatch() { w.batch = true }

// endBatch closes the group-commit window: the buffered frames hit the file
// with one write syscall and, under FsyncAlways, the whole window becomes
// durable with one fsync. The interval and off policies keep their usual
// flush cadence (the window only batches the write).
func (w *wal) endBatch() error {
	w.batch = false
	if err := w.flushBuf(); err != nil {
		return err
	}
	if w.policy != FsyncAlways {
		return nil
	}
	return w.sync()
}

// syncDeadline is the wall instant maybeSync would next flush — meaningful
// only under the interval policy with unflushed records. The event-jump
// engine loop arms its timer with it; the ticker loop just polls maybeSync.
func (w *wal) syncDeadline() (time.Time, bool) {
	if w.policy != FsyncInterval || !w.dirty {
		return time.Time{}, false
	}
	return w.lastSync.Add(w.interval), true
}

// sync flushes outstanding writes to stable storage (a no-op when clean or
// under FsyncOff).
func (w *wal) sync() error {
	if !w.dirty || w.policy == FsyncOff {
		w.dirty = false
		return nil
	}
	var t0 time.Time
	if w.obs != nil {
		t0 = time.Now()
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if w.obs != nil {
		w.obs.Observe("serve.wal_fsync_us", float64(time.Since(t0).Microseconds()))
	}
	w.dirty = false
	w.lastSync = time.Now()
	return nil
}

// maybeSync flushes when the interval policy's deadline has passed; called
// from the engine ticker.
func (w *wal) maybeSync(now time.Time) error {
	if w.policy != FsyncInterval || !w.dirty || now.Sub(w.lastSync) < w.interval {
		return nil
	}
	return w.sync()
}

// reset truncates the log and rewrites its header — the step after a
// checkpoint has folded the old records into checkpoint.json. Records are
// identified by job ID and idempotency key, so a crash between the
// checkpoint rename and this truncation only leaves records the next
// recovery recognizes as already covered.
func (w *wal) reset(header ReplayHeader) error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		return err
	}
	payload, err := json.Marshal(header)
	if err != nil {
		return err
	}
	if _, err := w.f.Write(frameRecord(payload)); err != nil {
		return err
	}
	w.dirty = true
	if w.policy != FsyncInterval {
		return w.sync()
	}
	return nil
}

func (w *wal) close() error {
	if err := w.sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// writeFileAtomic replaces dir/name with data crash-safely: temp file, fsync,
// rename, directory fsync. A crash leaves either the old file or the new one,
// never a torn mix.
func writeFileAtomic(dir, name string, data []byte) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
