package serve

import (
	"bytes"
	"encoding/json"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"dagsched/internal/telemetry"
)

// scrapeMetrics fetches url and parses the exposition into sample → value,
// keyed by the full sample name including its label block.
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q, want the Prometheus text exposition type", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseMetrics(t, string(body))
}

func parseMetrics(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("sample %q has non-numeric value: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// metricSum folds every sample whose name+labels start with prefix.
func metricSum(m map[string]float64, prefix string) float64 {
	var sum float64
	for k, v := range m {
		if strings.HasPrefix(k, prefix) {
			sum += v
		}
	}
	return sum
}

// normalizeExposition replaces every sample value with "V" so the golden
// file pins the scrape's shape — family names, help text, kinds, label sets,
// bucket boundaries, ordering — without pinning load-dependent numbers.
func normalizeExposition(t *testing.T, text string) string {
	t.Helper()
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			b.WriteString(line)
		} else {
			i := strings.LastIndexByte(line, ' ')
			if i < 0 {
				t.Fatalf("malformed exposition line %q", line)
			}
			b.WriteString(line[:i])
			b.WriteString(" V")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestMetricsGolden pins the /metrics exposition format: a scrape of a
// two-shard daemon, values normalized, must match testdata/metrics.golden
// byte for byte. Regenerate with SPAA_UPDATE_GOLDEN=1 when the scrape
// contract deliberately changes.
func TestMetricsGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 4, Shards: 2})

	// Exercise the three placer legs and a verdict so counters are live.
	postJob(t, ts, `{"w":8,"l":2,"deadline":30,"profit":2}`)
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(`{"w":4,"l":2,"deadline":30,"profit":1}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", "golden-key")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	got := normalizeExposition(t, string(raw))

	golden := filepath.Join("testdata", "metrics.golden")
	if os.Getenv("SPAA_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with SPAA_UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from %s — if deliberate, regenerate with SPAA_UPDATE_GOLDEN=1\n%s",
			golden, diffLines(string(want), got))
	}
}

// diffLines reports the first few line-level differences between two texts.
func diffLines(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	n := 0
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			b.WriteString("line " + strconv.Itoa(i+1) + ":\n  want: " + w + "\n  got:  " + g + "\n")
			if n++; n >= 8 {
				b.WriteString("  …\n")
				break
			}
		}
	}
	return b.String()
}

// TestMetricsScrapeValues sanity-checks live sample values (the golden test
// only pins shape): verdict counters move with traffic and per-shard labels
// land on the right shard.
func TestMetricsScrapeValues(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 4, Shards: 2})
	const n = 6
	for i := 0; i < n; i++ {
		postJob(t, ts, `{"w":4,"l":2,"deadline":40,"profit":1}`)
	}
	m := scrapeMetrics(t, ts.URL+"/metrics")

	if got := metricSum(m, "serve_accepted_total{"); got != n {
		t.Errorf("serve_accepted_total sums to %v, want %d", got, n)
	}
	if got := metricSum(m, "serve_placer_decisions_total{"); got != n {
		t.Errorf("serve_placer_decisions_total sums to %v, want %d", got, n)
	}
	if got := metricSum(m, "serve_submit_engine_us_count{"); got != n {
		t.Errorf("serve_submit_engine_us_count sums to %v, want %d", got, n)
	}
	if got := m[`serve_http_request_us_count{route="jobs"}`]; got != n {
		t.Errorf("serve_http_request_us_count = %v, want %d", got, n)
	}
	if got := m["serve_shards"]; got != 2 {
		t.Errorf("serve_shards = %v, want 2", got)
	}
	if got := m["serve_ready"]; got != 1 {
		t.Errorf("serve_ready = %v, want 1", got)
	}
	if got := metricSum(m, "serve_request_traces_total"); got != n {
		t.Errorf("serve_request_traces_total = %v, want %d", got, n)
	}
	// Both shards expose the full per-shard family set, even when idle.
	for _, want := range []string{
		`serve_accepted_total{shard="0"}`, `serve_accepted_total{shard="1"}`,
		`serve_pressure_ewma{shard="0"}`, `serve_pressure_ewma{shard="1"}`,
		`serve_mailbox_wait_us_count{shard="0"}`, `serve_mailbox_wait_us_count{shard="1"}`,
	} {
		if _, ok := m[want]; !ok {
			t.Errorf("sample %s missing from scrape", want)
		}
	}
}

var hexID = regexp.MustCompile(`^[0-9a-f]{16}$`)

// TestRequestIDPropagation traces one client-supplied X-Request-Id through
// the whole pipeline: echoed on the response, stamped into the shard's WAL
// record and the replay log's route record, captured in the trace ring, and
// exported as a Perfetto span — while server-generated IDs stay ephemeral
// (never persisted), keeping the durable bytes identical to an untraced run.
func TestRequestIDPropagation(t *testing.T) {
	dir := t.TempDir()
	var replayBuf bytes.Buffer
	srv, err := New(Config{
		M: 4, Shards: 2, TickInterval: -1,
		WALDir: dir, Fsync: FsyncAlways, CheckpointInterval: -1,
		ReplayLog: &replayBuf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const reqID = "trace-me-123"
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(`{"w":8,"l":2,"deadline":30,"profit":2}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var jr JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != reqID {
		t.Errorf("response X-Request-Id = %q, want %q", got, reqID)
	}

	// The WAL record of the owning shard carries the ID.
	wals := walBytes(t, dir)
	if !strings.Contains(wals, `"reqId":"`+reqID+`"`) {
		t.Error("client-supplied request ID missing from the WAL")
	}
	// The route record in the replay log carries it too.
	if !strings.Contains(replayBuf.String(), `"reqId":"`+reqID+`"`) {
		t.Error("client-supplied request ID missing from the replay log route record")
	}
	// The trace ring captured the request with its stages.
	var found bool
	for _, rt := range srv.traces.Snapshot() {
		if rt.ID != reqID {
			continue
		}
		found = true
		if rt.JobID != jr.ID {
			t.Errorf("trace jobID = %d, want %d", rt.JobID, jr.ID)
		}
		if rt.Shard != (jr.ID-1)%2 {
			t.Errorf("trace shard = %d, want %d (ID stripe)", rt.Shard, (jr.ID-1)%2)
		}
		stages := map[string]bool{}
		for _, st := range rt.Stages {
			stages[st.Name] = true
		}
		for _, want := range []string{"received", "dequeued", "wal_appended", "committed", "replied"} {
			if !stages[want] {
				t.Errorf("trace lacks stage %q (got %v)", want, rt.Stages)
			}
		}
	}
	if !found {
		t.Fatalf("request %s not in the trace ring", reqID)
	}
	// /debug/requests exports it as a validated Perfetto document.
	dts := httptest.NewServer(srv.DebugHandler())
	defer dts.Close()
	dresp, err := http.Get(dts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	debugBody, err := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateChromeTrace(debugBody); err != nil {
		t.Fatalf("/debug/requests is not a valid chrome trace: %v", err)
	}
	if !strings.Contains(string(debugBody), reqID) {
		t.Error("request ID missing from the /debug/requests export")
	}

	// A submission without the header gets a generated ID — echoed, traced,
	// but never persisted: the durable bytes stay identical to an untraced run.
	resp2, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"w":4,"l":2,"deadline":30,"profit":1}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	genID := resp2.Header.Get("X-Request-Id")
	if !hexID.MatchString(genID) {
		t.Errorf("generated request ID %q is not 16 hex chars", genID)
	}
	if strings.Contains(walBytes(t, dir), genID) {
		t.Error("server-generated request ID leaked into the WAL")
	}
	if strings.Contains(replayBuf.String(), genID) {
		t.Error("server-generated request ID leaked into the replay log")
	}
}

// walBytes concatenates every shard's wal.log under dir.
func walBytes(t *testing.T, dir string) string {
	t.Helper()
	var b strings.Builder
	matches, err := filepath.Glob(filepath.Join(dir, "shard-*", walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		matches = []string{filepath.Join(dir, walFileName)}
	}
	for _, p := range matches {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(data)
	}
	return b.String()
}

// TestReadyzReasonBodies pins the machine-readable 503 bodies and their
// serve_not_ready_total counters for the draining and degraded reasons.
func TestReadyzReasonBodies(t *testing.T) {
	t.Run("draining", func(t *testing.T) {
		srv, ts := newTestServer(t, Config{M: 2})
		srv.Drain()

		var body map[string]string
		if code := getJSON(t, ts.URL+"/readyz", nil); code != 503 {
			t.Fatalf("readyz while draining = %d, want 503", code)
		}
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if body["reason"] != "draining" || body["error"] == "" {
			t.Errorf("readyz body = %v, want the {error, reason} envelope with reason draining", body)
		}
		m := scrapeMetrics(t, ts.URL+"/metrics")
		if got := m[`serve_not_ready_total{reason="draining"}`]; got < 2 {
			t.Errorf("serve_not_ready_total{reason=draining} = %v, want ≥ 2", got)
		}
		if got := m["serve_draining"]; got != 1 {
			t.Errorf("serve_draining = %v, want 1", got)
		}
	})

	t.Run("degraded", func(t *testing.T) {
		dir := t.TempDir()
		srv, drain := newDurableServer(t, dir, nil)
		defer drain()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		// Sabotage the WAL fd; the next submission degrades the daemon.
		srv.shards[0].wal.f.Close()
		postRaw(t, ts, `{"w":8,"l":2,"deadline":30,"profit":2}`, nil)

		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 503 || body["reason"] != "degraded" {
			t.Errorf("readyz degraded: code=%d body=%v", resp.StatusCode, body)
		}
		m := scrapeMetrics(t, ts.URL+"/metrics")
		if got := m[`serve_not_ready_total{reason="degraded"}`]; got < 1 {
			t.Errorf("serve_not_ready_total{reason=degraded} = %v, want ≥ 1", got)
		}
		if got := m["serve_degraded"]; got != 1 {
			t.Errorf("serve_degraded = %v, want 1", got)
		}
		if got := metricSum(m, "serve_degraded_events_total{"); got < 1 {
			t.Errorf("serve_degraded_events_total = %v, want ≥ 1", got)
		}
	})
}

// TestPlacerDecisionCountersMatchRoutes drives skewed keyed traffic at a
// sharded daemon and cross-checks three accountings of the same routing
// decisions: the placer's atomic counters, the /metrics exposition, and the
// replay log's route records.
func TestPlacerDecisionCountersMatchRoutes(t *testing.T) {
	var replayBuf bytes.Buffer
	srv, err := New(Config{M: 4, Shards: 2, TickInterval: -1, ReplayLog: &replayBuf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Skewed keyed traffic: one hot tenant dominates; each key is unique so
	// every submission commits a distinct job (a repeated key would be an
	// idempotent replay and never reach the session twice).
	keys := []string{"tenant-a-0", "tenant-a-1", "tenant-a-2", "tenant-b-0", "tenant-b-1",
		"tenant-a-3", "tenant-c-0", "tenant-a-4", "tenant-b-2", "tenant-a-5"}
	idToShard := map[int]int{} // expected owner by keyed FNV placement
	for i, key := range keys {
		spec := `{"w":` + strconv.Itoa(4+2*i) + `,"l":2,"deadline":60,"profit":1}`
		req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var jr JobResponse
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("keyed submit %d = %d", i, resp.StatusCode)
		}
		h := fnv.New32a()
		h.Write([]byte(key))
		idToShard[jr.ID] = int(h.Sum32()) % 2
	}
	const unkeyed = 4
	for i := 0; i < unkeyed; i++ {
		postJob(t, ts, `{"w":4,"l":2,"deadline":60,"profit":1}`)
	}

	if got := srv.placer.keyed.Load(); got != int64(len(keys)) {
		t.Errorf("placer keyed counter = %d, want %d", got, len(keys))
	}
	if got := srv.placer.pressure.Load() + srv.placer.spill.Load(); got != unkeyed {
		t.Errorf("placer pressure+spill = %d, want %d", got, unkeyed)
	}

	m := scrapeMetrics(t, ts.URL+"/metrics")
	if got := m[`serve_placer_decisions_total{decision="keyed"}`]; got != float64(len(keys)) {
		t.Errorf(`serve_placer_decisions_total{decision="keyed"} = %v, want %d`, got, len(keys))
	}
	if got := metricSum(m, "serve_placer_decisions_total{"); got != float64(len(keys)+unkeyed) {
		t.Errorf("placer decisions sum to %v, want %d", got, len(keys)+unkeyed)
	}

	// Every keyed job's route record lands on the shard FNV affinity picked.
	_, jobs, shardOf, err := readRouted(bytes.NewReader(replayBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(keys)+unkeyed {
		t.Fatalf("replay log holds %d jobs, want %d", len(jobs), len(keys)+unkeyed)
	}
	for id, want := range idToShard {
		if got, ok := shardOf[id]; !ok || got != want {
			t.Errorf("job %d routed to shard %d (present %v), keyed affinity says %d", id, got, ok, want)
		}
	}
	// Route records agree with the ID stripe (shard i owns IDs ≡ i+1 mod N).
	for id, sh := range shardOf {
		if want := (id - 1) % 2; sh != want {
			t.Errorf("route record: job %d on shard %d, stripe says %d", id, sh, want)
		}
	}
}
