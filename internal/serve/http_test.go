package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// postRaw submits a body with optional headers and decodes the error body.
func postRaw(t *testing.T, ts *httptest.Server, body string, headers map[string]string) (int, errorResponse) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var er errorResponse
	if resp.StatusCode != http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("non-200 body is not an errorResponse: %v", err)
		}
	}
	return resp.StatusCode, er
}

// TestHTTPSubmitErrorTable covers the POST /v1/jobs failure surface: every
// non-200 answer is application/json with a non-empty {"error": ...} body.
func TestHTTPSubmitErrorTable(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 2, MaxBodyBytes: 512})

	cases := []struct {
		name       string
		body       string
		headers    map[string]string
		want       int
		wantReason string
		errHas     string
	}{
		{name: "not json", body: `{nope`, want: 400, wantReason: reasonBadRequest},
		{name: "unknown field", body: `{"w":1,"l":1,"deadline":3,"profit":1,"bogus":true}`, want: 400, wantReason: reasonBadRequest},
		{name: "missing curve", body: `{"w":4,"l":2}`, want: 400, wantReason: reasonBadRequest},
		{name: "w below l", body: `{"w":2,"l":4,"deadline":9,"profit":1}`, want: 400, wantReason: reasonBadRequest},
		{name: "empty body", body: ``, want: 400, wantReason: reasonBadRequest},
		{name: "json array", body: `[1,2,3]`, want: 400, wantReason: reasonBadRequest},
		{name: "bad profit object", body: `{"w":4,"l":2,"profit":{"type":"warp"}}`, want: 400, wantReason: reasonBadRequest},
		{name: "bad commitment", body: `{"w":4,"l":2,"deadline":9,"profit":1,"commitment":"always"}`, want: 400, wantReason: reasonBadRequest},
		{
			name:       "oversized body",
			body:       `{"w":4,"l":2,"deadline":9,"profit":1,"pad":"` + strings.Repeat("x", 600) + `"}`,
			want:       413,
			wantReason: reasonTooLarge,
			errHas:     "exceeds",
		},
		{
			name:       "idempotency key too long",
			body:       `{"w":4,"l":2,"deadline":9,"profit":1}`,
			headers:    map[string]string{"Idempotency-Key": strings.Repeat("k", 200)},
			want:       400,
			wantReason: reasonBadRequest,
			errHas:     "idempotency key",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, er := postRaw(t, ts, tc.body, tc.headers)
			if code != tc.want {
				t.Fatalf("code = %d, want %d (error %q)", code, tc.want, er.Error)
			}
			if er.Error == "" {
				t.Fatal("error body is empty")
			}
			if er.Reason != tc.wantReason {
				t.Fatalf("reason = %q, want %q", er.Reason, tc.wantReason)
			}
			if tc.errHas != "" && !strings.Contains(er.Error, tc.errHas) {
				t.Fatalf("error %q does not mention %q", er.Error, tc.errHas)
			}
		})
	}
}

// TestErrorEnvelopeEverySurface is the wire contract for failures: every
// 4xx/5xx the daemon can produce — submit, status, batch (top-level and
// per-item), drain, readiness — answers the same {"error", "reason"} envelope
// with a machine-readable reason token.
func TestErrorEnvelopeEverySurface(t *testing.T) {
	srv, ts := newTestServer(t, Config{M: 2, MaxBodyBytes: 512})

	get := func(path string) (int, errorResponse) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var er errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("GET %s body is not an errorResponse: %v", path, err)
		}
		return resp.StatusCode, er
	}

	if code, er := get("/v1/jobs/notanumber"); code != 400 || er.Reason != reasonBadRequest || er.Error == "" {
		t.Errorf("bad job id: code=%d body=%+v, want 400 %s", code, er, reasonBadRequest)
	}
	if code, er := get("/v1/jobs/99999"); code != 404 || er.Reason != reasonNotFound || er.Error == "" {
		t.Errorf("unknown job: code=%d body=%+v, want 404 %s", code, er, reasonNotFound)
	}

	// Batch: a top-level failure carries the envelope...
	resp, err := http.Post(ts.URL+"/v1/jobs:batch", "application/json", strings.NewReader(`{"not":"an array"}`))
	if err != nil {
		t.Fatal(err)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 || er.Reason != reasonBadRequest || er.Error == "" {
		t.Errorf("batch top-level: code=%d body=%+v, want 400 %s", resp.StatusCode, er, reasonBadRequest)
	}

	// ...and a failed item inside a 200 batch carries the same pair.
	resp, err = http.Post(ts.URL+"/v1/jobs:batch", "application/json",
		strings.NewReader(`[{"w":4,"l":2,"deadline":9,"profit":1},{"w":2,"l":4,"deadline":9,"profit":1}]`))
	if err != nil {
		t.Fatal(err)
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || len(br.Items) != 2 {
		t.Fatalf("batch: code=%d items=%d", resp.StatusCode, len(br.Items))
	}
	if it := br.Items[0]; it.Status != 200 || it.Error != "" || it.Reason != "" {
		t.Errorf("good item carries error fields: %+v", it)
	}
	if it := br.Items[1]; it.Status != 400 || it.Error == "" || it.Reason != reasonBadRequest {
		t.Errorf("bad item: %+v, want 400 with error and reason %s", it, reasonBadRequest)
	}

	// Drain: submissions and readiness both report the envelope.
	srv.Drain()
	if code, er := postRaw(t, ts, `{"w":4,"l":2,"deadline":9,"profit":1}`, nil); code != 503 || er.Reason != reasonDraining || er.Error == "" {
		t.Errorf("post-drain submit: code=%d body=%+v, want 503 %s", code, er, reasonDraining)
	}
	if code, er := get("/readyz"); code != 503 || er.Reason != reasonDraining || er.Error == "" {
		t.Errorf("post-drain readyz: code=%d body=%+v, want 503 %s", code, er, reasonDraining)
	}
}

// TestHTTPBackpressureBody asserts the 429 body shape, not just the code.
func TestHTTPBackpressureBody(t *testing.T) {
	s := &Server{cfg: Config{M: 1, QueueDepth: 1}}
	sh := &shard{srv: s, m: 1, stride: 1, reqs: make(chan any, 1), engineDone: make(chan struct{})}
	s.shards = []*shard{sh}
	s.placer = newPlacer(s.shards)
	sh.reqs <- struct{}{} // mailbox full, engine "busy"
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, er := postRaw(t, ts, `{"w":4,"l":2,"deadline":9,"profit":1}`, nil)
	if code != 429 {
		t.Fatalf("code = %d, want 429", code)
	}
	if er.Error != "submission queue full" || er.Reason != reasonQueueFull {
		t.Fatalf("429 body = %+v", er)
	}
}

// TestHTTPDrainBody asserts the 503 shape during and after drain, and the
// liveness/readiness split around it.
func TestHTTPDrainBody(t *testing.T) {
	srv, ts := newTestServer(t, Config{M: 1})
	srv.Drain()

	code, er := postRaw(t, ts, `{"w":4,"l":2,"deadline":9,"profit":1}`, nil)
	if code != 503 || er.Error != "draining" {
		t.Fatalf("post-drain submit: code=%d body=%+v", code, er)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != 200 {
		t.Fatalf("healthz after drain = %d, want 200 (still live)", code)
	}
	var ready map[string]string
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("readyz after drain = %d, want 503", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	if ready["reason"] != "draining" {
		t.Fatalf("readyz body = %+v, want reason draining", ready)
	}
}

// TestHTTPDegradedSurfaces forces a durability failure and checks the daemon
// stops acknowledging, fails readiness and liveness, and reports the cause.
func TestHTTPDegradedSurfaces(t *testing.T) {
	dir := t.TempDir()
	srv, drain := newDurableServer(t, dir, nil)
	defer drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, _ := postRaw(t, ts, `{"w":8,"l":2,"deadline":30,"profit":2}`, nil); code != 200 {
		t.Fatalf("healthy submit: code=%d", code)
	}

	// Sabotage the WAL fd so the next append cannot be made durable.
	srv.shards[0].wal.f.Close()
	code, er := postRaw(t, ts, `{"w":8,"l":2,"deadline":30,"profit":2}`, nil)
	if code != 503 || !strings.Contains(er.Error, "degraded") {
		t.Fatalf("submit over broken WAL: code=%d body=%+v", code, er)
	}
	if got := srv.Degraded(); !strings.Contains(got, "wal append") {
		t.Fatalf("Degraded() = %q", got)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != 503 {
		t.Fatalf("healthz degraded = %d, want 503", code)
	}
	if code := getJSON(t, ts.URL+"/readyz", nil); code != 503 {
		t.Fatalf("readyz degraded = %d, want 503", code)
	}
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != 200 {
		t.Fatalf("stats while degraded = %d", code)
	}
	if stats.Degraded == "" || stats.Ready {
		t.Fatalf("stats = ready=%v degraded=%q", stats.Ready, stats.Degraded)
	}
	if stats.Telemetry.Counters["serve.degraded_events"] == 0 {
		t.Fatal("degraded_events counter not bumped")
	}
}

// TestReplayLogErrorDegrades covers the satellite bugfix: a replay-log write
// failure is no longer swallowed — it surfaces as a degraded daemon.
func TestReplayLogErrorDegrades(t *testing.T) {
	srv, ts := newTestServer(t, Config{M: 2, ReplayLog: &failAfterWriter{n: 1}})

	// The header consumed the one successful write; the first job append fails.
	code, _ := postRaw(t, ts, `{"w":8,"l":2,"deadline":30,"profit":2}`, nil)
	if code != 200 {
		t.Fatalf("submit: code=%d (the job itself was committed)", code)
	}
	if got := srv.Degraded(); !strings.Contains(got, "replay log append") {
		t.Fatalf("Degraded() = %q, want replay log append failure", got)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != 503 {
		t.Fatalf("healthz after replay-log failure = %d, want 503", code)
	}
	var stats StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Telemetry.Counters["serve.replay_error"] != 1 {
		t.Fatalf("serve.replay_error = %v, want 1", stats.Telemetry.Counters["serve.replay_error"])
	}
}

// failAfterWriter accepts n writes and fails every one after.
type failAfterWriter struct{ n int }

func (f *failAfterWriter) Write(p []byte) (int, error) {
	if f.n > 0 {
		f.n--
		return len(p), nil
	}
	return 0, errDiskGone
}

var errDiskGone = &diskError{"disk gone"}

type diskError struct{ msg string }

func (e *diskError) Error() string { return e.msg }
