package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"sync/atomic"
	"time"

	"dagsched/internal/dag"
	"dagsched/internal/profit"
	"dagsched/internal/sim"
	"dagsched/internal/telemetry"
	"dagsched/internal/workload"
)

// A shard is one engine of the serving tier: a goroutine that owns a
// sim.Session over its slice of the capacity, a Scheduler S instance whose
// (1+ε) band condition is evaluated against that slice, a telemetry
// registry, and (when durable) its own WAL and checkpoint. Shards share
// nothing mutable — the front door routes each submission to exactly one
// shard and every per-job effect stays inside it — so N shards scale the
// engine path without a lock anywhere on it.
//
// Job IDs are striped: shard i of N assigns i+1, i+1+N, i+2N, …, so IDs are
// globally unique, ascend within each shard (which sim.Session requires),
// and a job's owner is recomputable as (id-1) mod N. With one shard the
// stripe degenerates to 1, 2, 3, … — byte-identical to the unsharded
// daemon.

// occupier is the optional band-occupancy probe (core.SchedulerS).
type occupier interface {
	Occupancy() float64
}

// queueSizer is the optional queue-depth probe (core.SchedulerS).
type queueSizer interface {
	QueueSizes() (q, p int)
}

// pressureAlpha is the EWMA smoothing factor for the published pressure
// signal: heavy enough that one parked burst moves the placer, light enough
// that a transient spike does not pin a shard cold.
const pressureAlpha = 0.2

type shard struct {
	srv    *Server
	idx    int
	m      int  // this shard's processors (PartitionCapacity slice)
	stride int  // total shard count; the ID stripe step
	jump   bool // event-jump clock (resolveClock); false runs the ticker

	sched     sim.Scheduler
	adm       admitter // nil when the scheduler has no admission query
	canCommit bool     // scheduler implements sim.Committer (binding levels OK)

	sess   *sim.Session        // engine goroutine only
	reg    *telemetry.Registry // engine goroutine only
	lastID int                 // engine goroutine only; last ID this shard assigned

	// obsReg holds this shard's serving-path latency histograms and
	// observability-only counters (engine goroutine only; /metrics scrapes a
	// Clone taken through the mailbox). It is deliberately separate from reg:
	// reg's summary is part of every checkpoint and the /v1/stats body, both
	// byte-stable formats, while obsReg is process-local and never persisted.
	// nil disables every timer and observation on the engine path — the
	// zero-cost-when-nil idiom the obs-guard benchmark pins.
	obsReg *telemetry.Registry

	// Durability state, engine goroutine only (nil/empty without WALDir).
	walDir         string
	header         ReplayHeader // the durable header this shard writes
	wal            *wal
	hist           []WALJob                  // full accepted history in wire form
	idem           map[string]StoredResponse // idempotency table (kept even without WAL)
	checkpoints    int64                     // lifetime checkpoint count
	lastCheckpoint time.Time
	lastCkptClock  int64
	ckptDirty      bool // records appended since the last checkpoint

	// wireCache memoizes everything a scalar spec derives: the synthesized
	// DAG and profit function (shared across jobs — the DAG is immutable
	// after Build) and the id/release-independent tail of the instance wire
	// form (`,"graph":…,"profit":…}`), so the submit hot path skips DAG
	// synthesis entirely and the WAL path assembles a record by prefixing
	// two integers instead of re-marshaling a W-node graph per accepted
	// job. Engine goroutine only; bounded (wireCacheMax) and never
	// persisted — a miss just rebuilds.
	wireCache map[scalarSpec]*scalarEntry

	recovery *RecoveryInfo // fixed at New; nil on a fresh start

	reqs       chan any
	engineDone chan struct{}
	engineErr  atomic.Pointer[string]
	quiesced   bool // engine goroutine only; set by the drain's first phase

	// Pressure signals published by the engine for the placer. pressure is
	// the float64 bits of the EWMA of band occupancy + parked fraction;
	// bandFull flags that the last admission verdict parked (or occupancy
	// reached 1), so the placer's second choice should spill past us.
	pressure atomic.Uint64
	bandFull atomic.Bool
}

// baseID is lastID before the shard has assigned anything: one stride below
// its first ID, so the first assignment lands on idx+1.
func (sh *shard) baseID() int { return sh.idx + 1 - sh.stride }

// engineLoop is the goroutine that owns all of this shard's mutable state.
// With the ticker enabled it runs one of two clock disciplines: the fixed
// wall-clock ticker below, or the event-jump loop (clock.go) when the
// shard's session is event-safe.
func (sh *shard) engineLoop() {
	defer close(sh.engineDone)
	if sh.srv.cfg.TickInterval > 0 && sh.jump {
		sh.engineLoopJump()
		return
	}
	var tickC <-chan time.Time
	if sh.srv.cfg.TickInterval > 0 {
		ticker := time.NewTicker(sh.srv.cfg.TickInterval)
		defer ticker.Stop()
		tickC = ticker.C
	}
	for {
		select {
		case m := <-sh.reqs:
			if sh.handle(m) {
				return
			}
		case now := <-tickC:
			if sh.obsReg != nil {
				sh.obsReg.Inc("serve.ticker_wakeups", 1)
			}
			if sh.quiesced {
				continue // the clock is done moving; finalize fast-forwards
			}
			sh.advance(int64(time.Since(sh.srv.start) / sh.srv.cfg.TickInterval))
			if sh.wal != nil {
				if err := sh.wal.maybeSync(now); err != nil {
					sh.degrade("wal sync", err)
				}
				sh.maybeCheckpoint(now)
			}
		}
	}
}

// handle dispatches one mailbox message; it reports whether the engine
// should exit (after the drain's finalize phase).
func (sh *shard) handle(m any) bool {
	switch msg := m.(type) {
	case submitMsg:
		msg.reply <- sh.handleSubmit(msg.spec, msg.key, msg.tr)
	case batchMsg:
		msg.reply <- sh.handleBatch(msg.items, msg.tr)
	case lookupMsg:
		msg.reply <- sh.handleLookup(msg.id)
	case statsMsg:
		msg.reply <- sh.handleStats()
	case advanceMsg:
		if !sh.quiesced {
			sh.advance(msg.to)
		}
		close(msg.reply)
	case checkpointMsg:
		switch {
		case sh.quiesced:
			msg.reply <- fmt.Errorf("serve: checkpoint after drain")
		case sh.srv.degraded.Load() != nil:
			msg.reply <- fmt.Errorf("serve: degraded: %s", sh.srv.Degraded())
		default:
			err := sh.checkpointNow()
			if err != nil {
				sh.degrade("checkpoint", err)
			}
			msg.reply <- err
		}
	case quiesceMsg:
		// Drain phase 1: from here on this shard commits nothing new. Any
		// submission already in the mailbox is behind this message and will
		// be answered 503; reads keep working until finalize.
		sh.quiesced = true
		close(msg.reply)
	case finalizeMsg:
		// Drain phase 2: every shard has quiesced, so no late submission
		// can interleave into the log this shard is about to seal.
		msg.reply <- sh.finalize()
		return true
	}
	return false
}

// advance pushes the session to the given tick. A session error here is
// terminal for the shard (a scheduler broke its allocation contract); it is
// surfaced through /v1/stats.
func (sh *shard) advance(now int64) {
	if err := sh.sess.AdvanceTo(now); err != nil {
		msg := err.Error()
		sh.engineErr.Store(&msg)
	}
	sh.publishPressure()
}

// publishPressure refreshes the signals the placer reads: an EWMA of band
// occupancy plus the parked-per-processor fraction, and the band-full flag.
// Engine goroutine only; the placer reads the atomics.
func (sh *shard) publishPressure() {
	occ, parked := 0.0, 0
	if o, ok := sh.sched.(occupier); ok {
		occ = o.Occupancy()
	}
	if qs, ok := sh.sched.(queueSizer); ok {
		_, parked = qs.QueueSizes()
	}
	raw := occ + float64(parked)/float64(max(sh.m, 1))
	prev := math.Float64frombits(sh.pressure.Load())
	sh.pressure.Store(math.Float64bits(pressureAlpha*raw + (1-pressureAlpha)*prev))
	sh.bandFull.Store(occ >= 1)
}

// pressureScore is the placer's routing key: the engine-published EWMA plus
// the instantaneous mailbox backlog fraction. Safe from any goroutine.
func (sh *shard) pressureScore() float64 {
	return math.Float64frombits(sh.pressure.Load()) +
		float64(len(sh.reqs))/float64(cap(sh.reqs))
}

// degrade records the first durability failure at the server level (one
// degraded shard stops the whole daemon acknowledging — it could otherwise
// route around its own broken commitment) and counts it on this shard.
func (sh *shard) degrade(op string, err error) {
	sh.srv.degrade(sh.idx, op, err)
	sh.reg.Inc("serve.degraded_events", 1)
}

// handleSubmit is processSubmit plus the engine-path observability shell:
// mailbox queue-wait and total engine latency histograms, and the dequeue/
// commit stamps of the request trace. Every timer is gated on obsReg — with
// it nil the shell is two pointer checks, which is what keeps the obs-guard
// overhead budget honest.
func (sh *shard) handleSubmit(spec JobSpec, key string, tr *submitTrace) submitReply {
	if sh.obsReg == nil {
		return sh.processSubmit(spec, key, tr)
	}
	t0 := time.Now()
	if tr != nil {
		tr.dequeued = t0
		if !tr.enqueued.IsZero() {
			sh.obsReg.Observe("serve.mailbox_wait_us", float64(t0.Sub(tr.enqueued).Microseconds()))
		}
	}
	rep := sh.processSubmit(spec, key, tr)
	now := time.Now()
	if tr != nil {
		tr.committed = now
	}
	sh.obsReg.Observe("serve.submit_engine_us", float64(now.Sub(t0).Microseconds()))
	return rep
}

// handleBatch commits one placer group — every item a batch routed to this
// shard, in batch order — under a single WAL group-commit window: each item
// runs the full processSubmit path (idempotency, admission, WAL append,
// session arrival, replay log), but the per-record fsync of FsyncAlways is
// suspended until the whole group is written, so the group pays one flush.
// The records land contiguously in the WAL because this goroutine owns it.
// No verdict leaves the engine before the group sync succeeds, so the
// on-admission commitment still holds record by record; if the final sync
// fails, every acknowledged-in-group verdict is downgraded to 503 and the
// daemon degrades — nothing was promised, so nothing is broken.
func (sh *shard) handleBatch(items []batchItem, tr *submitTrace) batchReply {
	var t0 time.Time
	if sh.obsReg != nil {
		t0 = time.Now()
		if tr != nil {
			tr.dequeued = t0
			if !tr.enqueued.IsZero() {
				sh.obsReg.Observe("serve.mailbox_wait_us", float64(t0.Sub(tr.enqueued).Microseconds()))
			}
		}
	}
	replies := make([]submitReply, len(items))
	if sh.wal != nil {
		sh.wal.beginBatch()
	}
	for k, it := range items {
		replies[k] = sh.processSubmit(it.spec, it.key, nil)
	}
	if sh.wal != nil {
		if err := sh.wal.endBatch(); err != nil {
			sh.degrade("wal sync", err)
			for k := range replies {
				if replies[k].status == 200 {
					replies[k] = submitReply{status: 503, err: "degraded: " + sh.srv.Degraded(), reason: reasonDegraded}
				}
			}
		}
	}
	if sh.obsReg != nil {
		now := time.Now()
		if tr != nil {
			tr.committed = now
		}
		sh.obsReg.Observe("serve.batch_engine_us", float64(now.Sub(t0).Microseconds()))
	}
	return batchReply{replies: replies}
}

// reqIDOf is the request ID a durable record should carry: the trace's ID
// when the client supplied it, "" otherwise (server-generated IDs are
// ephemeral, keeping header-less WAL and replay-log bytes unchanged).
func reqIDOf(tr *submitTrace) string {
	if tr == nil || !tr.persist {
		return ""
	}
	return tr.reqID
}

// scalarSpec is the scalar-spec cache key: the value fields of a JobSpec
// with no structured parts. Two equal scalarSpecs synthesize identical DAGs
// and profit curves, so everything derived from the spec — the built graph,
// the profit function, and the wire form minus id and release — is shared.
type scalarSpec struct {
	W          int64
	L          int64
	Deadline   int64
	Profit     float64
	Commitment string // per-job override; part of the wire tail
}

// scalarEntry is one cached scalar-spec shape. The DAG is immutable after
// Build (per-job runtime progress lives in dag.State), and profit.Step is a
// value, so sharing one graph and function across every job with the same
// spec is safe on the engine goroutine. tail is filled lazily by
// marshalJobWire on the first durable admission of the shape.
type scalarEntry struct {
	g    *dag.DAG
	fn   profit.Fn
	tail []byte // wire form from ,"graph": onward; nil until first marshal
}

// wireCacheMax bounds the per-shard scalar cache; past it new shapes just
// rebuild (a high-rate client sends few distinct spec shapes, so the
// steady state is all hits).
const wireCacheMax = 4096

// buildSpec is spec.build() with the synthesized graph memoized per scalar
// spec: a cache hit skips the whole DAG synthesis, which is the single
// largest per-submission allocation. Structured specs (explicit dag or
// curve) always build fresh — the client owns those graphs. Build errors
// are never cached (they are cheap and carry no derived state).
func (sh *shard) buildSpec(spec JobSpec) (*dag.DAG, profit.Fn, *scalarEntry, error) {
	if spec.DAG != nil || spec.Curve != nil || !spec.Profit.IsScalar() {
		g, fn, err := spec.build()
		return g, fn, nil, err
	}
	key := scalarSpec{W: spec.W, L: spec.L, Deadline: spec.Deadline, Profit: spec.Profit.Scalar, Commitment: spec.Commitment}
	if e, ok := sh.wireCache[key]; ok {
		return e.g, e.fn, e, nil
	}
	g, fn, err := spec.build()
	if err != nil {
		return nil, nil, nil, err
	}
	e := &scalarEntry{g: g, fn: fn}
	if len(sh.wireCache) < wireCacheMax {
		if sh.wireCache == nil {
			sh.wireCache = make(map[scalarSpec]*scalarEntry)
		}
		sh.wireCache[key] = e
	}
	return g, fn, e, nil
}

// marshalJobWire renders job in the instance wire format, memoizing the
// graph/profit tail in the job's scalar cache entry. Byte-identical to
// workload.MarshalJob by construction: the cached tail is MarshalJob's own
// output for the same spec, and the id/release prefix is rendered with the
// same integer format (pinned by TestMarshalJobWireMatchesMarshalJob).
func (sh *shard) marshalJobWire(e *scalarEntry, job *sim.Job) (json.RawMessage, error) {
	if e == nil {
		return workload.MarshalJob(job)
	}
	if e.tail == nil {
		wire, err := workload.MarshalJob(job)
		if err != nil {
			return nil, err
		}
		i := bytes.Index(wire, []byte(`,"graph":`))
		if i < 0 {
			return wire, nil // unexpected shape: serve it, skip the memo
		}
		e.tail = wire[i:]
		return wire, nil
	}
	b := make([]byte, 0, 24+len(e.tail))
	b = append(b, `{"id":`...)
	b = strconv.AppendInt(b, int64(job.ID), 10)
	b = append(b, `,"release":`...)
	b = strconv.AppendInt(b, job.Release, 10)
	b = append(b, e.tail...)
	return b, nil
}

// processSubmit resolves idempotent retries, takes the admit/reject decision,
// persists it to this shard's WAL (write-ahead: before the session commit,
// so an acknowledged verdict is never lost to a crash), and commits the
// arrival to the session and the shared replay log.
func (sh *shard) processSubmit(spec JobSpec, key string, tr *submitTrace) submitReply {
	if sh.srv.draining.Load() || sh.quiesced {
		return submitReply{status: 503, err: "draining", reason: reasonDraining}
	}
	if dp := sh.srv.degraded.Load(); dp != nil {
		// The daemon cannot make new verdicts durable; stop acknowledging.
		return submitReply{status: 503, err: "degraded: " + *dp, reason: reasonDegraded}
	}
	if key != "" {
		if st, ok := sh.idem[key]; ok {
			st.Resp.Replayed = true
			sh.reg.Inc("serve.idempotent_replays", 1)
			return submitReply{status: st.Status, resp: st.Resp}
		}
	}
	var override sim.Commitment
	if spec.Commitment != "" {
		lvl, err := sim.ParseCommitment(spec.Commitment)
		if err != nil {
			sh.reg.Inc("serve.bad_request", 1)
			return submitReply{status: 400, err: err.Error(), reason: reasonBadRequest}
		}
		if lvl.Binding() && !sh.canCommit {
			sh.reg.Inc("serve.bad_request", 1)
			return submitReply{
				status: 400,
				err:    fmt.Sprintf("scheduler %q does not support commitment %q", sh.sched.Name(), spec.Commitment),
				reason: reasonBadRequest,
			}
		}
		override = lvl
	}
	g, fn, ce, err := sh.buildSpec(spec)
	if err != nil {
		sh.reg.Inc("serve.bad_request", 1)
		return submitReply{status: 400, err: err.Error(), reason: reasonBadRequest}
	}
	release := sh.sess.Now()
	id := sh.lastID + sh.stride
	job := &sim.Job{ID: id, Graph: g, Release: release, Profit: fn, Commitment: override}
	resp := JobResponse{ID: id, Release: release}
	resp.Decision, resp.Reason, resp.Plan = decideAdmission(sh.adm, job, sh.srv.policy)

	if resp.Decision == DecisionRejected {
		resp.ID = 0
		resp.Commitment = CommitmentNone
		if key != "" {
			// Make the verdict durable so a retry after a crash collapses
			// onto it instead of re-opening the decision.
			if sh.wal != nil {
				if err := sh.wal.append(WALReject{Type: "reject", Key: key, ReqID: reqIDOf(tr), Resp: resp}); err != nil {
					sh.degrade("wal append", err)
					return submitReply{status: 503, err: "degraded: " + sh.srv.Degraded(), reason: reasonDegraded}
				}
				sh.ckptDirty = true
			}
			sh.idem[key] = StoredResponse{Status: 200, Resp: resp}
		}
		sh.reg.Inc("serve.rejected", 1)
		return submitReply{status: 200, resp: resp}
	}

	resp.Commitment = commitmentString(job.Commitment.Resolve(sh.srv.policy), sh.wal != nil)
	if sh.wal != nil {
		wire, err := sh.marshalJobWire(ce, job)
		if err != nil {
			sh.reg.Inc("serve.bad_request", 1)
			return submitReply{status: 400, err: err.Error(), reason: reasonBadRequest}
		}
		rec := WALJob{Type: "job", Key: key, ReqID: reqIDOf(tr), Resp: resp, Job: wire}
		var ta time.Time
		if sh.obsReg != nil {
			ta = time.Now()
		}
		if err := sh.wal.append(rec); err != nil {
			// Not durable, so not committed and not acknowledged: the
			// session never sees the job and the client may retry safely.
			sh.degrade("wal append", err)
			return submitReply{status: 503, err: "degraded: " + sh.srv.Degraded(), reason: reasonDegraded}
		}
		if sh.obsReg != nil {
			sh.obsReg.Observe("serve.wal_append_us", float64(time.Since(ta).Microseconds()))
		}
		if tr != nil {
			tr.walAppended = time.Now()
		}
		sh.hist = append(sh.hist, rec)
		sh.ckptDirty = true
	}
	if err := sh.sess.Arrive(job); err != nil {
		// Unreachable by construction (fresh ascending ID, release = Now);
		// surfaced as a server error rather than swallowed. With a WAL the
		// logged record now disagrees with the engine, so degrade too.
		sh.reg.Inc("serve.arrive_error", 1)
		if sh.wal != nil {
			sh.degrade("arrive after wal append", err)
		}
		return submitReply{status: 500, err: err.Error(), reason: reasonInternal}
	}
	sh.lastID = id
	sh.reg.Inc("serve.accepted", 1)
	sh.reg.Inc("serve."+string(resp.Decision), 1)
	if key != "" {
		sh.idem[key] = StoredResponse{Status: 200, Resp: resp}
	}
	if sh.srv.replay != nil {
		if err := sh.srv.replay.appendJob(sh.idx, job, reqIDOf(tr)); err != nil {
			// The offline-analysis tap failed: the record is lost, which
			// breaks the log's bit-identical replay guarantee. Count it and
			// surface the degraded state on /healthz instead of dropping
			// the error silently.
			sh.reg.Inc("serve.replay_error", 1)
			sh.degrade("replay log append", err)
		}
	}
	sh.publishPressure()
	if resp.Decision == DecisionParked {
		// Direct evidence the band is full — occupancy alone can miss a
		// single wide job saturating one band.
		sh.bandFull.Store(true)
	}
	return submitReply{status: 200, resp: resp}
}

func (sh *shard) handleLookup(id int) lookupReply {
	stat, state := sh.sess.Lookup(id)
	if state == sim.JobStateUnknown {
		return lookupReply{}
	}
	return lookupReply{found: true, resp: statusResponse(id, stat, state)}
}

// handleStats renders this shard's /v1/stats block plus its raw telemetry
// summary (for the server-level aggregate). It runs on the engine goroutine,
// or directly from a handler once the engine has exited and the state is
// sealed.
func (sh *shard) handleStats() shardStatsReply {
	sh.reg.SetGauge("serve.queue_depth", float64(len(sh.reqs)))
	summary := sh.reg.Summary()
	occ, parked := 0.0, 0
	if o, ok := sh.sched.(occupier); ok {
		occ = o.Occupancy()
	}
	if qs, ok := sh.sched.(queueSizer); ok {
		_, parked = qs.QueueSizes()
	}
	st := ShardStats{
		Shard:         sh.idx,
		M:             sh.m,
		Now:           sh.sess.Now(),
		Live:          sh.sess.Live(),
		Pending:       sh.sess.Pending(),
		Accepted:      summary.Counters["serve.accepted"],
		Admitted:      summary.Counters["serve.admitted"],
		Parked:        summary.Counters["serve.parked"],
		Rejected:      summary.Counters["serve.rejected"],
		BandOccupancy: occ,
		ParkedDepth:   parked,
		MailboxDepth:  len(sh.reqs),
		Pressure:      math.Float64frombits(sh.pressure.Load()),
		Recovery:      sh.recovery,
	}
	if ep := sh.engineErr.Load(); ep != nil {
		st.EngineError = *ep
	}
	if sh.wal != nil {
		st.WAL = &WALStats{
			Dir:                 sh.walDir,
			Fsync:               string(sh.srv.cfg.Fsync),
			Records:             sh.wal.records,
			Checkpoints:         sh.checkpoints,
			LastCheckpointClock: sh.lastCkptClock,
		}
	}
	// The /metrics scrape walks histogram buckets, which the engine mutates;
	// hand it an independent clone taken on this goroutine.
	return shardStatsReply{stats: st, summary: summary, obs: sh.obsReg.Clone()}
}

// maybeCheckpoint takes a checkpoint when the cadence has elapsed and the
// WAL holds records since the last one. Skipped while degraded: a checkpoint
// from state the WAL may not fully cover could seal the inconsistency in.
func (sh *shard) maybeCheckpoint(now time.Time) {
	if sh.srv.cfg.CheckpointInterval < 0 || !sh.ckptDirty || sh.srv.degraded.Load() != nil {
		return
	}
	if now.Sub(sh.lastCheckpoint) < sh.srv.cfg.CheckpointInterval {
		return
	}
	if err := sh.checkpointNow(); err != nil {
		sh.degrade("checkpoint", err)
	}
}

// checkpointNow folds this shard's accepted history, idempotency table,
// telemetry summary, and session fingerprint into an atomically replaced
// checkpoint.json in the shard's WAL directory, then truncates its WAL back
// to the header. Engine goroutine only (or before it starts).
func (sh *shard) checkpointNow() error {
	var t0 time.Time
	if sh.obsReg != nil {
		t0 = time.Now()
	}
	if err := sh.wal.sync(); err != nil {
		return err
	}
	sh.checkpoints++
	cp := Checkpoint{
		Type:        "checkpoint",
		Header:      sh.header,
		Clock:       sh.sess.Now(),
		NextID:      sh.lastID,
		Jobs:        sh.hist,
		Idem:        sh.idem,
		Summary:     sh.reg.Summary(),
		Fingerprint: sh.sess.Fingerprint(),
		Checkpoints: sh.checkpoints,
	}
	payload, err := json.Marshal(cp)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(sh.walDir, checkpointFileName, frameRecord(payload)); err != nil {
		return err
	}
	if err := sh.wal.reset(cp.Header); err != nil {
		return err
	}
	sh.lastCheckpoint = time.Now()
	sh.lastCkptClock = cp.Clock
	sh.ckptDirty = false
	sh.reg.Inc("serve.checkpoints", 1)
	if sh.obsReg != nil {
		sh.obsReg.Observe("serve.checkpoint_us", float64(time.Since(t0).Microseconds()))
	}
	return nil
}

// openDurable recovers any durable state in dir into this shard's fresh
// session, opens its WAL for appending, and seals the recovered history
// under a fresh checkpoint so every start leaves a normalized directory.
// Runs before the engine goroutine starts.
func (sh *shard) openDurable(dir string) error {
	sh.walDir = dir
	var t0 time.Time
	if sh.obsReg != nil {
		t0 = time.Now()
	}
	rs, err := loadState(dir, sh.header, sh.baseID())
	if err != nil {
		return err
	}
	if rs != nil {
		if err := rs.replayInto(sh.sess, sh.adm, sh.reg, sh.srv.policy); err != nil {
			return err
		}
		sh.hist = rs.jobs
		sh.idem = rs.idem
		sh.lastID = rs.nextID
		sh.checkpoints = rs.checkpoints
		sh.recovery = rs.info()
		sh.reg.Inc("serve.recoveries", 1)
		if sh.obsReg != nil {
			sh.obsReg.Observe("serve.recovery_duration_us", float64(time.Since(t0).Microseconds()))
			sh.obsReg.Inc("serve.recovery_replayed", int64(len(rs.jobs)))
		}
	}
	w, err := openWAL(dir, sh.srv.cfg.Fsync, sh.srv.cfg.FsyncInterval)
	if err != nil {
		return fmt.Errorf("serve: wal: %w", err)
	}
	w.obs = sh.obsReg
	sh.wal = w
	sh.ckptDirty = true // force the normalizing checkpoint even on a fresh dir
	if err := sh.checkpointNow(); err != nil {
		w.close()
		return err
	}
	sh.publishPressure()
	return nil
}

// finalize is the drain's second phase for this shard: fast-forward the
// session until every committed job has completed or expired, seal the
// durable state, and return the shard Result. The caller guarantees every
// shard has quiesced first, so nothing can append behind the seal.
func (sh *shard) finalize() *sim.Result {
	if err := sh.sess.RunToEnd(); err != nil {
		msg := err.Error()
		sh.engineErr.Store(&msg)
	}
	res := sh.sess.Finish()
	sh.reg.Inc("serve.drains", 1)
	if sh.wal != nil {
		// Seal the drained state: a restart over this directory recovers the
		// completed history instead of replaying the whole session.
		if sh.srv.degraded.Load() == nil {
			if err := sh.checkpointNow(); err != nil {
				sh.degrade("final checkpoint", err)
			}
		}
		if err := sh.wal.close(); err != nil {
			sh.degrade("wal close", err)
		}
	}
	return res
}
