package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"dagsched/internal/cliflags"
	"dagsched/internal/rational"
	"dagsched/internal/sim"
	"dagsched/internal/telemetry"
	"dagsched/internal/workload"
)

// Recovery rebuilds the pre-crash engine from the checkpoint plus the WAL
// suffix. The engine is deterministic — its state is a pure function of the
// accepted arrivals, their clocks, and how far the session advanced — so the
// checkpoint stores that closure (the job history in wire form, the clock,
// the idempotency table, the serving telemetry summary) together with the
// session's Fingerprint at the checkpointed clock. Recovery re-feeds the
// history through a fresh sim.Session exactly as the serving loop did,
// re-asserting every logged admission verdict along the way, and then checks
// the recomputed fingerprint against the stored one: a mismatch means the
// recovered state is not bit-identical to the pre-crash engine and the
// daemon refuses to start rather than break an acknowledged commitment.

// WALJob is the WAL record of one accepted submission: the instance-wire job
// plus the acknowledged response. Decision and commitment live inside Resp;
// recovery re-derives the decision and refuses to start on a mismatch.
// ReqID carries the client's X-Request-Id so the durable record is joinable
// with client-side traces; it is recorded only when the client supplied one
// (a server-generated ID is ephemeral), which keeps the WAL bytes of
// header-less traffic identical to the pre-observability format.
type WALJob struct {
	Type  string          `json:"type"` // always "job"
	Key   string          `json:"key,omitempty"`
	ReqID string          `json:"reqId,omitempty"`
	Resp  JobResponse     `json:"resp"`
	Job   json.RawMessage `json:"job"`
}

// WALReject is the WAL record of a keyed rejected submission. Nothing was
// committed to the session, but the verdict is durable so a client retry
// after a crash collapses onto it instead of re-opening the decision.
type WALReject struct {
	Type  string      `json:"type"` // always "reject"
	Key   string      `json:"key"`
	ReqID string      `json:"reqId,omitempty"`
	Resp  JobResponse `json:"resp"`
}

// StoredResponse is one idempotency-table entry: the exact outcome the
// original submission was acknowledged with.
type StoredResponse struct {
	Status int         `json:"status"`
	Resp   JobResponse `json:"resp"`
}

// Checkpoint is the durable snapshot of the serving engine at one clock: the
// deterministic closure of its state plus the fingerprint that pins it.
type Checkpoint struct {
	Type        string                    `json:"type"` // always "checkpoint"
	Header      ReplayHeader              `json:"header"`
	Clock       int64                     `json:"clock"`
	NextID      int                       `json:"nextId"`
	Jobs        []WALJob                  `json:"jobs,omitempty"`
	Idem        map[string]StoredResponse `json:"idem,omitempty"`
	Summary     telemetry.Summary         `json:"summary"`
	Fingerprint uint64                    `json:"fingerprint"`
	Checkpoints int64                     `json:"checkpoints"` // lifetime count, monotone across restarts
}

// RecoveryInfo summarizes what a daemon start found on disk; surfaced in
// /v1/stats and the spaa-serve startup banner.
type RecoveryInfo struct {
	Recovered       bool  `json:"recovered"` // prior durable state existed
	CheckpointClock int64 `json:"checkpointClock"`
	CheckpointJobs  int   `json:"checkpointJobs"`
	WALJobs         int   `json:"walJobs"` // post-checkpoint job records replayed
	TornBytes       int64 `json:"tornBytes"`
	Jobs            int   `json:"jobs"`  // accepted jobs restored in total
	Clock           int64 `json:"clock"` // session clock after replay
}

// recoveredState is the merged durable history: checkpoint prefix plus WAL
// suffix, deduplicated and ready to replay.
type recoveredState struct {
	header         ReplayHeader
	jobs           []WALJob
	idem           map[string]StoredResponse
	summary        telemetry.Summary
	checkpointJobs int // jobs[:checkpointJobs] are covered by the checkpoint
	checkpointClk  int64
	checkpointFP   uint64
	hasCheckpoint  bool
	clock          int64 // replay target: max(checkpoint clock, last release)
	nextID         int
	checkpoints    int64
	tornBytes      int64
	suffixRejects  int // keyed rejects in the WAL suffix (counter restore)
}

// headerOf renders a serving config as the durable header record: the
// daemon-level view (total M; Shards only when the session is sharded, so an
// unsharded header keeps its historical bytes).
func headerOf(cfg Config) ReplayHeader {
	speed := cfg.Speed
	if speed.Num == 0 {
		speed = rational.FromInt(1) // the zero value means speed 1
	}
	h := ReplayHeader{Type: "header", M: cfg.M, Sched: cfg.Sched, Eps: cfg.Eps, Speed: speed.String()}
	if cfg.Shards > 1 {
		h.Shards = cfg.Shards
	}
	// Only a binding policy changes admission, so only a binding policy is
	// pinned in the durable header; the default keeps its historical bytes.
	if lvl, err := sim.ParseCommitment(cfg.Commitment); err == nil && lvl.Binding() {
		h.Commitment = cfg.Commitment
	}
	return h
}

// shardHeaderOf renders the durable header one shard writes: the shard's
// capacity slice and 0-based index under a sharded config, plain headerOf
// otherwise. The header pins the partition — recovering a shard under a
// different shard count or slice fails checkHeader.
func shardHeaderOf(cfg Config, idx, mi int) ReplayHeader {
	h := headerOf(cfg)
	if cfg.Shards > 1 {
		h.M = mi
		h.Shard = idx
	}
	return h
}

// configFromHeader inverts headerOf: the serving configuration a durable
// header was written under.
func configFromHeader(h ReplayHeader) (Config, error) {
	speed, err := cliflags.ParseSpeed(h.Speed)
	if err != nil {
		return Config{}, err
	}
	return Config{M: h.M, Sched: h.Sched, Eps: h.Eps, Speed: speed, Shards: h.Shards, Commitment: h.Commitment}, nil
}

// checkHeader rejects durable state written under a different serving
// configuration: replaying it under the wrong scheduler or machine would
// silently re-decide every admission.
func checkHeader(h, want ReplayHeader, src string) error {
	if h != want {
		return fmt.Errorf("serve: %s written by config %+v, daemon configured %+v; refusing to recover", src, h, want)
	}
	return nil
}

// loadState reads dir's checkpoint and WAL, truncating a torn WAL tail, and
// merges them into the durable history. A directory with neither file is a
// fresh start (nil state). want is the header the durable records must carry
// (a per-shard header under a sharded layout); baseID seeds the ID watermark
// one stride below the owner's first assignable ID, so the checkpoint-vs-WAL
// dedup works on any stripe (0 for the unsharded daemon).
func loadState(dir string, want ReplayHeader, baseID int) (*recoveredState, error) {
	rs := &recoveredState{idem: make(map[string]StoredResponse), nextID: baseID}

	cpData, err := os.ReadFile(filepath.Join(dir, checkpointFileName))
	switch {
	case os.IsNotExist(err):
		// No checkpoint yet.
	case err != nil:
		return nil, err
	default:
		line := cpData
		if n := len(line); n > 0 && line[n-1] == '\n' {
			line = line[:n-1]
		}
		payload, err := parseFrame(line)
		if err != nil {
			return nil, fmt.Errorf("serve: checkpoint corrupt: %w", err)
		}
		var cp Checkpoint
		if err := json.Unmarshal(payload, &cp); err != nil {
			return nil, fmt.Errorf("serve: checkpoint: %w", err)
		}
		if cp.Type != "checkpoint" {
			return nil, fmt.Errorf("serve: checkpoint file holds type %q", cp.Type)
		}
		if err := checkHeader(cp.Header, want, "checkpoint"); err != nil {
			return nil, err
		}
		rs.hasCheckpoint = true
		rs.header = cp.Header
		rs.jobs = cp.Jobs
		rs.checkpointJobs = len(cp.Jobs)
		rs.checkpointClk = cp.Clock
		rs.checkpointFP = cp.Fingerprint
		rs.clock = cp.Clock
		rs.nextID = cp.NextID
		rs.summary = cp.Summary
		rs.checkpoints = cp.Checkpoints
		for k, v := range cp.Idem {
			rs.idem[k] = v
		}
	}

	payloads, torn, err := scanWAL(filepath.Join(dir, walFileName))
	if err != nil {
		return nil, fmt.Errorf("serve: wal: %w", err)
	}
	rs.tornBytes = torn
	for n, payload := range payloads {
		var tag struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(payload, &tag); err != nil {
			return nil, fmt.Errorf("serve: wal record %d: %w", n+1, err)
		}
		switch tag.Type {
		case "header":
			var h ReplayHeader
			if err := json.Unmarshal(payload, &h); err != nil {
				return nil, fmt.Errorf("serve: wal header: %w", err)
			}
			if err := checkHeader(h, want, "wal"); err != nil {
				return nil, err
			}
		case "job":
			var wj WALJob
			if err := json.Unmarshal(payload, &wj); err != nil {
				return nil, fmt.Errorf("serve: wal job record %d: %w", n+1, err)
			}
			if wj.Resp.ID <= rs.nextID {
				continue // covered by the checkpoint (crash between rename and reset)
			}
			rs.jobs = append(rs.jobs, wj)
			rs.nextID = wj.Resp.ID
			if wj.Key != "" {
				rs.idem[wj.Key] = StoredResponse{Status: 200, Resp: wj.Resp}
			}
		case "reject":
			var wr WALReject
			if err := json.Unmarshal(payload, &wr); err != nil {
				return nil, fmt.Errorf("serve: wal reject record %d: %w", n+1, err)
			}
			if _, ok := rs.idem[wr.Key]; ok {
				continue // covered by the checkpoint
			}
			rs.idem[wr.Key] = StoredResponse{Status: 200, Resp: wr.Resp}
			rs.suffixRejects++
		default:
			return nil, fmt.Errorf("serve: wal record %d has unknown type %q", n+1, tag.Type)
		}
	}
	if !rs.hasCheckpoint && len(payloads) == 0 {
		return nil, nil // nothing durable yet: fresh start
	}
	for _, wj := range rs.jobs[rs.checkpointJobs:] {
		if wj.Resp.Release > rs.clock {
			rs.clock = wj.Resp.Release
		}
	}
	return rs, nil
}

// replayInto re-feeds the durable history through a fresh session exactly as
// the serving loop did: advance the clock to each arrival's release, re-run
// the admission query, commit. Every re-derived verdict must match the
// acknowledged one — an admitted job that would no longer be admitted is a
// broken commitment and aborts recovery — and at the checkpoint boundary the
// recomputed session fingerprint must equal the stored one bit for bit.
func (rs *recoveredState) replayInto(sess *sim.Session, adm admitter, reg *telemetry.Registry, policy sim.Commitment) error {
	restoreSummary(reg, rs.summary)
	for n, wj := range rs.jobs {
		if n == rs.checkpointJobs && rs.hasCheckpoint {
			if err := rs.checkBoundary(sess); err != nil {
				return err
			}
		}
		job, err := workload.UnmarshalJob(wj.Job)
		if err != nil {
			return fmt.Errorf("serve: recovery job %d: %w", n+1, err)
		}
		if err := sess.AdvanceTo(job.Release); err != nil {
			return fmt.Errorf("serve: recovery replay: %w", err)
		}
		decision, reason, _ := decideAdmission(adm, job, policy)
		if decision != wj.Resp.Decision {
			return fmt.Errorf(
				"serve: recovery: job %d was acknowledged %q but replay decides %q (reason %q) — commitment violated, refusing to start",
				job.ID, wj.Resp.Decision, decision, reason)
		}
		if want := commitmentString(job.Commitment.Resolve(policy), true); wj.Resp.Commitment != want {
			return fmt.Errorf(
				"serve: recovery: job %d was acknowledged with commitment %q but replay derives %q — commitment violated, refusing to start",
				job.ID, wj.Resp.Commitment, want)
		}
		if err := sess.Arrive(job); err != nil {
			return fmt.Errorf("serve: recovery job %d: %w", job.ID, err)
		}
		if n >= rs.checkpointJobs {
			reg.Inc("serve.accepted", 1)
			reg.Inc("serve."+string(decision), 1)
		}
	}
	if len(rs.jobs) == rs.checkpointJobs && rs.hasCheckpoint {
		if err := rs.checkBoundary(sess); err != nil {
			return err
		}
	}
	if err := sess.AdvanceTo(rs.clock); err != nil {
		return fmt.Errorf("serve: recovery replay: %w", err)
	}
	reg.Inc("serve.rejected", int64(rs.suffixRejects))
	return nil
}

// checkBoundary advances to the checkpointed clock and asserts the replayed
// session reached the exact state the checkpoint fingerprinted.
func (rs *recoveredState) checkBoundary(sess *sim.Session) error {
	if err := sess.AdvanceTo(rs.checkpointClk); err != nil {
		return fmt.Errorf("serve: recovery replay: %w", err)
	}
	if fp := sess.Fingerprint(); fp != rs.checkpointFP {
		return fmt.Errorf(
			"serve: recovery: state fingerprint %016x at clock %d diverges from checkpoint %016x — refusing to start",
			fp, rs.checkpointClk, rs.checkpointFP)
	}
	return nil
}

// restoreSummary folds a checkpointed telemetry summary back into a fresh
// serving registry so counters survive restarts.
func restoreSummary(reg *telemetry.Registry, s telemetry.Summary) {
	for name, v := range s.Counters {
		reg.Inc(name, v)
	}
	for name, v := range s.Gauges {
		reg.SetGauge(name, v)
	}
}

// info renders the recovered state for /v1/stats and the startup banner.
func (rs *recoveredState) info() *RecoveryInfo {
	return &RecoveryInfo{
		Recovered:       true,
		CheckpointClock: rs.checkpointClk,
		CheckpointJobs:  rs.checkpointJobs,
		WALJobs:         len(rs.jobs) - rs.checkpointJobs,
		TornBytes:       rs.tornBytes,
		Jobs:            len(rs.jobs),
		Clock:           rs.clock,
	}
}

// ReplayDir re-simulates a WAL directory offline — checkpoint plus log
// suffix, exactly the history a recovering daemon replays — with the batch
// engine and returns the Result. A sharded directory (shard-<i>/ subdirs) is
// replayed shard by shard over the same capacity partition and merged. The
// counterpart of Replay for durable logs; the chaos harness uses it to
// compare a crash-recover-drain lifecycle against a crash-free run over the
// same history.
func ReplayDir(dir string) (*sim.Result, error) {
	if fi, err := os.Stat(filepath.Join(dir, shardDirName(0))); err == nil && fi.IsDir() {
		return replayShardedDir(dir)
	}
	res, err := replayOneDir(dir, 1 /* stride */, 0 /* idx */)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// replayShardedDir replays every shard-<i>/ of a sharded WAL directory and
// merges the Results. The shard count comes from the first shard's durable
// header; every subdirectory must agree with it.
func replayShardedDir(dir string) (*sim.Result, error) {
	hdr0, err := readAnyHeader(filepath.Join(dir, shardDirName(0)))
	if err != nil {
		return nil, err
	}
	n := hdr0.Shards
	if n < 2 {
		return nil, fmt.Errorf("serve: %s: shard-0 header declares %d shards", dir, n)
	}
	results := make([]*sim.Result, n)
	for i := 0; i < n; i++ {
		results[i], err = replayOneDir(filepath.Join(dir, shardDirName(i)), n, i)
		if err != nil {
			return nil, fmt.Errorf("serve: replay shard %d: %w", i, err)
		}
	}
	return mergeResults(results), nil
}

// replayOneDir replays one durable directory (the unsharded layout, or one
// shard's subdirectory) with the batch engine.
func replayOneDir(dir string, stride, idx int) (*sim.Result, error) {
	hdr, err := readAnyHeader(dir)
	if err != nil {
		return nil, err
	}
	if stride > 1 && (hdr.Shards != stride || hdr.Shard != idx) {
		return nil, fmt.Errorf("serve: header declares shard %d of %d, expected %d of %d",
			hdr.Shard, hdr.Shards, idx, stride)
	}
	speed, err := cliflags.ParseSpeed(hdr.Speed)
	if err != nil {
		return nil, err
	}
	rs, err := loadState(dir, hdr, idx+1-stride)
	if err != nil {
		return nil, err
	}
	if rs == nil {
		return nil, fmt.Errorf("serve: %s holds no durable state", dir)
	}
	jobs := make([]*sim.Job, 0, len(rs.jobs))
	for n, wj := range rs.jobs {
		j, err := workload.UnmarshalJob(wj.Job)
		if err != nil {
			return nil, fmt.Errorf("serve: job record %d: %w", n+1, err)
		}
		jobs = append(jobs, j)
	}
	sched, err := cliflags.MakeScheduler(hdr.Sched, hdr.Eps, false)
	if err != nil {
		return nil, err
	}
	if err := applyCommitment(sched, hdr.Commitment); err != nil {
		return nil, err
	}
	return sim.RunAuto(sim.Config{M: hdr.M, Speed: speed}, jobs, sched)
}

// readAnyHeader extracts the serving header from the checkpoint or, failing
// that, the WAL's first record.
func readAnyHeader(dir string) (ReplayHeader, error) {
	var zero ReplayHeader
	if data, err := os.ReadFile(filepath.Join(dir, checkpointFileName)); err == nil {
		line := data
		if n := len(line); n > 0 && line[n-1] == '\n' {
			line = line[:n-1]
		}
		payload, err := parseFrame(line)
		if err != nil {
			return zero, fmt.Errorf("serve: checkpoint corrupt: %w", err)
		}
		var cp Checkpoint
		if err := json.Unmarshal(payload, &cp); err != nil {
			return zero, err
		}
		return cp.Header, nil
	}
	payloads, _, err := scanWAL(filepath.Join(dir, walFileName))
	if err != nil {
		return zero, err
	}
	if len(payloads) == 0 {
		return zero, fmt.Errorf("serve: %s holds no durable state", dir)
	}
	var h ReplayHeader
	if err := json.Unmarshal(payloads[0], &h); err != nil {
		return zero, err
	}
	if h.Type != "header" {
		return zero, fmt.Errorf("serve: wal starts with type %q, want header", h.Type)
	}
	return h, nil
}
