package serve

import (
	"fmt"
	"hash/fnv"
	"math"
	"testing"
)

// testPlacer builds an engineless placer over n bare shards with the given
// EWMA pressures (mailbox empty, so pressureScore equals the EWMA term).
func testPlacer(n int, pressures []float64) *placer {
	shards := make([]*shard, n)
	for i := range shards {
		shards[i] = &shard{idx: i, m: 2, stride: n, reqs: make(chan any, 4)}
		if pressures != nil {
			shards[i].pressure.Store(math.Float64bits(pressures[i]))
		}
	}
	return newPlacer(shards)
}

func TestPlacerSingleShardFastPath(t *testing.T) {
	p := testPlacer(1, []float64{9.5}) // pressure is irrelevant with one shard
	if got := p.route(""); got != p.shards[0] {
		t.Fatal("single-shard route did not return the only shard")
	}
	if got := p.route("some-key"); got != p.shards[0] {
		t.Fatal("single-shard keyed route did not return the only shard")
	}
}

// TestPlacerKeyedAffinity: a key always lands on its hash shard no matter
// what the pressures say — the idempotency table lives there.
func TestPlacerKeyedAffinity(t *testing.T) {
	p := testPlacer(4, []float64{0, 5, 5, 5})
	for _, key := range []string{"a", "req-17", "client-9-42", "x"} {
		h := fnv.New32a()
		h.Write([]byte(key))
		want := p.shards[int(h.Sum32())%4]
		for i := 0; i < 3; i++ { // stable across calls
			if got := p.route(key); got != want {
				t.Fatalf("key %q routed to shard %d, want %d", key, got.idx, want.idx)
			}
		}
	}
	// Distinct keys spread: at least two shards see traffic over a key sweep.
	seen := map[int]bool{}
	for i := 0; i < 32; i++ {
		seen[p.route(fmt.Sprintf("key-%d", i)).idx] = true
	}
	if len(seen) < 2 {
		t.Fatalf("32 keys all hashed to one shard: %v", seen)
	}
}

func TestPlacerLowestPressureWins(t *testing.T) {
	p := testPlacer(4, []float64{0.8, 0.2, 0.5, 0.9})
	if got := p.route(""); got != p.shards[1] {
		t.Fatalf("routed to shard %d, want 1 (lowest pressure)", got.idx)
	}
	// Ties break toward the lower index: routing is deterministic.
	p = testPlacer(3, []float64{0.4, 0.4, 0.4})
	if got := p.route(""); got != p.shards[0] {
		t.Fatalf("tie routed to shard %d, want 0", got.idx)
	}
}

// TestPlacerMailboxBacklogCounts: the instantaneous mailbox fraction is part
// of the score, so a backed-up mailbox loses to an idle one at equal EWMA.
func TestPlacerMailboxBacklogCounts(t *testing.T) {
	p := testPlacer(2, []float64{0.3, 0.3})
	p.shards[0].reqs <- struct{}{}
	p.shards[0].reqs <- struct{}{}
	if got := p.route(""); got != p.shards[1] {
		t.Fatalf("routed to backlogged shard %d, want 1", got.idx)
	}
}

// TestPlacerBandFullSpill: when the lowest-pressure shard's band is full and
// the runner-up's is not, the runner-up gets the job — it may still admit
// where the first would park.
func TestPlacerBandFullSpill(t *testing.T) {
	p := testPlacer(3, []float64{0.1, 0.4, 0.9})
	p.shards[0].bandFull.Store(true)
	if got := p.route(""); got != p.shards[1] {
		t.Fatalf("spill routed to shard %d, want runner-up 1", got.idx)
	}
	// Both best and runner-up full: stay with the best (no third choice —
	// spilling further would chase pressure the signal can't justify).
	p.shards[1].bandFull.Store(true)
	if got := p.route(""); got != p.shards[0] {
		t.Fatalf("double-full routed to shard %d, want best 0", got.idx)
	}
	// Keyed routing never spills.
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("k%d", i)
		h := fnv.New32a()
		h.Write([]byte(key))
		if got := p.route(key); got != p.shards[int(h.Sum32())%3] {
			t.Fatalf("keyed route for %q spilled", key)
		}
	}
}

func TestPlacerShardFor(t *testing.T) {
	p := testPlacer(4, nil)
	for id := 1; id <= 16; id++ {
		want := (id - 1) % 4
		if got := p.shardFor(id); got.idx != want {
			t.Fatalf("shardFor(%d) = shard %d, want %d", id, got.idx, want)
		}
	}
}
