package serve

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// benchAdvanceEvery/benchAdvanceTicks bound the live set in the HTTP-layer
// submission benchmarks: advance the session 8 ticks per 64 submissions,
// exactly the cadence BenchmarkSubmissionsEngine uses. The cadence matters
// twice over: it keeps the steady-state live set constant (~8 arrivals/tick
// at deadline 40) instead of growing with b.N, and it keeps the parked set
// the admission test rescans comparable on both sides of the wire-guard
// ratio — batching thousands of arrivals at one simulated instant would
// balloon the parked set and charge the scheduler's work to the wire.
const (
	benchAdvanceEvery = 64
	benchAdvanceTicks = 8
)

// BenchmarkSubmissionsHTTP measures end-to-end submissions/sec through the
// full stack: HTTP round trip, placer, mailbox, admission test, session
// arrival.
func BenchmarkSubmissionsHTTP(b *testing.B) {
	srv, err := New(Config{M: 8, QueueDepth: 1024, TickInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	var submitted atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := submitted.Add(1)
			spec := fmt.Sprintf(`{"w":%d,"l":2,"deadline":40,"profit":3}`, 4+i%13)
			resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
				b.Errorf("status %d", resp.StatusCode)
				return
			}
			// Keep the live set independent of b.N (Advance is monotone, so
			// racing goroutines just no-op on an already-passed clock).
			if i%benchAdvanceEvery == 0 {
				srv.Advance(i / benchAdvanceEvery * benchAdvanceTicks)
			}
		}
	})
}

// benchBatchBody builds a JSON array of n scalar specs, the payload the
// batch benchmarks replay. The spec matches BenchmarkSubmissionsEngine's
// exactly so the engine-side work (admission test, session arrival,
// schedule churn) is identical and the batch-vs-engine ratio isolates the
// wire: parse, placer, mailbox, WAL framing, response encode.
func benchBatchBody(n int) string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`{"w":16,"l":2,"deadline":40,"profit":3}`)
	}
	sb.WriteByte(']')
	return sb.String()
}

// benchHTTPConn is a minimal HTTP/1.1 load generator: one persistent TCP
// connection, pre-built request bytes, zero-allocation response reads. The
// batch benchmarks run client and server on the same host (often a single
// vCPU), so net/http's client — per-request goroutines, header maps, body
// plumbing — would bill a third of the machine to the load generator and
// appear in the wire-guard ratio as server cost. The requests on the wire
// are ordinary HTTP; only the generator is lean.
type benchHTTPConn struct {
	conn net.Conn
	br   *bufio.Reader
	buf  []byte // response-body scratch, valid until the next roundTrip
}

func dialBenchConn(tb testing.TB, tsURL string) *benchHTTPConn {
	tb.Helper()
	c, err := net.Dial("tcp", strings.TrimPrefix(tsURL, "http://"))
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { c.Close() })
	return &benchHTTPConn{conn: c, br: bufio.NewReaderSize(c, 64<<10)}
}

// benchRequest pre-serializes one POST so the benchmark loop writes fixed
// bytes instead of re-rendering headers per iteration.
func benchRequest(path, body string) []byte {
	return []byte("POST " + path + " HTTP/1.1\r\nHost: bench\r\nContent-Type: application/json\r\nContent-Length: " +
		strconv.Itoa(len(body)) + "\r\n\r\n" + body)
}

// roundTrip writes one pre-built request and reads one response, handling
// both identity (Content-Length) and chunked framing. The returned body
// aliases the connection scratch buffer.
func (bc *benchHTTPConn) roundTrip(req []byte) (status int, body []byte, err error) {
	if _, err := bc.conn.Write(req); err != nil {
		return 0, nil, err
	}
	line, err := bc.br.ReadSlice('\n')
	if err != nil {
		return 0, nil, err
	}
	if len(line) < 12 {
		return 0, nil, fmt.Errorf("short status line %q", line)
	}
	status, err = strconv.Atoi(string(line[9:12]))
	if err != nil {
		return 0, nil, fmt.Errorf("bad status line %q", line)
	}
	clen, chunked := -1, false
	for {
		h, err := bc.br.ReadSlice('\n')
		if err != nil {
			return 0, nil, err
		}
		h = bytes.TrimRight(h, "\r\n")
		if len(h) == 0 {
			break
		}
		if v, ok := cutHeader(h, "content-length:"); ok {
			if clen, err = strconv.Atoi(v); err != nil {
				return 0, nil, fmt.Errorf("bad content-length %q", v)
			}
		} else if v, ok := cutHeader(h, "transfer-encoding:"); ok && v == "chunked" {
			chunked = true
		}
	}
	bc.buf = bc.buf[:0]
	switch {
	case chunked:
		for {
			line, err := bc.br.ReadSlice('\n')
			if err != nil {
				return 0, nil, err
			}
			n, err := strconv.ParseInt(string(bytes.TrimRight(line, "\r\n")), 16, 64)
			if err != nil {
				return 0, nil, fmt.Errorf("bad chunk size %q", line)
			}
			if n == 0 {
				if _, err := bc.br.Discard(2); err != nil { // trailing CRLF
					return 0, nil, err
				}
				break
			}
			off := len(bc.buf)
			bc.buf = append(bc.buf, make([]byte, n)...)
			if _, err := io.ReadFull(bc.br, bc.buf[off:]); err != nil {
				return 0, nil, err
			}
			if _, err := bc.br.Discard(2); err != nil { // chunk CRLF
				return 0, nil, err
			}
		}
	case clen > 0:
		bc.buf = append(bc.buf, make([]byte, clen)...)
		if _, err := io.ReadFull(bc.br, bc.buf); err != nil {
			return 0, nil, err
		}
	}
	return status, bc.buf, nil
}

// cutHeader matches a header line against a lowercase "name:" prefix
// case-insensitively and returns the trimmed value.
func cutHeader(h []byte, prefix string) (string, bool) {
	if len(h) < len(prefix) {
		return "", false
	}
	for i := 0; i < len(prefix); i++ {
		c := h[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != prefix[i] {
			return "", false
		}
	}
	return string(bytes.TrimSpace(h[len(prefix):])), true
}

// postBenchBatch posts one pre-built batch request and checks every item
// was acknowledged, without decoding the body (count the status fields).
func postBenchBatch(b *testing.B, bc *benchHTTPConn, req []byte, n int) {
	b.Helper()
	status, raw, err := bc.roundTrip(req)
	if err != nil {
		b.Fatal(err)
	}
	if status != http.StatusOK {
		b.Fatalf("batch: code=%d body=%s", status, raw[:min(len(raw), 200)])
	}
	if got := bytes.Count(raw, []byte(`"status":200`)); got != n {
		b.Fatalf("batch acknowledged %d/%d items: %s", got, n, raw[:min(len(raw), 200)])
	}
}

// BenchmarkSubmissionsBatchHTTP measures end-to-end submissions/sec through
// POST /v1/jobs:batch: one HTTP round trip, one parse pass, and one mailbox
// crossing per shard group carry `size` specs. ns/op is per batch; the
// items/s metric is the end-to-end submission rate.
func BenchmarkSubmissionsBatchHTTP(b *testing.B) {
	for _, size := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			srv, err := New(Config{M: 8, QueueDepth: 1024, TickInterval: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Drain()
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			req := benchRequest("/v1/jobs:batch", benchBatchBody(size))
			bc := dialBenchConn(b, ts.URL)
			items := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				postBenchBatch(b, bc, req, size)
				items += size
				if items%benchAdvanceEvery < size {
					srv.Advance(int64(items / benchAdvanceEvery * benchAdvanceTicks))
				}
			}
			b.ReportMetric(float64(items)/b.Elapsed().Seconds(), "items/s")
		})
	}
}

// BenchmarkSubmissionsBatchWAL is the durable batch path: group commit means
// one fsync window per shard group instead of one per record. fsync=interval
// is the deployment shape the ≥100k submissions/sec target is specified
// against; fsync=always shows what group commit alone buys.
func BenchmarkSubmissionsBatchWAL(b *testing.B) {
	for _, policy := range []FsyncPolicy{FsyncInterval, FsyncAlways} {
		for _, size := range []int{64, 256} {
			b.Run(fmt.Sprintf("%s/size=%d", policy, size), func(b *testing.B) {
				srv, err := New(Config{
					M: 8, QueueDepth: 1024, TickInterval: -1,
					WALDir: b.TempDir(), Fsync: policy,
					CheckpointInterval: -1,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer srv.Drain()
				ts := httptest.NewServer(srv.Handler())
				defer ts.Close()
				req := benchRequest("/v1/jobs:batch", benchBatchBody(size))
				bc := dialBenchConn(b, ts.URL)
				items := 0
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					postBenchBatch(b, bc, req, size)
					items += size
					if items%benchAdvanceEvery < size {
						srv.Advance(int64(items / benchAdvanceEvery * benchAdvanceTicks))
					}
				}
				b.ReportMetric(float64(items)/b.Elapsed().Seconds(), "items/s")
			})
		}
	}
}

// parkEngines leaves every shard's engine goroutine idle in its select (one
// mailbox round trip each); with the ticker disabled it stays there, so
// calling handleSubmit/advance from the benchmark goroutine is unraced until
// Drain's channel send orders the exit.
func parkEngines(b *testing.B, srv *Server) {
	b.Helper()
	for _, sh := range srv.shards {
		sync := advanceMsg{to: 0, reply: make(chan struct{})}
		sh.reqs <- sync
		<-sync.reply
	}
}

// BenchmarkSubmissionsEngine measures the engine-side cost alone: spec
// build, admission query, session arrival — no HTTP, no mailbox hop.
func BenchmarkSubmissionsEngine(b *testing.B) {
	srv, err := New(Config{M: 8, QueueDepth: 1, TickInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Drain()
	parkEngines(b, srv)

	sh := srv.shards[0]
	spec := JobSpec{W: 16, L: 2, Deadline: 40, Profit: ScalarProfit(3)}
	clock := int64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := sh.handleSubmit(spec, "", nil)
		if rep.status != http.StatusOK {
			b.Fatalf("status %d: %s", rep.status, rep.err)
		}
		// Advance periodically so the live set stays at a steady size
		// instead of growing with b.N.
		if i%64 == 63 {
			clock += 8
			sh.advance(clock)
		}
	}
}

// shardedEngineLoop drives b.N submissions round-robin across a daemon's
// shards from the benchmark goroutine (engines parked), reporting the
// per-submission engine-path cost under that partition. The round-robin
// mirrors what the placer converges to under a uniform stream: equal load
// per shard.
func shardedEngineLoop(b *testing.B, srv *Server) {
	b.Helper()
	parkEngines(b, srv)
	spec := JobSpec{W: 16, L: 2, Deadline: 40, Profit: ScalarProfit(3)}
	clock := int64(0)
	n := len(srv.shards)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh := srv.shards[i%n]
		rep := sh.handleSubmit(spec, "", nil)
		if rep.status != http.StatusOK {
			b.Fatalf("status %d: %s", rep.status, rep.err)
		}
		if i%64 == 63 {
			clock += 8
			for _, sh := range srv.shards {
				sh.advance(clock)
			}
		}
	}
}

// BenchmarkSubmissionsEngineSharded measures the per-submission engine cost
// under 1/2/4/8 shards of the same 8-processor daemon. Shards share nothing,
// so N independent drivers sustain N× the single-driver rate as long as the
// per-submission cost on a capacity slice stays near the single-shard cost —
// this benchmark exposes that per-op cost; TestShardedEnginePathGuard pins
// the ratio.
func BenchmarkSubmissionsEngineSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			srv, err := New(Config{M: 8, Shards: shards, QueueDepth: 1, TickInterval: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Drain()
			shardedEngineLoop(b, srv)
		})
	}
}

// BenchmarkSubmissionsWAL measures the engine-side submission cost with the
// write-ahead log enabled, one sub-benchmark per fsync policy. Compare
// against BenchmarkSubmissionsEngine for the durability overhead.
func BenchmarkSubmissionsWAL(b *testing.B) {
	for _, policy := range []FsyncPolicy{FsyncOff, FsyncInterval, FsyncAlways} {
		b.Run(string(policy), func(b *testing.B) {
			srv, err := New(Config{
				M: 8, QueueDepth: 1, TickInterval: -1,
				WALDir: b.TempDir(), Fsync: policy,
				CheckpointInterval: -1, // isolate append cost from checkpoint cost
			})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Drain()
			parkEngines(b, srv)

			sh := srv.shards[0]
			spec := JobSpec{W: 16, L: 2, Deadline: 40, Profit: ScalarProfit(3)}
			clock := int64(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep := sh.handleSubmit(spec, "", nil)
				if rep.status != http.StatusOK {
					b.Fatalf("status %d: %s", rep.status, rep.err)
				}
				if i%64 == 63 {
					clock += 8
					sh.advance(clock)
				}
			}
		})
	}
}

// BenchmarkSubmissionsWALSharded measures wall-clock durable throughput with
// one driver goroutine per shard pushing through the live mailboxes under
// fsync=always: the per-shard WALs are independent files, so their syncs can
// overlap. How much they actually overlap is hardware-bound (independent
// flush streams; see BENCH_PR7.json for measured overlap on a virtio disk).
func BenchmarkSubmissionsWALSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			srv, err := New(Config{
				M: 8, Shards: shards, QueueDepth: 1024, TickInterval: -1,
				WALDir: b.TempDir(), Fsync: FsyncAlways,
				CheckpointInterval: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Drain()
			spec := JobSpec{W: 16, L: 2, Deadline: 40, Profit: ScalarProfit(3)}
			var wg sync.WaitGroup
			b.ResetTimer()
			for s, sh := range srv.shards {
				n := b.N / shards
				if s < b.N%shards {
					n++
				}
				wg.Add(1)
				go func(sh *shard, n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						msg := submitMsg{spec: spec, reply: make(chan submitReply, 1)}
						sh.reqs <- msg
						if rep := <-msg.reply; rep.status != http.StatusOK {
							b.Errorf("status %d: %s", rep.status, rep.err)
							return
						}
					}
				}(sh, n)
			}
			wg.Wait()
		})
	}
}

// TestShardedEnginePathGuard is the PR 7 throughput gate, run by
// `make bench-guard` with SPAA_BENCH_GUARD=1 (skipped otherwise: it runs
// real benchmarks and is too noisy for the ordinary test suite).
//
// Shards share nothing on the engine path, so aggregate capacity is
// N / (per-submission cost on a 1/N capacity slice): with 4 drivers the
// daemon sustains 4×r₄ submissions/sec where r₄ is one sharded driver's
// rate. The guard pins the sharded per-submission cost at ≤ 1.6× the
// single-shard cost, which is exactly aggregate(4 shards) ≥ 2.5× the
// single-shard engine-path throughput — measured as per-op cost rather than
// 4-goroutine wall clock so the gate holds on single-vCPU CI hosts, where
// wall-clock overlap measures the host's core count, not the refactor.
func TestShardedEnginePathGuard(t *testing.T) {
	if os.Getenv("SPAA_BENCH_GUARD") == "" {
		t.Skip("set SPAA_BENCH_GUARD=1 to run the sharded throughput gate")
	}
	measure := func(shards int) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			srv, err := New(Config{M: 8, Shards: shards, QueueDepth: 1, TickInterval: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Drain()
			shardedEngineLoop(b, srv)
		})
		return float64(r.NsPerOp())
	}
	cost1 := measure(1)
	cost4 := measure(4)
	ratio := cost4 / cost1
	t.Logf("engine path: %.0f ns/op at 1 shard, %.0f ns/op at 4 shards (cost ratio %.2f, aggregate scaling %.2fx)",
		cost1, cost4, ratio, 4/ratio)
	if ratio > 1.6 {
		t.Errorf("sharded per-submission cost is %.2fx the single-shard cost (budget 1.6x): "+
			"4-shard aggregate throughput %.2fx falls below the 2.5x gate", ratio, 4/ratio)
	}
}
