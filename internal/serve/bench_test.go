package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
)

// BenchmarkSubmissionsHTTP measures end-to-end submissions/sec through the
// full stack: HTTP round trip, placer, mailbox, admission test, session
// arrival.
func BenchmarkSubmissionsHTTP(b *testing.B) {
	srv, err := New(Config{M: 8, QueueDepth: 1024, TickInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			spec := fmt.Sprintf(`{"w":%d,"l":2,"deadline":40,"profit":3}`, 4+i%13)
			resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
				b.Errorf("status %d", resp.StatusCode)
				return
			}
		}
	})
}

// parkEngines leaves every shard's engine goroutine idle in its select (one
// mailbox round trip each); with the ticker disabled it stays there, so
// calling handleSubmit/advance from the benchmark goroutine is unraced until
// Drain's channel send orders the exit.
func parkEngines(b *testing.B, srv *Server) {
	b.Helper()
	for _, sh := range srv.shards {
		sync := advanceMsg{to: 0, reply: make(chan struct{})}
		sh.reqs <- sync
		<-sync.reply
	}
}

// BenchmarkSubmissionsEngine measures the engine-side cost alone: spec
// build, admission query, session arrival — no HTTP, no mailbox hop.
func BenchmarkSubmissionsEngine(b *testing.B) {
	srv, err := New(Config{M: 8, QueueDepth: 1, TickInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Drain()
	parkEngines(b, srv)

	sh := srv.shards[0]
	spec := JobSpec{W: 16, L: 2, Deadline: 40, Profit: 3}
	clock := int64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := sh.handleSubmit(spec, "", nil)
		if rep.status != http.StatusOK {
			b.Fatalf("status %d: %s", rep.status, rep.err)
		}
		// Advance periodically so the live set stays at a steady size
		// instead of growing with b.N.
		if i%64 == 63 {
			clock += 8
			sh.advance(clock)
		}
	}
}

// shardedEngineLoop drives b.N submissions round-robin across a daemon's
// shards from the benchmark goroutine (engines parked), reporting the
// per-submission engine-path cost under that partition. The round-robin
// mirrors what the placer converges to under a uniform stream: equal load
// per shard.
func shardedEngineLoop(b *testing.B, srv *Server) {
	b.Helper()
	parkEngines(b, srv)
	spec := JobSpec{W: 16, L: 2, Deadline: 40, Profit: 3}
	clock := int64(0)
	n := len(srv.shards)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh := srv.shards[i%n]
		rep := sh.handleSubmit(spec, "", nil)
		if rep.status != http.StatusOK {
			b.Fatalf("status %d: %s", rep.status, rep.err)
		}
		if i%64 == 63 {
			clock += 8
			for _, sh := range srv.shards {
				sh.advance(clock)
			}
		}
	}
}

// BenchmarkSubmissionsEngineSharded measures the per-submission engine cost
// under 1/2/4/8 shards of the same 8-processor daemon. Shards share nothing,
// so N independent drivers sustain N× the single-driver rate as long as the
// per-submission cost on a capacity slice stays near the single-shard cost —
// this benchmark exposes that per-op cost; TestShardedEnginePathGuard pins
// the ratio.
func BenchmarkSubmissionsEngineSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			srv, err := New(Config{M: 8, Shards: shards, QueueDepth: 1, TickInterval: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Drain()
			shardedEngineLoop(b, srv)
		})
	}
}

// BenchmarkSubmissionsWAL measures the engine-side submission cost with the
// write-ahead log enabled, one sub-benchmark per fsync policy. Compare
// against BenchmarkSubmissionsEngine for the durability overhead.
func BenchmarkSubmissionsWAL(b *testing.B) {
	for _, policy := range []FsyncPolicy{FsyncOff, FsyncInterval, FsyncAlways} {
		b.Run(string(policy), func(b *testing.B) {
			srv, err := New(Config{
				M: 8, QueueDepth: 1, TickInterval: -1,
				WALDir: b.TempDir(), Fsync: policy,
				CheckpointInterval: -1, // isolate append cost from checkpoint cost
			})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Drain()
			parkEngines(b, srv)

			sh := srv.shards[0]
			spec := JobSpec{W: 16, L: 2, Deadline: 40, Profit: 3}
			clock := int64(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep := sh.handleSubmit(spec, "", nil)
				if rep.status != http.StatusOK {
					b.Fatalf("status %d: %s", rep.status, rep.err)
				}
				if i%64 == 63 {
					clock += 8
					sh.advance(clock)
				}
			}
		})
	}
}

// BenchmarkSubmissionsWALSharded measures wall-clock durable throughput with
// one driver goroutine per shard pushing through the live mailboxes under
// fsync=always: the per-shard WALs are independent files, so their syncs can
// overlap. How much they actually overlap is hardware-bound (independent
// flush streams; see BENCH_PR7.json for measured overlap on a virtio disk).
func BenchmarkSubmissionsWALSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			srv, err := New(Config{
				M: 8, Shards: shards, QueueDepth: 1024, TickInterval: -1,
				WALDir: b.TempDir(), Fsync: FsyncAlways,
				CheckpointInterval: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Drain()
			spec := JobSpec{W: 16, L: 2, Deadline: 40, Profit: 3}
			var wg sync.WaitGroup
			b.ResetTimer()
			for s, sh := range srv.shards {
				n := b.N / shards
				if s < b.N%shards {
					n++
				}
				wg.Add(1)
				go func(sh *shard, n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						msg := submitMsg{spec: spec, reply: make(chan submitReply, 1)}
						sh.reqs <- msg
						if rep := <-msg.reply; rep.status != http.StatusOK {
							b.Errorf("status %d: %s", rep.status, rep.err)
							return
						}
					}
				}(sh, n)
			}
			wg.Wait()
		})
	}
}

// TestShardedEnginePathGuard is the PR 7 throughput gate, run by
// `make bench-guard` with SPAA_BENCH_GUARD=1 (skipped otherwise: it runs
// real benchmarks and is too noisy for the ordinary test suite).
//
// Shards share nothing on the engine path, so aggregate capacity is
// N / (per-submission cost on a 1/N capacity slice): with 4 drivers the
// daemon sustains 4×r₄ submissions/sec where r₄ is one sharded driver's
// rate. The guard pins the sharded per-submission cost at ≤ 1.6× the
// single-shard cost, which is exactly aggregate(4 shards) ≥ 2.5× the
// single-shard engine-path throughput — measured as per-op cost rather than
// 4-goroutine wall clock so the gate holds on single-vCPU CI hosts, where
// wall-clock overlap measures the host's core count, not the refactor.
func TestShardedEnginePathGuard(t *testing.T) {
	if os.Getenv("SPAA_BENCH_GUARD") == "" {
		t.Skip("set SPAA_BENCH_GUARD=1 to run the sharded throughput gate")
	}
	measure := func(shards int) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			srv, err := New(Config{M: 8, Shards: shards, QueueDepth: 1, TickInterval: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Drain()
			shardedEngineLoop(b, srv)
		})
		return float64(r.NsPerOp())
	}
	cost1 := measure(1)
	cost4 := measure(4)
	ratio := cost4 / cost1
	t.Logf("engine path: %.0f ns/op at 1 shard, %.0f ns/op at 4 shards (cost ratio %.2f, aggregate scaling %.2fx)",
		cost1, cost4, ratio, 4/ratio)
	if ratio > 1.6 {
		t.Errorf("sharded per-submission cost is %.2fx the single-shard cost (budget 1.6x): "+
			"4-shard aggregate throughput %.2fx falls below the 2.5x gate", ratio, 4/ratio)
	}
}
