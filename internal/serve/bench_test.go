package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// BenchmarkSubmissionsHTTP measures end-to-end submissions/sec through the
// full stack: HTTP round trip, mailbox, admission test, session arrival.
func BenchmarkSubmissionsHTTP(b *testing.B) {
	srv, err := New(Config{M: 8, QueueDepth: 1024, TickInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			spec := fmt.Sprintf(`{"w":%d,"l":2,"deadline":40,"profit":3}`, 4+i%13)
			resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
				b.Errorf("status %d", resp.StatusCode)
				return
			}
		}
	})
}

// BenchmarkSubmissionsEngine measures the engine-side cost alone: spec
// build, admission query, session arrival — no HTTP, no mailbox hop.
func BenchmarkSubmissionsEngine(b *testing.B) {
	srv, err := New(Config{M: 8, QueueDepth: 1, TickInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Drain()
	// One mailbox round trip leaves the engine goroutine idle in its select;
	// with the ticker disabled it stays there, so calling handleSubmit from
	// this goroutine is unraced until Drain's channel send orders the exit.
	sync := advanceMsg{to: 0, reply: make(chan struct{})}
	srv.reqs <- sync
	<-sync.reply

	spec := JobSpec{W: 16, L: 2, Deadline: 40, Profit: 3}
	clock := int64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := srv.handleSubmit(spec, "")
		if rep.status != http.StatusOK {
			b.Fatalf("status %d: %s", rep.status, rep.err)
		}
		// Advance periodically so the live set stays at a steady size
		// instead of growing with b.N.
		if i%64 == 63 {
			clock += 8
			srv.advance(clock)
		}
	}
}

// BenchmarkSubmissionsWAL measures the engine-side submission cost with the
// write-ahead log enabled, one sub-benchmark per fsync policy. Compare
// against BenchmarkSubmissionsEngine for the durability overhead.
func BenchmarkSubmissionsWAL(b *testing.B) {
	for _, policy := range []FsyncPolicy{FsyncOff, FsyncInterval, FsyncAlways} {
		b.Run(string(policy), func(b *testing.B) {
			srv, err := New(Config{
				M: 8, QueueDepth: 1, TickInterval: -1,
				WALDir: b.TempDir(), Fsync: policy,
				CheckpointInterval: -1, // isolate append cost from checkpoint cost
			})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Drain()
			sync := advanceMsg{to: 0, reply: make(chan struct{})}
			srv.reqs <- sync
			<-sync.reply

			spec := JobSpec{W: 16, L: 2, Deadline: 40, Profit: 3}
			clock := int64(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep := srv.handleSubmit(spec, "")
				if rep.status != http.StatusOK {
					b.Fatalf("status %d: %s", rep.status, rep.err)
				}
				if i%64 == 63 {
					clock += 8
					srv.advance(clock)
				}
			}
		})
	}
}
