package serve

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseClockMode(t *testing.T) {
	cases := []struct {
		in      string
		want    ClockMode
		wantErr bool
	}{
		{"", ClockAuto, false},
		{"auto", ClockAuto, false},
		{"ticker", ClockTicker, false},
		{"jump", ClockJump, false},
		{"bogus", "", true},
		{"Jump", "", true},
	}
	for _, tc := range cases {
		got, err := ParseClockMode(tc.in)
		if (err != nil) != tc.wantErr || got != tc.want {
			t.Errorf("ParseClockMode(%q) = %q, %v; want %q, err=%v", tc.in, got, err, tc.want, tc.wantErr)
		}
	}
}

// TestClockResolution: auto picks jump exactly when the session is
// event-safe, ticker is always honored, and an explicit jump request on an
// unsafe configuration is a construction error, not a silent fallback.
func TestClockResolution(t *testing.T) {
	mk := func(sched string, mode ClockMode) (*Server, error) {
		return New(Config{M: 4, Sched: sched, Clock: mode, TickInterval: time.Hour})
	}
	srv, err := mk("s", ClockAuto)
	if err != nil {
		t.Fatal(err)
	}
	if !srv.shards[0].jump {
		t.Error("auto + scheduler s: want the jump clock")
	}
	srv.Drain()

	srv, err = mk("llf", ClockAuto)
	if err != nil {
		t.Fatal(err)
	}
	if srv.shards[0].jump {
		t.Error("auto + llf (not event-safe): want the ticker")
	}
	srv.Drain()

	srv, err = mk("s", ClockTicker)
	if err != nil {
		t.Fatal(err)
	}
	if srv.shards[0].jump {
		t.Error("explicit ticker must win even when jump is safe")
	}
	srv.Drain()

	if _, err := mk("llf", ClockJump); err == nil {
		t.Error("jump + llf must fail construction")
	}
	if _, err := New(Config{M: 1, Clock: "sundial"}); err == nil {
		t.Error("unknown clock mode must fail construction")
	}
}

// TestClockJumpIdleNoWakeups: an idle event-safe daemon performs no clock
// work at all — no ticker wakeups (it has no ticker) and no jump fires (an
// idle session has no next event, so no timer is armed). The ticker daemon
// under the same config burns wakeups just to discover nothing happened.
func TestClockJumpIdleNoWakeups(t *testing.T) {
	srv, err := New(Config{M: 2, TickInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()
	if !srv.shards[0].jump {
		t.Fatal("default config must resolve to the jump clock")
	}

	time.Sleep(50 * time.Millisecond)
	m := scrapeMetrics(t, ts.URL+"/metrics")
	if v := m[`serve_ticker_wakeups_total{shard="0"}`]; v != 0 {
		t.Errorf("idle jump daemon recorded %v ticker wakeups, want 0", v)
	}
	if v := m[`serve_clock_jumps_total{shard="0"}`]; v != 0 {
		t.Errorf("idle jump daemon recorded %v clock jumps, want 0", v)
	}

	// A submission gives the session a next event; now the timer arms and
	// the clock starts jumping — and once the job's deadline passes, the
	// shard goes quiet again instead of ticking forever.
	code, jr := postJob(t, ts, `{"w":8,"l":2,"deadline":10,"profit":2}`)
	if code != 200 || jr.Decision != DecisionAdmitted {
		t.Fatalf("submit: code=%d resp=%+v", code, jr)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		m = scrapeMetrics(t, ts.URL+"/metrics")
		if m[`serve_clock_jumps_total{shard="0"}`] > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no clock jump observed after a submission")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v := m[`serve_ticker_wakeups_total{shard="0"}`]; v != 0 {
		t.Errorf("jump daemon recorded %v ticker wakeups under load, want 0", v)
	}
}

// TestClockTickerWakeups is the contrast case: the ticker loop wakes every
// interval even with nothing to do.
func TestClockTickerWakeups(t *testing.T) {
	srv, err := New(Config{M: 2, TickInterval: time.Millisecond, Clock: ClockTicker})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	deadline := time.Now().Add(5 * time.Second)
	for {
		m := scrapeMetrics(t, ts.URL+"/metrics")
		if m[`serve_ticker_wakeups_total{shard="0"}`] > 0 {
			if v := m[`serve_clock_jumps_total{shard="0"}`]; v != 0 {
				t.Errorf("ticker daemon recorded %v clock jumps, want 0", v)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("idle ticker daemon recorded no wakeups")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClockJumpReplayIdentity drives the ticker and jump disciplines through
// the same submission sequence under a frozen wall tick (interval = 1h, the
// clock moved only by explicit Advance) and requires byte-identical replay
// logs: the jump loop's burst catch-up must be indistinguishable from
// tick-by-tick advance.
func TestClockJumpReplayIdentity(t *testing.T) {
	run := func(mode ClockMode) string {
		var replay bytes.Buffer
		srv, err := New(Config{
			M: 4, QueueDepth: 64, TickInterval: time.Hour, Clock: mode,
			ReplayLog: &replay,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		specs := []string{
			`{"w":32,"l":4,"deadline":40,"profit":10}`,
			`{"w":16,"l":2,"deadline":30,"profit":3}`,
			`{"w":100,"l":2,"deadline":12,"profit":8}`,
			`{"w":8,"l":2,"deadline":25,"profit":2}`,
		}
		for i, spec := range specs {
			if code, _ := postJob(t, ts, spec); code != 200 {
				t.Fatalf("%s submit %d: code=%d", mode, i, code)
			}
			srv.Advance(int64((i + 1) * 3))
		}
		srv.Drain()
		return replay.String()
	}
	ticker := run(ClockTicker)
	jump := run(ClockJump)
	if ticker != jump {
		t.Fatalf("replay logs diverge between clock modes\nticker:\n%s\njump:\n%s", ticker, jump)
	}
	if !strings.Contains(ticker, `"type"`) {
		t.Fatalf("replay log looks empty: %q", ticker)
	}
}

// TestClockJumpWALInterval: under the interval fsync policy the jump loop
// must wake for the flush deadline even when the session itself is idle —
// otherwise an acknowledged record could sit unflushed until the next
// submission.
func TestClockJumpWALInterval(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Config{
		M: 2, TickInterval: time.Millisecond, WALDir: dir,
		Fsync: FsyncInterval, FsyncInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	if code, _ := postJob(t, ts, `{"w":8,"l":2,"deadline":1000,"profit":2}`); code != 200 {
		t.Fatal("submit failed")
	}
	// The fsync deadline is 5ms out; give the timer room, then check the
	// shard flushed without any further traffic.
	deadline := time.Now().Add(5 * time.Second)
	for {
		m := scrapeMetrics(t, ts.URL+"/metrics")
		if m[`serve_wal_fsync_us_count{shard="0"}`] > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("interval-policy fsync never fired under the jump clock")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
