package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dagsched/internal/workload"
)

// TestStructuredProfitEquivalentToScalar: a {"type":"step"} profit object
// with the same value and horizon as a v1 scalar spec must produce the
// identical verdict, ID sequence aside.
func TestStructuredProfitEquivalentToScalar(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 4})
	code, scalar := postJob(t, ts, `{"w":32,"l":4,"deadline":40,"profit":10}`)
	if code != 200 || scalar.Decision != DecisionAdmitted {
		t.Fatalf("scalar submit: code=%d resp=%+v", code, scalar)
	}
	code, structured := postJob(t, ts, `{"w":32,"l":4,"profit":{"type":"step","value":10,"deadline":40}}`)
	if code != 200 || structured.Decision != DecisionAdmitted {
		t.Fatalf("structured submit: code=%d resp=%+v", code, structured)
	}
	if *scalar.Plan != *structured.Plan {
		t.Fatalf("plans differ: scalar %+v structured %+v", scalar.Plan, structured.Plan)
	}
	if scalar.Commitment != structured.Commitment {
		t.Fatalf("commitments differ: %q vs %q", scalar.Commitment, structured.Commitment)
	}
}

// TestStructuredProfitShapes covers each profit-function kind end to end on
// the sequential endpoint, plus one via the batch endpoint.
func TestStructuredProfitShapes(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 4})
	for _, body := range []string{
		`{"w":32,"l":4,"profit":{"type":"step","value":10,"deadline":40}}`,
		`{"w":32,"l":4,"profit":{"type":"linear","value":10,"flat":5,"zeroAt":40}}`,
		`{"w":32,"l":4,"profit":{"type":"exp","value":10,"flat":4,"halfLife":8,"cutoff":40}}`,
		`{"w":32,"l":4,"profit":{"type":"piecewise","until":[10,40],"values":[8,3]}}`,
	} {
		code, jr := postJob(t, ts, body)
		if code != 200 {
			t.Fatalf("submit %s: code=%d", body, code)
		}
		if jr.Decision != DecisionAdmitted && jr.Decision != DecisionParked {
			t.Fatalf("submit %s: decision %q", body, jr.Decision)
		}
	}

	resp, err := http.Post(ts.URL+"/v1/jobs:batch", "application/json", strings.NewReader(
		`[{"w":16,"l":2,"profit":{"type":"linear","value":4,"flat":1,"zeroAt":30}},{"w":16,"l":2,"deadline":30,"profit":4}]`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Items) != 2 {
		t.Fatalf("batch items = %d", len(br.Items))
	}
	for i, it := range br.Items {
		if it.Status != 200 {
			t.Fatalf("batch item %d: %+v", i, it)
		}
	}
}

// TestStructuredProfitRejections pins the 400 surface of the v2 profit
// field: conflicts, unknown parameters, bad kinds, non-monotone shapes.
func TestStructuredProfitRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 4})
	for _, tc := range []struct{ name, body string }{
		{"deadline conflict", `{"w":16,"l":2,"deadline":30,"profit":{"type":"step","value":3,"deadline":40}}`},
		{"missing type", `{"w":16,"l":2,"profit":{"value":3,"deadline":40}}`},
		{"unknown kind", `{"w":16,"l":2,"profit":{"type":"cubic","value":3,"deadline":40}}`},
		{"unknown param", `{"w":16,"l":2,"profit":{"type":"step","value":3,"deadline":40,"bogus":1}}`},
		{"curve and structured profit", `{"w":16,"l":2,"curve":{"kind":"step","value":3,"deadline":40},"profit":{"type":"step","value":3,"deadline":40}}`},
		{"increasing piecewise", `{"w":16,"l":2,"profit":{"type":"piecewise","until":[10,40],"values":[3,8]}}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, er := postRaw(t, ts, tc.body, nil)
			if code != 400 {
				t.Fatalf("code = %d, want 400 (%+v)", code, er)
			}
			if er.Reason != reasonBadRequest {
				t.Fatalf("reason = %q, want %q", er.Reason, reasonBadRequest)
			}
		})
	}
}

// TestProfitValueRoundTrip pins the wire forms of workload.ProfitValue: a
// scalar marshals as a bare number (the v1 bytes), a structured value as its
// tagged object, and both round-trip.
func TestProfitValueRoundTrip(t *testing.T) {
	scalar, err := json.Marshal(ScalarProfit(2.5))
	if err != nil {
		t.Fatal(err)
	}
	if string(scalar) != "2.5" {
		t.Fatalf("scalar marshals as %s, want the bare number", scalar)
	}
	pv := workload.StructuredProfit(workload.ProfitSpec{Kind: "linear", Value: 10, Flat: 5, ZeroAt: 40})
	data, err := json.Marshal(pv)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"type":"linear","value":10,"flat":5,"zeroAt":40}`
	if string(data) != want {
		t.Fatalf("structured marshals as %s, want %s", data, want)
	}
	var back ProfitValue
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.IsScalar() || back.Spec.Kind != "linear" || back.Spec.ZeroAt != 40 {
		t.Fatalf("round-trip = %+v", back)
	}
}

// TestCommitmentOverridePerJob: per-job commitment overrides the daemon
// policy in both directions, and bad values 400 with the envelope.
func TestCommitmentOverridePerJob(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 4})

	code, jr := postJob(t, ts, `{"w":32,"l":4,"deadline":40,"profit":10,"commitment":"delta"}`)
	if code != 200 || jr.Decision != DecisionAdmitted {
		t.Fatalf("delta submit: code=%d resp=%+v", code, jr)
	}
	if jr.Commitment != CommitmentDelta {
		t.Fatalf("commitment = %q, want delta", jr.Commitment)
	}

	// The daemon default is on-admission; without a WAL that demotes to none.
	code, jr = postJob(t, ts, `{"w":32,"l":4,"deadline":40,"profit":10}`)
	if code != 200 || jr.Commitment != CommitmentNone {
		t.Fatalf("default submit: code=%d commitment=%q, want none", code, jr.Commitment)
	}

	code, er := postRaw(t, ts, `{"w":32,"l":4,"deadline":40,"profit":10,"commitment":"always"}`, nil)
	if code != 400 || er.Reason != reasonBadRequest {
		t.Fatalf("bad commitment: code=%d body=%+v", code, er)
	}
}

// TestCommitmentPolicyDaemonWide: -commitment=delta makes every admitted
// job's verdict carry the binding contract without any per-job field.
func TestCommitmentPolicyDaemonWide(t *testing.T) {
	_, ts := newTestServer(t, Config{M: 4, Commitment: CommitmentDelta})
	code, jr := postJob(t, ts, `{"w":32,"l":4,"deadline":40,"profit":10}`)
	if code != 200 || jr.Commitment != CommitmentDelta {
		t.Fatalf("code=%d commitment=%q, want delta", code, jr.Commitment)
	}
	// A per-job opt-out demotes the verdict back to none.
	code, jr = postJob(t, ts, `{"w":32,"l":4,"deadline":40,"profit":10,"commitment":"none"}`)
	if code != 200 || jr.Commitment != CommitmentNone {
		t.Fatalf("opt-out: code=%d commitment=%q, want none", code, jr.Commitment)
	}
}

// TestCommitmentOnArrivalRejectsInsteadOfParking: under the strictest policy
// a would-be-parked job is refused outright — parked means "maybe later",
// which on-arrival forbids.
func TestCommitmentOnArrivalRejectsInsteadOfParking(t *testing.T) {
	srv, ts := newTestServer(t, Config{M: 4, Commitment: CommitmentOnArrival})
	var parked, rejected int
	for i := 0; i < 6; i++ {
		code, jr := postJob(t, ts, `{"w":16,"l":2,"deadline":14,"profit":1}`)
		if code != 200 {
			t.Fatalf("submit %d: code=%d", i, code)
		}
		switch jr.Decision {
		case DecisionParked:
			parked++
		case DecisionRejected:
			rejected++
			if jr.Commitment != CommitmentNone {
				t.Fatalf("rejected job reports commitment %q", jr.Commitment)
			}
		}
	}
	if parked != 0 {
		t.Fatalf("%d jobs parked under on-arrival; refusal must be final", parked)
	}
	if rejected == 0 {
		t.Fatal("workload too light: nothing was refused")
	}
	_ = srv
}

// TestCommitmentUnsupportedScheduler: a binding policy on a scheduler that
// cannot promise completion must fail loudly — at construction for the
// daemon-wide flag, per request for the per-job override.
func TestCommitmentUnsupportedScheduler(t *testing.T) {
	if _, err := New(Config{M: 2, TickInterval: -1, Sched: "edf", Commitment: CommitmentDelta}); err == nil {
		t.Fatal("New accepted -commitment=delta on a scheduler without commitment support")
	}

	srv, err := New(Config{M: 2, TickInterval: -1, Sched: "edf"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()
	code, er := postRaw(t, ts, `{"w":4,"l":2,"deadline":30,"profit":1,"commitment":"delta"}`, nil)
	if code != 400 || er.Reason != reasonBadRequest {
		t.Fatalf("per-job delta on edf: code=%d body=%+v", code, er)
	}
	// Non-binding overrides are fine anywhere.
	if code, _ := postJob(t, ts, `{"w":4,"l":2,"deadline":30,"profit":1,"commitment":"none"}`); code != 200 {
		t.Fatalf("per-job none on edf: code=%d", code)
	}
}

// TestV2SpecsSurviveRecovery: structured profits and per-job commitment
// overrides round-trip through the WAL, the checkpoint, crash recovery, and
// idempotent retries, and the recovered drain still matches the offline
// replay of the durable directory bit for bit.
func TestV2SpecsSurviveRecovery(t *testing.T) {
	dir := t.TempDir()
	delta := func(cfg *Config) { cfg.Commitment = CommitmentDelta }
	srv, _ := newDurableServer(t, dir, delta)

	structured := JobSpec{W: 32, L: 4, Profit: workload.StructuredProfit(
		workload.ProfitSpec{Kind: "linear", Value: 10, Flat: 5, ZeroAt: 40})}
	optOut := JobSpec{W: 8, L: 2, Deadline: 25, Profit: ScalarProfit(3), Commitment: CommitmentNone}
	scalar := JobSpec{W: 6, L: 2, Deadline: 30, Profit: ScalarProfit(2)}

	repS := submitDirect(t, srv, structured, "key-structured")
	if repS.status != 200 || repS.resp.Decision != DecisionAdmitted || repS.resp.Commitment != CommitmentDelta {
		t.Fatalf("structured submit: %+v", repS)
	}
	srv.Advance(2)
	if rep := submitDirect(t, srv, optOut, "key-optout"); rep.status != 200 || rep.resp.Commitment != CommitmentNone {
		t.Fatalf("opt-out submit: %+v", rep)
	}
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	srv.Advance(4)
	if rep := submitDirect(t, srv, scalar, ""); rep.status != 200 || rep.resp.Commitment != CommitmentDelta {
		t.Fatalf("scalar submit: %+v", rep)
	}

	snap := snapshotDir(t, dir)
	srv.Drain()

	srv2, _ := newDurableServer(t, snap, delta)
	rec := srv2.Recovery()
	if rec == nil || !rec.Recovered || rec.Jobs != 3 {
		t.Fatalf("recovery info = %+v, want 3 recovered jobs", rec)
	}
	// Idempotent retries collapse onto the stored verdicts, commitment and
	// profit shape intact.
	retry := submitDirect(t, srv2, structured, "key-structured")
	if retry.status != 200 || !retry.resp.Replayed || retry.resp.Commitment != CommitmentDelta || retry.resp.ID != repS.resp.ID {
		t.Fatalf("structured retry: %+v", retry)
	}
	if retry := submitDirect(t, srv2, optOut, "key-optout"); !retry.resp.Replayed || retry.resp.Commitment != CommitmentNone {
		t.Fatalf("opt-out retry: %+v", retry)
	}

	res := srv2.Drain()
	replayed, err := ReplayDir(snap)
	if err != nil {
		t.Fatal(err)
	}
	a, b := *res, *replayed
	a.Engine, b.Engine = "", ""
	aj, _ := json.Marshal(&a)
	bj, _ := json.Marshal(&b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("recovered drain diverges from offline replay:\nrecovered: %s\nreplayed:  %s", aj, bj)
	}
}

// TestRecoveryRefusesCommitmentDowngrade: durable state written under a
// binding policy cannot be replayed into a weaker contract — neither by
// tampering a job's acknowledged commitment nor by restarting the daemon
// with a weaker -commitment.
func TestRecoveryRefusesCommitmentDowngrade(t *testing.T) {
	dir := t.TempDir()
	delta := func(cfg *Config) { cfg.Commitment = CommitmentDelta }
	srv, drain := newDurableServer(t, dir, delta)
	if rep := submitDirect(t, srv, JobSpec{W: 32, L: 4, Deadline: 40, Profit: ScalarProfit(10)}, ""); rep.resp.Commitment != CommitmentDelta {
		t.Fatalf("submit: %+v", rep)
	}
	snap := snapshotDir(t, dir)
	drain()

	// Restarting with a weaker policy is config drift: refused outright.
	if _, err := New(Config{M: 4, TickInterval: -1, WALDir: snap, CheckpointInterval: -1}); err == nil ||
		!strings.Contains(err.Error(), "refusing to recover") {
		t.Fatalf("weaker restart: err = %v, want refusal", err)
	}

	// Tampering the acknowledged commitment itself trips the replay check.
	path := filepath.Join(snap, walFileName)
	payloads, _, err := scanWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	for _, p := range payloads {
		if bytes.Contains(p, []byte(`"type":"job"`)) {
			p = bytes.Replace(p, []byte(`"commitment":"delta"`), []byte(`"commitment":"none"`), 1)
		}
		out.Write(frameRecord(p))
	}
	if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{M: 4, TickInterval: -1, WALDir: snap, CheckpointInterval: -1, Commitment: CommitmentDelta})
	if err == nil || !strings.Contains(err.Error(), "commitment violated") {
		t.Fatalf("tampered commitment: err = %v, want commitment violation", err)
	}
}
