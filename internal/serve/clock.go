package serve

import (
	"fmt"
	"time"

	"dagsched/internal/sim"
)

// The event-jump clock. The ticker engine loop wakes every TickInterval to
// advance its session even when nothing can happen — an idle daemon at the
// 10ms default burns 100 wakeups/sec per shard doing nothing. When a shard's
// (scheduler, policy, faults, probe) combination is event-safe under the
// sim.RunAuto routing rules, the session's evolution depends only on the
// sequence of (Arrive, AdvanceTo) operations and their clock values, never
// on how many wakeups delivered them. The jump loop exploits that: instead
// of a ticker it arms one timer to the earliest instant anything can happen
// — the session's next event (sim.Session.NextEventHint), the WAL's
// interval-policy flush deadline, or a due checkpoint — and bursts every
// deferred tick when it fires. An idle shard arms nothing and burns zero
// CPU; a busy one advances exactly when state can change. Every mailbox
// message catches the session up to the current wall tick first, so release
// stamps and read freshness match the ticker loop and the two disciplines
// stay bit-identical for the same submission sequence.

// ClockMode selects the engine clock discipline (Config.Clock).
type ClockMode string

const (
	// ClockAuto: event-jump when the session is event-safe, ticker
	// otherwise. The default.
	ClockAuto ClockMode = "auto"
	// ClockTicker: always the fixed wall-clock ticker.
	ClockTicker ClockMode = "ticker"
	// ClockJump: require event-jump; New refuses configurations that are
	// not event-safe rather than silently falling back.
	ClockJump ClockMode = "jump"
)

// ParseClockMode parses the -clock flag value.
func ParseClockMode(s string) (ClockMode, error) {
	switch ClockMode(s) {
	case ClockAuto, ClockTicker, ClockJump:
		return ClockMode(s), nil
	case "":
		return ClockAuto, nil
	}
	return "", fmt.Errorf("serve: unknown clock mode %q (want auto, ticker, or jump)", s)
}

// resolveClock decides whether a shard runs the event-jump loop. Only
// meaningful with the ticker enabled; a negative TickInterval has no clock
// at all (sessions advance on drain or explicit Advance).
func resolveClock(cfg Config, sess *sim.Session) (jump bool, err error) {
	switch cfg.Clock {
	case ClockTicker:
		return false, nil
	case ClockJump:
		if !sess.EventSafe() {
			return false, fmt.Errorf("serve: clock mode %q requires an event-safe scheduler configuration (sched %q is not)", ClockJump, cfg.Sched)
		}
		return true, nil
	default: // ClockAuto
		return sess.EventSafe(), nil
	}
}

// engineLoopJump is the event-jump variant of engineLoop: same mailbox
// handling, but the per-tick ticker is replaced by a timer armed to the next
// instant this shard has anything to do. Idle shards leave the timer unarmed.
func (sh *shard) engineLoopJump() {
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	armed := false
	rearm := func() {
		if armed {
			if !timer.Stop() {
				// Fired while we were handling a message; drain the stale
				// value so Reset arms cleanly. Non-blocking: under the
				// unbuffered timer semantics Stop already guarantees an
				// empty channel.
				select {
				case <-timer.C:
				default:
				}
			}
			armed = false
		}
		if sh.quiesced {
			return // the clock is done moving; finalize fast-forwards
		}
		if at, ok := sh.nextWake(); ok {
			timer.Reset(time.Until(at))
			armed = true
		}
	}
	rearm()
	for {
		select {
		case m := <-sh.reqs:
			if !sh.quiesced {
				// Catch up before touching observable state, so release
				// stamps and lookups are as fresh as the ticker loop's.
				sh.catchUp()
			}
			if sh.handle(m) {
				return
			}
			rearm()
		case <-timer.C:
			armed = false
			if sh.quiesced {
				continue
			}
			sh.jumpAdvance()
			rearm()
		}
	}
}

// nextWake computes the earliest wall-clock instant this shard must wake
// itself: the wall time of the tick after the session's next event hint
// (tick h is simulatable once the wall tick reaches h+1), the WAL's
// interval-policy flush deadline, or the next due checkpoint. ok=false
// means the shard may sleep until the next mailbox message.
func (sh *shard) nextWake() (time.Time, bool) {
	var (
		at time.Time
		ok bool
	)
	add := func(t time.Time) {
		if !ok || t.Before(at) {
			at, ok = t, true
		}
	}
	if hint, hok := sh.sess.NextEventHint(); hok {
		add(sh.srv.start.Add(time.Duration(hint+1) * sh.srv.cfg.TickInterval))
	}
	if sh.wal != nil {
		if d, dok := sh.wal.syncDeadline(); dok {
			add(d)
		}
		if sh.ckptDirty && sh.srv.cfg.CheckpointInterval >= 0 && sh.srv.degraded.Load() == nil {
			add(sh.lastCheckpoint.Add(sh.srv.cfg.CheckpointInterval))
		}
	}
	return at, ok
}

// jumpAdvance is the timer-fire body of the jump loop: burst the session up
// to the current wall tick (bit-identical to having ticked every interval),
// then run the same WAL flush and checkpoint cadence the ticker loop
// piggybacks on its ticks.
func (sh *shard) jumpAdvance() {
	before := sh.sess.Now()
	sh.catchUp()
	if sh.obsReg != nil {
		sh.obsReg.Inc("serve.clock_jumps", 1)
		sh.obsReg.Observe("serve.clock_jump_ticks", float64(sh.sess.Now()-before))
	}
	if sh.wal != nil {
		now := time.Now()
		if err := sh.wal.maybeSync(now); err != nil {
			sh.degrade("wal sync", err)
		}
		sh.maybeCheckpoint(now)
	}
}

// catchUp advances the session to the current wall tick.
func (sh *shard) catchUp() {
	sh.advance(int64(time.Since(sh.srv.start) / sh.srv.cfg.TickInterval))
}
