package experiments

import (
	"math"

	"dagsched/internal/core"
	"dagsched/internal/metrics"
	"dagsched/internal/rational"
	"dagsched/internal/sim"
	"dagsched/internal/workload"
)

// RunLEM verifies the analysis quantities of Section 3 empirically on live
// runs of scheduler S over condition-satisfying workloads:
//
//   - Lemma 1: n_i ≤ b²m for every job (reported as max n_i/(b²m));
//   - Lemma 2: every job is δ-good (reported as a fraction);
//   - Lemma 3: x_i·n_i ≤ a·W_i, up to the +L_i slack of integral allotments
//     (reported as max x_i·A_i/(a·W_i + L_i));
//   - Lemma 5: ||C|| ≥ ((1−b)/b − 1/((c−1)δ))·||R|| — the completed profit
//     of S against everything it ever started must beat the charging
//     margin (reported as min measured ||C||/||R|| next to the margin).
//
// These are theorems: violations would indicate implementation bugs, so the
// experiment doubles as a deep end-to-end correctness check.
func RunLEM(cfg Config) ([]*metrics.Table, error) {
	epsList := []float64{0.5, 1, 2}
	if cfg.Quick {
		epsList = []float64{1}
	}
	tb := metrics.NewTable("LEM: analysis quantities measured on live runs (m=8, 4x overload, tight slack)",
		"eps", "max n/(b²m)", "δ-good frac", "max xA/(aW+L)", "Lemma5 margin", "min ||C||/||R||")
	for _, eps := range epsList {
		par := core.MustParams(eps)
		b := par.B()
		margin := (1-b)/b - 1/((par.C-1)*par.Delta)

		maxN, maxXA := 0.0, 0.0
		goodCount, total := 0, 0
		minCR := math.Inf(1)
		for seed := 0; seed < cfg.seeds(); seed++ {
			inst, err := workload.Generate(workload.Config{
				Seed: int64(1300 + seed), N: cfg.jobs(), M: 8,
				Eps: eps, SlackSpread: 0, Load: 4, Scale: 2,
			})
			if err != nil {
				return nil, err
			}
			probe := core.NewSchedulerS(core.Options{Params: par})
			probe.Init(sim.Env{M: inst.M, Speed: 1})
			for _, j := range inst.Jobs {
				v := sim.JobView{ID: j.ID, Release: j.Release,
					W: j.Graph.TotalWork(), L: j.Graph.Span(), Profit: j.Profit}
				plan := probe.Plan(v)
				total++
				if plan.Good {
					goodCount++
				}
				if r := plan.NReal / (b * b * float64(inst.M)); r > maxN {
					maxN = r
				}
				w, l := float64(v.W), float64(v.L)
				if r := plan.X * float64(plan.Alloc) / (par.A()*w + l); r > maxXA {
					maxXA = r
				}
			}
			s := core.NewSchedulerS(core.Options{Params: par})
			res, err := sim.Run(sim.Config{M: inst.M, Speed: rational.One()}, inst.Jobs, s)
			if err != nil {
				return nil, err
			}
			_, startedPr := s.Started()
			if startedPr > 0 {
				if r := res.TotalProfit / startedPr; r < minCR {
					minCR = r
				}
			}
		}
		tb.AddRow(eps, maxN, float64(goodCount)/float64(total), maxXA, margin, minCR)
	}
	return []*metrics.Table{tb}, nil
}
