package experiments

import (
	"context"
	"math"

	"dagsched/internal/core"
	"dagsched/internal/metrics"
	"dagsched/internal/rational"
	"dagsched/internal/runner"
	"dagsched/internal/sim"
	"dagsched/internal/workload"
)

// lemSample is one (ε × seed) cell of the LEM grid: the per-instance
// extremes of the analysis quantities, folded across seeds during
// aggregation.
type lemSample struct {
	maxN, maxXA float64
	goodCount   int
	total       int
	cr          float64 // ||C||/||R||; +Inf when nothing was started
}

// RunLEM verifies the analysis quantities of Section 3 empirically on live
// runs of scheduler S over condition-satisfying workloads:
//
//   - Lemma 1: n_i ≤ b²m for every job (reported as max n_i/(b²m));
//   - Lemma 2: every job is δ-good (reported as a fraction);
//   - Lemma 3: x_i·n_i ≤ a·W_i, up to the +L_i slack of integral allotments
//     (reported as max x_i·A_i/(a·W_i + L_i));
//   - Lemma 5: ||C|| ≥ ((1−b)/b − 1/((c−1)δ))·||R|| — the completed profit
//     of S against everything it ever started must beat the charging
//     margin (reported as min measured ||C||/||R|| next to the margin).
//
// These are theorems: violations would indicate implementation bugs, so the
// experiment doubles as a deep end-to-end correctness check.
func RunLEM(cfg Config) ([]*metrics.Table, error) {
	epsList := []float64{0.5, 1, 2}
	if cfg.Quick {
		epsList = []float64{1}
	}
	cells, err := runGrid(cfg, runner.Grid[lemSample]{
		Name: "LEM",
		Axes: []runner.Axis{{Name: "eps", Size: len(epsList)}, seedAxis(cfg)},
		Cell: func(_ context.Context, c runner.Cell) (lemSample, error) {
			eps, seed := epsList[c.At(0)], c.At(1)
			par := core.MustParams(eps)
			b := par.B()
			inst, err := workload.Generate(workload.Config{
				Seed: int64(1300 + seed), N: cfg.jobs(), M: 8,
				Eps: eps, SlackSpread: 0, Load: 4, Scale: 2,
			})
			if err != nil {
				return lemSample{}, err
			}
			smp := lemSample{cr: math.Inf(1)}
			probe := core.NewSchedulerS(core.Options{Params: par})
			probe.Init(sim.Env{M: inst.M, Speed: 1})
			for _, j := range inst.Jobs {
				v := sim.JobView{ID: j.ID, Release: j.Release,
					W: j.Graph.TotalWork(), L: j.Graph.Span(), Profit: j.Profit}
				plan := probe.Plan(v)
				smp.total++
				if plan.Good {
					smp.goodCount++
				}
				if r := plan.NReal / (b * b * float64(inst.M)); r > smp.maxN {
					smp.maxN = r
				}
				w, l := float64(v.W), float64(v.L)
				if r := plan.X * float64(plan.Alloc) / (par.A()*w + l); r > smp.maxXA {
					smp.maxXA = r
				}
			}
			s := core.NewSchedulerS(core.Options{Params: par})
			res, err := runSim(cfg, sim.Config{M: inst.M, Speed: rational.One()}, inst.Jobs, s)
			if err != nil {
				return lemSample{}, err
			}
			_, startedPr := s.Started()
			if startedPr > 0 {
				smp.cr = res.TotalProfit / startedPr
			}
			return smp, nil
		},
	})
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("LEM: analysis quantities measured on live runs (m=8, 4x overload, tight slack)",
		"eps", "max n/(b²m)", "δ-good frac", "max xA/(aW+L)", "Lemma5 margin", "min ||C||/||R||")
	for ei, eps := range epsList {
		par := core.MustParams(eps)
		b := par.B()
		margin := (1-b)/b - 1/((par.C-1)*par.Delta)
		maxN, maxXA := 0.0, 0.0
		goodCount, total := 0, 0
		minCR := math.Inf(1)
		for seed := 0; seed < cfg.seeds(); seed++ {
			smp := cells[ei*cfg.seeds()+seed]
			if smp.maxN > maxN {
				maxN = smp.maxN
			}
			if smp.maxXA > maxXA {
				maxXA = smp.maxXA
			}
			goodCount += smp.goodCount
			total += smp.total
			if smp.cr < minCR {
				minCR = smp.cr
			}
		}
		tb.AddRow(eps, maxN, float64(goodCount)/float64(total), maxXA, margin, minCR)
	}
	return []*metrics.Table{tb}, nil
}
