package experiments

import (
	"testing"

	"dagsched/internal/baselines"
	"dagsched/internal/core"
	"dagsched/internal/rational"
	"dagsched/internal/sim"
	"dagsched/internal/workload"
)

// TestEventedEngineMatchesTickForRealSchedulers is the strong integration
// check of sim.RunEvented: the paper's scheduler (plain and
// work-conserving) and the event-stationary baselines must produce
// bit-identical results under both engines on generated workloads.
func TestEventedEngineMatchesTickForRealSchedulers(t *testing.T) {
	makers := map[string]func() sim.Scheduler{
		"S": func() sim.Scheduler { return freshS(1) },
		"S+wc": func() sim.Scheduler {
			return core.NewSchedulerS(core.Options{Params: core.MustParams(1), WorkConserving: true})
		},
		"edf":       func() sim.Scheduler { return &baselines.ListScheduler{Order: baselines.OrderEDF} },
		"fifo":      func() sim.Scheduler { return &baselines.ListScheduler{Order: baselines.OrderFIFO} },
		"hdf":       func() sim.Scheduler { return &baselines.ListScheduler{Order: baselines.OrderHDF} },
		"federated": func() sim.Scheduler { return &baselines.Federated{} },
	}
	for seed := int64(0); seed < 4; seed++ {
		inst, err := workload.Generate(workload.Config{
			Seed: 2000 + seed, N: 25, M: 6, Eps: 1, SlackSpread: 0.4, Load: 2, Scale: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, sp := range []rational.Rat{rational.One(), rational.New(3, 2)} {
			for name, mk := range makers {
				cfg := sim.Config{M: inst.M, Speed: sp}
				a, err := sim.Run(cfg, inst.Jobs, mk())
				if err != nil {
					t.Fatalf("%s tick: %v", name, err)
				}
				b, err := sim.RunEvented(cfg, inst.Jobs, mk())
				if err != nil {
					t.Fatalf("%s evented: %v", name, err)
				}
				if a.TotalProfit != b.TotalProfit || a.Completed != b.Completed ||
					a.BusyProcTicks != b.BusyProcTicks || a.Ticks != b.Ticks {
					t.Errorf("seed %d speed %v %s: tick (profit=%v done=%d busy=%d ticks=%d) vs evented (profit=%v done=%d busy=%d ticks=%d)",
						seed, sp, name,
						a.TotalProfit, a.Completed, a.BusyProcTicks, a.Ticks,
						b.TotalProfit, b.Completed, b.BusyProcTicks, b.Ticks)
				}
			}
		}
	}
}
