package experiments

import (
	"context"
	"math/rand"

	"dagsched/internal/baselines"
	"dagsched/internal/dag"
	"dagsched/internal/metrics"
	"dagsched/internal/realtime"
	"dagsched/internal/runner"
	"dagsched/internal/sim"
)

// rtSample is one (utilization × system-seed) cell: which schedulability
// tests accept the drawn system and which runtimes meet every deadline in
// simulation. valid is false when the draw produced no usable system.
type rtSample struct {
	valid                            bool
	fedOK, capOK, partOK, edfOK, sOK bool
}

// RunRT connects the paper to the real-time literature it cites: random
// periodic DAG task systems at increasing normalized utilization, comparing
// (a) the federated schedulability test and the capacity-augmentation-bound
// test (both analytical, sufficient) against (b) what actually meets every
// deadline in simulation under the partitioned federated runtime, global
// EDF, and the paper's scheduler S. The analytical tests are conservative;
// global EDF empirically schedules far past them — the gap those works
// study. S is not built for the all-deadlines objective (it maximizes
// throughput and may drop instances), which is precisely the contrast the
// paper's introduction draws.
func RunRT(cfg Config) ([]*metrics.Table, error) {
	utils := []float64{0.2, 0.4, 0.6, 0.8}
	if cfg.Quick {
		utils = []float64{0.3, 0.6}
	}
	systems := 2 * cfg.seeds()
	const m = 8
	cells, err := runGrid(cfg, runner.Grid[rtSample]{
		Name: "RT",
		Axes: []runner.Axis{{Name: "U/m", Size: len(utils)}, {Name: "system", Size: systems}},
		Cell: func(_ context.Context, c runner.Cell) (rtSample, error) {
			u, seed := utils[c.At(0)], c.At(1)
			sys, ok := randomSystem(rand.New(rand.NewSource(int64(1600+seed))), m, u)
			if !ok {
				return rtSample{}, nil
			}
			smp := rtSample{valid: true}
			alloc := realtime.Federated(sys)
			if alloc.Schedulable {
				smp.fedOK = true
				met, err := realtime.PartitionedDeadlinesMet(sys, 2*hyper(sys))
				if err != nil {
					return rtSample{}, err
				}
				smp.partOK = met
			}
			smp.capOK = realtime.CapacityBound2(sys)
			for i, mk := range []func() sim.Scheduler{
				func() sim.Scheduler { return &baselines.ListScheduler{Order: baselines.OrderEDF} },
				func() sim.Scheduler { return freshS(1) },
			} {
				met, err := realtime.AllDeadlinesMet(sys, 2*hyper(sys), mk())
				if err != nil {
					return rtSample{}, err
				}
				if i == 0 {
					smp.edfOK = met
				} else {
					smp.sOK = met
				}
			}
			return smp, nil
		},
	})
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("RT: fraction of random periodic DAG systems schedulable (m=8, 2 hyperperiods)",
		"U/m", "federated-test", "capacity-bound-2", "partitioned(sim)", "edf(sim)", "paper-S(sim)")
	count := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	for ui, u := range utils {
		var fedOK, capOK, partOK, edfOK, sOK, total float64
		for seed := 0; seed < systems; seed++ {
			smp := cells[ui*systems+seed]
			if !smp.valid {
				continue
			}
			total++
			fedOK += count(smp.fedOK)
			capOK += count(smp.capOK)
			partOK += count(smp.partOK)
			edfOK += count(smp.edfOK)
			sOK += count(smp.sOK)
		}
		if total == 0 {
			continue
		}
		tb.AddRow(u, fedOK/total, capOK/total, partOK/total, edfOK/total, sOK/total)
	}
	return []*metrics.Table{tb}, nil
}

func hyper(sys realtime.System) int64 {
	h, err := realtime.Hyperperiod(sys, 1<<20)
	if err != nil {
		return 96 // periods below are all divisors of 96
	}
	return h
}

// randomSystem draws tasks until the normalized utilization target is
// reached. Periods are divisors of 96 so hyperperiods stay tiny.
func randomSystem(rng *rand.Rand, m int, normU float64) (realtime.System, bool) {
	periods := []int64{12, 16, 24, 32, 48}
	target := normU * float64(m)
	var tasks []realtime.Task
	id := 0
	var u float64
	for u < target && id < 40 {
		period := periods[rng.Intn(len(periods))]
		var g *dag.DAG
		switch rng.Intn(3) {
		case 0:
			g = dag.Block(1+rng.Intn(10), 1+rng.Int63n(2))
		case 1:
			g = dag.ForkJoin(1, 2+rng.Intn(4), 1)
		default:
			g = dag.Chain(1+rng.Intn(5), 1)
		}
		d := period - rng.Int63n(period/4+1)
		t := realtime.Task{ID: id, Graph: g, Period: period, Deadline: d}
		if t.Span() > d {
			continue // span-infeasible draw; try again
		}
		if u+t.Utilization() > target+0.1 {
			break
		}
		tasks = append(tasks, t)
		u += t.Utilization()
		id++
	}
	sys := realtime.System{M: m, Tasks: tasks}
	return sys, len(tasks) > 0 && sys.Validate() == nil
}
