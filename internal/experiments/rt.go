package experiments

import (
	"math/rand"

	"dagsched/internal/baselines"
	"dagsched/internal/dag"
	"dagsched/internal/metrics"
	"dagsched/internal/realtime"
	"dagsched/internal/sim"
)

// RunRT connects the paper to the real-time literature it cites: random
// periodic DAG task systems at increasing normalized utilization, comparing
// (a) the federated schedulability test and the capacity-augmentation-bound
// test (both analytical, sufficient) against (b) what actually meets every
// deadline in simulation under the partitioned federated runtime, global
// EDF, and the paper's scheduler S. The analytical tests are conservative;
// global EDF empirically schedules far past them — the gap those works
// study. S is not built for the all-deadlines objective (it maximizes
// throughput and may drop instances), which is precisely the contrast the
// paper's introduction draws.
func RunRT(cfg Config) ([]*metrics.Table, error) {
	utils := []float64{0.2, 0.4, 0.6, 0.8}
	if cfg.Quick {
		utils = []float64{0.3, 0.6}
	}
	systems := 2 * cfg.seeds()
	const m = 8
	tb := metrics.NewTable("RT: fraction of random periodic DAG systems schedulable (m=8, 2 hyperperiods)",
		"U/m", "federated-test", "capacity-bound-2", "partitioned(sim)", "edf(sim)", "paper-S(sim)")
	for _, u := range utils {
		var fedOK, capOK, partOK, edfOK, sOK, total float64
		for seed := 0; seed < systems; seed++ {
			sys, ok := randomSystem(rand.New(rand.NewSource(int64(1600+seed))), m, u)
			if !ok {
				continue
			}
			total++
			alloc := realtime.Federated(sys)
			if alloc.Schedulable {
				fedOK++
				met, err := realtime.PartitionedDeadlinesMet(sys, 2*hyper(sys))
				if err != nil {
					return nil, err
				}
				if met {
					partOK++
				}
			}
			if realtime.CapacityBound2(sys) {
				capOK++
			}
			for i, mk := range []func() sim.Scheduler{
				func() sim.Scheduler { return &baselines.ListScheduler{Order: baselines.OrderEDF} },
				func() sim.Scheduler { return freshS(1) },
			} {
				met, err := realtime.AllDeadlinesMet(sys, 2*hyper(sys), mk())
				if err != nil {
					return nil, err
				}
				if met {
					if i == 0 {
						edfOK++
					} else {
						sOK++
					}
				}
			}
		}
		if total == 0 {
			continue
		}
		tb.AddRow(u, fedOK/total, capOK/total, partOK/total, edfOK/total, sOK/total)
	}
	return []*metrics.Table{tb}, nil
}

func hyper(sys realtime.System) int64 {
	h, err := realtime.Hyperperiod(sys, 1<<20)
	if err != nil {
		return 96 // periods below are all divisors of 96
	}
	return h
}

// randomSystem draws tasks until the normalized utilization target is
// reached. Periods are divisors of 96 so hyperperiods stay tiny.
func randomSystem(rng *rand.Rand, m int, normU float64) (realtime.System, bool) {
	periods := []int64{12, 16, 24, 32, 48}
	target := normU * float64(m)
	var tasks []realtime.Task
	id := 0
	var u float64
	for u < target && id < 40 {
		period := periods[rng.Intn(len(periods))]
		var g *dag.DAG
		switch rng.Intn(3) {
		case 0:
			g = dag.Block(1+rng.Intn(10), 1+rng.Int63n(2))
		case 1:
			g = dag.ForkJoin(1, 2+rng.Intn(4), 1)
		default:
			g = dag.Chain(1+rng.Intn(5), 1)
		}
		d := period - rng.Int63n(period/4+1)
		t := realtime.Task{ID: id, Graph: g, Period: period, Deadline: d}
		if t.Span() > d {
			continue // span-infeasible draw; try again
		}
		if u+t.Utilization() > target+0.1 {
			break
		}
		tasks = append(tasks, t)
		u += t.Utilization()
		id++
	}
	sys := realtime.System{M: m, Tasks: tasks}
	return sys, len(tasks) > 0 && sys.Validate() == nil
}
