package experiments

import (
	"context"

	"dagsched/internal/baselines"
	"dagsched/internal/core"
	"dagsched/internal/metrics"
	"dagsched/internal/rational"
	"dagsched/internal/runner"
	"dagsched/internal/sim"
	"dagsched/internal/workload"
)

// RunEXT evaluates the paper's stated future-work directions:
//
//  1. A work-conserving variant of S ("S+wc") that hands leftover
//     processors to admitted jobs in density order, with admission
//     unchanged. It recovers most of the gap to the greedy heuristics on
//     stochastic workloads while keeping the admission structure (and thus
//     the adversarial robustness) intact.
//  2. A fully non-clairvoyant variant ("NC", the paper's third open
//     question) that runs S's machinery on doubling work guesses — the
//     measured gap to S is the empirical price of losing the (W, L)
//     knowledge.
//  3. Preemption behaviour: completed jobs per preemption for each
//     scheduler — S barely preempts (a job keeps its allotment until it
//     finishes or expires), whereas EDF/LLF reshuffle constantly.
func RunEXT(cfg Config) ([]*metrics.Table, error) {
	loads := []float64{1, 2, 4}
	if cfg.Quick {
		loads = []float64{2}
	}
	makers := []func() sim.Scheduler{
		func() sim.Scheduler {
			return core.NewSchedulerS(core.Options{Params: core.MustParams(1)})
		},
		func() sim.Scheduler {
			return core.NewSchedulerS(core.Options{Params: core.MustParams(1), WorkConserving: true})
		},
		func() sim.Scheduler {
			return core.NewSchedulerNC(core.Options{Params: core.MustParams(1)})
		},
		func() sim.Scheduler { return &baselines.ListScheduler{Order: baselines.OrderEDF} },
		func() sim.Scheduler { return &baselines.ListScheduler{Order: baselines.OrderHDF} },
	}
	// One grid cell per (load × seed): the OPT bound is computed once and
	// every variant runs on the shared instance.
	type extSample struct {
		bound    float64
		profits  []float64 // profit/UB per maker
		preempts []float64 // preemptions per completed job per maker (NaN = none completed)
	}
	cells, err := runGrid(cfg, runner.Grid[extSample]{
		Name: "EXT",
		Axes: []runner.Axis{{Name: "load", Size: len(loads)}, seedAxis(cfg)},
		Cell: func(_ context.Context, c runner.Cell) (extSample, error) {
			load, seed := loads[c.At(0)], c.At(1)
			inst, err := workload.Generate(workload.Config{
				Seed: int64(1100 + seed), N: cfg.jobs(), M: 8,
				Eps: 1, SlackSpread: 0.5, Load: load, Scale: 2,
			})
			if err != nil {
				return extSample{}, err
			}
			bound := upperBound(inst)
			if bound == 0 {
				return extSample{}, nil
			}
			smp := extSample{bound: bound}
			for _, mk := range makers {
				res, err := runSim(cfg, sim.Config{M: inst.M, Speed: rational.One()}, inst.Jobs, mk())
				if err != nil {
					return extSample{}, err
				}
				smp.profits = append(smp.profits, res.TotalProfit/bound)
				var pre int64
				for _, js := range res.Jobs {
					pre += js.Preemptions
				}
				if res.Completed > 0 {
					smp.preempts = append(smp.preempts, float64(pre)/float64(res.Completed))
				} else {
					smp.preempts = append(smp.preempts, -1) // sentinel: no completions
				}
			}
			return smp, nil
		},
	})
	if err != nil {
		return nil, err
	}
	profitTb := metrics.NewTable("EXT1: future-work variants (profit/UB, m=8)",
		"load", "S", "S+wc", "NC", "edf", "hdf")
	preemptTb := metrics.NewTable("EXT2: preemptions per completed job (m=8)",
		"load", "S", "S+wc", "NC", "edf", "hdf")
	for li, load := range loads {
		profits := make([]metrics.Series, len(makers))
		preempts := make([]metrics.Series, len(makers))
		for seed := 0; seed < cfg.seeds(); seed++ {
			smp := cells[li*cfg.seeds()+seed]
			if smp.bound == 0 {
				continue
			}
			for i := range makers {
				profits[i].Add(smp.profits[i])
				if smp.preempts[i] >= 0 {
					preempts[i].Add(smp.preempts[i])
				}
			}
		}
		profitRow := []any{load}
		preemptRow := []any{load}
		for i := range makers {
			profitRow = append(profitRow, profits[i].Mean())
			preemptRow = append(preemptRow, preempts[i].Mean())
		}
		profitTb.AddRow(profitRow...)
		preemptTb.AddRow(preemptRow...)
	}
	return []*metrics.Table{profitTb, preemptTb}, nil
}
