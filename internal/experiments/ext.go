package experiments

import (
	"dagsched/internal/baselines"
	"dagsched/internal/core"
	"dagsched/internal/metrics"
	"dagsched/internal/rational"
	"dagsched/internal/sim"
	"dagsched/internal/workload"
)

// RunEXT evaluates the paper's stated future-work directions:
//
//  1. A work-conserving variant of S ("S+wc") that hands leftover
//     processors to admitted jobs in density order, with admission
//     unchanged. It recovers most of the gap to the greedy heuristics on
//     stochastic workloads while keeping the admission structure (and thus
//     the adversarial robustness) intact.
//  2. A fully non-clairvoyant variant ("NC", the paper's third open
//     question) that runs S's machinery on doubling work guesses — the
//     measured gap to S is the empirical price of losing the (W, L)
//     knowledge.
//  3. Preemption behaviour: completed jobs per preemption for each
//     scheduler — S barely preempts (a job keeps its allotment until it
//     finishes or expires), whereas EDF/LLF reshuffle constantly.
func RunEXT(cfg Config) ([]*metrics.Table, error) {
	loads := []float64{1, 2, 4}
	if cfg.Quick {
		loads = []float64{2}
	}
	mkS := func() sim.Scheduler {
		return core.NewSchedulerS(core.Options{Params: core.MustParams(1)})
	}
	mkSWC := func() sim.Scheduler {
		return core.NewSchedulerS(core.Options{Params: core.MustParams(1), WorkConserving: true})
	}
	mkNC := func() sim.Scheduler {
		return core.NewSchedulerNC(core.Options{Params: core.MustParams(1)})
	}
	mkEDF := func() sim.Scheduler { return &baselines.ListScheduler{Order: baselines.OrderEDF} }
	mkHDF := func() sim.Scheduler { return &baselines.ListScheduler{Order: baselines.OrderHDF} }

	profitTb := metrics.NewTable("EXT1: future-work variants (profit/UB, m=8)",
		"load", "S", "S+wc", "NC", "edf", "hdf")
	preemptTb := metrics.NewTable("EXT2: preemptions per completed job (m=8)",
		"load", "S", "S+wc", "NC", "edf", "hdf")
	makers := []func() sim.Scheduler{mkS, mkSWC, mkNC, mkEDF, mkHDF}
	for _, load := range loads {
		profits := make([]metrics.Series, len(makers))
		preempts := make([]metrics.Series, len(makers))
		for seed := 0; seed < cfg.seeds(); seed++ {
			inst, err := workload.Generate(workload.Config{
				Seed: int64(1100 + seed), N: cfg.jobs(), M: 8,
				Eps: 1, SlackSpread: 0.5, Load: load, Scale: 2,
			})
			if err != nil {
				return nil, err
			}
			bound := upperBound(inst)
			if bound == 0 {
				continue
			}
			for i, mk := range makers {
				res, err := sim.Run(sim.Config{M: inst.M, Speed: rational.One()}, inst.Jobs, mk())
				if err != nil {
					return nil, err
				}
				profits[i].Add(res.TotalProfit / bound)
				var pre int64
				for _, js := range res.Jobs {
					pre += js.Preemptions
				}
				if res.Completed > 0 {
					preempts[i].Add(float64(pre) / float64(res.Completed))
				}
			}
		}
		profitRow := []any{load}
		preemptRow := []any{load}
		for i := range makers {
			profitRow = append(profitRow, profits[i].Mean())
			preemptRow = append(preemptRow, preempts[i].Mean())
		}
		profitTb.AddRow(profitRow...)
		preemptTb.AddRow(preemptRow...)
	}
	return []*metrics.Table{profitTb, preemptTb}, nil
}
