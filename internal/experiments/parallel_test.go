package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"

	"dagsched/internal/metrics"
)

// renderAll runs every experiment under cfg and concatenates the rendered
// tables in suite order.
func renderAll(t *testing.T, cfg Config) string {
	t.Helper()
	var b strings.Builder
	for _, e := range All() {
		tables, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		for _, tb := range tables {
			b.WriteString(tb.Render())
		}
	}
	return b.String()
}

// TestSuiteDeterministicUnderParallelism is the tentpole guarantee: the
// whole suite rendered with one worker is byte-equal to the suite rendered
// with many workers. Cells land by coordinates, never by completion order.
func TestSuiteDeterministicUnderParallelism(t *testing.T) {
	serial := renderAll(t, Config{Quick: true, Seeds: 2, Parallel: 1})
	parallel := renderAll(t, Config{Quick: true, Seeds: 2, Parallel: 8})
	if serial != parallel {
		t.Fatalf("parallel suite output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestExperimentCancellation checks that a canceled context aborts a grid
// mid-run with context.Canceled instead of completing or hanging.
func TestExperimentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := Config{Quick: true, Seeds: 2, Parallel: 2, Ctx: ctx}
	// Cancel as soon as the first cell completes: later cells must not all run.
	cfg.Progress = func(grid string, done, total int) {
		if done == 1 {
			cancel()
		}
	}
	_, err := RunBASE(cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunBASE under canceled context: err = %v, want context.Canceled", err)
	}
}

// TestExperimentPreCanceled checks the pre-canceled fast path for every
// experiment: no tables, context error surfaced.
func TestExperimentPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, e := range All() {
		tables, err := e.Run(Config{Quick: true, Seeds: 2, Ctx: ctx})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", e.ID, err)
		}
		if tables != nil {
			t.Errorf("%s: returned tables despite canceled context", e.ID)
		}
	}
}

// TestProgressReportsGridName checks the Config → runner progress plumbing:
// updates carry the experiment's grid name and reach full completion.
func TestProgressReportsGridName(t *testing.T) {
	var last struct {
		grid        string
		done, total int
	}
	calls := 0
	cfg := Config{Quick: true, Seeds: 2, Parallel: 3}
	cfg.Progress = func(grid string, done, total int) {
		calls++
		last.grid, last.done, last.total = grid, done, total
	}
	if _, err := RunFIG1(cfg); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress callback never invoked")
	}
	if last.grid != "FIG1" {
		t.Errorf("progress grid = %q, want FIG1", last.grid)
	}
	if last.done != last.total || last.done == 0 {
		t.Errorf("final progress %d/%d, want full completion", last.done, last.total)
	}
}

// TestABL4Deterministic pins the ABL4 redesign: the substrate-cost table is
// a pure function of its inputs (entries examined, not wall-clock), so two
// runs render identically and the naive column equals the item count.
func TestABL4Deterministic(t *testing.T) {
	run := func() *metrics.Table {
		tables, err := RunABL4(Config{Quick: true, Seeds: 2})
		if err != nil {
			t.Fatal(err)
		}
		return tables[0]
	}
	a, b := run(), run()
	if a.Render() != b.Render() {
		t.Errorf("ABL4 output not reproducible:\n%s\nvs\n%s", a.Render(), b.Render())
	}
	for _, row := range a.Rows() {
		// The naive scan examines every stored item exactly once per query.
		if row[0] != row[1] {
			t.Errorf("naive visits/query = %s, want %s (the item count)", row[1], row[0])
		}
	}
}
