package experiments

import (
	"context"

	"dagsched/internal/core"
	"dagsched/internal/faults"
	"dagsched/internal/metrics"
	"dagsched/internal/rational"
	"dagsched/internal/runner"
	"dagsched/internal/sim"
	"dagsched/internal/workload"
)

// RunCMT measures the throughput price of commitment: the same scheduler S
// run under each commitment policy on the same instances.
//
//   - none / on-admission make no scheduling promise, so they are the
//     baseline (on-admission differs only in serving-tier durability and is
//     bit-identical to none inside the simulator — the table shows the zero
//     price directly).
//   - delta commits a job once admitted to run: a committed job whose
//     deadline slips away is still driven to completion, so its processors
//     earn nothing past the deadline ("past-due" completions).
//   - on-arrival makes the arrival verdict final: the parked pool P is gone,
//     so jobs that would have had a second chance are refused outright.
//
// CMT1 reports completed profit against the shared OPT upper bound; CMT2
// reports what each promise costs — completions per run, past-due (zero
// profit) completions under delta, and the expired count under on-arrival,
// which folds in every up-front refusal.
//
// Fault-free, δ-commitment prices at exactly zero: S's admission test is the
// proof that an admitted job finishes on time, so the promise is never
// called. CMT3 re-runs none vs delta under crash/repair faults, where
// crashes push committed jobs past their deadlines and the scheduler must
// burn capacity finishing them for nothing — the measured price of honoring
// the promise under disturbance.
func RunCMT(cfg Config) ([]*metrics.Table, error) {
	loads := []float64{1, 1.5, 2, 4}
	if cfg.Quick {
		loads = []float64{1.5}
	}
	policies := []sim.Commitment{
		sim.CommitmentNone,
		sim.CommitmentOnAdmission,
		sim.CommitmentDelta,
		sim.CommitmentOnArrival,
	}
	makeS := func(p sim.Commitment) sim.Scheduler {
		return core.NewSchedulerS(core.Options{Params: core.MustParams(1), Commitment: p})
	}
	type cmtSample struct {
		bound    float64
		profits  []float64 // profit/UB per policy
		complete []float64 // completed jobs per policy
		pastDue  []float64 // completions with zero profit per policy
		expired  []float64 // expirations (incl. on-arrival refusals) per policy

		// The faulty panel: none vs delta under crash/repair injection.
		faultProfits [2]float64
		faultPastDue [2]float64
	}
	cells, err := runGrid(cfg, runner.Grid[cmtSample]{
		Name: "CMT",
		Axes: []runner.Axis{{Name: "load", Size: len(loads)}, seedAxis(cfg)},
		Cell: func(_ context.Context, c runner.Cell) (cmtSample, error) {
			load, seed := loads[c.At(0)], c.At(1)
			inst, err := workload.Generate(workload.Config{
				Seed: int64(2300 + seed), N: cfg.jobs(), M: 8,
				Eps: 1, SlackSpread: 0.5, Load: load, Scale: 2,
			})
			if err != nil {
				return cmtSample{}, err
			}
			bound := upperBound(inst)
			if bound == 0 {
				return cmtSample{}, nil
			}
			smp := cmtSample{bound: bound}
			for _, p := range policies {
				res, err := runSim(cfg, sim.Config{M: inst.M, Speed: rational.One()}, inst.Jobs, makeS(p))
				if err != nil {
					return cmtSample{}, err
				}
				var pastDue int
				for _, js := range res.Jobs {
					if js.Completed && js.Profit == 0 {
						pastDue++
					}
				}
				smp.profits = append(smp.profits, res.TotalProfit/bound)
				smp.complete = append(smp.complete, float64(res.Completed))
				smp.pastDue = append(smp.pastDue, float64(pastDue))
				smp.expired = append(smp.expired, float64(res.Expired))
			}
			for i, p := range []sim.Commitment{sim.CommitmentNone, sim.CommitmentDelta} {
				res, err := runSim(cfg, sim.Config{
					M: inst.M, Speed: rational.One(),
					Faults: &faults.Config{Seed: int64(2300 + seed), MTBF: 40, MTTR: 15},
				}, inst.Jobs, makeS(p))
				if err != nil {
					return cmtSample{}, err
				}
				var pastDue int
				for _, js := range res.Jobs {
					if js.Completed && js.Profit == 0 {
						pastDue++
					}
				}
				smp.faultProfits[i] = res.TotalProfit / bound
				smp.faultPastDue[i] = float64(pastDue)
			}
			return smp, nil
		},
	})
	if err != nil {
		return nil, err
	}
	profitTb := metrics.NewTable("CMT1: price of commitment (profit/UB, m=8)",
		"load", "none", "on-admission", "delta", "on-arrival")
	costTb := metrics.NewTable("CMT2: what the promise costs (per run, m=8)",
		"load", "completed none", "completed delta", "past-due delta", "completed on-arr", "expired on-arr")
	faultTb := metrics.NewTable("CMT3: delta under faults (MTBF 40, MTTR 15, m=8)",
		"load", "none", "delta", "past-due delta")
	for li, load := range loads {
		profits := make([]metrics.Series, len(policies))
		complete := make([]metrics.Series, len(policies))
		pastDue := make([]metrics.Series, len(policies))
		expired := make([]metrics.Series, len(policies))
		var faultNone, faultDelta, faultDue metrics.Series
		for seed := 0; seed < cfg.seeds(); seed++ {
			smp := cells[li*cfg.seeds()+seed]
			if smp.bound == 0 {
				continue
			}
			for i := range policies {
				profits[i].Add(smp.profits[i])
				complete[i].Add(smp.complete[i])
				pastDue[i].Add(smp.pastDue[i])
				expired[i].Add(smp.expired[i])
			}
			faultNone.Add(smp.faultProfits[0])
			faultDelta.Add(smp.faultProfits[1])
			faultDue.Add(smp.faultPastDue[1])
		}
		profitRow := []any{load}
		for i := range policies {
			profitRow = append(profitRow, profits[i].Mean())
		}
		profitTb.AddRow(profitRow...)
		costTb.AddRow(load,
			complete[0].Mean(), complete[2].Mean(), pastDue[2].Mean(),
			complete[3].Mean(), expired[3].Mean())
		faultTb.AddRow(load, faultNone.Mean(), faultDelta.Mean(), faultDue.Mean())
	}
	return []*metrics.Table{profitTb, costTb, faultTb}, nil
}
