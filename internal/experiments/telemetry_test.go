package experiments

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"dagsched/internal/baselines"
	"dagsched/internal/core"
	"dagsched/internal/rational"
	"dagsched/internal/runner"
	"dagsched/internal/sim"
	"dagsched/internal/telemetry"
	"dagsched/internal/workload"
)

// eventStream runs sched on inst with a fresh recorder and returns the
// encoded decision-event stream.
func eventStream(t *testing.T, inst *workload.Instance, sched sim.Scheduler, evented bool) []byte {
	t.Helper()
	rec := telemetry.NewRecorder()
	telemetry.Attach(sched, rec)
	cfg := sim.Config{M: inst.M, Speed: rational.One(), Telemetry: rec}
	var err error
	if evented {
		_, err = sim.RunEvented(cfg, inst.Jobs, sched)
	} else {
		_, err = sim.Run(cfg, inst.Jobs, sched)
	}
	if err != nil {
		t.Fatal(err)
	}
	return telemetry.EventsJSONL(rec.Events())
}

func telemetryInstance(t *testing.T, seed int64) *workload.Instance {
	t.Helper()
	inst, err := workload.Generate(workload.Config{
		Seed: seed, N: 50, M: 8, Eps: 1, SlackSpread: 0.4, Load: 2.5, Scale: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestEventStreamRepeatDeterministic re-runs the same instance and demands a
// byte-identical stream: no map-order, timer, or pointer artifacts leak into
// the telemetry.
func TestEventStreamRepeatDeterministic(t *testing.T) {
	inst := telemetryInstance(t, 21)
	a := eventStream(t, inst, core.NewSchedulerS(core.Options{Params: core.MustParams(1)}), false)
	b := eventStream(t, inst, core.NewSchedulerS(core.Options{Params: core.MustParams(1)}), false)
	if !bytes.Equal(a, b) {
		t.Error("two runs of the same instance produced different event streams")
	}
}

// TestEventStreamCrossEngineIdentical is the engine-equivalence contract
// extended to telemetry: for event-stationary schedulers the tick engine and
// the evented engine must emit byte-identical decision streams.
func TestEventStreamCrossEngineIdentical(t *testing.T) {
	inst := telemetryInstance(t, 22)
	mks := map[string]func() sim.Scheduler{
		"paper-S":   func() sim.Scheduler { return core.NewSchedulerS(core.Options{Params: core.MustParams(1)}) },
		"edf":       func() sim.Scheduler { return &baselines.ListScheduler{Order: baselines.OrderEDF} },
		"federated": func() sim.Scheduler { return &baselines.Federated{} },
	}
	for name, mk := range mks {
		tick := eventStream(t, inst, mk(), false)
		evented := eventStream(t, inst, mk(), true)
		if !bytes.Equal(tick, evented) {
			t.Errorf("%s: tick and evented engines emitted different event streams", name)
		}
	}
}

// TestEventStreamIdenticalAcrossWorkers runs one instrumented simulation per
// seed through runner.Map at 1 and 8 workers and compares the streams cell by
// cell: scheduling cells onto goroutines must not reorder or alter any run's
// telemetry.
func TestEventStreamIdenticalAcrossWorkers(t *testing.T) {
	seeds := []int64{31, 32, 33, 34, 35, 36}
	collect := func(workers int) [][]byte {
		out, err := runner.Map(context.Background(), "telemetry", seeds,
			runner.Options{Parallel: workers},
			func(_ context.Context, seed int64, _ int) ([]byte, error) {
				inst, err := workload.Generate(workload.Config{
					Seed: seed, N: 40, M: 8, Eps: 1, SlackSpread: 0.4, Load: 2, Scale: 2,
				})
				if err != nil {
					return nil, err
				}
				rec := telemetry.NewRecorder()
				sched := core.NewSchedulerS(core.Options{Params: core.MustParams(1)})
				telemetry.Attach(sched, rec)
				if _, err := sim.Run(sim.Config{M: inst.M, Telemetry: rec}, inst.Jobs, sched); err != nil {
					return nil, err
				}
				return telemetry.EventsJSONL(rec.Events()), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := collect(1)
	parallel := collect(8)
	for i := range seeds {
		if !bytes.Equal(serial[i], parallel[i]) {
			t.Errorf("seed %d: event stream differs between 1 and 8 workers", seeds[i])
		}
	}
}

// TestTelemetrySinkIndependentOfParallel folds the per-run registries of a
// whole experiment grid at two worker counts; the commutative merge must make
// the aggregates identical.
func TestTelemetrySinkIndependentOfParallel(t *testing.T) {
	run := func(workers int) map[string]int64 {
		sink := telemetry.NewSink()
		cfg := Config{Quick: true, Seeds: 2, Parallel: workers, Telemetry: sink}
		if _, err := RunADV(cfg); err != nil {
			t.Fatal(err)
		}
		return sink.Counters()
	}
	serial := run(1)
	parallel := run(8)
	if len(serial) == 0 {
		t.Fatal("instrumented grid recorded no counters")
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("telemetry aggregates differ across worker counts:\n1 worker: %v\n8 workers: %v", serial, parallel)
	}
}
