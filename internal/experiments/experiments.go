// Package experiments defines the reproduction suite: one experiment per
// paper artifact (Figures 1–2, Theorems 1–3, Corollaries 1–2) plus the
// baseline comparison and the ablations called out in DESIGN.md. Both
// cmd/spaa-bench and the root bench_test.go run these; EXPERIMENTS.md
// records the resulting tables next to the paper's claims.
package experiments

import (
	"context"
	"fmt"

	"dagsched/internal/baselines"
	"dagsched/internal/core"
	"dagsched/internal/dag"
	"dagsched/internal/metrics"
	"dagsched/internal/opt"
	"dagsched/internal/rational"
	"dagsched/internal/runner"
	"dagsched/internal/sim"
	"dagsched/internal/telemetry"
	"dagsched/internal/workload"
)

// Config tunes suite cost and execution. Quick shrinks instances and seed
// counts so the whole suite runs in seconds (used by tests); the default
// sizes are for the recorded experiment tables. Every experiment executes
// its (workload × scheduler × seed) grid through internal/runner, so the
// table output is bit-identical for any Parallel value.
type Config struct {
	Quick bool
	Seeds int // number of workload seeds per cell (0 → 8, or 2 in Quick mode)

	// Parallel is the runner worker count (0 → GOMAXPROCS). Results do not
	// depend on it.
	Parallel int
	// Ctx cancels an experiment mid-grid; nil means context.Background().
	Ctx context.Context
	// Progress, if set, receives per-grid cell-completion updates.
	Progress func(grid string, done, total int)
	// Telemetry, if set, aggregates every simulation run's metric registry
	// (event counters, latency histograms, engine totals) into one sink.
	// Registry merging is commutative, so the aggregate is independent of
	// Parallel. Nil (the default) keeps every run fully uninstrumented.
	Telemetry *telemetry.Sink
	// Routes, if set, counts which engine sim.RunAuto picked for each
	// simulation in the suite. Counting is atomic, so one instance can span a
	// parallel grid; routing itself never depends on Parallel.
	Routes *sim.RouteStats
}

// ctx returns the run context.
func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// opts builds the runner options for one grid.
func (c Config) opts(grid string) runner.Options {
	o := runner.Options{Parallel: c.Parallel}
	if c.Progress != nil {
		p := c.Progress
		o.Progress = func(done, total int) { p(grid, done, total) }
	}
	return o
}

// runGrid executes g under the configuration's context, worker count, and
// progress callback. Samples come back indexed by cell coordinates, so
// aggregation below the call is a deterministic serial fold.
func runGrid[T any](cfg Config, g runner.Grid[T]) ([]T, error) {
	return runner.Run(cfg.ctx(), g, cfg.opts(g.Name))
}

func (c Config) seeds() int {
	if c.Seeds > 0 {
		return c.Seeds
	}
	if c.Quick {
		return 2
	}
	return 8
}

func (c Config) jobs() int {
	if c.Quick {
		return 16
	}
	return 36
}

// Experiment is one reproducible unit of the suite.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) ([]*metrics.Table, error)
}

// All returns the suite in presentation order.
func All() []Experiment {
	return []Experiment{
		{ID: "FIG1", Title: "Figure 1 / Theorem 1 separation: unlucky vs clairvoyant completion", Run: RunFIG1},
		{ID: "FIG2", Title: "Figure 2: even clairvoyant needs (W−L)/m + L as granularity shrinks", Run: RunFIG2},
		{ID: "THM1", Title: "Theorem 1: throughput jumps at speed 2−1/m on Figure-1 jobs", Run: RunTHM1},
		{ID: "THM2", Title: "Theorem 2: S is O(1)-competitive under the (1+ε) slack condition", Run: RunTHM2},
		{ID: "COR1", Title: "Corollary 1: (2+ε)-speed suffices on unrestricted deadlines", Run: RunCOR1},
		{ID: "COR2", Title: "Corollary 2: (1+ε)-speed suffices for reasonable deadlines", Run: RunCOR2},
		{ID: "THM3", Title: "Theorem 3: general-profit scheduler under decaying profits", Run: RunTHM3},
		{ID: "BASE", Title: "Baselines: S vs EDF/LLF/FIFO/HDF/federated across load", Run: RunBASE},
		{ID: "ADV", Title: "Adversarial stream: where admission control matters", Run: RunADV},
		{ID: "ABL1", Title: "Ablation: admission band condition (2) removed", Run: RunABL1},
		{ID: "ABL2", Title: "Ablation: allotment n_i forced to 1 or m", Run: RunABL2},
		{ID: "ABL3", Title: "Ablation: δ-fresh admission test removed", Run: RunABL3},
		{ID: "ABL4", Title: "Ablation: band-index substrate (naive scan vs treap)", Run: RunABL4},
		{ID: "OPTQ", Title: "OPT bound quality: exact vs LP vs knapsack vs trivial", Run: RunOPTQ},
		{ID: "EXT", Title: "Extensions: work-conserving S and preemption counts (paper future work)", Run: RunEXT},
		{ID: "LEM", Title: "Lemma verification: analysis quantities on live runs", Run: RunLEM},
		{ID: "HPCW", Title: "HPC kernel workloads: Cholesky/wavefront/FFT/reduction mixes", Run: RunHPCW},
		{ID: "MINE", Title: "Adversary miner: hill-climbed competitive ratios per scheduler", Run: RunMINE},
		{ID: "RT", Title: "Real-time bridge: schedulability tests vs simulated deadlines", Run: RunRT},
		{ID: "FAULTS", Title: "Fault injection: degradation curves and resilient variants", Run: RunFAULTS},
		{ID: "CMT", Title: "Commitment: the throughput price of binding admission promises", Run: RunCMT},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment IDs in order.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	return out
}

// runSim executes one simulation on whichever engine sim.RunAuto selects for
// the (scheduler, policy, faults, probe) combination; results are
// bit-identical either way. With cfg.Telemetry set, the run is instrumented
// (scheduler included) and its registry folded into the sink; otherwise
// simCfg passes through untouched.
func runSim(cfg Config, simCfg sim.Config, jobs []*sim.Job, sched sim.Scheduler) (*sim.Result, error) {
	var rec *telemetry.Recorder
	if cfg.Telemetry != nil {
		rec = telemetry.NewRecorder()
		telemetry.Attach(sched, rec)
		simCfg.Telemetry = rec
	}
	if cfg.Routes != nil {
		simCfg.OnRoute = cfg.Routes.Count
	}
	res, err := sim.RunAuto(simCfg, jobs, sched)
	if err != nil {
		return nil, err
	}
	if rec != nil {
		cfg.Telemetry.Fold(rec.Registry())
	}
	return res, nil
}

// runProfit executes one scheduler on an instance and returns earned profit.
func runProfit(cfg Config, inst *workload.Instance, sched sim.Scheduler, speed rational.Rat, pol dag.PickPolicy) (float64, error) {
	res, err := runSim(cfg, sim.Config{M: inst.M, Speed: speed, Policy: pol}, inst.Jobs, sched)
	if err != nil {
		return 0, err
	}
	return res.TotalProfit, nil
}

// upperBound returns the OPT upper bound for an instance at unit speed.
func upperBound(inst *workload.Instance) float64 {
	return opt.Bound(opt.TasksFromJobs(inst.Jobs, inst.M, 1), inst.M, 1)
}

// ratioCell formats "mean ± ci" for a series.
func ratioCell(s *metrics.Series) string {
	return fmt.Sprintf("%s ± %s", metrics.FormatFloat(s.Mean()), metrics.FormatFloat(s.CI95()))
}

// freshS builds a new paper scheduler for ε.
func freshS(eps float64) *core.SchedulerS {
	return core.NewSchedulerS(core.Options{Params: core.MustParams(eps)})
}

// schedulerRoster returns the baseline set used by BASE and the ablations.
func schedulerRoster() []func() sim.Scheduler {
	return []func() sim.Scheduler{
		func() sim.Scheduler { return freshS(1) },
		func() sim.Scheduler { return &baselines.ListScheduler{Order: baselines.OrderEDF} },
		func() sim.Scheduler {
			return &baselines.ListScheduler{Order: baselines.OrderEDF, AbandonHopeless: true}
		},
		func() sim.Scheduler { return &baselines.ListScheduler{Order: baselines.OrderLLF} },
		func() sim.Scheduler { return &baselines.ListScheduler{Order: baselines.OrderFIFO} },
		func() sim.Scheduler { return &baselines.ListScheduler{Order: baselines.OrderHDF} },
		func() sim.Scheduler { return &baselines.Federated{} },
	}
}
