package experiments

import (
	"context"

	"dagsched/internal/baselines"
	"dagsched/internal/core"
	"dagsched/internal/dag"
	"dagsched/internal/metrics"
	"dagsched/internal/opt"
	"dagsched/internal/rational"
	"dagsched/internal/runner"
	"dagsched/internal/sim"
	"dagsched/internal/workload"
)

// RunBASE compares scheduler S against the classical baselines across load
// on stochastic workloads. Finding: on random (non-adversarial) inputs the
// work-conserving heuristics — especially highest-density-first — earn more
// than S, whose fixed allotments and conservative admission leave capacity
// idle; the paper itself flags work-conservation as future work. The
// adversarial regime where the ordering flips is the ADV experiment.
func RunBASE(cfg Config) ([]*metrics.Table, error) {
	loads := []float64{0.5, 1, 2, 4}
	if cfg.Quick {
		loads = []float64{1, 3}
	}
	roster := schedulerRoster()
	cells, err := runGrid(cfg, runner.Grid[boundedSample]{
		Name: "BASE",
		Axes: []runner.Axis{{Name: "load", Size: len(loads)}, seedAxis(cfg)},
		Cell: func(_ context.Context, c runner.Cell) (boundedSample, error) {
			load, seed := loads[c.At(0)], c.At(1)
			inst, err := workload.Generate(workload.Config{
				Seed: int64(500 + seed), N: cfg.jobs(), M: 8,
				Eps: 1, SlackSpread: 0.5, Load: load, Scale: 2,
			})
			if err != nil {
				return boundedSample{}, err
			}
			bound := upperBound(inst)
			if bound == 0 {
				return boundedSample{}, nil
			}
			profits := make([]float64, len(roster))
			for i, mk := range roster {
				p, err := runProfit(cfg, inst, mk(), rational.One(), nil)
				if err != nil {
					return boundedSample{}, err
				}
				profits[i] = p
			}
			return boundedSample{bound: bound, profits: profits}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(roster))
	for _, mk := range roster {
		names = append(names, mk().Name())
	}
	cols := append([]string{"load", "UB"}, names...)
	tb := metrics.NewTable("BASE: profit/UB by scheduler and load (m=8, eps_D = 1)", cols...)
	for li, load := range loads {
		series := make([]metrics.Series, len(roster))
		var ub metrics.Series
		for seed := 0; seed < cfg.seeds(); seed++ {
			smp := cells[li*cfg.seeds()+seed]
			if smp.bound == 0 {
				continue
			}
			ub.Add(smp.bound)
			for i := range roster {
				series[i].Add(smp.profits[i] / smp.bound)
			}
		}
		row := []any{load, ub.Mean()}
		for i := range series {
			row = append(row, series[i].Mean())
		}
		tb.AddRow(row...)
	}
	return []*metrics.Table{tb}, nil
}

// runAblationTable compares the paper scheduler against ablated variants on
// a common workload configuration. The grid is one cell per seed; a cell
// generates the instance, computes the OPT bound once, and runs every
// variant on it.
func runAblationTable(cfg Config, name, title string, wl workload.Config, variants []core.Ablation) (*metrics.Table, error) {
	mk := func(a core.Ablation) sim.Scheduler {
		return core.NewSchedulerS(core.Options{Params: core.MustParams(1), Ablation: a})
	}
	cells, err := runGrid(cfg, runner.Grid[boundedSample]{
		Name: name,
		Axes: []runner.Axis{seedAxis(cfg)},
		Cell: func(_ context.Context, c runner.Cell) (boundedSample, error) {
			w := wl
			w.Seed = wl.Seed + int64(c.At(0))
			w.N = cfg.jobs()
			inst, err := workload.Generate(w)
			if err != nil {
				return boundedSample{}, err
			}
			smp := boundedSample{bound: upperBound(inst)}
			for _, a := range variants {
				p, err := runProfit(cfg, inst, mk(a), rational.One(), nil)
				if err != nil {
					return boundedSample{}, err
				}
				smp.profits = append(smp.profits, p)
			}
			return smp, nil
		},
	})
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(variants))
	for _, a := range variants {
		names = append(names, mk(a).Name())
	}
	tb := metrics.NewTable(title, append([]string{"seed", "UB"}, names...)...)
	for seed, smp := range cells {
		row := []any{seed, smp.bound}
		for i := range variants {
			if smp.bound > 0 {
				row = append(row, smp.profits[i]/smp.bound)
			} else {
				row = append(row, 0.0)
			}
		}
		tb.AddRow(row...)
	}
	return tb, nil
}

// RunABL1 removes the admission band condition (2): every δ-good job starts
// immediately. Finding: on stochastic overload the ablated variant earns
// *more* — density-ordered execution already limits dilution, so the band
// check's cost is visible while its benefit (the Observation 3 invariant
// underpinning the worst-case proof, and robustness on adversarial streams
// like ADV) is not exercised by random inputs.
func RunABL1(cfg Config) ([]*metrics.Table, error) {
	tb, err := runAblationTable(cfg, "ABL1",
		"ABL1: condition (2) removed (overload 3x, m=8)",
		workload.Config{Seed: 600, M: 8, Eps: 1, SlackSpread: 0.3, Load: 3, Scale: 2},
		[]core.Ablation{core.AblationNone, core.AblationNoBandCheck})
	if err != nil {
		return nil, err
	}
	return []*metrics.Table{tb}, nil
}

// RunABL2 forces the allotment to 1 or m instead of the paper's n_i: one
// processor wastes parallelism on wide jobs; m processors waste capacity on
// narrow ones and block the band check for everyone else.
func RunABL2(cfg Config) ([]*metrics.Table, error) {
	tb, err := runAblationTable(cfg, "ABL2",
		"ABL2: allotment n_i vs forced 1 or m (load 1.5, m=8)",
		workload.Config{Seed: 700, M: 8, Eps: 1, SlackSpread: 0.3, Load: 1.5, Scale: 2},
		[]core.Ablation{core.AblationNone, core.AblationAllotOne, core.AblationAllotAll})
	if err != nil {
		return nil, err
	}
	return []*metrics.Table{tb}, nil
}

// RunABL3 removes the δ-fresh admission test: stale jobs admitted from P eat
// processor steps they can no longer convert into profit.
func RunABL3(cfg Config) ([]*metrics.Table, error) {
	tb, err := runAblationTable(cfg, "ABL3",
		"ABL3: δ-fresh test removed (bursty overload 3x, tight slack, m=8)",
		workload.Config{Seed: 800, M: 8, Eps: 1, SlackSpread: 0, Load: 3, Scale: 2, Arrival: workload.ArrivalBursty},
		[]core.Ablation{core.AblationNone, core.AblationNoFreshness})
	if err != nil {
		return nil, err
	}
	return []*metrics.Table{tb}, nil
}

// optqSample is one seed of the OPTQ grid: every bound (and the clairvoyant
// heuristic) normalized by the exact malleable optimum. skip marks seeds
// whose exact optimum is zero.
type optqSample struct {
	skip                            bool
	greedy, trivial, knap, lp, heur float64
}

// RunOPTQ measures the quality of the OPT upper bounds on small instances
// where the exact malleable optimum is computable, plus a clairvoyant
// heuristic as a lower bound on OPT (§3.4's comparison infrastructure).
func RunOPTQ(cfg Config) ([]*metrics.Table, error) {
	n := 10
	if cfg.Quick {
		n = 8
	}
	cells, err := runGrid(cfg, runner.Grid[optqSample]{
		Name: "OPTQ",
		Axes: []runner.Axis{{Name: "seed", Size: cfg.seeds() + 3}},
		Cell: func(_ context.Context, c runner.Cell) (optqSample, error) {
			// Heavy overload with no extra slack, so windows genuinely contend
			// and the bounds separate.
			inst, err := workload.Generate(workload.Config{
				Seed: int64(900 + c.At(0)), N: n, M: 2,
				Eps: 0.25, SlackSpread: 0, Load: 6, Scale: 1,
			})
			if err != nil {
				return optqSample{}, err
			}
			tasks := opt.TasksFromJobs(inst.Jobs, inst.M, 1)
			exact := opt.ExactSmall(tasks, inst.M, 1)
			if exact == 0 {
				return optqSample{skip: true}, nil
			}
			lv, err := opt.LPBound(tasks, inst.M, 1)
			if err != nil {
				return optqSample{}, err
			}
			// Clairvoyant heuristic: a lower bound on OPT.
			p, err := heuristicProfit(cfg, inst)
			if err != nil {
				return optqSample{}, err
			}
			return optqSample{
				greedy:  opt.GreedyLowerBound(tasks, inst.M, 1) / exact,
				trivial: opt.Trivial(tasks) / exact,
				knap:    opt.IntervalKnapsackBound(tasks, inst.M, 1) / exact,
				lp:      lv / exact,
				heur:    p / exact,
			}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("OPTQ: bound quality relative to the exact malleable optimum (m=2, 6x overload)",
		"bound", "mean ratio", "max ratio")
	var trivial, knap, lpb, heur, greedy metrics.Series
	for _, smp := range cells {
		if smp.skip {
			continue
		}
		greedy.Add(smp.greedy)
		trivial.Add(smp.trivial)
		knap.Add(smp.knap)
		lpb.Add(smp.lp)
		heur.Add(smp.heur)
	}
	tb.AddRow("greedy-LB/exact (≤1)", greedy.Mean(), greedy.Max())
	tb.AddRow("trivial/exact", trivial.Mean(), trivial.Max())
	tb.AddRow("knapsack/exact", knap.Mean(), knap.Max())
	tb.AddRow("LP/exact", lpb.Mean(), lpb.Max())
	tb.AddRow("clairvoyant-heuristic/exact (≤1)", heur.Mean(), heur.Max())
	return []*metrics.Table{tb}, nil
}

// heuristicProfit runs the strongest offline-ish heuristic available — EDF
// with hopeless-job abandonment and clairvoyant critical-path-first node
// picks — as an OPT lower bound.
func heuristicProfit(cfg Config, inst *workload.Instance) (float64, error) {
	return runProfit(cfg, inst,
		&baselines.ListScheduler{Order: baselines.OrderEDF, AbandonHopeless: true},
		rational.One(), dag.CriticalPathFirst{})
}
