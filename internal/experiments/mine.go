package experiments

import (
	"context"
	"math"

	"dagsched/internal/adversary"
	"dagsched/internal/baselines"
	"dagsched/internal/metrics"
	"dagsched/internal/runner"
	"dagsched/internal/sim"
	"dagsched/internal/workload"
)

// RunMINE turns the adversary loose on each scheduler: a hill-climbing
// search over instance perturbations (tighten a deadline, rescale a profit,
// shift or duplicate or delete a job) that maximizes UB(OPT)/profit. The
// paper's claim, operationalized: the mined ratio against S stays moderate
// (its guarantee caps what any adversary can achieve given deadline slack),
// while deadline-ordered policies can be driven to unbounded gaps — the
// miner rediscovers domino instances on its own. Each (target × constraint)
// cell regenerates its own start instance, so the expensive mining runs are
// fully independent grid cells.
func RunMINE(cfg Config) ([]*metrics.Table, error) {
	iters := 200
	if cfg.Quick {
		iters = 40
	}
	targets := []struct {
		name string
		mk   func() sim.Scheduler
	}{
		{"paper-S", func() sim.Scheduler { return freshS(1) }},
		{"edf", func() sim.Scheduler { return &baselines.ListScheduler{Order: baselines.OrderEDF} }},
		{"hdf", func() sim.Scheduler { return &baselines.ListScheduler{Order: baselines.OrderHDF} }},
		{"federated", func() sim.Scheduler { return &baselines.Federated{} }},
	}
	slacks := []float64{0, 1} // 0 = unrestricted, 1 = slack-preserving (eps=1)
	type mineSample struct {
		startRatio, ratio float64
	}
	cells, err := runGrid(cfg, runner.Grid[mineSample]{
		Name: "MINE",
		Axes: []runner.Axis{{Name: "target", Size: len(targets)}, {Name: "slack", Size: len(slacks)}},
		Cell: func(_ context.Context, c runner.Cell) (mineSample, error) {
			start, err := workload.Generate(workload.Config{
				Seed: 1700, N: 12, M: 4, Eps: 1, SlackSpread: 0.4, Load: 1.5, Scale: 1,
			})
			if err != nil {
				return mineSample{}, err
			}
			res, err := adversary.Mine(adversary.Config{
				Seed: 77, Iterations: iters, Scheduler: targets[c.At(0)].mk,
				MaxJobs: 30, MinSlack: slacks[c.At(1)],
			}, start)
			if err != nil {
				return mineSample{}, err
			}
			return mineSample{startRatio: res.StartRatio, ratio: res.Ratio}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("MINE: adversarially mined competitive ratios (hill-climbing, m=4)",
		"target", "start UB/profit", "mined (unrestricted)", "mined (slack-preserving, eps=1)")
	fmtRatio := func(r float64) string {
		if math.IsInf(r, 1) {
			return "inf (profit driven to 0)"
		}
		return metrics.FormatFloat(r)
	}
	for ti, tgt := range targets {
		free := cells[ti*len(slacks)]
		slacked := cells[ti*len(slacks)+1]
		tb.AddRow(tgt.name, free.startRatio, fmtRatio(free.ratio), fmtRatio(slacked.ratio))
	}
	return []*metrics.Table{tb}, nil
}
