package experiments

import (
	"math"

	"dagsched/internal/adversary"
	"dagsched/internal/baselines"
	"dagsched/internal/metrics"
	"dagsched/internal/sim"
	"dagsched/internal/workload"
)

// RunMINE turns the adversary loose on each scheduler: a hill-climbing
// search over instance perturbations (tighten a deadline, rescale a profit,
// shift or duplicate or delete a job) that maximizes UB(OPT)/profit. The
// paper's claim, operationalized: the mined ratio against S stays moderate
// (its guarantee caps what any adversary can achieve given deadline slack),
// while deadline-ordered policies can be driven to unbounded gaps — the
// miner rediscovers domino instances on its own.
func RunMINE(cfg Config) ([]*metrics.Table, error) {
	iters := 200
	if cfg.Quick {
		iters = 40
	}
	start, err := workload.Generate(workload.Config{
		Seed: 1700, N: 12, M: 4, Eps: 1, SlackSpread: 0.4, Load: 1.5, Scale: 1,
	})
	if err != nil {
		return nil, err
	}
	targets := []struct {
		name string
		mk   func() sim.Scheduler
	}{
		{"paper-S", func() sim.Scheduler { return freshS(1) }},
		{"edf", func() sim.Scheduler { return &baselines.ListScheduler{Order: baselines.OrderEDF} }},
		{"hdf", func() sim.Scheduler { return &baselines.ListScheduler{Order: baselines.OrderHDF} }},
		{"federated", func() sim.Scheduler { return &baselines.Federated{} }},
	}
	tb := metrics.NewTable("MINE: adversarially mined competitive ratios (hill-climbing, m=4)",
		"target", "start UB/profit", "mined (unrestricted)", "mined (slack-preserving, eps=1)")
	fmtRatio := func(r float64) string {
		if math.IsInf(r, 1) {
			return "inf (profit driven to 0)"
		}
		return metrics.FormatFloat(r)
	}
	for _, tgt := range targets {
		free, err := adversary.Mine(adversary.Config{
			Seed: 77, Iterations: iters, Scheduler: tgt.mk, MaxJobs: 30,
		}, start)
		if err != nil {
			return nil, err
		}
		slacked, err := adversary.Mine(adversary.Config{
			Seed: 77, Iterations: iters, Scheduler: tgt.mk, MaxJobs: 30, MinSlack: 1,
		}, start)
		if err != nil {
			return nil, err
		}
		tb.AddRow(tgt.name, free.StartRatio, fmtRatio(free.Ratio), fmtRatio(slacked.Ratio))
	}
	return []*metrics.Table{tb}, nil
}
