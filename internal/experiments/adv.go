package experiments

import (
	"context"
	"fmt"

	"dagsched/internal/dag"
	"dagsched/internal/metrics"
	"dagsched/internal/profit"
	"dagsched/internal/rational"
	"dagsched/internal/runner"
	"dagsched/internal/sim"
	"dagsched/internal/workload"
)

// AdversarialInstance builds the adversarial stream that realizes the paper's
// motivation for admission control. Per phase of T = 200 ticks, on m = 8:
//
//   - one "big" SLA job: Block(72,10) (W=720, L=10), deadline 200 — exactly
//     the Theorem 2 slack at ε = 1 — worth 100;
//   - "trap" jobs every 10 ticks: WideChain(6,8,2) (W=108, span 24) with
//     deadline 20 < span: infeasible for any scheduler, but volume-feasible
//     and very dense (profit 324), so density-greedy and deadline-greedy
//     policies burn processors on them. Scheduler S discards them at
//     arrival: they cannot be δ-good;
//   - "bait" jobs every 20 ticks: Block(8,8) (W=64, L=8) with deadline 30
//     and profit 1: earlier deadlines than the big job, so EDF and LLF
//     starve the big job for a stream of near-worthless work. Condition (2)
//     rejects them — their density band is already full of the big job.
func AdversarialInstance(phases int) (*workload.Instance, error) {
	const (
		T         = 200
		m         = 8
		trapEvery = 10
		baitEvery = 20
	)
	inst := &workload.Instance{Name: fmt.Sprintf("adversarial-%dphases", phases), M: m}
	id := 0
	add := func(g *dag.DAG, release int64, value float64, deadline int64) error {
		fn, err := profit.NewStep(value, deadline)
		if err != nil {
			return err
		}
		inst.Jobs = append(inst.Jobs, &sim.Job{ID: id, Graph: g, Release: release, Profit: fn})
		id++
		return nil
	}
	for k := 0; k < phases; k++ {
		base := int64(k * T)
		if err := add(dag.Block(72, 10), base, 100, T); err != nil {
			return nil, err
		}
		for j := int64(0); j < T; j += trapEvery {
			if err := add(dag.WideChain(6, 8, 2), base+j, 324, trapEvery); err != nil {
				return nil, err
			}
		}
		for j := int64(0); j < T; j += baitEvery {
			if err := add(dag.Block(8, 8), base+j, 1, 30); err != nil {
				return nil, err
			}
		}
	}
	return inst, inst.Validate()
}

// RunADV runs every scheduler on the adversarial stream and on a
// same-size random mix, showing the contrast the theory predicts: greedy
// heuristics are fine on stochastic inputs but collapse on the adversarial
// one, while S's admission control holds its constant fraction. The two
// instances are built once and shared read-only by the (scheduler ×
// instance) grid — jobs, DAGs, and profit functions are immutable, and the
// engine keeps all execution state per run.
func RunADV(cfg Config) ([]*metrics.Table, error) {
	phases := 5
	if cfg.Quick {
		phases = 2
	}
	adv, err := AdversarialInstance(phases)
	if err != nil {
		return nil, err
	}
	rnd, err := workload.Generate(workload.Config{
		Seed: 1000, N: len(adv.Jobs), M: adv.M,
		Eps: 1, SlackSpread: 0.5, Load: 2, Scale: 2,
	})
	if err != nil {
		return nil, err
	}
	roster := schedulerRoster()
	insts := []*workload.Instance{adv, rnd}
	cells, err := runGrid(cfg, runner.Grid[float64]{
		Name: "ADV",
		Axes: []runner.Axis{{Name: "scheduler", Size: len(roster)}, {Name: "instance", Size: len(insts)}},
		Cell: func(_ context.Context, c runner.Cell) (float64, error) {
			return runProfit(cfg, insts[c.At(1)], roster[c.At(0)](), rational.One(), nil)
		},
	})
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("ADV: profit/UB on an adversarial stream vs a random mix (m=8)",
		"scheduler", "adversarial", "random")
	ubAdv := upperBound(adv)
	ubRnd := upperBound(rnd)
	for i, mk := range roster {
		tb.AddRow(mk().Name(), cells[i*len(insts)]/ubAdv, cells[i*len(insts)+1]/ubRnd)
	}
	return []*metrics.Table{tb}, nil
}
