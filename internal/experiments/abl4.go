package experiments

import (
	"math/rand"
	"time"

	"dagsched/internal/metrics"
	"dagsched/internal/queue"
)

// RunABL4 measures the band-index substrate choice: the naive O(n) scan
// versus the treap with subtree sums, at the queue sizes condition (2)
// actually sees. The treap wins asymptotically; at the |Q| ≈ tens the
// scheduler usually holds, the difference is irrelevant — which is why the
// index is pluggable rather than mandatory.
func RunABL4(cfg Config) ([]*metrics.Table, error) {
	sizes := []int{16, 128, 1024}
	if cfg.Quick {
		sizes = []int{16, 256}
	}
	tb := metrics.NewTable("ABL4: band index SumRange cost (ns/op)",
		"items", "naive", "treap", "speedup")
	for _, n := range sizes {
		naive := benchBand(func() queue.BandIndex { return queue.NewNaiveBand() }, n)
		treap := benchBand(func() queue.BandIndex { return queue.NewTreapBand(1) }, n)
		tb.AddRow(n, float64(naive), float64(treap), float64(naive)/float64(treap))
	}
	return []*metrics.Table{tb}, nil
}

// benchBand times SumRange queries over an index with n items using a
// self-calibrating loop (testing.Benchmark cannot be nested inside the
// BenchmarkEXP_* harness).
func benchBand(mk func() queue.BandIndex, n int) int64 {
	rng := rand.New(rand.NewSource(7))
	idx := mk()
	for i := 0; i < n; i++ {
		idx.Insert(queue.Item{ID: i, Density: rng.Float64() * 100, Weight: 1 + rng.Float64()})
	}
	run := func(iters int) time.Duration {
		r := rand.New(rand.NewSource(9))
		var sink float64
		start := time.Now()
		for i := 0; i < iters; i++ {
			lo := r.Float64() * 100
			sink += idx.SumRange(lo, lo*1.5)
		}
		_ = sink
		return time.Since(start)
	}
	run(64) // warmup
	iters := 256
	for {
		el := run(iters)
		if el >= 10*time.Millisecond || iters >= 1<<22 {
			return el.Nanoseconds() / int64(iters)
		}
		iters *= 4
	}
}
