package experiments

import (
	"context"
	"math/rand"

	"dagsched/internal/metrics"
	"dagsched/internal/queue"
	"dagsched/internal/runner"
)

// RunABL4 measures the band-index substrate choice: the naive O(n) scan
// versus the treap with subtree sums, at the queue sizes condition (2)
// actually sees. Cost is reported as entries examined per SumRange query
// (the queue.Counted work measure) rather than wall-clock, so the table is
// deterministic — identical on any machine and under any -parallel value.
// The treap wins asymptotically; at the |Q| ≈ tens the scheduler usually
// holds, the difference is small — which is why the index is pluggable
// rather than mandatory.
func RunABL4(cfg Config) ([]*metrics.Table, error) {
	sizes := []int{16, 128, 1024}
	if cfg.Quick {
		sizes = []int{16, 256}
	}
	substrates := []func() queue.BandIndex{
		func() queue.BandIndex { return queue.NewNaiveBand() },
		func() queue.BandIndex { return queue.NewTreapBand(1) },
	}
	cells, err := runGrid(cfg, runner.Grid[float64]{
		Name: "ABL4",
		Axes: []runner.Axis{{Name: "items", Size: len(sizes)}, {Name: "substrate", Size: len(substrates)}},
		Cell: func(_ context.Context, c runner.Cell) (float64, error) {
			return bandWorkPerQuery(substrates[c.At(1)](), sizes[c.At(0)]), nil
		},
	})
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("ABL4: band index SumRange cost (entries examined per query)",
		"items", "naive", "treap", "speedup")
	for i, n := range sizes {
		naive := cells[i*len(substrates)]
		treap := cells[i*len(substrates)+1]
		tb.AddRow(n, naive, treap, naive/treap)
	}
	return []*metrics.Table{tb}, nil
}

// bandWorkPerQuery fills an index with n items and runs a fixed query
// workload, returning the mean entries/nodes examined per SumRange query.
// Both the index structure (treap priorities) and the query stream are
// seeded, so the count is a pure function of (substrate, n).
func bandWorkPerQuery(idx queue.BandIndex, n int) float64 {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		idx.Insert(queue.Item{ID: i, Density: rng.Float64() * 100, Weight: 1 + rng.Float64()})
	}
	counted := idx.(queue.Counted)
	counted.ResetVisits() // ignore setup-insert work
	const queries = 512
	r := rand.New(rand.NewSource(9))
	var sink float64
	for i := 0; i < queries; i++ {
		lo := r.Float64() * 100
		sink += idx.SumRange(lo, lo*1.5)
	}
	_ = sink
	return float64(counted.Visits()) / queries
}
