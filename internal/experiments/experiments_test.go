package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Quick: true, Seeds: 2} }

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 21 {
		t.Fatalf("suite has %d experiments, want 21", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
		if got, ok := ByID(e.ID); !ok || got.ID != e.ID {
			t.Errorf("ByID(%s) failed", e.ID)
		}
	}
	if _, ok := ByID("NOPE"); ok {
		t.Error("ByID accepted unknown ID")
	}
	if len(IDs()) != len(all) {
		t.Error("IDs() length mismatch")
	}
}

// TestAllExperimentsRunQuick executes every experiment in quick mode and
// checks tables are produced with data rows.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(quickCfg())
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if tb.NumRows() == 0 {
					t.Errorf("table %q has no rows", tb.Title)
				}
				out := tb.Render()
				if !strings.Contains(out, tb.Columns[0]) {
					t.Errorf("render missing header:\n%s", out)
				}
			}
		})
	}
}

func TestFIG1RatioApproachesTwo(t *testing.T) {
	tables, err := RunFIG1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	csv := tables[0].CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	// Each data row: m,W,L,tu,tc,ratio,threshold → ratio must equal threshold
	// exactly for the constructed instance (m | L).
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		ratio, err1 := strconv.ParseFloat(f[5], 64)
		thr, err2 := strconv.ParseFloat(f[6], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad row %q", line)
		}
		if ratio < thr-1e-9 || ratio > thr+1e-9 {
			t.Errorf("row %q: ratio %v != threshold %v", line, ratio, thr)
		}
	}
}

func TestTHM1ThresholdSharp(t *testing.T) {
	tables, err := RunTHM1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(tables[0].CSV()), "\n")
	// rows: speed, unluckyFrac, clairFrac
	want := map[string][2]float64{
		"1":   {0, 1},
		"5/4": {0, 1},
		"3/2": {0, 1},
		"7/4": {1, 1},
		"2":   {1, 1},
	}
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		exp, ok := want[f[0]]
		if !ok {
			t.Fatalf("unexpected speed row %q", f[0])
		}
		u, _ := strconv.ParseFloat(f[1], 64)
		c, _ := strconv.ParseFloat(f[2], 64)
		if u != exp[0] || c != exp[1] {
			t.Errorf("speed %s: got (%v, %v), want %v", f[0], u, c, exp)
		}
	}
}

func TestTHM2RatiosBoundedByPaperConstant(t *testing.T) {
	tables, err := RunTHM2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(tables[0].CSV()), "\n")
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		// ratio(S) cell is "mean ± ci"; take the mean.
		ratio, err := strconv.ParseFloat(strings.Fields(f[3])[0], 64)
		if err != nil {
			t.Fatalf("bad ratio cell %q", f[3])
		}
		paperConst, err := strconv.ParseFloat(f[5], 64)
		if err != nil {
			t.Fatalf("bad const cell %q", f[5])
		}
		if ratio <= 0 {
			t.Errorf("eps=%s: non-positive measured ratio %v", f[0], ratio)
		}
		if ratio > paperConst {
			t.Errorf("eps=%s: measured ratio %v exceeds the proven bound %v", f[0], ratio, paperConst)
		}
	}
}

func TestOPTQBoundsDominateExact(t *testing.T) {
	tables, err := RunOPTQ(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(tables[0].CSV()), "\n")
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		mean, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			t.Fatalf("bad row %q", line)
		}
		if strings.Contains(f[0], "heuristic") {
			if mean > 1+1e-9 {
				t.Errorf("heuristic lower bound exceeds exact: %v", mean)
			}
		} else if mean < 1-1e-9 {
			t.Errorf("%s below exact: %v", f[0], mean)
		}
	}
}

func TestLEMBoundsHold(t *testing.T) {
	tables, err := RunLEM(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(tables[0].CSV()), "\n")
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		maxN, _ := strconv.ParseFloat(f[1], 64)
		goodFrac, _ := strconv.ParseFloat(f[2], 64)
		maxXA, _ := strconv.ParseFloat(f[3], 64)
		margin, _ := strconv.ParseFloat(f[4], 64)
		minCR, _ := strconv.ParseFloat(f[5], 64)
		if maxN > 1+1e-9 {
			t.Errorf("eps=%s: Lemma 1 violated: max n/(b²m) = %v", f[0], maxN)
		}
		if goodFrac != 1 {
			t.Errorf("eps=%s: Lemma 2 violated: δ-good fraction %v", f[0], goodFrac)
		}
		if maxXA > 1+1e-9 {
			t.Errorf("eps=%s: Lemma 3 violated: max xA/(aW+L) = %v", f[0], maxXA)
		}
		if minCR < margin {
			t.Errorf("eps=%s: Lemma 5 violated: ||C||/||R|| = %v < margin %v", f[0], minCR, margin)
		}
	}
}

func TestCMTOnAdmissionIsFree(t *testing.T) {
	tables, err := RunCMT(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// CMT1 columns: load, none, on-admission, delta, on-arrival. On-admission
	// is durability-only, so inside the simulator it must price at exactly
	// zero: its profit column equals the none column bit for bit.
	lines := strings.Split(strings.TrimSpace(tables[0].CSV()), "\n")
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		none, err1 := strconv.ParseFloat(f[1], 64)
		onAdm, err2 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad row %q", line)
		}
		if none != onAdm {
			t.Errorf("load %s: on-admission profit %v != none profit %v — a durability-only policy changed the schedule", f[0], onAdm, none)
		}
		if none <= 0 {
			t.Errorf("load %s: none profit ratio %v, want > 0", f[0], none)
		}
	}
}

func TestAssertPositiveHelper(t *testing.T) {
	if err := assertPositive(1, "x"); err != nil {
		t.Error(err)
	}
	if err := assertPositive(0, "x"); err == nil {
		t.Error("accepted 0")
	}
}
