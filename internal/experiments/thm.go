package experiments

import (
	"context"
	"fmt"

	"dagsched/internal/baselines"
	"dagsched/internal/core"
	"dagsched/internal/metrics"
	"dagsched/internal/rational"
	"dagsched/internal/runner"
	"dagsched/internal/workload"
)

// boundedSample is the per-(cell × seed) outcome shared by the theorem and
// corollary grids: the OPT upper bound for the generated instance plus the
// profits of the schedulers the experiment compares.
type boundedSample struct {
	bound   float64
	profits []float64
}

// seedAxis names the inner seed axis every stochastic grid shares.
func seedAxis(cfg Config) runner.Axis {
	return runner.Axis{Name: "seed", Size: cfg.seeds()}
}

// RunTHM2 measures the empirical competitive ratio of scheduler S when every
// deadline satisfies the Theorem 2 condition D ≥ (1+ε)((W−L)/m + L): the
// ratio UB(OPT)/profit(S) stays bounded and sits orders of magnitude below
// the O(1/ε⁶) analysis constant. EDF is shown for scale: on stochastic
// (non-adversarial) workloads it is competitive too — the regimes where S's
// guarantee separates from heuristics are exercised by the ADV experiment.
func RunTHM2(cfg Config) ([]*metrics.Table, error) {
	epsList := []float64{0.25, 0.5, 1, 2}
	if cfg.Quick {
		epsList = []float64{0.5, 1}
	}
	cells, err := runGrid(cfg, runner.Grid[boundedSample]{
		Name: "THM2",
		Axes: []runner.Axis{{Name: "eps", Size: len(epsList)}, seedAxis(cfg)},
		Cell: func(_ context.Context, c runner.Cell) (boundedSample, error) {
			eps, seed := epsList[c.At(0)], c.At(1)
			inst, err := workload.Generate(workload.Config{
				Seed: int64(100 + seed), N: cfg.jobs(), M: 8,
				Eps: eps, SlackSpread: 0.3, Load: 1.5, Scale: 2,
			})
			if err != nil {
				return boundedSample{}, err
			}
			pS, err := runProfit(cfg, inst, freshS(eps), rational.One(), nil)
			if err != nil {
				return boundedSample{}, err
			}
			pE, err := runProfit(cfg, inst, &baselines.ListScheduler{Order: baselines.OrderEDF}, rational.One(), nil)
			if err != nil {
				return boundedSample{}, err
			}
			return boundedSample{bound: upperBound(inst), profits: []float64{pS, pE}}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("THM2: competitive ratio of S vs OPT upper bound (load 1.5, m=8)",
		"eps", "profit(S)", "UB(OPT)", "ratio(S)", "ratio(EDF)", "paper-const")
	for ei, eps := range epsList {
		var rs, re, ps, ub metrics.Series
		for seed := 0; seed < cfg.seeds(); seed++ {
			s := cells[ei*cfg.seeds()+seed]
			pS, pE := s.profits[0], s.profits[1]
			ps.Add(pS)
			ub.Add(s.bound)
			if pS > 0 {
				rs.Add(s.bound / pS)
			}
			if pE > 0 {
				re.Add(s.bound / pE)
			}
		}
		tb.AddRow(eps, ps.Mean(), ub.Mean(), ratioCell(&rs), ratioCell(&re),
			core.MustParams(eps).CompetitiveBound())
	}
	return []*metrics.Table{tb}, nil
}

// RunCOR1 sweeps machine speed on nearly-tight deadlines (no slack
// assumption): profit(S at speed s) / UB(OPT at speed 1) rises to a constant
// fraction by s = 2+ε, matching Corollary 1.
func RunCOR1(cfg Config) ([]*metrics.Table, error) {
	speeds := []rational.Rat{
		rational.One(), rational.New(3, 2), rational.New(2, 1),
		rational.New(5, 2), rational.New(3, 1),
	}
	cells, err := runGrid(cfg, runner.Grid[boundedSample]{
		Name: "COR1",
		Axes: []runner.Axis{{Name: "speed", Size: len(speeds)}, seedAxis(cfg)},
		Cell: func(_ context.Context, c runner.Cell) (boundedSample, error) {
			s, seed := speeds[c.At(0)], c.At(1)
			inst, err := workload.Generate(workload.Config{
				Seed: int64(200 + seed), N: cfg.jobs(), M: 8,
				Eps: 0.02, SlackSpread: 0.1, Load: 1.2, Scale: 2,
			})
			if err != nil {
				return boundedSample{}, err
			}
			bound := upperBound(inst)
			if bound == 0 {
				return boundedSample{}, nil
			}
			pS, err := runProfit(cfg, inst, freshS(0.5), s, nil)
			if err != nil {
				return boundedSample{}, err
			}
			pE, err := runProfit(cfg, inst, &baselines.ListScheduler{Order: baselines.OrderEDF}, s, nil)
			if err != nil {
				return boundedSample{}, err
			}
			return boundedSample{bound: bound, profits: []float64{pS, pE}}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("COR1: speed sweep on tight deadlines (eps_D = 0.02, load 1.2, m=8)",
		"speed", "profit(S)/UB", "profit(EDF)/UB")
	for si, s := range speeds {
		var rs, re metrics.Series
		for seed := 0; seed < cfg.seeds(); seed++ {
			smp := cells[si*cfg.seeds()+seed]
			if smp.bound == 0 {
				continue
			}
			rs.Add(smp.profits[0] / smp.bound)
			re.Add(smp.profits[1] / smp.bound)
		}
		tb.AddRow(s.String(), ratioCell(&rs), ratioCell(&re))
	}
	return []*metrics.Table{tb}, nil
}

// RunCOR2 checks the "reasonable jobs" corollary: when deadlines satisfy
// (W−L)/m + L ≤ D (epsilon-free), speed 1+ε already yields a constant
// fraction of the OPT bound.
func RunCOR2(cfg Config) ([]*metrics.Table, error) {
	type cell struct {
		eps   float64
		speed rational.Rat
	}
	cases := []cell{
		{0.25, rational.New(5, 4)},
		{0.5, rational.New(3, 2)},
		{1, rational.New(2, 1)},
	}
	cells, err := runGrid(cfg, runner.Grid[boundedSample]{
		Name: "COR2",
		Axes: []runner.Axis{{Name: "eps-speed", Size: len(cases)}, seedAxis(cfg)},
		Cell: func(_ context.Context, rc runner.Cell) (boundedSample, error) {
			cs, seed := cases[rc.At(0)], rc.At(1)
			inst, err := workload.Generate(workload.Config{
				Seed: int64(300 + seed), N: cfg.jobs(), M: 8,
				Eps: 0.02, SlackSpread: 0.2, Load: 1.2, Scale: 2,
			})
			if err != nil {
				return boundedSample{}, err
			}
			bound := upperBound(inst)
			if bound == 0 {
				return boundedSample{}, nil
			}
			pS, err := runProfit(cfg, inst, freshS(cs.eps), cs.speed, nil)
			if err != nil {
				return boundedSample{}, err
			}
			return boundedSample{bound: bound, profits: []float64{pS}}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("COR2: (1+eps)-speed on reasonable deadlines (eps_D = 0.02, load 1.2, m=8)",
		"eps", "speed", "profit(S)/UB")
	for ci, cs := range cases {
		var rs metrics.Series
		for seed := 0; seed < cfg.seeds(); seed++ {
			smp := cells[ci*cfg.seeds()+seed]
			if smp.bound == 0 {
				continue
			}
			rs.Add(smp.profits[0] / smp.bound)
		}
		tb.AddRow(cs.eps, cs.speed.String(), ratioCell(&rs))
	}
	return []*metrics.Table{tb}, nil
}

// RunTHM3 evaluates the general-profit scheduler on decaying profit
// functions satisfying the flat-prefix assumption, against the OPT bound and
// against scheduler S naively applied with the support end as its deadline
// (which misjudges densities once profits decay).
func RunTHM3(cfg Config) ([]*metrics.Table, error) {
	kinds := []workload.ProfitKind{workload.ProfitLinear, workload.ProfitExp}
	loads := []float64{1, 2}
	if cfg.Quick {
		loads = []float64{1.5}
	}
	cells, err := runGrid(cfg, runner.Grid[boundedSample]{
		Name: "THM3",
		Axes: []runner.Axis{
			{Name: "profit-kind", Size: len(kinds)},
			{Name: "load", Size: len(loads)},
			seedAxis(cfg),
		},
		Cell: func(_ context.Context, c runner.Cell) (boundedSample, error) {
			kind, load, seed := kinds[c.At(0)], loads[c.At(1)], c.At(2)
			inst, err := workload.Generate(workload.Config{
				Seed: int64(400 + seed), N: cfg.jobs(), M: 8,
				Eps: 1, SlackSpread: 0.3, Load: load, Scale: 2,
				Profit: kind,
			})
			if err != nil {
				return boundedSample{}, err
			}
			bound := upperBound(inst)
			if bound == 0 {
				return boundedSample{}, nil
			}
			pG, err := runProfit(cfg, inst, core.NewSchedulerGP(core.Options{Params: core.MustParams(1)}), rational.One(), nil)
			if err != nil {
				return boundedSample{}, err
			}
			pGW, err := runProfit(cfg, inst, core.NewSchedulerGP(core.Options{Params: core.MustParams(1), WorkConserving: true}), rational.One(), nil)
			if err != nil {
				return boundedSample{}, err
			}
			pS, err := runProfit(cfg, inst, freshS(1), rational.One(), nil)
			if err != nil {
				return boundedSample{}, err
			}
			pE, err := runProfit(cfg, inst, &baselines.ListScheduler{Order: baselines.OrderEDF}, rational.One(), nil)
			if err != nil {
				return boundedSample{}, err
			}
			return boundedSample{bound: bound, profits: []float64{pG, pGW, pS, pE}}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("THM3: general profit functions (m=8)",
		"profit-kind", "load", "GP/UB", "GP+wc/UB", "S(step-at-support)/UB", "EDF/UB")
	for ki, kind := range kinds {
		for li, load := range loads {
			var rg, rgw, rs, re metrics.Series
			for seed := 0; seed < cfg.seeds(); seed++ {
				smp := cells[(ki*len(loads)+li)*cfg.seeds()+seed]
				if smp.bound == 0 {
					continue
				}
				rg.Add(smp.profits[0] / smp.bound)
				rgw.Add(smp.profits[1] / smp.bound)
				rs.Add(smp.profits[2] / smp.bound)
				re.Add(smp.profits[3] / smp.bound)
			}
			tb.AddRow(kind.String(), load, ratioCell(&rg), ratioCell(&rgw), ratioCell(&rs), ratioCell(&re))
		}
	}
	return []*metrics.Table{tb}, nil
}

// assertPositive is a helper for suite smoke tests.
func assertPositive(v float64, what string) error {
	if !(v > 0) {
		return fmt.Errorf("experiments: %s = %v, want > 0", what, v)
	}
	return nil
}
