package experiments

import (
	"fmt"

	"dagsched/internal/baselines"
	"dagsched/internal/core"
	"dagsched/internal/metrics"
	"dagsched/internal/rational"
	"dagsched/internal/workload"
)

// RunTHM2 measures the empirical competitive ratio of scheduler S when every
// deadline satisfies the Theorem 2 condition D ≥ (1+ε)((W−L)/m + L): the
// ratio UB(OPT)/profit(S) stays bounded and sits orders of magnitude below
// the O(1/ε⁶) analysis constant. EDF is shown for scale: on stochastic
// (non-adversarial) workloads it is competitive too — the regimes where S's
// guarantee separates from heuristics are exercised by the ADV experiment.
func RunTHM2(cfg Config) ([]*metrics.Table, error) {
	epsList := []float64{0.25, 0.5, 1, 2}
	if cfg.Quick {
		epsList = []float64{0.5, 1}
	}
	tb := metrics.NewTable("THM2: competitive ratio of S vs OPT upper bound (load 1.5, m=8)",
		"eps", "profit(S)", "UB(OPT)", "ratio(S)", "ratio(EDF)", "paper-const")
	for _, eps := range epsList {
		var rs, re, ps, ub metrics.Series
		for seed := 0; seed < cfg.seeds(); seed++ {
			inst, err := workload.Generate(workload.Config{
				Seed: int64(100 + seed), N: cfg.jobs(), M: 8,
				Eps: eps, SlackSpread: 0.3, Load: 1.5, Scale: 2,
			})
			if err != nil {
				return nil, err
			}
			bound := upperBound(inst)
			pS, err := runProfit(inst, freshS(eps), rational.One(), nil)
			if err != nil {
				return nil, err
			}
			pE, err := runProfit(inst, &baselines.ListScheduler{Order: baselines.OrderEDF}, rational.One(), nil)
			if err != nil {
				return nil, err
			}
			ps.Add(pS)
			ub.Add(bound)
			if pS > 0 {
				rs.Add(bound / pS)
			}
			if pE > 0 {
				re.Add(bound / pE)
			}
		}
		tb.AddRow(eps, ps.Mean(), ub.Mean(), ratioCell(&rs), ratioCell(&re),
			core.MustParams(eps).CompetitiveBound())
	}
	return []*metrics.Table{tb}, nil
}

// RunCOR1 sweeps machine speed on nearly-tight deadlines (no slack
// assumption): profit(S at speed s) / UB(OPT at speed 1) rises to a constant
// fraction by s = 2+ε, matching Corollary 1.
func RunCOR1(cfg Config) ([]*metrics.Table, error) {
	speeds := []rational.Rat{
		rational.One(), rational.New(3, 2), rational.New(2, 1),
		rational.New(5, 2), rational.New(3, 1),
	}
	tb := metrics.NewTable("COR1: speed sweep on tight deadlines (eps_D = 0.02, load 1.2, m=8)",
		"speed", "profit(S)/UB", "profit(EDF)/UB")
	for _, s := range speeds {
		var rs, re metrics.Series
		for seed := 0; seed < cfg.seeds(); seed++ {
			inst, err := workload.Generate(workload.Config{
				Seed: int64(200 + seed), N: cfg.jobs(), M: 8,
				Eps: 0.02, SlackSpread: 0.1, Load: 1.2, Scale: 2,
			})
			if err != nil {
				return nil, err
			}
			bound := upperBound(inst)
			if bound == 0 {
				continue
			}
			pS, err := runProfit(inst, freshS(0.5), s, nil)
			if err != nil {
				return nil, err
			}
			pE, err := runProfit(inst, &baselines.ListScheduler{Order: baselines.OrderEDF}, s, nil)
			if err != nil {
				return nil, err
			}
			rs.Add(pS / bound)
			re.Add(pE / bound)
		}
		tb.AddRow(s.String(), ratioCell(&rs), ratioCell(&re))
	}
	return []*metrics.Table{tb}, nil
}

// RunCOR2 checks the "reasonable jobs" corollary: when deadlines satisfy
// (W−L)/m + L ≤ D (epsilon-free), speed 1+ε already yields a constant
// fraction of the OPT bound.
func RunCOR2(cfg Config) ([]*metrics.Table, error) {
	type cell struct {
		eps   float64
		speed rational.Rat
	}
	cells := []cell{
		{0.25, rational.New(5, 4)},
		{0.5, rational.New(3, 2)},
		{1, rational.New(2, 1)},
	}
	tb := metrics.NewTable("COR2: (1+eps)-speed on reasonable deadlines (eps_D = 0.02, load 1.2, m=8)",
		"eps", "speed", "profit(S)/UB")
	for _, c := range cells {
		var rs metrics.Series
		for seed := 0; seed < cfg.seeds(); seed++ {
			inst, err := workload.Generate(workload.Config{
				Seed: int64(300 + seed), N: cfg.jobs(), M: 8,
				Eps: 0.02, SlackSpread: 0.2, Load: 1.2, Scale: 2,
			})
			if err != nil {
				return nil, err
			}
			bound := upperBound(inst)
			if bound == 0 {
				continue
			}
			pS, err := runProfit(inst, freshS(c.eps), c.speed, nil)
			if err != nil {
				return nil, err
			}
			rs.Add(pS / bound)
		}
		tb.AddRow(c.eps, c.speed.String(), ratioCell(&rs))
	}
	return []*metrics.Table{tb}, nil
}

// RunTHM3 evaluates the general-profit scheduler on decaying profit
// functions satisfying the flat-prefix assumption, against the OPT bound and
// against scheduler S naively applied with the support end as its deadline
// (which misjudges densities once profits decay).
func RunTHM3(cfg Config) ([]*metrics.Table, error) {
	kinds := []workload.ProfitKind{workload.ProfitLinear, workload.ProfitExp}
	loads := []float64{1, 2}
	if cfg.Quick {
		loads = []float64{1.5}
	}
	tb := metrics.NewTable("THM3: general profit functions (m=8)",
		"profit-kind", "load", "GP/UB", "GP+wc/UB", "S(step-at-support)/UB", "EDF/UB")
	for _, kind := range kinds {
		for _, load := range loads {
			var rg, rgw, rs, re metrics.Series
			for seed := 0; seed < cfg.seeds(); seed++ {
				inst, err := workload.Generate(workload.Config{
					Seed: int64(400 + seed), N: cfg.jobs(), M: 8,
					Eps: 1, SlackSpread: 0.3, Load: load, Scale: 2,
					Profit: kind,
				})
				if err != nil {
					return nil, err
				}
				bound := upperBound(inst)
				if bound == 0 {
					continue
				}
				pG, err := runProfit(inst, core.NewSchedulerGP(core.Options{Params: core.MustParams(1)}), rational.One(), nil)
				if err != nil {
					return nil, err
				}
				pGW, err := runProfit(inst, core.NewSchedulerGP(core.Options{Params: core.MustParams(1), WorkConserving: true}), rational.One(), nil)
				if err != nil {
					return nil, err
				}
				pS, err := runProfit(inst, freshS(1), rational.One(), nil)
				if err != nil {
					return nil, err
				}
				pE, err := runProfit(inst, &baselines.ListScheduler{Order: baselines.OrderEDF}, rational.One(), nil)
				if err != nil {
					return nil, err
				}
				rg.Add(pG / bound)
				rgw.Add(pGW / bound)
				rs.Add(pS / bound)
				re.Add(pE / bound)
			}
			tb.AddRow(kind.String(), load, ratioCell(&rg), ratioCell(&rgw), ratioCell(&rs), ratioCell(&re))
		}
	}
	return []*metrics.Table{tb}, nil
}

// assertPositive is a helper for suite smoke tests.
func assertPositive(v float64, what string) error {
	if !(v > 0) {
		return fmt.Errorf("experiments: %s = %v, want > 0", what, v)
	}
	return nil
}
