package experiments

import (
	"fmt"

	"dagsched/internal/baselines"
	"dagsched/internal/dag"
	"dagsched/internal/metrics"
	"dagsched/internal/profit"
	"dagsched/internal/rational"
	"dagsched/internal/sim"
	"dagsched/internal/workload"
)

// figure1Scaled builds the Figure 1 DAG with chainNodes chain nodes and
// (m−1)·chainNodes block nodes, each of the given work, so W = m·L exactly
// and node granularity divides speed-scaled work evenly.
func figure1Scaled(m, chainNodes int, work int64) *dag.DAG {
	b := dag.NewBuilder()
	prev := b.AddNode(work)
	for i := 1; i < chainNodes; i++ {
		v := b.AddNode(work)
		b.AddEdge(prev, v)
		prev = v
	}
	for i := 0; i < (m-1)*chainNodes; i++ {
		b.AddNode(work)
	}
	return b.MustBuild()
}

// completionOn runs a single job alone on m processors under the policy and
// returns its completion time (or 0 if it never completed).
func completionOn(g *dag.DAG, m int, pol dag.PickPolicy, speed rational.Rat) (int64, error) {
	fn, err := profit.NewStep(1, g.TotalWork()+g.Span()+10)
	if err != nil {
		return 0, err
	}
	job := &sim.Job{ID: 1, Graph: g, Release: 0, Profit: fn}
	res, err := sim.Run(sim.Config{M: m, Speed: speed, Policy: pol},
		[]*sim.Job{job}, &baselines.ListScheduler{Order: baselines.OrderFIFO})
	if err != nil {
		return 0, err
	}
	if res.Completed != 1 {
		return 0, fmt.Errorf("experiments: job did not complete")
	}
	return res.Jobs[0].CompletedAt, nil
}

// RunFIG1 reproduces Figure 1 / the Theorem 1 separation: on the Figure-1
// DAG, an unlucky semi-non-clairvoyant execution takes (W−L)/m + L while a
// clairvoyant one takes W/m = L, so the required speed ratio approaches
// 2 − 1/m.
func RunFIG1(cfg Config) ([]*metrics.Table, error) {
	ms := []int{2, 4, 8, 16, 32, 64}
	if cfg.Quick {
		ms = []int{2, 4, 8}
	}
	tb := metrics.NewTable("FIG1: Figure-1 DAG, single job on m processors",
		"m", "W", "L", "t(unlucky)", "t(clairvoyant)", "ratio", "2-1/m")
	for _, m := range ms {
		L := int64(4 * m) // m | L → exact block waves
		g := dag.Figure1(m, L)
		tu, err := completionOn(g, m, dag.Unlucky{}, rational.One())
		if err != nil {
			return nil, err
		}
		tc, err := completionOn(g, m, dag.CriticalPathFirst{}, rational.One())
		if err != nil {
			return nil, err
		}
		tb.AddRow(m, g.TotalWork(), g.Span(), tu, tc,
			float64(tu)/float64(tc), 2-1/float64(m))
	}
	return []*metrics.Table{tb}, nil
}

// RunFIG2 reproduces Figure 2: a chain followed by a parallel block. Even
// the clairvoyant policy needs ≈ (W−L)/m + L − w(1−1/m) where w is the node
// granularity, approaching (W−L)/m + L as w shrinks — justifying the
// deadline assumption of Corollary 2.
func RunFIG2(cfg Config) ([]*metrics.Table, error) {
	const m = 4
	W, L := int64(64), int64(16)
	if !cfg.Quick {
		W, L = 256, 64
	}
	tb := metrics.NewTable(
		fmt.Sprintf("FIG2: chain-then-block, W=%d L=%d on m=%d, clairvoyant policy", W, L, m),
		"node-work", "t(measured)", "(W-L)/m+L", "formula", "W/m")
	for _, w := range []int64{8, 4, 2, 1} {
		chainNodes := int((L - w) / w)
		blockNodes := int((W - L + w) / w)
		b := dag.NewBuilder()
		prev := b.AddNode(w)
		for i := 1; i < chainNodes; i++ {
			v := b.AddNode(w)
			b.AddEdge(prev, v)
			prev = v
		}
		for i := 0; i < blockNodes; i++ {
			v := b.AddNode(w)
			b.AddEdge(prev, v)
		}
		g := b.MustBuild()
		tc, err := completionOn(g, m, dag.CriticalPathFirst{}, rational.One())
		if err != nil {
			return nil, err
		}
		ideal := float64(W-L)/m + float64(L)
		formula := ideal - float64(w)*(1-1.0/m)
		tb.AddRow(w, tc, ideal, formula, float64(W)/m)
	}
	return []*metrics.Table{tb}, nil
}

// RunTHM1 reproduces Theorem 1 as a throughput experiment: Figure-1 jobs
// with deadline D = L = W/m. An unlucky semi-non-clairvoyant execution earns
// nothing below speed 2 − 1/m and everything at it; a clairvoyant execution
// earns everything already at speed 1.
func RunTHM1(cfg Config) ([]*metrics.Table, error) {
	const m = 4
	const chainNodes = 4
	const nodeWork = 420 // divisible by the q of every speed below
	count := 3
	if cfg.Quick {
		count = 2
	}
	g := figure1Scaled(m, chainNodes, nodeWork)
	L := g.Span()
	speeds := []rational.Rat{
		rational.One(),
		rational.New(5, 4),
		rational.New(3, 2),
		rational.New(7, 4), // = 2 − 1/m for m = 4
		rational.New(2, 1),
	}
	tb := metrics.NewTable(
		fmt.Sprintf("THM1: %d Figure-1 jobs, W=%d L=D=%d, m=%d (threshold 2-1/m = 7/4)", count, g.TotalWork(), L, m),
		"speed", "profit(unlucky)/offered", "profit(clairvoyant)/offered")
	for _, s := range speeds {
		inst := &workload.Instance{Name: "thm1", M: m}
		for i := 0; i < count; i++ {
			fn, err := profit.NewStep(1, L)
			if err != nil {
				return nil, err
			}
			inst.Jobs = append(inst.Jobs, &sim.Job{ID: i, Graph: g, Release: int64(i) * L, Profit: fn})
		}
		row := []any{s.String()}
		for _, pol := range []dag.PickPolicy{dag.Unlucky{}, dag.CriticalPathFirst{}} {
			res, err := sim.Run(sim.Config{M: m, Speed: s, Policy: pol},
				inst.Jobs, &baselines.ListScheduler{Order: baselines.OrderEDF})
			if err != nil {
				return nil, err
			}
			row = append(row, res.TotalProfit/res.OfferedProfit)
		}
		tb.AddRow(row...)
	}
	return []*metrics.Table{tb}, nil
}
