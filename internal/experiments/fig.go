package experiments

import (
	"context"
	"fmt"

	"dagsched/internal/baselines"
	"dagsched/internal/dag"
	"dagsched/internal/metrics"
	"dagsched/internal/profit"
	"dagsched/internal/rational"
	"dagsched/internal/runner"
	"dagsched/internal/sim"
	"dagsched/internal/workload"
)

// figure1Scaled builds the Figure 1 DAG with chainNodes chain nodes and
// (m−1)·chainNodes block nodes, each of the given work, so W = m·L exactly
// and node granularity divides speed-scaled work evenly.
func figure1Scaled(m, chainNodes int, work int64) *dag.DAG {
	b := dag.NewBuilder()
	prev := b.AddNode(work)
	for i := 1; i < chainNodes; i++ {
		v := b.AddNode(work)
		b.AddEdge(prev, v)
		prev = v
	}
	for i := 0; i < (m-1)*chainNodes; i++ {
		b.AddNode(work)
	}
	return b.MustBuild()
}

// completionOn runs a single job alone on m processors under the policy and
// returns its completion time (or 0 if it never completed).
func completionOn(cfg Config, g *dag.DAG, m int, pol dag.PickPolicy, speed rational.Rat) (int64, error) {
	fn, err := profit.NewStep(1, g.TotalWork()+g.Span()+10)
	if err != nil {
		return 0, err
	}
	job := &sim.Job{ID: 1, Graph: g, Release: 0, Profit: fn}
	res, err := runSim(cfg, sim.Config{M: m, Speed: speed, Policy: pol},
		[]*sim.Job{job}, &baselines.ListScheduler{Order: baselines.OrderFIFO})
	if err != nil {
		return 0, err
	}
	if res.Completed != 1 {
		return 0, fmt.Errorf("experiments: job did not complete")
	}
	return res.Jobs[0].CompletedAt, nil
}

// RunFIG1 reproduces Figure 1 / the Theorem 1 separation: on the Figure-1
// DAG, an unlucky semi-non-clairvoyant execution takes (W−L)/m + L while a
// clairvoyant one takes W/m = L, so the required speed ratio approaches
// 2 − 1/m.
func RunFIG1(cfg Config) ([]*metrics.Table, error) {
	ms := []int{2, 4, 8, 16, 32, 64}
	if cfg.Quick {
		ms = []int{2, 4, 8}
	}
	policies := []dag.PickPolicy{dag.Unlucky{}, dag.CriticalPathFirst{}}
	type sample struct{ w, l, t int64 }
	cells, err := runGrid(cfg, runner.Grid[sample]{
		Name: "FIG1",
		Axes: []runner.Axis{{Name: "m", Size: len(ms)}, {Name: "policy", Size: len(policies)}},
		Cell: func(_ context.Context, c runner.Cell) (sample, error) {
			m := ms[c.At(0)]
			L := int64(4 * m) // m | L → exact block waves
			g := dag.Figure1(m, L)
			t, err := completionOn(cfg, g, m, policies[c.At(1)], rational.One())
			if err != nil {
				return sample{}, err
			}
			return sample{w: g.TotalWork(), l: g.Span(), t: t}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("FIG1: Figure-1 DAG, single job on m processors",
		"m", "W", "L", "t(unlucky)", "t(clairvoyant)", "ratio", "2-1/m")
	for i, m := range ms {
		tu := cells[i*len(policies)]   // Unlucky
		tc := cells[i*len(policies)+1] // CriticalPathFirst
		tb.AddRow(m, tu.w, tu.l, tu.t, tc.t,
			float64(tu.t)/float64(tc.t), 2-1/float64(m))
	}
	return []*metrics.Table{tb}, nil
}

// RunFIG2 reproduces Figure 2: a chain followed by a parallel block. Even
// the clairvoyant policy needs ≈ (W−L)/m + L − w(1−1/m) where w is the node
// granularity, approaching (W−L)/m + L as w shrinks — justifying the
// deadline assumption of Corollary 2.
func RunFIG2(cfg Config) ([]*metrics.Table, error) {
	const m = 4
	W, L := int64(64), int64(16)
	if !cfg.Quick {
		W, L = 256, 64
	}
	works := []int64{8, 4, 2, 1}
	cells, err := runGrid(cfg, runner.Grid[int64]{
		Name: "FIG2",
		Axes: []runner.Axis{{Name: "node-work", Size: len(works)}},
		Cell: func(_ context.Context, c runner.Cell) (int64, error) {
			w := works[c.At(0)]
			chainNodes := int((L - w) / w)
			blockNodes := int((W - L + w) / w)
			b := dag.NewBuilder()
			prev := b.AddNode(w)
			for i := 1; i < chainNodes; i++ {
				v := b.AddNode(w)
				b.AddEdge(prev, v)
				prev = v
			}
			for i := 0; i < blockNodes; i++ {
				v := b.AddNode(w)
				b.AddEdge(prev, v)
			}
			return completionOn(cfg, b.MustBuild(), m, dag.CriticalPathFirst{}, rational.One())
		},
	})
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable(
		fmt.Sprintf("FIG2: chain-then-block, W=%d L=%d on m=%d, clairvoyant policy", W, L, m),
		"node-work", "t(measured)", "(W-L)/m+L", "formula", "W/m")
	for i, w := range works {
		ideal := float64(W-L)/m + float64(L)
		formula := ideal - float64(w)*(1-1.0/m)
		tb.AddRow(w, cells[i], ideal, formula, float64(W)/m)
	}
	return []*metrics.Table{tb}, nil
}

// RunTHM1 reproduces Theorem 1 as a throughput experiment: Figure-1 jobs
// with deadline D = L = W/m. An unlucky semi-non-clairvoyant execution earns
// nothing below speed 2 − 1/m and everything at it; a clairvoyant execution
// earns everything already at speed 1.
func RunTHM1(cfg Config) ([]*metrics.Table, error) {
	const m = 4
	const chainNodes = 4
	const nodeWork = 420 // divisible by the q of every speed below
	count := 3
	if cfg.Quick {
		count = 2
	}
	g := figure1Scaled(m, chainNodes, nodeWork)
	L := g.Span()
	speeds := []rational.Rat{
		rational.One(),
		rational.New(5, 4),
		rational.New(3, 2),
		rational.New(7, 4), // = 2 − 1/m for m = 4
		rational.New(2, 1),
	}
	policies := []dag.PickPolicy{dag.Unlucky{}, dag.CriticalPathFirst{}}
	cells, err := runGrid(cfg, runner.Grid[float64]{
		Name: "THM1",
		Axes: []runner.Axis{{Name: "speed", Size: len(speeds)}, {Name: "policy", Size: len(policies)}},
		Cell: func(_ context.Context, c runner.Cell) (float64, error) {
			inst := &workload.Instance{Name: "thm1", M: m}
			for i := 0; i < count; i++ {
				fn, err := profit.NewStep(1, L)
				if err != nil {
					return 0, err
				}
				inst.Jobs = append(inst.Jobs, &sim.Job{ID: i, Graph: g, Release: int64(i) * L, Profit: fn})
			}
			res, err := runSim(cfg, sim.Config{M: m, Speed: speeds[c.At(0)], Policy: policies[c.At(1)]},
				inst.Jobs, &baselines.ListScheduler{Order: baselines.OrderEDF})
			if err != nil {
				return 0, err
			}
			return res.TotalProfit / res.OfferedProfit, nil
		},
	})
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable(
		fmt.Sprintf("THM1: %d Figure-1 jobs, W=%d L=D=%d, m=%d (threshold 2-1/m = 7/4)", count, g.TotalWork(), L, m),
		"speed", "profit(unlucky)/offered", "profit(clairvoyant)/offered")
	for i, s := range speeds {
		tb.AddRow(s.String(), cells[i*len(policies)], cells[i*len(policies)+1])
	}
	return []*metrics.Table{tb}, nil
}
