package experiments

import (
	"dagsched/internal/metrics"
	"dagsched/internal/rational"
	"dagsched/internal/workload"
)

// RunHPCW evaluates the schedulers on HPC kernel task graphs — tiled
// Cholesky, stencil wavefronts, FFT butterflies, and reductions — whose
// parallelism profiles are irregular (Cholesky widens then collapses;
// wavefronts ramp along anti-diagonals). This is the workload family the
// DAG model exists for; the BASE conclusions carry over, with the fixed
// allotment hurting most on Cholesky's varying width.
func RunHPCW(cfg Config) ([]*metrics.Table, error) {
	loads := []float64{1, 2}
	if cfg.Quick {
		loads = []float64{1.5}
	}
	roster := schedulerRoster()
	names := make([]string, 0, len(roster))
	for _, mk := range roster {
		names = append(names, mk().Name())
	}
	tb := metrics.NewTable("HPCW: profit/UB on HPC kernel mixes (m=8, eps_D = 1)",
		append([]string{"load"}, names...)...)
	for _, load := range loads {
		series := make([]metrics.Series, len(roster))
		for seed := 0; seed < cfg.seeds(); seed++ {
			inst, err := workload.Generate(workload.Config{
				Seed: int64(1500 + seed), N: cfg.jobs(), M: 8,
				Eps: 1, SlackSpread: 0.4, Load: load, Scale: 2,
				Shapes: workload.HPCMix(),
			})
			if err != nil {
				return nil, err
			}
			bound := upperBound(inst)
			if bound == 0 {
				continue
			}
			for i, mk := range roster {
				p, err := runProfit(inst, mk(), rational.One(), nil)
				if err != nil {
					return nil, err
				}
				series[i].Add(p / bound)
			}
		}
		row := []any{load}
		for i := range series {
			row = append(row, series[i].Mean())
		}
		tb.AddRow(row...)
	}
	return []*metrics.Table{tb}, nil
}
