package experiments

import (
	"context"

	"dagsched/internal/metrics"
	"dagsched/internal/rational"
	"dagsched/internal/runner"
	"dagsched/internal/workload"
)

// RunHPCW evaluates the schedulers on HPC kernel task graphs — tiled
// Cholesky, stencil wavefronts, FFT butterflies, and reductions — whose
// parallelism profiles are irregular (Cholesky widens then collapses;
// wavefronts ramp along anti-diagonals). This is the workload family the
// DAG model exists for; the BASE conclusions carry over, with the fixed
// allotment hurting most on Cholesky's varying width.
func RunHPCW(cfg Config) ([]*metrics.Table, error) {
	loads := []float64{1, 2}
	if cfg.Quick {
		loads = []float64{1.5}
	}
	roster := schedulerRoster()
	cells, err := runGrid(cfg, runner.Grid[boundedSample]{
		Name: "HPCW",
		Axes: []runner.Axis{{Name: "load", Size: len(loads)}, seedAxis(cfg)},
		Cell: func(_ context.Context, c runner.Cell) (boundedSample, error) {
			load, seed := loads[c.At(0)], c.At(1)
			inst, err := workload.Generate(workload.Config{
				Seed: int64(1500 + seed), N: cfg.jobs(), M: 8,
				Eps: 1, SlackSpread: 0.4, Load: load, Scale: 2,
				Shapes: workload.HPCMix(),
			})
			if err != nil {
				return boundedSample{}, err
			}
			bound := upperBound(inst)
			if bound == 0 {
				return boundedSample{}, nil
			}
			profits := make([]float64, len(roster))
			for i, mk := range roster {
				p, err := runProfit(cfg, inst, mk(), rational.One(), nil)
				if err != nil {
					return boundedSample{}, err
				}
				profits[i] = p
			}
			return boundedSample{bound: bound, profits: profits}, nil
		},
	})
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(roster))
	for _, mk := range roster {
		names = append(names, mk().Name())
	}
	tb := metrics.NewTable("HPCW: profit/UB on HPC kernel mixes (m=8, eps_D = 1)",
		append([]string{"load"}, names...)...)
	for li, load := range loads {
		series := make([]metrics.Series, len(roster))
		for seed := 0; seed < cfg.seeds(); seed++ {
			smp := cells[li*cfg.seeds()+seed]
			if smp.bound == 0 {
				continue
			}
			for i := range roster {
				series[i].Add(smp.profits[i] / smp.bound)
			}
		}
		row := []any{load}
		for i := range series {
			row = append(row, series[i].Mean())
		}
		tb.AddRow(row...)
	}
	return []*metrics.Table{tb}, nil
}
