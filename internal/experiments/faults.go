package experiments

import (
	"context"

	"dagsched/internal/baselines"
	"dagsched/internal/core"
	"dagsched/internal/faults"
	"dagsched/internal/metrics"
	"dagsched/internal/rational"
	"dagsched/internal/runner"
	"dagsched/internal/sim"
	"dagsched/internal/workload"
)

// faultLevel is one point of the degradation curve.
type faultLevel struct {
	name string
	cfg  *faults.Config // nil = fault-free
}

// faultLevels are the injection intensities of the degradation curve. Rates
// are per-tick (crash) and per-processor (MTBF/straggler); Seed is filled per
// trial.
func faultLevels() []faultLevel {
	return []faultLevel{
		{"none", nil},
		{"light", &faults.Config{MTBF: 120, MTTR: 15, CrashRate: 0.005, StragglerFrac: 0.1, StragglerSlow: 2}},
		{"medium", &faults.Config{MTBF: 60, MTTR: 20, CrashRate: 0.02, StragglerFrac: 0.2, StragglerSlow: 3}},
		{"heavy", &faults.Config{MTBF: 30, MTTR: 15, CrashRate: 0.05, StragglerFrac: 0.3, StragglerSlow: 4}},
	}
}

// faultsRoster pairs each scheduler with its resilient variant where one
// exists.
func faultsRoster() []func() sim.Scheduler {
	return []func() sim.Scheduler{
		func() sim.Scheduler { return freshS(1) },
		func() sim.Scheduler {
			return core.NewSchedulerS(core.Options{Params: core.MustParams(1), Resilient: true})
		},
		func() sim.Scheduler {
			return &baselines.ListScheduler{Order: baselines.OrderEDF, AbandonHopeless: true}
		},
		func() sim.Scheduler {
			return &baselines.ListScheduler{Order: baselines.OrderEDF, AbandonHopeless: true, Resilient: true}
		},
		func() sim.Scheduler { return &baselines.ListScheduler{Order: baselines.OrderHDF} },
		func() sim.Scheduler { return &baselines.Federated{} },
		func() sim.Scheduler { return &baselines.Federated{Resilient: true} },
	}
}

// RunFAULTS measures throughput degradation under deterministic fault
// injection: processor crash/repair cycles, per-node execution failures, and
// stragglers, at increasing intensity. Finding: absolute profit falls for
// every scheduler as faults intensify (the engine discards work and capacity),
// while the CapacityAware resilient variants recover part of the loss —
// re-partitioning allocations to the surviving processors, expiring jobs
// whose lost work cannot be re-executed in time, and re-admitting on
// recovery. The fault-free row doubles as a regression anchor: variants must
// match their plain counterparts exactly there.
func RunFAULTS(cfg Config) ([]*metrics.Table, error) {
	roster := faultsRoster()
	levels := faultLevels()
	type faultSample struct {
		bound   float64
		profits []float64       // profit/UB per roster scheduler
		stats   *sim.FaultStats // fault accounting from the resilient-S run
	}
	cells, err := runGrid(cfg, runner.Grid[faultSample]{
		Name: "FAULTS",
		Axes: []runner.Axis{{Name: "faults", Size: len(levels)}, seedAxis(cfg)},
		Cell: func(_ context.Context, c runner.Cell) (faultSample, error) {
			lv, seed := levels[c.At(0)], c.At(1)
			inst, err := workload.Generate(workload.Config{
				Seed: int64(4200 + seed), N: cfg.jobs(), M: 8,
				Eps: 1, SlackSpread: 0.5, Load: 1.5, Scale: 2,
			})
			if err != nil {
				return faultSample{}, err
			}
			bound := upperBound(inst)
			if bound == 0 {
				return faultSample{}, nil
			}
			var fc *faults.Config
			if lv.cfg != nil {
				fcv := *lv.cfg
				fcv.Seed = int64(seed) + 1
				fc = &fcv
			}
			smp := faultSample{bound: bound}
			for i, mk := range roster {
				res, err := runSim(cfg, sim.Config{M: inst.M, Speed: rational.One(), Faults: fc}, inst.Jobs, mk())
				if err != nil {
					return faultSample{}, err
				}
				smp.profits = append(smp.profits, res.TotalProfit/bound)
				// Fault accounting from the resilient-S runs (index 1).
				if i == 1 && res.Faults != nil {
					smp.stats = res.Faults
				}
			}
			return smp, nil
		},
	})
	if err != nil {
		return nil, err
	}

	names := make([]string, 0, len(roster))
	for _, mk := range roster {
		names = append(names, mk().Name())
	}
	profitTb := metrics.NewTable("FAULTS: profit/UB by fault level (m=8, load 1.5, eps_D = 1)",
		append([]string{"faults", "UB"}, names...)...)
	statsTb := metrics.NewTable("FAULTS: injected-fault accounting per run (means over seeds, resilient S)",
		"faults", "degraded ticks", "crash events", "down proc-ticks", "straggle proc-ticks", "retries", "lost work")

	for li, lv := range levels {
		series := make([]metrics.Series, len(roster))
		var ub metrics.Series
		var degraded, crashes, down, straggle, retries, lost metrics.Series
		for seed := 0; seed < cfg.seeds(); seed++ {
			smp := cells[li*cfg.seeds()+seed]
			if smp.bound == 0 {
				continue
			}
			ub.Add(smp.bound)
			for i := range roster {
				series[i].Add(smp.profits[i])
			}
			if smp.stats != nil {
				degraded.Add(float64(smp.stats.DegradedTicks))
				crashes.Add(float64(smp.stats.CrashEvents))
				down.Add(float64(smp.stats.DownProcTicks))
				straggle.Add(float64(smp.stats.StraggleProcTicks))
				retries.Add(float64(smp.stats.Retries))
				lost.Add(float64(smp.stats.LostWork))
			}
		}
		row := []any{lv.name, ub.Mean()}
		for i := range series {
			row = append(row, series[i].Mean())
		}
		profitTb.AddRow(row...)
		if lv.cfg != nil {
			statsTb.AddRow(lv.name, degraded.Mean(), crashes.Mean(), down.Mean(),
				straggle.Mean(), retries.Mean(), lost.Mean())
		}
	}
	return []*metrics.Table{profitTb, statsTb}, nil
}
