// Package adversary searches for bad inputs: a randomized hill-climber that
// perturbs workload instances to maximize a target scheduler's empirical
// competitive ratio UB(OPT)/profit. The paper proves S's ratio is bounded by
// a constant whenever deadlines have slack; the miner probes how large the
// ratio can actually be driven for each scheduler — it rediscovers
// EDF-domino-style instances automatically and quantifies how much harder S
// is to attack (the MINE experiment).
//
// Only step (deadline) profits are mutated; the DAGs themselves are reused
// across mutations (they are immutable).
package adversary

import (
	"fmt"
	"math"
	"math/rand"

	"dagsched/internal/opt"
	"dagsched/internal/profit"
	"dagsched/internal/sim"
	"dagsched/internal/workload"
)

// Config parameterizes Mine.
type Config struct {
	// Seed drives all mutation randomness.
	Seed int64
	// Iterations is the number of candidate mutations to try.
	Iterations int
	// Scheduler builds a fresh instance of the target algorithm per run.
	Scheduler func() sim.Scheduler
	// MaxJobs caps instance growth under duplication mutations.
	MaxJobs int
	// MinSlack, when positive, constrains the deadline-tightening mutation
	// to preserve the Theorem 2 condition D ≥ (1+MinSlack)((W−L)/m + L):
	// the adversary must play by the theorem's rules. Zero allows
	// tightening all the way to the span (the regime Theorem 1 shows is
	// hopeless without speed augmentation).
	MinSlack float64
}

// Result reports the mined instance and its ratio trajectory.
type Result struct {
	Instance   *workload.Instance
	StartRatio float64
	Ratio      float64   // final UB/profit (math.Inf(1) when profit hit zero)
	History    []float64 // accepted ratios, non-decreasing
	Accepted   int       // mutations that improved the ratio
}

// Mine hill-climbs from the start instance. It returns an error for invalid
// configuration or an unusable start instance.
func Mine(cfg Config, start *workload.Instance) (*Result, error) {
	if cfg.Iterations < 1 {
		return nil, fmt.Errorf("adversary: Iterations = %d", cfg.Iterations)
	}
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("adversary: nil Scheduler factory")
	}
	if err := start.Validate(); err != nil {
		return nil, err
	}
	maxJobs := cfg.MaxJobs
	if maxJobs <= 0 {
		maxJobs = 2 * len(start.Jobs)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	cur := cloneInstance(start)
	curRatio, err := ratio(cfg, cur)
	if err != nil {
		return nil, err
	}
	res := &Result{Instance: cur, StartRatio: curRatio, Ratio: curRatio, History: []float64{curRatio}}
	for it := 0; it < cfg.Iterations; it++ {
		cand := cloneInstance(cur)
		if !mutate(rng, cand, maxJobs, cfg.MinSlack) {
			continue
		}
		if cand.Validate() != nil {
			continue
		}
		r, err := ratio(cfg, cand)
		if err != nil {
			continue // mutation produced an instance the scheduler rejects; skip
		}
		if r > curRatio {
			cur, curRatio = cand, r
			res.Accepted++
			res.History = append(res.History, r)
			if math.IsInf(r, 1) {
				break // profit driven to zero with positive UB: maximal gap
			}
		}
	}
	res.Instance = cur
	res.Ratio = curRatio
	return res, nil
}

// ratio computes UB/profit for the target scheduler on inst. Instances
// where the bound itself is zero yield ratio 0 (useless for the adversary).
func ratio(cfg Config, inst *workload.Instance) (float64, error) {
	ub := opt.IntervalKnapsackBound(opt.TasksFromJobs(inst.Jobs, inst.M, 1), inst.M, 1)
	if ub <= 0 {
		return 0, nil
	}
	res, err := sim.RunAuto(sim.Config{M: inst.M}, inst.Jobs, cfg.Scheduler())
	if err != nil {
		return 0, err
	}
	if res.TotalProfit == 0 {
		return math.Inf(1), nil
	}
	return ub / res.TotalProfit, nil
}

// mutate applies one random perturbation in place; false means the chosen
// mutation was inapplicable this round.
func mutate(rng *rand.Rand, inst *workload.Instance, maxJobs int, minSlack float64) bool {
	if len(inst.Jobs) == 0 {
		return false
	}
	i := rng.Intn(len(inst.Jobs))
	j := inst.Jobs[i]
	fn, ok := j.Profit.(profit.Step)
	if !ok {
		return false
	}
	switch rng.Intn(5) {
	case 0: // tighten the deadline (toward, but not below, the floor)
		floor := j.Graph.Span()
		if minSlack > 0 {
			w, l := float64(j.Graph.TotalWork()), float64(j.Graph.Span())
			cond := int64(math.Ceil((1 + minSlack) * ((w-l)/float64(inst.M) + l)))
			if cond > floor {
				floor = cond
			}
		}
		if fn.Deadline <= floor {
			return false
		}
		nd := floor + rng.Int63n(fn.Deadline-floor)
		nf, err := profit.NewStep(fn.Value, nd)
		if err != nil {
			return false
		}
		j.Profit = nf
	case 1: // rescale the profit
		factor := []float64{0.5, 2, 4}[rng.Intn(3)]
		nf, err := profit.NewStep(fn.Value*factor, fn.Deadline)
		if err != nil {
			return false
		}
		j.Profit = nf
	case 2: // shift the release
		shift := rng.Int63n(2*fn.Deadline+2) - fn.Deadline
		nr := j.Release + shift
		if nr < 0 {
			nr = 0
		}
		j.Release = nr
	case 3: // duplicate with a nearby release
		if len(inst.Jobs) >= maxJobs {
			return false
		}
		maxID := 0
		for _, x := range inst.Jobs {
			if x.ID > maxID {
				maxID = x.ID
			}
		}
		dup := &sim.Job{ID: maxID + 1, Graph: j.Graph, Release: j.Release + rng.Int63n(fn.Deadline+1), Profit: j.Profit}
		inst.Jobs = append(inst.Jobs, dup)
	default: // delete
		if len(inst.Jobs) <= 2 {
			return false
		}
		inst.Jobs = append(inst.Jobs[:i], inst.Jobs[i+1:]...)
	}
	return true
}

// cloneInstance deep-copies the mutable parts of an instance (jobs reuse
// the immutable graphs and profit values).
func cloneInstance(in *workload.Instance) *workload.Instance {
	out := &workload.Instance{Name: in.Name, M: in.M, Seed: in.Seed}
	out.Jobs = make([]*sim.Job, len(in.Jobs))
	for i, j := range in.Jobs {
		cp := *j
		out.Jobs[i] = &cp
	}
	return out
}

// Baseline convenience: ratio of a scheduler on an untouched instance.
func Ratio(inst *workload.Instance, mk func() sim.Scheduler) (float64, error) {
	return ratio(Config{Scheduler: mk}, inst)
}
