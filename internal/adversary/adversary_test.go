package adversary

import (
	"math"
	"testing"

	"dagsched/internal/baselines"
	"dagsched/internal/core"
	"dagsched/internal/sim"
	"dagsched/internal/workload"
)

func startInstance(t *testing.T) *workload.Instance {
	t.Helper()
	inst, err := workload.Generate(workload.Config{
		Seed: 9, N: 12, M: 4, Eps: 1, SlackSpread: 0.4, Load: 1.5, Scale: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func edf() sim.Scheduler { return &baselines.ListScheduler{Order: baselines.OrderEDF} }

func paperS() sim.Scheduler { return core.NewSchedulerS(core.Options{Params: core.MustParams(1)}) }

func TestMineImprovesRatioMonotonically(t *testing.T) {
	res, err := Mine(Config{Seed: 1, Iterations: 80, Scheduler: edf}, startInstance(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio < res.StartRatio {
		t.Errorf("final ratio %v below start %v", res.Ratio, res.StartRatio)
	}
	prev := 0.0
	for _, r := range res.History {
		if r < prev {
			t.Fatalf("history not non-decreasing: %v", res.History)
		}
		prev = r
	}
	if err := res.Instance.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMineFindsWorseInstancesForEDF(t *testing.T) {
	res, err := Mine(Config{Seed: 2, Iterations: 150, Scheduler: edf}, startInstance(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted == 0 {
		t.Error("miner accepted no improving mutation in 150 tries (suspicious)")
	}
	if !(res.Ratio > res.StartRatio) && !math.IsInf(res.Ratio, 1) {
		t.Errorf("no improvement: start %v, final %v", res.StartRatio, res.Ratio)
	}
}

func TestMineDeterministic(t *testing.T) {
	a, err := Mine(Config{Seed: 3, Iterations: 40, Scheduler: paperS}, startInstance(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mine(Config{Seed: 3, Iterations: 40, Scheduler: paperS}, startInstance(t))
	if err != nil {
		t.Fatal(err)
	}
	if a.Ratio != b.Ratio || a.Accepted != b.Accepted {
		t.Errorf("not deterministic: (%v,%d) vs (%v,%d)", a.Ratio, a.Accepted, b.Ratio, b.Accepted)
	}
}

func TestMineDoesNotMutateStart(t *testing.T) {
	inst := startInstance(t)
	before := inst.TotalWork()
	nBefore := len(inst.Jobs)
	releases := make([]int64, nBefore)
	for i, j := range inst.Jobs {
		releases[i] = j.Release
	}
	if _, err := Mine(Config{Seed: 4, Iterations: 60, Scheduler: edf}, inst); err != nil {
		t.Fatal(err)
	}
	if inst.TotalWork() != before || len(inst.Jobs) != nBefore {
		t.Error("start instance mutated")
	}
	for i, j := range inst.Jobs {
		if j.Release != releases[i] {
			t.Fatalf("job %d release mutated", i)
		}
	}
}

func TestMineRejectsBadConfig(t *testing.T) {
	inst := startInstance(t)
	if _, err := Mine(Config{Iterations: 0, Scheduler: edf}, inst); err == nil {
		t.Error("accepted 0 iterations")
	}
	if _, err := Mine(Config{Iterations: 5}, inst); err == nil {
		t.Error("accepted nil scheduler")
	}
}

func TestRatioHelper(t *testing.T) {
	inst := startInstance(t)
	r, err := Ratio(inst, edf)
	if err != nil {
		t.Fatal(err)
	}
	if r < 1-1e-9 {
		t.Errorf("ratio %v below 1 (UB must dominate any schedule)", r)
	}
}

func TestMineSlackPreservingKeepsCondition(t *testing.T) {
	inst := startInstance(t)
	res, err := Mine(Config{Seed: 5, Iterations: 120, Scheduler: paperS, MinSlack: 1}, inst)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range res.Instance.Jobs {
		w := float64(j.Graph.TotalWork())
		l := float64(j.Graph.Span())
		minD := 2 * ((w-l)/float64(res.Instance.M) + l)
		if float64(j.RelDeadline()) < minD-1e-9 {
			t.Fatalf("job %d deadline %d violates the slack condition floor %v",
				j.ID, j.RelDeadline(), minD)
		}
	}
}
