package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// A request trace dissects one submission end to end: the HTTP layer stamps
// receipt and routing, the shard engine stamps dequeue, WAL append, and
// session commit, and the handler closes the trace when the response is
// written. Stages are ordered marks; the span between two consecutive marks
// is where that much of the request's latency went (the 14× wire-vs-engine
// gap is exactly the gap between "received" and "dequeued" plus the reply
// hop). trace.RequestSpans renders a ring snapshot as Perfetto tracks.

// Stage is one timestamped mark on a request's path. Canonical names, in
// order: received, routed, dequeued, wal_appended, committed, replied — a
// stage that did not happen (no WAL, rejected before commit) is absent.
type Stage struct {
	Name string
	At   time.Time
}

// ReqTrace is one completed request's trace.
type ReqTrace struct {
	ID       string // request ID (client-supplied X-Request-Id or generated)
	Shard    int    // shard the placer picked
	Route    string // placer decision: keyed, pressure, or spill
	JobID    int    // server-assigned ID (0 when rejected)
	Decision string // admission verdict
	Stages   []Stage
}

// TraceRing is a bounded, concurrency-safe ring of the most recent request
// traces. A nil ring ignores writes and snapshots empty, the zero-cost-when-
// disabled idiom of the telemetry layer.
type TraceRing struct {
	mu    sync.Mutex
	buf   []ReqTrace
	next  int
	total int64
}

// NewTraceRing returns a ring holding the n most recent traces (n ≥ 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{buf: make([]ReqTrace, 0, n)}
}

// Add deposits one completed trace, evicting the oldest when full.
func (r *TraceRing) Add(t ReqTrace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, t)
		return
	}
	r.buf[r.next] = t
	r.next = (r.next + 1) % cap(r.buf)
}

// Snapshot returns the retained traces oldest-first.
func (r *TraceRing) Snapshot() []ReqTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ReqTrace, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total reports how many traces were ever added (including evicted ones).
func (r *TraceRing) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

var reqIDCounter atomic.Uint64

// NewRequestID returns a fresh 16-hex-char request ID. Random when the
// platform provides entropy; a process-local counter otherwise, so ID
// generation can never fail a request.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := reqIDCounter.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * uint(7-i)))
		}
	}
	return hex.EncodeToString(b[:])
}
