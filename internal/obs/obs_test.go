package obs

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"dagsched/internal/telemetry"
)

func render(t *testing.T, e *Exposition) string {
	t.Helper()
	var b strings.Builder
	if err := e.Write(&b); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return b.String()
}

func TestExpositionCounterAndGauge(t *testing.T) {
	e := NewExposition()
	cd := Desc{Name: "serve_accepted_total", Help: "Accepted submissions.", Kind: Counter}
	gd := Desc{Name: "serve_ready", Help: "1 when ready.", Kind: Gauge}
	e.AddInt(cd, 42)
	e.Add(gd, 1)
	got := render(t, e)
	want := "# HELP serve_accepted_total Accepted submissions.\n" +
		"# TYPE serve_accepted_total counter\n" +
		"serve_accepted_total 42\n" +
		"# HELP serve_ready 1 when ready.\n" +
		"# TYPE serve_ready gauge\n" +
		"serve_ready 1\n"
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestExpositionFamiliesSortedByName(t *testing.T) {
	e := NewExposition()
	e.AddInt(Desc{Name: "zzz_total", Kind: Counter}, 1)
	e.AddInt(Desc{Name: "aaa_total", Kind: Counter}, 2)
	got := render(t, e)
	if strings.Index(got, "aaa_total") > strings.Index(got, "zzz_total") {
		t.Fatalf("families not sorted:\n%s", got)
	}
}

func TestExpositionLabeledSamplesSorted(t *testing.T) {
	e := NewExposition()
	d := Desc{Name: "serve_band_occupancy", Help: "Occupied nodes.", Kind: Gauge}
	e.AddInt(d, 7, "shard", "2")
	e.AddInt(d, 3, "shard", "0")
	e.AddInt(d, 5, "shard", "1")
	got := render(t, e)
	want := "# HELP serve_band_occupancy Occupied nodes.\n" +
		"# TYPE serve_band_occupancy gauge\n" +
		`serve_band_occupancy{shard="0"} 3` + "\n" +
		`serve_band_occupancy{shard="1"} 5` + "\n" +
		`serve_band_occupancy{shard="2"} 7` + "\n"
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestExpositionDeclareEmitsHeaderOnly(t *testing.T) {
	e := NewExposition()
	e.Declare(Desc{Name: "serve_drains_total", Help: "Completed drains.", Kind: Counter})
	got := render(t, e)
	want := "# HELP serve_drains_total Completed drains.\n# TYPE serve_drains_total counter\n"
	if got != want {
		t.Fatalf("declared family:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestExpositionHistogram(t *testing.T) {
	h := &telemetry.Histogram{}
	h.Observe(0)  // bucket 0, le="1"
	h.Observe(3)  // bucket 2, le="4"
	h.Observe(3)  // bucket 2, le="4"
	h.Observe(40) // bucket 6, le="64"
	e := NewExposition()
	d := Desc{Name: "serve_submit_engine_us", Help: "Engine-path submit latency.", Kind: Histogram}
	e.AddHist(d, h, "shard", "0")
	got := render(t, e)
	checks := []string{
		`serve_submit_engine_us_bucket{shard="0",le="1"} 1`,
		`serve_submit_engine_us_bucket{shard="0",le="2"} 1`,
		`serve_submit_engine_us_bucket{shard="0",le="4"} 3`,
		`serve_submit_engine_us_bucket{shard="0",le="32"} 3`,
		`serve_submit_engine_us_bucket{shard="0",le="64"} 4`,
		`serve_submit_engine_us_bucket{shard="0",le="16777216"} 4`,
		`serve_submit_engine_us_bucket{shard="0",le="+Inf"} 4`,
		`serve_submit_engine_us_sum{shard="0"} 46`,
		`serve_submit_engine_us_count{shard="0"} 4`,
	}
	for _, c := range checks {
		if !strings.Contains(got, c+"\n") {
			t.Errorf("missing line %q in:\n%s", c, got)
		}
	}
}

func TestExpositionHistogramCumulativeMonotone(t *testing.T) {
	h := &telemetry.Histogram{}
	for _, v := range []float64{0, 1, 2, 5, 100, 1e9} {
		h.Observe(v)
	}
	e := NewExposition()
	e.AddHist(Desc{Name: "m", Kind: Histogram}, h)
	got := render(t, e)
	var prev int64 = -1
	n := 0
	for _, line := range strings.Split(got, "\n") {
		if !strings.HasPrefix(line, "m_bucket{") {
			continue
		}
		n++
		var c int64
		if _, err := fmtSscan(line, &c); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if c < prev {
			t.Fatalf("bucket counts not cumulative at %q (prev %d)", line, prev)
		}
		prev = c
	}
	if n != maxBucketExp+2 {
		t.Fatalf("expected %d bucket lines, got %d", maxBucketExp+2, n)
	}
	// 1e9 is above 2^24, so +Inf must exceed the last finite bucket.
	if !strings.Contains(got, `m_bucket{le="16777216"} 5`) || !strings.Contains(got, `m_bucket{le="+Inf"} 6`) {
		t.Fatalf("overflow sample not folded into +Inf only:\n%s", got)
	}
}

// fmtSscan pulls the trailing integer off an exposition line.
func fmtSscan(line string, out *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	v, err := strconv.ParseInt(line[i+1:], 10, 64)
	*out = v
	return 1, err
}

func TestExpositionNilHistogramRendersZero(t *testing.T) {
	e := NewExposition()
	e.AddHist(Desc{Name: "m", Kind: Histogram}, nil, "shard", "0")
	got := render(t, e)
	for _, c := range []string{
		`m_bucket{shard="0",le="1"} 0`,
		`m_bucket{shard="0",le="+Inf"} 0`,
		`m_sum{shard="0"} 0`,
		`m_count{shard="0"} 0`,
	} {
		if !strings.Contains(got, c+"\n") {
			t.Errorf("missing %q in:\n%s", c, got)
		}
	}
}

func TestExpositionEscaping(t *testing.T) {
	e := NewExposition()
	d := Desc{Name: "m", Help: "line1\nline2 \\ tail", Kind: Gauge}
	e.Add(d, 1, "k", `va"l\ue`+"\n")
	got := render(t, e)
	if !strings.Contains(got, `# HELP m line1\nline2 \\ tail`) {
		t.Errorf("help not escaped:\n%s", got)
	}
	if !strings.Contains(got, `m{k="va\"l\\ue\n"} 1`) {
		t.Errorf("label not escaped:\n%s", got)
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"}, {42, "42"}, {-3, "-3"}, {1.5, "1.5"}, {0.25, "0.25"},
	}
	for _, c := range cases {
		if got := formatValue(c.v); got != c.want {
			t.Errorf("formatValue(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestTraceRingEviction(t *testing.T) {
	r := NewTraceRing(3)
	for i := 1; i <= 5; i++ {
		r.Add(ReqTrace{ID: string(rune('a' + i - 1)), JobID: i})
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("len(snapshot) = %d, want 3", len(snap))
	}
	for i, want := range []int{3, 4, 5} {
		if snap[i].JobID != want {
			t.Errorf("snapshot[%d].JobID = %d, want %d (oldest-first)", i, snap[i].JobID, want)
		}
	}
	if r.Total() != 5 {
		t.Errorf("Total = %d, want 5", r.Total())
	}
}

func TestTraceRingNilSafe(t *testing.T) {
	var r *TraceRing
	r.Add(ReqTrace{ID: "x"})
	if s := r.Snapshot(); s != nil {
		t.Fatalf("nil ring snapshot = %v, want nil", s)
	}
	if r.Total() != 0 {
		t.Fatalf("nil ring total = %d", r.Total())
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(8)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				r.Add(ReqTrace{ID: "c", Stages: []Stage{{Name: "received", At: time.Unix(0, int64(i))}}})
				r.Snapshot()
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if r.Total() != 400 {
		t.Fatalf("Total = %d, want 400", r.Total())
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("id lengths %d/%d, want 16", len(a), len(b))
	}
	if a == b {
		t.Fatalf("consecutive ids equal: %s", a)
	}
	for _, c := range a {
		if !strings.ContainsRune("0123456789abcdef", c) {
			t.Fatalf("non-hex char %q in %s", c, a)
		}
	}
}
