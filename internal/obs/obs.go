// Package obs is the serving tier's zero-dependency observability layer: a
// hand-rolled Prometheus text-exposition writer over telemetry registries,
// request-scoped trace capture (a request ID threaded through every stage of
// the submission path with per-stage timestamps), and a bounded ring the
// HTTP layer deposits completed request traces into for Perfetto export.
//
// Everything here is stdlib-only and deterministic: families and samples are
// written in sorted order, histogram buckets are fixed power-of-two edges, so
// two scrapes of the same state produce byte-identical expositions and the
// format can be pinned by a golden test.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"dagsched/internal/telemetry"
)

// Kind is a Prometheus metric family type.
type Kind uint8

const (
	// Counter is a monotonically increasing count; exposed with a _total
	// suffix by convention (the caller bakes it into Desc.Name).
	Counter Kind = iota
	// Gauge is a point-in-time value.
	Gauge
	// Histogram is a fixed-bucket distribution: _bucket lines with
	// cumulative counts at power-of-two le edges, plus _sum and _count.
	Histogram
)

func (k Kind) String() string {
	switch k {
	case Counter:
		return "counter"
	case Gauge:
		return "gauge"
	case Histogram:
		return "histogram"
	}
	return "untyped"
}

// Desc names one metric family: its exposition name (already in Prometheus
// form, e.g. "serve_accepted_total"), help text, and kind.
type Desc struct {
	Name string
	Help string
	Kind Kind
}

// maxBucketExp caps the exposed histogram edges at 2^maxBucketExp; every
// telemetry bucket above it folds into the +Inf line. With microsecond
// samples 2^24 ≈ 16.8 s, generous for any serving-path latency.
const maxBucketExp = 24

// Exposition accumulates one scrape: families keyed by name, each holding
// labeled samples. Build it fresh per scrape; it is not concurrency-safe.
type Exposition struct {
	fams map[string]*family
}

type family struct {
	d       Desc
	samples []sample
}

type sample struct {
	labels string // rendered label block without braces, "" for none
	value  float64
	hist   *telemetry.Histogram // histogram kind only (nil = all-zero)
}

// NewExposition returns an empty scrape.
func NewExposition() *Exposition {
	return &Exposition{fams: make(map[string]*family)}
}

func (e *Exposition) fam(d Desc) *family {
	f, ok := e.fams[d.Name]
	if !ok {
		f = &family{d: d}
		e.fams[d.Name] = f
	}
	return f
}

// Declare registers a family with no samples yet, so the scrape carries its
// HELP and TYPE lines even before the first observation — scrape-stable
// inventories pin on this.
func (e *Exposition) Declare(d Desc) { e.fam(d) }

// Add appends one sample. labels are alternating key, value pairs and are
// rendered in the given order; callers keep the order consistent so samples
// of one family sort deterministically.
func (e *Exposition) Add(d Desc, v float64, labels ...string) {
	e.fam(d).samples = append(e.fam(d).samples, sample{labels: renderLabels(labels), value: v})
}

// AddInt is Add for integer-valued counters and gauges.
func (e *Exposition) AddInt(d Desc, v int64, labels ...string) {
	e.Add(d, float64(v), labels...)
}

// AddHist appends one histogram sample set. A nil histogram renders as an
// all-zero distribution, so a declared latency metric is present on every
// scrape whether or not a sample has landed yet.
func (e *Exposition) AddHist(d Desc, h *telemetry.Histogram, labels ...string) {
	e.fam(d).samples = append(e.fam(d).samples, sample{labels: renderLabels(labels), hist: h})
}

// renderLabels renders alternating key, value pairs as `k1="v1",k2="v2"`.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes HELP text: backslash and newline.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// formatValue renders a sample value the way Prometheus clients do: integers
// without an exponent, everything else in Go's shortest form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Write renders the exposition: families sorted by name, each with # HELP
// and # TYPE lines followed by its samples sorted by label block.
func (e *Exposition) Write(w io.Writer) error {
	names := make([]string, 0, len(e.fams))
	for name := range e.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := e.fams[name]
		fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(f.d.Help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, f.d.Kind)
		samples := append([]sample(nil), f.samples...)
		sort.SliceStable(samples, func(i, j int) bool { return samples[i].labels < samples[j].labels })
		for _, s := range samples {
			if f.d.Kind == Histogram {
				writeHist(&b, name, s)
				continue
			}
			if s.labels == "" {
				fmt.Fprintf(&b, "%s %s\n", name, formatValue(s.value))
			} else {
				fmt.Fprintf(&b, "%s{%s} %s\n", name, s.labels, formatValue(s.value))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHist renders one histogram sample set: cumulative _bucket lines at
// le = 1, 2, 4, …, 2^maxBucketExp, then +Inf, _sum, and _count.
func writeHist(b *strings.Builder, name string, s sample) {
	counts := s.hist.BucketCounts()
	var cum int64
	var fsum float64
	var count int64
	if s.hist != nil {
		fsum = s.hist.Sum
		count = s.hist.Count
	}
	sep := ""
	if s.labels != "" {
		sep = ","
	}
	for i := 0; i <= maxBucketExp; i++ {
		cum += counts[i]
		edge := int64(1) << uint(i)
		fmt.Fprintf(b, "%s_bucket{%s%sle=\"%d\"} %d\n", name, s.labels, sep, edge, cum)
	}
	fmt.Fprintf(b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, s.labels, sep, count)
	if s.labels == "" {
		fmt.Fprintf(b, "%s_sum %s\n", name, formatValue(fsum))
		fmt.Fprintf(b, "%s_count %d\n", name, count)
	} else {
		fmt.Fprintf(b, "%s_sum{%s} %s\n", name, s.labels, formatValue(fsum))
		fmt.Fprintf(b, "%s_count{%s} %d\n", name, s.labels, count)
	}
}
