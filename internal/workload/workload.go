// Package workload generates the synthetic instances the experiments run
// on: mixes of DAG shapes released over time with deadlines and profits.
// The paper has no empirical section, so these generators realize the
// workloads its model describes — parallel programs (fork–join, BSP,
// layered, series–parallel) arriving online — with deadline slack
// parameterized around the Theorem 2 condition
// D_i ≥ (1+ε)((W_i−L_i)/m + L_i). All generation is deterministic given the
// seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"dagsched/internal/dag"
	"dagsched/internal/profit"
	"dagsched/internal/sim"
)

// Instance is a reproducible workload: a machine size plus a job set.
type Instance struct {
	Name string
	M    int
	Seed int64
	Jobs []*sim.Job
}

// TotalWork returns Σ W_i.
func (in *Instance) TotalWork() int64 {
	var s int64
	for _, j := range in.Jobs {
		s += j.Graph.TotalWork()
	}
	return s
}

// Validate checks the instance.
func (in *Instance) Validate() error {
	if in.M < 1 {
		return fmt.Errorf("workload: M = %d", in.M)
	}
	return sim.ValidateJobs(in.Jobs)
}

// Shape selects a DAG family.
type Shape int

const (
	// ShapeChain is a sequential chain (no parallelism).
	ShapeChain Shape = iota
	// ShapeBlock is an embarrassingly parallel block.
	ShapeBlock
	// ShapeForkJoin is staged fork–join parallelism (map-reduce rounds).
	ShapeForkJoin
	// ShapeLayered is a random layered DAG.
	ShapeLayered
	// ShapeSeriesParallel is a random series–parallel DAG.
	ShapeSeriesParallel
	// ShapeWideChain is bulk-synchronous bands with barriers.
	ShapeWideChain
	// ShapeWavefront is an n×n stencil wavefront (Smith–Waterman shape).
	ShapeWavefront
	// ShapeReduction is a binary reduction tree.
	ShapeReduction
	// ShapeFFT is a radix-2 butterfly network.
	ShapeFFT
	// ShapeCholesky is a tiled Cholesky factorization task graph.
	ShapeCholesky
)

// String names the shape.
func (s Shape) String() string {
	switch s {
	case ShapeChain:
		return "chain"
	case ShapeBlock:
		return "block"
	case ShapeForkJoin:
		return "forkjoin"
	case ShapeLayered:
		return "layered"
	case ShapeSeriesParallel:
		return "seriesparallel"
	case ShapeWideChain:
		return "widechain"
	case ShapeWavefront:
		return "wavefront"
	case ShapeReduction:
		return "reduction"
	case ShapeFFT:
		return "fft"
	case ShapeCholesky:
		return "cholesky"
	default:
		return fmt.Sprintf("shape(%d)", int(s))
	}
}

// DefaultMix is the shape mix used by the experiments: mostly structured
// parallel programs, some chains and blocks as extremes.
func DefaultMix() []Shape {
	return []Shape{
		ShapeForkJoin, ShapeForkJoin, ShapeLayered, ShapeLayered,
		ShapeSeriesParallel, ShapeWideChain, ShapeBlock, ShapeChain,
	}
}

// HPCMix is a mix of classic HPC kernel task graphs: Cholesky panels,
// stencil wavefronts, FFT butterflies, and reductions.
func HPCMix() []Shape {
	return []Shape{
		ShapeCholesky, ShapeCholesky, ShapeWavefront, ShapeWavefront,
		ShapeFFT, ShapeReduction, ShapeForkJoin,
	}
}

// ProfitKind selects the profit-function family attached to jobs.
type ProfitKind int

const (
	// ProfitStep gives step (pure deadline) profits — the Section 3 model.
	ProfitStep ProfitKind = iota
	// ProfitLinear gives linear decay after the flat prefix — Section 5.
	ProfitLinear
	// ProfitExp gives exponential decay after the flat prefix — Section 5.
	ProfitExp
)

// String names the profit kind.
func (k ProfitKind) String() string {
	switch k {
	case ProfitStep:
		return "step"
	case ProfitLinear:
		return "linear"
	case ProfitExp:
		return "exp"
	default:
		return fmt.Sprintf("profit(%d)", int(k))
	}
}

// Arrival selects the job arrival process.
type Arrival int

const (
	// ArrivalPoisson draws independent exponential gaps (the default).
	ArrivalPoisson Arrival = iota
	// ArrivalBursty clusters arrivals: jobs land in geometric bursts at the
	// same instant, separated by longer exponential gaps. Total rate
	// matches the load target.
	ArrivalBursty
	// ArrivalPeriodic releases jobs at a fixed cadence.
	ArrivalPeriodic
)

// String names the arrival process.
func (a Arrival) String() string {
	switch a {
	case ArrivalPoisson:
		return "poisson"
	case ArrivalBursty:
		return "bursty"
	case ArrivalPeriodic:
		return "periodic"
	default:
		return fmt.Sprintf("arrival(%d)", int(a))
	}
}

// Config parameterizes Generate.
type Config struct {
	Seed int64
	N    int // number of jobs
	M    int // processors (enters the slack condition and the load target)

	// Eps is the ε of the Theorem 2 slack condition: every relative
	// deadline is at least (1+Eps)((W−L)/m + L).
	Eps float64
	// SlackSpread adds a uniform extra factor in [1, 1+SlackSpread] on top
	// of the minimum deadline, so instances are not uniformly tight.
	SlackSpread float64

	// Load targets a machine utilization: mean arrival gap = E[W]/(Load·m).
	// Load > 1 overloads the machine; the scheduler must then select.
	Load float64
	// Arrival selects the arrival process (default Poisson).
	Arrival Arrival

	// Shapes is the shape mix to draw from; nil means DefaultMix.
	Shapes []Shape
	// Scale multiplies the default job sizes (1 = small jobs suitable for
	// unit tests; experiments use 2–4). Values < 1 are treated as 1.
	Scale float64

	// Profit selects the profit family. MaxProfit bounds the per-job peak
	// value, drawn uniformly from [1, MaxProfit] (0 means 10).
	Profit    ProfitKind
	MaxProfit float64
}

// Generate builds an instance from cfg.
func Generate(cfg Config) (*Instance, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("workload: N = %d", cfg.N)
	}
	if cfg.M < 1 {
		return nil, fmt.Errorf("workload: M = %d", cfg.M)
	}
	if cfg.Eps <= 0 {
		return nil, fmt.Errorf("workload: Eps = %v must be positive", cfg.Eps)
	}
	if cfg.Load <= 0 {
		return nil, fmt.Errorf("workload: Load = %v must be positive", cfg.Load)
	}
	if cfg.SlackSpread < 0 {
		return nil, fmt.Errorf("workload: SlackSpread = %v", cfg.SlackSpread)
	}
	shapes := cfg.Shapes
	if len(shapes) == 0 {
		shapes = DefaultMix()
	}
	scale := cfg.Scale
	if scale < 1 {
		scale = 1
	}
	maxProfit := cfg.MaxProfit
	if maxProfit <= 0 {
		maxProfit = 10
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	inst := &Instance{
		Name: fmt.Sprintf("%s-load%.2g-eps%.2g-n%d", cfg.Profit, cfg.Load, cfg.Eps, cfg.N),
		M:    cfg.M,
		Seed: cfg.Seed,
	}

	// First pass: build graphs so we know E[W] for the arrival process.
	graphs := make([]*dag.DAG, cfg.N)
	var totalW int64
	for i := range graphs {
		graphs[i] = genGraph(rng, shapes[rng.Intn(len(shapes))], scale)
		totalW += graphs[i].TotalWork()
	}
	meanW := float64(totalW) / float64(cfg.N)
	meanGap := meanW / (cfg.Load * float64(cfg.M))

	const burstLen = 4 // mean jobs per burst under ArrivalBursty
	clock := 0.0
	for i, g := range graphs {
		switch cfg.Arrival {
		case ArrivalBursty:
			// Geometric burst membership: stay at the same instant with
			// probability 1−1/burstLen, else jump a scaled-up gap so the
			// long-run rate still matches the load target.
			if rng.Float64() < 1.0/burstLen {
				clock += rng.ExpFloat64() * meanGap * burstLen
			}
		case ArrivalPeriodic:
			clock += meanGap
		default:
			clock += rng.ExpFloat64() * meanGap
		}
		release := int64(clock)
		w, l := float64(g.TotalWork()), float64(g.Span())
		minD := (1 + cfg.Eps) * ((w-l)/float64(cfg.M) + l)
		d := int64(math.Ceil(minD * (1 + rng.Float64()*cfg.SlackSpread)))
		if d < 1 {
			d = 1
		}
		peak := 1 + rng.Float64()*(maxProfit-1)
		fn, err := makeProfit(rng, cfg.Profit, peak, d)
		if err != nil {
			return nil, err
		}
		inst.Jobs = append(inst.Jobs, &sim.Job{ID: i, Graph: g, Release: release, Profit: fn})
	}
	return inst, inst.Validate()
}

// genGraph draws one DAG of the given shape at the given size scale.
func genGraph(rng *rand.Rand, s Shape, scale float64) *dag.DAG {
	k := int(scale)
	switch s {
	case ShapeChain:
		return dag.Chain(2+rng.Intn(6*k), 1+rng.Int63n(3))
	case ShapeBlock:
		return dag.Block(2+rng.Intn(12*k), 1+rng.Int63n(3))
	case ShapeForkJoin:
		return dag.ForkJoin(1+rng.Intn(3), 2+rng.Intn(6*k), 1+rng.Int63n(3))
	case ShapeLayered:
		return dag.Layered(rng, 2+rng.Intn(4), 2+rng.Intn(5*k), 1+rng.Int63n(4), 0.3+rng.Float64()*0.5)
	case ShapeSeriesParallel:
		return dag.SeriesParallel(rng, 2+rng.Intn(3), 1+rng.Int63n(4))
	case ShapeWideChain:
		return dag.WideChain(1+rng.Intn(3), 2+rng.Intn(5*k), 1+rng.Int63n(3))
	case ShapeWavefront:
		return dag.Wavefront(2+rng.Intn(2*k+2), 1+rng.Int63n(2))
	case ShapeReduction:
		return dag.ReductionTree(2+rng.Intn(8*k), 1+rng.Int63n(2))
	case ShapeFFT:
		return dag.FFT(4<<rng.Intn(k+1), 1+rng.Int63n(2))
	case ShapeCholesky:
		return dag.Cholesky(2+rng.Intn(k+2), dag.DefaultCholeskyWorks(1+rng.Int63n(2)))
	default:
		return dag.Block(4, 1)
	}
}

// makeProfit builds the profit function for a job with peak value and
// minimum (condition-satisfying) relative deadline d. For decaying kinds the
// flat prefix is exactly d — so x* meets the Theorem 3 assumption — and the
// decay horizon extends beyond it.
func makeProfit(rng *rand.Rand, kind ProfitKind, peak float64, d int64) (profit.Fn, error) {
	switch kind {
	case ProfitStep:
		return profit.NewStep(peak, d)
	case ProfitLinear:
		tail := 1 + int64(float64(d)*(0.5+rng.Float64()))
		return profit.NewLinearDecay(peak, d, d+tail)
	case ProfitExp:
		half := 1 + int64(float64(d)*0.25)
		return profit.NewExpDecay(peak, d, half, d+8*half)
	default:
		return nil, fmt.Errorf("workload: unknown profit kind %d", kind)
	}
}

// Figure1Batch builds the Theorem 1 adversarial instance: count Figure-1
// jobs for m processors with span L, all released at time zero, each with
// relative deadline deadlineFactor·L (the theorem sets deadlineFactor = 1:
// D = W/m = L) and unit profit.
func Figure1Batch(m int, span int64, count int, deadlineFactor float64) (*Instance, error) {
	if m < 2 || span < 1 || count < 1 || deadlineFactor <= 0 {
		return nil, fmt.Errorf("workload: bad Figure1Batch(m=%d, L=%d, count=%d, f=%v)", m, span, count, deadlineFactor)
	}
	inst := &Instance{Name: fmt.Sprintf("figure1-m%d-L%d-x%d", m, span, count), M: m}
	d := int64(math.Ceil(deadlineFactor * float64(span)))
	if d < 1 {
		d = 1
	}
	for i := 0; i < count; i++ {
		fn, err := profit.NewStep(1, d)
		if err != nil {
			return nil, err
		}
		inst.Jobs = append(inst.Jobs, &sim.Job{
			ID:      i,
			Graph:   dag.Figure1(m, span),
			Release: int64(i) * d, // back-to-back windows
			Profit:  fn,
		})
	}
	return inst, inst.Validate()
}
