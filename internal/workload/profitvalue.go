package workload

import (
	"bytes"
	"encoding/json"
	"fmt"

	"dagsched/internal/profit"
)

// ProfitValue is the v2 job-spec profit field: either a plain scalar (the v1
// form, a step function worth Scalar until the job's deadline) or a
// structured non-increasing profit function. On the wire it is a JSON number
// or an object tagged by "type":
//
//	"profit": 10
//	"profit": {"type": "step", "value": 10, "deadline": 40}
//	"profit": {"type": "linear", "value": 10, "flat": 5, "zeroAt": 40}
//	"profit": {"type": "exp", "value": 10, "halfLife": 8, "cutoff": 40}
//	"profit": {"type": "piecewise", "until": [10, 40], "values": [8, 3]}
//
// The zero value is the scalar 0. Exactly one of the two representations is
// active: Spec == nil means scalar.
type ProfitValue struct {
	Scalar float64
	Spec   *ProfitSpec
}

// ScalarProfit wraps a v1 scalar profit.
func ScalarProfit(v float64) ProfitValue { return ProfitValue{Scalar: v} }

// StructuredProfit wraps a structured profit spec.
func StructuredProfit(spec ProfitSpec) ProfitValue { return ProfitValue{Spec: &spec} }

// IsScalar reports whether the value is the plain v1 scalar form.
func (p ProfitValue) IsScalar() bool { return p.Spec == nil }

// Fn builds the profit function the value describes. A scalar needs the
// job-spec deadline to become a step function; a structured spec carries its
// own horizon and ignores the argument.
func (p ProfitValue) Fn(deadline int64) (profit.Fn, error) {
	if p.Spec == nil {
		return profit.NewStep(p.Scalar, deadline)
	}
	return p.Spec.Decode()
}

// profitValueJSON is the object form's shadow: identical to ProfitSpec except
// the discriminator tag is "type" (the v2 job-spec convention) rather than
// the instance-file "kind".
type profitValueJSON struct {
	Type     string    `json:"type"`
	Value    float64   `json:"value,omitempty"`
	Deadline int64     `json:"deadline,omitempty"`
	Flat     int64     `json:"flat,omitempty"`
	ZeroAt   int64     `json:"zeroAt,omitempty"`
	HalfLife int64     `json:"halfLife,omitempty"`
	Cutoff   int64     `json:"cutoff,omitempty"`
	Until    []int64   `json:"until,omitempty"`
	Values   []float64 `json:"values,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (p ProfitValue) MarshalJSON() ([]byte, error) {
	if p.Spec == nil {
		return json.Marshal(p.Scalar)
	}
	s := *p.Spec
	return json.Marshal(profitValueJSON{
		Type: s.Kind, Value: s.Value, Deadline: s.Deadline, Flat: s.Flat,
		ZeroAt: s.ZeroAt, HalfLife: s.HalfLife, Cutoff: s.Cutoff,
		Until: s.Until, Values: s.Values,
	})
}

// UnmarshalJSON implements json.Unmarshaler. A leading '{' selects the
// structured form, decoded strictly (unknown fields rejected, so a typo'd
// parameter fails loudly instead of silently defaulting); anything else must
// be a JSON number. Parameter validation happens later, in Fn, where the
// profit constructors run.
func (p *ProfitValue) UnmarshalJSON(data []byte) error {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) > 0 && trimmed[0] == '{' {
		dec := json.NewDecoder(bytes.NewReader(trimmed))
		dec.DisallowUnknownFields()
		var raw profitValueJSON
		if err := dec.Decode(&raw); err != nil {
			return fmt.Errorf("workload: structured profit: %w", err)
		}
		if raw.Type == "" {
			return fmt.Errorf("workload: structured profit missing \"type\"")
		}
		p.Scalar = 0
		p.Spec = &ProfitSpec{
			Kind: raw.Type, Value: raw.Value, Deadline: raw.Deadline,
			Flat: raw.Flat, ZeroAt: raw.ZeroAt, HalfLife: raw.HalfLife,
			Cutoff: raw.Cutoff, Until: raw.Until, Values: raw.Values,
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(trimmed, &v); err != nil {
		return fmt.Errorf("workload: profit must be a number or a {\"type\":...} object: %w", err)
	}
	p.Scalar = v
	p.Spec = nil
	return nil
}
