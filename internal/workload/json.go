package workload

import (
	"encoding/json"
	"fmt"

	"dagsched/internal/dag"
	"dagsched/internal/profit"
	"dagsched/internal/sim"
)

// The wire format keeps instances reproducible across runs and tools:
// cmd/dag-gen writes them, cmd/spaa-sim reads them.

type instanceJSON struct {
	Name string    `json:"name"`
	M    int       `json:"m"`
	Seed int64     `json:"seed"`
	Jobs []jobJSON `json:"jobs"`
}

type jobJSON struct {
	ID      int        `json:"id"`
	Release int64      `json:"release"`
	Graph   *dag.DAG   `json:"graph"`
	Profit  ProfitSpec `json:"profit"`
	// Commitment is emitted only when the job requests a level of its own;
	// the common default keeps v1 instance files and WAL frames byte-stable.
	Commitment sim.Commitment `json:"commitment,omitempty"`
}

// ProfitSpec is the tagged-union wire form of a profit function, shared by
// instance files and the serving API's job submissions. Kind is one of
// "step", "linear", "exp", "piecewise"; the other fields apply per kind,
// mirroring the profit constructors.
type ProfitSpec struct {
	Kind     string    `json:"kind"`
	Value    float64   `json:"value,omitempty"`
	Deadline int64     `json:"deadline,omitempty"`
	Flat     int64     `json:"flat,omitempty"`
	ZeroAt   int64     `json:"zeroAt,omitempty"`
	HalfLife int64     `json:"halfLife,omitempty"`
	Cutoff   int64     `json:"cutoff,omitempty"`
	Until    []int64   `json:"until,omitempty"`
	Values   []float64 `json:"values,omitempty"`
}

func encodeProfit(fn profit.Fn) (ProfitSpec, error) {
	switch p := fn.(type) {
	case profit.Step:
		return ProfitSpec{Kind: "step", Value: p.Value, Deadline: p.Deadline}, nil
	case profit.LinearDecay:
		return ProfitSpec{Kind: "linear", Value: p.Peak, Flat: p.Flat, ZeroAt: p.ZeroAt}, nil
	case profit.ExpDecay:
		return ProfitSpec{Kind: "exp", Value: p.Peak, Flat: p.Flat, HalfLife: p.HalfLife, Cutoff: p.Cutoff}, nil
	case profit.PiecewiseConstant:
		return ProfitSpec{Kind: "piecewise", Until: p.Until, Values: p.Values}, nil
	default:
		return ProfitSpec{}, fmt.Errorf("workload: cannot serialize profit %T", fn)
	}
}

// EncodeProfit renders a profit function as its wire spec. It errors on
// families the wire format does not cover.
func EncodeProfit(fn profit.Fn) (ProfitSpec, error) { return encodeProfit(fn) }

// Decode builds the profit function the spec describes, validating its
// parameters through the profit constructors.
func (pj ProfitSpec) Decode() (profit.Fn, error) { return decodeProfit(pj) }

func decodeProfit(pj ProfitSpec) (profit.Fn, error) {
	switch pj.Kind {
	case "step":
		return profit.NewStep(pj.Value, pj.Deadline)
	case "linear":
		return profit.NewLinearDecay(pj.Value, pj.Flat, pj.ZeroAt)
	case "exp":
		return profit.NewExpDecay(pj.Value, pj.Flat, pj.HalfLife, pj.Cutoff)
	case "piecewise":
		return profit.NewPiecewiseConstant(pj.Until, pj.Values)
	default:
		return nil, fmt.Errorf("workload: unknown profit kind %q", pj.Kind)
	}
}

// MarshalJSON implements json.Marshaler.
func (in *Instance) MarshalJSON() ([]byte, error) {
	out := instanceJSON{Name: in.Name, M: in.M, Seed: in.Seed}
	for _, j := range in.Jobs {
		pj, err := encodeProfit(j.Profit)
		if err != nil {
			return nil, err
		}
		out.Jobs = append(out.Jobs, jobJSON{ID: j.ID, Release: j.Release, Graph: j.Graph, Profit: pj, Commitment: j.Commitment})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler and validates the result.
func (in *Instance) UnmarshalJSON(data []byte) error {
	var raw instanceJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	out := Instance{Name: raw.Name, M: raw.M, Seed: raw.Seed}
	for _, jj := range raw.Jobs {
		fn, err := decodeProfit(jj.Profit)
		if err != nil {
			return err
		}
		out.Jobs = append(out.Jobs, &sim.Job{ID: jj.ID, Release: jj.Release, Graph: jj.Graph, Profit: fn, Commitment: jj.Commitment})
	}
	if err := out.Validate(); err != nil {
		return err
	}
	*in = out
	return nil
}

// MarshalJob renders one job in the instance wire format (one element of an
// instance's "jobs" array). The serving replay log stores one job per line
// in exactly this form, so a replayed session feeds sim.RunAuto the same
// bytes an instance file would.
func MarshalJob(j *sim.Job) ([]byte, error) {
	pj, err := encodeProfit(j.Profit)
	if err != nil {
		return nil, err
	}
	return json.Marshal(jobJSON{ID: j.ID, Release: j.Release, Graph: j.Graph, Profit: pj, Commitment: j.Commitment})
}

// UnmarshalJob parses and validates one job in the instance wire format.
func UnmarshalJob(data []byte) (*sim.Job, error) {
	var jj jobJSON
	if err := json.Unmarshal(data, &jj); err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	fn, err := decodeProfit(jj.Profit)
	if err != nil {
		return nil, err
	}
	j := &sim.Job{ID: jj.ID, Release: jj.Release, Graph: jj.Graph, Profit: fn, Commitment: jj.Commitment}
	if err := j.Validate(); err != nil {
		return nil, err
	}
	return j, nil
}
