package workload

import (
	"encoding/json"
	"testing"
)

// FuzzInstanceUnmarshal: arbitrary bytes must never panic; accepted
// instances must validate and survive a JSON round trip.
func FuzzInstanceUnmarshal(f *testing.F) {
	good, err := Generate(Config{Seed: 1, N: 3, M: 2, Eps: 1, Load: 1})
	if err != nil {
		f.Fatal(err)
	}
	data, err := json.Marshal(good)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add([]byte(`{"m":0,"jobs":[]}`))
	f.Add([]byte(`{"m":2,"jobs":[{"id":1,"release":-3,"graph":{"work":[1],"edges":[]},"profit":{"kind":"step","value":1,"deadline":5}}]}`))
	f.Add([]byte(`{"m":2,"jobs":[{"id":1,"graph":{"work":[1]},"profit":{"kind":"exp","value":1,"flat":2,"halfLife":0,"cutoff":9}}]}`))
	f.Add([]byte(`garbage`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var inst Instance
		if err := json.Unmarshal(data, &inst); err != nil {
			return
		}
		if err := inst.Validate(); err != nil {
			t.Fatalf("accepted invalid instance: %v", err)
		}
		// Round trip must preserve validity.
		out, err := json.Marshal(&inst)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		var again Instance
		if err := json.Unmarshal(out, &again); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
