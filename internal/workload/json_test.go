package workload

import (
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/profit"
	"dagsched/internal/sim"
)

// TestJobWireRoundTrip checks MarshalJob/UnmarshalJob preserve a job across
// the wire byte-identically on re-marshal — the replay-log contract.
func TestJobWireRoundTrip(t *testing.T) {
	fns := []profit.Fn{
		mustFn(t)(profit.NewStep(10, 25)),
		mustFn(t)(profit.NewLinearDecay(8, 5, 40)),
		mustFn(t)(profit.NewExpDecay(6, 2, 4, 64)),
		mustFn(t)(profit.NewPiecewiseConstant([]int64{10, 20}, []float64{5, 2})),
	}
	for i, fn := range fns {
		j := &sim.Job{ID: i + 1, Graph: dag.ForkJoin(2, 3, 2), Release: int64(i * 3), Profit: fn}
		data, err := MarshalJob(j)
		if err != nil {
			t.Fatalf("marshal %d: %v", i, err)
		}
		back, err := UnmarshalJob(data)
		if err != nil {
			t.Fatalf("unmarshal %d: %v", i, err)
		}
		if back.ID != j.ID || back.Release != j.Release {
			t.Fatalf("job %d: got ID=%d release=%d", i, back.ID, back.Release)
		}
		data2, err := MarshalJob(back)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(data2) {
			t.Fatalf("job %d round trip not byte-identical:\n%s\n%s", i, data, data2)
		}
	}
}

func TestUnmarshalJobRejectsBad(t *testing.T) {
	for _, bad := range []string{
		`{`,
		`{"id":1,"release":0,"graph":null,"profit":{"kind":"step","value":1,"deadline":5}}`,
		`{"id":1,"release":0,"graph":{"work":[1],"edges":[]},"profit":{"kind":"nope"}}`,
	} {
		if _, err := UnmarshalJob([]byte(bad)); err == nil {
			t.Fatalf("accepted %s", bad)
		}
	}
}

// TestProfitSpecDecode checks the exported encode/decode pair agrees with
// the instance wire format.
func TestProfitSpecDecode(t *testing.T) {
	fn := mustFn(t)(profit.NewStep(3, 9))
	spec, err := EncodeProfit(fn)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind != "step" || spec.Value != 3 || spec.Deadline != 9 {
		t.Fatalf("spec = %+v", spec)
	}
	back, err := spec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if back.At(9) != 3 || back.At(10) != 0 {
		t.Fatalf("decoded profit wrong: At(9)=%v At(10)=%v", back.At(9), back.At(10))
	}
}

func mustFn(t *testing.T) func(profit.Fn, error) profit.Fn {
	t.Helper()
	return func(fn profit.Fn, err error) profit.Fn {
		if err != nil {
			t.Fatal(err)
		}
		return fn
	}
}
