package workload

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"dagsched/internal/profit"
)

func baseConfig() Config {
	return Config{Seed: 1, N: 40, M: 8, Eps: 1, SlackSpread: 0.5, Load: 1.0}
}

func TestGenerateBasics(t *testing.T) {
	inst, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Jobs) != 40 {
		t.Fatalf("jobs = %d", len(inst.Jobs))
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	// Releases non-decreasing (built from a cumulative clock).
	for i := 1; i < len(inst.Jobs); i++ {
		if inst.Jobs[i].Release < inst.Jobs[i-1].Release {
			t.Fatalf("releases out of order at %d", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalWork() != b.TotalWork() {
		t.Error("same seed, different total work")
	}
	for i := range a.Jobs {
		if a.Jobs[i].Release != b.Jobs[i].Release ||
			a.Jobs[i].Graph.TotalWork() != b.Jobs[i].Graph.TotalWork() {
			t.Fatalf("job %d differs across identical seeds", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(baseConfig())
	cfg := baseConfig()
	cfg.Seed = 2
	b, _ := Generate(cfg)
	if a.TotalWork() == b.TotalWork() {
		t.Error("different seeds produced identical total work (suspicious)")
	}
}

func TestGenerateSatisfiesSlackCondition(t *testing.T) {
	for _, eps := range []float64{0.25, 1, 2} {
		cfg := baseConfig()
		cfg.Eps = eps
		inst, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range inst.Jobs {
			w := float64(j.Graph.TotalWork())
			l := float64(j.Graph.Span())
			minD := (1 + eps) * ((w-l)/float64(cfg.M) + l)
			if float64(j.RelDeadline()) < minD-1e-9 {
				t.Fatalf("eps=%v: job %d deadline %d below condition %v", eps, j.ID, j.RelDeadline(), minD)
			}
		}
	}
}

func TestGenerateLoadScalesArrivals(t *testing.T) {
	lo := baseConfig()
	lo.Load = 0.25
	hi := baseConfig()
	hi.Load = 4
	a, err := Generate(lo)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(hi)
	if err != nil {
		t.Fatal(err)
	}
	spanA := a.Jobs[len(a.Jobs)-1].Release
	spanB := b.Jobs[len(b.Jobs)-1].Release
	if spanA <= spanB {
		t.Errorf("low load span %d should exceed high load span %d", spanA, spanB)
	}
}

func TestGenerateProfitKinds(t *testing.T) {
	for _, kind := range []ProfitKind{ProfitStep, ProfitLinear, ProfitExp} {
		cfg := baseConfig()
		cfg.Profit = kind
		cfg.N = 10
		inst, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range inst.Jobs {
			if err := profit.Validate(j.Profit, j.Profit.SupportEnd()+2); err != nil {
				t.Fatalf("%v: %v", kind, err)
			}
			if kind != ProfitStep {
				// Flat prefix equals the condition-satisfying deadline → the
				// Theorem 3 x* assumption holds.
				w := float64(j.Graph.TotalWork())
				l := float64(j.Graph.Span())
				minX := (1 + cfg.Eps) * ((w-l)/float64(cfg.M) + l)
				if float64(j.Profit.FlatUntil()) < minX-1e-9 {
					t.Fatalf("%v: x* = %d below Theorem 3 floor %v", kind, j.Profit.FlatUntil(), minX)
				}
			}
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	bad := []Config{
		{N: 0, M: 4, Eps: 1, Load: 1},
		{N: 5, M: 0, Eps: 1, Load: 1},
		{N: 5, M: 4, Eps: 0, Load: 1},
		{N: 5, M: 4, Eps: 1, Load: 0},
		{N: 5, M: 4, Eps: 1, Load: 1, SlackSpread: -1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestFigure1Batch(t *testing.T) {
	inst, err := Figure1Batch(4, 8, 3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Jobs) != 3 {
		t.Fatalf("jobs = %d", len(inst.Jobs))
	}
	for i, j := range inst.Jobs {
		if j.Graph.Span() != 8 || j.Graph.TotalWork() != 32 {
			t.Errorf("job %d: W=%d L=%d", i, j.Graph.TotalWork(), j.Graph.Span())
		}
		if j.RelDeadline() != 8 {
			t.Errorf("job %d deadline %d, want L = 8", i, j.RelDeadline())
		}
	}
	if _, err := Figure1Batch(1, 8, 3, 1); err == nil {
		t.Error("accepted m=1")
	}
}

func TestInstanceJSONRoundTrip(t *testing.T) {
	for _, kind := range []ProfitKind{ProfitStep, ProfitLinear, ProfitExp} {
		cfg := baseConfig()
		cfg.N = 8
		cfg.Profit = kind
		orig, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(orig)
		if err != nil {
			t.Fatal(err)
		}
		var got Instance
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}
		if got.M != orig.M || len(got.Jobs) != len(orig.Jobs) || got.Name != orig.Name {
			t.Fatalf("round trip mismatch: %+v", got)
		}
		for i := range got.Jobs {
			a, b := orig.Jobs[i], got.Jobs[i]
			if a.Release != b.Release || a.Graph.TotalWork() != b.Graph.TotalWork() {
				t.Fatalf("job %d mismatch", i)
			}
			for _, tt := range []int64{1, 5, a.RelDeadline(), a.RelDeadline() + 3} {
				if math.Abs(a.Profit.At(tt)-b.Profit.At(tt)) > 1e-12 {
					t.Fatalf("job %d profit differs at t=%d", i, tt)
				}
			}
		}
	}
}

func TestInstanceJSONRejectsUnknownKind(t *testing.T) {
	var in Instance
	err := json.Unmarshal([]byte(`{"m":2,"jobs":[{"id":1,"release":0,"graph":{"work":[1],"edges":[]},"profit":{"kind":"nope"}}]}`), &in)
	if err == nil {
		t.Error("accepted unknown profit kind")
	}
}

func TestPropGeneratedInstancesAlwaysValid(t *testing.T) {
	f := func(seed int64, loadSel, epsSel uint8) bool {
		cfg := Config{
			Seed:        seed,
			N:           5 + int(loadSel%20),
			M:           2 + int(epsSel%14),
			Eps:         0.25 * float64(1+epsSel%8),
			Load:        0.25 * float64(1+loadSel%16),
			Profit:      ProfitKind(int(loadSel) % 3),
			SlackSpread: float64(epsSel%3) * 0.5,
		}
		inst, err := Generate(cfg)
		if err != nil {
			return false
		}
		return inst.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHPCMixGenerates(t *testing.T) {
	cfg := baseConfig()
	cfg.Shapes = HPCMix()
	cfg.N = 30
	inst, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	// HPC kernels must include jobs with genuine parallelism and genuine
	// dependency structure.
	sawParallel, sawEdges := false, false
	for _, j := range inst.Jobs {
		if j.Graph.TotalWork() >= 2*j.Graph.Span() {
			sawParallel = true
		}
		if j.Graph.NumEdges() > 0 {
			sawEdges = true
		}
	}
	if !sawParallel || !sawEdges {
		t.Errorf("HPC mix lacks structure: parallel=%v edges=%v", sawParallel, sawEdges)
	}
}

func TestShapeStrings(t *testing.T) {
	want := map[Shape]string{
		ShapeChain: "chain", ShapeBlock: "block", ShapeForkJoin: "forkjoin",
		ShapeLayered: "layered", ShapeSeriesParallel: "seriesparallel",
		ShapeWideChain: "widechain", ShapeWavefront: "wavefront",
		ShapeReduction: "reduction", ShapeFFT: "fft", ShapeCholesky: "cholesky",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("Shape(%d).String() = %q, want %q", s, s.String(), name)
		}
	}
	if ProfitStep.String() != "step" || ProfitLinear.String() != "linear" || ProfitExp.String() != "exp" {
		t.Error("profit kind names wrong")
	}
}

func TestArrivalProcesses(t *testing.T) {
	mk := func(a Arrival) *Instance {
		cfg := baseConfig()
		cfg.N = 60
		cfg.Arrival = a
		inst, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return inst
	}
	simultaneous := func(inst *Instance) int {
		n := 0
		for i := 1; i < len(inst.Jobs); i++ {
			if inst.Jobs[i].Release == inst.Jobs[i-1].Release {
				n++
			}
		}
		return n
	}
	poisson := mk(ArrivalPoisson)
	bursty := mk(ArrivalBursty)
	periodic := mk(ArrivalPeriodic)

	if simultaneous(bursty) <= simultaneous(poisson) {
		t.Errorf("bursty has %d simultaneous arrivals, poisson %d — expected more",
			simultaneous(bursty), simultaneous(poisson))
	}
	// Periodic: constant gaps.
	gap := periodic.Jobs[1].Release - periodic.Jobs[0].Release
	for i := 2; i < len(periodic.Jobs); i++ {
		g := periodic.Jobs[i].Release - periodic.Jobs[i-1].Release
		if g != gap && g != gap+1 && g != gap-1 { // integer truncation wobble
			t.Fatalf("periodic gap %d differs from %d", g, gap)
		}
	}
	// Long-run spans comparable (same load target): bursty within 3x of poisson.
	ps := poisson.Jobs[len(poisson.Jobs)-1].Release
	bs := bursty.Jobs[len(bursty.Jobs)-1].Release
	if bs > 3*ps || ps > 3*bs {
		t.Errorf("arrival spans diverge: poisson %d vs bursty %d", ps, bs)
	}
	if ArrivalPoisson.String() != "poisson" || ArrivalBursty.String() != "bursty" || ArrivalPeriodic.String() != "periodic" {
		t.Error("arrival names wrong")
	}
}

func TestDescribe(t *testing.T) {
	inst, err := Generate(Config{Seed: 3, N: 20, M: 8, Eps: 1, Load: 2, SlackSpread: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	st := Describe(inst)
	if st.Jobs != 20 || st.M != 8 {
		t.Errorf("jobs=%d m=%d", st.Jobs, st.M)
	}
	if st.TotalWork != inst.TotalWork() {
		t.Errorf("ΣW = %d vs %d", st.TotalWork, inst.TotalWork())
	}
	// Every job satisfies the eps=1 condition → min slack ≥ 2 (up to ceil).
	if st.MinSlack < 2-1e-9 {
		t.Errorf("min slack = %v, want ≥ 2", st.MinSlack)
	}
	if st.MeanPar < 1 || st.MaxPar < st.MeanPar {
		t.Errorf("parallelism stats wrong: mean %v max %v", st.MeanPar, st.MaxPar)
	}
	if st.OfferedLoad <= 0 {
		t.Errorf("offered load = %v", st.OfferedLoad)
	}
	if st.Table().NumRows() != 1 {
		t.Error("stats table should have one row")
	}
}

func TestDescribeEmpty(t *testing.T) {
	st := Describe(&Instance{M: 2})
	if st.Jobs != 0 || st.TotalWork != 0 {
		t.Errorf("empty stats: %+v", st)
	}
}
