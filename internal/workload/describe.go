package workload

import (
	"dagsched/internal/metrics"
)

// Stats summarizes an instance: the distributions a reader needs to judge
// what a scheduler was up against.
type Stats struct {
	Jobs        int
	M           int
	TotalWork   int64
	Span        int64 // last release + max deadline horizon
	MeanW       float64
	MeanL       float64
	MeanPar     float64 // mean W/L (average parallelism)
	MaxPar      float64
	MeanSlack   float64 // mean D/((W−L)/m + L), the Theorem 2 slack ratio
	MinSlack    float64
	OfferedLoad float64 // ΣW / (m · release span), the offered utilization
}

// Describe computes instance statistics.
func Describe(in *Instance) Stats {
	st := Stats{Jobs: len(in.Jobs), M: in.M, MinSlack: -1}
	if len(in.Jobs) == 0 {
		return st
	}
	var lastRelease, maxHorizon int64
	var sumW, sumL, sumPar, sumSlack float64
	for _, j := range in.Jobs {
		w, l := j.Graph.TotalWork(), j.Graph.Span()
		st.TotalWork += w
		sumW += float64(w)
		sumL += float64(l)
		par := float64(w) / float64(l)
		sumPar += par
		if par > st.MaxPar {
			st.MaxPar = par
		}
		lower := float64(w-l)/float64(in.M) + float64(l)
		slack := float64(j.RelDeadline()) / lower
		sumSlack += slack
		if st.MinSlack < 0 || slack < st.MinSlack {
			st.MinSlack = slack
		}
		if j.Release > lastRelease {
			lastRelease = j.Release
		}
		if h := j.AbsDeadline(); h > maxHorizon {
			maxHorizon = h
		}
	}
	n := float64(len(in.Jobs))
	st.MeanW = sumW / n
	st.MeanL = sumL / n
	st.MeanPar = sumPar / n
	st.MeanSlack = sumSlack / n
	st.Span = maxHorizon
	if lastRelease > 0 {
		st.OfferedLoad = float64(st.TotalWork) / (float64(in.M) * float64(lastRelease))
	}
	return st
}

// Table renders the statistics as a metrics table (one row).
func (st Stats) Table() *metrics.Table {
	tb := metrics.NewTable("instance statistics",
		"jobs", "m", "ΣW", "mean W", "mean L", "mean W/L", "max W/L",
		"mean slack", "min slack", "offered load")
	tb.AddRow(st.Jobs, st.M, st.TotalWork, st.MeanW, st.MeanL,
		st.MeanPar, st.MaxPar, st.MeanSlack, st.MinSlack, st.OfferedLoad)
	return tb
}
