package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p Problem) Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	return sol
}

func TestSolveTextbook(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → x=2, y=6, obj=36.
	sol := solveOK(t, Problem{
		C: []float64{3, 5},
		A: [][]float64{{1, 0}, {0, 2}, {3, 2}},
		B: []float64{4, 12, 18},
	})
	if math.Abs(sol.Objective-36) > 1e-6 {
		t.Errorf("objective = %v, want 36", sol.Objective)
	}
	if math.Abs(sol.X[0]-2) > 1e-6 || math.Abs(sol.X[1]-6) > 1e-6 {
		t.Errorf("X = %v, want [2 6]", sol.X)
	}
}

func TestSolveKnapsackRelaxation(t *testing.T) {
	// Fractional knapsack: max 10a + 6b + 4c, a+b+c ≤ 1 each ≤ 1... with
	// weights 5a + 4b + 3c ≤ 10, a,b,c ≤ 1 → a=1, b=1, c=1/3 → 10+6+4/3.
	sol := solveOK(t, Problem{
		C: []float64{10, 6, 4},
		A: [][]float64{
			{5, 4, 3},
			{1, 0, 0},
			{0, 1, 0},
			{0, 0, 1},
		},
		B: []float64{10, 1, 1, 1},
	})
	want := 10 + 6 + 4.0/3.0
	if math.Abs(sol.Objective-want) > 1e-6 {
		t.Errorf("objective = %v, want %v", sol.Objective, want)
	}
}

func TestSolveUnbounded(t *testing.T) {
	sol, err := Solve(Problem{
		C: []float64{1, 1},
		A: [][]float64{{1, -1}},
		B: []float64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveZeroObjective(t *testing.T) {
	sol := solveOK(t, Problem{
		C: []float64{-1, -2}, // all-negative c → origin optimal
		A: [][]float64{{1, 1}},
		B: []float64{5},
	})
	if sol.Objective != 0 {
		t.Errorf("objective = %v, want 0", sol.Objective)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// Degenerate vertex (redundant constraints through the optimum).
	sol := solveOK(t, Problem{
		C: []float64{1, 1},
		A: [][]float64{{1, 0}, {0, 1}, {1, 1}, {1, 1}},
		B: []float64{1, 1, 2, 2},
	})
	if math.Abs(sol.Objective-2) > 1e-6 {
		t.Errorf("objective = %v, want 2", sol.Objective)
	}
}

func TestSolveTightCapacityZero(t *testing.T) {
	// b = 0 forces x = 0 when the constraint covers every variable.
	sol := solveOK(t, Problem{
		C: []float64{5, 7},
		A: [][]float64{{1, 1}},
		B: []float64{0},
	})
	if sol.Objective != 0 {
		t.Errorf("objective = %v, want 0", sol.Objective)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Problem{
		{C: nil, A: nil, B: nil},
		{C: []float64{1}, A: [][]float64{{1}}, B: []float64{-1}},
		{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}},
		{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}},
		{C: []float64{math.NaN()}, A: nil, B: nil},
	}
	for i, p := range bad {
		if _, err := Solve(p); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestPropOptimalIsFeasibleAndBeatsGreedy: on random bounded problems the
// solution must satisfy all constraints and dominate a feasible greedy point.
func TestPropOptimalIsFeasibleAndBeatsGreedy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		p := Problem{C: make([]float64, n), A: make([][]float64, m), B: make([]float64, m)}
		for j := range p.C {
			p.C[j] = rng.Float64() * 10
		}
		for i := range p.A {
			p.A[i] = make([]float64, n)
			for j := range p.A[i] {
				p.A[i][j] = rng.Float64() * 5
			}
			p.B[i] = rng.Float64() * 20
		}
		// Add box constraints x_j ≤ 1 to guarantee boundedness.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.A = append(p.A, row)
			p.B = append(p.B, 1)
		}
		sol, err := Solve(p)
		if err != nil || sol.Status != Optimal {
			return false
		}
		// Feasibility.
		for i, row := range p.A {
			var lhs float64
			for j := range row {
				lhs += row[j] * sol.X[j]
			}
			if lhs > p.B[i]+1e-6 {
				return false
			}
		}
		for _, x := range sol.X {
			if x < -1e-9 {
				return false
			}
		}
		// Dominates the zero point and a single-coordinate greedy point.
		if sol.Objective < -1e-9 {
			return false
		}
		best := 0
		for j := range p.C {
			if p.C[j] > p.C[best] {
				best = j
			}
		}
		// Largest feasible step along e_best.
		step := 1.0
		for i, row := range p.A {
			if row[best] > 1e-12 {
				if s := p.B[i] / row[best]; s < step {
					step = s
				}
			}
		}
		return sol.Objective >= p.C[best]*step-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
