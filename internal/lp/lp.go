// Package lp implements a dense-tableau primal simplex solver for linear
// programs of the form
//
//	maximize    c·x
//	subject to  A·x ≤ b,  x ≥ 0,  b ≥ 0.
//
// The non-negative right-hand side makes the all-slack basis feasible, so no
// phase-1 is needed; this covers the scheduling relaxations in internal/opt
// (capacities are non-negative by construction). Bland's rule guarantees
// termination on degenerate problems.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Problem is max c·x s.t. A·x ≤ b, x ≥ 0 with b ≥ 0.
type Problem struct {
	C []float64   // objective coefficients, length n
	A [][]float64 // constraint matrix, m rows of length n
	B []float64   // right-hand side, length m, non-negative
}

// Status reports how solving ended.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Unbounded means the objective can grow without limit.
	Unbounded
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	X         []float64 // primal values, length n (valid when Optimal)
	Objective float64   // c·X (valid when Optimal)
	Pivots    int       // simplex pivots performed
}

// ErrBadProblem reports a structurally invalid problem.
var ErrBadProblem = errors.New("lp: invalid problem")

const eps = 1e-9

// Validate checks dimensions and the b ≥ 0 requirement.
func (p Problem) Validate() error {
	n := len(p.C)
	if n == 0 {
		return fmt.Errorf("%w: empty objective", ErrBadProblem)
	}
	if len(p.A) != len(p.B) {
		return fmt.Errorf("%w: %d rows vs %d rhs entries", ErrBadProblem, len(p.A), len(p.B))
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("%w: row %d has %d entries, want %d", ErrBadProblem, i, len(row), n)
		}
	}
	for i, bi := range p.B {
		if bi < 0 || math.IsNaN(bi) || math.IsInf(bi, 0) {
			return fmt.Errorf("%w: b[%d] = %v (must be finite and ≥ 0)", ErrBadProblem, i, bi)
		}
	}
	for j, cj := range p.C {
		if math.IsNaN(cj) || math.IsInf(cj, 0) {
			return fmt.Errorf("%w: c[%d] = %v", ErrBadProblem, j, cj)
		}
	}
	return nil
}

// Solve runs primal simplex with Bland's anti-cycling rule. The iteration
// cap (quadratic in the tableau size) exists purely as a defensive backstop;
// Bland's rule makes cycling impossible.
func Solve(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	n := len(p.C)
	m := len(p.A)

	// Tableau: rows 0..m-1 are constraints over [x | slacks | rhs];
	// row m is the objective in reduced-cost form (negated c).
	width := n + m + 1
	tab := make([][]float64, m+1)
	for i := 0; i < m; i++ {
		row := make([]float64, width)
		copy(row, p.A[i])
		row[n+i] = 1
		row[width-1] = p.B[i]
		tab[i] = row
	}
	obj := make([]float64, width)
	for j, cj := range p.C {
		obj[j] = -cj
	}
	tab[m] = obj

	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + i
	}

	maxPivots := 50 * (m + n + 10)
	pivots := 0
	for {
		// Bland: entering variable = lowest index with negative reduced cost.
		enter := -1
		for j := 0; j < n+m; j++ {
			if tab[m][j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			break // optimal
		}
		// Leaving variable: min ratio, ties by lowest basis index (Bland).
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := tab[i][enter]
			if a <= eps {
				continue
			}
			ratio := tab[i][width-1] / a
			if ratio < bestRatio-eps || (ratio < bestRatio+eps && (leave < 0 || basis[i] < basis[leave])) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave < 0 {
			return Solution{Status: Unbounded, Pivots: pivots}, nil
		}
		pivot(tab, leave, enter)
		basis[leave] = enter
		pivots++
		if pivots > maxPivots {
			return Solution{}, fmt.Errorf("lp: pivot limit %d exceeded (m=%d n=%d)", maxPivots, m, n)
		}
	}

	sol := Solution{Status: Optimal, X: make([]float64, n), Pivots: pivots}
	for i, bv := range basis {
		if bv < n {
			sol.X[bv] = tab[i][width-1]
		}
	}
	for j, cj := range p.C {
		sol.Objective += cj * sol.X[j]
	}
	return sol, nil
}

// pivot performs a Gauss-Jordan pivot on tab[row][col].
func pivot(tab [][]float64, row, col int) {
	width := len(tab[row])
	pv := tab[row][col]
	for j := 0; j < width; j++ {
		tab[row][j] /= pv
	}
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j < width; j++ {
			tab[i][j] -= f * tab[row][j]
		}
		tab[i][col] = 0 // kill residual rounding
	}
}
