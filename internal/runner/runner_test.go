package runner

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// grid3x4 is a small two-axis grid whose cell value encodes its coordinates,
// so result placement errors are visible.
func grid3x4() Grid[int] {
	return Grid[int]{
		Name: "test",
		Axes: []Axis{{Name: "a", Size: 3}, {Name: "b", Size: 4}},
		Cell: func(_ context.Context, c Cell) (int, error) {
			return 100*c.At(0) + c.At(1), nil
		},
	}
}

func TestRunMatchesSerialForAnyWorkerCount(t *testing.T) {
	g := grid3x4()
	want := make([]int, g.Size())
	for i := range want {
		want[i] = 100*(i/4) + i%4
	}
	for _, workers := range []int{1, 2, 3, 7, 64} {
		got, err := Run(context.Background(), g, Options{Parallel: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: got %v, want %v", workers, got, want)
		}
	}
}

func TestCoordsRoundTrip(t *testing.T) {
	g := Grid[int]{Axes: []Axis{{"x", 2}, {"y", 3}, {"z", 5}}}
	if g.Size() != 30 {
		t.Fatalf("Size = %d, want 30", g.Size())
	}
	seen := map[string]bool{}
	for i := 0; i < g.Size(); i++ {
		c := g.coords(i)
		key := fmt.Sprint(c)
		if seen[key] {
			t.Fatalf("duplicate coords %v at index %d", c, i)
		}
		seen[key] = true
		// Row-major: index = (x*3 + y)*5 + z.
		if got := (c[0]*3+c[1])*5 + c[2]; got != i {
			t.Errorf("coords(%d) = %v, recombines to %d", i, c, got)
		}
	}
}

func TestRunErrorIsLowestFailingCell(t *testing.T) {
	g := Grid[int]{
		Name: "failing",
		Axes: []Axis{{Name: "i", Size: 16}},
		Cell: func(_ context.Context, c Cell) (int, error) {
			if c.Index%3 == 2 { // cells 2, 5, 8, … fail
				return 0, fmt.Errorf("boom at %d", c.Index)
			}
			return c.Index, nil
		},
	}
	for _, workers := range []int{1, 4, 16} {
		_, err := Run(context.Background(), g, Options{Parallel: workers})
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		// The reported failure must be cell 2 regardless of scheduling. With
		// workers > 1 later cells may also have failed, but never earlier ones.
		want := "runner: failing i=2: boom at 2"
		if err.Error() != want {
			t.Errorf("workers=%d: error %q, want %q", workers, err, want)
		}
	}
}

func TestRunErrorUnwraps(t *testing.T) {
	sentinel := errors.New("sentinel")
	g := Grid[int]{
		Name: "w",
		Axes: []Axis{{Name: "i", Size: 1}},
		Cell: func(context.Context, Cell) (int, error) { return 0, sentinel },
	}
	_, err := Run(context.Background(), g, Options{Parallel: 2})
	if !errors.Is(err, sentinel) {
		t.Errorf("error %v does not unwrap to the cell's cause", err)
	}
}

func TestRunCancellationMidGrid(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	g := Grid[int]{
		Name: "cancel",
		Axes: []Axis{{Name: "i", Size: 1000}},
		Cell: func(ctx context.Context, c Cell) (int, error) {
			if started.Add(1) == 4 {
				cancel()
				close(release)
			}
			<-release // hold early cells until cancellation is in flight
			return c.Index, nil
		},
	}
	_, err := Run(ctx, g, Options{Parallel: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Errorf("all %d cells ran despite cancellation", n)
	}
}

func TestRunCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	g := Grid[int]{
		Name: "pre-canceled",
		Axes: []Axis{{Name: "i", Size: 50}},
		Cell: func(context.Context, Cell) (int, error) {
			ran.Add(1)
			return 0, nil
		},
	}
	if _, err := Run(ctx, g, Options{Parallel: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d cells ran under a pre-canceled context", ran.Load())
	}
}

func TestRunProgressMonotonicAndComplete(t *testing.T) {
	g := grid3x4()
	var mu sync.Mutex
	var dones []int
	_, err := Run(context.Background(), g, Options{
		Parallel: 5,
		Progress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			if total != g.Size() {
				t.Errorf("total = %d, want %d", total, g.Size())
			}
			dones = append(dones, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dones) != g.Size() {
		t.Fatalf("progress called %d times, want %d", len(dones), g.Size())
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("progress done sequence %v not strictly increasing by 1", dones)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Grid[int]{
		Name: "empty-axis",
		Axes: []Axis{{Name: "a", Size: 0}},
		Cell: func(context.Context, Cell) (int, error) { return 0, nil },
	}, Options{}); err == nil {
		t.Error("accepted zero-size axis")
	}
	if _, err := Run(context.Background(), Grid[int]{Name: "nil-cell", Axes: []Axis{{"a", 1}}}, Options{}); err == nil {
		t.Error("accepted nil cell function")
	}
}

func TestRunNoAxesIsSingleCell(t *testing.T) {
	g := Grid[string]{
		Name: "scalar",
		Cell: func(_ context.Context, c Cell) (string, error) {
			if c.Index != 0 || len(c.Coords) != 0 {
				return "", fmt.Errorf("unexpected cell %+v", c)
			}
			return "ok", nil
		},
	}
	got, err := Run(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "ok" {
		t.Errorf("got %v, want [ok]", got)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	items := []string{"a", "b", "c", "d", "e"}
	out, err := Map(context.Background(), "map", items, Options{Parallel: 3},
		func(_ context.Context, s string, i int) (string, error) {
			return fmt.Sprintf("%s%d", s, i), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a0", "b1", "c2", "d3", "e4"}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("got %v, want %v", out, want)
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), "empty", nil, Options{},
		func(context.Context, int, int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Errorf("got (%v, %v), want (nil, nil)", out, err)
	}
}

func TestOptionsWorkers(t *testing.T) {
	if (Options{Parallel: 3}).Workers() != 3 {
		t.Error("explicit worker count ignored")
	}
	if (Options{}).Workers() < 1 {
		t.Error("default worker count < 1")
	}
	if (Options{Parallel: -1}).Workers() < 1 {
		t.Error("negative worker count not defaulted")
	}
}
