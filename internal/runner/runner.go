// Package runner executes declarative experiment grids on a deterministic
// worker pool. An experiment names its axes (instances, schedulers, seeds,
// speeds, ε …) and provides a pure cell function; the runner fans the cells
// out across workers and hands back results indexed by cell coordinates, so
// a parallel run is bit-identical to a serial one regardless of completion
// order. The reproduction suite (internal/experiments) is built entirely on
// this package; cmd/spaa-bench exposes the worker count as -parallel.
//
// Determinism contract: the cell function must derive everything it needs
// from the cell coordinates (and captured read-only data). Under that
// contract Run returns, for any worker count, the exact slice a serial loop
// over cells in index order would produce — results are stored by cell
// index, never by completion order, and when several cells fail the
// reported error is the one from the lowest-index failing cell.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Axis is one named dimension of a grid.
type Axis struct {
	Name string
	Size int
}

// Cell identifies one point of a grid: its flat row-major index and one
// coordinate per axis.
type Cell struct {
	Index  int
	Coords []int
}

// At returns the coordinate along axis i (a readability helper so cell
// functions can write c.At(0) for the first axis).
func (c Cell) At(i int) int { return c.Coords[i] }

// Grid is a declarative experiment grid: the cross product of Axes defines
// the cell space, and Cell computes one sample. Cell must be safe to call
// from multiple goroutines and must depend only on the cell coordinates.
type Grid[T any] struct {
	// Name labels the grid in progress reports and errors.
	Name string
	// Axes define the cell space; every Size must be ≥ 1.
	Axes []Axis
	// Cell computes the sample for one cell.
	Cell func(ctx context.Context, c Cell) (T, error)
}

// Size returns the number of cells (the product of the axis sizes).
func (g *Grid[T]) Size() int {
	n := 1
	for _, a := range g.Axes {
		n *= a.Size
	}
	return n
}

// coords expands a flat row-major index into one coordinate per axis.
func (g *Grid[T]) coords(index int) []int {
	out := make([]int, len(g.Axes))
	for i := len(g.Axes) - 1; i >= 0; i-- {
		out[i] = index % g.Axes[i].Size
		index /= g.Axes[i].Size
	}
	return out
}

// Options tunes grid execution.
type Options struct {
	// Parallel is the worker count; 0 (or negative) means GOMAXPROCS.
	Parallel int
	// Progress, if set, is called after each cell completes with the number
	// of completed cells and the total. Calls are serialized but may arrive
	// in any cell order; done is strictly increasing.
	Progress func(done, total int)
}

// Workers returns the effective worker count for o.
func (o Options) Workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// cellError reports a failed cell with its grid name and coordinates.
type cellError struct {
	grid  string
	cell  Cell
	axes  []Axis
	cause error
}

func (e *cellError) Error() string {
	s := "runner"
	if e.grid != "" {
		s += ": " + e.grid
	}
	for i, a := range e.axes {
		s += fmt.Sprintf(" %s=%d", a.Name, e.cell.Coords[i])
	}
	return fmt.Sprintf("%s: %v", s, e.cause)
}

func (e *cellError) Unwrap() error { return e.cause }

// Run executes every cell of g and returns the samples indexed by flat cell
// index. The output is independent of the worker count and of cell
// completion order. On error it returns the failure of the lowest-index
// failing cell (wrapped with the grid name and cell coordinates); when the
// context is canceled before all cells finish it returns ctx.Err() unless
// an earlier cell error is pending. Cells that never ran leave zero values
// in the (discarded) result slice.
func Run[T any](ctx context.Context, g Grid[T], opt Options) ([]T, error) {
	for _, a := range g.Axes {
		if a.Size < 1 {
			return nil, fmt.Errorf("runner: %s: axis %q has size %d, need ≥ 1", g.Name, a.Name, a.Size)
		}
	}
	if g.Cell == nil {
		return nil, fmt.Errorf("runner: %s: nil cell function", g.Name)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	total := g.Size()
	results := make([]T, total)
	errs := make([]error, total)

	workers := opt.Workers()
	if workers > total {
		workers = total
	}

	var (
		next     atomic.Int64 // next cell index to claim
		done     int          // completed cells, guarded by mu
		failed   atomic.Bool  // fast-path: stop claiming new cells after a failure
		mu       sync.Mutex   // guards done + Progress callback
		wg       sync.WaitGroup
		canceled = ctx.Done()
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				select {
				case <-canceled:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				c := Cell{Index: i, Coords: g.coords(i)}
				v, err := g.Cell(ctx, c)
				if err != nil {
					errs[i] = &cellError{grid: g.Name, cell: c, axes: g.Axes, cause: err}
					failed.Store(true)
					continue
				}
				results[i] = v
				if opt.Progress != nil {
					mu.Lock()
					done++
					opt.Progress(done, total)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	// Deterministic error selection: lowest cell index wins, so the error a
	// caller sees does not depend on scheduling.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// Map runs f over items on the worker pool and returns the outputs in input
// order — the one-axis convenience form of Run.
func Map[In, Out any](ctx context.Context, name string, items []In, opt Options, f func(ctx context.Context, item In, index int) (Out, error)) ([]Out, error) {
	if len(items) == 0 {
		return nil, nil
	}
	g := Grid[Out]{
		Name: name,
		Axes: []Axis{{Name: "item", Size: len(items)}},
		Cell: func(ctx context.Context, c Cell) (Out, error) {
			return f(ctx, items[c.Index], c.Index)
		},
	}
	return Run(ctx, g, opt)
}
