package telemetry

import (
	"bytes"
	"testing"
)

func buildSampleTrace() *ChromeTrace {
	ct := NewChromeTrace()
	ct.AddProcessName(1, "machine")
	ct.AddProcessName(2, "jobs")
	ct.AddThreadName(1, 0, "proc 0")
	ct.AddThreadName(2, 7, "job 7")
	ct.AddSpan(1, 0, "job 7", "exec", 0, 5, map[string]any{"job": 7})
	ct.AddSpan(2, 7, "run ×2", "job", 0, 5, nil)
	ct.AddInstant(2, 7, "complete", "event", 5, map[string]any{"profit": 1.5})
	ct.AddCounter(1, "machine.util", 0, 0.25)
	ct.AddCounter(1, "machine.util", 1, 0.5)
	ct.SortStable()
	return ct
}

func TestChromeTraceRoundTripValidates(t *testing.T) {
	ct := buildSampleTrace()
	var buf bytes.Buffer
	if err := ct.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("generated trace failed validation: %v", err)
	}
}

func TestChromeTraceDeterministicBytes(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildSampleTrace().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildSampleTrace().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("trace JSON not byte-deterministic")
	}
}

func TestAddSpanWidensZeroDur(t *testing.T) {
	ct := NewChromeTrace()
	ct.AddSpan(1, 0, "blip", "exec", 3, 0, nil)
	if ct.TraceEvents[0].Dur != 1 {
		t.Errorf("zero-dur span not widened: dur=%d", ct.TraceEvents[0].Dur)
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"not json", `{`},
		{"no traceEvents", `{"displayTimeUnit":"ms"}`},
		{"missing ph", `{"traceEvents":[{"name":"x","ts":0,"pid":1,"tid":0}]}`},
		{"missing name", `{"traceEvents":[{"ph":"X","ts":0,"dur":1,"pid":1,"tid":0}]}`},
		{"unknown phase", `{"traceEvents":[{"name":"x","ph":"Z","ts":0,"pid":1,"tid":0}]}`},
		{"negative ts", `{"traceEvents":[{"name":"x","ph":"i","ts":-1,"pid":1,"tid":0,"s":"t"}]}`},
		{"X without dur", `{"traceEvents":[{"name":"x","ph":"X","ts":0,"pid":1,"tid":0}]}`},
		{"X zero dur", `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":0,"pid":1,"tid":0}]}`},
		{"M without args.name", `{"traceEvents":[{"name":"process_name","ph":"M","pid":1,"args":{}}]}`},
		{"C without args", `{"traceEvents":[{"name":"c","ph":"C","ts":0,"pid":1}]}`},
	}
	for _, c := range cases {
		if err := ValidateChromeTrace([]byte(c.data)); err == nil {
			t.Errorf("%s: validation passed, want error", c.name)
		}
	}
	// Empty-but-present traceEvents is valid.
	if err := ValidateChromeTrace([]byte(`{"traceEvents":[]}`)); err != nil {
		t.Errorf("empty traceEvents rejected: %v", err)
	}
}

func TestAddCounterSeries(t *testing.T) {
	p := NewProbe(1, false)
	p.Observe("machine.util", 0, 0.5)
	p.Observe("machine.util", 1, 0.75)
	ct := NewChromeTrace()
	ct.AddCounterSeries(1, p.Get("machine.util"))
	if len(ct.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(ct.TraceEvents))
	}
	if ct.TraceEvents[1].TS != 1 || ct.TraceEvents[1].Args["value"] != 0.75 {
		t.Errorf("bad counter sample: %+v", ct.TraceEvents[1])
	}
	ct.AddCounterSeries(1, nil) // must not panic
}
