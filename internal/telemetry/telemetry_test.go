package telemetry

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestEventJSONLDeterministicAndWellFormed(t *testing.T) {
	events := []Event{
		MachineEvent(0, KindCapacity),
		JobEvent(3, KindArrival, 7),
		{T: 5, Kind: KindDispatch, Job: 7, Proc: -1, Procs: 4},
		{T: 9, Kind: KindComplete, Job: 7, Proc: -1, Value: 2.5},
		{T: 11, Kind: KindPark, Job: 8, Proc: -1, Why: `not-"delta"-good\x`},
		ProcEvent(12, KindFaultBegin, 3),
	}
	a := EventsJSONL(events)
	b := EventsJSONL(events)
	if !bytes.Equal(a, b) {
		t.Fatalf("encoding not deterministic")
	}
	lines := strings.Split(strings.TrimRight(string(a), "\n"), "\n")
	if len(lines) != len(events) {
		t.Fatalf("got %d lines, want %d", len(lines), len(events))
	}
	want := []string{
		`{"t":0,"kind":"capacity"}`,
		`{"t":3,"kind":"arrival","job":7}`,
		`{"t":5,"kind":"dispatch","job":7,"procs":4}`,
		`{"t":9,"kind":"complete","job":7,"value":2.5}`,
		`{"t":11,"kind":"park","job":8,"why":"not-\"delta\"-good\\x"}`,
		`{"t":12,"kind":"fault_begin","proc":3}`,
	}
	for i, w := range want {
		if lines[i] != w {
			t.Errorf("line %d:\n got %s\nwant %s", i, lines[i], w)
		}
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Emit(JobEvent(0, KindArrival, 1)) // must not panic
	if r.Events() != nil {
		t.Errorf("nil recorder returned events")
	}
	if r.Registry() != nil {
		t.Errorf("nil recorder returned registry")
	}
	var reg *Registry
	reg.Inc("x", 1)
	reg.SetGauge("g", 2)
	reg.Observe("h", 3)
	if reg.Counter("x") != 0 || reg.Gauge("g") != 0 || reg.Hist("h") != nil {
		t.Errorf("nil registry stored values")
	}
	var p *Probe
	if p.Want(0) {
		t.Errorf("nil probe wants samples")
	}
	p.Observe("s", 0, 1)
	p.ObserveTick(TickSample{})
	p.ObserveJob(JobSample{})
	if p.Series() != nil || p.Get("s") != nil {
		t.Errorf("nil probe returned series")
	}
}

func TestRecorderCountsKinds(t *testing.T) {
	r := NewRecorder()
	r.Emit(JobEvent(0, KindArrival, 1))
	r.Emit(JobEvent(0, KindArrival, 2))
	r.Emit(JobEvent(4, KindComplete, 1))
	if got := r.Registry().Counter("events.arrival"); got != 2 {
		t.Errorf("events.arrival = %d, want 2", got)
	}
	if got := r.Registry().Counter("events.complete"); got != 1 {
		t.Errorf("events.complete = %d, want 1", got)
	}
	if n := len(r.Events()); n != 3 {
		t.Errorf("len(events) = %d, want 3", n)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{-5, 0}, {0, 0}, {0.5, 0}, {0.999, 0},
		{1, 1}, {1.5, 1}, {1.999, 1},
		{2, 2}, {3, 2}, {4, 3}, {7.9, 3}, {8, 4},
		{1024, 11}, {math.MaxFloat64, 65},
	}
	for _, c := range cases {
		v := c.v
		if v < 0 {
			v = 0
		}
		if got := bucketOf(v); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	h := &Histogram{}
	for _, c := range cases {
		h.Observe(c.v)
	}
	if h.Count != int64(len(cases)) {
		t.Errorf("Count = %d, want %d", h.Count, len(cases))
	}
	if h.Min != 0 || h.Max != math.MaxFloat64 {
		t.Errorf("Min/Max = %v/%v", h.Min, h.Max)
	}
	edges, counts := h.Buckets()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != h.Count {
		t.Errorf("bucket counts sum to %d, want %d", total, h.Count)
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			t.Errorf("edges not ascending: %v", edges)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := &Histogram{}
	for v := 1.0; v <= 100; v++ {
		h.Observe(v)
	}
	// Quantile returns the upper bucket edge, so p50 of 1..100 (which lands
	// in bucket [32,64)) must be 64.
	if got := h.Quantile(0.5); got != 64 {
		t.Errorf("Quantile(0.5) = %v, want 64", got)
	}
	if got := h.Quantile(1); got != h.Max {
		t.Errorf("Quantile(1) = %v, want Max=%v", got, h.Max)
	}
	empty := &Histogram{}
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
}

func TestRegistryMergeCommutative(t *testing.T) {
	build := func(vals []float64, counter int64, gauge float64) *Registry {
		r := &Registry{}
		r.Inc("c", counter)
		r.SetGauge("g", gauge)
		for _, v := range vals {
			r.Observe("h", v)
		}
		return r
	}
	a := build([]float64{1, 5, 9}, 3, 2.0)
	b := build([]float64{2, 100}, 4, 7.5)
	c := build(nil, 1, 1.0)

	ab := &Registry{}
	ab.Merge(a)
	ab.Merge(b)
	ab.Merge(c)
	ba := &Registry{}
	ba.Merge(c)
	ba.Merge(b)
	ba.Merge(a)

	if ab.Counter("c") != ba.Counter("c") || ab.Counter("c") != 8 {
		t.Errorf("counter merge: %d vs %d", ab.Counter("c"), ba.Counter("c"))
	}
	if ab.Gauge("g") != ba.Gauge("g") || ab.Gauge("g") != 7.5 {
		t.Errorf("gauge merge: %v vs %v", ab.Gauge("g"), ba.Gauge("g"))
	}
	ha, hb := ab.Hist("h"), ba.Hist("h")
	if ha.Count != hb.Count || ha.Min != hb.Min || ha.Max != hb.Max {
		t.Errorf("hist merge differs: %+v vs %+v", ha, hb)
	}
	ea, ca := ha.Buckets()
	eb, cb := hb.Buckets()
	if len(ea) != len(eb) {
		t.Fatalf("bucket sets differ")
	}
	for i := range ea {
		if ea[i] != eb[i] || ca[i] != cb[i] {
			t.Errorf("bucket %d differs", i)
		}
	}
}

func TestSinkConcurrentFoldOrderIndependent(t *testing.T) {
	mkReg := func(i int) *Registry {
		r := &Registry{}
		r.Inc("runs", 1)
		r.Inc("work", int64(i))
		r.Observe("lat", float64(i%13))
		r.SetGauge("peak", float64(i))
		return r
	}
	const n = 64
	fold := func(parallel bool) *Registry {
		s := NewSink()
		if parallel {
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					s.Fold(mkReg(i))
				}(i)
			}
			wg.Wait()
		} else {
			for i := n - 1; i >= 0; i-- {
				s.Fold(mkReg(i))
			}
		}
		return s.Snapshot()
	}
	seq := fold(false)
	par := fold(true)
	if seq.Counter("runs") != n || par.Counter("runs") != n {
		t.Fatalf("runs: %d/%d", seq.Counter("runs"), par.Counter("runs"))
	}
	if seq.Counter("work") != par.Counter("work") {
		t.Errorf("work differs: %d vs %d", seq.Counter("work"), par.Counter("work"))
	}
	if seq.Gauge("peak") != par.Gauge("peak") {
		t.Errorf("peak differs")
	}
	hs, hp := seq.Hist("lat"), par.Hist("lat")
	if hs.Count != hp.Count || hs.Min != hp.Min || hs.Max != hp.Max {
		t.Errorf("hist differs")
	}
}

func TestProbeStrideAndSeries(t *testing.T) {
	p := NewProbe(10, false)
	for t64 := int64(0); t64 < 100; t64++ {
		if !p.Want(t64) {
			continue
		}
		p.ObserveTick(TickSample{T: t64, Capacity: 8, Busy: 4, LiveJobs: 2, ReadyNodes: 6})
	}
	util := p.Get("machine.util")
	if util == nil {
		t.Fatalf("machine.util missing")
	}
	if util.Data.N() != 10 {
		t.Errorf("stride 10 over 100 ticks: got %d samples, want 10", util.Data.N())
	}
	if got := util.Data.Mean(); got != 0.5 {
		t.Errorf("util mean = %v, want 0.5", got)
	}
	names := []string{}
	for _, s := range p.Series() {
		names = append(names, s.Name)
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Errorf("series not sorted: %v", names)
		}
	}
	pj := NewProbe(1, true)
	pj.ObserveJob(JobSample{T: 0, Job: 3, Executed: 10, RemainingSpan: 5, Slack: 7, Ready: 2})
	if pj.Get("job.3.executed") == nil || pj.Get("job.3.slack") == nil {
		t.Errorf("per-job series missing")
	}
}

type fakeSched struct{ rec *Recorder }

func (f *fakeSched) SetTelemetry(r *Recorder) { f.rec = r }

func TestAttach(t *testing.T) {
	f := &fakeSched{}
	r := NewRecorder()
	if !Attach(f, r) {
		t.Errorf("Attach returned false for Instrumentable")
	}
	if f.rec != r {
		t.Errorf("recorder not wired")
	}
	if Attach(42, r) {
		t.Errorf("Attach returned true for non-Instrumentable")
	}
}

func TestRegistryTable(t *testing.T) {
	r := &Registry{}
	r.Inc("events.arrival", 5)
	r.SetGauge("peak_q", 3)
	r.Observe("lat", 10)
	tb := r.Table("telemetry")
	out := tb.Render()
	for _, want := range []string{"events.arrival", "peak_q", "lat"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
