package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"dagsched/internal/metrics"
)

// Registry is a typed store of named counters, gauges, and histograms
// aggregated over one run (or, through Sink, over a whole experiment grid).
// The zero value is ready to use. Registries merge commutatively — counter
// and histogram-bucket addition, gauge maximum — so folding per-cell
// registries in any completion order yields identical aggregates.
type Registry struct {
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*Histogram
}

// Inc adds delta to a counter.
func (r *Registry) Inc(name string, delta int64) {
	if r == nil {
		return
	}
	if r.counters == nil {
		r.counters = make(map[string]int64)
	}
	r.counters[name] += delta
}

// Counter returns a counter's value (0 when absent).
func (r *Registry) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	return r.counters[name]
}

// SetGauge records the latest value of a gauge. Across merges a gauge
// resolves to the maximum observed value (the only order-independent choice
// for "last value" semantics).
func (r *Registry) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	if r.gauges == nil {
		r.gauges = make(map[string]float64)
	}
	r.gauges[name] = v
}

// Gauge returns a gauge's value (0 when absent).
func (r *Registry) Gauge(name string) float64 {
	if r == nil {
		return 0
	}
	return r.gauges[name]
}

// Observe adds a sample to a histogram.
func (r *Registry) Observe(name string, v float64) {
	if r == nil {
		return
	}
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	h.Observe(v)
}

// Hist returns the named histogram, or nil when no sample was observed.
func (r *Registry) Hist(name string) *Histogram {
	if r == nil {
		return nil
	}
	return r.hists[name]
}

// Counters returns a copy of the counter map.
func (r *Registry) Counters() map[string]int64 {
	if r == nil || len(r.counters) == 0 {
		return nil
	}
	out := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// CounterNames returns the counter names in sorted order.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	out := make([]string, 0, len(r.counters))
	for k := range r.counters {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// HistNames returns the histogram names in sorted order.
func (r *Registry) HistNames() []string {
	if r == nil {
		return nil
	}
	out := make([]string, 0, len(r.hists))
	for k := range r.hists {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// GaugeNames returns the gauge names in sorted order.
func (r *Registry) GaugeNames() []string {
	if r == nil {
		return nil
	}
	out := make([]string, 0, len(r.gauges))
	for k := range r.gauges {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Merge folds o into r: counters add, histogram buckets add, gauges take
// the maximum. Merging is commutative and associative, which is what makes
// parallel grid aggregation deterministic.
func (r *Registry) Merge(o *Registry) {
	if r == nil || o == nil {
		return
	}
	for k, v := range o.counters {
		r.Inc(k, v)
	}
	for k, v := range o.gauges {
		if cur, ok := r.gauges[k]; !ok || v > cur {
			r.SetGauge(k, v)
		}
	}
	for k, h := range o.hists {
		if r.hists == nil {
			r.hists = make(map[string]*Histogram)
		}
		dst := r.hists[k]
		if dst == nil {
			dst = &Histogram{}
			r.hists[k] = dst
		}
		dst.Merge(h)
	}
}

// Clone returns an independent deep copy of the registry (nil for nil). The
// serving tier's scrape path clones each shard's registry on the engine
// goroutine so the exposition writer can walk histogram buckets without
// racing the engine.
func (r *Registry) Clone() *Registry {
	if r == nil {
		return nil
	}
	out := &Registry{}
	out.Merge(r)
	return out
}

// Table renders the registry as a metrics table (sorted names, counters
// then gauges then histogram summaries) for CLI summaries.
func (r *Registry) Table(title string) *metrics.Table {
	tb := metrics.NewTable(title, "metric", "value")
	if r == nil {
		return tb
	}
	for _, name := range r.CounterNames() {
		tb.AddRow(name, fmt.Sprintf("%d", r.counters[name]))
	}
	for _, name := range r.GaugeNames() {
		tb.AddRow(name+" (gauge)", metrics.FormatFloat(r.gauges[name]))
	}
	for _, name := range r.HistNames() {
		h := r.hists[name]
		tb.AddRow(name+" (hist)", fmt.Sprintf("n=%d min=%s p50≈%s max=%s",
			h.Count, metrics.FormatFloat(h.Min), metrics.FormatFloat(h.Quantile(0.5)),
			metrics.FormatFloat(h.Max)))
	}
	return tb
}

// Histogram counts non-negative samples in power-of-two buckets: bucket i
// holds values v with 2^(i-1) ≤ v < 2^i (bucket 0 holds v < 1). Integer
// bucket counts merge exactly, so parallel aggregation never depends on
// fold order. Sum is the running total of observed samples — exact for
// integer-valued samples (latencies in whole microseconds, counts) far past
// any realistic volume, and excluded from Summary so the byte-stable digests
// never depend on float fold order.
type Histogram struct {
	Count   int64
	Sum     float64
	Min     float64
	Max     float64
	buckets [66]int64
}

// bucketOf maps a sample to its bucket index by walking the power-of-two
// edges — exact (no log2 float rounding at the edges) and at most 65 steps.
func bucketOf(v float64) int {
	if v < 1 {
		return 0
	}
	i := 1
	for edge := 2.0; v >= edge && i < 65; edge *= 2 {
		i++
	}
	return i
}

// Observe adds one sample (negative samples clamp to 0).
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if h.Count == 0 || v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	h.buckets[bucketOf(v)]++
}

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.Count == 0 {
		return
	}
	if h.Count == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
}

// Quantile returns an upper bound on the q-quantile: the upper edge of the
// bucket holding the q-th sample (0 for an empty histogram).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.Count-1))
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen > rank {
			edge := 1.0
			if i > 0 {
				edge = math.Pow(2, float64(i))
			}
			// The true maximum is a tighter upper bound than the bucket edge.
			return math.Min(edge, h.Max)
		}
	}
	return h.Max
}

// BucketCounts returns a copy of the raw per-bucket counts, index i holding
// the count of bucket i (see the type comment for the edge layout). A nil
// histogram yields all zeros. Exposition writers cumulate these into
// fixed-edge Prometheus buckets.
func (h *Histogram) BucketCounts() [66]int64 {
	if h == nil {
		return [66]int64{}
	}
	return h.buckets
}

// Buckets returns the non-empty buckets as (upper-edge, count) pairs in
// ascending edge order.
func (h *Histogram) Buckets() (edges []float64, counts []int64) {
	if h == nil {
		return nil, nil
	}
	for i, c := range h.buckets {
		if c > 0 {
			if i == 0 {
				edges = append(edges, 1)
			} else {
				edges = append(edges, math.Pow(2, float64(i)))
			}
			counts = append(counts, c)
		}
	}
	return edges, counts
}

// Sink aggregates registries across concurrent runs (the per-cell fold of a
// runner grid). Fold is safe to call from multiple goroutines; because
// Registry.Merge is commutative, the aggregate is independent of fold order
// and therefore of the runner's worker count.
type Sink struct {
	mu  sync.Mutex
	reg Registry
}

// NewSink returns an empty sink.
func NewSink() *Sink { return &Sink{} }

// Fold merges one run's registry into the aggregate.
func (s *Sink) Fold(r *Registry) {
	if s == nil || r == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg.Merge(r)
}

// Snapshot returns a copy of the aggregate registry.
func (s *Sink) Snapshot() *Registry {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := &Registry{}
	out.Merge(&s.reg)
	return out
}

// Counters returns a copy of the aggregated counters.
func (s *Sink) Counters() map[string]int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reg.Counters()
}
