package telemetry

// Summary is a JSON-ready snapshot of a Registry: counters and gauges by
// name plus a digest per histogram. encoding/json marshals maps with sorted
// keys, so the summary of a deterministic run serializes byte-stably — the
// serving layer's /v1/stats endpoint and grid reports rely on that.
type Summary struct {
	Counters map[string]int64       `json:"counters,omitempty"`
	Gauges   map[string]float64     `json:"gauges,omitempty"`
	Hists    map[string]HistSummary `json:"hists,omitempty"`
}

// HistSummary digests one histogram: sample count, extrema, and quantile
// upper bounds (see Histogram.Quantile).
type HistSummary struct {
	Count int64   `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
}

// Merge folds o into a copy of s and returns it: counters and gauges sum,
// histogram digests combine exactly on count and extrema while the quantile
// bounds take the pairwise max (a digest cannot be re-quantiled; the larger
// bound is still an upper bound). Merging is commutative and associative up
// to float addition order, so aggregating shard summaries in index order is
// deterministic. The serving tier folds per-shard registries with it.
func (s Summary) Merge(o Summary) Summary {
	out := Summary{}
	if len(s.Counters)+len(o.Counters) > 0 {
		out.Counters = make(map[string]int64, len(s.Counters)+len(o.Counters))
		for k, v := range s.Counters {
			out.Counters[k] = v
		}
		for k, v := range o.Counters {
			out.Counters[k] += v
		}
	}
	if len(s.Gauges)+len(o.Gauges) > 0 {
		out.Gauges = make(map[string]float64, len(s.Gauges)+len(o.Gauges))
		for k, v := range s.Gauges {
			out.Gauges[k] = v
		}
		for k, v := range o.Gauges {
			out.Gauges[k] += v
		}
	}
	if len(s.Hists)+len(o.Hists) > 0 {
		out.Hists = make(map[string]HistSummary, len(s.Hists)+len(o.Hists))
		for k, v := range s.Hists {
			out.Hists[k] = v
		}
		for k, v := range o.Hists {
			have, ok := out.Hists[k]
			if !ok {
				out.Hists[k] = v
				continue
			}
			out.Hists[k] = HistSummary{
				Count: have.Count + v.Count,
				Min:   min(have.Min, v.Min),
				Max:   max(have.Max, v.Max),
				P50:   max(have.P50, v.P50),
				P99:   max(have.P99, v.P99),
			}
		}
	}
	return out
}

// Summary snapshots the registry. The receiver may be nil (zero Summary).
func (r *Registry) Summary() Summary {
	var s Summary
	if r == nil {
		return s
	}
	s.Counters = r.Counters()
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for k, v := range r.gauges {
			s.Gauges[k] = v
		}
	}
	if len(r.hists) > 0 {
		s.Hists = make(map[string]HistSummary, len(r.hists))
		for k, h := range r.hists {
			s.Hists[k] = HistSummary{
				Count: h.Count,
				Min:   h.Min,
				Max:   h.Max,
				P50:   h.Quantile(0.5),
				P99:   h.Quantile(0.99),
			}
		}
	}
	return s
}
