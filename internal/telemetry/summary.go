package telemetry

// Summary is a JSON-ready snapshot of a Registry: counters and gauges by
// name plus a digest per histogram. encoding/json marshals maps with sorted
// keys, so the summary of a deterministic run serializes byte-stably — the
// serving layer's /v1/stats endpoint and grid reports rely on that.
type Summary struct {
	Counters map[string]int64       `json:"counters,omitempty"`
	Gauges   map[string]float64     `json:"gauges,omitempty"`
	Hists    map[string]HistSummary `json:"hists,omitempty"`
}

// HistSummary digests one histogram: sample count, extrema, and quantile
// upper bounds (see Histogram.Quantile).
type HistSummary struct {
	Count int64   `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
}

// Summary snapshots the registry. The receiver may be nil (zero Summary).
func (r *Registry) Summary() Summary {
	var s Summary
	if r == nil {
		return s
	}
	s.Counters = r.Counters()
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for k, v := range r.gauges {
			s.Gauges[k] = v
		}
	}
	if len(r.hists) > 0 {
		s.Hists = make(map[string]HistSummary, len(r.hists))
		for k, h := range r.hists {
			s.Hists[k] = HistSummary{
				Count: h.Count,
				Min:   h.Min,
				Max:   h.Max,
				P50:   h.Quantile(0.5),
				P99:   h.Quantile(0.99),
			}
		}
	}
	return s
}
