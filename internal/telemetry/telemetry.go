// Package telemetry is the zero-cost-when-disabled observability layer of
// the simulator: a structured, deterministic decision-event stream, a typed
// registry of counters/gauges/histograms, and optional per-tick probes that
// capture machine and per-job time series. Both engines (internal/sim) and
// every scheduler emit into a Recorder when one is attached; with a nil
// Recorder the instrumented code paths reduce to a single pointer check.
//
// Determinism contract: every quantity recorded here derives from simulated
// ticks and scheduler decisions, never from wall-clock time, goroutine
// scheduling, or map iteration order. A run instrumented twice produces
// byte-identical event streams (EventsJSONL), and registries folded across
// runner cells aggregate commutatively, so parallel experiment grids report
// the same telemetry for any worker count.
package telemetry

import (
	"fmt"
	"io"
	"strconv"
)

// Kind classifies a decision event. Engine kinds are emitted by
// internal/sim; scheduler kinds by the algorithm implementations.
type Kind string

const (
	// KindArrival: a job was released into the system (engine).
	KindArrival Kind = "arrival"
	// KindDispatch: a job's processor grant changed to a new nonzero count
	// (engine; Procs carries the grant).
	KindDispatch Kind = "dispatch"
	// KindPreempt: a job that ran in the previous tick was paused while
	// unfinished (engine).
	KindPreempt Kind = "preempt"
	// KindComplete: a job finished all nodes; T is the completion time and
	// Value the profit earned (engine).
	KindComplete Kind = "complete"
	// KindDeadlineMiss: a job passed the last tick at which finishing could
	// earn profit and left the system (engine).
	KindDeadlineMiss Kind = "deadline_miss"
	// KindFaultBegin: a processor crashed (engine; Proc is the processor).
	KindFaultBegin Kind = "fault_begin"
	// KindFaultEnd: a crashed processor came back up (engine).
	KindFaultEnd Kind = "fault_end"
	// KindCapacity: the number of operational processors changed; Procs is
	// the new capacity (engine, fault-injected runs only).
	KindCapacity Kind = "capacity"
	// KindWorkLost: execution failures discarded a job's accumulated work;
	// Value is the work lost in declared units (engine).
	KindWorkLost Kind = "work_lost"

	// KindAdmit: the scheduler started a job (S: moved it into Q; Procs is
	// the allotment, Value the density).
	KindAdmit Kind = "admit"
	// KindPark: the scheduler deprioritized a job at arrival (S: parked in
	// P; Why names the failed admission test).
	KindPark Kind = "park"
	// KindReadmit: a previously parked job was admitted later (S: moved
	// from P to Q on a completion or capacity recovery).
	KindReadmit Kind = "readmit"
	// KindAbandon: the scheduler gave up on a live job (stale in P,
	// hopeless after work loss, evicted by a capacity drop, …).
	KindAbandon Kind = "abandon"
	// KindReject: the scheduler refused a job outright at arrival
	// (federated admission, GP with no valid deadline).
	KindReject Kind = "reject"
	// KindRegrow: the non-clairvoyant scheduler doubled a job's work guess;
	// Value is the new guess.
	KindRegrow Kind = "regrow"
	// KindSlotAssign: the general-profit scheduler assigned a job its slot
	// set; Value is the chosen relative deadline.
	KindSlotAssign Kind = "slot_assign"
)

// Event is one structured decision event. The zero Procs/Value/Why fields
// are omitted from the JSONL encoding; Job is -1 for machine-level events
// and Proc is -1 unless the event concerns one processor.
type Event struct {
	T     int64   // simulated tick of the decision
	Kind  Kind    // what happened
	Job   int     // job concerned, -1 for machine-level events
	Proc  int     // processor concerned, -1 unless processor-specific
	Procs int     // processor count (grant size, capacity), 0 when n/a
	Value float64 // kind-specific quantity (profit, density, lost work, …)
	Why   string  // annotation (admission test that failed, abandon reason)
}

// MachineEvent builds a machine-level event (no job, no processor).
func MachineEvent(t int64, kind Kind) Event {
	return Event{T: t, Kind: kind, Job: -1, Proc: -1}
}

// ProcEvent builds a processor-level event.
func ProcEvent(t int64, kind Kind, proc int) Event {
	return Event{T: t, Kind: kind, Job: -1, Proc: proc}
}

// JobEvent builds a job-level event.
func JobEvent(t int64, kind Kind, job int) Event {
	return Event{T: t, Kind: kind, Job: job, Proc: -1}
}

// appendJSON appends the event as one JSON object with a fixed field order,
// so encoding is byte-deterministic and allocation-light.
func (e Event) appendJSON(b []byte) []byte {
	b = append(b, `{"t":`...)
	b = strconv.AppendInt(b, e.T, 10)
	b = append(b, `,"kind":"`...)
	b = append(b, e.Kind...)
	b = append(b, '"')
	if e.Job >= 0 {
		b = append(b, `,"job":`...)
		b = strconv.AppendInt(b, int64(e.Job), 10)
	}
	if e.Proc >= 0 {
		b = append(b, `,"proc":`...)
		b = strconv.AppendInt(b, int64(e.Proc), 10)
	}
	if e.Procs != 0 {
		b = append(b, `,"procs":`...)
		b = strconv.AppendInt(b, int64(e.Procs), 10)
	}
	if e.Value != 0 {
		b = append(b, `,"value":`...)
		b = strconv.AppendFloat(b, e.Value, 'g', -1, 64)
	}
	if e.Why != "" {
		b = append(b, `,"why":"`...)
		b = appendEscaped(b, e.Why)
		b = append(b, '"')
	}
	return append(b, '}')
}

// appendEscaped escapes the characters JSON strings cannot hold verbatim.
// Event annotations are short ASCII identifiers, so the fast path is a plain
// copy.
func appendEscaped(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			b = append(b, fmt.Sprintf(`\u%04x`, c)...)
		default:
			b = append(b, c)
		}
	}
	return b
}

// Recorder collects one run's telemetry: the decision-event stream, the
// metric registry, and (when Probe is set) sampled time series. A Recorder
// is not safe for concurrent use; the engines drive it from their single
// simulation goroutine. All methods are nil-safe so instrumented code can
// hold a nil *Recorder at zero cost.
type Recorder struct {
	// Probe, when non-nil, samples per-tick machine (and optionally
	// per-job) time series. Set it before the run starts.
	Probe *Probe

	events []Event
	reg    Registry
}

// NewRecorder returns an empty recorder with no probe.
func NewRecorder() *Recorder { return &Recorder{} }

// Emit appends a decision event and bumps its per-kind counter
// ("events.<kind>") in the registry.
func (r *Recorder) Emit(ev Event) {
	if r == nil {
		return
	}
	r.events = append(r.events, ev)
	r.reg.Inc("events."+string(ev.Kind), 1)
}

// Events returns the recorded event stream in emission order. The slice is
// owned by the recorder; callers must not mutate it.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Registry returns the recorder's metric registry.
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return &r.reg
}

// WriteEvents writes the stream as JSONL (one event object per line). The
// encoding is byte-deterministic: fixed field order, shortest float form.
func WriteEvents(w io.Writer, events []Event) error {
	_, err := w.Write(EventsJSONL(events))
	return err
}

// EventsJSONL renders the stream as JSONL bytes.
func EventsJSONL(events []Event) []byte {
	var b []byte
	for _, ev := range events {
		b = ev.appendJSON(b)
		b = append(b, '\n')
	}
	return b
}

// Instrumentable is implemented by schedulers that can emit decision events
// into a run's recorder. Attach wires one up when available.
type Instrumentable interface {
	SetTelemetry(*Recorder)
}

// Attach hands the recorder to x when it is Instrumentable and reports
// whether it was. A nil recorder detaches.
func Attach(x any, r *Recorder) bool {
	if in, ok := x.(Instrumentable); ok {
		in.SetTelemetry(r)
		return true
	}
	return false
}
