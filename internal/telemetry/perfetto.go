package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ChromeEvent is one entry of the Chrome trace-event format (the JSON
// profile format Perfetto and chrome://tracing load). Only the phases this
// exporter emits are modeled: "X" (complete span), "i" (instant), "C"
// (counter), and "M" (metadata).
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is a complete trace-event JSON document. One simulated tick
// maps to one microsecond of trace time, so Perfetto's time axis reads
// directly in ticks.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// NewChromeTrace returns an empty trace document.
func NewChromeTrace() *ChromeTrace {
	return &ChromeTrace{DisplayTimeUnit: "ms"}
}

// AddProcessName labels a pid ("machine", "jobs", …).
func (c *ChromeTrace) AddProcessName(pid int, name string) {
	c.TraceEvents = append(c.TraceEvents, ChromeEvent{
		Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]any{"name": name},
	})
}

// AddThreadName labels a (pid, tid) track.
func (c *ChromeTrace) AddThreadName(pid, tid int, name string) {
	c.TraceEvents = append(c.TraceEvents, ChromeEvent{
		Name: "thread_name", Ph: "M", PID: pid, TID: tid,
		Args: map[string]any{"name": name},
	})
}

// AddSpan appends a complete ("X") span. Zero-length spans are widened to
// one tick so they stay visible and valid.
func (c *ChromeTrace) AddSpan(pid, tid int, name, cat string, ts, dur int64, args map[string]any) {
	if dur < 1 {
		dur = 1
	}
	c.TraceEvents = append(c.TraceEvents, ChromeEvent{
		Name: name, Cat: cat, Ph: "X", TS: ts, Dur: dur, PID: pid, TID: tid, Args: args,
	})
}

// AddInstant appends a thread-scoped instant ("i") event.
func (c *ChromeTrace) AddInstant(pid, tid int, name, cat string, ts int64, args map[string]any) {
	c.TraceEvents = append(c.TraceEvents, ChromeEvent{
		Name: name, Cat: cat, Ph: "i", TS: ts, PID: pid, TID: tid, S: "t", Args: args,
	})
}

// AddCounter appends a counter ("C") sample; Perfetto renders these as a
// filled line chart on their own track.
func (c *ChromeTrace) AddCounter(pid int, name string, ts int64, v float64) {
	c.TraceEvents = append(c.TraceEvents, ChromeEvent{
		Name: name, Ph: "C", TS: ts, PID: pid,
		Args: map[string]any{"value": v},
	})
}

// AddCounterSeries appends a whole probe time series as counter samples.
func (c *ChromeTrace) AddCounterSeries(pid int, ts *TimeSeries) {
	if ts == nil {
		return
	}
	values := ts.Data.Values()
	for i, t := range ts.Ticks {
		c.AddCounter(pid, ts.Name, t, values[i])
	}
}

// WriteJSON writes the document as deterministic, indented JSON.
// encoding/json sorts map keys, so the byte stream is a pure function of
// the trace content.
func (c *ChromeTrace) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(c, "", " ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ValidateChromeTrace checks that data is a well-formed Chrome trace-event
// JSON document of the shape this exporter produces: a traceEvents array
// whose entries carry a known phase, non-negative timestamps, durations on
// complete spans, names on every event, and metadata/counter args where the
// format requires them. It is the schema check run against the committed
// golden fixture and against freshly exported traces in tests.
func ValidateChromeTrace(data []byte) error {
	var doc struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("telemetry: trace is not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("telemetry: trace has no traceEvents array")
	}
	for i, ev := range doc.TraceEvents {
		var ph, name string
		if err := need(ev, "ph", &ph); err != nil {
			return fmt.Errorf("telemetry: event %d: %v", i, err)
		}
		if err := need(ev, "name", &name); err != nil {
			return fmt.Errorf("telemetry: event %d: %v", i, err)
		}
		switch ph {
		case "M":
			var args map[string]any
			if raw, ok := ev["args"]; !ok || json.Unmarshal(raw, &args) != nil || args["name"] == nil {
				return fmt.Errorf("telemetry: event %d: metadata %q lacks args.name", i, name)
			}
			continue
		case "X", "i", "C":
		default:
			return fmt.Errorf("telemetry: event %d: unknown phase %q", i, ph)
		}
		var ts float64
		if err := need(ev, "ts", &ts); err != nil {
			return fmt.Errorf("telemetry: event %d: %v", i, err)
		}
		if ts < 0 {
			return fmt.Errorf("telemetry: event %d: negative ts %v", i, ts)
		}
		if ph == "X" {
			var dur float64
			if err := need(ev, "dur", &dur); err != nil {
				return fmt.Errorf("telemetry: event %d: complete span: %v", i, err)
			}
			if dur <= 0 {
				return fmt.Errorf("telemetry: event %d: non-positive dur %v", i, dur)
			}
		}
		if ph == "C" {
			var args map[string]float64
			if raw, ok := ev["args"]; !ok || json.Unmarshal(raw, &args) != nil || len(args) == 0 {
				return fmt.Errorf("telemetry: event %d: counter %q lacks numeric args", i, name)
			}
		}
	}
	return nil
}

// need unmarshals a required key of a raw event into out.
func need(ev map[string]json.RawMessage, key string, out any) error {
	raw, ok := ev[key]
	if !ok {
		return fmt.Errorf("missing %q", key)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("bad %q: %v", key, err)
	}
	return nil
}

// SortStable orders events for export: metadata first, then by timestamp,
// then (pid, tid, phase, name) — a deterministic order that keeps the file
// diffable and stream-friendly.
func (c *ChromeTrace) SortStable() {
	sort.SliceStable(c.TraceEvents, func(i, j int) bool {
		a, b := c.TraceEvents[i], c.TraceEvents[j]
		am, bm := a.Ph == "M", b.Ph == "M"
		if am != bm {
			return am
		}
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if a.Ph != b.Ph {
			return a.Ph < b.Ph
		}
		return a.Name < b.Name
	})
}
