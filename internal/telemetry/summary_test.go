package telemetry

import (
	"encoding/json"
	"testing"
)

func TestRegistrySummary(t *testing.T) {
	r := &Registry{}
	r.Inc("serve.accepted", 3)
	r.Inc("serve.rejected", 1)
	r.SetGauge("serve.queue_depth", 2)
	r.Observe("serve.latency", 1)
	r.Observe("serve.latency", 7)

	s := r.Summary()
	if s.Counters["serve.accepted"] != 3 || s.Counters["serve.rejected"] != 1 {
		t.Fatalf("counters = %v", s.Counters)
	}
	if s.Gauges["serve.queue_depth"] != 2 {
		t.Fatalf("gauges = %v", s.Gauges)
	}
	h := s.Hists["serve.latency"]
	if h.Count != 2 || h.Min != 1 || h.Max != 7 {
		t.Fatalf("hist = %+v", h)
	}

	// Byte-stable serialization: maps marshal with sorted keys.
	a, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(r.Summary())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("summary serialization unstable:\n%s\n%s", a, b)
	}
}

func TestNilRegistrySummary(t *testing.T) {
	var r *Registry
	s := r.Summary()
	if s.Counters != nil || s.Gauges != nil || s.Hists != nil {
		t.Fatalf("nil registry summary = %+v", s)
	}
}
