package telemetry

import (
	"sort"
	"strconv"

	"dagsched/internal/metrics"
)

// TimeSeries is one sampled metric over simulated time: tick coordinates
// plus the sample accumulator (reusing metrics.Series for the statistics).
// Ticks[i] is the coordinate of the i-th sample.
type TimeSeries struct {
	Name  string
	Ticks []int64
	Data  metrics.Series
}

// add appends one (tick, value) sample.
func (ts *TimeSeries) add(t int64, v float64) {
	ts.Ticks = append(ts.Ticks, t)
	ts.Data.Add(v)
}

// TickSample is one per-tick machine observation taken after the tick's
// execution: how many processors were operational, how many executed a
// node, and the live set's size and total ready-node depth.
type TickSample struct {
	T          int64
	Capacity   int // operational processors this tick
	Busy       int // processors that executed a node
	LiveJobs   int // jobs in the system
	ReadyNodes int // Σ ready nodes over live jobs
}

// JobSample is one per-tick observation of a single live job: executed work
// versus remaining critical path, deadline slack, and ready width (all in
// the job's declared work scale / absolute ticks).
type JobSample struct {
	T             int64
	Job           int
	Executed      int64 // work units processed so far
	RemainingSpan int64 // remaining critical-path length
	Slack         int64 // ticks until the last profitable completion
	Ready         int   // ready nodes right now
}

// Probe collects per-tick time series from the engines. Every controls the
// sampling stride (a sample is taken when t % Every == 0; values ≤ 1 mean
// every tick); PerJob additionally records three series per job, which is
// detailed but proportionally more expensive — probes are opt-in and the
// engines skip all sampling work entirely when no probe is attached.
//
// The tick engine samples every stride tick exactly. The event-driven
// engine expands machine samples across fast-forwarded intervals (the
// values are provably constant between events, except the final interval
// tick's ready count, which it computes exactly); per-job series are only
// recorded by the tick engine.
type Probe struct {
	Every  int64 // sampling stride in ticks (≤ 1 = every tick)
	PerJob bool  // also record per-job executed/span/slack series

	series map[string]*TimeSeries
}

// NewProbe returns a probe with the given stride.
func NewProbe(every int64, perJob bool) *Probe {
	return &Probe{Every: every, PerJob: perJob}
}

// Want reports whether tick t should be sampled.
func (p *Probe) Want(t int64) bool {
	if p == nil {
		return false
	}
	return p.Every <= 1 || t%p.Every == 0
}

// Observe appends a sample to the named series.
func (p *Probe) Observe(name string, t int64, v float64) {
	if p == nil {
		return
	}
	if p.series == nil {
		p.series = make(map[string]*TimeSeries)
	}
	ts := p.series[name]
	if ts == nil {
		ts = &TimeSeries{Name: name}
		p.series[name] = ts
	}
	ts.add(t, v)
}

// ObserveTick records the machine series for one sampled tick:
// "machine.util" (busy/capacity), "machine.busy", "machine.capacity",
// "machine.live_jobs", and "machine.ready_nodes".
func (p *Probe) ObserveTick(s TickSample) {
	if p == nil {
		return
	}
	util := 0.0
	if s.Capacity > 0 {
		util = float64(s.Busy) / float64(s.Capacity)
	}
	p.Observe("machine.util", s.T, util)
	p.Observe("machine.busy", s.T, float64(s.Busy))
	p.Observe("machine.capacity", s.T, float64(s.Capacity))
	p.Observe("machine.live_jobs", s.T, float64(s.LiveJobs))
	p.Observe("machine.ready_nodes", s.T, float64(s.ReadyNodes))
}

// ObserveJob records the per-job series for one sampled tick:
// "job.<id>.executed", "job.<id>.remaining_span", "job.<id>.slack", and
// "job.<id>.ready".
func (p *Probe) ObserveJob(s JobSample) {
	if p == nil {
		return
	}
	prefix := "job." + strconv.Itoa(s.Job)
	p.Observe(prefix+".executed", s.T, float64(s.Executed))
	p.Observe(prefix+".remaining_span", s.T, float64(s.RemainingSpan))
	p.Observe(prefix+".slack", s.T, float64(s.Slack))
	p.Observe(prefix+".ready", s.T, float64(s.Ready))
}

// Series returns the collected series sorted by name.
func (p *Probe) Series() []*TimeSeries {
	if p == nil {
		return nil
	}
	out := make([]*TimeSeries, 0, len(p.series))
	for _, ts := range p.series {
		out = append(out, ts)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Get returns the named series, or nil.
func (p *Probe) Get(name string) *TimeSeries {
	if p == nil {
		return nil
	}
	return p.series[name]
}
