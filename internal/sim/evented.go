package sim

import (
	"fmt"

	"dagsched/internal/dag"
	"dagsched/internal/rational"
	"dagsched/internal/telemetry"
)

// RunEvented simulates like Run but advances the clock event to event
// instead of tick by tick: between two consecutive events (a job arrival, a
// job expiry, any node completion, or the horizon) the allocation is
// provably constant, so the engine fast-forwards across the gap in O(1) per
// running node. On coarse-grained workloads this is orders of magnitude
// faster than ticking; results are bit-identical to Run.
//
// Equivalence requires that the scheduler's Assign output depends only on
// state that changes at events — true for SchedulerS (±work-conserving),
// EDF/FIFO/HDF list schedulers, and Federated. It does NOT hold for
// schedulers that read the clock or executed work directly between events
// (LLF's laxity, AbandonHopeless's volume check, SchedulerGP's per-tick slot
// sets); use Run for those. The node-pick policy must likewise be
// deterministic (not dag.Random).
func RunEvented(cfg Config, jobs []*Job, sched Scheduler) (*Result, error) {
	if cfg.M < 1 {
		return nil, fmt.Errorf("sim: M = %d, need ≥ 1", cfg.M)
	}
	if cfg.Faults != nil {
		return nil, fmt.Errorf("sim: fault injection requires the tick engine (faults are per-tick events)")
	}
	speed := cfg.Speed.Reduced()
	if speed.IsZero() {
		speed = rational.One()
	}
	if !speed.IsPositive() {
		return nil, fmt.Errorf("sim: speed %v must be positive", cfg.Speed)
	}
	if err := ValidateJobs(jobs); err != nil {
		return nil, err
	}
	policy := cfg.Policy
	if policy == nil {
		policy = dag.ByID{}
	}

	e := &engine{
		cfg:     cfg,
		perTick: speed.Num,
		scale:   speed.Den,
		live:    make(map[int]*liveJob),
	}
	res := &Result{
		Scheduler: sched.Name(),
		M:         cfg.M,
		Speed:     speed.Float(),
	}
	if cfg.Record {
		res.Trace = &Trace{M: cfg.M}
	}
	ordered := sortJobsByRelease(jobs)
	for _, j := range ordered {
		res.OfferedProfit += j.Profit.At(1)
	}
	rec := cfg.Telemetry
	sched.Init(Env{M: cfg.M, Speed: speed.Float()})

	var (
		t        int64
		next     int
		allocBuf []Alloc
		nodeBuf  []dag.NodeID
	)
	for next < len(ordered) || len(e.live) > 0 {
		if cfg.Horizon > 0 && t >= cfg.Horizon {
			break
		}
		if len(e.live) == 0 && ordered[next].Release > t {
			t = ordered[next].Release
		}
		// Arrivals at or before t.
		for next < len(ordered) && ordered[next].Release <= t {
			j := ordered[next]
			next++
			g := j.Graph
			if e.scale > 1 {
				g = scaleGraph(g, e.scale)
			}
			lj := &liveJob{
				job:   j,
				view:  viewOf(j),
				state: dag.NewState(g),
				stat: JobStat{
					ID:       j.ID,
					Released: j.Release,
					W:        j.Graph.TotalWork(),
					L:        j.Graph.Span(),
				},
				lastUseful: j.AbsDeadline() - 1,
			}
			e.live[j.ID] = lj
			e.liveList = append(e.liveList, lj)
			if rec != nil {
				rec.Emit(telemetry.JobEvent(t, telemetry.KindArrival, j.ID))
			}
			sched.OnArrival(t, lj.view)
		}
		// Expiries.
		for i := 0; i < len(e.liveList); i++ {
			lj := e.liveList[i]
			if !lj.done && t > lj.lastUseful {
				lj.done = true
				delete(e.live, lj.job.ID)
				e.liveList = append(e.liveList[:i], e.liveList[i+1:]...)
				i--
				res.Expired++
				res.Jobs = append(res.Jobs, lj.stat)
				if rec != nil {
					rec.Emit(telemetry.JobEvent(t, telemetry.KindDeadlineMiss, lj.job.ID))
				}
				sched.OnExpire(t, lj.job.ID)
			}
		}
		if len(e.live) == 0 {
			continue
		}

		// One allocation decision, held for the whole interval.
		allocBuf = sched.Assign(t, e, allocBuf[:0])
		totalProcs := 0
		seen := make(map[int]bool, len(allocBuf))
		for _, a := range allocBuf {
			if a.Procs <= 0 {
				return nil, fmt.Errorf("sim: %s allocated %d procs to job %d at t=%d", sched.Name(), a.Procs, a.JobID, t)
			}
			if seen[a.JobID] {
				return nil, fmt.Errorf("sim: %s allocated job %d twice at t=%d", sched.Name(), a.JobID, t)
			}
			seen[a.JobID] = true
			if _, ok := e.live[a.JobID]; !ok {
				return nil, fmt.Errorf("sim: %s allocated to unknown/finished job %d at t=%d", sched.Name(), a.JobID, t)
			}
			totalProcs += a.Procs
		}
		if totalProcs > cfg.M {
			return nil, fmt.Errorf("sim: %s oversubscribed %d > %d procs at t=%d", sched.Name(), totalProcs, cfg.M, t)
		}

		// Pick the running nodes once; they are fixed until the next event.
		type runJob struct {
			lj    *liveJob
			procs int
			nodes []dag.NodeID
		}
		running := make([]runJob, 0, len(allocBuf))
		busyPerTick := 0
		for _, a := range allocBuf {
			lj := e.live[a.JobID]
			if rec != nil && a.Procs != lj.lastProcs {
				ev := telemetry.JobEvent(t, telemetry.KindDispatch, a.JobID)
				ev.Procs = a.Procs
				rec.Emit(ev)
			}
			lj.lastProcs = a.Procs
			nodeBuf = policy.Pick(lj.state, a.Procs, nodeBuf[:0])
			running = append(running, runJob{
				lj:    lj,
				procs: a.Procs,
				nodes: append([]dag.NodeID(nil), nodeBuf...),
			})
			busyPerTick += len(nodeBuf)
		}

		// Interval length: the earliest of (a) a running node completing,
		// (b) the next arrival, (c) the next expiry, (d) the horizon.
		delta := int64(1<<62 - 1)
		for _, r := range running {
			for _, v := range r.nodes {
				need := (r.lj.state.Remaining(v) + e.perTick - 1) / e.perTick
				if need < delta {
					delta = need
				}
			}
		}
		if next < len(ordered) {
			if gap := ordered[next].Release - t; gap < delta {
				delta = gap
			}
		}
		for _, lj := range e.liveList {
			if gap := lj.lastUseful + 1 - t; gap < delta {
				delta = gap
			}
		}
		if cfg.Horizon > 0 {
			if gap := cfg.Horizon - t; gap < delta {
				delta = gap
			}
		}
		if delta < 1 {
			delta = 1
		}

		// Fast-forward the interval. Ready counts are constant between
		// events (nodes only leave the ready set by completing, which ends
		// the interval), so the pre-interval sum serves every tick except
		// the last, whose post-execution count is computed exactly below.
		var readyDuring int
		if rec != nil && rec.Probe != nil {
			for _, lj := range e.liveList {
				if !lj.state.Done() {
					readyDuring += lj.state.ReadyCount()
				}
			}
		}
		var completed []*liveJob
		for _, r := range running {
			for _, v := range r.nodes {
				r.lj.state.Apply(v, delta*e.perTick)
			}
			r.lj.stat.ProcTicks += delta * int64(r.procs)
			r.lj.ranNow = true
			if r.lj.state.Done() {
				completed = append(completed, r.lj)
			}
		}
		res.BusyProcTicks += delta * int64(busyPerTick)
		res.IdleProcTicks += delta * int64(cfg.M-busyPerTick)
		if res.Trace != nil {
			for dt := int64(0); dt < delta; dt++ {
				tick := TickRecord{T: t + dt}
				for _, r := range running {
					tick.Allocs = append(tick.Allocs, AllocRecord{
						JobID: r.lj.job.ID,
						Procs: r.procs,
						Nodes: append([]dag.NodeID(nil), r.nodes...),
					})
				}
				res.Trace.Ticks = append(res.Trace.Ticks, tick)
			}
		}

		// Probe expansion over the interval: every value is constant across
		// the fast-forwarded ticks except the final tick's ready count.
		if rec != nil && rec.Probe != nil {
			readyAfter := 0
			for _, lj := range e.liveList {
				if !lj.state.Done() {
					readyAfter += lj.state.ReadyCount()
				}
			}
			for dt := int64(0); dt < delta; dt++ {
				if !rec.Probe.Want(t + dt) {
					continue
				}
				ready := readyDuring
				if dt == delta-1 {
					ready = readyAfter
				}
				rec.Probe.ObserveTick(telemetry.TickSample{
					T: t + dt, Capacity: cfg.M, Busy: busyPerTick,
					LiveJobs: len(e.liveList), ReadyNodes: ready,
				})
			}
		}

		// Preemption accounting at the event boundary (identical to the
		// tick engine: between events the running set is constant).
		for _, lj := range e.liveList {
			if lj.ranLast && !lj.ranNow && !lj.state.Done() {
				lj.stat.Preemptions++
				if rec != nil {
					rec.Emit(telemetry.JobEvent(t, telemetry.KindPreempt, lj.job.ID))
				}
			}
			if !lj.ranNow {
				lj.lastProcs = 0
			}
			lj.ranLast = lj.ranNow
			lj.ranNow = false
		}

		endT := t + delta - 1 // the last tick of the interval
		for _, lj := range completed {
			lj.done = true
			lj.stat.Completed = true
			lj.stat.CompletedAt = endT + 1
			lj.stat.Latency = endT + 1 - lj.job.Release
			lj.stat.Profit = lj.job.Profit.At(lj.stat.Latency)
			res.TotalProfit += lj.stat.Profit
			res.Completed++
			res.Jobs = append(res.Jobs, lj.stat)
			if rec != nil {
				ev := telemetry.JobEvent(endT+1, telemetry.KindComplete, lj.job.ID)
				ev.Value = lj.stat.Profit
				rec.Emit(ev)
				rec.Registry().Observe("job.latency", float64(lj.stat.Latency))
				rec.Registry().Observe("job.slack_at_finish", float64(lj.lastUseful-endT))
			}
			delete(e.live, lj.job.ID)
			for i, x := range e.liveList {
				if x == lj {
					e.liveList = append(e.liveList[:i], e.liveList[i+1:]...)
					break
				}
			}
			sched.OnCompletion(endT, lj.job.ID)
		}
		t += delta
	}
	for _, lj := range e.liveList {
		res.Jobs = append(res.Jobs, lj.stat)
	}
	res.Ticks = t
	if rec != nil {
		recordRunAggregates(rec, res)
	}
	return res, nil
}
