package sim

import (
	"fmt"

	"dagsched/internal/dag"
	"dagsched/internal/telemetry"
)

// RunEvented simulates like Run but advances the clock event to event
// instead of tick by tick: between two consecutive events (a job arrival, a
// job expiry, any node completion, or the horizon) the allocation is
// provably constant, so the engine fast-forwards across the gap in O(1) per
// running node. On coarse-grained workloads this is orders of magnitude
// faster than ticking; results are bit-identical to Run.
//
// Equivalence requires that the scheduler's Assign output depends only on
// state that changes at events — true for SchedulerS (±work-conserving),
// EDF/FIFO/HDF list schedulers, and Federated. It does NOT hold for
// schedulers that read the clock or executed work directly between events
// (LLF's laxity, AbandonHopeless's volume check, SchedulerGP's per-tick slot
// sets); use Run for those. The node-pick policy must likewise be
// deterministic (not dag.Random).
func RunEvented(cfg Config, jobs []*Job, sched Scheduler) (*Result, error) {
	if cfg.Faults != nil {
		return nil, fmt.Errorf("sim: fault injection requires the tick engine (faults are per-tick events)")
	}
	e, res, ordered, policy, err := prepareRun(cfg, jobs, sched)
	if err != nil {
		return nil, err
	}
	res.Engine = EngineEvented
	rec := cfg.Telemetry

	var (
		t        int64
		next     int
		allocBuf []Alloc
	)
	for next < len(ordered) || len(e.live) > 0 {
		if cfg.Horizon > 0 && t >= cfg.Horizon {
			break
		}
		if len(e.live) == 0 && ordered[next].Release > t {
			t = ordered[next].Release
		}
		// Arrivals at or before t.
		for next < len(ordered) && ordered[next].Release <= t {
			e.arrive(t, ordered[next], rec, sched)
			next++
		}
		// Expiries.
		e.expire(t, res, rec, sched)
		if len(e.live) == 0 {
			continue
		}

		// One allocation decision, held for the whole interval.
		allocBuf = sched.Assign(t, e, allocBuf[:0])
		if _, err := e.checkAllocs(t, allocBuf, sched); err != nil {
			return nil, err
		}

		// Pick the running nodes once; they are fixed until the next event.
		// Picks land in a shared arena; each runAlloc records its window.
		running := e.running[:0]
		e.arena = e.arena[:0]
		busyPerTick := 0
		for _, a := range allocBuf {
			lj := e.live[a.JobID]
			if rec != nil && a.Procs != lj.lastProcs {
				ev := telemetry.JobEvent(t, telemetry.KindDispatch, a.JobID)
				ev.Procs = a.Procs
				rec.Emit(ev)
			}
			lj.lastProcs = a.Procs
			lo := len(e.arena)
			e.arena = policy.Pick(lj.state, a.Procs, e.arena)
			running = append(running, runAlloc{lj: lj, procs: a.Procs, lo: lo, hi: len(e.arena)})
			busyPerTick += len(e.arena) - lo
		}

		// Interval length: the earliest of (a) a running node completing,
		// (b) the next arrival, (c) the next expiry, (d) the horizon.
		delta := int64(1<<62 - 1)
		for _, r := range running {
			for _, v := range e.arena[r.lo:r.hi] {
				need := (r.lj.state.Remaining(v) + e.perTick - 1) / e.perTick
				if need < delta {
					delta = need
				}
			}
		}
		if next < len(ordered) {
			if gap := ordered[next].Release - t; gap < delta {
				delta = gap
			}
		}
		for _, lj := range e.liveList {
			if e.committer != nil && e.committer.Committed(lj.job.ID) {
				// No expiry event exists for a committed job: it stays live
				// past lastUseful and leaves only by completing, which bound
				// (a) already covers.
				continue
			}
			if gap := lj.lastUseful + 1 - t; gap < delta {
				delta = gap
			}
		}
		if cfg.Horizon > 0 {
			if gap := cfg.Horizon - t; gap < delta {
				delta = gap
			}
		}
		if delta < 1 {
			delta = 1
		}

		// Fast-forward the interval. Ready counts are constant between
		// events (nodes only leave the ready set by completing, which ends
		// the interval), so the pre-interval sum serves every tick except
		// the last, whose post-execution count is computed exactly below.
		var readyDuring int
		if rec != nil && rec.Probe != nil {
			for _, lj := range e.liveList {
				if !lj.state.Done() {
					readyDuring += lj.state.ReadyCount()
				}
			}
		}
		completed := e.completedBuf[:0]
		for _, r := range running {
			for _, v := range e.arena[r.lo:r.hi] {
				r.lj.state.Apply(v, delta*e.perTick)
			}
			r.lj.stat.ProcTicks += delta * int64(r.procs)
			r.lj.ranNow = true
			if r.lj.state.Done() {
				completed = append(completed, r.lj)
			}
		}
		res.BusyProcTicks += delta * int64(busyPerTick)
		res.IdleProcTicks += delta * int64(cfg.M-busyPerTick)
		if res.Trace != nil {
			for dt := int64(0); dt < delta; dt++ {
				tick := TickRecord{T: t + dt}
				for _, r := range running {
					tick.Allocs = append(tick.Allocs, AllocRecord{
						JobID: r.lj.job.ID,
						Procs: r.procs,
						Nodes: append([]dag.NodeID(nil), e.arena[r.lo:r.hi]...),
					})
				}
				res.Trace.Ticks = append(res.Trace.Ticks, tick)
			}
		}

		// Probe expansion over the interval: every value is constant across
		// the fast-forwarded ticks except the final tick's ready count.
		if rec != nil && rec.Probe != nil {
			readyAfter := 0
			for _, lj := range e.liveList {
				if !lj.state.Done() {
					readyAfter += lj.state.ReadyCount()
				}
			}
			for dt := int64(0); dt < delta; dt++ {
				if !rec.Probe.Want(t + dt) {
					continue
				}
				ready := readyDuring
				if dt == delta-1 {
					ready = readyAfter
				}
				rec.Probe.ObserveTick(telemetry.TickSample{
					T: t + dt, Capacity: cfg.M, Busy: busyPerTick,
					LiveJobs: len(e.liveList), ReadyNodes: ready,
				})
			}
		}

		// Preemption accounting at the event boundary (identical to the
		// tick engine: between events the running set is constant).
		for _, lj := range e.liveList {
			if lj.ranLast && !lj.ranNow && !lj.state.Done() {
				lj.stat.Preemptions++
				if rec != nil {
					rec.Emit(telemetry.JobEvent(t, telemetry.KindPreempt, lj.job.ID))
				}
			}
			if !lj.ranNow {
				lj.lastProcs = 0
			}
			lj.ranLast = lj.ranNow
			lj.ranNow = false
		}

		endT := t + delta - 1 // the last tick of the interval
		for _, lj := range completed {
			lj.done = true
			lj.stat.Completed = true
			lj.stat.CompletedAt = endT + 1
			lj.stat.Latency = endT + 1 - lj.job.Release
			lj.stat.Profit = lj.job.Profit.At(lj.stat.Latency)
			res.TotalProfit += lj.stat.Profit
			res.Completed++
			res.Jobs = append(res.Jobs, lj.stat)
			if rec != nil {
				ev := telemetry.JobEvent(endT+1, telemetry.KindComplete, lj.job.ID)
				ev.Value = lj.stat.Profit
				rec.Emit(ev)
				rec.Registry().Observe("job.latency", float64(lj.stat.Latency))
				rec.Registry().Observe("job.slack_at_finish", float64(lj.lastUseful-endT))
			}
			delete(e.live, lj.job.ID)
			sched.OnCompletion(endT, lj.job.ID)
		}
		if len(completed) > 0 {
			e.compactLive()
			for i := range completed {
				completed[i] = nil
			}
		}
		e.completedBuf = completed[:0]
		e.running = running[:0]
		t += delta
	}
	for _, lj := range e.liveList {
		res.Jobs = append(res.Jobs, lj.stat)
	}
	res.Ticks = t
	if rec != nil {
		recordRunAggregates(rec, res)
	}
	return res, nil
}
