package sim

import (
	"testing"

	"dagsched/internal/dag"
)

func TestParseCommitment(t *testing.T) {
	for _, name := range []string{"none", "on-admission", "on-arrival", "delta"} {
		c, err := ParseCommitment(name)
		if err != nil {
			t.Fatalf("ParseCommitment(%q): %v", name, err)
		}
		if string(c) != name || !c.Valid() {
			t.Fatalf("ParseCommitment(%q) = %q valid=%v", name, c, c.Valid())
		}
	}
	for _, bad := range []string{"", "ON-ARRIVAL", "always", "on_admission"} {
		if _, err := ParseCommitment(bad); err == nil {
			t.Errorf("ParseCommitment(%q) accepted", bad)
		}
	}
	if !CommitmentDefault.Valid() {
		t.Error("the zero Commitment must be Valid (it means \"inherit\")")
	}
}

func TestCommitmentBindingAndResolve(t *testing.T) {
	binding := map[Commitment]bool{
		CommitmentDefault:     false,
		CommitmentNone:        false,
		CommitmentOnAdmission: false,
		CommitmentDelta:       true,
		CommitmentOnArrival:   true,
	}
	for c, want := range binding {
		if c.Binding() != want {
			t.Errorf("%q.Binding() = %v, want %v", c, c.Binding(), want)
		}
	}
	if got := CommitmentDefault.Resolve(CommitmentDelta); got != CommitmentDelta {
		t.Errorf("default resolves to %q, want the policy", got)
	}
	if got := CommitmentNone.Resolve(CommitmentDelta); got != CommitmentNone {
		t.Errorf("explicit none resolves to %q, want none (per-job override wins)", got)
	}
}

// committedFifo is fifoSched plus a commitment ledger: exactly the IDs in
// committed are promised completion, so the engine must never expire them.
type committedFifo struct {
	fifoSched
	committed map[int]bool
}

func (s *committedFifo) Committed(id int) bool { return s.committed[id] }

// TestEngineCommittedJobRunsPastDeadline is the engine half of the
// commitment contract: a committed job whose deadline passes mid-run is not
// expired — it runs to completion, counted as Completed with zero profit —
// and the tick and evented engines agree bit for bit.
func TestEngineCommittedJobRunsPastDeadline(t *testing.T) {
	mk := func() []*Job {
		return []*Job{
			// A 20-tick chain on one processor with deadline 5: hopeless for
			// profit, so an uncommitted engine expires it at t=5.
			{ID: 1, Graph: dag.Chain(20, 1), Release: 0, Profit: step(t, 7, 5)},
		}
	}

	plain, err := Run(Config{M: 1}, mk(), &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Expired != 1 || plain.Completed != 0 {
		t.Fatalf("uncommitted run: expired=%d completed=%d, want the job expired", plain.Expired, plain.Completed)
	}

	for _, run := range []struct {
		name   string
		engine func(Config, []*Job, Scheduler) (*Result, error)
	}{
		{"tick", Run},
		{"evented", RunEvented},
	} {
		res, err := run.engine(Config{M: 1}, mk(), &committedFifo{committed: map[int]bool{1: true}})
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		if res.Expired != 0 || res.Completed != 1 {
			t.Fatalf("%s committed run: expired=%d completed=%d, want completion", run.name, res.Expired, res.Completed)
		}
		js := res.Jobs[0]
		if !js.Completed || js.CompletedAt != 20 || js.Profit != 0 {
			t.Fatalf("%s committed run: stat = %+v, want completed at 20 with zero profit", run.name, js)
		}
	}
}

// TestEngineCommitmentIsPerJob checks the engine consults the ledger per
// job: an uncommitted sibling of a committed job still expires on schedule.
func TestEngineCommitmentIsPerJob(t *testing.T) {
	jobs := []*Job{
		{ID: 1, Graph: dag.Chain(20, 1), Release: 0, Profit: step(t, 7, 5)},
		{ID: 2, Graph: dag.Chain(20, 1), Release: 0, Profit: step(t, 3, 5)},
	}
	res, err := Run(Config{M: 1}, jobs, &committedFifo{committed: map[int]bool{1: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 || res.Expired != 1 {
		t.Fatalf("mixed run: completed=%d expired=%d, want 1 and 1", res.Completed, res.Expired)
	}
	for _, js := range res.Jobs {
		if js.ID == 1 && !js.Completed {
			t.Error("committed job 1 did not complete")
		}
		if js.ID == 2 && js.Completed {
			t.Error("uncommitted job 2 was not expired")
		}
	}
}
