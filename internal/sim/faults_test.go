package sim

import (
	"reflect"
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/faults"
	"dagsched/internal/rational"
)

// faultyJobs is a small mixed workload for fault tests.
func faultyJobs(t *testing.T) []*Job {
	t.Helper()
	return []*Job{
		{ID: 1, Graph: dag.ForkJoin(2, 3, 2), Release: 0, Profit: step(t, 5, 60)},
		{ID: 2, Graph: dag.Block(9, 1), Release: 4, Profit: step(t, 3, 40)},
		{ID: 3, Graph: dag.Chain(6, 2), Release: 2, Profit: step(t, 9, 50)},
		{ID: 4, Graph: dag.Block(4, 2), Release: 8, Profit: step(t, 2, 30)},
	}
}

func TestZeroRateFaultsMatchFaultFree(t *testing.T) {
	jobs := func() []*Job {
		return []*Job{
			{ID: 1, Graph: dag.ForkJoin(2, 3, 2), Release: 0, Profit: step(t, 5, 60)},
			{ID: 2, Graph: dag.Block(9, 1), Release: 4, Profit: step(t, 3, 40)},
			{ID: 3, Graph: dag.Chain(6, 2), Release: 2, Profit: step(t, 9, 50)},
		}
	}
	for _, sp := range []rational.Rat{rational.One(), rational.New(3, 2)} {
		clean, err := Run(Config{M: 3, Speed: sp, Record: true}, jobs(), &fifoSched{})
		if err != nil {
			t.Fatal(err)
		}
		// A fault model with every rate zero must leave execution untouched.
		faulty, err := Run(Config{M: 3, Speed: sp, Record: true, Faults: &faults.Config{Seed: 5}}, jobs(), &fifoSched{})
		if err != nil {
			t.Fatal(err)
		}
		if clean.Faults != nil {
			t.Fatal("fault stats on a fault-free run")
		}
		if faulty.Faults == nil {
			t.Fatal("no fault stats with Config.Faults set")
		}
		if *faulty.Faults != (FaultStats{MinCapacity: 3}) {
			t.Errorf("zero-rate model accrued fault stats: %+v", faulty.Faults)
		}
		if err := resultsEqual(t, clean, faulty); err != nil {
			t.Fatalf("speed %v: zero-rate faults diverged: %v", sp, err)
		}
		for i, tick := range clean.Trace.Ticks {
			if !reflect.DeepEqual(tick.Allocs, faulty.Trace.Ticks[i].Allocs) {
				t.Fatalf("speed %v: tick %d allocs diverged", sp, tick.T)
			}
		}
	}
}

func TestFaultRunDeterministic(t *testing.T) {
	cfg := Config{M: 3, Record: true, Faults: &faults.Config{
		Seed: 11, MTBF: 15, MTTR: 4, CrashRate: 0.2, StragglerFrac: 0.5, StragglerSlow: 3,
	}}
	mk := func() []*Job {
		return []*Job{
			{ID: 1, Graph: dag.ForkJoin(2, 3, 2), Release: 0, Profit: step(t, 5, 60)},
			{ID: 2, Graph: dag.Block(9, 1), Release: 4, Profit: step(t, 3, 40)},
			{ID: 3, Graph: dag.Chain(6, 2), Release: 2, Profit: step(t, 9, 50)},
		}
	}
	a, err := Run(cfg, mk(), &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, mk(), &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n%+v\nvs\n%+v", a, b)
	}
}

func TestExecFailuresDiscardWorkAndDegradeProfit(t *testing.T) {
	mk := func() []*Job {
		return []*Job{
			{ID: 1, Graph: dag.Chain(8, 3), Release: 0, Profit: step(t, 10, 40)},
			{ID: 2, Graph: dag.Block(6, 2), Release: 0, Profit: step(t, 4, 30)},
		}
	}
	clean, err := Run(Config{M: 2}, mk(), &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := Run(Config{M: 2, Faults: &faults.Config{Seed: 3, CrashRate: 0.4}}, mk(), &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Faults.Retries == 0 {
		t.Fatal("crash rate 0.4 produced no execution failures")
	}
	if faulty.Faults.LostWork == 0 {
		t.Error("failures discarded no work")
	}
	if faulty.TotalProfit > clean.TotalProfit {
		t.Errorf("faults increased profit: %v > %v", faulty.TotalProfit, clean.TotalProfit)
	}
}

func TestCrashesCutCapacity(t *testing.T) {
	fc := &faults.Config{Seed: 2, MTBF: 10, MTTR: 6}
	res, err := Run(Config{M: 4, Faults: fc}, faultyJobs(t), &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	fs := res.Faults
	if fs.DegradedTicks == 0 || fs.DownProcTicks == 0 {
		t.Fatalf("MTBF 10 over %d ticks caused no degradation: %+v", res.Ticks, fs)
	}
	if fs.MinCapacity < 0 || fs.MinCapacity > 4 {
		t.Errorf("min capacity %d outside [0, 4]", fs.MinCapacity)
	}
	if fs.CrashEvents == 0 {
		t.Error("no crash events observed")
	}
	// fifoSched keeps allocating M procs, so some grants must be dropped.
	if fs.DroppedProcTicks == 0 {
		t.Error("capacity-oblivious scheduler never lost an allocation")
	}
}

func TestStragglersStallProgress(t *testing.T) {
	mk := func() []*Job {
		return []*Job{{ID: 1, Graph: dag.Chain(10, 1), Release: 0, Profit: step(t, 1, 200)}}
	}
	clean, err := Run(Config{M: 1}, mk(), &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(Config{M: 1, Faults: &faults.Config{Seed: 4, StragglerFrac: 1, StragglerSlow: 4}}, mk(), &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Faults.StraggleProcTicks == 0 {
		t.Fatal("full straggler machine never stalled")
	}
	if slow.Jobs[0].CompletedAt <= clean.Jobs[0].CompletedAt {
		t.Errorf("straggler run completed at %d, clean at %d", slow.Jobs[0].CompletedAt, clean.Jobs[0].CompletedAt)
	}
}

// The recorded trace of a faulty run, replayed under the same fault config,
// must reproduce identical per-tick allocations and the same final profit.
func TestReplayReproducesFaultyRun(t *testing.T) {
	fc := &faults.Config{Seed: 17, MTBF: 20, MTTR: 5, CrashRate: 0.15, StragglerFrac: 0.5, StragglerSlow: 2}
	for _, sp := range []rational.Rat{rational.One(), rational.New(3, 2)} {
		cfg := Config{M: 3, Speed: sp, Record: true, Faults: fc}
		orig, err := Run(cfg, faultyJobs(t), &fifoSched{})
		if err != nil {
			t.Fatal(err)
		}
		replayed, err := Run(cfg, faultyJobs(t), NewReplay(orig.Trace))
		if err != nil {
			t.Fatal(err)
		}
		if err := resultsEqual(t, orig, replayed); err != nil {
			t.Fatalf("speed %v: faulty replay diverged: %v", sp, err)
		}
		if !reflect.DeepEqual(orig.Faults, replayed.Faults) {
			t.Fatalf("speed %v: fault stats diverged: %+v vs %+v", sp, orig.Faults, replayed.Faults)
		}
		if len(orig.Trace.Ticks) != len(replayed.Trace.Ticks) {
			t.Fatalf("speed %v: tick counts differ", sp)
		}
		for i, tick := range orig.Trace.Ticks {
			rt := replayed.Trace.Ticks[i]
			if tick.T != rt.T || !reflect.DeepEqual(tick.Allocs, rt.Allocs) {
				t.Fatalf("speed %v: tick %d diverged:\n%+v\nvs\n%+v", sp, tick.T, tick, rt)
			}
		}
	}
}

// capacitySpy records CapacityAware callbacks while allocating greedily.
type capacitySpy struct {
	fifoSched
	capChanges []int
	lost       int64
}

func (c *capacitySpy) OnCapacityChange(t int64, capacity int) {
	c.capChanges = append(c.capChanges, capacity)
}

func (c *capacitySpy) OnWorkLost(t int64, jobID int, lost int64) { c.lost += lost }

func TestCapacityAwareCallbacks(t *testing.T) {
	spy := &capacitySpy{}
	fc := &faults.Config{Seed: 8, MTBF: 12, MTTR: 6, CrashRate: 0.3}
	res, err := Run(Config{M: 4, Faults: fc}, faultyJobs(t), spy)
	if err != nil {
		t.Fatal(err)
	}
	if len(spy.capChanges) == 0 {
		t.Fatal("no capacity changes announced despite MTBF 12")
	}
	last := 4
	for _, c := range spy.capChanges {
		if c < 0 || c > 4 {
			t.Errorf("announced capacity %d outside [0, 4]", c)
		}
		if c == last {
			t.Errorf("announced unchanged capacity %d", c)
		}
		last = c
	}
	if res.Faults.Retries > 0 && spy.lost == 0 && res.Faults.LostWork > 0 {
		t.Error("work was lost but OnWorkLost reported none")
	}
}

func TestEventedRejectsFaults(t *testing.T) {
	j := &Job{ID: 1, Graph: dag.Chain(1, 1), Release: 0, Profit: step(t, 1, 5)}
	if _, err := RunEvented(Config{M: 1, Faults: &faults.Config{Seed: 1}}, []*Job{j}, &fifoSched{}); err == nil {
		t.Error("evented engine accepted fault injection")
	}
}

func TestRunRejectsInvalidFaultConfig(t *testing.T) {
	j := &Job{ID: 1, Graph: dag.Chain(1, 1), Release: 0, Profit: step(t, 1, 5)}
	if _, err := Run(Config{M: 1, Faults: &faults.Config{CrashRate: 2}}, []*Job{j}, &fifoSched{}); err == nil {
		t.Error("accepted crash rate 2")
	}
}
