package sim

import (
	"fmt"

	"dagsched/internal/dag"
	"dagsched/internal/faults"
	"dagsched/internal/rational"
	"dagsched/internal/telemetry"
)

// Config parameterizes a simulation run.
type Config struct {
	// M is the number of identical processors; must be ≥ 1.
	M int
	// Speed is the speed-augmentation factor; the zero value means speed 1.
	// Speed p/q is realized exactly: node works are scaled by q and each
	// busy processor applies p work units per tick.
	Speed rational.Rat
	// Policy chooses which ready nodes run when a job gets fewer processors
	// than it has ready nodes. Nil means dag.ByID (deterministic,
	// structure-oblivious).
	Policy dag.PickPolicy
	// Horizon, when positive, hard-stops the simulation at that tick.
	// Otherwise the run ends when every job has completed or expired.
	Horizon int64
	// Record enables full trace capture in the Result.
	Record bool
	// Faults optionally enables deterministic fault injection: processor
	// crash/repair schedules, straggler slowdowns, and node-execution
	// failures, all pure functions of (Faults.Seed, tick, entity) — see
	// internal/faults. Nil keeps the engine on the exact fault-free path;
	// replaying a faulty run under the same Faults config reproduces it
	// tick for tick.
	Faults *faults.Config
	// Telemetry, when non-nil, receives the run's decision-event stream,
	// metric registry updates, and (when Telemetry.Probe is set) per-tick
	// time-series samples. Nil disables instrumentation entirely: the hot
	// tick loop then performs only nil checks and allocates nothing extra.
	Telemetry *telemetry.Recorder
	// OnRoute, when set, is invoked once per RunAuto call with the chosen
	// engine ("tick" or "evented") and the reason for the choice. Direct
	// Run/RunEvented calls never invoke it.
	OnRoute func(engine, reason string)
}

// liveJob is the engine's per-job runtime record.
type liveJob struct {
	job   *Job
	view  JobView
	state *dag.State
	stat  JobStat

	lastUseful int64  // last tick whose completion still earns profit
	lastProcs  int    // processor grant of the previous tick (telemetry)
	seenGen    uint64 // generation stamp for duplicate-allocation detection
	ranLast    bool   // executed in the previous tick
	ranNow     bool
	done       bool
}

// engine implements AssignView and FullView over the live set.
type engine struct {
	cfg      Config
	perTick  int64 // work units applied per busy processor per tick
	scale    int64 // work scaling factor (speed denominator)
	live     map[int]*liveJob
	liveList []*liveJob // stable iteration order (arrival order)

	gen    uint64                // current allocation-validation generation
	scaled map[*dag.DAG]*dag.DAG // scaleGraph cache (scale is fixed per run)

	// Reused per-tick/per-interval buffers.
	completedBuf []*liveJob
	running      []runAlloc   // evented engine: the interval's running set
	arena        []dag.NodeID // evented engine: picked nodes, all jobs
}

// runAlloc is one interval's execution record for a job in the evented
// engine: the grant and the picked nodes as a window [lo, hi) into the
// engine's node arena.
type runAlloc struct {
	lj     *liveJob
	procs  int
	lo, hi int
}

// ReadyCount implements AssignView.
func (e *engine) ReadyCount(jobID int) int {
	lj, ok := e.live[jobID]
	if !ok || lj.done {
		return 0
	}
	return lj.state.ReadyCount()
}

// ExecutedWork implements AssignView.
func (e *engine) ExecutedWork(jobID int) int64 {
	lj, ok := e.live[jobID]
	if !ok {
		return 0
	}
	return lj.state.ExecutedWork() / e.scale
}

// RemainingSpan implements FullView.
func (e *engine) RemainingSpan(jobID int) int64 {
	lj, ok := e.live[jobID]
	if !ok || lj.done {
		return 0
	}
	rem := lj.state.RemainingSpan()
	return (rem + e.scale - 1) / e.scale
}

// prepareRun validates the configuration and jobs and builds the pieces both
// engines share: the engine state, the result shell, the release-ordered job
// list, and the effective node-pick policy.
func prepareRun(cfg Config, jobs []*Job, sched Scheduler) (*engine, *Result, []*Job, dag.PickPolicy, error) {
	if cfg.M < 1 {
		return nil, nil, nil, nil, fmt.Errorf("sim: M = %d, need ≥ 1", cfg.M)
	}
	speed := cfg.Speed.Reduced()
	if speed.IsZero() {
		speed = rational.One()
	}
	if !speed.IsPositive() {
		return nil, nil, nil, nil, fmt.Errorf("sim: speed %v must be positive", cfg.Speed)
	}
	if err := ValidateJobs(jobs); err != nil {
		return nil, nil, nil, nil, err
	}
	policy := cfg.Policy
	if policy == nil {
		policy = dag.ByID{}
	}
	e := &engine{
		cfg:     cfg,
		perTick: speed.Num,
		scale:   speed.Den,
		live:    make(map[int]*liveJob),
	}
	res := &Result{
		Scheduler: sched.Name(),
		M:         cfg.M,
		Speed:     speed.Float(),
	}
	if cfg.Record {
		res.Trace = &Trace{M: cfg.M}
	}
	ordered := sortJobsByRelease(jobs)
	for _, j := range ordered {
		res.OfferedProfit += j.Profit.At(1)
	}
	sched.Init(Env{M: cfg.M, Speed: speed.Float()})
	return e, res, ordered, policy, nil
}

// scaledGraph returns j's graph with node works multiplied by the engine's
// scale factor, memoized per source graph: jobs sharing a DAG (common under
// rational speeds, where every instance of a template is re-released) build
// the scaled copy once per run instead of once per arrival.
func (e *engine) scaledGraph(g *dag.DAG) *dag.DAG {
	if s, ok := e.scaled[g]; ok {
		return s
	}
	s := scaleGraph(g, e.scale)
	if e.scaled == nil {
		e.scaled = make(map[*dag.DAG]*dag.DAG)
	}
	e.scaled[g] = s
	return s
}

// arrive admits job j at time t: build its live record (scaling the graph if
// the run is speed-scaled) and notify the scheduler.
func (e *engine) arrive(t int64, j *Job, rec *telemetry.Recorder, sched Scheduler) {
	g := j.Graph
	if e.scale > 1 {
		g = e.scaledGraph(g)
	}
	lj := &liveJob{
		job:   j,
		view:  viewOf(j),
		state: dag.NewState(g),
		stat: JobStat{
			ID:       j.ID,
			Released: j.Release,
			W:        j.Graph.TotalWork(),
			L:        j.Graph.Span(),
		},
		lastUseful: j.AbsDeadline() - 1,
	}
	e.live[j.ID] = lj
	e.liveList = append(e.liveList, lj)
	if rec != nil {
		rec.Emit(telemetry.JobEvent(t, telemetry.KindArrival, j.ID))
	}
	sched.OnArrival(t, lj.view)
}

// expire removes every live job whose completion at t would no longer earn
// profit, compacting liveList in one pass (arrival order is preserved; the
// scheduler sees OnExpire in that order, exactly as before).
func (e *engine) expire(t int64, res *Result, rec *telemetry.Recorder, sched Scheduler) {
	w := 0
	for _, lj := range e.liveList {
		if !lj.done && t > lj.lastUseful {
			lj.done = true
			delete(e.live, lj.job.ID)
			res.Expired++
			res.Jobs = append(res.Jobs, lj.stat)
			if rec != nil {
				rec.Emit(telemetry.JobEvent(t, telemetry.KindDeadlineMiss, lj.job.ID))
			}
			sched.OnExpire(t, lj.job.ID)
			continue
		}
		e.liveList[w] = lj
		w++
	}
	for i := w; i < len(e.liveList); i++ {
		e.liveList[i] = nil
	}
	e.liveList = e.liveList[:w]
}

// compactLive drops entries marked done from liveList in one ordered pass.
// Called after a completion batch instead of splicing per job.
func (e *engine) compactLive() {
	w := 0
	for _, lj := range e.liveList {
		if !lj.done {
			e.liveList[w] = lj
			w++
		}
	}
	for i := w; i < len(e.liveList); i++ {
		e.liveList[i] = nil
	}
	e.liveList = e.liveList[:w]
}

// checkAllocs enforces the scheduler's allocation contract for one decision:
// every grant positive, no job granted twice, every target live, and the
// total within the machine. Duplicate detection stamps the live records with
// a per-decision generation, so the validation allocates nothing. It returns
// the total processors granted.
func (e *engine) checkAllocs(t int64, allocs []Alloc, sched Scheduler) (int, error) {
	e.gen++
	total := 0
	for _, a := range allocs {
		if a.Procs <= 0 {
			return 0, fmt.Errorf("sim: %s allocated %d procs to job %d at t=%d", sched.Name(), a.Procs, a.JobID, t)
		}
		lj, ok := e.live[a.JobID]
		if !ok {
			return 0, fmt.Errorf("sim: %s allocated to unknown/finished job %d at t=%d", sched.Name(), a.JobID, t)
		}
		if lj.seenGen == e.gen {
			return 0, fmt.Errorf("sim: %s allocated job %d twice at t=%d", sched.Name(), a.JobID, t)
		}
		lj.seenGen = e.gen
		total += a.Procs
	}
	if total > e.cfg.M {
		return 0, fmt.Errorf("sim: %s oversubscribed %d > %d procs at t=%d", sched.Name(), total, e.cfg.M, t)
	}
	return total, nil
}

// Run simulates jobs under sched and returns the outcome. It returns an
// error for invalid configuration, malformed jobs, or a scheduler that
// violates the allocation contract (oversubscription, unknown or finished
// jobs, duplicate or non-positive allocations).
func Run(cfg Config, jobs []*Job, sched Scheduler) (*Result, error) {
	e, res, ordered, policy, err := prepareRun(cfg, jobs, sched)
	if err != nil {
		return nil, err
	}
	res.Engine = EngineTick
	var fm *faults.Model
	if cfg.Faults != nil {
		m, err := faults.NewModel(*cfg.Faults, cfg.M)
		if err != nil {
			return nil, err
		}
		fm = m
	}
	rec := cfg.Telemetry

	var (
		t        int64
		next     int // index into ordered of the next arrival
		allocBuf []Alloc
		nodeBuf  []dag.NodeID
	)
	// Fault bookkeeping, allocated only when injection is on.
	var (
		ca         CapacityAware
		fs         *FaultStats
		upBuf      []int
		prevUp     []bool
		curUp      []bool
		lastCap    = cfg.M
		lostScaled int64 // work discarded by execution failures, scaled units
	)
	if fm != nil {
		ca, _ = sched.(CapacityAware)
		fs = &FaultStats{MinCapacity: cfg.M}
		res.Faults = fs
		upBuf = make([]int, 0, cfg.M)
		prevUp = make([]bool, cfg.M)
		curUp = make([]bool, cfg.M)
		for p := range prevUp {
			prevUp[p] = true
		}
	}
	for next < len(ordered) || len(e.live) > 0 {
		if cfg.Horizon > 0 && t >= cfg.Horizon {
			break
		}
		// Jump over idle gaps.
		if len(e.live) == 0 && ordered[next].Release > t {
			t = ordered[next].Release
		}
		// Arrivals.
		for next < len(ordered) && ordered[next].Release <= t {
			e.arrive(t, ordered[next], rec, sched)
			next++
		}
		// Expiries: completing after lastUseful earns nothing, so the job
		// leaves the system.
		e.expire(t, res, rec, sched)
		if len(e.live) == 0 {
			continue
		}

		// Fault prologue: effective capacity for this tick, announced to
		// capacity-aware schedulers before they allocate.
		var upList []int
		if fm != nil {
			upList = fm.UpProcs(t, upBuf[:0])
			c := len(upList)
			for p := range curUp {
				curUp[p] = false
			}
			for _, p := range upList {
				curUp[p] = true
			}
			for p := range prevUp {
				if prevUp[p] && !curUp[p] {
					fs.CrashEvents++
					if rec != nil {
						rec.Emit(telemetry.ProcEvent(t, telemetry.KindFaultBegin, p))
					}
				} else if !prevUp[p] && curUp[p] && rec != nil {
					rec.Emit(telemetry.ProcEvent(t, telemetry.KindFaultEnd, p))
				}
			}
			copy(prevUp, curUp)
			fs.DownProcTicks += int64(cfg.M - c)
			if c < cfg.M {
				fs.DegradedTicks++
			}
			if c < fs.MinCapacity {
				fs.MinCapacity = c
			}
			if c != lastCap {
				if rec != nil {
					ev := telemetry.MachineEvent(t, telemetry.KindCapacity)
					ev.Procs = c
					rec.Emit(ev)
				}
				if ca != nil {
					ca.OnCapacityChange(t, c)
				}
			}
			lastCap = c
		}

		// Allocation.
		allocBuf = sched.Assign(t, e, allocBuf[:0])
		if _, err := e.checkAllocs(t, allocBuf, sched); err != nil {
			return nil, err
		}

		// Execution.
		var tick *TickRecord
		if res.Trace != nil {
			res.Trace.Ticks = append(res.Trace.Ticks, TickRecord{T: t})
			tick = &res.Trace.Ticks[len(res.Trace.Ticks)-1]
		}
		var tf *TickFaults
		if fm != nil && tick != nil {
			tf = &TickFaults{Capacity: len(upList)}
			for p := 0; p < cfg.M; p++ {
				if !curUp[p] {
					tf.Down = append(tf.Down, p)
				}
			}
			tick.Faults = tf
		}
		busy := 0
		upCursor := 0
		completed := e.completedBuf[:0]
		for _, a := range allocBuf {
			lj := e.live[a.JobID]
			if rec != nil && a.Procs != lj.lastProcs {
				ev := telemetry.JobEvent(t, telemetry.KindDispatch, a.JobID)
				ev.Procs = a.Procs
				rec.Emit(ev)
			}
			lj.lastProcs = a.Procs
			procs := a.Procs
			if fm != nil {
				// Map the grant onto live processors in id order: grants
				// beyond capacity land nowhere, and a straggling processor
				// holds its slot without progressing this tick.
				take := procs
				if avail := len(upList) - upCursor; take > avail {
					fs.DroppedProcTicks += int64(take - avail)
					take = avail
				}
				procs = 0
				for i := 0; i < take; i++ {
					p := upList[upCursor+i]
					if fm.Straggling(t, p) {
						fs.StraggleProcTicks++
						if tf != nil {
							tf.Slow = append(tf.Slow, p)
						}
					} else {
						procs++
					}
				}
				upCursor += take
			}
			if procs > 0 {
				nodeBuf = policy.Pick(lj.state, procs, nodeBuf[:0])
			} else {
				nodeBuf = nodeBuf[:0]
			}
			if fm != nil && len(nodeBuf) > 0 {
				// Execution failures: the node's attempt produces nothing
				// and its accumulated work is discarded.
				var lost int64
				failed := false
				kept := nodeBuf[:0]
				for _, v := range nodeBuf {
					if fm.NodeFails(t, a.JobID, int(v)) {
						failed = true
						l := lj.state.ResetNode(v)
						lost += l
						fs.Retries++
						if tf != nil {
							tf.Failed = append(tf.Failed, NodeFailure{JobID: a.JobID, Node: v, Lost: l})
						}
					} else {
						kept = append(kept, v)
					}
				}
				nodeBuf = kept
				if failed {
					lostScaled += lost
					if rec != nil {
						ev := telemetry.JobEvent(t, telemetry.KindWorkLost, a.JobID)
						ev.Value = float64(lost / e.scale)
						rec.Emit(ev)
					}
					if ca != nil {
						ca.OnWorkLost(t, a.JobID, lost/e.scale)
					}
				}
			}
			for _, v := range nodeBuf {
				lj.state.Apply(v, e.perTick)
			}
			busy += len(nodeBuf)
			lj.stat.ProcTicks += int64(a.Procs)
			lj.ranNow = true
			if tick != nil {
				tick.Allocs = append(tick.Allocs, AllocRecord{
					JobID: a.JobID,
					Procs: a.Procs,
					Nodes: append([]dag.NodeID(nil), nodeBuf...),
				})
			}
			if lj.state.Done() {
				completed = append(completed, lj)
			}
		}
		res.BusyProcTicks += int64(busy)
		res.IdleProcTicks += int64(cfg.M - busy)

		// Probe sampling (post-execution state of the sampled tick).
		if rec != nil && rec.Probe.Want(t) {
			capNow := cfg.M
			if fm != nil {
				capNow = len(upList)
			}
			ready := 0
			for _, lj := range e.liveList {
				if !lj.state.Done() {
					ready += lj.state.ReadyCount()
				}
			}
			rec.Probe.ObserveTick(telemetry.TickSample{
				T: t, Capacity: capNow, Busy: busy,
				LiveJobs: len(e.liveList), ReadyNodes: ready,
			})
			if rec.Probe.PerJob {
				for _, lj := range e.liveList {
					rem := lj.state.RemainingSpan()
					rec.Probe.ObserveJob(telemetry.JobSample{
						T: t, Job: lj.job.ID,
						Executed:      lj.state.ExecutedWork() / e.scale,
						RemainingSpan: (rem + e.scale - 1) / e.scale,
						Slack:         lj.lastUseful + 1 - t,
						Ready:         lj.state.ReadyCount(),
					})
				}
			}
		}

		// Preemption accounting.
		for _, lj := range e.liveList {
			if lj.ranLast && !lj.ranNow && !lj.state.Done() {
				lj.stat.Preemptions++
				if rec != nil {
					rec.Emit(telemetry.JobEvent(t, telemetry.KindPreempt, lj.job.ID))
				}
			}
			if !lj.ranNow {
				lj.lastProcs = 0
			}
			lj.ranLast = lj.ranNow
			lj.ranNow = false
		}

		// Completions (at time t+1).
		for _, lj := range completed {
			lj.done = true
			lj.stat.Completed = true
			lj.stat.CompletedAt = t + 1
			lj.stat.Latency = t + 1 - lj.job.Release
			lj.stat.Profit = lj.job.Profit.At(lj.stat.Latency)
			res.TotalProfit += lj.stat.Profit
			res.Completed++
			res.Jobs = append(res.Jobs, lj.stat)
			if rec != nil {
				ev := telemetry.JobEvent(t+1, telemetry.KindComplete, lj.job.ID)
				ev.Value = lj.stat.Profit
				rec.Emit(ev)
				rec.Registry().Observe("job.latency", float64(lj.stat.Latency))
				rec.Registry().Observe("job.slack_at_finish", float64(lj.lastUseful-t))
			}
			delete(e.live, lj.job.ID)
			sched.OnCompletion(t, lj.job.ID)
		}
		if len(completed) > 0 {
			e.compactLive()
			for i := range completed {
				completed[i] = nil
			}
		}
		e.completedBuf = completed[:0]
		t++
	}
	// Jobs still live at the horizon.
	for _, lj := range e.liveList {
		res.Jobs = append(res.Jobs, lj.stat)
	}
	res.Ticks = t
	if fs != nil {
		fs.LostWork = lostScaled / e.scale
	}
	if rec != nil {
		recordRunAggregates(rec, res)
	}
	return res, nil
}

// recordRunAggregates folds a finished run's end-state counters into the
// recorder's registry. Shared by both engines so their registries agree.
func recordRunAggregates(rec *telemetry.Recorder, res *Result) {
	reg := rec.Registry()
	reg.Inc("sim.runs", 1)
	reg.Inc("sim.ticks", res.Ticks)
	reg.Inc("sim.busy_proc_ticks", res.BusyProcTicks)
	reg.Inc("sim.idle_proc_ticks", res.IdleProcTicks)
	reg.Inc("sim.completed", int64(res.Completed))
	reg.Inc("sim.expired", int64(res.Expired))
}

// scaleGraph returns a copy of g with every node work multiplied by k,
// preserving structure. Used to realize rational speeds exactly.
func scaleGraph(g *dag.DAG, k int64) *dag.DAG {
	b := dag.NewBuilder()
	n := g.NumNodes()
	for v := 0; v < n; v++ {
		b.AddNode(g.Work(dag.NodeID(v)) * k)
	}
	for v := 0; v < n; v++ {
		for _, u := range g.Successors(dag.NodeID(v)) {
			b.AddEdge(dag.NodeID(v), u)
		}
	}
	return b.MustBuild()
}
