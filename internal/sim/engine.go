package sim

import (
	"fmt"

	"dagsched/internal/dag"
	"dagsched/internal/faults"
	"dagsched/internal/rational"
	"dagsched/internal/telemetry"
)

// Config parameterizes a simulation run.
type Config struct {
	// M is the number of identical processors; must be ≥ 1.
	M int
	// Speed is the speed-augmentation factor; the zero value means speed 1.
	// Speed p/q is realized exactly: node works are scaled by q and each
	// busy processor applies p work units per tick.
	Speed rational.Rat
	// Policy chooses which ready nodes run when a job gets fewer processors
	// than it has ready nodes. Nil means dag.ByID (deterministic,
	// structure-oblivious).
	Policy dag.PickPolicy
	// Horizon, when positive, hard-stops the simulation at that tick.
	// Otherwise the run ends when every job has completed or expired.
	Horizon int64
	// Record enables full trace capture in the Result.
	Record bool
	// Faults optionally enables deterministic fault injection: processor
	// crash/repair schedules, straggler slowdowns, and node-execution
	// failures, all pure functions of (Faults.Seed, tick, entity) — see
	// internal/faults. Nil keeps the engine on the exact fault-free path;
	// replaying a faulty run under the same Faults config reproduces it
	// tick for tick.
	Faults *faults.Config
	// Telemetry, when non-nil, receives the run's decision-event stream,
	// metric registry updates, and (when Telemetry.Probe is set) per-tick
	// time-series samples. Nil disables instrumentation entirely: the hot
	// tick loop then performs only nil checks and allocates nothing extra.
	Telemetry *telemetry.Recorder
	// OnRoute, when set, is invoked once per RunAuto call with the chosen
	// engine ("tick" or "evented") and the reason for the choice. Direct
	// Run/RunEvented calls never invoke it.
	OnRoute func(engine, reason string)
}

// liveJob is the engine's per-job runtime record.
type liveJob struct {
	job   *Job
	view  JobView
	state *dag.State
	stat  JobStat

	lastUseful int64  // last tick whose completion still earns profit
	lastProcs  int    // processor grant of the previous tick (telemetry)
	seenGen    uint64 // generation stamp for duplicate-allocation detection
	ranLast    bool   // executed in the previous tick
	ranNow     bool
	done       bool
}

// engine implements AssignView and FullView over the live set.
type engine struct {
	cfg      Config
	perTick  int64 // work units applied per busy processor per tick
	scale    int64 // work scaling factor (speed denominator)
	live     map[int]*liveJob
	liveList []*liveJob // stable iteration order (arrival order)

	gen    uint64                // current allocation-validation generation
	scaled map[*dag.DAG]*dag.DAG // scaleGraph cache (scale is fixed per run)

	// committer is the scheduler's commitment probe (nil when the scheduler
	// makes no binding promises). The engine consults it only for jobs
	// already past lastUseful, so the fault-free hot path never pays for it.
	committer Committer

	// Reused per-tick/per-interval buffers.
	completedBuf []*liveJob
	running      []runAlloc   // evented engine: the interval's running set
	arena        []dag.NodeID // evented engine: picked nodes, all jobs
}

// runAlloc is one interval's execution record for a job in the evented
// engine: the grant and the picked nodes as a window [lo, hi) into the
// engine's node arena.
type runAlloc struct {
	lj     *liveJob
	procs  int
	lo, hi int
}

// ReadyCount implements AssignView.
func (e *engine) ReadyCount(jobID int) int {
	lj, ok := e.live[jobID]
	if !ok || lj.done {
		return 0
	}
	return lj.state.ReadyCount()
}

// ExecutedWork implements AssignView.
func (e *engine) ExecutedWork(jobID int) int64 {
	lj, ok := e.live[jobID]
	if !ok {
		return 0
	}
	return lj.state.ExecutedWork() / e.scale
}

// RemainingSpan implements FullView.
func (e *engine) RemainingSpan(jobID int) int64 {
	lj, ok := e.live[jobID]
	if !ok || lj.done {
		return 0
	}
	rem := lj.state.RemainingSpan()
	return (rem + e.scale - 1) / e.scale
}

// prepareRun validates the configuration and jobs and builds the pieces both
// engines share: the engine state, the result shell, the release-ordered job
// list, and the effective node-pick policy.
func prepareRun(cfg Config, jobs []*Job, sched Scheduler) (*engine, *Result, []*Job, dag.PickPolicy, error) {
	if cfg.M < 1 {
		return nil, nil, nil, nil, fmt.Errorf("sim: M = %d, need ≥ 1", cfg.M)
	}
	speed := cfg.Speed.Reduced()
	if speed.IsZero() {
		speed = rational.One()
	}
	if !speed.IsPositive() {
		return nil, nil, nil, nil, fmt.Errorf("sim: speed %v must be positive", cfg.Speed)
	}
	if err := ValidateJobs(jobs); err != nil {
		return nil, nil, nil, nil, err
	}
	policy := cfg.Policy
	if policy == nil {
		policy = dag.ByID{}
	}
	e := &engine{
		cfg:     cfg,
		perTick: speed.Num,
		scale:   speed.Den,
		live:    make(map[int]*liveJob),
	}
	e.committer, _ = sched.(Committer)
	res := &Result{
		Scheduler: sched.Name(),
		M:         cfg.M,
		Speed:     speed.Float(),
	}
	if cfg.Record {
		res.Trace = &Trace{M: cfg.M}
	}
	ordered := sortJobsByRelease(jobs)
	for _, j := range ordered {
		res.OfferedProfit += j.Profit.At(1)
	}
	sched.Init(Env{M: cfg.M, Speed: speed.Float()})
	return e, res, ordered, policy, nil
}

// scaledGraph returns j's graph with node works multiplied by the engine's
// scale factor, memoized per source graph: jobs sharing a DAG (common under
// rational speeds, where every instance of a template is re-released) build
// the scaled copy once per run instead of once per arrival.
func (e *engine) scaledGraph(g *dag.DAG) *dag.DAG {
	if s, ok := e.scaled[g]; ok {
		return s
	}
	s := scaleGraph(g, e.scale)
	if e.scaled == nil {
		e.scaled = make(map[*dag.DAG]*dag.DAG)
	}
	e.scaled[g] = s
	return s
}

// arrive admits job j at time t: build its live record (scaling the graph if
// the run is speed-scaled) and notify the scheduler.
func (e *engine) arrive(t int64, j *Job, rec *telemetry.Recorder, sched Scheduler) {
	g := j.Graph
	if e.scale > 1 {
		g = e.scaledGraph(g)
	}
	lj := &liveJob{
		job:   j,
		view:  viewOf(j),
		state: dag.NewState(g),
		stat: JobStat{
			ID:       j.ID,
			Released: j.Release,
			W:        j.Graph.TotalWork(),
			L:        j.Graph.Span(),
		},
		lastUseful: j.AbsDeadline() - 1,
	}
	e.live[j.ID] = lj
	e.liveList = append(e.liveList, lj)
	if rec != nil {
		rec.Emit(telemetry.JobEvent(t, telemetry.KindArrival, j.ID))
	}
	sched.OnArrival(t, lj.view)
}

// expire removes every live job whose completion at t would no longer earn
// profit, compacting liveList in one pass (arrival order is preserved; the
// scheduler sees OnExpire in that order, exactly as before). A job the
// scheduler has committed to is never expired: it stays live past its
// deadline and runs to a (zero-profit) completion — the engine-side half of
// the commitment contract.
func (e *engine) expire(t int64, res *Result, rec *telemetry.Recorder, sched Scheduler) {
	w := 0
	for _, lj := range e.liveList {
		if !lj.done && t > lj.lastUseful &&
			!(e.committer != nil && e.committer.Committed(lj.job.ID)) {
			lj.done = true
			delete(e.live, lj.job.ID)
			res.Expired++
			res.Jobs = append(res.Jobs, lj.stat)
			if rec != nil {
				rec.Emit(telemetry.JobEvent(t, telemetry.KindDeadlineMiss, lj.job.ID))
			}
			sched.OnExpire(t, lj.job.ID)
			continue
		}
		e.liveList[w] = lj
		w++
	}
	for i := w; i < len(e.liveList); i++ {
		e.liveList[i] = nil
	}
	e.liveList = e.liveList[:w]
}

// compactLive drops entries marked done from liveList in one ordered pass.
// Called after a completion batch instead of splicing per job.
func (e *engine) compactLive() {
	w := 0
	for _, lj := range e.liveList {
		if !lj.done {
			e.liveList[w] = lj
			w++
		}
	}
	for i := w; i < len(e.liveList); i++ {
		e.liveList[i] = nil
	}
	e.liveList = e.liveList[:w]
}

// checkAllocs enforces the scheduler's allocation contract for one decision:
// every grant positive, no job granted twice, every target live, and the
// total within the machine. Duplicate detection stamps the live records with
// a per-decision generation, so the validation allocates nothing. It returns
// the total processors granted.
func (e *engine) checkAllocs(t int64, allocs []Alloc, sched Scheduler) (int, error) {
	e.gen++
	total := 0
	for _, a := range allocs {
		if a.Procs <= 0 {
			return 0, fmt.Errorf("sim: %s allocated %d procs to job %d at t=%d", sched.Name(), a.Procs, a.JobID, t)
		}
		lj, ok := e.live[a.JobID]
		if !ok {
			return 0, fmt.Errorf("sim: %s allocated to unknown/finished job %d at t=%d", sched.Name(), a.JobID, t)
		}
		if lj.seenGen == e.gen {
			return 0, fmt.Errorf("sim: %s allocated job %d twice at t=%d", sched.Name(), a.JobID, t)
		}
		lj.seenGen = e.gen
		total += a.Procs
	}
	if total > e.cfg.M {
		return 0, fmt.Errorf("sim: %s oversubscribed %d > %d procs at t=%d", sched.Name(), total, e.cfg.M, t)
	}
	return total, nil
}

// Run simulates jobs under sched and returns the outcome. It returns an
// error for invalid configuration, malformed jobs, or a scheduler that
// violates the allocation contract (oversubscription, unknown or finished
// jobs, duplicate or non-positive allocations).
//
// Run is a Session advanced to the end in one call; the per-tick logic
// lives in Session.step, so batch runs and step-driven serving sessions
// (internal/serve) share one code path and stay bit-identical.
func Run(cfg Config, jobs []*Job, sched Scheduler) (*Result, error) {
	s, err := NewSession(cfg, jobs, sched)
	if err != nil {
		return nil, err
	}
	if err := s.RunToEnd(); err != nil {
		return nil, err
	}
	return s.Finish(), nil
}

// recordRunAggregates folds a finished run's end-state counters into the
// recorder's registry. Shared by both engines so their registries agree.
func recordRunAggregates(rec *telemetry.Recorder, res *Result) {
	reg := rec.Registry()
	reg.Inc("sim.runs", 1)
	reg.Inc("sim.ticks", res.Ticks)
	reg.Inc("sim.busy_proc_ticks", res.BusyProcTicks)
	reg.Inc("sim.idle_proc_ticks", res.IdleProcTicks)
	reg.Inc("sim.completed", int64(res.Completed))
	reg.Inc("sim.expired", int64(res.Expired))
}

// scaleGraph returns a copy of g with every node work multiplied by k,
// preserving structure. Used to realize rational speeds exactly.
func scaleGraph(g *dag.DAG, k int64) *dag.DAG {
	b := dag.NewBuilder()
	n := g.NumNodes()
	for v := 0; v < n; v++ {
		b.AddNode(g.Work(dag.NodeID(v)) * k)
	}
	for v := 0; v < n; v++ {
		for _, u := range g.Successors(dag.NodeID(v)) {
			b.AddEdge(dag.NodeID(v), u)
		}
	}
	return b.MustBuild()
}
