package sim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"dagsched/internal/dag"
	"dagsched/internal/faults"
	"dagsched/internal/telemetry"
)

// Session is the step-driven entry point to the tick engine: the same
// simulation Run performs, sliced into externally clocked steps with support
// for online job submission. A long-running process (internal/serve) drives
// a Session from a wall clock and feeds it arrivals as they come in; Run is
// a Session advanced to the end in one call, so the two are bit-identical by
// construction — re-simulating a session's accepted job set offline
// reproduces its Result exactly.
//
// A Session is not safe for concurrent use; callers serialize access (the
// serving daemon owns one from a single engine goroutine).
type Session struct {
	cfg    Config
	e      *engine
	res    *Result
	sched  Scheduler
	policy dag.PickPolicy
	rec    *telemetry.Recorder
	fm     *faults.Model

	t       int64
	pending []*Job // scheduled arrivals, (release, ID)-ordered; pending[next:] due
	next    int
	seen    map[int]bool // every job ID ever accepted

	allocBuf []Alloc
	nodeBuf  []dag.NodeID

	// Fault bookkeeping, allocated only when injection is on.
	ca         CapacityAware
	fs         *FaultStats
	upBuf      []int
	prevUp     []bool
	curUp      []bool
	lastCap    int
	lostScaled int64 // work discarded by execution failures, scaled units

	finished bool
	doneIdx  map[int]int // finished job ID → index into res.Jobs
}

// JobState classifies a job's position in a session's lifecycle.
type JobState string

const (
	// JobStateUnknown: the session has never seen this ID.
	JobStateUnknown JobState = "unknown"
	// JobStatePending: accepted but its release tick has not been reached.
	JobStatePending JobState = "pending"
	// JobStateLive: released and executing or awaiting processors.
	JobStateLive JobState = "live"
	// JobStateCompleted: finished all nodes in time.
	JobStateCompleted JobState = "completed"
	// JobStateExpired: left the system past its last profitable tick.
	JobStateExpired JobState = "expired"
)

// NewSession validates the configuration and job set and returns a session
// positioned before the first tick. The jobs slice may be empty: online
// submissions arrive later through Arrive.
func NewSession(cfg Config, jobs []*Job, sched Scheduler) (*Session, error) {
	e, res, ordered, policy, err := prepareRun(cfg, jobs, sched)
	if err != nil {
		return nil, err
	}
	res.Engine = EngineTick
	s := &Session{
		cfg:     cfg,
		e:       e,
		res:     res,
		sched:   sched,
		policy:  policy,
		rec:     cfg.Telemetry,
		pending: ordered,
		seen:    make(map[int]bool, len(ordered)),
		lastCap: cfg.M,
		doneIdx: make(map[int]int),
	}
	for _, j := range ordered {
		s.seen[j.ID] = true
	}
	if cfg.Faults != nil {
		fm, err := faults.NewModel(*cfg.Faults, cfg.M)
		if err != nil {
			return nil, err
		}
		s.fm = fm
		s.ca, _ = sched.(CapacityAware)
		s.fs = &FaultStats{MinCapacity: cfg.M}
		res.Faults = s.fs
		s.upBuf = make([]int, 0, cfg.M)
		s.prevUp = make([]bool, cfg.M)
		s.curUp = make([]bool, cfg.M)
		for p := range s.prevUp {
			s.prevUp[p] = true
		}
	}
	return s, nil
}

// Now returns the session's clock: the next tick to be simulated.
func (s *Session) Now() int64 { return s.t }

// Live returns the number of released, unfinished jobs.
func (s *Session) Live() int { return len(s.e.live) }

// Pending returns the number of accepted jobs whose release tick has not
// been reached.
func (s *Session) Pending() int { return len(s.pending) - s.next }

// Idle reports whether no un-simulated work remains: every accepted job has
// either completed or expired.
func (s *Session) Idle() bool { return !s.runnable() }

func (s *Session) runnable() bool { return s.next < len(s.pending) || len(s.e.live) > 0 }

// Lookup reports a job's state and, once released, its evolving stat record.
func (s *Session) Lookup(id int) (JobStat, JobState) {
	if lj, ok := s.e.live[id]; ok {
		return lj.stat, JobStateLive
	}
	if i, ok := s.doneIdx[id]; ok {
		st := s.res.Jobs[i]
		if st.Completed {
			return st, JobStateCompleted
		}
		return st, JobStateExpired
	}
	for _, j := range s.pending[s.next:] {
		if j.ID == id {
			return JobStat{ID: id, Released: j.Release}, JobStatePending
		}
	}
	return JobStat{}, JobStateUnknown
}

// Arrive submits one job online and processes its arrival immediately: the
// scheduler's OnArrival fires before Arrive returns, so an admission
// decision taken there (SchedulerS moving the job into Q or P) is observable
// right away. The job's Release stamps the arrival tick: it must be ≥ the
// session clock, and — because released work is simulated before the clock
// moves — exactly the current tick while live jobs remain. An idle session
// jumps its clock to the release, exactly as Run jumps over idle gaps, so a
// session fed online and a Run over the same job set stay bit-identical.
//
// Arrive cannot be mixed with scheduled arrivals still pending from
// NewSession; it returns an error until those have been released.
func (s *Session) Arrive(j *Job) error {
	if s.finished {
		return fmt.Errorf("sim: Arrive on a finished session")
	}
	if s.next < len(s.pending) {
		return fmt.Errorf("sim: Arrive with %d scheduled arrivals still pending", len(s.pending)-s.next)
	}
	if err := j.Validate(); err != nil {
		return err
	}
	if s.seen[j.ID] {
		return fmt.Errorf("sim: duplicate job ID %d", j.ID)
	}
	if j.Release < s.t {
		return fmt.Errorf("sim: job %d released at %d, before the session clock %d", j.ID, j.Release, s.t)
	}
	if len(s.e.live) > 0 && j.Release != s.t {
		return fmt.Errorf("sim: job %d released at %d, ahead of the session clock %d with live jobs", j.ID, j.Release, s.t)
	}
	if len(s.e.live) == 0 && j.Release > s.t {
		s.t = j.Release // the idle-gap jump Run takes
	}
	s.seen[j.ID] = true
	s.res.OfferedProfit += j.Profit.At(1)
	s.e.arrive(s.t, j, s.rec, s.sched)
	return nil
}

// AdvanceTo simulates every tick strictly before now that has work, jumping
// over idle gaps exactly as Run does. It stops early at Config.Horizon or
// when no accepted job remains unfinished (the clock then stays put, so a
// later Arrive restarts it at the next release). Tick t is simulated once
// the clock passes t, so arrivals for tick t submitted before that keep
// their place.
func (s *Session) AdvanceTo(now int64) error {
	if s.finished {
		return fmt.Errorf("sim: AdvanceTo on a finished session")
	}
	for s.runnable() {
		if s.cfg.Horizon > 0 && s.t >= s.cfg.Horizon {
			return nil
		}
		if len(s.e.live) == 0 && s.pending[s.next].Release > s.t {
			s.t = s.pending[s.next].Release
		}
		if s.t >= now {
			return nil
		}
		if err := s.step(); err != nil {
			return err
		}
	}
	return nil
}

// RunToEnd advances until every accepted job has completed or expired (or
// the horizon cuts the run short).
func (s *Session) RunToEnd() error { return s.AdvanceTo(math.MaxInt64) }

// Finish seals the session and returns its Result: stats of jobs still live
// (horizon stops), the tick count, fault totals, and registry aggregates.
// Further Arrive/AdvanceTo calls fail; Finish is idempotent.
func (s *Session) Finish() *Result {
	if s.finished {
		return s.res
	}
	s.finished = true
	for _, lj := range s.e.liveList {
		s.res.Jobs = append(s.res.Jobs, lj.stat)
	}
	s.res.Ticks = s.t
	if s.fs != nil {
		s.fs.LostWork = s.lostScaled / s.e.scale
	}
	if s.rec != nil {
		recordRunAggregates(s.rec, s.res)
	}
	return s.res
}

// step simulates one tick: due arrivals, expiries, the fault prologue, the
// scheduler's allocation, execution, probe sampling, preemption accounting,
// and completions. When the live set is empty after expiries the tick is
// not consumed — the caller's loop jumps the clock instead, mirroring Run's
// original control flow.
func (s *Session) step() error {
	t := s.t
	e, res, rec, sched, cfg := s.e, s.res, s.rec, s.sched, s.cfg
	mark := len(res.Jobs)

	// Arrivals.
	for s.next < len(s.pending) && s.pending[s.next].Release <= t {
		e.arrive(t, s.pending[s.next], rec, sched)
		s.next++
	}
	// Expiries: completing after lastUseful earns nothing, so the job
	// leaves the system.
	e.expire(t, res, rec, sched)
	if len(e.live) == 0 {
		s.indexDone(mark)
		return nil
	}

	// Fault prologue: effective capacity for this tick, announced to
	// capacity-aware schedulers before they allocate.
	var upList []int
	if s.fm != nil {
		upList = s.fm.UpProcs(t, s.upBuf[:0])
		s.upBuf = upList[:0]
		c := len(upList)
		for p := range s.curUp {
			s.curUp[p] = false
		}
		for _, p := range upList {
			s.curUp[p] = true
		}
		for p := range s.prevUp {
			if s.prevUp[p] && !s.curUp[p] {
				s.fs.CrashEvents++
				if rec != nil {
					rec.Emit(telemetry.ProcEvent(t, telemetry.KindFaultBegin, p))
				}
			} else if !s.prevUp[p] && s.curUp[p] && rec != nil {
				rec.Emit(telemetry.ProcEvent(t, telemetry.KindFaultEnd, p))
			}
		}
		copy(s.prevUp, s.curUp)
		s.fs.DownProcTicks += int64(cfg.M - c)
		if c < cfg.M {
			s.fs.DegradedTicks++
		}
		if c < s.fs.MinCapacity {
			s.fs.MinCapacity = c
		}
		if c != s.lastCap {
			if rec != nil {
				ev := telemetry.MachineEvent(t, telemetry.KindCapacity)
				ev.Procs = c
				rec.Emit(ev)
			}
			if s.ca != nil {
				s.ca.OnCapacityChange(t, c)
			}
		}
		s.lastCap = c
	}

	// Allocation.
	s.allocBuf = sched.Assign(t, e, s.allocBuf[:0])
	if _, err := e.checkAllocs(t, s.allocBuf, sched); err != nil {
		return err
	}

	// Execution.
	var tick *TickRecord
	if res.Trace != nil {
		res.Trace.Ticks = append(res.Trace.Ticks, TickRecord{T: t})
		tick = &res.Trace.Ticks[len(res.Trace.Ticks)-1]
	}
	var tf *TickFaults
	if s.fm != nil && tick != nil {
		tf = &TickFaults{Capacity: len(upList)}
		for p := 0; p < cfg.M; p++ {
			if !s.curUp[p] {
				tf.Down = append(tf.Down, p)
			}
		}
		tick.Faults = tf
	}
	busy := 0
	upCursor := 0
	completed := e.completedBuf[:0]
	nodeBuf := s.nodeBuf
	for _, a := range s.allocBuf {
		lj := e.live[a.JobID]
		if rec != nil && a.Procs != lj.lastProcs {
			ev := telemetry.JobEvent(t, telemetry.KindDispatch, a.JobID)
			ev.Procs = a.Procs
			rec.Emit(ev)
		}
		lj.lastProcs = a.Procs
		procs := a.Procs
		if s.fm != nil {
			// Map the grant onto live processors in id order: grants
			// beyond capacity land nowhere, and a straggling processor
			// holds its slot without progressing this tick.
			take := procs
			if avail := len(upList) - upCursor; take > avail {
				s.fs.DroppedProcTicks += int64(take - avail)
				take = avail
			}
			procs = 0
			for i := 0; i < take; i++ {
				p := upList[upCursor+i]
				if s.fm.Straggling(t, p) {
					s.fs.StraggleProcTicks++
					if tf != nil {
						tf.Slow = append(tf.Slow, p)
					}
				} else {
					procs++
				}
			}
			upCursor += take
		}
		if procs > 0 {
			nodeBuf = s.policy.Pick(lj.state, procs, nodeBuf[:0])
		} else {
			nodeBuf = nodeBuf[:0]
		}
		if s.fm != nil && len(nodeBuf) > 0 {
			// Execution failures: the node's attempt produces nothing
			// and its accumulated work is discarded.
			var lost int64
			failed := false
			kept := nodeBuf[:0]
			for _, v := range nodeBuf {
				if s.fm.NodeFails(t, a.JobID, int(v)) {
					failed = true
					l := lj.state.ResetNode(v)
					lost += l
					s.fs.Retries++
					if tf != nil {
						tf.Failed = append(tf.Failed, NodeFailure{JobID: a.JobID, Node: v, Lost: l})
					}
				} else {
					kept = append(kept, v)
				}
			}
			nodeBuf = kept
			if failed {
				s.lostScaled += lost
				if rec != nil {
					ev := telemetry.JobEvent(t, telemetry.KindWorkLost, a.JobID)
					ev.Value = float64(lost / e.scale)
					rec.Emit(ev)
				}
				if s.ca != nil {
					s.ca.OnWorkLost(t, a.JobID, lost/e.scale)
				}
			}
		}
		for _, v := range nodeBuf {
			lj.state.Apply(v, e.perTick)
		}
		busy += len(nodeBuf)
		lj.stat.ProcTicks += int64(a.Procs)
		lj.ranNow = true
		if tick != nil {
			tick.Allocs = append(tick.Allocs, AllocRecord{
				JobID: a.JobID,
				Procs: a.Procs,
				Nodes: append([]dag.NodeID(nil), nodeBuf...),
			})
		}
		if lj.state.Done() {
			completed = append(completed, lj)
		}
	}
	s.nodeBuf = nodeBuf
	res.BusyProcTicks += int64(busy)
	res.IdleProcTicks += int64(cfg.M - busy)

	// Probe sampling (post-execution state of the sampled tick).
	if rec != nil && rec.Probe.Want(t) {
		capNow := cfg.M
		if s.fm != nil {
			capNow = len(upList)
		}
		ready := 0
		for _, lj := range e.liveList {
			if !lj.state.Done() {
				ready += lj.state.ReadyCount()
			}
		}
		rec.Probe.ObserveTick(telemetry.TickSample{
			T: t, Capacity: capNow, Busy: busy,
			LiveJobs: len(e.liveList), ReadyNodes: ready,
		})
		if rec.Probe.PerJob {
			for _, lj := range e.liveList {
				rem := lj.state.RemainingSpan()
				rec.Probe.ObserveJob(telemetry.JobSample{
					T: t, Job: lj.job.ID,
					Executed:      lj.state.ExecutedWork() / e.scale,
					RemainingSpan: (rem + e.scale - 1) / e.scale,
					Slack:         lj.lastUseful + 1 - t,
					Ready:         lj.state.ReadyCount(),
				})
			}
		}
	}

	// Preemption accounting.
	for _, lj := range e.liveList {
		if lj.ranLast && !lj.ranNow && !lj.state.Done() {
			lj.stat.Preemptions++
			if rec != nil {
				rec.Emit(telemetry.JobEvent(t, telemetry.KindPreempt, lj.job.ID))
			}
		}
		if !lj.ranNow {
			lj.lastProcs = 0
		}
		lj.ranLast = lj.ranNow
		lj.ranNow = false
	}

	// Completions (at time t+1).
	for _, lj := range completed {
		lj.done = true
		lj.stat.Completed = true
		lj.stat.CompletedAt = t + 1
		lj.stat.Latency = t + 1 - lj.job.Release
		lj.stat.Profit = lj.job.Profit.At(lj.stat.Latency)
		res.TotalProfit += lj.stat.Profit
		res.Completed++
		res.Jobs = append(res.Jobs, lj.stat)
		if rec != nil {
			ev := telemetry.JobEvent(t+1, telemetry.KindComplete, lj.job.ID)
			ev.Value = lj.stat.Profit
			rec.Emit(ev)
			rec.Registry().Observe("job.latency", float64(lj.stat.Latency))
			rec.Registry().Observe("job.slack_at_finish", float64(lj.lastUseful-t))
		}
		delete(e.live, lj.job.ID)
		sched.OnCompletion(t, lj.job.ID)
	}
	if len(completed) > 0 {
		e.compactLive()
		for i := range completed {
			completed[i] = nil
		}
	}
	e.completedBuf = completed[:0]
	s.indexDone(mark)
	s.t = t + 1
	return nil
}

// EventSafe reports whether this session's (scheduler, policy, faults,
// probe) combination is event-stationary under the RunAuto routing rules:
// nothing observable changes between arrivals, expiries, and completions.
// A serving loop may then replace its fixed per-tick wakeup with a timer
// armed to NextEventHint — the session's evolution depends only on the
// sequence of (Arrive, AdvanceTo) operations and their clock values, never
// on how many AdvanceTo calls delivered them, so bursting deferred ticks at
// the next event stays bit-identical to ticking every interval.
func (s *Session) EventSafe() bool {
	eng, _ := routeEngine(s.cfg, s.sched)
	return eng == EngineEvented
}

// NextEventHint returns a lower bound on the next tick whose simulation can
// change observable state: the earliest pending release, the earliest live
// expiry (lastUseful+1), or the earliest tick any live job could complete
// (critical path shrinks by at most the per-tick rate). ok is false when
// nothing is scheduled — the session is finished, idle, or past its horizon
// — so an event-driven caller can sleep unarmed. The hint may be early
// (a job rarely completes at its lower bound; callers re-arm after
// advancing) but never late: no arrival, expiry, or completion is
// observable before the clock passes the hint.
func (s *Session) NextEventHint() (int64, bool) {
	if s.finished || !s.runnable() {
		return 0, false
	}
	if s.cfg.Horizon > 0 && s.t >= s.cfg.Horizon {
		return 0, false
	}
	next := int64(math.MaxInt64)
	if s.next < len(s.pending) {
		next = max(s.pending[s.next].Release, s.t)
	}
	for _, lj := range s.e.liveList {
		if lj.done {
			continue
		}
		if !(s.e.committer != nil && s.e.committer.Committed(lj.job.ID)) {
			// Committed jobs have no expiry event; only their completion
			// bound below applies. (An overdue committed job would otherwise
			// pin the hint in the past and busy-spin an event-jump caller.)
			next = min(next, lj.lastUseful+1)
		}
		// Earliest completion: ceil(remaining span / per-tick work) more
		// ticks, the last of which is tick t+k-1 (completion stamps t+k).
		k := (lj.state.RemainingSpan() + s.e.perTick - 1) / s.e.perTick
		if k < 1 {
			k = 1
		}
		next = min(next, s.t+k-1)
	}
	return next, true
}

// Fingerprint returns a deterministic 64-bit digest of the session's
// simulation state: the clock, the Result accumulators, every finished job's
// stats, the pending set, and each live job's execution progress (executed
// work, remaining span, ready set size, preemption history). Two sessions fed
// the same arrivals at the same clocks agree on the fingerprint at every
// step; a divergence means the runs are no longer bit-identical. The serving
// layer's durability checkpoints store it and crash recovery recomputes it
// after replaying the write-ahead log, refusing to serve from state that
// drifted from the pre-crash engine.
func (s *Session) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	i := func(v int64) { u(uint64(v)) }
	f := func(v float64) { u(math.Float64bits(v)) }
	b := func(v bool) {
		if v {
			u(1)
		} else {
			u(0)
		}
	}
	stat := func(st *JobStat) {
		i(int64(st.ID))
		i(st.Released)
		i(st.W)
		i(st.L)
		b(st.Completed)
		i(st.CompletedAt)
		i(st.Latency)
		f(st.Profit)
		i(st.ProcTicks)
		i(st.Preemptions)
	}

	i(s.t)
	f(s.res.OfferedProfit)
	f(s.res.TotalProfit)
	i(int64(s.res.Completed))
	i(int64(s.res.Expired))
	i(s.res.BusyProcTicks)
	i(s.res.IdleProcTicks)
	i(int64(len(s.res.Jobs)))
	for k := range s.res.Jobs {
		stat(&s.res.Jobs[k])
	}
	i(int64(s.Pending()))
	for _, j := range s.pending[s.next:] {
		i(int64(j.ID))
		i(j.Release)
	}
	i(int64(len(s.e.liveList)))
	for _, lj := range s.e.liveList {
		stat(&lj.stat)
		i(lj.state.ExecutedWork())
		i(lj.state.RemainingSpan())
		i(int64(lj.state.ReadyCount()))
		i(lj.lastUseful)
		i(int64(lj.lastProcs))
		b(lj.ranLast)
	}
	return h.Sum64()
}

// indexDone records res.Jobs entries appended since mark in the finished-job
// index, keeping Lookup O(1) for completed and expired jobs.
func (s *Session) indexDone(mark int) {
	for i := mark; i < len(s.res.Jobs); i++ {
		s.doneIdx[s.res.Jobs[i].ID] = i
	}
}
