package sim

import (
	"encoding/json"
	"math/rand"
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/faults"
)

// sessionJobs builds a deterministic mixed-shape workload in-package
// (internal/workload imports sim, so its generator is off limits here):
// chains, blocks, and fork–joins with staggered releases and deadlines
// tight enough that some jobs expire.
func sessionJobs(t *testing.T, n int) []*Job {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	jobs := make([]*Job, 0, n)
	var release int64
	for i := 0; i < n; i++ {
		var g *dag.DAG
		switch i % 3 {
		case 0:
			g = dag.Chain(2+rng.Intn(6), 1+int64(rng.Intn(3)))
		case 1:
			g = dag.Block(3+rng.Intn(8), 1+int64(rng.Intn(2)))
		default:
			g = dag.ForkJoin(1+rng.Intn(2), 2+rng.Intn(4), 1)
		}
		deadline := g.Span() + int64(rng.Intn(int(g.TotalWork())+4))
		jobs = append(jobs, &Job{
			ID:      i + 1,
			Graph:   g,
			Release: release,
			Profit:  step(t, float64(1+rng.Intn(9)), deadline),
		})
		release += int64(rng.Intn(4))
	}
	return jobs
}

// resultJSON renders a result canonically for byte-level comparison.
func resultJSON(t *testing.T, res *Result) string {
	t.Helper()
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestSessionBatchMatchesRun drives a session with the jobs given up front
// and checks the result is byte-identical to Run.
func TestSessionBatchMatchesRun(t *testing.T) {
	jobs := sessionJobs(t, 40)
	cfg := Config{M: 6}

	want, err := Run(cfg, jobs, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(cfg, jobs, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	got := s.Finish()
	if a, b := resultJSON(t, got), resultJSON(t, want); a != b {
		t.Fatalf("session result diverges from Run:\n got %s\nwant %s", a, b)
	}
}

// TestSessionOnlineMatchesRun submits every job online via Arrive at its
// release tick — advancing the session clock between submissions exactly as
// a serving daemon would — and checks the final result is byte-identical to
// a batch Run over the same job set.
func TestSessionOnlineMatchesRun(t *testing.T) {
	jobs := sessionJobs(t, 40)
	cfg := Config{M: 6}

	want, err := Run(cfg, jobs, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}

	s, err := NewSession(cfg, nil, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	ordered := sortJobsByRelease(jobs)
	for _, j := range ordered {
		if err := s.AdvanceTo(j.Release); err != nil {
			t.Fatal(err)
		}
		if err := s.Arrive(j); err != nil {
			t.Fatalf("Arrive(job %d): %v", j.ID, err)
		}
	}
	if err := s.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	got := s.Finish()
	if a, b := resultJSON(t, got), resultJSON(t, want); a != b {
		t.Fatalf("online session diverges from Run:\n got %s\nwant %s", a, b)
	}
}

// TestSessionOnlineLaggedClockMatchesRun replays the online feed but pushes
// the session clock in uneven increments — one tick at a time with redundant
// repeat calls, the way a serving loop's timer fires between submissions —
// so correctness must not depend on how AdvanceTo's work is batched.
func TestSessionOnlineLaggedClockMatchesRun(t *testing.T) {
	jobs := sessionJobs(t, 30)
	cfg := Config{M: 6}

	want, err := Run(cfg, jobs, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(cfg, nil, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	ordered := sortJobsByRelease(jobs)
	for _, j := range ordered {
		// Unit-step the clock up to the release, with a redundant repeat
		// call every other tick: AdvanceTo must be idempotent at a fixed
		// target and insensitive to step size.
		for now := s.Now(); now < j.Release; now++ {
			if err := s.AdvanceTo(now + 1); err != nil {
				t.Fatal(err)
			}
			if err := s.AdvanceTo(now + 1); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.AdvanceTo(j.Release); err != nil {
			t.Fatal(err)
		}
		if err := s.Arrive(j); err != nil {
			t.Fatalf("Arrive(job %d): %v", j.ID, err)
		}
	}
	if err := s.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	if a, b := resultJSON(t, s.Finish()), resultJSON(t, want); a != b {
		t.Fatalf("lagged online session diverges from Run:\n got %s\nwant %s", a, b)
	}
}

// TestSessionLookupLifecycle walks one job through pending → live →
// completed and checks Lookup at each stage.
func TestSessionLookupLifecycle(t *testing.T) {
	jobs := []*Job{
		{ID: 1, Graph: dag.Chain(4, 1), Release: 5, Profit: step(t, 10, 50)},
	}
	s, err := NewSession(Config{M: 2}, jobs, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if _, st := s.Lookup(1); st != JobStatePending {
		t.Fatalf("before release: state %q, want pending", st)
	}
	if _, st := s.Lookup(99); st != JobStateUnknown {
		t.Fatalf("unknown id: state %q", st)
	}
	if err := s.AdvanceTo(6); err != nil { // tick 5 simulated
		t.Fatal(err)
	}
	if _, st := s.Lookup(1); st != JobStateLive {
		t.Fatalf("after release: state %q, want live", st)
	}
	if err := s.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	stat, st := s.Lookup(1)
	if st != JobStateCompleted {
		t.Fatalf("after run: state %q, want completed", st)
	}
	if !stat.Completed || stat.CompletedAt != 9 { // chain of 4 from t=5
		t.Fatalf("stat = %+v, want completion at t=9", stat)
	}
	if !s.Idle() {
		t.Fatal("session should be idle")
	}
}

// TestSessionExpiredLookup checks Lookup reports expiry.
func TestSessionExpiredLookup(t *testing.T) {
	jobs := []*Job{
		{ID: 7, Graph: dag.Chain(10, 1), Release: 0, Profit: step(t, 5, 3)},
	}
	s, err := NewSession(Config{M: 1}, jobs, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	if _, st := s.Lookup(7); st != JobStateExpired {
		t.Fatalf("state %q, want expired", st)
	}
}

// TestSessionArriveRejections exercises Arrive's error paths: duplicates,
// stale releases, skipping ahead with live work, use after Finish, and
// mixing with scheduled arrivals.
func TestSessionArriveRejections(t *testing.T) {
	mk := func(id int, release int64) *Job {
		return &Job{ID: id, Graph: dag.Chain(3, 1), Release: release, Profit: step(t, 1, 100)}
	}
	s, err := NewSession(Config{M: 1}, nil, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Arrive(mk(1, 4)); err != nil { // idle jump to t=4
		t.Fatal(err)
	}
	if got := s.Now(); got != 4 {
		t.Fatalf("clock %d after idle-jump arrival, want 4", got)
	}
	if err := s.Arrive(mk(1, 4)); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	if err := s.Arrive(mk(2, 3)); err == nil {
		t.Fatal("release before the clock accepted")
	}
	if err := s.Arrive(mk(3, 9)); err == nil {
		t.Fatal("release ahead of the clock accepted while jobs are live")
	}
	if err := s.Arrive(mk(4, 4)); err != nil { // same tick is fine
		t.Fatal(err)
	}
	if err := s.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	s.Finish()
	if err := s.Arrive(mk(5, 50)); err == nil {
		t.Fatal("Arrive accepted on a finished session")
	}
	if err := s.AdvanceTo(100); err == nil {
		t.Fatal("AdvanceTo accepted on a finished session")
	}

	s2, err := NewSession(Config{M: 1}, []*Job{mk(1, 10)}, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Arrive(mk(2, 0)); err == nil {
		t.Fatal("Arrive accepted with scheduled arrivals pending")
	}
}

// TestSessionFinishIdempotent checks Finish can be called repeatedly and
// that a horizon-stopped session reports still-live jobs.
func TestSessionFinishIdempotent(t *testing.T) {
	jobs := []*Job{
		{ID: 1, Graph: dag.Chain(20, 1), Release: 0, Profit: step(t, 5, 100)},
	}
	s, err := NewSession(Config{M: 1, Horizon: 5}, jobs, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	r1 := s.Finish()
	r2 := s.Finish()
	if r1 != r2 {
		t.Fatal("Finish not idempotent")
	}
	if r1.Ticks != 5 || len(r1.Jobs) != 1 || r1.Jobs[0].Completed {
		t.Fatalf("horizon result = %+v", r1)
	}
}

// TestSessionEventSafe checks the session-level marker follows the RunAuto
// routing rules: safe scheduler → safe session; opted-out scheduler, faults,
// or probes → unsafe.
func TestSessionEventSafe(t *testing.T) {
	safe, err := NewSession(Config{M: 2}, nil, &markedSched{safe: true})
	if err != nil {
		t.Fatal(err)
	}
	if !safe.EventSafe() {
		t.Error("event-safe scheduler: session reports unsafe")
	}
	unsafe, err := NewSession(Config{M: 2}, nil, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if unsafe.EventSafe() {
		t.Error("scheduler without the marker: session reports safe")
	}
	faulty, err := NewSession(Config{M: 2, Faults: &faults.Config{Seed: 1}}, nil, &markedSched{safe: true})
	if err != nil {
		t.Fatal(err)
	}
	if faulty.EventSafe() {
		t.Error("fault injection on: session reports event-safe")
	}
}

// TestSessionNextEventHint pins the hint against each event source: pending
// releases, completion lower bounds, expiries, idleness, and the horizon.
func TestSessionNextEventHint(t *testing.T) {
	// Idle session: nothing scheduled.
	s, err := NewSession(Config{M: 2}, nil, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.NextEventHint(); ok {
		t.Error("idle session returned a hint")
	}

	// Scheduled arrival at tick 5: the hint is its release.
	s, err = NewSession(Config{M: 2}, []*Job{
		{ID: 1, Graph: dag.Chain(3, 1), Release: 5, Profit: step(t, 4, 10)},
	}, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if hint, ok := s.NextEventHint(); !ok || hint != 5 {
		t.Errorf("pending arrival: hint = %d, %v; want 5, true", hint, ok)
	}

	// Live chain of span 3 at full speed: the completion lower bound t+2
	// (its last tick) beats the expiry at lastUseful+1 = 10.
	if err := s.AdvanceTo(6); err != nil {
		t.Fatal(err)
	}
	if hint, ok := s.NextEventHint(); !ok || hint != 6+2-1 {
		t.Errorf("live chain: hint = %d, %v; want 7, true", hint, ok)
	}

	// Run to completion: idle again.
	if err := s.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.NextEventHint(); ok {
		t.Error("completed session returned a hint")
	}

	// A long chain with a tight deadline: completion is at least 39 ticks
	// out, so the expiry tick bounds the hint.
	s, err = NewSession(Config{M: 1}, []*Job{
		{ID: 1, Graph: dag.Chain(40, 1), Release: 0, Profit: step(t, 4, 3)},
	}, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceTo(1); err != nil {
		t.Fatal(err)
	}
	if hint, ok := s.NextEventHint(); !ok || hint != 3 {
		t.Errorf("expiry-bound: hint = %d, %v; want 3 (lastUseful+1), true", hint, ok)
	}

	// Past the horizon the clock can never move again.
	s, err = NewSession(Config{M: 1, Horizon: 5}, []*Job{
		{ID: 1, Graph: dag.Chain(20, 1), Release: 0, Profit: step(t, 5, 100)},
	}, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.NextEventHint(); ok {
		t.Error("horizon-stopped session returned a hint")
	}
}

// TestSessionHintNeverLate drives a mixed workload tick by tick and checks
// the hint's contract: between the current clock and the hint, advancing
// never changes the fingerprint (no event fires before the hint).
func TestSessionHintNeverLate(t *testing.T) {
	jobs := sessionJobs(t, 24)
	s, err := NewSession(Config{M: 4}, jobs, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	for {
		hint, ok := s.NextEventHint()
		if !ok {
			break
		}
		if hint < s.Now() {
			t.Fatalf("hint %d behind the clock %d", hint, s.Now())
		}
		// Advancing to the hint simulates every tick strictly before it;
		// none of those ticks may complete or expire a job (arrivals and
		// clock movement are fine — the hint bounds *events*).
		before := s.res.Completed + s.res.Expired
		if err := s.AdvanceTo(hint); err != nil {
			t.Fatal(err)
		}
		after := s.res.Completed + s.res.Expired
		if after != before {
			t.Fatalf("an event fired before the hint %d (clock %d): %d → %d finished jobs",
				hint, s.Now(), before, after)
		}
		// Step past the hint so the loop terminates.
		if err := s.AdvanceTo(hint + 1); err != nil {
			t.Fatal(err)
		}
	}
	if s.Live() != 0 || s.Pending() != 0 {
		t.Fatalf("loop ended with %d live, %d pending", s.Live(), s.Pending())
	}
}
