package sim

import (
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/faults"
	"dagsched/internal/telemetry"
)

// markedSched wraps fifoSched with an explicit EventSafe answer, standing in
// for schedulers whose safety depends on configuration.
type markedSched struct {
	fifoSched
	safe bool
}

func (s *markedSched) EventSafe() bool { return s.safe }

func autoJobs(t *testing.T) []*Job {
	t.Helper()
	return []*Job{
		{ID: 1, Graph: dag.ForkJoin(2, 3, 5), Release: 0, Profit: step(t, 4, 200)},
		{ID: 2, Graph: dag.Chain(6, 3), Release: 4, Profit: step(t, 2, 60)},
	}
}

// TestRouteEngineDecisions pins the routing table: every guard that forces
// the tick engine, and the one combination that unlocks the evented engine.
func TestRouteEngineDecisions(t *testing.T) {
	probed := telemetry.NewRecorder()
	probed.Probe = telemetry.NewProbe(1, false)
	cases := []struct {
		name   string
		cfg    Config
		sched  Scheduler
		engine string
		reason string
	}{
		{"faults", Config{M: 2, Faults: &faults.Config{Seed: 1}}, &markedSched{safe: true}, EngineTick, reasonFaults},
		{"probe", Config{M: 2, Telemetry: probed}, &markedSched{safe: true}, EngineTick, reasonProbe},
		{"no-marker", Config{M: 2}, &fifoSched{}, EngineTick, reasonSchedOptOut},
		{"marker-false", Config{M: 2}, &markedSched{safe: false}, EngineTick, reasonSchedUnsafe},
		{"unsafe-policy", Config{M: 2, Policy: dag.Random{}}, &markedSched{safe: true}, EngineTick, reasonPolicy},
		{"safe-nil-policy", Config{M: 2}, &markedSched{safe: true}, EngineEvented, reasonSafe},
		{"safe-byid", Config{M: 2, Policy: dag.ByID{}}, &markedSched{safe: true}, EngineEvented, reasonSafe},
		{"safe-unlucky", Config{M: 2, Policy: dag.Unlucky{}}, &markedSched{safe: true}, EngineEvented, reasonSafe},
		{"unsafe-cpf", Config{M: 2, Policy: dag.CriticalPathFirst{}}, &markedSched{safe: true}, EngineTick, reasonPolicy},
	}
	for _, tc := range cases {
		eng, why := routeEngine(tc.cfg, tc.sched)
		if eng != tc.engine || why != tc.reason {
			t.Errorf("%s: routed (%s, %q), want (%s, %q)", tc.name, eng, why, tc.engine, tc.reason)
		}
	}
}

// TestRunAutoMatchesExplicitEngines cross-checks RunAuto against the engine
// it claims to have used: the OnRoute hook must agree with Result.Engine, and
// the result must equal an explicit run on both engines when safe.
func TestRunAutoMatchesExplicitEngines(t *testing.T) {
	cfg := Config{M: 3}
	var hookEng, hookReason string
	cfg.OnRoute = func(e, r string) { hookEng, hookReason = e, r }

	auto, err := RunAuto(cfg, autoJobs(t), &markedSched{safe: true})
	if err != nil {
		t.Fatal(err)
	}
	if hookEng != EngineEvented || hookReason != reasonSafe {
		t.Fatalf("hook saw (%s, %q), want evented/safe", hookEng, hookReason)
	}
	if auto.Engine != EngineEvented {
		t.Fatalf("Result.Engine = %q, want %q", auto.Engine, EngineEvented)
	}
	tick, err := Run(Config{M: 3}, autoJobs(t), &markedSched{safe: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := resultsEqual(t, auto, tick); err != nil {
		t.Fatalf("auto (evented) vs explicit tick: %v", err)
	}

	auto2, err := RunAuto(cfg, autoJobs(t), &markedSched{safe: false})
	if err != nil {
		t.Fatal(err)
	}
	if hookEng != EngineTick || auto2.Engine != EngineTick {
		t.Fatalf("unsafe scheduler routed to %q (hook %q), want tick", auto2.Engine, hookEng)
	}
	if err := resultsEqual(t, auto2, tick); err != nil {
		t.Fatalf("auto (tick) vs explicit tick: %v", err)
	}
}

// TestRunEnginesStamped checks that the explicit entry points stamp
// Result.Engine too, so -json reports and tests can always tell runs apart.
func TestRunEnginesStamped(t *testing.T) {
	a, err := Run(Config{M: 2}, autoJobs(t), &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Engine != EngineTick {
		t.Errorf("Run stamped %q, want %q", a.Engine, EngineTick)
	}
	b, err := RunEvented(Config{M: 2}, autoJobs(t), &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Engine != EngineEvented {
		t.Errorf("RunEvented stamped %q, want %q", b.Engine, EngineEvented)
	}
}

// TestRouteStatsCount checks the aggregate counter used by experiment grids.
func TestRouteStatsCount(t *testing.T) {
	var rs RouteStats
	rs.Count(EngineEvented, "x")
	rs.Count(EngineTick, "y")
	rs.Count(EngineTick, "z")
	if rs.Evented() != 1 || rs.Tick() != 2 {
		t.Errorf("counts evented=%d tick=%d, want 1/2", rs.Evented(), rs.Tick())
	}
}

// TestRunAutoEventTelemetryMatches checks that an event-only recorder (no
// probe) does not block evented routing and produces the same decision-event
// stream either way.
func TestRunAutoEventTelemetryMatches(t *testing.T) {
	run := func(f func(Config, []*Job, Scheduler) (*Result, error)) (*Result, int) {
		rec := telemetry.NewRecorder()
		res, err := f(Config{M: 3, Telemetry: rec}, autoJobs(t), &markedSched{safe: true})
		if err != nil {
			t.Fatal(err)
		}
		return res, len(rec.Events())
	}
	auto, autoEvents := run(RunAuto)
	if auto.Engine != EngineEvented {
		t.Fatalf("event-only recorder routed to %q, want evented", auto.Engine)
	}
	tick, tickEvents := run(Run)
	if err := resultsEqual(t, auto, tick); err != nil {
		t.Fatal(err)
	}
	if autoEvents != tickEvents {
		t.Errorf("event counts differ: evented %d vs tick %d", autoEvents, tickEvents)
	}
}
