package sim

// Replay is a scheduler that re-issues the allocations of a recorded trace
// tick by tick. Re-running a recorded schedule through the engine closes
// the loop on the execution model: Run(Record) → Replay → identical Result,
// which tests assert. It also enables schedule post-processing workflows
// (record once, re-simulate against modified metrics).
//
// The replayed run must use the same jobs, machine size, speed, and
// node-pick policy as the recording; any divergence surfaces as an engine
// contract error (allocation to a finished job, oversubscription) or a
// result mismatch.
type Replay struct {
	trace *Trace
	pos   int
}

// NewReplay returns a scheduler replaying tr.
func NewReplay(tr *Trace) *Replay { return &Replay{trace: tr} }

// Name implements Scheduler.
func (r *Replay) Name() string { return "replay" }

// Init implements Scheduler.
func (r *Replay) Init(Env) { r.pos = 0 }

// OnArrival implements Scheduler.
func (r *Replay) OnArrival(int64, JobView) {}

// OnExpire implements Scheduler.
func (r *Replay) OnExpire(int64, int) {}

// OnCompletion implements Scheduler.
func (r *Replay) OnCompletion(int64, int) {}

// Assign implements Scheduler: emit the recorded allocations for tick t.
// Ticks absent from the trace (the recording allocated nothing) yield no
// allocations.
func (r *Replay) Assign(t int64, _ AssignView, dst []Alloc) []Alloc {
	for r.pos < len(r.trace.Ticks) && r.trace.Ticks[r.pos].T < t {
		r.pos++
	}
	if r.pos >= len(r.trace.Ticks) || r.trace.Ticks[r.pos].T != t {
		return dst
	}
	for _, a := range r.trace.Ticks[r.pos].Allocs {
		dst = append(dst, Alloc{JobID: a.JobID, Procs: a.Procs})
	}
	return dst
}

var _ Scheduler = (*Replay)(nil)
