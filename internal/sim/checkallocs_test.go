package sim

import (
	"strings"
	"testing"

	"dagsched/internal/dag"
)

// checkEngine builds a bare engine with two live jobs (IDs 1 and 2) for
// exercising the allocation validator both engines share.
func checkEngine(t *testing.T) *engine {
	t.Helper()
	e := &engine{cfg: Config{M: 4}, live: make(map[int]*liveJob)}
	for _, id := range []int{1, 2} {
		e.live[id] = &liveJob{job: &Job{ID: id}, state: dag.NewState(dag.Chain(3, 2))}
	}
	return e
}

func TestCheckAllocsAccepts(t *testing.T) {
	e := checkEngine(t)
	total, err := e.checkAllocs(5, []Alloc{{JobID: 1, Procs: 3}, {JobID: 2, Procs: 1}}, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if total != 4 {
		t.Errorf("total = %d, want 4", total)
	}
}

func TestCheckAllocsRejections(t *testing.T) {
	cases := []struct {
		name   string
		allocs []Alloc
		frag   string
	}{
		{"non-positive", []Alloc{{JobID: 1, Procs: 0}}, "allocated 0 procs"},
		{"negative", []Alloc{{JobID: 1, Procs: -2}}, "allocated -2 procs"},
		{"unknown-job", []Alloc{{JobID: 9, Procs: 1}}, "unknown/finished job 9"},
		{"duplicate", []Alloc{{JobID: 1, Procs: 1}, {JobID: 1, Procs: 1}}, "allocated job 1 twice"},
		{"oversubscribed", []Alloc{{JobID: 1, Procs: 3}, {JobID: 2, Procs: 2}}, "oversubscribed 5 > 4"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := checkEngine(t)
			_, err := e.checkAllocs(0, tc.allocs, &fifoSched{})
			if err == nil || !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("err = %v, want substring %q", err, tc.frag)
			}
		})
	}
}

// TestCheckAllocsGenerationReset checks that the generation stamp makes the
// duplicate detector tick-local: the same job may be (and is) allocated on
// every consecutive call without any per-tick map clearing.
func TestCheckAllocsGenerationReset(t *testing.T) {
	e := checkEngine(t)
	for tick := int64(0); tick < 3; tick++ {
		if _, err := e.checkAllocs(tick, []Alloc{{JobID: 1, Procs: 2}}, &fifoSched{}); err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
	}
	// And a duplicate within one call still trips after many clean calls.
	if _, err := e.checkAllocs(3, []Alloc{{JobID: 1, Procs: 1}, {JobID: 1, Procs: 1}}, &fifoSched{}); err == nil {
		t.Fatal("duplicate not detected after generation reuse")
	}
}
