package sim

import (
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/rational"
)

func TestReplayReproducesRecording(t *testing.T) {
	jobs := func() []*Job {
		return []*Job{
			{ID: 1, Graph: dag.ForkJoin(2, 3, 2), Release: 0, Profit: step(t, 5, 60)},
			{ID: 2, Graph: dag.Block(9, 1), Release: 4, Profit: step(t, 3, 30)},
			{ID: 3, Graph: dag.Chain(40, 1), Release: 0, Profit: step(t, 9, 20)}, // will expire
		}
	}
	for _, sp := range []rational.Rat{rational.One(), rational.New(3, 2)} {
		cfg := Config{M: 3, Speed: sp, Record: true}
		orig, err := Run(cfg, jobs(), &fifoSched{})
		if err != nil {
			t.Fatal(err)
		}
		replayed, err := Run(cfg, jobs(), NewReplay(orig.Trace))
		if err != nil {
			t.Fatal(err)
		}
		if err := resultsEqual(t, orig, replayed); err != nil {
			t.Fatalf("speed %v: replay diverged: %v", sp, err)
		}
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	j := &Job{ID: 1, Graph: dag.Chain(2, 1), Release: 0, Profit: step(t, 1, 5)}
	res, err := Run(Config{M: 1}, []*Job{j}, NewReplay(&Trace{M: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 || res.Expired != 1 {
		t.Errorf("empty replay: completed=%d expired=%d", res.Completed, res.Expired)
	}
}
