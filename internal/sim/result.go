package sim

import "dagsched/internal/dag"

// JobStat is the per-job outcome of a run.
type JobStat struct {
	ID          int
	Released    int64
	W           int64
	L           int64
	Completed   bool
	CompletedAt int64   // absolute completion time (0 when not completed)
	Latency     int64   // CompletedAt − Released (0 when not completed)
	Profit      float64 // profit earned (0 when not completed or too late)
	ProcTicks   int64   // processor-ticks allocated to the job
	Preemptions int64   // times the job was paused while unfinished
}

// Result is the outcome of one simulation run.
type Result struct {
	Scheduler string
	M         int
	Speed     float64
	Ticks     int64 // ticks simulated (the clock value after the last tick)

	TotalProfit   float64 // Σ profit of completed-in-time jobs
	OfferedProfit float64 // Σ maximum per-job profit (completion latency 1)
	Completed     int
	Expired       int

	BusyProcTicks int64 // processor-ticks spent executing nodes
	IdleProcTicks int64 // processor-ticks without a node to run

	Jobs  []JobStat
	Trace *Trace // nil unless Config.Record
}

// Utilization returns the fraction of processor-ticks spent executing.
func (r *Result) Utilization() float64 {
	total := r.BusyProcTicks + r.IdleProcTicks
	if total == 0 {
		return 0
	}
	return float64(r.BusyProcTicks) / float64(total)
}

// CompletionRate returns completed jobs over all jobs.
func (r *Result) CompletionRate() float64 {
	if len(r.Jobs) == 0 {
		return 0
	}
	return float64(r.Completed) / float64(len(r.Jobs))
}

// ProfitFraction returns earned profit over offered profit.
func (r *Result) ProfitFraction() float64 {
	if r.OfferedProfit == 0 {
		return 0
	}
	return r.TotalProfit / r.OfferedProfit
}

// Trace records, tick by tick, which jobs ran on how many processors and
// which nodes executed. It is the input to Gantt rendering and to the
// schedule validator.
type Trace struct {
	M     int
	Ticks []TickRecord
}

// TickRecord is the trace of one tick.
type TickRecord struct {
	T      int64
	Allocs []AllocRecord
}

// AllocRecord is one job's execution during one tick.
type AllocRecord struct {
	JobID int
	Procs int          // processors granted
	Nodes []dag.NodeID // nodes actually executed (≤ Procs)
}
