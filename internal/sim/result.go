package sim

import "dagsched/internal/dag"

// JobStat is the per-job outcome of a run.
type JobStat struct {
	ID          int
	Released    int64
	W           int64
	L           int64
	Completed   bool
	CompletedAt int64   // absolute completion time (0 when not completed)
	Latency     int64   // CompletedAt − Released (0 when not completed)
	Profit      float64 // profit earned (0 when not completed or too late)
	ProcTicks   int64   // processor-ticks allocated to the job
	Preemptions int64   // times the job was paused while unfinished
}

// Engine names for Result.Engine and the Config.OnRoute hook.
const (
	// EngineTick is the tick-by-tick engine (Run).
	EngineTick = "tick"
	// EngineEvented is the event-jumping engine (RunEvented).
	EngineEvented = "evented"
)

// Result is the outcome of one simulation run.
type Result struct {
	Scheduler string
	M         int
	Speed     float64
	Engine    string // which engine produced the run: EngineTick or EngineEvented
	Ticks     int64  // ticks simulated (the clock value after the last tick)

	TotalProfit   float64 // Σ profit of completed-in-time jobs
	OfferedProfit float64 // Σ maximum per-job profit (completion latency 1)
	Completed     int
	Expired       int

	BusyProcTicks int64 // processor-ticks spent executing nodes
	IdleProcTicks int64 // processor-ticks without a node to run

	Jobs   []JobStat
	Trace  *Trace      // nil unless Config.Record
	Faults *FaultStats `json:",omitempty"` // nil unless Config.Faults
}

// FaultStats aggregates fault-injection outcomes over the simulated
// (non-idle) ticks of a run; nil on fault-free runs. Processor-ticks lost
// to crashes, drops, and straggling are not productive, so they also appear
// in IdleProcTicks — Utilization keeps meaning "productive fraction".
type FaultStats struct {
	DegradedTicks     int64 // ticks with fewer than M processors up
	MinCapacity       int   // smallest per-tick capacity observed
	CrashEvents       int64 // up→down transitions between consecutive simulated ticks
	DownProcTicks     int64 // processor-ticks spent crashed
	DroppedProcTicks  int64 // granted processor-ticks that found no live processor
	StraggleProcTicks int64 // granted processor-ticks stalled on straggling processors
	Retries           int64 // node executions that failed, forcing re-execution
	LostWork          int64 // declared-scale work units discarded by those failures
}

// Utilization returns the fraction of processor-ticks spent executing.
func (r *Result) Utilization() float64 {
	total := r.BusyProcTicks + r.IdleProcTicks
	if total == 0 {
		return 0
	}
	return float64(r.BusyProcTicks) / float64(total)
}

// CompletionRate returns completed jobs over all jobs.
func (r *Result) CompletionRate() float64 {
	if len(r.Jobs) == 0 {
		return 0
	}
	return float64(r.Completed) / float64(len(r.Jobs))
}

// ProfitFraction returns earned profit over offered profit.
func (r *Result) ProfitFraction() float64 {
	if r.OfferedProfit == 0 {
		return 0
	}
	return r.TotalProfit / r.OfferedProfit
}

// Trace records, tick by tick, which jobs ran on how many processors and
// which nodes executed. It is the input to Gantt rendering and to the
// schedule validator.
type Trace struct {
	M     int
	Ticks []TickRecord
}

// TickRecord is the trace of one tick.
type TickRecord struct {
	T      int64
	Allocs []AllocRecord
	Faults *TickFaults `json:",omitempty"` // nil on fault-free runs
}

// TickFaults records the fault events of one traced tick.
type TickFaults struct {
	Capacity int           // operational processors this tick
	Down     []int         `json:",omitempty"` // crashed processor ids
	Slow     []int         `json:",omitempty"` // granted stragglers that stalled
	Failed   []NodeFailure `json:",omitempty"` // discarded node executions
}

// NodeFailure is one failed node-execution attempt: the node restarts from
// scratch, losing its accumulated work (in engine-scaled units).
type NodeFailure struct {
	JobID int
	Node  dag.NodeID
	Lost  int64
}

// AllocRecord is one job's execution during one tick.
type AllocRecord struct {
	JobID int
	Procs int          // processors granted
	Nodes []dag.NodeID // nodes actually executed (≤ Procs)
}
