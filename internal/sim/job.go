// Package sim is the discrete-time multiprocessor simulation engine. Time
// advances in integer ticks; a tick on one processor is exactly the paper's
// "processor step". Speed augmentation s = p/q is applied exactly: node works
// are scaled by q when a job's execution state is created and each assigned
// processor applies p work units per tick, so the execution path never
// touches floating point.
//
// Schedulers interact with the engine through the Scheduler interface and
// see jobs only through JobView — arrival time, total work W, span L, and the
// profit function — plus the observable execution quantities of AssignView.
// This enforces the paper's semi-non-clairvoyant model by construction: the
// internal DAG structure is invisible, and which ready nodes run is decided
// by the engine's node-pick policy, not the scheduler.
package sim

import (
	"cmp"
	"fmt"
	"slices"

	"dagsched/internal/dag"
	"dagsched/internal/profit"
)

// Job is one parallel job: an immutable DAG released at a point in time with
// a profit function over completion latency.
type Job struct {
	ID      int
	Graph   *dag.DAG
	Release int64
	Profit  profit.Fn
	// Commitment is this job's requested commitment level; the default
	// defers to the scheduler-wide policy. See Commitment.
	Commitment Commitment
}

// Validate checks the job is well formed.
func (j *Job) Validate() error {
	if j.Graph == nil {
		return fmt.Errorf("sim: job %d has nil graph", j.ID)
	}
	if err := j.Graph.Validate(); err != nil {
		return fmt.Errorf("sim: job %d: %w", j.ID, err)
	}
	if j.Release < 0 {
		return fmt.Errorf("sim: job %d released at negative time %d", j.ID, j.Release)
	}
	if j.Profit == nil {
		return fmt.Errorf("sim: job %d has nil profit function", j.ID)
	}
	if !j.Commitment.Valid() {
		return fmt.Errorf("sim: job %d has unknown commitment %q", j.ID, j.Commitment)
	}
	return nil
}

// RelDeadline returns the job's effective relative deadline: the last
// completion latency with nonzero profit. For a Step profit this is exactly
// the paper's D_i.
func (j *Job) RelDeadline() int64 { return j.Profit.SupportEnd() - 1 }

// AbsDeadline returns release + RelDeadline: the absolute time d_i by which
// the job must complete to earn profit.
func (j *Job) AbsDeadline() int64 { return j.Release + j.RelDeadline() }

// JobView is the semi-non-clairvoyant picture of a job given to schedulers:
// the scalar parameters the paper assumes known on arrival (W_i, L_i, r_i,
// the profit function) and nothing about the DAG's internal structure.
type JobView struct {
	ID      int
	Release int64
	W       int64 // total work
	L       int64 // span / critical-path length
	Profit  profit.Fn
	// Commitment is the job's requested commitment level (default: follow
	// the scheduler-wide policy).
	Commitment Commitment
}

// RelDeadline mirrors Job.RelDeadline.
func (v JobView) RelDeadline() int64 { return v.Profit.SupportEnd() - 1 }

// AbsDeadline mirrors Job.AbsDeadline.
func (v JobView) AbsDeadline() int64 { return v.Release + v.RelDeadline() }

// viewOf derives the scheduler-visible view of j.
func viewOf(j *Job) JobView {
	return JobView{
		ID:         j.ID,
		Release:    j.Release,
		W:          j.Graph.TotalWork(),
		L:          j.Graph.Span(),
		Profit:     j.Profit,
		Commitment: j.Commitment,
	}
}

// ValidateJobs checks a job set: each job well formed, IDs unique.
func ValidateJobs(jobs []*Job) error {
	seen := make(map[int]bool, len(jobs))
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return err
		}
		if seen[j.ID] {
			return fmt.Errorf("sim: duplicate job ID %d", j.ID)
		}
		seen[j.ID] = true
	}
	return nil
}

// sortJobsByRelease returns the jobs ordered by (release, ID) without
// mutating the input. (release, ID) is a total order — IDs are unique — so
// the unstable allocation-free sort is still deterministic.
func sortJobsByRelease(jobs []*Job) []*Job {
	out := append([]*Job(nil), jobs...)
	slices.SortFunc(out, func(a, b *Job) int {
		if a.Release != b.Release {
			return cmp.Compare(a.Release, b.Release)
		}
		return cmp.Compare(a.ID, b.ID)
	})
	return out
}
