package sim

// Env describes the execution environment a scheduler runs in, passed once
// before the simulation starts.
type Env struct {
	M     int     // number of processors
	Speed float64 // speed augmentation factor (exact value of Config.Speed)
}

// Alloc is one allocation decision: give Procs processors to job JobID for
// the current tick.
type Alloc struct {
	JobID int
	Procs int
}

// AssignView exposes the observable execution state schedulers may consult
// while making allocation decisions. Everything here is information a real
// semi-non-clairvoyant runtime has: how many nodes are ready right now and
// how much of the job's declared work has been processed.
type AssignView interface {
	// ReadyCount returns the number of ready nodes of an unfinished job, or
	// zero for unknown/finished jobs.
	ReadyCount(jobID int) int
	// ExecutedWork returns the work units (in the job's own declared scale)
	// processed so far, rounded down.
	ExecutedWork(jobID int) int64
}

// FullView additionally exposes clairvoyant quantities. Only baselines that
// are explicitly modeled as clairvoyant (for comparison and for realizing
// OPT-side constructions) may use it; the paper's algorithms must not.
type FullView interface {
	AssignView
	// RemainingSpan returns the remaining critical-path length of an
	// unfinished job in declared work units, rounded up.
	RemainingSpan(jobID int) int64
}

// CapacityAware is an optional Scheduler extension consulted only on
// fault-injected runs (Config.Faults). The engine reports the machine's
// effective capacity and work discarded by execution failures; schedulers
// that do not implement it simply run with stale assumptions — allocations
// that land on crashed processors are silently dropped for the tick.
type CapacityAware interface {
	// OnCapacityChange announces, before Assign for tick t, that the number
	// of operational processors changed to capacity (0 ≤ capacity ≤ Env.M).
	// It is called only on ticks where the capacity differs from the last
	// announced value; the initial value is Env.M.
	OnCapacityChange(t int64, capacity int)
	// OnWorkLost announces that execution failures during tick t discarded
	// accumulated work of a job. Lost is in the job's declared work scale,
	// rounded down (it can be 0 when only a fresh node's attempt failed);
	// AssignView.ExecutedWork already reflects the loss.
	OnWorkLost(t int64, jobID int, lost int64)
}

// Scheduler is an online scheduling algorithm driven by the engine. All
// callbacks happen on a single goroutine in deterministic order:
// Init once, then per tick OnArrival* (release order), OnExpire*, Assign,
// and OnCompletion* for jobs finishing in that tick.
type Scheduler interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Init is called once before the first tick.
	Init(env Env)
	// OnArrival announces a job released at time t.
	OnArrival(t int64, v JobView)
	// OnExpire announces that a job passed the last tick at which finishing
	// could earn profit; the engine will reject future allocations to it.
	OnExpire(t int64, jobID int)
	// Assign returns the allocations for tick t, appended to dst. The total
	// processor count must not exceed Env.M; each job at most once.
	Assign(t int64, view AssignView, dst []Alloc) []Alloc
	// OnCompletion announces that a job finished all nodes during tick t
	// (completion time t+1).
	OnCompletion(t int64, jobID int)
}
