package sim

import (
	"fmt"
	"strings"
	"testing"

	"dagsched/internal/dag"
	"dagsched/internal/profit"
	"dagsched/internal/rational"
)

// fifoSched is a minimal work-conserving test scheduler: jobs in arrival
// order, each granted as many processors as it has ready nodes, until the
// machine is full.
type fifoSched struct {
	m     int
	order []int
	live  map[int]bool
}

func (s *fifoSched) Name() string { return "test-fifo" }

func (s *fifoSched) Init(env Env) {
	s.m = env.M
	s.live = make(map[int]bool)
}

func (s *fifoSched) OnArrival(t int64, v JobView) {
	s.order = append(s.order, v.ID)
	s.live[v.ID] = true
}

func (s *fifoSched) OnExpire(t int64, jobID int) { delete(s.live, jobID) }

func (s *fifoSched) OnCompletion(t int64, jobID int) { delete(s.live, jobID) }

func (s *fifoSched) Assign(t int64, view AssignView, dst []Alloc) []Alloc {
	free := s.m
	for _, id := range s.order {
		if free == 0 {
			break
		}
		if !s.live[id] {
			continue
		}
		k := view.ReadyCount(id)
		if k > free {
			k = free
		}
		if k > 0 {
			dst = append(dst, Alloc{JobID: id, Procs: k})
			free -= k
		}
	}
	return dst
}

func step(t *testing.T, value float64, deadline int64) profit.Fn {
	t.Helper()
	s, err := profit.NewStep(value, deadline)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunSingleJobCompletes(t *testing.T) {
	j := &Job{ID: 1, Graph: dag.Chain(4, 1), Release: 0, Profit: step(t, 10, 10)}
	res, err := Run(Config{M: 2}, []*Job{j}, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 || res.TotalProfit != 10 {
		t.Errorf("completed=%d profit=%v", res.Completed, res.TotalProfit)
	}
	if res.Jobs[0].CompletedAt != 4 {
		t.Errorf("chain of 4 on 1 proc completed at %d, want 4", res.Jobs[0].CompletedAt)
	}
	if res.Jobs[0].Latency != 4 {
		t.Errorf("latency = %d", res.Jobs[0].Latency)
	}
}

func TestRunDeadlineMiss(t *testing.T) {
	// Chain of 4 with deadline 3: cannot finish in time, expires, zero profit.
	j := &Job{ID: 1, Graph: dag.Chain(4, 1), Release: 0, Profit: step(t, 10, 3)}
	res, err := Run(Config{M: 2}, []*Job{j}, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 || res.TotalProfit != 0 || res.Expired != 1 {
		t.Errorf("completed=%d profit=%v expired=%d", res.Completed, res.TotalProfit, res.Expired)
	}
}

func TestRunExactDeadline(t *testing.T) {
	// Chain of 3, deadline 3: completes at time 3, exactly on time.
	j := &Job{ID: 1, Graph: dag.Chain(3, 1), Release: 0, Profit: step(t, 5, 3)}
	res, err := Run(Config{M: 1}, []*Job{j}, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalProfit != 5 {
		t.Errorf("profit = %v, want 5 (exact deadline hit)", res.TotalProfit)
	}
}

func TestRunSpeedAugmentationExact(t *testing.T) {
	// Speed 3/2: chain of 3 unit nodes takes ceil over scaled works:
	// works ×2 = 6 units, 3 units/tick... but one node at a time: each node
	// has 2 scaled units, a tick applies 3 → node done in 1 tick (overshoot
	// lost). So 3 ticks. At speed 2 (works ×1, 2 units/tick) also 3 ticks?
	// No: speed 2/1 means apply 2 units to a 1-unit node → 1 tick per node.
	j := func() *Job { return &Job{ID: 1, Graph: dag.Chain(3, 1), Release: 0, Profit: step(t, 1, 100)} }

	res1, err := Run(Config{M: 1, Speed: rational.New(3, 2)}, []*Job{j()}, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Jobs[0].CompletedAt != 3 {
		t.Errorf("speed 3/2 chain(3,1): completed at %d, want 3 (node granularity)", res1.Jobs[0].CompletedAt)
	}

	// With node work 2 and speed 3/2 (scaled: work 4, 3/tick) each node
	// takes 2 ticks → 6 ticks total; at speed 1 it is also 6 ticks; at
	// speed 2 it is 3 ticks.
	big := &Job{ID: 1, Graph: dag.Chain(3, 2), Release: 0, Profit: step(t, 1, 100)}
	res2, err := Run(Config{M: 1, Speed: rational.New(3, 2)}, []*Job{big}, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Jobs[0].CompletedAt != 6 {
		t.Errorf("speed 3/2 chain(3,2): completed at %d, want 6", res2.Jobs[0].CompletedAt)
	}
	big2 := &Job{ID: 1, Graph: dag.Chain(3, 2), Release: 0, Profit: step(t, 1, 100)}
	res3, err := Run(Config{M: 1, Speed: rational.FromInt(2)}, []*Job{big2}, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Jobs[0].CompletedAt != 3 {
		t.Errorf("speed 2 chain(3,2): completed at %d, want 3", res3.Jobs[0].CompletedAt)
	}
}

func TestRunParallelBlockUsesAllProcs(t *testing.T) {
	j := &Job{ID: 1, Graph: dag.Block(8, 1), Release: 0, Profit: step(t, 1, 100)}
	res, err := Run(Config{M: 4}, []*Job{j}, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].CompletedAt != 2 {
		t.Errorf("block(8) on 4 procs completed at %d, want 2", res.Jobs[0].CompletedAt)
	}
	if res.BusyProcTicks != 8 || res.IdleProcTicks != 0 {
		t.Errorf("busy=%d idle=%d", res.BusyProcTicks, res.IdleProcTicks)
	}
}

func TestRunLateArrivalIdleJump(t *testing.T) {
	j := &Job{ID: 1, Graph: dag.Chain(1, 1), Release: 1000, Profit: step(t, 1, 5)}
	res, err := Run(Config{M: 1}, []*Job{j}, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].CompletedAt != 1001 {
		t.Errorf("completed at %d, want 1001", res.Jobs[0].CompletedAt)
	}
	if res.IdleProcTicks != 0 {
		t.Errorf("idle ticks %d accrued during the empty gap", res.IdleProcTicks)
	}
}

func TestRunTwoJobsShareMachine(t *testing.T) {
	jobs := []*Job{
		{ID: 1, Graph: dag.Block(4, 1), Release: 0, Profit: step(t, 3, 10)},
		{ID: 2, Graph: dag.Block(4, 1), Release: 0, Profit: step(t, 7, 10)},
	}
	res, err := Run(Config{M: 4}, jobs, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 || res.TotalProfit != 10 {
		t.Errorf("completed=%d profit=%v", res.Completed, res.TotalProfit)
	}
	if res.Ticks != 2 {
		t.Errorf("ticks = %d, want 2", res.Ticks)
	}
}

func TestRunRejectsOversubscription(t *testing.T) {
	bad := &hookSched{assign: func(t int64, v AssignView, dst []Alloc) []Alloc {
		return append(dst, Alloc{JobID: 1, Procs: 99})
	}}
	j := &Job{ID: 1, Graph: dag.Chain(1, 1), Release: 0, Profit: step(t, 1, 5)}
	_, err := Run(Config{M: 2}, []*Job{j}, bad)
	if err == nil || !strings.Contains(err.Error(), "oversubscribed") {
		t.Errorf("err = %v, want oversubscription error", err)
	}
}

func TestRunRejectsDuplicateAlloc(t *testing.T) {
	bad := &hookSched{assign: func(t int64, v AssignView, dst []Alloc) []Alloc {
		return append(dst, Alloc{JobID: 1, Procs: 1}, Alloc{JobID: 1, Procs: 1})
	}}
	j := &Job{ID: 1, Graph: dag.Chain(1, 1), Release: 0, Profit: step(t, 1, 5)}
	_, err := Run(Config{M: 2}, []*Job{j}, bad)
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("err = %v, want duplicate-alloc error", err)
	}
}

func TestRunRejectsUnknownJob(t *testing.T) {
	bad := &hookSched{assign: func(t int64, v AssignView, dst []Alloc) []Alloc {
		return append(dst, Alloc{JobID: 42, Procs: 1})
	}}
	j := &Job{ID: 1, Graph: dag.Chain(1, 1), Release: 0, Profit: step(t, 1, 5)}
	_, err := Run(Config{M: 2}, []*Job{j}, bad)
	if err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("err = %v, want unknown-job error", err)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	j := &Job{ID: 1, Graph: dag.Chain(1, 1), Release: 0, Profit: step(t, 1, 5)}
	if _, err := Run(Config{M: 0}, []*Job{j}, &fifoSched{}); err == nil {
		t.Error("accepted M=0")
	}
	if _, err := Run(Config{M: 1, Speed: rational.New(-1, 2)}, []*Job{j}, &fifoSched{}); err == nil {
		t.Error("accepted negative speed")
	}
}

func TestRunRejectsDuplicateJobIDs(t *testing.T) {
	jobs := []*Job{
		{ID: 1, Graph: dag.Chain(1, 1), Release: 0, Profit: step(t, 1, 5)},
		{ID: 1, Graph: dag.Chain(1, 1), Release: 0, Profit: step(t, 1, 5)},
	}
	if _, err := Run(Config{M: 1}, jobs, &fifoSched{}); err == nil {
		t.Error("accepted duplicate job IDs")
	}
}

func TestRunHorizonStops(t *testing.T) {
	j := &Job{ID: 1, Graph: dag.Chain(100, 1), Release: 0, Profit: step(t, 1, 1000)}
	res, err := Run(Config{M: 1, Horizon: 10}, []*Job{j}, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ticks != 10 || res.Completed != 0 {
		t.Errorf("ticks=%d completed=%d", res.Ticks, res.Completed)
	}
	if len(res.Jobs) != 1 {
		t.Errorf("unfinished job missing from stats: %d", len(res.Jobs))
	}
}

func TestRunTraceRecorded(t *testing.T) {
	j := &Job{ID: 1, Graph: dag.Chain(3, 1), Release: 0, Profit: step(t, 1, 10)}
	res, err := Run(Config{M: 1, Record: true}, []*Job{j}, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || len(res.Trace.Ticks) != 3 {
		t.Fatalf("trace = %+v", res.Trace)
	}
	for _, tick := range res.Trace.Ticks {
		if len(tick.Allocs) != 1 || len(tick.Allocs[0].Nodes) != 1 {
			t.Errorf("tick %d allocs = %+v", tick.T, tick.Allocs)
		}
	}
}

func TestRunPreemptionCounted(t *testing.T) {
	// Scheduler that runs job 1 at t=0, job 2 at t=1, job 1 again at t=2...
	alt := &hookSched{assign: func(tk int64, v AssignView, dst []Alloc) []Alloc {
		id := int(tk%2) + 1
		if v.ReadyCount(id) > 0 {
			return append(dst, Alloc{JobID: id, Procs: 1})
		}
		other := 3 - id
		if v.ReadyCount(other) > 0 {
			return append(dst, Alloc{JobID: other, Procs: 1})
		}
		return dst
	}}
	jobs := []*Job{
		{ID: 1, Graph: dag.Chain(2, 1), Release: 0, Profit: step(t, 1, 100)},
		{ID: 2, Graph: dag.Chain(2, 1), Release: 0, Profit: step(t, 1, 100)},
	}
	res, err := Run(Config{M: 1}, jobs, alt)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, s := range res.Jobs {
		total += s.Preemptions
	}
	if total != 2 {
		t.Errorf("total preemptions = %d, want 2 (each job paused once)", total)
	}
}

func TestExecutedWorkObservable(t *testing.T) {
	var observed int64
	spy := &hookSched{assign: func(tk int64, v AssignView, dst []Alloc) []Alloc {
		observed = v.ExecutedWork(1)
		if v.ReadyCount(1) > 0 {
			dst = append(dst, Alloc{JobID: 1, Procs: 1})
		}
		return dst
	}}
	j := &Job{ID: 1, Graph: dag.Chain(4, 2), Release: 0, Profit: step(t, 1, 100)}
	if _, err := Run(Config{M: 1, Speed: rational.New(1, 2)}, []*Job{j}, spy); err != nil {
		t.Fatal(err)
	}
	// At the final Assign (after 15 of 16 scaled half-units), executed work
	// in declared units must be 7 (floor of 15/2).
	if observed != 7 {
		t.Errorf("last observed ExecutedWork = %d, want 7", observed)
	}
}

// hookSched adapts a closure into a Scheduler for contract tests.
type hookSched struct {
	assign func(t int64, view AssignView, dst []Alloc) []Alloc
}

func (h *hookSched) Name() string { return "test-hook" }

func (h *hookSched) Init(Env) {}

func (h *hookSched) OnArrival(int64, JobView) {}

func (h *hookSched) OnExpire(int64, int) {}

func (h *hookSched) OnCompletion(int64, int) {}

func (h *hookSched) Assign(t int64, view AssignView, dst []Alloc) []Alloc {
	return h.assign(t, view, dst)
}

// orderSched records the callback sequence to pin the engine's event
// ordering contract.
type orderSched struct {
	fifoSched
	events []string
}

func (o *orderSched) OnArrival(t int64, v JobView) {
	o.events = append(o.events, fmt.Sprintf("arrive(%d)@%d", v.ID, t))
	o.fifoSched.OnArrival(t, v)
}

func (o *orderSched) OnExpire(t int64, id int) {
	o.events = append(o.events, fmt.Sprintf("expire(%d)@%d", id, t))
	o.fifoSched.OnExpire(t, id)
}

func (o *orderSched) OnCompletion(t int64, id int) {
	o.events = append(o.events, fmt.Sprintf("complete(%d)@%d", id, t))
	o.fifoSched.OnCompletion(t, id)
}

func TestCallbackOrdering(t *testing.T) {
	jobs := []*Job{
		{ID: 1, Graph: dag.Chain(2, 1), Release: 0, Profit: step(t, 1, 10)},
		{ID: 2, Graph: dag.Chain(50, 1), Release: 0, Profit: step(t, 1, 5)}, // expires
		{ID: 3, Graph: dag.Chain(1, 1), Release: 4, Profit: step(t, 1, 10)},
	}
	o := &orderSched{}
	if _, err := Run(Config{M: 1}, jobs, o); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"arrive(1)@0", "arrive(2)@0",
		"complete(1)@1", // runs ticks 0-1 (FIFO, job 1 first)
		"arrive(3)@4",
		"expire(2)@5", // deadline 5 passed without completion
		"complete(3)@5",
	}
	if len(o.events) != len(want) {
		t.Fatalf("events = %v, want %v", o.events, want)
	}
	for i := range want {
		if o.events[i] != want[i] {
			t.Fatalf("event %d = %q, want %q (all: %v)", i, o.events[i], want[i], o.events)
		}
	}
}

func TestSortJobsByReleaseStable(t *testing.T) {
	jobs := []*Job{
		{ID: 3, Graph: dag.Chain(1, 1), Release: 5, Profit: step(t, 1, 5)},
		{ID: 1, Graph: dag.Chain(1, 1), Release: 5, Profit: step(t, 1, 5)},
		{ID: 2, Graph: dag.Chain(1, 1), Release: 0, Profit: step(t, 1, 5)},
	}
	got := sortJobsByRelease(jobs)
	if got[0].ID != 2 || got[1].ID != 1 || got[2].ID != 3 {
		t.Errorf("order = %d,%d,%d; want 2,1,3", got[0].ID, got[1].ID, got[2].ID)
	}
	// Input untouched.
	if jobs[0].ID != 3 {
		t.Error("input slice mutated")
	}
}

func TestJobViewHelpers(t *testing.T) {
	j := &Job{ID: 1, Graph: dag.Figure2(3, 4), Release: 7, Profit: step(t, 2, 9)}
	if j.RelDeadline() != 9 || j.AbsDeadline() != 16 {
		t.Errorf("deadlines: rel %d abs %d", j.RelDeadline(), j.AbsDeadline())
	}
	v := viewOf(j)
	if v.W != j.Graph.TotalWork() || v.L != j.Graph.Span() || v.AbsDeadline() != 16 {
		t.Errorf("view = %+v", v)
	}
}
