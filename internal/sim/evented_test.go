package sim

import (
	"fmt"
	"testing"
	"testing/quick"

	"dagsched/internal/dag"
	"dagsched/internal/profit"
	"dagsched/internal/rational"
)

// resultsEqual compares every observable field of two results.
func resultsEqual(t *testing.T, a, b *Result) error {
	t.Helper()
	if a.TotalProfit != b.TotalProfit {
		return fmt.Errorf("profit %v vs %v", a.TotalProfit, b.TotalProfit)
	}
	if a.Completed != b.Completed || a.Expired != b.Expired {
		return fmt.Errorf("completed/expired %d/%d vs %d/%d", a.Completed, a.Expired, b.Completed, b.Expired)
	}
	if a.BusyProcTicks != b.BusyProcTicks || a.IdleProcTicks != b.IdleProcTicks {
		return fmt.Errorf("busy/idle %d/%d vs %d/%d", a.BusyProcTicks, a.IdleProcTicks, b.BusyProcTicks, b.IdleProcTicks)
	}
	if a.Ticks != b.Ticks {
		return fmt.Errorf("ticks %d vs %d", a.Ticks, b.Ticks)
	}
	byID := func(js []JobStat) map[int]JobStat {
		m := map[int]JobStat{}
		for _, s := range js {
			m[s.ID] = s
		}
		return m
	}
	am, bm := byID(a.Jobs), byID(b.Jobs)
	if len(am) != len(bm) {
		return fmt.Errorf("job stats %d vs %d", len(am), len(bm))
	}
	for id, as := range am {
		bs := bm[id]
		if as != bs {
			return fmt.Errorf("job %d stats %+v vs %+v", id, as, bs)
		}
	}
	return nil
}

func TestEventedMatchesTickSingleJob(t *testing.T) {
	j := func() *Job {
		return &Job{ID: 1, Graph: dag.ForkJoin(2, 3, 7), Release: 0, Profit: step(t, 5, 500)}
	}
	cfg := Config{M: 4}
	a, err := Run(cfg, []*Job{j()}, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEvented(cfg, []*Job{j()}, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if err := resultsEqual(t, a, b); err != nil {
		t.Fatal(err)
	}
}

func TestEventedMatchesTickWithSpeed(t *testing.T) {
	jobs := func() []*Job {
		return []*Job{
			{ID: 1, Graph: dag.Chain(5, 6), Release: 0, Profit: step(t, 3, 100)},
			{ID: 2, Graph: dag.Block(9, 4), Release: 7, Profit: step(t, 2, 50)},
		}
	}
	for _, sp := range []rational.Rat{rational.One(), rational.New(3, 2), rational.New(7, 4)} {
		cfg := Config{M: 3, Speed: sp}
		a, err := Run(cfg, jobs(), &fifoSched{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunEvented(cfg, jobs(), &fifoSched{})
		if err != nil {
			t.Fatal(err)
		}
		if err := resultsEqual(t, a, b); err != nil {
			t.Fatalf("speed %v: %v", sp, err)
		}
	}
}

func TestEventedExpiryMatches(t *testing.T) {
	jobs := func() []*Job {
		return []*Job{
			{ID: 1, Graph: dag.Chain(50, 2), Release: 0, Profit: step(t, 3, 30)}, // cannot finish
			{ID: 2, Graph: dag.Chain(4, 2), Release: 40, Profit: step(t, 2, 20)},
		}
	}
	cfg := Config{M: 1}
	a, err := Run(cfg, jobs(), &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEvented(cfg, jobs(), &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if err := resultsEqual(t, a, b); err != nil {
		t.Fatal(err)
	}
	if a.Expired != 1 {
		t.Errorf("expired = %d, want 1", a.Expired)
	}
}

func TestEventedHorizonMatches(t *testing.T) {
	jobs := func() []*Job {
		return []*Job{{ID: 1, Graph: dag.Chain(100, 3), Release: 0, Profit: step(t, 1, 1000)}}
	}
	cfg := Config{M: 1, Horizon: 37}
	a, err := Run(cfg, jobs(), &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEvented(cfg, jobs(), &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if err := resultsEqual(t, a, b); err != nil {
		t.Fatal(err)
	}
}

func TestEventedTraceExpandsToTicks(t *testing.T) {
	j := &Job{ID: 1, Graph: dag.Chain(4, 5), Release: 0, Profit: step(t, 1, 100)}
	res, err := RunEvented(Config{M: 1, Record: true}, []*Job{j}, &fifoSched{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace.Ticks) != 20 {
		t.Errorf("trace ticks = %d, want 20 (4 nodes × 5 work)", len(res.Trace.Ticks))
	}
	for i, tick := range res.Trace.Ticks {
		if tick.T != int64(i) {
			t.Fatalf("tick %d has T=%d", i, tick.T)
		}
	}
}

func TestPropEventedEquivalence(t *testing.T) {
	// Random workloads, policies, speeds: evented must match ticked for the
	// event-stationary test scheduler.
	f := func(seed int64) bool {
		jobs, m, sp := randomInstance(seed)
		cfg := Config{M: m, Speed: sp}
		a, err := Run(cfg, jobs, &fifoSched{})
		if err != nil {
			return false
		}
		jobs2, _, _ := randomInstance(seed)
		b, err := RunEvented(cfg, jobs2, &fifoSched{})
		if err != nil {
			return false
		}
		return resultsEqualBool(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// randomInstance builds a deterministic pseudo-random workload from a seed
// without importing math/rand (keep it cheap and reproducible).
func randomInstance(seed int64) ([]*Job, int, rational.Rat) {
	x := uint64(seed)*2654435761 + 12345
	rnd := func(n int) int {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return int(x % uint64(n))
	}
	m := 1 + rnd(4)
	speeds := []rational.Rat{rational.One(), rational.New(3, 2), rational.New(2, 1)}
	sp := speeds[rnd(3)]
	n := 2 + rnd(6)
	jobs := make([]*Job, 0, n)
	release := int64(0)
	for i := 0; i < n; i++ {
		var g *dag.DAG
		switch rnd(4) {
		case 0:
			g = dag.Chain(1+rnd(6), int64(1+rnd(4)))
		case 1:
			g = dag.Block(1+rnd(8), int64(1+rnd(4)))
		case 2:
			g = dag.ForkJoin(1+rnd(2), 1+rnd(4), int64(1+rnd(3)))
		default:
			g = dag.Wavefront(1+rnd(4), int64(1+rnd(2)))
		}
		d := g.Span() + int64(rnd(int(g.TotalWork())+5))
		fn, err := profit.NewStep(float64(1+rnd(9)), d)
		if err != nil {
			panic(err)
		}
		jobs = append(jobs, &Job{ID: i, Graph: g, Release: release, Profit: fn})
		release += int64(rnd(7))
	}
	return jobs, m, sp
}

func resultsEqualBool(a, b *Result) bool {
	if a.TotalProfit != b.TotalProfit || a.Completed != b.Completed ||
		a.Expired != b.Expired || a.BusyProcTicks != b.BusyProcTicks ||
		a.IdleProcTicks != b.IdleProcTicks || a.Ticks != b.Ticks {
		return false
	}
	am := map[int]JobStat{}
	for _, s := range a.Jobs {
		am[s.ID] = s
	}
	for _, s := range b.Jobs {
		if am[s.ID] != s {
			return false
		}
	}
	return len(a.Jobs) == len(b.Jobs)
}

func TestEventedRejectsBadConfig(t *testing.T) {
	j := &Job{ID: 1, Graph: dag.Chain(1, 1), Release: 0, Profit: step(t, 1, 5)}
	if _, err := RunEvented(Config{M: 0}, []*Job{j}, &fifoSched{}); err == nil {
		t.Error("accepted M=0")
	}
	if _, err := RunEvented(Config{M: 1, Speed: rational.New(-1, 1)}, []*Job{j}, &fifoSched{}); err == nil {
		t.Error("accepted negative speed")
	}
}

func BenchmarkTickVsEventedCoarse(b *testing.B) {
	// A coarse-grained workload (few large nodes): evented should be far
	// faster. Run both to compare in -bench output.
	mk := func(t *testing.B) []*Job {
		t.Helper()
		var jobs []*Job
		for i := 0; i < 10; i++ {
			fn, err := profit.NewStep(1, 100000)
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, &Job{ID: i, Graph: dag.Chain(4, 2000), Release: int64(i * 100), Profit: fn})
		}
		return jobs
	}
	b.Run("tick", func(b *testing.B) {
		jobs := mk(b)
		for i := 0; i < b.N; i++ {
			if _, err := Run(Config{M: 4}, jobs, &fifoSched{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("evented", func(b *testing.B) {
		jobs := mk(b)
		for i := 0; i < b.N; i++ {
			if _, err := RunEvented(Config{M: 4}, jobs, &fifoSched{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
