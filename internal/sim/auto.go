package sim

import "sync/atomic"

// RouteStats counts RunAuto engine choices. Safe for concurrent use, so one
// instance can aggregate a whole experiment grid across runner workers; wire
// it up through Config.OnRoute with (*RouteStats).Count.
type RouteStats struct {
	tick    atomic.Int64
	evented atomic.Int64
}

// Count records one routing decision; it has the Config.OnRoute signature's
// first argument and ignores the reason.
func (r *RouteStats) Count(engine, _ string) {
	switch engine {
	case EngineEvented:
		r.evented.Add(1)
	default:
		r.tick.Add(1)
	}
}

// Tick returns how many runs were routed to the tick engine.
func (r *RouteStats) Tick() int64 { return r.tick.Load() }

// Evented returns how many runs were routed to the evented engine.
func (r *RouteStats) Evented() int64 { return r.evented.Load() }

// EventSafe marks schedulers (and node-pick policies) whose decisions are
// stationary between engine events. A scheduler is event-safe when its Assign
// output depends only on state that changes at events — arrivals, expiries,
// completions — never on the clock or on executed work read between events.
// A policy is event-safe when its pick is invariant across an interval in
// which the ready set is unchanged and only picked nodes' remaining work
// shrinks. RunAuto consults the marker; implementations that cannot promise
// stationarity must simply not implement it.
type EventSafe interface {
	// EventSafe reports whether this configuration of the implementation is
	// event-stationary. A type whose safety depends on options (e.g. a list
	// scheduler whose LLF order reads the clock) returns false for the
	// unsafe configurations.
	EventSafe() bool
}

// Routing reasons reported through Config.OnRoute.
const (
	reasonFaults      = "fault injection is per-tick"
	reasonProbe       = "telemetry probes sample per tick"
	reasonSchedOptOut = "scheduler does not declare event safety"
	reasonSchedUnsafe = "scheduler configuration is not event-stationary"
	reasonPolicy      = "node-pick policy is not event-stationary"
	reasonSafe        = "scheduler and policy are event-stationary"
)

// routeEngine decides which engine RunAuto uses for the given combination
// and why. The evented engine is chosen only when equivalence is provable:
// no fault injection (faults are defined per tick), no telemetry probes
// (per-job probe expansion needs per-tick state), an event-safe scheduler,
// and an event-safe policy (nil means dag.ByID, which is safe).
func routeEngine(cfg Config, sched Scheduler) (engine, reason string) {
	if cfg.Faults != nil {
		return EngineTick, reasonFaults
	}
	if cfg.Telemetry != nil && cfg.Telemetry.Probe != nil {
		return EngineTick, reasonProbe
	}
	es, ok := sched.(EventSafe)
	if !ok {
		return EngineTick, reasonSchedOptOut
	}
	if !es.EventSafe() {
		return EngineTick, reasonSchedUnsafe
	}
	if cfg.Policy != nil {
		pes, ok := cfg.Policy.(EventSafe)
		if !ok || !pes.EventSafe() {
			return EngineTick, reasonPolicy
		}
	}
	return EngineEvented, reasonSafe
}

// RunAuto simulates jobs under sched on whichever engine is provably
// equivalent and fastest: the evented engine when the (scheduler, policy,
// faults, probe) combination permits it, the tick engine otherwise. Results
// are bit-identical either way; Result.Engine records the choice, and
// Config.OnRoute (if set) observes it before the run starts.
func RunAuto(cfg Config, jobs []*Job, sched Scheduler) (*Result, error) {
	eng, reason := routeEngine(cfg, sched)
	if cfg.OnRoute != nil {
		cfg.OnRoute(eng, reason)
	}
	if eng == EngineEvented {
		return RunEvented(cfg, jobs, sched)
	}
	return Run(cfg, jobs, sched)
}
