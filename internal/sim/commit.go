package sim

import "fmt"

// Commitment is the promise a scheduler attaches to an admitted job, after
// "Online Throughput Maximization: Commitment is No Burden" (Eberle, Megow,
// Schewior). The serving tier already distinguishes durability commitment
// (an acknowledged verdict survives a crash); Commitment adds the scheduling
// half: past its commit point, a committed job may no longer be aborted —
// the scheduler keeps allocating until the job completes, even when the
// deadline has passed and the completion earns nothing.
//
// The levels, weakest to strongest:
//
//	none          no scheduling promise — an admitted job can still be
//	              abandoned when its deadline becomes unreachable.
//	on-admission  durability only: the verdict is crash-safe, the schedule
//	              is not a promise. The serving default.
//	delta         δ-commitment: the promise attaches when the job is
//	              admitted into the running set (on arrival or later from
//	              the parked pool P, which δ-freshness guarantees happens
//	              no later than (1+δ)·x_i before the deadline).
//	on-arrival    commit-to-completion at arrival: the admission verdict is
//	              final. Admitted means guaranteed to finish; a job that
//	              would have been parked is rejected instead — the paper's
//	              second-chance pool is incompatible with deciding at
//	              arrival.
type Commitment string

const (
	// CommitmentDefault defers to the scheduler-wide policy.
	CommitmentDefault Commitment = ""
	// CommitmentNone makes no scheduling promise.
	CommitmentNone Commitment = "none"
	// CommitmentOnAdmission is durability-only commitment (the wire default).
	CommitmentOnAdmission Commitment = "on-admission"
	// CommitmentDelta commits a job when it is admitted to run (δ-commitment).
	CommitmentDelta Commitment = "delta"
	// CommitmentOnArrival commits at the arrival verdict: admitted jobs are
	// guaranteed to finish, everything else is rejected outright.
	CommitmentOnArrival Commitment = "on-arrival"
)

// ParseCommitment parses a commitment selector (-commitment flag, per-job
// spec field). The empty string is not a level — callers resolve their own
// default first.
func ParseCommitment(s string) (Commitment, error) {
	switch c := Commitment(s); c {
	case CommitmentNone, CommitmentOnAdmission, CommitmentDelta, CommitmentOnArrival:
		return c, nil
	}
	return "", fmt.Errorf("sim: unknown commitment %q (want none, on-admission, delta, or on-arrival)", s)
}

// Valid reports whether c is the default or a parseable level.
func (c Commitment) Valid() bool {
	if c == CommitmentDefault {
		return true
	}
	_, err := ParseCommitment(string(c))
	return err == nil
}

// Binding reports whether this level carries a scheduling promise (delta or
// on-arrival); none and on-admission constrain durability only.
func (c Commitment) Binding() bool {
	return c == CommitmentDelta || c == CommitmentOnArrival
}

// Resolve returns c, or the fallback policy when c is the default.
func (c Commitment) Resolve(policy Commitment) Commitment {
	if c == CommitmentDefault {
		return policy
	}
	return c
}

// Committer is implemented by schedulers that honor binding commitment: the
// engine consults it before aborting an overdue job, and skips the abort
// while the scheduler stands by its promise. A scheduler without binding
// commitment support simply does not implement the interface.
type Committer interface {
	// Committed reports whether the scheduler has promised to complete the
	// job; the engine then never expires it, and the job runs to completion
	// even if it finishes past its deadline for zero profit.
	Committed(jobID int) bool
}
