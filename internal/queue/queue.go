// Package queue provides the ordered containers scheduler S is built on: a
// density-ordered list for the priority queues Q and P, and a band index
// answering the admission-control query of condition (2),
//
//	N(T, v, c·v) = Σ n_j over jobs J_j ∈ T with density v_j ∈ [v, c·v),
//
// i.e. the total processor allotment of jobs whose density falls in a
// multiplicative band. Two implementations are provided: a naive scan and a
// treap with augmented subtree sums (O(log n) insert/remove/range-sum); the
// ABL4 benchmark compares them.
package queue

import "sort"

// Item is one job's entry: its identity, density v_i, and weight (the
// processor allotment n_i that band sums accumulate).
type Item struct {
	ID      int
	Density float64
	Weight  float64
}

// less orders items by density descending, then ID ascending — the execution
// order of scheduler S with a deterministic tiebreak.
func less(a, b Item) bool {
	if a.Density != b.Density {
		return a.Density > b.Density
	}
	return a.ID < b.ID
}

// DensityList is an ordered collection of items sorted by density descending
// (ID ascending among equals). It backs the queues Q and P: iteration visits
// jobs from highest to lowest density. The zero value is an empty list.
//
// The ID map stores each item's density, not its slice index: an insert or
// removal shifts the index of every later item, and keeping an index map
// current meant rewriting O(n) map entries per mutation. Storing the (stable)
// density instead costs exactly one map write per mutation; position lookups
// recover the index with a binary search on the (density, ID) key.
type DensityList struct {
	items []Item
	pos   map[int]float64 // ID -> density (the sort key half that, with ID, locates the item)
}

// Len returns the number of items.
func (l *DensityList) Len() int { return len(l.items) }

// index returns the slice position of the item with the given ID, or false.
func (l *DensityList) index(id int) (int, bool) {
	d, ok := l.pos[id]
	if !ok {
		return 0, false
	}
	probe := Item{ID: id, Density: d}
	i := sort.Search(len(l.items), func(i int) bool { return !less(l.items[i], probe) })
	return i, true
}

// Insert adds it to the list, keeping order. It panics if the ID is already
// present: queues Q and P are disjoint and never hold a job twice, so a
// duplicate insert is a scheduler bug.
func (l *DensityList) Insert(it Item) {
	if l.pos == nil {
		l.pos = make(map[int]float64)
	}
	if _, dup := l.pos[it.ID]; dup {
		panic("queue: duplicate ID inserted into DensityList")
	}
	i := sort.Search(len(l.items), func(i int) bool { return !less(l.items[i], it) })
	l.items = append(l.items, Item{})
	copy(l.items[i+1:], l.items[i:])
	l.items[i] = it
	l.pos[it.ID] = it.Density
}

// Remove deletes the item with the given ID, reporting whether it was
// present.
func (l *DensityList) Remove(id int) bool {
	i, ok := l.index(id)
	if !ok {
		return false
	}
	copy(l.items[i:], l.items[i+1:])
	l.items = l.items[:len(l.items)-1]
	delete(l.pos, id)
	return true
}

// Contains reports whether an item with the given ID is present.
func (l *DensityList) Contains(id int) bool {
	_, ok := l.pos[id]
	return ok
}

// Get returns the item with the given ID.
func (l *DensityList) Get(id int) (Item, bool) {
	i, ok := l.index(id)
	if !ok {
		return Item{}, false
	}
	return l.items[i], true
}

// At returns the i-th item in density-descending order.
func (l *DensityList) At(i int) Item { return l.items[i] }

// ForEach visits items from highest to lowest density until fn returns
// false. The list must not be mutated during iteration.
func (l *DensityList) ForEach(fn func(Item) bool) {
	for _, it := range l.items {
		if !fn(it) {
			return
		}
	}
}

// Snapshot appends all items in order to dst and returns it.
func (l *DensityList) Snapshot(dst []Item) []Item { return append(dst, l.items...) }

// BandIndex answers weighted range-sum queries over densities.
type BandIndex interface {
	// Insert adds an item. IDs must be unique among live items.
	Insert(it Item)
	// Remove deletes the item with the given ID and density, reporting
	// whether it was present.
	Remove(id int, density float64) bool
	// SumRange returns the total weight of items with density in [lo, hi).
	SumRange(lo, hi float64) float64
	// SumFrom returns the total weight of items with density ≥ lo.
	SumFrom(lo float64) float64
	// Len returns the number of live items.
	Len() int
}

// Counted is implemented by band indexes that report a deterministic
// machine-independent measure of structural work: the number of stored
// entries examined (NaiveBand) or tree nodes touched (TreapBand). The ABL4
// experiment compares substrates on this measure so its table is
// bit-reproducible on any machine and under any runner parallelism.
type Counted interface {
	// Visits returns the cumulative work counter.
	Visits() int64
	// ResetVisits zeroes the counter (e.g. after setup inserts).
	ResetVisits()
}

// NaiveBand is the obviously-correct BandIndex: a flat map scanned per
// query. It is the reference implementation for property tests and the
// baseline for the ABL4 benchmark.
type NaiveBand struct {
	items  map[int]Item
	visits int64
}

// NewNaiveBand returns an empty NaiveBand.
func NewNaiveBand() *NaiveBand { return &NaiveBand{items: make(map[int]Item)} }

// Insert implements BandIndex.
func (n *NaiveBand) Insert(it Item) {
	if _, dup := n.items[it.ID]; dup {
		panic("queue: duplicate ID inserted into NaiveBand")
	}
	n.items[it.ID] = it
}

// Remove implements BandIndex.
func (n *NaiveBand) Remove(id int, _ float64) bool {
	if _, ok := n.items[id]; !ok {
		return false
	}
	delete(n.items, id)
	return true
}

// SumRange implements BandIndex.
func (n *NaiveBand) SumRange(lo, hi float64) float64 {
	var s float64
	for _, it := range n.items {
		n.visits++
		if it.Density >= lo && it.Density < hi {
			s += it.Weight
		}
	}
	return s
}

// Visits implements Counted: entries examined by SumRange/SumFrom scans.
func (n *NaiveBand) Visits() int64 { return n.visits }

// ResetVisits implements Counted.
func (n *NaiveBand) ResetVisits() { n.visits = 0 }

// SumFrom implements BandIndex.
func (n *NaiveBand) SumFrom(lo float64) float64 {
	var s float64
	for _, it := range n.items {
		n.visits++
		if it.Density >= lo {
			s += it.Weight
		}
	}
	return s
}

// Len implements BandIndex.
func (n *NaiveBand) Len() int { return len(n.items) }
