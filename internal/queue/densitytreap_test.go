package queue

import (
	"math/rand"
	"testing"
)

// TestPropDensityTreapMatchesDensityList drives a DensityTreap and a
// DensityList through the same randomized insert/remove sequence and checks
// that every observable — Len, Contains, Get, Snapshot order, ForEach order
// and early stop — agrees. The treap is a drop-in replacement for the list;
// any ordering divergence would change scheduler S's execution order.
func TestPropDensityTreapMatchesDensityList(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		tr := NewDensityTreap(int64(trial))
		var dl DensityList
		live := make([]int, 0, 64)
		for step := 0; step < 300; step++ {
			if len(live) == 0 || rng.Intn(3) > 0 {
				id := rng.Intn(100)
				if tr.Contains(id) {
					continue
				}
				// Coarse densities force equal-density ID tiebreaks.
				it := Item{ID: id, Density: float64(rng.Intn(8)) / 4, Weight: rng.Float64()}
				tr.Insert(it)
				dl.Insert(it)
				live = append(live, id)
			} else {
				k := rng.Intn(len(live))
				id := live[k]
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
				if got, want := tr.Remove(id), dl.Remove(id); got != want {
					t.Fatalf("trial %d step %d: Remove(%d) treap=%v list=%v", trial, step, id, got, want)
				}
			}
			if tr.Len() != dl.Len() {
				t.Fatalf("trial %d step %d: Len treap=%d list=%d", trial, step, tr.Len(), dl.Len())
			}
			ts, ls := tr.Snapshot(nil), dl.Snapshot(nil)
			for i := range ls {
				if ts[i] != ls[i] {
					t.Fatalf("trial %d step %d: Snapshot[%d] treap=%+v list=%+v", trial, step, i, ts[i], ls[i])
				}
			}
			probe := rng.Intn(100)
			ti, tok := tr.Get(probe)
			li, lok := dl.Get(probe)
			if tok != lok || ti != li {
				t.Fatalf("trial %d step %d: Get(%d) treap=(%+v,%v) list=(%+v,%v)", trial, step, probe, ti, tok, li, lok)
			}
			if tr.Contains(probe) != dl.Contains(probe) {
				t.Fatalf("trial %d step %d: Contains(%d) disagree", trial, step, probe)
			}
		}
	}
}

// TestDensityTreapForEachFrom checks that ForEachFrom(v) visits exactly the
// ForEach suffix of items with density ≤ v, in the same order, for bounds
// below, between, at, and above the stored densities.
func TestDensityTreapForEachFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := NewDensityTreap(1)
	for id := 0; id < 200; id++ {
		tr.Insert(Item{ID: id, Density: float64(rng.Intn(20)) / 2, Weight: 1})
	}
	bounds := []float64{-1, 0, 0.5, 1, 4.25, 9.5, 100}
	for _, v := range bounds {
		var want []Item
		tr.ForEach(func(it Item) bool {
			if it.Density <= v {
				want = append(want, it)
			}
			return true
		})
		var got []Item
		tr.ForEachFrom(v, func(it Item) bool {
			got = append(got, it)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("ForEachFrom(%g): %d items, want %d", v, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ForEachFrom(%g)[%d] = %+v, want %+v", v, i, got[i], want[i])
			}
		}
	}
}

// TestDensityTreapForEachFromEarlyStop checks that returning false stops the
// in-order walk immediately.
func TestDensityTreapForEachFromEarlyStop(t *testing.T) {
	tr := NewDensityTreap(2)
	for id := 0; id < 50; id++ {
		tr.Insert(Item{ID: id, Density: float64(id), Weight: 1})
	}
	var seen int
	tr.ForEachFrom(30, func(it Item) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Fatalf("visited %d items after early stop, want 3", seen)
	}
}

// TestDensityTreapDuplicatePanics mirrors the DensityList contract.
func TestDensityTreapDuplicatePanics(t *testing.T) {
	tr := NewDensityTreap(3)
	tr.Insert(Item{ID: 1, Density: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Insert did not panic")
		}
	}()
	tr.Insert(Item{ID: 1, Density: 5})
}
