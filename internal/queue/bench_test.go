package queue

import "testing"

// Sorted-insert workloads: ascending densities insert each new item at the
// front of the density-descending list (worst case for the position map),
// descending densities insert at the back (best case). The asymmetry between
// the two is the cost of rewriting position-map entries on every insert.

func benchDensityListInsert(b *testing.B, n int, ascending bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var l DensityList
		for j := 0; j < n; j++ {
			d := float64(j + 1)
			if !ascending {
				d = float64(n - j)
			}
			l.Insert(Item{ID: j, Density: d, Weight: 1})
		}
	}
}

func BenchmarkDensityListInsertAsc100(b *testing.B)  { benchDensityListInsert(b, 100, true) }
func BenchmarkDensityListInsertAsc1000(b *testing.B) { benchDensityListInsert(b, 1000, true) }
func BenchmarkDensityListInsertDesc100(b *testing.B) { benchDensityListInsert(b, 100, false) }
func BenchmarkDensityListInsertDesc1000(b *testing.B) {
	benchDensityListInsert(b, 1000, false)
}

// benchDensityListChurn measures steady-state insert/remove at size n: each
// op removes the lowest-density item and re-inserts it at the front, the
// pattern scheduler S's queues see under admission churn.
func benchDensityListChurn(b *testing.B, n int) {
	var l DensityList
	for j := 0; j < n; j++ {
		l.Insert(Item{ID: j, Density: float64(j + 1), Weight: 1})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := l.At(l.Len() - 1)
		l.Remove(it.ID)
		l.Insert(Item{ID: it.ID, Density: it.Density, Weight: it.Weight})
	}
}

func BenchmarkDensityListChurn1000(b *testing.B) { benchDensityListChurn(b, 1000) }

// The treap counterparts: same workloads on the O(log n) structure backing
// scheduler S's Q and P since the admission rework.

func benchDensityTreapInsert(b *testing.B, n int, ascending bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := NewDensityTreap(1)
		for j := 0; j < n; j++ {
			d := float64(j + 1)
			if !ascending {
				d = float64(n - j)
			}
			t.Insert(Item{ID: j, Density: d, Weight: 1})
		}
	}
}

func BenchmarkDensityTreapInsertAsc1000(b *testing.B)  { benchDensityTreapInsert(b, 1000, true) }
func BenchmarkDensityTreapInsertDesc1000(b *testing.B) { benchDensityTreapInsert(b, 1000, false) }

func benchDensityTreapChurn(b *testing.B, n int) {
	t := NewDensityTreap(1)
	for j := 0; j < n; j++ {
		t.Insert(Item{ID: j, Density: float64(j + 1), Weight: 1})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := i % n
		it, _ := t.Get(id)
		t.Remove(id)
		t.Insert(it)
	}
}

func BenchmarkDensityTreapChurn1000(b *testing.B) { benchDensityTreapChurn(b, 1000) }
