package queue

import "math/rand"

// TreapBand is a BandIndex backed by a randomized treap keyed by
// (density, ID) and augmented with subtree weight sums, giving O(log n)
// expected insert, remove, and range-sum. Rotation-free split/merge keeps
// the augmentation simple to maintain.
type TreapBand struct {
	root   *treapNode
	rng    *rand.Rand
	size   int
	visits int64
}

type treapNode struct {
	it          Item
	prio        int64
	left, right *treapNode
	sum         float64 // total weight of this subtree
}

// NewTreapBand returns an empty TreapBand using the given seed for heap
// priorities (deterministic runs need deterministic structure).
func NewTreapBand(seed int64) *TreapBand {
	return &TreapBand{rng: rand.New(rand.NewSource(seed))}
}

// keyLess orders by (density, ID) ascending.
func keyLess(d1 float64, id1 int, d2 float64, id2 int) bool {
	if d1 != d2 {
		return d1 < d2
	}
	return id1 < id2
}

func (n *treapNode) recalc() {
	n.sum = n.it.Weight
	if n.left != nil {
		n.sum += n.left.sum
	}
	if n.right != nil {
		n.sum += n.right.sum
	}
}

func nodeSum(n *treapNode) float64 {
	if n == nil {
		return 0
	}
	return n.sum
}

// split partitions t into (< key, ≥ key) by (density, id), counting every
// node touched in *visits.
func split(t *treapNode, d float64, id int, visits *int64) (lt, ge *treapNode) {
	if t == nil {
		return nil, nil
	}
	*visits++
	if keyLess(t.it.Density, t.it.ID, d, id) {
		l, r := split(t.right, d, id, visits)
		t.right = l
		t.recalc()
		return t, r
	}
	l, r := split(t.left, d, id, visits)
	t.left = r
	t.recalc()
	return l, t
}

// merge joins l and r where every key in l precedes every key in r,
// counting every node touched in *visits.
func merge(l, r *treapNode, visits *int64) *treapNode {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case l.prio > r.prio:
		*visits++
		l.right = merge(l.right, r, visits)
		l.recalc()
		return l
	default:
		*visits++
		r.left = merge(l, r.left, visits)
		r.recalc()
		return r
	}
}

// Insert implements BandIndex. It panics on a duplicate (density, ID) key.
func (t *TreapBand) Insert(it Item) {
	l, r := split(t.root, it.Density, it.ID, &t.visits)
	// Check the smallest key of r for an exact duplicate.
	probe := r
	for probe != nil && probe.left != nil {
		probe = probe.left
	}
	if probe != nil && probe.it.ID == it.ID && probe.it.Density == it.Density {
		t.root = merge(l, r, &t.visits)
		panic("queue: duplicate key inserted into TreapBand")
	}
	n := &treapNode{it: it, prio: t.rng.Int63()}
	n.recalc()
	t.root = merge(merge(l, n, &t.visits), r, &t.visits)
	t.size++
}

// Remove implements BandIndex.
func (t *TreapBand) Remove(id int, density float64) bool {
	l, rest := split(t.root, density, id, &t.visits)
	mid, r := split(rest, density, id+1, &t.visits)
	found := mid != nil
	if found {
		// mid holds exactly the single (density, id) key.
		t.size--
		mid = merge(mid.left, mid.right, &t.visits)
	}
	t.root = merge(merge(l, mid, &t.visits), r, &t.visits)
	return found
}

// SumRange implements BandIndex: total weight of densities in [lo, hi).
func (t *TreapBand) SumRange(lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	l, rest := split(t.root, lo, -1<<62, &t.visits)
	mid, r := split(rest, hi, -1<<62, &t.visits)
	s := nodeSum(mid)
	t.root = merge(merge(l, mid, &t.visits), r, &t.visits)
	return s
}

// SumFrom implements BandIndex: total weight of densities ≥ lo.
func (t *TreapBand) SumFrom(lo float64) float64 {
	l, r := split(t.root, lo, -1<<62, &t.visits)
	s := nodeSum(r)
	t.root = merge(l, r, &t.visits)
	return s
}

// Len implements BandIndex.
func (t *TreapBand) Len() int { return t.size }

// Visits implements Counted: tree nodes touched by split/merge traversals.
func (t *TreapBand) Visits() int64 { return t.visits }

// ResetVisits implements Counted.
func (t *TreapBand) ResetVisits() { t.visits = 0 }
