package queue

import "math/rand"

// TreapBand is a BandIndex backed by a randomized treap keyed by
// (density, ID) and augmented with subtree weight sums, giving O(log n)
// expected insert, remove, and range-sum. Rotation-free split/merge keeps
// the augmentation simple to maintain.
type TreapBand struct {
	root *treapNode
	rng  *rand.Rand
	size int
}

type treapNode struct {
	it          Item
	prio        int64
	left, right *treapNode
	sum         float64 // total weight of this subtree
}

// NewTreapBand returns an empty TreapBand using the given seed for heap
// priorities (deterministic runs need deterministic structure).
func NewTreapBand(seed int64) *TreapBand {
	return &TreapBand{rng: rand.New(rand.NewSource(seed))}
}

// keyLess orders by (density, ID) ascending.
func keyLess(d1 float64, id1 int, d2 float64, id2 int) bool {
	if d1 != d2 {
		return d1 < d2
	}
	return id1 < id2
}

func (n *treapNode) recalc() {
	n.sum = n.it.Weight
	if n.left != nil {
		n.sum += n.left.sum
	}
	if n.right != nil {
		n.sum += n.right.sum
	}
}

func nodeSum(n *treapNode) float64 {
	if n == nil {
		return 0
	}
	return n.sum
}

// split partitions t into (< key, ≥ key) by (density, id).
func split(t *treapNode, d float64, id int) (lt, ge *treapNode) {
	if t == nil {
		return nil, nil
	}
	if keyLess(t.it.Density, t.it.ID, d, id) {
		l, r := split(t.right, d, id)
		t.right = l
		t.recalc()
		return t, r
	}
	l, r := split(t.left, d, id)
	t.left = r
	t.recalc()
	return l, t
}

// merge joins l and r where every key in l precedes every key in r.
func merge(l, r *treapNode) *treapNode {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case l.prio > r.prio:
		l.right = merge(l.right, r)
		l.recalc()
		return l
	default:
		r.left = merge(l, r.left)
		r.recalc()
		return r
	}
}

// Insert implements BandIndex. It panics on a duplicate (density, ID) key.
func (t *TreapBand) Insert(it Item) {
	l, r := split(t.root, it.Density, it.ID)
	// Check the smallest key of r for an exact duplicate.
	probe := r
	for probe != nil && probe.left != nil {
		probe = probe.left
	}
	if probe != nil && probe.it.ID == it.ID && probe.it.Density == it.Density {
		t.root = merge(l, r)
		panic("queue: duplicate key inserted into TreapBand")
	}
	n := &treapNode{it: it, prio: t.rng.Int63()}
	n.recalc()
	t.root = merge(merge(l, n), r)
	t.size++
}

// Remove implements BandIndex.
func (t *TreapBand) Remove(id int, density float64) bool {
	l, rest := split(t.root, density, id)
	mid, r := split(rest, density, id+1)
	found := mid != nil
	if found {
		// mid holds exactly the single (density, id) key.
		t.size--
		mid = merge(mid.left, mid.right)
	}
	t.root = merge(merge(l, mid), r)
	return found
}

// SumRange implements BandIndex: total weight of densities in [lo, hi).
func (t *TreapBand) SumRange(lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	l, rest := split(t.root, lo, -1<<62)
	mid, r := split(rest, hi, -1<<62)
	s := nodeSum(mid)
	t.root = merge(merge(l, mid), r)
	return s
}

// SumFrom implements BandIndex: total weight of densities ≥ lo.
func (t *TreapBand) SumFrom(lo float64) float64 {
	l, r := split(t.root, lo, -1<<62)
	s := nodeSum(r)
	t.root = merge(l, r)
	return s
}

// Len implements BandIndex.
func (t *TreapBand) Len() int { return t.size }
