package queue

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDensityListOrder(t *testing.T) {
	var l DensityList
	l.Insert(Item{ID: 1, Density: 2.0, Weight: 1})
	l.Insert(Item{ID: 2, Density: 5.0, Weight: 1})
	l.Insert(Item{ID: 3, Density: 3.0, Weight: 1})
	l.Insert(Item{ID: 4, Density: 5.0, Weight: 1}) // tie: ID ascending
	wantIDs := []int{2, 4, 3, 1}
	for i, want := range wantIDs {
		if got := l.At(i).ID; got != want {
			t.Errorf("At(%d).ID = %d, want %d", i, got, want)
		}
	}
}

func TestDensityListRemove(t *testing.T) {
	var l DensityList
	for i := 0; i < 5; i++ {
		l.Insert(Item{ID: i, Density: float64(i), Weight: 1})
	}
	if !l.Remove(2) {
		t.Fatal("Remove(2) = false")
	}
	if l.Remove(2) {
		t.Error("double Remove(2) = true")
	}
	if l.Len() != 4 || l.Contains(2) {
		t.Errorf("Len=%d Contains(2)=%v", l.Len(), l.Contains(2))
	}
	// Remaining order still density-descending.
	prev := math.Inf(1)
	l.ForEach(func(it Item) bool {
		if it.Density > prev {
			t.Errorf("order violated at ID %d", it.ID)
		}
		prev = it.Density
		return true
	})
}

func TestDensityListGet(t *testing.T) {
	var l DensityList
	l.Insert(Item{ID: 7, Density: 1.5, Weight: 2.5})
	it, ok := l.Get(7)
	if !ok || it.Weight != 2.5 {
		t.Errorf("Get(7) = %v, %v", it, ok)
	}
	if _, ok := l.Get(8); ok {
		t.Error("Get(8) found phantom item")
	}
}

func TestDensityListDuplicatePanics(t *testing.T) {
	var l DensityList
	l.Insert(Item{ID: 1, Density: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate insert did not panic")
		}
	}()
	l.Insert(Item{ID: 1, Density: 2})
}

func TestDensityListForEachEarlyStop(t *testing.T) {
	var l DensityList
	for i := 0; i < 5; i++ {
		l.Insert(Item{ID: i, Density: float64(i)})
	}
	count := 0
	l.ForEach(func(Item) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("ForEach visited %d, want 2", count)
	}
}

func TestDensityListSnapshot(t *testing.T) {
	var l DensityList
	l.Insert(Item{ID: 1, Density: 1})
	l.Insert(Item{ID: 2, Density: 2})
	snap := l.Snapshot(nil)
	if len(snap) != 2 || snap[0].ID != 2 {
		t.Errorf("Snapshot = %v", snap)
	}
}

func bandImpls() map[string]BandIndex {
	return map[string]BandIndex{
		"naive": NewNaiveBand(),
		"treap": NewTreapBand(1),
	}
}

func TestBandBasics(t *testing.T) {
	for name, b := range bandImpls() {
		b.Insert(Item{ID: 1, Density: 1.0, Weight: 2})
		b.Insert(Item{ID: 2, Density: 2.0, Weight: 3})
		b.Insert(Item{ID: 3, Density: 4.0, Weight: 5})
		if got := b.SumRange(1.0, 4.0); got != 5 {
			t.Errorf("%s: SumRange[1,4) = %v, want 5", name, got)
		}
		if got := b.SumRange(0, 100); got != 10 {
			t.Errorf("%s: SumRange[0,100) = %v, want 10", name, got)
		}
		if got := b.SumFrom(2.0); got != 8 {
			t.Errorf("%s: SumFrom(2) = %v, want 8", name, got)
		}
		if got := b.SumRange(4.0, 4.0); got != 0 {
			t.Errorf("%s: empty range = %v", name, got)
		}
		if !b.Remove(2, 2.0) {
			t.Errorf("%s: Remove(2) = false", name)
		}
		if b.Remove(2, 2.0) {
			t.Errorf("%s: double Remove(2) = true", name)
		}
		if got := b.SumRange(1.0, 4.0); got != 2 {
			t.Errorf("%s: SumRange after remove = %v, want 2", name, got)
		}
		if b.Len() != 2 {
			t.Errorf("%s: Len = %d", name, b.Len())
		}
	}
}

func TestBandRangeIsHalfOpen(t *testing.T) {
	for name, b := range bandImpls() {
		b.Insert(Item{ID: 1, Density: 2.0, Weight: 1})
		if got := b.SumRange(2.0, 3.0); got != 1 {
			t.Errorf("%s: lo bound should be inclusive, got %v", name, got)
		}
		if got := b.SumRange(1.0, 2.0); got != 0 {
			t.Errorf("%s: hi bound should be exclusive, got %v", name, got)
		}
	}
}

func TestTreapDuplicatePanics(t *testing.T) {
	b := NewTreapBand(1)
	b.Insert(Item{ID: 1, Density: 1.0, Weight: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate insert did not panic")
		}
	}()
	b.Insert(Item{ID: 1, Density: 1.0, Weight: 1})
}

func TestTreapEqualDensityDistinctIDs(t *testing.T) {
	b := NewTreapBand(2)
	for i := 0; i < 10; i++ {
		b.Insert(Item{ID: i, Density: 3.0, Weight: 1})
	}
	if got := b.SumRange(3.0, 3.0000001); got != 10 {
		t.Errorf("SumRange over tied densities = %v, want 10", got)
	}
	for i := 0; i < 10; i += 2 {
		if !b.Remove(i, 3.0) {
			t.Errorf("Remove(%d) failed", i)
		}
	}
	if got := b.SumFrom(0); got != 5 {
		t.Errorf("SumFrom after removals = %v, want 5", got)
	}
}

// TestPropTreapMatchesNaive drives both implementations with the same random
// operation sequence and compares every query.
func TestPropTreapMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		naive := NewNaiveBand()
		treap := NewTreapBand(seed ^ 0x5eed)
		live := map[int]float64{}
		nextID := 0
		for op := 0; op < 200; op++ {
			switch r := rng.Float64(); {
			case r < 0.5 || len(live) == 0: // insert
				it := Item{
					ID:      nextID,
					Density: float64(rng.Intn(20)) / 2.0,
					Weight:  float64(1 + rng.Intn(5)),
				}
				nextID++
				naive.Insert(it)
				treap.Insert(it)
				live[it.ID] = it.Density
			case r < 0.75: // remove a random live item
				for id, d := range live {
					if naive.Remove(id, d) != treap.Remove(id, d) {
						return false
					}
					delete(live, id)
					break
				}
			default: // query
				lo := float64(rng.Intn(20)) / 2.0
				hi := lo * (1 + rng.Float64()*3)
				if math.Abs(naive.SumRange(lo, hi)-treap.SumRange(lo, hi)) > 1e-9 {
					return false
				}
				if math.Abs(naive.SumFrom(lo)-treap.SumFrom(lo)) > 1e-9 {
					return false
				}
			}
			if naive.Len() != treap.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestBandVisitCounters exercises the Counted instrumentation: both
// substrates expose a deterministic work measure (entries examined for the
// naive scan, tree nodes touched for the treap) that resets cleanly.
func TestBandVisitCounters(t *testing.T) {
	for name, b := range bandImpls() {
		c, ok := b.(Counted)
		if !ok {
			t.Fatalf("%s: does not implement Counted", name)
		}
		for i := 0; i < 64; i++ {
			b.Insert(Item{ID: i, Density: float64(i), Weight: 1})
		}
		c.ResetVisits()
		if got := c.Visits(); got != 0 {
			t.Fatalf("%s: Visits after reset = %d, want 0", name, got)
		}
		b.SumRange(10, 50)
		first := c.Visits()
		if first <= 0 {
			t.Errorf("%s: SumRange recorded no visits", name)
		}
		b.SumFrom(30)
		if c.Visits() <= first {
			t.Errorf("%s: SumFrom did not accumulate visits (%d -> %d)", name, first, c.Visits())
		}
		// Identical queries cost identical work: the measure is a pure
		// function of the structure, never of the clock.
		c.ResetVisits()
		b.SumRange(10, 50)
		again := c.Visits()
		if again != first {
			t.Errorf("%s: repeated query cost %d visits, first cost %d", name, again, first)
		}
	}
}

// TestNaiveVisitsEqualLen pins the naive scan's cost model: an unbounded
// range examines every stored entry exactly once.
func TestNaiveVisitsEqualLen(t *testing.T) {
	b := NewNaiveBand()
	for i := 0; i < 37; i++ {
		b.Insert(Item{ID: i, Density: float64(i % 7), Weight: 1})
	}
	b.ResetVisits()
	b.SumRange(0, 1e18)
	if got := b.Visits(); got != int64(b.Len()) {
		t.Errorf("full-range scan visits = %d, want Len = %d", got, b.Len())
	}
}

func benchmarkBand(b *testing.B, mk func() BandIndex, n int) {
	rng := rand.New(rand.NewSource(7))
	idx := mk()
	for i := 0; i < n; i++ {
		idx.Insert(Item{ID: i, Density: rng.Float64() * 100, Weight: 1 + rng.Float64()})
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		lo := rng.Float64() * 100
		sink += idx.SumRange(lo, lo*2)
	}
	_ = sink
}

func BenchmarkBandNaive1k(b *testing.B) {
	benchmarkBand(b, func() BandIndex { return NewNaiveBand() }, 1000)
}

func BenchmarkBandTreap1k(b *testing.B) {
	benchmarkBand(b, func() BandIndex { return NewTreapBand(1) }, 1000)
}

// TestPropDensityListMatchesReferenceModel drives DensityList against a
// simple map+sort reference with a random operation sequence.
func TestPropDensityListMatchesReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var l DensityList
		ref := map[int]Item{}
		next := 0
		for op := 0; op < 150; op++ {
			switch r := rng.Float64(); {
			case r < 0.5 || len(ref) == 0:
				it := Item{ID: next, Density: float64(rng.Intn(12)), Weight: rng.Float64()}
				next++
				l.Insert(it)
				ref[it.ID] = it
			case r < 0.8:
				for id := range ref {
					if l.Remove(id) != true {
						return false
					}
					delete(ref, id)
					break
				}
			default:
				if l.Len() != len(ref) {
					return false
				}
				// Order check: density desc, ID asc.
				var items []Item
				items = l.Snapshot(items)
				for i := 1; i < len(items); i++ {
					a, b := items[i-1], items[i]
					if a.Density < b.Density || (a.Density == b.Density && a.ID > b.ID) {
						return false
					}
				}
				// Membership check.
				for id, want := range ref {
					got, ok := l.Get(id)
					if !ok || got != want {
						return false
					}
				}
			}
		}
		return l.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
