package queue

import "math/rand"

// DensityTreap is an ordered collection with the same contract as
// DensityList — items sorted by density descending, ID ascending among
// equals — backed by a treap, so Insert and Remove are O(log n) expected
// instead of O(n). ForEachFrom additionally starts iteration at the first
// item with density ≤ a bound in O(log n), which is what makes scheduler S's
// condition-(2) admission query logarithmic: the density-descending prefix
// the naive scan stepped over item by item is skipped structurally.
//
// The zero value is not usable; construct with NewDensityTreap.
type DensityTreap struct {
	root *dtNode
	rng  *rand.Rand
	pos  map[int]Item // ID → stored item, for O(1) Get/Contains
	free *dtNode      // chain of removed nodes reused by Insert (no churn allocs)
}

type dtNode struct {
	it          Item
	prio        int64
	left, right *dtNode
}

// NewDensityTreap returns an empty treap using the given seed for heap
// priorities (deterministic runs need deterministic structure).
func NewDensityTreap(seed int64) *DensityTreap {
	return &DensityTreap{rng: rand.New(rand.NewSource(seed)), pos: make(map[int]Item)}
}

// Len returns the number of items.
func (t *DensityTreap) Len() int { return len(t.pos) }

// Contains reports whether an item with the given ID is present.
func (t *DensityTreap) Contains(id int) bool {
	_, ok := t.pos[id]
	return ok
}

// Get returns the item with the given ID.
func (t *DensityTreap) Get(id int) (Item, bool) {
	it, ok := t.pos[id]
	return it, ok
}

// dtSplit partitions n into (before, notBefore) around the probe key in the
// list order (density descending, ID ascending).
func dtSplit(n *dtNode, probe Item) (l, r *dtNode) {
	if n == nil {
		return nil, nil
	}
	if less(n.it, probe) {
		n.right, r = dtSplit(n.right, probe)
		return n, r
	}
	l, n.left = dtSplit(n.left, probe)
	return l, n
}

// dtMerge joins l and r where every key in l precedes every key in r.
func dtMerge(l, r *dtNode) *dtNode {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case l.prio > r.prio:
		l.right = dtMerge(l.right, r)
		return l
	default:
		r.left = dtMerge(l, r.left)
		return r
	}
}

// dtInsert places nu under n, descending until nu's priority wins the heap
// order and splitting only the subtree below that point — cheaper than a
// full split+merge from the root.
func dtInsert(n, nu *dtNode) *dtNode {
	if n == nil {
		return nu
	}
	if nu.prio > n.prio {
		nu.left, nu.right = dtSplit(n, nu.it)
		return nu
	}
	if less(nu.it, n.it) {
		n.left = dtInsert(n.left, nu)
	} else {
		n.right = dtInsert(n.right, nu)
	}
	return n
}

// dtDelete removes the node holding it (matched by ID; the caller guarantees
// it is present with this exact key) and returns the new subtree root and
// the detached node.
func dtDelete(n *dtNode, it Item) (root, removed *dtNode) {
	if n.it.ID == it.ID {
		return dtMerge(n.left, n.right), n
	}
	if less(it, n.it) {
		n.left, removed = dtDelete(n.left, it)
	} else {
		n.right, removed = dtDelete(n.right, it)
	}
	return n, removed
}

// Insert adds it, keeping order. Like DensityList.Insert it panics if the ID
// is already present: Q and P are disjoint and never hold a job twice.
func (t *DensityTreap) Insert(it Item) {
	if _, dup := t.pos[it.ID]; dup {
		panic("queue: duplicate ID inserted into DensityTreap")
	}
	t.pos[it.ID] = it
	n := t.free
	if n != nil {
		t.free = n.right
		*n = dtNode{it: it, prio: t.rng.Int63()}
	} else {
		n = &dtNode{it: it, prio: t.rng.Int63()}
	}
	t.root = dtInsert(t.root, n)
}

// Remove deletes the item with the given ID, reporting whether it was
// present. The node is recycled for a later Insert.
func (t *DensityTreap) Remove(id int) bool {
	it, ok := t.pos[id]
	if !ok {
		return false
	}
	delete(t.pos, id)
	root, removed := dtDelete(t.root, it)
	t.root = root
	*removed = dtNode{right: t.free}
	t.free = removed
	return true
}

// ForEach visits items from highest to lowest density (ID ascending among
// equals) until fn returns false. The treap must not be mutated during
// iteration.
func (t *DensityTreap) ForEach(fn func(Item) bool) {
	t.root.forEachAll(fn)
}

// ForEachFrom visits, in the same order as ForEach, only the items with
// density ≤ maxDensity, reaching the first one in O(log n) instead of
// scanning the denser prefix.
func (t *DensityTreap) ForEachFrom(maxDensity float64, fn func(Item) bool) {
	t.root.forEachFrom(maxDensity, fn)
}

func (n *dtNode) forEachAll(fn func(Item) bool) bool {
	if n == nil {
		return true
	}
	if !n.left.forEachAll(fn) {
		return false
	}
	if !fn(n.it) {
		return false
	}
	return n.right.forEachAll(fn)
}

func (n *dtNode) forEachFrom(maxDensity float64, fn func(Item) bool) bool {
	if n == nil {
		return true
	}
	if n.it.Density > maxDensity {
		// The left subtree sorts before n, i.e. is at least as dense: the
		// whole prefix is skipped in one step.
		return n.right.forEachFrom(maxDensity, fn)
	}
	if !n.left.forEachFrom(maxDensity, fn) {
		return false
	}
	if !fn(n.it) {
		return false
	}
	return n.right.forEachAll(fn)
}

// Snapshot appends all items in order to dst and returns it.
func (t *DensityTreap) Snapshot(dst []Item) []Item {
	t.root.forEachAll(func(it Item) bool {
		dst = append(dst, it)
		return true
	})
	return dst
}
