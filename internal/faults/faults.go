// Package faults is the deterministic fault-injection model for the
// simulation engine. It realizes three failure families on top of the
// paper's m-identical-processor machine:
//
//   - processor crashes: each processor alternates up/down periods drawn
//     from a per-processor renewal process (mean up time MTBF, mean repair
//     time MTTR), so the machine's effective capacity varies per tick;
//   - stragglers: a fixed fraction of processors is designated slow and
//     makes progress only on a 1/StragglerSlow fraction of ticks;
//   - execution failures: any node execution attempt can fail with
//     probability CrashRate, discarding all accumulated progress on that
//     node and forcing re-execution.
//
// Everything is a deterministic function of (Seed, tick, entity): the
// per-tick draws use counter-based hashing (splitmix64) instead of a shared
// sequential RNG stream, and the crash timelines depend only on (Seed,
// processor). Faults therefore do not depend on scheduler decisions, the
// same seed and config reproduce the same fault pattern on every run, and a
// recorded trace replays through the engine bit-identically.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Config parameterizes the fault model. The zero value injects no faults.
type Config struct {
	// Seed drives every random draw in the model.
	Seed int64
	// MTBF is the mean number of ticks a processor stays up between
	// crashes; 0 disables processor crashes.
	MTBF float64
	// MTTR is the mean number of ticks a crashed processor needs to
	// recover. 0 with MTBF > 0 defaults to max(1, MTBF/10).
	MTTR float64
	// CrashRate is the per-tick probability that one node's execution
	// attempt fails, discarding the node's accumulated work.
	CrashRate float64
	// StragglerFrac is the fraction of processors designated stragglers.
	StragglerFrac float64
	// StragglerSlow is the straggler slowdown factor: a straggler makes
	// progress on only a 1/StragglerSlow fraction of its ticks. 0 with
	// StragglerFrac > 0 defaults to 4.
	StragglerSlow float64
}

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return c.MTBF > 0 || c.CrashRate > 0 || c.StragglerFrac > 0
}

// Validate checks the config ranges.
func (c Config) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"mtbf", c.MTBF}, {"mttr", c.MTTR}, {"crash", c.CrashRate},
		{"straggler", c.StragglerFrac}, {"slow", c.StragglerSlow},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
			return fmt.Errorf("faults: %s = %v out of range", f.name, f.v)
		}
	}
	if c.CrashRate > 1 {
		return fmt.Errorf("faults: crash rate %v > 1", c.CrashRate)
	}
	if c.StragglerFrac > 1 {
		return fmt.Errorf("faults: straggler fraction %v > 1", c.StragglerFrac)
	}
	if c.StragglerSlow != 0 && c.StragglerSlow < 1 {
		return fmt.Errorf("faults: straggler slowdown %v < 1", c.StragglerSlow)
	}
	if c.MTTR > 0 && c.MTBF == 0 {
		return fmt.Errorf("faults: mttr set without mtbf")
	}
	return nil
}

// String renders the config in the ParseSpec format.
func (c Config) String() string {
	return fmt.Sprintf("seed=%d,mtbf=%g,mttr=%g,crash=%g,straggler=%g,slow=%g",
		c.Seed, c.MTBF, c.MTTR, c.CrashRate, c.StragglerFrac, c.StragglerSlow)
}

// Hash tags separating the model's independent draw families.
const (
	tagStragglerPick = 0x51a66e01
	tagStragglerTick = 0x51a66e02
	tagExecFail      = 0xc4a54e03
	tagProcTimeline  = 0x9c0e7a04
)

// Model answers fault queries for one machine. A Model is not safe for
// concurrent use (the crash timelines extend lazily), matching the engine's
// single-goroutine execution model.
type Model struct {
	cfg       Config
	m         int
	mttr      float64
	slow      float64
	straggler []bool
	procs     []procTimeline
}

// NewModel builds a model for an m-processor machine.
func NewModel(cfg Config, m int) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if m < 1 {
		return nil, fmt.Errorf("faults: m = %d, need ≥ 1", m)
	}
	md := &Model{cfg: cfg, m: m, mttr: cfg.MTTR, slow: cfg.StragglerSlow}
	if md.mttr == 0 && cfg.MTBF > 0 {
		md.mttr = math.Max(1, cfg.MTBF/10)
	}
	if md.slow == 0 && cfg.StragglerFrac > 0 {
		md.slow = 4
	}
	md.straggler = make([]bool, m)
	for p := 0; p < m; p++ {
		md.straggler[p] = hash01(cfg.Seed, tagStragglerPick, int64(p), 0, 0) < cfg.StragglerFrac
	}
	md.procs = make([]procTimeline, m)
	return md, nil
}

// Config returns the validated configuration the model was built from.
func (md *Model) Config() Config { return md.cfg }

// M returns the machine size the model was built for.
func (md *Model) M() int { return md.m }

// Up reports whether processor p is operational at tick t.
func (md *Model) Up(t int64, p int) bool {
	if md.cfg.MTBF == 0 {
		return true
	}
	return md.procs[p].up(t, md.cfg.Seed, int64(p), md.cfg.MTBF, md.mttr)
}

// UpProcs appends the ids of operational processors at tick t to dst in
// ascending order and returns it.
func (md *Model) UpProcs(t int64, dst []int) []int {
	for p := 0; p < md.m; p++ {
		if md.Up(t, p) {
			dst = append(dst, p)
		}
	}
	return dst
}

// Capacity returns the number of operational processors at tick t.
func (md *Model) Capacity(t int64) int {
	if md.cfg.MTBF == 0 {
		return md.m
	}
	n := 0
	for p := 0; p < md.m; p++ {
		if md.Up(t, p) {
			n++
		}
	}
	return n
}

// IsStraggler reports whether processor p is designated a straggler.
func (md *Model) IsStraggler(p int) bool { return md.straggler[p] }

// Straggling reports whether processor p makes no progress at tick t.
// Non-stragglers always progress; stragglers progress on a 1/StragglerSlow
// fraction of their ticks.
func (md *Model) Straggling(t int64, p int) bool {
	if !md.straggler[p] {
		return false
	}
	return hash01(md.cfg.Seed, tagStragglerTick, t, int64(p), 0) >= 1/md.slow
}

// NodeFails reports whether the execution of the given node of the given
// job fails at tick t, discarding the node's accumulated work.
func (md *Model) NodeFails(t int64, jobID, node int) bool {
	if md.cfg.CrashRate == 0 {
		return false
	}
	return hash01(md.cfg.Seed, tagExecFail, t, int64(jobID), int64(node)) < md.cfg.CrashRate
}

// procTimeline is one processor's lazily generated crash/repair schedule:
// alternating up/down intervals from a renewal process. Down intervals are
// stored as half-open [start, end) pairs in increasing order.
type procTimeline struct {
	rng   *rand.Rand
	until int64      // schedule generated for all ticks < until
	downs [][2]int64 // generated down intervals
}

// up extends the timeline to cover t and reports whether the processor is
// operational then.
func (pt *procTimeline) up(t int64, seed, proc int64, mtbf, mttr float64) bool {
	if pt.rng == nil {
		pt.rng = rand.New(rand.NewSource(int64(mix64(mix64(uint64(seed)^tagProcTimeline) ^ uint64(proc)))))
	}
	for pt.until <= t {
		upFor := 1 + int64(pt.rng.ExpFloat64()*mtbf)
		downFor := 1 + int64(pt.rng.ExpFloat64()*mttr)
		start := pt.until + upFor
		pt.downs = append(pt.downs, [2]int64{start, start + downFor})
		pt.until = start + downFor
	}
	i := sort.Search(len(pt.downs), func(i int) bool { return pt.downs[i][1] > t })
	return i >= len(pt.downs) || t < pt.downs[i][0]
}

// mix64 is the splitmix64 finalizer: a bijective avalanche mix.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash01 maps (seed, tag, a, b, c) to a uniform float in [0, 1). This is
// the model's counter-based RNG: draws are pure functions of their inputs,
// so query order and scheduler behavior cannot perturb them.
func hash01(seed int64, tag uint64, a, b, c int64) float64 {
	h := mix64(uint64(seed) ^ tag)
	h = mix64(h ^ uint64(a))
	h = mix64(h ^ uint64(b))
	h = mix64(h ^ uint64(c))
	return float64(h>>11) / float64(1<<53)
}
