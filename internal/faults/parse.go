package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses a compact fault specification of the form
//
//	seed=7,mtbf=200,mttr=20,crash=0.01,straggler=0.25,slow=4
//
// Keys may appear in any order; omitted keys keep their zero value. The
// returned config is validated. ParseSpec(c.String()) round-trips.
func ParseSpec(s string) (Config, error) {
	var c Config
	s = strings.TrimSpace(s)
	if s == "" {
		return c, nil
	}
	for _, field := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return Config{}, fmt.Errorf("faults: bad field %q (want key=value)", field)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if key == "seed" {
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Config{}, fmt.Errorf("faults: bad seed %q", val)
			}
			c.Seed = n
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return Config{}, fmt.Errorf("faults: bad value %q for %q", val, key)
		}
		switch key {
		case "mtbf":
			c.MTBF = f
		case "mttr":
			c.MTTR = f
		case "crash":
			c.CrashRate = f
		case "straggler":
			c.StragglerFrac = f
		case "slow":
			c.StragglerSlow = f
		default:
			return Config{}, fmt.Errorf("faults: unknown key %q", key)
		}
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// SpecKeys returns the set of keys a spec string names, without building a
// config. Callers use it to detect conflicts between a spec and individual
// override flags. The spec must be syntactically valid per ParseSpec.
func SpecKeys(s string) (map[string]bool, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	keys := make(map[string]bool)
	for _, field := range strings.Split(s, ",") {
		key, _, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("faults: bad field %q (want key=value)", field)
		}
		key = strings.TrimSpace(key)
		switch key {
		case "seed", "mtbf", "mttr", "crash", "straggler", "slow":
			keys[key] = true
		default:
			return nil, fmt.Errorf("faults: unknown key %q", key)
		}
	}
	return keys, nil
}
