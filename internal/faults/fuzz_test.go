package faults

import (
	"testing"
)

// FuzzParseSpec: arbitrary specs must never panic; accepted specs must
// validate, round-trip through String, and build a working model.
func FuzzParseSpec(f *testing.F) {
	f.Add("seed=7,mtbf=200,mttr=20,crash=0.01,straggler=0.25,slow=4")
	f.Add("")
	f.Add("mtbf=1e9")
	f.Add("crash=1,slow=1,straggler=1")
	f.Add("seed=-1,mtbf=0.5")
	f.Add("seed==,,=")
	f.Add("mtbf=NaN")
	f.Add("mtbf=Inf")
	f.Fuzz(func(t *testing.T, spec string) {
		c, err := ParseSpec(spec)
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("accepted invalid config %+v: %v", c, err)
		}
		again, err := ParseSpec(c.String())
		if err != nil {
			t.Fatalf("String() of accepted config does not re-parse: %q: %v", c.String(), err)
		}
		if again != c {
			t.Fatalf("round trip changed config: %+v vs %+v", again, c)
		}
		md, err := NewModel(c, 4)
		if err != nil {
			t.Fatalf("accepted config rejected by NewModel: %v", err)
		}
		// The model must answer basic queries without panicking and within
		// bounds for a few ticks.
		for tk := int64(0); tk < 8; tk++ {
			if cap := md.Capacity(tk); cap < 0 || cap > 4 {
				t.Fatalf("capacity %d outside [0, 4]", cap)
			}
		}
	})
}

// FuzzModelDeterminism: for arbitrary parameters, two independently built
// models must agree on every query, and repeated queries must be stable.
func FuzzModelDeterminism(f *testing.F) {
	f.Add(int64(1), 50.0, 5.0, 0.1, 0.5, 2.0, int64(100), 3, 7)
	f.Add(int64(-9), 0.0, 0.0, 1.0, 1.0, 1.0, int64(0), 0, 0)
	f.Add(int64(1<<40), 1e6, 1e3, 0.001, 0.01, 16.0, int64(1e6), 11, 13)
	f.Fuzz(func(t *testing.T, seed int64, mtbf, mttr, crash, frac, slow float64, tick int64, job, node int) {
		cfg := Config{Seed: seed, MTBF: mtbf, MTTR: mttr, CrashRate: crash, StragglerFrac: frac, StragglerSlow: slow}
		if cfg.Validate() != nil {
			return
		}
		if tick < 0 {
			tick = -tick
		}
		if tick > 1<<20 {
			tick %= 1 << 20 // keep lazy timelines cheap
		}
		const m = 5
		a, err := NewModel(cfg, m)
		if err != nil {
			t.Fatalf("valid config rejected: %v", err)
		}
		b, err := NewModel(cfg, m)
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < m; p++ {
			if a.Up(tick, p) != b.Up(tick, p) {
				t.Fatalf("Up(%d, %d) nondeterministic", tick, p)
			}
			if a.Up(tick, p) != a.Up(tick, p) {
				t.Fatalf("Up(%d, %d) unstable on repeat", tick, p)
			}
			if a.Straggling(tick, p) != b.Straggling(tick, p) {
				t.Fatalf("Straggling(%d, %d) nondeterministic", tick, p)
			}
			if a.Straggling(tick, p) && !a.IsStraggler(p) {
				t.Fatalf("non-straggler %d straggled", p)
			}
		}
		if a.NodeFails(tick, job, node) != b.NodeFails(tick, job, node) {
			t.Fatalf("NodeFails(%d, %d, %d) nondeterministic", tick, job, node)
		}
		cap := a.Capacity(tick)
		if cap < 0 || cap > m {
			t.Fatalf("capacity %d outside [0, %d]", cap, m)
		}
		if got := len(a.UpProcs(tick, nil)); got != cap {
			t.Fatalf("UpProcs len %d != capacity %d", got, cap)
		}
	})
}
